package apps

import (
	"testing"

	"repro/internal/model"
)

// checkApp asserts the Table-1 aggregate characteristics hold exactly.
func checkApp(t *testing.T, g *model.CDCG, err error, cores, packets int, bits int64) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("%s invalid: %v", g.Name, err)
	}
	if g.NumCores() != cores {
		t.Errorf("%s: cores = %d, want %d", g.Name, g.NumCores(), cores)
	}
	if g.NumPackets() != packets {
		t.Errorf("%s: packets = %d, want %d", g.Name, g.NumPackets(), packets)
	}
	if g.TotalBits() != bits {
		t.Errorf("%s: bits = %d, want %d", g.Name, g.TotalBits(), bits)
	}
	used := map[model.CoreID]bool{}
	for _, p := range g.Packets {
		used[p.Src] = true
		used[p.Dst] = true
	}
	if len(used) != cores {
		t.Errorf("%s: only %d/%d cores used", g.Name, len(used), cores)
	}
}

// The eight embedded instances of the Table-1 suite.
func TestRombergSmall(t *testing.T) {
	g, err := Romberg(4, 43, 78817)
	checkApp(t, g, err, 5, 43, 78817)
}

func TestRombergLarge(t *testing.T) {
	g, err := Romberg(8, 51, 23244)
	checkApp(t, g, err, 9, 51, 23244)
}

func TestFFT8Plain(t *testing.T) {
	g, err := FFT8(false, 24, 2215)
	checkApp(t, g, err, 8, 24, 2215)
}

func TestFFT8Gather(t *testing.T) {
	g, err := FFT8(true, 32, 43120)
	checkApp(t, g, err, 9, 32, 43120)
}

func TestObjRecStream(t *testing.T) {
	g, err := ObjRecognition(6, 43, 49003)
	checkApp(t, g, err, 6, 43, 49003)
}

func TestObjRecWide(t *testing.T) {
	g, err := ObjRecognition(10, 22, 322221)
	checkApp(t, g, err, 10, 22, 322221)
}

func TestImageEncoderHD(t *testing.T) {
	g, err := ImageEncoder(12, 25, 2578920)
	checkApp(t, g, err, 12, 25, 2578920)
}

func TestImageEncoderParallel(t *testing.T) {
	g, err := ImageEncoder(12, 88, 115778)
	checkApp(t, g, err, 12, 88, 115778)
}

func TestRombergBarrierStructure(t *testing.T) {
	g, err := Romberg(4, 16, 1600) // 5 nodes: exactly two full rounds
	if err != nil {
		t.Fatal(err)
	}
	dg, err := g.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Round layout (heap tree over nodes 0..4): scatters 0->1, 0->2,
	// 1->3, 1->4 (packets 0..3), reduces 4->1, 3->1, 2->0, 1->0
	// (packets 4..7). Only the root's round-0 scatters are graph roots.
	starts, _ := g.StartPackets()
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 1 {
		t.Errorf("roots = %v, want the root's two scatters", starts)
	}
	// Node 1's combine (packet 7, 1->0) waits for its own share and both
	// children's partial sums.
	if got := dg.InDegree(7); got != 3 {
		t.Errorf("inner combine in-degree = %d, want 3", got)
	}
	// Round-1 root scatters (packets 8, 9) wait on the previous round's
	// reduces into the root — the Richardson extrapolation barrier.
	for _, a := range []int{8, 9} {
		if got := dg.InDegree(a); got != 2 {
			t.Errorf("round-1 scatter %d in-degree = %d, want 2", a, got)
		}
	}
	// The tree uses parent<->child links only.
	for _, p := range g.Packets {
		lo, hi := int(p.Src), int(p.Dst)
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi != 2*lo+1 && hi != 2*lo+2 {
			t.Errorf("packet %+v is not a tree edge", p)
		}
	}
}

func TestFFT8ButterflyStructure(t *testing.T) {
	g, err := FFT8(false, 24, 2400)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: core c sends to c^4.
	for c := 0; c < 8; c++ {
		p := g.Packets[c]
		if int(p.Src) != c || int(p.Dst) != c^4 {
			t.Errorf("stage0 packet %d: %d->%d, want %d->%d", c, p.Src, p.Dst, c, c^4)
		}
	}
	// Stage 1: distance 2; stage 2: distance 1.
	for c := 0; c < 8; c++ {
		if int(g.Packets[8+c].Dst) != c^2 {
			t.Errorf("stage1 packet of core %d goes to %d, want %d", c, g.Packets[8+c].Dst, c^2)
		}
		if int(g.Packets[16+c].Dst) != c^1 {
			t.Errorf("stage2 packet of core %d goes to %d, want %d", c, g.Packets[16+c].Dst, c^1)
		}
	}
	// All 8 stage-0 packets are roots; everything later depends on them.
	starts, _ := g.StartPackets()
	if len(starts) != 8 {
		t.Errorf("roots = %d, want 8", len(starts))
	}
	// Dependence chain depth: lower bound on texec is 3 stages of compute.
	lb, err := g.ComputeLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3*16 {
		t.Errorf("compute lower bound = %d, want 48", lb)
	}
}

func TestFFT8GatherDepth(t *testing.T) {
	g, err := FFT8(true, 32, 3200)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := g.ComputeLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3*16+8 {
		t.Errorf("gather lower bound = %d, want 56", lb)
	}
}

func TestObjRecPipelineStructure(t *testing.T) {
	g, err := ObjRecognition(7, 20, 5000) // 2 extractors, 9 packets/frame
	if err != nil {
		t.Fatal(err)
	}
	// Packet 0 is camera->preproc; the second frame's capture depends on
	// the first frame's (camera serialisation).
	if g.Packets[0].Src != 0 || g.Packets[0].Dst != 1 {
		t.Fatalf("packet 0 = %+v", g.Packets[0])
	}
	dg, _ := g.DepGraph()
	// Frame layout: capture(0), segIn(1), regions(2,3), boundary
	// exchange(4,5), feats(6,7), verdict(8). Frame 1 starts at packet 9.
	if got := dg.InDegree(9); got != 1 {
		t.Errorf("frame-1 capture in-degree = %d, want 1", got)
	}
	// Boundary packets move between the two extractor cores (3 and 4).
	for _, i := range []int{4, 5} {
		p := g.Packets[i]
		if (p.Src != 3 || p.Dst != 4) && (p.Src != 4 || p.Dst != 3) {
			t.Errorf("boundary packet %d = %+v, want extractor exchange", i, p)
		}
	}
	// A feature packet waits for its region and the neighbour's boundary.
	if got := dg.InDegree(6); got != 2 {
		t.Errorf("feat in-degree = %d, want 2", got)
	}
	// The classifier verdict of frame 0 (packet 8) depends on both
	// feature packets.
	if got := dg.InDegree(8); got != 2 {
		t.Errorf("verdict in-degree = %d, want 2", got)
	}
}

func TestImageEncoderForkJoin(t *testing.T) {
	g, err := ImageEncoder(5, 18, 4000) // 3 workers, 9 packets/batch
	if err != nil {
		t.Fatal(err)
	}
	// Batch layout: scatters 0..2 (0->w), refs 3..5 (w->w+1 ring),
	// emissions 6..8 (w->collector).
	for i := 0; i < 3; i++ {
		if g.Packets[i].Src != 0 {
			t.Errorf("scatter %d src = %d, want distributor", i, g.Packets[i].Src)
		}
		if g.Packets[6+i].Dst != 4 {
			t.Errorf("emission %d dst = %d, want collector", 6+i, g.Packets[6+i].Dst)
		}
	}
	// The ring exchange is symmetric worker-to-worker traffic.
	ring := map[[2]model.CoreID]bool{}
	for i := 3; i < 6; i++ {
		p := g.Packets[i]
		if p.Src == 0 || p.Dst == 4 {
			t.Errorf("ref packet %d touches hub: %+v", i, p)
		}
		ring[[2]model.CoreID{p.Src, p.Dst}] = true
	}
	if len(ring) != 3 {
		t.Errorf("ring exchanges = %d, want 3 distinct", len(ring))
	}
	dg, _ := g.DepGraph()
	// Batch-1 scatter to worker 0 (packet 9) depends on batch-0 scatter.
	if got := dg.InDegree(9); got != 1 {
		t.Errorf("batch-1 scatter in-degree = %d, want 1", got)
	}
	// An emission needs its raw data, the neighbour's reference and (from
	// batch 1 on) the previous emission.
	if got := dg.InDegree(6); got != 2 {
		t.Errorf("emission in-degree = %d, want 2", got)
	}
}

func TestBuildersRejectBadParams(t *testing.T) {
	if _, err := Romberg(0, 10, 100); err == nil {
		t.Error("romberg with 0 workers accepted")
	}
	if _, err := ObjRecognition(4, 10, 100); err == nil {
		t.Error("objrec with 4 cores accepted")
	}
	if _, err := ImageEncoder(2, 10, 100); err == nil {
		t.Error("imgenc with 2 cores accepted")
	}
	if _, err := FFT8(false, 99, 9900); err == nil {
		t.Error("fft8 cannot deliver 99 packets but accepted")
	}
	if _, err := FFT8(false, 0, 100); err == nil {
		t.Error("zero packets accepted")
	}
}

func TestTruncationKeepsValidity(t *testing.T) {
	// Odd packet counts force mid-round truncation everywhere.
	for p := 5; p <= 40; p += 7 {
		g, err := Romberg(4, p, int64(p)*100)
		if err != nil {
			t.Fatalf("romberg %d: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("romberg %d invalid: %v", p, err)
		}
		if g.NumPackets() != p {
			t.Fatalf("romberg %d: packets %d", p, g.NumPackets())
		}
	}
	for p := 7; p <= 22; p += 5 {
		g, err := ObjRecognition(8, p, int64(p)*50)
		if err != nil {
			t.Fatalf("objrec %d: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("objrec %d invalid: %v", p, err)
		}
	}
}
