// Package apps models the paper's four embedded applications as CDCGs:
// a distributed Romberg integration, an 8-point FFT, an object-recognition
// pipeline and an image encoder (Section 5 lists these, with variations,
// as 8 of the 18 workloads). The authors never released the applications
// themselves; what the mapping problem consumes is only each application's
// CDCG, so we rebuild the graphs from the algorithms' published dataflow
// and scale packet volumes to the aggregate characteristics of Table 1
// (exact core count, packet count and total bit volume).
package apps

import (
	"fmt"

	"repro/internal/appgen"
	"repro/internal/model"
)

// spec is a packet under construction: volumes start as relative weights
// and are scaled to the target total at build time.
type spec struct {
	src, dst model.CoreID
	compute  int64
	weight   float64
	label    string
	deps     []model.PacketID
}

// builder accumulates specs; packets only ever depend on earlier packets,
// so truncating to a prefix always yields a valid CDCG.
type builder struct {
	cores []model.Core
	specs []spec
}

func (b *builder) add(s spec) model.PacketID {
	id := model.PacketID(len(b.specs))
	b.specs = append(b.specs, s)
	return id
}

// build truncates to exactly `packets` packets, scales weights to exactly
// totalBits, and validates the result.
func (b *builder) build(name string, packets int, totalBits int64) (*model.CDCG, error) {
	if packets <= 0 || packets > len(b.specs) {
		return nil, fmt.Errorf("apps: %s generated %d packets, cannot deliver %d", name, len(b.specs), packets)
	}
	specs := b.specs[:packets]
	weights := make([]float64, packets)
	for i, s := range specs {
		weights[i] = s.weight
	}
	vols := appgen.ScaleVolumes(weights, totalBits)
	g := &model.CDCG{Name: name, Cores: b.cores}
	for i, s := range specs {
		g.Packets = append(g.Packets, model.Packet{
			ID: model.PacketID(i), Src: s.src, Dst: s.dst,
			Compute: s.compute, Bits: vols[i], Label: s.label,
		})
		for _, d := range s.deps {
			g.Deps = append(g.Deps, model.Dep{From: d, To: model.PacketID(i)})
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", name, err)
	}
	return g, nil
}

// Romberg builds a distributed Romberg integration over a binary
// scatter/reduce tree: each refinement round the current sub-interval
// table is scattered down a binary tree rooted at core 0 (every inner
// node forwards the halves its subtree integrates), the leaves and inner
// nodes compute their trapezoid sums, and partial sums are combined
// pairwise back up the tree — the log-depth reduction any efficient
// distributed quadrature uses. The next round's scatter (Richardson
// extrapolation at the root) depends on the completed reduction: a global
// barrier per round. Core 0 is the root; the tree is the implicit
// heap-shaped binary tree over cores 0..workers. Rounds are generated
// until at least `packets` packets exist, then truncated; volumes scale
// to totalBits.
func Romberg(workers, packets int, totalBits int64) (*model.CDCG, error) {
	if workers < 1 {
		return nil, fmt.Errorf("apps: romberg needs >=1 worker, got %d", workers)
	}
	n := workers + 1
	names := []string{"root"}
	for w := 1; w <= workers; w++ {
		names = append(names, fmt.Sprintf("worker%d", w))
	}
	b := &builder{cores: model.MakeCores(n, names...)}

	var barrier []model.PacketID // previous round's reduces into the root
	for round := 0; len(b.specs) < packets; round++ {
		// Scatter wave: node i forwards interval halves to children
		// 2i+1, 2i+2 once it received its own share.
		scatterIn := make([]model.PacketID, n) // packet delivering node i's share
		for i := range scatterIn {
			scatterIn[i] = -1
		}
		for i := 0; i < n; i++ {
			for _, ch := range []int{2*i + 1, 2*i + 2} {
				if ch >= n {
					continue
				}
				var deps []model.PacketID
				if scatterIn[i] >= 0 {
					deps = append(deps, scatterIn[i])
				} else {
					deps = append(deps, barrier...) // extrapolation barrier
				}
				scatterIn[ch] = b.add(spec{
					src: model.CoreID(i), dst: model.CoreID(ch),
					compute: 20, // split bounds, forward
					weight:  0.5,
					label:   fmt.Sprintf("scatter[r%d,%d->%d]", round, i, ch),
					deps:    deps,
				})
			}
		}
		// Reduce wave: every non-root node integrates its sub-interval
		// and sends the partial sum to its parent; a parent's combine
		// waits for both children (and its own share).
		reduceOut := make([]model.PacketID, n) // partial sum sent by node i
		for i := range reduceOut {
			reduceOut[i] = -1
		}
		for i := n - 1; i >= 1; i-- {
			parent := (i - 1) / 2
			deps := []model.PacketID{}
			if scatterIn[i] >= 0 {
				deps = append(deps, scatterIn[i])
			}
			for _, ch := range []int{2*i + 1, 2*i + 2} {
				if ch < n && reduceOut[ch] >= 0 {
					deps = append(deps, reduceOut[ch])
				}
			}
			reduceOut[i] = b.add(spec{
				src: model.CoreID(i), dst: model.CoreID(parent),
				compute: 120, // trapezoid sums over the sub-interval
				weight:  1.0,
				label:   fmt.Sprintf("reduce[r%d,%d->%d]", round, i, parent),
				deps:    deps,
			})
		}
		// The root's round completes when all its children reported.
		barrier = barrier[:0]
		for _, ch := range []int{1, 2} {
			if ch < n && reduceOut[ch] >= 0 {
				barrier = append(barrier, reduceOut[ch])
			}
		}
	}
	return b.build(fmt.Sprintf("romberg-w%d", workers), packets, totalBits)
}

// FFT8 builds the 8-point radix-2 FFT: one core per point, three butterfly
// stages with partner distances 4, 2, 1. At stage s every core sends its
// intermediate value to its butterfly partner; the stage-s send of core c
// depends on the value c received in stage s-1 and on c's own previous
// send (per-core program order). With gather=true a ninth core collects
// the eight results in a final stage (the paper's FFT "variation").
func FFT8(gather bool, packets int, totalBits int64) (*model.CDCG, error) {
	const points = 8
	n := points
	names := make([]string, points, points+1)
	for i := range names {
		names[i] = fmt.Sprintf("pt%d", i)
	}
	if gather {
		n++
		names = append(names, "collector")
	}
	b := &builder{cores: model.MakeCores(n, names...)}

	var prev [points]model.PacketID // last packet sent by each core
	var recv [points]model.PacketID // last packet received by each core
	for i := range prev {
		prev[i], recv[i] = -1, -1
	}
	for stage := 0; stage < 3; stage++ {
		dist := 4 >> stage
		var sent [points]model.PacketID
		for c := 0; c < points; c++ {
			partner := c ^ dist
			var deps []model.PacketID
			if recv[c] >= 0 {
				deps = append(deps, recv[c])
			}
			if prev[c] >= 0 && prev[c] != recv[c] {
				deps = append(deps, prev[c])
			}
			sent[c] = b.add(spec{
				src: model.CoreID(c), dst: model.CoreID(partner),
				compute: 16, // one complex butterfly + twiddle multiply
				weight:  1.0,
				label:   fmt.Sprintf("bfly[s%d,%d->%d]", stage, c, partner),
				deps:    deps,
			})
		}
		for c := 0; c < points; c++ {
			prev[c] = sent[c]
			recv[c] = sent[c^dist] // the packet the partner sent to c
		}
	}
	if gather {
		for c := 0; c < points; c++ {
			b.add(spec{
				src: model.CoreID(c), dst: model.CoreID(points),
				compute: 8,
				weight:  0.5,
				label:   fmt.Sprintf("gather[%d]", c),
				deps:    []model.PacketID{recv[c], prev[c]},
			})
		}
	}
	name := "fft8"
	if gather {
		name = "fft8-gather"
	}
	return b.build(name, packets, totalBits)
}

// ObjRecognition builds a frame-streaming object-recognition pipeline:
// camera → preprocessing → segmentation → parallel feature extractors →
// classifier → display. With cores >= 6; extractors = max(1, cores-5).
// Consecutive frames pipeline (each stage depends on its previous frame's
// packet), which is what creates mapping-sensitive link contention.
// Frames are generated until `packets` is reached, then truncated.
func ObjRecognition(cores, packets int, totalBits int64) (*model.CDCG, error) {
	if cores < 6 {
		return nil, fmt.Errorf("apps: object recognition needs >=6 cores, got %d", cores)
	}
	ext := cores - 5
	names := []string{"camera", "preproc", "segment"}
	for e := 0; e < ext; e++ {
		names = append(names, fmt.Sprintf("feature%d", e))
	}
	names = append(names, "classify", "display")
	b := &builder{cores: model.MakeCores(cores, names...)}
	cam, pre, seg := model.CoreID(0), model.CoreID(1), model.CoreID(2)
	clas, disp := model.CoreID(cores-2), model.CoreID(cores-1)

	// prevStage[i] is the previous frame's packet produced by stage i, so
	// each stage serialises across frames (it is one physical core).
	var prevCapture, prevSeg, prevOut model.PacketID = -1, -1, -1
	prevFeat := make([]model.PacketID, ext)
	for i := range prevFeat {
		prevFeat[i] = -1
	}
	dep := func(ids ...model.PacketID) []model.PacketID {
		var out []model.PacketID
		for _, id := range ids {
			if id >= 0 {
				out = append(out, id)
			}
		}
		return out
	}
	for frame := 0; len(b.specs) < packets; frame++ {
		capture := b.add(spec{src: cam, dst: pre, compute: 40,
			weight: 1.0, label: fmt.Sprintf("frame[%d]", frame),
			deps: dep(prevCapture)})
		segIn := b.add(spec{src: pre, dst: seg, compute: 150,
			weight: 0.8, label: fmt.Sprintf("preproc[%d]", frame),
			deps: dep(capture)})
		regions := make([]model.PacketID, ext)
		for e := 0; e < ext; e++ {
			regions[e] = b.add(spec{src: seg, dst: model.CoreID(3 + e), compute: 90,
				weight: 0.35, label: fmt.Sprintf("region[%d,%d]", frame, e),
				deps: dep(segIn, prevSeg)})
		}
		// Adjacent extractors work on overlapping image regions and
		// exchange the shared boundary strips before feature fusion.
		bounds := make([]model.PacketID, ext)
		for e := range bounds {
			bounds[e] = -1
		}
		if ext >= 2 {
			for e := 0; e < ext; e++ {
				bounds[e] = b.add(spec{
					src: model.CoreID(3 + e), dst: model.CoreID(3 + (e+1)%ext),
					compute: 45,
					weight:  0.3, label: fmt.Sprintf("bound[%d,%d->%d]", frame, e, (e+1)%ext),
					deps: dep(regions[e]),
				})
			}
		}
		var feats []model.PacketID
		for e := 0; e < ext; e++ {
			recvBound := model.PacketID(-1)
			if ext >= 2 {
				recvBound = bounds[(e+ext-1)%ext]
			}
			c := b.add(spec{src: model.CoreID(3 + e), dst: clas, compute: 200,
				weight: 0.08, label: fmt.Sprintf("feat[%d,%d]", frame, e),
				deps: dep(regions[e], recvBound, prevFeat[e])})
			feats = append(feats, c)
			prevFeat[e] = c
		}
		out := b.add(spec{src: clas, dst: disp, compute: 60,
			weight: 0.02, label: fmt.Sprintf("verdict[%d]", frame),
			deps: append(dep(prevOut), feats...)})
		prevCapture, prevSeg, prevOut = capture, segIn, out
	}
	return b.build(fmt.Sprintf("objrec-c%d", cores), packets, totalBits)
}

// ImageEncoder builds a block-parallel image encoder: a distributor
// scatters raw macroblock batches to worker cores (DCT + quantisation +
// entropy coding), each worker exchanges reconstructed boundary pixels
// with its ring neighbour (motion-estimation reference data), and the
// workers stream compressed blocks to a collector. Batches pipeline: the
// distributor serialises its scatters, each worker serialises its own
// batches. Core 0 distributes, core cores-1 collects. The symmetric
// worker↔worker exchange traffic gives the application many equal-volume
// flows — the placement-tie-rich regime where a volume-only mapper is
// blind to timing.
func ImageEncoder(cores, packets int, totalBits int64) (*model.CDCG, error) {
	if cores < 4 {
		return nil, fmt.Errorf("apps: image encoder needs >=4 cores, got %d", cores)
	}
	workers := cores - 2
	names := []string{"distrib"}
	for w := 0; w < workers; w++ {
		names = append(names, fmt.Sprintf("enc%d", w))
	}
	names = append(names, "collect")
	b := &builder{cores: model.MakeCores(cores, names...)}
	dist, coll := model.CoreID(0), model.CoreID(cores-1)
	worker := func(w int) model.CoreID { return model.CoreID(1 + w%workers) }

	prevScatter := make([]model.PacketID, workers)
	prevEmit := make([]model.PacketID, workers)
	for i := range prevScatter {
		prevScatter[i], prevEmit[i] = -1, -1
	}
	for batch := 0; len(b.specs) < packets; batch++ {
		scatters := make([]model.PacketID, workers)
		for w := 0; w < workers; w++ {
			var sdeps []model.PacketID
			if prevScatter[w] >= 0 {
				sdeps = append(sdeps, prevScatter[w])
			}
			scatters[w] = b.add(spec{src: dist, dst: worker(w), compute: 12,
				weight: 1.0, label: fmt.Sprintf("raw[b%d,w%d]", batch, w),
				deps: sdeps})
			prevScatter[w] = scatters[w]
		}
		refs := make([]model.PacketID, workers)
		for w := 0; w < workers; w++ {
			// Reconstructed boundary pixels to the ring neighbour: the
			// reference data its motion search needs.
			refs[w] = b.add(spec{src: worker(w), dst: worker(w + 1), compute: 140,
				weight: 0.8, label: fmt.Sprintf("ref[b%d,%d->%d]", batch, w, (w+1)%workers),
				deps: []model.PacketID{scatters[w]}})
		}
		for w := 0; w < workers; w++ {
			// Entropy-coded output after DCT+quant, which needs the
			// neighbour's reference block as well as this worker's raw
			// data.
			edeps := []model.PacketID{scatters[w], refs[(w+workers-1)%workers]}
			if prevEmit[w] >= 0 {
				edeps = append(edeps, prevEmit[w])
			}
			em := b.add(spec{src: worker(w), dst: coll, compute: 260,
				weight: 0.15, label: fmt.Sprintf("coded[b%d,w%d]", batch, w),
				deps: edeps})
			prevEmit[w] = em
		}
	}
	return b.build(fmt.Sprintf("imgenc-c%d", cores), packets, totalBits)
}
