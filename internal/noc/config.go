// Package noc holds the architectural configuration of the target
// network-on-chip: flit width, per-hop timing (the tr and tl parameters of
// equations (6)-(8)), the clock period λ, the routing discipline and the
// buffering policy.
package noc

import (
	"fmt"

	"repro/internal/topology"
)

// BufferPolicy selects how router input buffers behave under contention.
type BufferPolicy int

const (
	// BuffersUnbounded models infinitely deep input buffers: a blocked
	// packet is fully absorbed by the contended router, so upstream
	// resources drain on their nominal schedule. This is the policy of
	// the paper's worked example ("unbounded router buffers").
	BuffersUnbounded BufferPolicy = iota
	// BuffersBounded models input buffers of Config.BufferFlits flits:
	// when a packet stalls longer than the buffer can absorb, the stall
	// propagates upstream and extends the occupancy of earlier resources
	// (extension; see wormhole package for the analytic model).
	BuffersBounded
)

func (p BufferPolicy) String() string {
	if p == BuffersBounded {
		return "bounded"
	}
	return "unbounded"
}

// Config is the NoC architecture description shared by the wormhole timing
// simulator and the energy model.
type Config struct {
	// FlitBits is the link width: a packet of w bits becomes
	// ceil(w/FlitBits) flits. The paper's worked example uses 1.
	FlitBits int
	// RoutingCycles is tr, the cycles a router needs to take a routing
	// decision for the header flit.
	RoutingCycles int64
	// LinkCycles is tl, the cycles needed to move one flit across any
	// link (inter-tile or core↔router).
	LinkCycles int64
	// TSVLinkCycles is the per-flit traversal time of a vertical
	// (through-silicon-via) link on 3-D topologies, the tl analogue of the
	// TSV latency profile. 0 means "same as LinkCycles". Ignored on
	// depth-1 grids, which have no vertical links.
	TSVLinkCycles int64
	// ClockNS is the clock period λ in nanoseconds.
	ClockNS float64
	// Routing selects the deterministic routing function (XY or YX).
	Routing topology.RoutingAlgo
	// Buffers selects the input-buffer policy.
	Buffers BufferPolicy
	// BufferFlits is the input-buffer depth in flits; only meaningful
	// with BuffersBounded.
	BufferFlits int64
	// ArbitrateLocal, when true, makes the whole core-attachment path —
	// the core output link, the router's local output port and the core
	// input link — exclusive resources like the inter-tile ports. The
	// paper does NOT arbitrate that path: its CRG (Definition 3) contains
	// only tiles and inter-tile links as contention resources, and Figure
	// 3(b) shows B→F [16,56] and A→F [48,63] overlapping on core F's
	// input link. Core links remain timed (tl per flit) either way.
	// Leave false for paper-faithful behaviour; true is an ablation (see
	// EXPERIMENTS.md).
	ArbitrateLocal bool
}

// Default returns the configuration used by the experiment suite: 1-bit
// flits, tr=2, tl=1, 1 ns clock, XY routing, unbounded buffers — the
// parameters of the paper's own worked example. The bit-level link width
// is consistent with Table 1, whose totals go as low as 174 bits for a
// whole application; packet transmission times then sit in the same range
// as computation times, which is the regime where contention (and hence
// the CWM/CDCM gap) matters.
func Default() Config {
	return Config{
		FlitBits:      1,
		RoutingCycles: 2,
		LinkCycles:    1,
		ClockNS:       1,
		Routing:       topology.RouteXY,
		Buffers:       BuffersUnbounded,
	}
}

// PaperExample returns the exact configuration of the paper's Section 4.1
// example: tr=2 cycles, tl=1 cycle, λ=1 ns, one-bit flits, unbounded
// buffers, XY routing.
func PaperExample() Config {
	return Config{
		FlitBits:      1,
		RoutingCycles: 2,
		LinkCycles:    1,
		ClockNS:       1,
		Routing:       topology.RouteXY,
		Buffers:       BuffersUnbounded,
	}
}

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.FlitBits <= 0 {
		return fmt.Errorf("noc: flit width must be positive, got %d", c.FlitBits)
	}
	if c.RoutingCycles < 0 {
		return fmt.Errorf("noc: routing cycles must be non-negative, got %d", c.RoutingCycles)
	}
	if c.LinkCycles <= 0 {
		return fmt.Errorf("noc: link cycles must be positive, got %d", c.LinkCycles)
	}
	if c.ClockNS <= 0 {
		return fmt.Errorf("noc: clock period must be positive, got %g", c.ClockNS)
	}
	switch c.Routing {
	case topology.RouteXY, topology.RouteYX, topology.RouteXYZ, topology.RouteZYX, topology.RouteFA:
	default:
		return fmt.Errorf("noc: unknown routing algorithm %d", c.Routing)
	}
	if c.TSVLinkCycles < 0 {
		return fmt.Errorf("noc: TSV link cycles must be non-negative, got %d", c.TSVLinkCycles)
	}
	if c.Buffers == BuffersBounded && c.BufferFlits <= 0 {
		return fmt.Errorf("noc: bounded buffers need a positive depth, got %d", c.BufferFlits)
	}
	return nil
}

// Flits returns the number of flits of a packet of the given bit volume:
// n_abq = ceil(w_abq / FlitBits).
//nocvet:noalloc
func (c Config) Flits(bits int64) int64 {
	if bits <= 0 {
		return 0
	}
	fb := int64(c.FlitBits)
	return (bits + fb - 1) / fb
}

// TSVCycles returns the effective per-flit vertical-link traversal time:
// TSVLinkCycles when set, LinkCycles otherwise. The wormhole simulator
// applies it per vertical hop, so on depth-1 grids it never enters any
// timing computation.
//nocvet:noalloc
func (c Config) TSVCycles() int64 {
	if c.TSVLinkCycles > 0 {
		return c.TSVLinkCycles
	}
	return c.LinkCycles
}

// UncontendedDelay returns the total packet delay of equation (8) in
// cycles for a packet of n flits crossing K routers without contention:
// d = K*(tr+tl) + tl*n. The eq-(6)-(8) helpers assume the uniform
// per-hop link time tl of the paper's 2-D model; on 3-D grids with
// TSVLinkCycles ≠ LinkCycles the simulator prices each hop individually
// and these closed forms are horizontal-path approximations.
func (c Config) UncontendedDelay(k int, flits int64) int64 {
	return int64(k)*(c.RoutingCycles+c.LinkCycles) + c.LinkCycles*flits
}

// RoutingDelay returns the routing (path set-up) delay of equation (6) in
// cycles: dR = K*(tr+tl) + tl.
func (c Config) RoutingDelay(k int) int64 {
	return int64(k)*(c.RoutingCycles+c.LinkCycles) + c.LinkCycles
}

// PayloadDelay returns the payload streaming delay of equation (7) in
// cycles: dP = tl*(n-1).
func (c Config) PayloadDelay(flits int64) int64 {
	if flits <= 0 {
		return 0
	}
	return c.LinkCycles * (flits - 1)
}

// CyclesToNS converts a cycle count to nanoseconds using λ.
func (c Config) CyclesToNS(cycles int64) float64 { return float64(cycles) * c.ClockNS }

// CyclesToSeconds converts a cycle count to seconds using λ.
//nocvet:noalloc
func (c Config) CyclesToSeconds(cycles int64) float64 { return float64(cycles) * c.ClockNS * 1e-9 }
