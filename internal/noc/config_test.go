package noc

import (
	"testing"

	"repro/internal/topology"
)

func TestDefaultsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	if err := PaperExample().Validate(); err != nil {
		t.Fatalf("PaperExample invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero flit", func(c *Config) { c.FlitBits = 0 }},
		{"negative tr", func(c *Config) { c.RoutingCycles = -1 }},
		{"zero tl", func(c *Config) { c.LinkCycles = 0 }},
		{"zero clock", func(c *Config) { c.ClockNS = 0 }},
		{"bad routing", func(c *Config) { c.Routing = topology.RoutingAlgo(9) }},
		{"bounded without depth", func(c *Config) { c.Buffers = BuffersBounded; c.BufferFlits = 0 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
}

func TestFlits(t *testing.T) {
	c := Config{FlitBits: 16, RoutingCycles: 2, LinkCycles: 1, ClockNS: 1} // 16-bit flits
	cases := []struct{ bits, want int64 }{
		{1, 1}, {15, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {0, 0}, {-5, 0},
	}
	for _, tc := range cases {
		if got := c.Flits(tc.bits); got != tc.want {
			t.Errorf("Flits(%d) = %d, want %d", tc.bits, got, tc.want)
		}
	}
	p := PaperExample() // 1-bit flits: n equals w
	if p.Flits(40) != 40 {
		t.Errorf("paper Flits(40) = %d", p.Flits(40))
	}
}

func TestDelayEquations(t *testing.T) {
	c := PaperExample() // tr=2 tl=1
	// Paper example B→F: K=2 routers, 40 flits: d = 2*3 + 40 = 46.
	if got := c.UncontendedDelay(2, 40); got != 46 {
		t.Errorf("UncontendedDelay = %d, want 46", got)
	}
	// eq(6): dR = K(tr+tl) + tl = 7 for K=2.
	if got := c.RoutingDelay(2); got != 7 {
		t.Errorf("RoutingDelay = %d, want 7", got)
	}
	// eq(7): dP = tl(n-1) = 39 for 40 flits.
	if got := c.PayloadDelay(40); got != 39 {
		t.Errorf("PayloadDelay = %d, want 39", got)
	}
	if got := c.PayloadDelay(0); got != 0 {
		t.Errorf("PayloadDelay(0) = %d", got)
	}
	// eq(8) = eq(6) + eq(7).
	if c.UncontendedDelay(2, 40) != c.RoutingDelay(2)+c.PayloadDelay(40) {
		t.Error("eq(8) != eq(6)+eq(7)")
	}
}

func TestUnitConversions(t *testing.T) {
	c := Default()
	c.ClockNS = 2.5
	if got := c.CyclesToNS(4); got != 10 {
		t.Errorf("CyclesToNS = %g", got)
	}
	if got := c.CyclesToSeconds(4); got != 10e-9 {
		t.Errorf("CyclesToSeconds = %g", got)
	}
}

func TestPolicyString(t *testing.T) {
	if BuffersUnbounded.String() != "unbounded" || BuffersBounded.String() != "bounded" {
		t.Fatal("BufferPolicy.String mismatch")
	}
}

func TestTSVCyclesAndValidation(t *testing.T) {
	c := Default()
	if c.TSVCycles() != c.LinkCycles {
		t.Fatalf("TSVCycles default = %d, want LinkCycles %d", c.TSVCycles(), c.LinkCycles)
	}
	c.TSVLinkCycles = 3
	if c.TSVCycles() != 3 {
		t.Fatalf("TSVCycles = %d, want 3", c.TSVCycles())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("TSV config rejected: %v", err)
	}
	c.TSVLinkCycles = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative TSV cycles accepted")
	}
	for _, algo := range []topology.RoutingAlgo{topology.RouteXY, topology.RouteYX, topology.RouteXYZ, topology.RouteZYX} {
		c := Default()
		c.Routing = algo
		if err := c.Validate(); err != nil {
			t.Fatalf("%v rejected: %v", algo, err)
		}
	}
	bad := Default()
	bad.Routing = topology.RoutingAlgo(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown routing accepted")
	}
}
