package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 128)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatalf("submit %d refused", i)
		}
	}
	p.Close()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBackpressureAndClose(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submit refused")
	}
	<-started // the worker is now busy; the queue is empty
	if !p.TrySubmit(func() {}) {
		t.Fatal("queued submit refused")
	}
	// Worker busy + queue full: backpressure must refuse, not block.
	if p.TrySubmit(func() {}) {
		t.Fatal("overfull queue accepted a task")
	}
	if p.Queued() != 1 || p.Running() != 1 {
		t.Fatalf("queued=%d running=%d, want 1/1", p.Queued(), p.Running())
	}
	close(block)
	p.Close() // drains the queued task
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted a task")
	}
	p.Close() // idempotent
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 10, 4, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-canceled ctx", ran.Load())
	}
}

func TestForEachCtxSerialStopsAtCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForEachCtx(ctx, 100, 1, func(i int) error {
		ran++
		if i == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 4 {
		t.Fatalf("ran %d tasks, want exactly 4 (cancel after index 3)", ran)
	}
}

func TestForEachCtxParallelSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	gate := make(chan struct{})
	err := ForEachCtx(ctx, 1000, 2, func(i int) error {
		if i == 0 {
			cancel()
			close(gate)
		} else {
			<-gate // no task outruns the cancellation
		}
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Fatalf("cancellation skipped nothing (%d ran)", ran)
	}
}

func TestForEachCtxTaskErrorBeatsCtxError(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtx(ctx, 10, 2, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error to win", err)
	}
}

func TestForEachCtxNilCtxMatchesForEach(t *testing.T) {
	var a, b atomic.Int64
	if err := ForEach(50, 4, func(int) error { a.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachCtx(nil, 50, 4, func(int) error { b.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != b.Load() {
		t.Fatalf("nil-ctx variant ran %d tasks, ForEach ran %d", b.Load(), a.Load())
	}
}
