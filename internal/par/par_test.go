package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var ran [50]int32
		err := ForEach(50, workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		err := ForEach(20, workers, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want task 7's error", workers, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	// Tasks below the failing index always run; tasks far above it must
	// not all be ground through once the failure is visible.
	var ran [200]int32
	boom := errors.New("boom")
	err := ForEach(200, 2, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	for i := 0; i <= 3; i++ {
		if ran[i] != 1 {
			t.Fatalf("task %d below the failure did not run", i)
		}
	}
	var total int32
	for i := range ran {
		total += ran[i]
	}
	if total == 200 {
		t.Fatal("all 200 tasks ran despite an early failure")
	}
}

func TestForEachWorkerLaneBounds(t *testing.T) {
	// Worker ids must stay within [0, min(workers, n)) so callers can
	// index per-lane state safely.
	var bad int32
	err := ForEachWorker(40, 4, func(w, i int) error {
		if w < 0 || w >= 4 {
			atomic.AddInt32(&bad, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct{ in, want int }{{-3, 1}, {0, 1}, {1, 1}, {8, 8}}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}
