package par

import (
	"sync"
	"sync/atomic"
)

// Pool is the daemon-facing sibling of ForEach: a long-lived bounded
// worker pool with a bounded submission queue. ForEach serves one-shot
// batch fan-outs of a known size; Pool serves an open-ended stream of
// jobs arriving over time (the nocd mapping service schedules its job
// queue onto one). Backpressure is explicit — TrySubmit refuses instead
// of blocking when the queue is full — so callers can turn a saturated
// pool into a visible rejection (HTTP 429) rather than unbounded memory
// growth.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	queued  atomic.Int64
	running atomic.Int64
}

// NewPool starts a pool of Workers(workers) goroutines with a submission
// queue of the given capacity (minimum 1). The pool runs until Close.
func NewPool(workers, queue int) *Pool {
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan func(), queue)}
	n := Workers(workers)
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.queued.Add(-1)
		p.running.Add(1)
		task()
		p.running.Add(-1)
	}
}

// TrySubmit enqueues task for execution, or reports false when the queue
// is full or the pool is closed. Tasks run in submission order across the
// pool, concurrently up to the worker count.
func (p *Pool) TrySubmit(task func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- task:
		p.queued.Add(1)
		return true
	default:
		return false
	}
}

// Queued returns the number of submitted tasks that have not yet started.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Close stops accepting new tasks, drains every already-queued task, and
// waits for all workers to finish. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
