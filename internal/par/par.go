// Package par provides the minimal deterministic fan-out primitive shared
// by the parallel exploration paths: a bounded worker pool over an indexed
// job set. Determinism is the design constraint — callers store results by
// job index and merge in index order, so the observable outcome is
// independent of the worker count and of goroutine scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count option: values < 1 mean "one worker"
// (serial execution), everything else is returned unchanged. Callers that
// want hardware-sized pools pass runtime.NumCPU() explicitly (the CLIs'
// -workers default).
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// DefaultWorkers is the CLI-facing default: one worker per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// ForEach runs task(0..n-1) on up to `workers` goroutines and waits for
// completion. Dispatch is in index order and stops once any task has
// failed (higher-index tasks not yet dispatched are skipped, so a failing
// batch doesn't grind through the rest of its jobs); every task below the
// first failing index is guaranteed to have run, which makes the returned
// lowest-index error deterministic under any scheduling. workers <= 1
// degenerates to a plain loop on the calling goroutine (no goroutines
// spawned), so the serial path stays trivially debuggable.
func ForEach(n, workers int, task func(i int) error) error {
	return ForEachWorker(n, workers, func(_, i int) error { return task(i) })
}

// ForEachCtx is ForEach with cancellation: once ctx is done, tasks not yet
// dispatched are skipped and the call returns — the lowest-index task
// error if one exists (tasks that poll ctx themselves typically surface
// ctx.Err() that way), ctx.Err() otherwise. A nil ctx is exactly ForEach.
func ForEachCtx(ctx context.Context, n, workers int, task func(i int) error) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) error { return task(i) })
}

// ForEachWorker is ForEach with the pool lane exposed: task(w, i) runs
// job i on worker goroutine w, where w is in [0, min(workers, n)). A
// given w is never concurrent with itself, so callers can hand each
// worker a private instance of non-concurrency-safe state (the search
// engines allocate one objective evaluator per worker this way). Which
// worker runs which job is scheduling-dependent — determinism of the
// overall computation must come from the per-worker state being
// semantically identical across lanes.
func ForEachWorker(n, workers int, task func(worker, i int) error) error {
	return ForEachWorkerCtx(nil, n, workers, task)
}

// ForEachWorkerCtx is ForEachWorker with cancellation, with the same
// error-priority rule as ForEachCtx: task errors (lowest index) win over
// the bare ctx.Err(). A nil ctx is exactly ForEachWorker.
func ForEachWorkerCtx(ctx context.Context, n, workers int, task func(worker, i int) error) error {
	if n <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := task(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if err := task(w, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	ctxErr := dispatch(ctx, n, next, &failed)
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctxErr
}

// dispatch feeds job indices in order until all are sent, a task has
// failed, or ctx is done; it returns ctx's error in the last case. Kept
// out of ForEachWorkerCtx so the nil-ctx path pays no select.
func dispatch(ctx context.Context, n int, next chan<- int, failed *atomic.Bool) error {
	if ctx == nil {
		for i := 0; i < n && !failed.Load(); i++ {
			next <- i
		}
		return nil
	}
	done := ctx.Done()
	for i := 0; i < n && !failed.Load(); i++ {
		select {
		case next <- i:
		case <-done:
			return ctx.Err()
		}
	}
	return ctx.Err()
}
