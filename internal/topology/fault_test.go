package topology

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// This file pins the fault-injection contracts the resilience objective
// (internal/core) and the fault-aware wormhole simulator build on:
//
//   - a nil or empty FaultSet routes bit-identically to the intact grid;
//   - fault-aware routes never cross a failed link or router, and report
//     ErrUnreachable exactly when the faulted graph is disconnected;
//   - K stays direction-symmetric under (bidirectional) faults;
//   - GenerateFaults is a pure function of (mesh, rate, seed);
//   - the canonical element enumeration behind cache keys and per-fault
//     breakdowns is stable.

// TestTorusTieBreakPositive is the regression test for the chooseDir
// tie-break: on an even-size torus dimension whose two wrap directions
// are equally short, the route must take the positive direction (East,
// South, Down) as the doc comment promises. The pre-fix code kept the
// negative direction on ties.
func TestTorusTieBreakPositive(t *testing.T) {
	cases := []struct {
		name     string
		w, h, d  int
		src, dst TileID
		want     []TileID
	}{
		// 4-wide ring, x: 3->1 is 2 hops either way; East wins: 3,0,1.
		{"x-axis", 4, 1, 1, 3, 1, []TileID{3, 0, 1}},
		// 4-tall ring, y: tie breaks South (positive y).
		{"y-axis", 1, 4, 1, 3, 1, []TileID{3, 0, 1}},
		// 4-deep ring, z: tie breaks Down (positive z).
		{"z-axis", 1, 1, 4, 3, 1, []TileID{3, 0, 1}},
	}
	for _, tc := range cases {
		m, err := NewTorus3D(tc.w, tc.h, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []RoutingAlgo{RouteXY, RouteYX, RouteXYZ, RouteZYX, RouteFA} {
			r, err := m.Route(algo, tc.src, tc.dst)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r.Tiles, tc.want) {
				t.Errorf("%s %v: route %d->%d = %v, want %v (positive-direction tie-break)",
					tc.name, algo, tc.src, tc.dst, r.Tiles, tc.want)
			}
		}
	}
	// The fix must not disturb non-tie wraps: on the same 4-wide ring,
	// 0->3 is 1 hop West and stays West.
	m, err := NewTorus(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Route(RouteXY, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := []TileID{0, 3}; !reflect.DeepEqual(r.Tiles, want) {
		t.Errorf("non-tie wrap 0->3 = %v, want %v", r.Tiles, want)
	}
}

// TestRouteFaultEmptyMatchesRoute pins the zero-cost contract: with a nil
// or empty fault set, RouteFault returns exactly the intact Route —
// same tiles, hop for hop — on every grid and algorithm (RouteFA
// included, which by definition routes like RouteXY when intact).
func TestRouteFaultEmptyMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	algos := append(append([]RoutingAlgo(nil), propertyAlgos...), RouteFA)
	for name, m := range propertyGrids(t) {
		empty := NewFaultSet(m)
		for _, algo := range algos {
			for trial := 0; trial < 30; trial++ {
				src := TileID(rng.Intn(m.NumTiles()))
				dst := TileID(rng.Intn(m.NumTiles()))
				want, err := m.Route(algo, src, dst)
				if err != nil {
					t.Fatal(err)
				}
				for _, fs := range []*FaultSet{nil, empty} {
					got, err := m.RouteFault(algo, fs, src, dst)
					if err != nil {
						t.Fatalf("%s %v: RouteFault with empty set: %v", name, algo, err)
					}
					if !reflect.DeepEqual(got.Tiles, want.Tiles) {
						t.Fatalf("%s %v %d->%d: empty-fault route %v != intact %v",
							name, algo, src, dst, got.Tiles, want.Tiles)
					}
				}
			}
		}
	}
}

// faultedDist floods the faulted graph from src and returns shortest hop
// distances, an independent reference for the reachability and
// lower-bound checks (it shares no code with FaultSet.bfs).
func faultedDist(m *Mesh, fs *FaultSet, src TileID) []int {
	n := m.NumTiles()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if fs.RouterFailed(src) {
		return dist
	}
	dist[src] = 0
	queue := []TileID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dir := East; dir <= Up; dir++ {
			nt, ok := m.step(cur, dir)
			if !ok {
				continue
			}
			li, _ := m.LinkIndex(cur, nt)
			if fs.LinkFailed(li) || fs.RouterFailed(nt) || dist[nt] >= 0 {
				continue
			}
			dist[nt] = dist[cur] + 1
			queue = append(queue, nt)
		}
	}
	return dist
}

// TestRouteFaultProperties samples random fault sets over the grid matrix
// and checks, for every ordered pair, the contracts RouteFault documents:
// the route spans src->dst over real links, never touches a failed link
// or router, is at least as long as the faulted graph's shortest path,
// ErrUnreachable fires exactly on disconnection, and K stays symmetric.
func TestRouteFaultProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, m := range propertyGrids(t) {
		n := m.NumTiles()
		if n > 36 {
			continue // all-pairs walks; keep the matrix cheap
		}
		for trial := 0; trial < 4; trial++ {
			fs, err := GenerateFaults(m, 0.18, int64(trial*13+1))
			if err != nil {
				t.Fatal(err)
			}
			// Mix in a failed router on larger grids so router avoidance
			// is exercised too, not just link avoidance.
			if n >= 9 {
				if err := fs.FailRouter(TileID(rng.Intn(n))); err != nil {
					t.Fatal(err)
				}
			}
			if fs.Empty() {
				continue
			}
			hops := make(map[[2]TileID]int)
			for a := 0; a < n; a++ {
				dist := faultedDist(m, fs, TileID(a))
				for b := 0; b < n; b++ {
					src, dst := TileID(a), TileID(b)
					r, err := m.RouteFault(RouteFA, fs, src, dst)
					reachable := dist[dst] >= 0 && !fs.RouterFailed(src)
					if err != nil {
						if !errors.Is(err, ErrUnreachable) {
							t.Fatalf("%s trial %d %d->%d: %v", name, trial, src, dst, err)
						}
						if reachable {
							t.Fatalf("%s trial %d %d->%d: ErrUnreachable but graph distance %d",
								name, trial, src, dst, dist[dst])
						}
						hops[[2]TileID{src, dst}] = -1
						continue
					}
					if !reachable {
						t.Fatalf("%s trial %d %d->%d: route %v through a disconnected pair",
							name, trial, src, dst, r.Tiles)
					}
					if r.Tiles[0] != src || r.Tiles[len(r.Tiles)-1] != dst {
						t.Fatalf("%s trial %d: route %v does not span %d->%d", name, trial, r.Tiles, src, dst)
					}
					for i := 0; i+1 < len(r.Tiles); i++ {
						li, ok := m.LinkIndex(r.Tiles[i], r.Tiles[i+1])
						if !ok {
							t.Fatalf("%s trial %d: step %d->%d is not a link", name, trial, r.Tiles[i], r.Tiles[i+1])
						}
						if fs.LinkFailed(li) {
							t.Fatalf("%s trial %d %d->%d: route %v crosses failed link %d-%d",
								name, trial, src, dst, r.Tiles, r.Tiles[i], r.Tiles[i+1])
						}
					}
					for _, tile := range r.Tiles {
						if fs.RouterFailed(tile) {
							t.Fatalf("%s trial %d %d->%d: route %v visits failed router %d",
								name, trial, src, dst, r.Tiles, tile)
						}
					}
					if r.Hops() < dist[dst] {
						t.Fatalf("%s trial %d %d->%d: %d hops beats shortest path %d",
							name, trial, src, dst, r.Hops(), dist[dst])
					}
					hops[[2]TileID{src, dst}] = r.Hops()
				}
			}
			for pair, h := range hops {
				if rev := hops[[2]TileID{pair[1], pair[0]}]; rev != h {
					t.Fatalf("%s trial %d: K(%d,%d) hops %d != K(%d,%d) hops %d under faults",
						name, trial, pair[0], pair[1], h, pair[1], pair[0], rev)
				}
			}
		}
	}
}

// TestRouteFaultFailedEndpoints pins the endpoint rule: a failed source
// or destination router is ErrUnreachable, not a crash or a route.
func TestRouteFaultFailedEndpoints(t *testing.T) {
	m, err := NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet(m)
	if err := fs.FailRouter(4); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]TileID{{4, 0}, {0, 4}, {4, 4}} {
		if _, err := m.RouteFault(RouteFA, fs, pair[0], pair[1]); !errors.Is(err, ErrUnreachable) {
			t.Errorf("route %d->%d with failed router 4: err = %v, want ErrUnreachable", pair[0], pair[1], err)
		}
	}
	// The center router failed on a 3x3 forces corner-to-corner detours:
	// still reachable, just longer.
	r, err := m.RouteFault(RouteFA, fs, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops() < m.MinHops(0, 8) {
		t.Fatalf("detour route %v shorter than MinHops", r.Tiles)
	}
	for _, tile := range r.Tiles {
		if tile == 4 {
			t.Fatalf("route %v crosses the failed center router", r.Tiles)
		}
	}
}

// TestFaultSetBasics covers construction, idempotence, validation and the
// canonical enumeration/key used by cache keys and fault breakdowns.
func TestFaultSetBasics(t *testing.T) {
	m, err := NewMesh3D(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nilSet *FaultSet
	if !nilSet.Empty() || nilSet.NumFailed() != 0 || nilSet.Key() != "" {
		t.Fatal("nil fault set is not empty")
	}
	if nilSet.LinkFailed(0) || nilSet.RouterFailed(0) {
		t.Fatal("nil fault set reports failures")
	}

	fs := NewFaultSet(m)
	if !fs.Empty() {
		t.Fatal("fresh fault set not empty")
	}
	if err := fs.FailLink(0, 2); err == nil {
		t.Fatal("FailLink accepted non-adjacent tiles")
	}
	if err := fs.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailLink(1, 0); err != nil { // idempotent, either order
		t.Fatal(err)
	}
	if fs.NumFailed() != 1 {
		t.Fatalf("NumFailed = %d after double-failing one pair", fs.NumFailed())
	}
	li, _ := m.LinkIndex(0, 1)
	ri, _ := m.LinkIndex(1, 0)
	if !fs.LinkFailed(li) || !fs.LinkFailed(ri) {
		t.Fatal("link failure not bidirectional")
	}
	if err := fs.FailTSV(0, 1); err == nil {
		t.Fatal("FailTSV accepted a horizontal link")
	}
	if err := fs.FailTSV(0, 9); err != nil { // 3x3x2: tile 9 is below tile 0
		t.Fatal(err)
	}
	if err := fs.FailRouter(5); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailRouter(99); err == nil {
		t.Fatal("FailRouter accepted an out-of-range tile")
	}
	if got, want := fs.Key(), "router 5,link 0-1,tsv 0-9"; got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
	els := fs.Elements()
	if len(els) != 3 {
		t.Fatalf("Elements = %v, want 3", els)
	}
	for _, e := range els {
		single, err := fs.Singleton(e)
		if err != nil {
			t.Fatal(err)
		}
		if single.NumFailed() != 1 || single.Key() != e.String() {
			t.Fatalf("Singleton(%v) = %q", e, single.Key())
		}
	}
}

// TestGenerateFaultsDeterministic pins GenerateFaults as a pure function
// of (mesh, rate, seed) and its validation.
func TestGenerateFaultsDeterministic(t *testing.T) {
	m, err := NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateFaults(m, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaults(m, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("same (mesh,rate,seed) gave %q then %q", a.Key(), b.Key())
	}
	if a.Empty() {
		t.Fatal("rate 0.2 on 4x4 with seed 11 generated no faults; pick a different pin")
	}
	c, err := GenerateFaults(m, 0.2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Fatal("different seeds generated identical fault sets")
	}
	zero, err := GenerateFaults(m, 0, 11)
	if err != nil || !zero.Empty() {
		t.Fatalf("rate 0: %v, empty=%v", err, zero.Empty())
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := GenerateFaults(m, bad, 1); err == nil {
			t.Errorf("rate %g accepted", bad)
		}
	}
}

// TestRouteFaultMismatchedMesh pins the cross-mesh guard.
func TestRouteFaultMismatchedMesh(t *testing.T) {
	m1, _ := NewMesh(3, 3)
	m2, _ := NewMesh(3, 3)
	fs := NewFaultSet(m2)
	if err := fs.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.RouteFault(RouteFA, fs, 0, 8); err == nil {
		t.Fatal("RouteFault accepted a fault set over a different mesh")
	}
}
