package topology

import "testing"

func TestMesh3DBasics(t *testing.T) {
	m, err := NewMesh3D(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 || m.H() != 2 || m.D() != 4 {
		t.Fatalf("dims %dx%dx%d", m.W(), m.H(), m.D())
	}
	if m.NumTiles() != 24 {
		t.Fatalf("NumTiles = %d", m.NumTiles())
	}
	// Coord/TileAt round-trip over every tile.
	for i := 0; i < m.NumTiles(); i++ {
		c := m.Coord(TileID(i))
		if got := m.TileAt(c.X, c.Y, c.Z); got != TileID(i) {
			t.Fatalf("tile %d -> %+v -> %d", i, c, got)
		}
	}
	// Layer 0 numbering matches the 2-D mesh exactly.
	flat, err := NewMesh(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if m.TileAt(x, y, 0) != flat.Tile(x, y) {
				t.Fatalf("layer-0 tile (%d,%d) renumbered", x, y)
			}
		}
	}
	// Vertical neighbours cross exactly one layer.
	down, ok := m.Neighbor(m.TileAt(1, 1, 0), Down)
	if !ok || down != m.TileAt(1, 1, 1) {
		t.Fatalf("Down from (1,1,0) = %d, ok=%v", down, ok)
	}
	if _, ok := m.Neighbor(m.TileAt(0, 0, 0), Up); ok {
		t.Fatal("Up from the top layer exists on a mesh")
	}
	if _, ok := m.Neighbor(m.TileAt(0, 0, 3), Down); ok {
		t.Fatal("Down from the bottom layer exists on a mesh")
	}
}

// TestMesh3DLinkCounts pins the directed-link census: horizontal links
// replicate per layer, vertical (TSV) links connect adjacent layers, and
// LinkVertical classifies exactly the latter.
func TestMesh3DLinkCounts(t *testing.T) {
	for _, tc := range []struct{ w, h, d int }{{2, 2, 2}, {3, 2, 4}, {4, 4, 2}, {1, 1, 5}} {
		m, err := NewMesh3D(tc.w, tc.h, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		horiz := tc.d * (2*(tc.w-1)*tc.h + 2*tc.w*(tc.h-1))
		vert := 2 * tc.w * tc.h * (tc.d - 1)
		if m.NumLinks() != horiz+vert {
			t.Fatalf("%dx%dx%d: %d links, want %d+%d", tc.w, tc.h, tc.d, m.NumLinks(), horiz, vert)
		}
		gotVert := 0
		for i := 0; i < m.NumLinks(); i++ {
			if m.LinkVertical(i) {
				gotVert++
			}
		}
		if gotVert != vert {
			t.Fatalf("%dx%dx%d: %d vertical links, want %d", tc.w, tc.h, tc.d, gotVert, vert)
		}
	}
}

func TestTorus3DWrapAndVerticalHops(t *testing.T) {
	m, err := NewTorus3D(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every dimension of size > 1 contributes two directed links per tile.
	if want := m.NumTiles() * 6; m.NumLinks() != want {
		t.Fatalf("links = %d, want %d", m.NumLinks(), want)
	}
	// Z wraps: Up from layer 0 lands on layer 3.
	up, ok := m.Neighbor(m.TileAt(0, 0, 0), Up)
	if !ok || up != m.TileAt(0, 0, 3) {
		t.Fatalf("Up from layer 0 = %d, ok=%v", up, ok)
	}
	// Wrap shortcut: layers 0 and 3 are one vertical hop apart.
	if got := m.VerticalHops(m.TileAt(0, 0, 0), m.TileAt(0, 0, 3)); got != 1 {
		t.Fatalf("VerticalHops(0,3 layers) = %d on a depth-4 torus", got)
	}
	if got := m.MinHops(m.TileAt(1, 1, 0), m.TileAt(0, 0, 2)); got != 4 {
		t.Fatalf("MinHops = %d, want 4", got)
	}
	// Depth-1 grids report no vertical hops anywhere.
	flat, err := NewTorus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flat.VerticalHops(0, 8) != 0 || flat.LinkVertical(0) {
		t.Fatal("depth-1 torus reports vertical structure")
	}
}

// TestMesh3DDepth1Identical pins the D=1 special case: construction,
// numbering, link enumeration and routing of NewMesh3D(w, h, 1) are
// bit-identical to NewMesh(w, h).
func TestMesh3DDepth1Identical(t *testing.T) {
	for _, tc := range []struct {
		w, h  int
		torus bool
	}{{3, 2, false}, {4, 4, false}, {3, 3, true}} {
		var m2, m3 *Mesh
		var err error
		if tc.torus {
			m2, err = NewTorus(tc.w, tc.h)
			if err == nil {
				m3, err = NewTorus3D(tc.w, tc.h, 1)
			}
		} else {
			m2, err = NewMesh(tc.w, tc.h)
			if err == nil {
				m3, err = NewMesh3D(tc.w, tc.h, 1)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		if m2.NumTiles() != m3.NumTiles() || m2.NumLinks() != m3.NumLinks() {
			t.Fatalf("%dx%d: tile/link census differs: %d/%d vs %d/%d",
				tc.w, tc.h, m2.NumTiles(), m2.NumLinks(), m3.NumTiles(), m3.NumLinks())
		}
		for a := 0; a < m2.NumTiles(); a++ {
			for b := 0; b < m2.NumTiles(); b++ {
				li2, ok2 := m2.LinkIndex(TileID(a), TileID(b))
				li3, ok3 := m3.LinkIndex(TileID(a), TileID(b))
				if ok2 != ok3 || li2 != li3 {
					t.Fatalf("link %d->%d: (%d,%v) vs (%d,%v)", a, b, li2, ok2, li3, ok3)
				}
				for _, algo := range []RoutingAlgo{RouteXY, RouteYX, RouteXYZ, RouteZYX} {
					r2, err := m2.Route(algo, TileID(a), TileID(b))
					if err != nil {
						t.Fatal(err)
					}
					r3, err := m3.Route(algo, TileID(a), TileID(b))
					if err != nil {
						t.Fatal(err)
					}
					if len(r2.Tiles) != len(r3.Tiles) {
						t.Fatalf("route %d->%d lengths differ", a, b)
					}
					for i := range r2.Tiles {
						if r2.Tiles[i] != r3.Tiles[i] {
							t.Fatalf("route %d->%d diverges at hop %d", a, b, i)
						}
					}
				}
			}
		}
	}
}
