package topology

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// ErrUnreachable reports that a fault set partitions the grid between a
// route's source and destination: no path exists that avoids every failed
// link and router. It is a sentinel — callers test it with errors.Is and
// score the pair with a documented penalty instead of aborting.
var ErrUnreachable = errors.New("topology: destination unreachable under fault set")

// FaultSet is a set of failed NoC elements — links (including vertical
// TSV links) and routers — layered over one Mesh. It is pure data: the
// mesh itself is never mutated, so intact fast paths (Route, LinkIndex,
// the wormhole route table built without faults) are untouched by the
// existence of fault sets. Link failures are bidirectional: failing the
// a→b link always fails b→a too, which is what keeps fault-aware routing
// symmetric (K(a,b) == K(b,a), the invariant the delta evaluators and
// property tests rely on).
//
// A FaultSet is built once (explicit Fail* calls or GenerateFaults) and
// read-only afterwards; readers may share it across goroutines.
type FaultSet struct {
	m      *Mesh
	link   []bool // dense directed link index → failed
	router []bool // tile → failed

	failedPairs   int // bidirectional link pairs failed
	failedRouters int
}

// NewFaultSet returns an empty fault set over m.
func NewFaultSet(m *Mesh) *FaultSet {
	return &FaultSet{
		m:      m,
		link:   make([]bool, m.NumLinks()),
		router: make([]bool, m.NumTiles()),
	}
}

// Mesh returns the grid the fault set is defined over.
func (f *FaultSet) Mesh() *Mesh { return f.m }

// Empty reports whether no element is failed. A nil *FaultSet is empty:
// every fault-aware entry point treats nil and empty identically as "the
// intact grid".
func (f *FaultSet) Empty() bool {
	return f == nil || (f.failedPairs == 0 && f.failedRouters == 0)
}

// NumFailed returns the failed element count: bidirectional link pairs
// plus routers.
func (f *FaultSet) NumFailed() int {
	if f == nil {
		return 0
	}
	return f.failedPairs + f.failedRouters
}

// FailLink fails the bidirectional link between adjacent tiles a and b
// (both directed links). On a 2-size torus dimension two parallel links
// join the same tile pair (the direct hop and the wrap); they fail
// together as one pair — LinkIndex cannot tell them apart, so a route
// "between a and b" must not survive on the parallel edge. FailLink is
// idempotent and errors if the tiles are not adjacent.
func (f *FaultSet) FailLink(a, b TileID) error {
	if !f.m.Valid(a) || !f.m.Valid(b) {
		return fmt.Errorf("topology: tiles %d and %d outside %dx%dx%d %s", a, b, f.m.w, f.m.h, f.m.d, f.m.kind)
	}
	adjacent, fresh := false, false
	for dir := East; dir <= Up; dir++ {
		if nt, ok := f.m.step(a, dir); ok && nt == b {
			li := f.m.linkIdx[a][dir]
			adjacent = true
			fresh = fresh || !f.link[li]
			f.link[li] = true
		}
		if nt, ok := f.m.step(b, dir); ok && nt == a {
			li := f.m.linkIdx[b][dir]
			fresh = fresh || !f.link[li]
			f.link[li] = true
		}
	}
	if !adjacent {
		return fmt.Errorf("topology: tiles %d and %d are not adjacent", a, b)
	}
	if fresh {
		f.failedPairs++
	}
	return nil
}

// FailTSV fails the bidirectional vertical (TSV) link between a and b.
// It errors when the tiles are not vertically adjacent.
func (f *FaultSet) FailTSV(a, b TileID) error {
	la, ok := f.m.LinkIndex(a, b)
	if !ok || !f.m.LinkVertical(la) {
		return fmt.Errorf("topology: tiles %d and %d are not joined by a TSV link", a, b)
	}
	return f.FailLink(a, b)
}

// FailRouter fails the router of tile t: no route may start at, end at,
// or pass through it. It is idempotent and errors on an invalid tile.
func (f *FaultSet) FailRouter(t TileID) error {
	if !f.m.Valid(t) {
		return fmt.Errorf("topology: tile %d outside %dx%dx%d %s", t, f.m.w, f.m.h, f.m.d, f.m.kind)
	}
	if !f.router[t] {
		f.failedRouters++
	}
	f.router[t] = true
	return nil
}

// LinkFailed reports whether dense directed link idx is failed.
func (f *FaultSet) LinkFailed(idx int) bool {
	return f != nil && idx >= 0 && idx < len(f.link) && f.link[idx]
}

// RouterFailed reports whether tile t's router is failed.
func (f *FaultSet) RouterFailed(t TileID) bool {
	return f != nil && f.m.Valid(t) && f.router[t]
}

// FaultElement describes one failed element for enumeration: either a
// router or a bidirectional link pair (From < To canonically; TSV marks
// vertical links).
type FaultElement struct {
	IsRouter bool
	Router   TileID
	From, To TileID
	TSV      bool
}

// String renders the element canonically: "router 5", "link 1-2",
// "tsv 3-19" (0-based tile IDs, matching the service JSON).
func (e FaultElement) String() string {
	switch {
	case e.IsRouter:
		return fmt.Sprintf("router %d", e.Router)
	case e.TSV:
		return fmt.Sprintf("tsv %d-%d", e.From, e.To)
	}
	return fmt.Sprintf("link %d-%d", e.From, e.To)
}

// Elements enumerates the failed elements in canonical deterministic
// order: routers by ascending tile ID, then link pairs in grid
// enumeration order (ascending tile, then direction). This is the order
// the resilience objective builds its single-fault scenarios in, so the
// per-fault breakdown is stable for a given fault set.
func (f *FaultSet) Elements() []FaultElement {
	if f.Empty() {
		return nil
	}
	var out []FaultElement
	for t := range f.router {
		if f.router[t] {
			out = append(out, FaultElement{IsRouter: true, Router: TileID(t)})
		}
	}
	seen := make(map[[2]TileID]bool)
	for t := 0; t < f.m.NumTiles(); t++ {
		for dir := East; dir <= Up; dir++ {
			li := f.m.linkIdx[t][dir]
			if li < 0 || !f.link[li] {
				continue
			}
			nt, _ := f.m.step(TileID(t), dir)
			a, b := TileID(t), nt
			if a > b {
				a, b = b, a
			}
			if seen[[2]TileID{a, b}] {
				continue
			}
			seen[[2]TileID{a, b}] = true
			out = append(out, FaultElement{From: a, To: b, TSV: dir.Vertical()})
		}
	}
	return out
}

// Singleton returns a new fault set over the same mesh holding only the
// given element — the building block of single-fault resilience
// scenarios.
func (f *FaultSet) Singleton(e FaultElement) (*FaultSet, error) {
	s := NewFaultSet(f.m)
	if e.IsRouter {
		return s, s.FailRouter(e.Router)
	}
	return s, s.FailLink(e.From, e.To)
}

// Key returns the canonical string form of the fault set — element
// strings in Elements order joined by commas, empty for a nil/empty set.
// The service embeds it in the instance cache key.
func (f *FaultSet) Key() string {
	els := f.Elements()
	if len(els) == 0 {
		return ""
	}
	parts := make([]string, len(els))
	for i, e := range els {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// GenerateFaults draws a deterministic random fault set: every
// bidirectional link pair of the mesh (vertical TSV pairs included) fails
// independently with probability rate, in canonical grid enumeration
// order under math/rand with the given seed — so (mesh, rate, seed)
// always yields the same set. Routers are never failed here; fail them
// explicitly with FailRouter. rate must lie in [0, 1); rate 0 returns an
// empty set.
func GenerateFaults(m *Mesh, rate float64, seed int64) (*FaultSet, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("topology: fault rate %g outside [0, 1)", rate)
	}
	fs := NewFaultSet(m)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]TileID]bool)
	for t := 0; t < m.NumTiles(); t++ {
		for dir := East; dir <= Up; dir++ {
			nt, ok := m.step(TileID(t), dir)
			if !ok {
				continue
			}
			a, b := TileID(t), nt
			if a > b {
				a, b = b, a
			}
			if seen[[2]TileID{a, b}] {
				continue
			}
			seen[[2]TileID{a, b}] = true
			if rng.Float64() < rate {
				if err := fs.FailLink(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	return fs, nil
}

// RouteFault computes the deterministic fault-avoiding path from src to
// dst. With a nil or empty fault set it returns exactly Route(algo, src,
// dst) — bit-identical to the intact path, so fault-aware entry points
// cost nothing when no faults are configured.
//
// With faults, the route is chosen in three deterministic stages:
//
//  1. If the dimension-ordered route is fault-free in both directions
//     (src→dst and dst→src), it is returned unchanged. Checking both
//     directions keeps the rule symmetric: either both endpoints keep
//     their minimal dimension-ordered routes or both fall back together,
//     which preserves K-symmetry under bidirectional faults.
//  2. Otherwise a negative-first turn-restricted breadth-first search
//     (Glass & Ni: every West/North/Up hop precedes the first
//     East/South/Down hop) finds the shortest restricted path, visiting
//     neighbours in fixed East..Up order so the result is unique. The
//     negative-first turn model is deadlock-free on meshes; the reversal
//     of a legal path is legal, so restricted path lengths are symmetric
//     too.
//  3. If the turn restriction blocks every path but the grid is still
//     connected, an unrestricted BFS supplies the route. Such detours
//     escape the turn model, so deadlock freedom is no longer
//     guaranteed by construction — the simulator remains safe because
//     routes are precomputed per packet, but hardware adopting such a
//     table would need virtual channels. This caveat also covers tori,
//     where wrap links escape any pure turn model.
//
// If no path exists at all, RouteFault returns ErrUnreachable; callers
// score the pair with a penalty. Routes never start at, end at, or
// traverse a failed router, and never cross a failed link (property
// tested).
func (m *Mesh) RouteFault(algo RoutingAlgo, fs *FaultSet, src, dst TileID) (Route, error) {
	if fs.Empty() {
		return m.Route(algo, src, dst)
	}
	if fs.m != m {
		return Route{}, fmt.Errorf("topology: fault set belongs to a different mesh")
	}
	if !m.Valid(src) || !m.Valid(dst) {
		return Route{}, fmt.Errorf("topology: route endpoints %d->%d outside %dx%dx%d %s",
			src, dst, m.w, m.h, m.d, m.kind)
	}
	if fs.RouterFailed(src) || fs.RouterFailed(dst) {
		return Route{}, ErrUnreachable
	}
	if src == dst {
		return Route{Tiles: []TileID{src}}, nil
	}
	fwd, err := m.Route(algo, src, dst)
	if err != nil {
		return Route{}, err
	}
	rev, err := m.Route(algo, dst, src)
	if err != nil {
		return Route{}, err
	}
	if fs.routeClean(fwd) && fs.routeClean(rev) {
		return fwd, nil
	}
	if tiles, ok := fs.bfs(src, dst, true); ok {
		return Route{Tiles: tiles}, nil
	}
	if tiles, ok := fs.bfs(src, dst, false); ok {
		return Route{Tiles: tiles}, nil
	}
	return Route{}, ErrUnreachable
}

// routeClean reports whether r avoids every failed link and every failed
// intermediate router (endpoints are checked by the caller).
func (f *FaultSet) routeClean(r Route) bool {
	for i := 1; i < len(r.Tiles); i++ {
		if i < len(r.Tiles)-1 && f.router[r.Tiles[i]] {
			return false
		}
		li, ok := f.m.LinkIndex(r.Tiles[i-1], r.Tiles[i])
		if !ok || f.link[li] {
			return false
		}
	}
	return true
}

// bfs finds the shortest fault-free path from src to dst, deterministic
// by construction (FIFO queue, neighbours visited in East..Up order).
// When restricted, the negative-first turn model applies: the state space
// is (tile, phase) where phase 1 means a positive hop (East/South/Down)
// has been taken, after which negative hops (West/North/Up) are
// forbidden.
func (f *FaultSet) bfs(src, dst TileID, restricted bool) ([]TileID, bool) {
	n := f.m.NumTiles()
	// State encoding: tile + phase*n. Unrestricted search uses phase 0 only.
	visited := make([]bool, 2*n)
	parent := make([]int32, 2*n)
	for i := range parent {
		parent[i] = -1
	}
	queue := make([]int32, 0, n)
	start := int32(src)
	visited[start] = true
	queue = append(queue, start)
	goal := int32(-1)
	for qi := 0; qi < len(queue) && goal < 0; qi++ {
		state := queue[qi]
		tile := TileID(int(state) % n)
		phase := int(state) / n
		for dir := East; dir <= Up; dir++ {
			li := f.m.linkIdx[tile][dir]
			if li < 0 || f.link[li] {
				continue
			}
			nt, _ := f.m.step(tile, dir)
			if f.router[nt] {
				continue
			}
			np := phase
			if restricted {
				switch dir {
				case East, South, Down:
					np = 1
				default:
					if phase == 1 {
						continue // negative hop after a positive one
					}
				}
			}
			ns := int32(int(nt) + np*n)
			if visited[ns] {
				continue
			}
			visited[ns] = true
			parent[ns] = state
			if nt == dst {
				goal = ns
				break
			}
			queue = append(queue, ns)
		}
	}
	if goal < 0 {
		return nil, false
	}
	var rev []TileID
	for s := goal; s >= 0; s = parent[s] {
		rev = append(rev, TileID(int(s)%n))
	}
	tiles := make([]TileID, len(rev))
	for i, t := range rev {
		tiles[len(rev)-1-i] = t
	}
	return tiles, true
}
