package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshBasics(t *testing.T) {
	m := mustMesh(t, 3, 2)
	if m.NumTiles() != 6 || m.W() != 3 || m.H() != 2 {
		t.Fatalf("bad dims: %dx%d tiles=%d", m.W(), m.H(), m.NumTiles())
	}
	if c := m.Coord(4); c != (Coord{X: 1, Y: 1}) {
		t.Fatalf("Coord(4) = %+v", c)
	}
	if tid := m.Tile(2, 1); tid != 5 {
		t.Fatalf("Tile(2,1) = %d", tid)
	}
	if m.TileName(0) != "t1" || m.TileName(5) != "t6" {
		t.Fatalf("tile names: %s %s", m.TileName(0), m.TileName(5))
	}
}

func TestMeshInvalidDims(t *testing.T) {
	for _, d := range [][2]int{{0, 3}, {3, 0}, {-1, 2}} {
		if _, err := NewMesh(d[0], d[1]); err == nil {
			t.Fatalf("NewMesh(%d,%d) accepted", d[0], d[1])
		}
		if _, err := NewTorus(d[0], d[1]); err == nil {
			t.Fatalf("NewTorus(%d,%d) accepted", d[0], d[1])
		}
	}
}

func TestMeshLinkCount(t *testing.T) {
	// W×H mesh has 2(W-1)H horizontal + 2W(H-1) vertical directed links.
	for _, d := range [][2]int{{2, 2}, {3, 2}, {8, 8}, {1, 5}, {12, 10}} {
		m := mustMesh(t, d[0], d[1])
		w, h := d[0], d[1]
		want := 2*(w-1)*h + 2*w*(h-1)
		if m.NumLinks() != want {
			t.Fatalf("%dx%d: links=%d want %d", w, h, m.NumLinks(), want)
		}
	}
}

func TestTorusLinkCount(t *testing.T) {
	// A torus with both dims >= 2... wrap links: every tile has 4 out-links
	// unless a dimension has size 1 or 2 (size 2 collapses +1/-1 to the
	// same neighbour but they remain two distinct directed links; size 1
	// has no link in that dimension).
	m, err := NewTorus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLinks() != 9*4 {
		t.Fatalf("3x3 torus links=%d want 36", m.NumLinks())
	}
}

func TestLinkIndexDenseAndInvertible(t *testing.T) {
	m := mustMesh(t, 4, 3)
	seen := make(map[int]bool)
	for from := TileID(0); int(from) < m.NumTiles(); from++ {
		for d := East; d <= North; d++ {
			to, ok := m.Neighbor(from, d)
			if !ok {
				continue
			}
			idx, ok := m.LinkIndex(from, to)
			if !ok {
				t.Fatalf("LinkIndex(%d,%d) missing", from, to)
			}
			if seen[idx] {
				t.Fatalf("duplicate link index %d", idx)
			}
			seen[idx] = true
			gf, gt, ok := m.LinkEnds(idx)
			if !ok || gf != from || gt != to {
				t.Fatalf("LinkEnds(%d) = %d,%d,%v want %d,%d", idx, gf, gt, ok, from, to)
			}
		}
	}
	if len(seen) != m.NumLinks() {
		t.Fatalf("enumerated %d links, NumLinks=%d", len(seen), m.NumLinks())
	}
	if _, ok := m.LinkIndex(0, 5); ok {
		t.Fatal("non-adjacent tiles have a link")
	}
	if _, ok := m.LinkIndex(-1, 0); ok {
		t.Fatal("invalid tile has a link")
	}
}

func TestXYRoutePaper2x2(t *testing.T) {
	// Mapping (a) of the paper: A@t2, F@t3 on a 2x2 mesh. The XY route
	// t2 -> t1 -> t3 passes three routers.
	m := mustMesh(t, 2, 2)
	r, err := m.Route(RouteXY, 1, 2) // t2 is ID 1, t3 is ID 2
	if err != nil {
		t.Fatal(err)
	}
	want := []TileID{1, 0, 2}
	if len(r.Tiles) != 3 || r.Tiles[0] != want[0] || r.Tiles[1] != want[1] || r.Tiles[2] != want[2] {
		t.Fatalf("route = %v, want %v", r.Tiles, want)
	}
	if r.K() != 3 || r.Hops() != 2 {
		t.Fatalf("K=%d hops=%d", r.K(), r.Hops())
	}
}

func TestYXRouteIsSymmetric(t *testing.T) {
	m := mustMesh(t, 3, 3)
	xy, _ := m.Route(RouteXY, 0, 8)
	yx, _ := m.Route(RouteYX, 0, 8)
	// XY: 0,1,2,5,8 — YX: 0,3,6,7,8.
	if xy.Tiles[1] != 1 || yx.Tiles[1] != 3 {
		t.Fatalf("xy=%v yx=%v", xy.Tiles, yx.Tiles)
	}
	if xy.K() != yx.K() {
		t.Fatalf("XY and YX disagree on length: %d vs %d", xy.K(), yx.K())
	}
}

func TestRouteSelf(t *testing.T) {
	m := mustMesh(t, 2, 2)
	r, err := m.Route(RouteXY, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 1 || r.Hops() != 0 || r.Tiles[0] != 3 {
		t.Fatalf("self route = %v", r.Tiles)
	}
}

func TestRouteInvalidEndpoint(t *testing.T) {
	m := mustMesh(t, 2, 2)
	if _, err := m.Route(RouteXY, 0, 9); err == nil {
		t.Fatal("accepted out-of-range destination")
	}
	if _, err := m.Route(RouteXY, -1, 0); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestTorusWrapRoute(t *testing.T) {
	m, err := NewTorus(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Route(RouteXY, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap westwards: 0 -> 3 directly, one hop.
	if r.Hops() != 1 {
		t.Fatalf("torus route hops = %d, want 1 (%v)", r.Hops(), r.Tiles)
	}
	if m.MinHops(0, 3) != 1 {
		t.Fatalf("MinHops = %d", m.MinHops(0, 3))
	}
}

func TestParseRoutingAlgo(t *testing.T) {
	if a, err := ParseRoutingAlgo("xy"); err != nil || a != RouteXY {
		t.Fatalf("parse xy: %v %v", a, err)
	}
	if a, err := ParseRoutingAlgo("YX"); err != nil || a != RouteYX {
		t.Fatalf("parse YX: %v %v", a, err)
	}
	if _, err := ParseRoutingAlgo("adaptive"); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if RouteXY.String() != "XY" || RouteYX.String() != "YX" {
		t.Fatal("String() mismatch")
	}
	if KindMesh.String() != "mesh" || KindTorus.String() != "torus" {
		t.Fatal("Kind.String() mismatch")
	}
}

// Property: XY routes on a mesh are minimal, contiguous and deterministic.
func TestQuickXYRouteMinimalAndContiguous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(10), 1+rng.Intn(10)
		m, err := NewMesh(w, h)
		if err != nil {
			return false
		}
		src := TileID(rng.Intn(m.NumTiles()))
		dst := TileID(rng.Intn(m.NumTiles()))
		r, err := m.Route(RouteXY, src, dst)
		if err != nil {
			return false
		}
		if r.Tiles[0] != src || r.Tiles[len(r.Tiles)-1] != dst {
			return false
		}
		if r.Hops() != m.MinHops(src, dst) {
			return false
		}
		for i := 0; i+1 < len(r.Tiles); i++ {
			if _, ok := m.LinkIndex(r.Tiles[i], r.Tiles[i+1]); !ok {
				return false
			}
		}
		// Determinism.
		r2, _ := m.Route(RouteXY, src, dst)
		if len(r2.Tiles) != len(r.Tiles) {
			return false
		}
		for i := range r.Tiles {
			if r.Tiles[i] != r2.Tiles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: torus routes are minimal too (wrap-aware Manhattan distance).
func TestQuickTorusRouteMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(8), 2+rng.Intn(8)
		m, err := NewTorus(w, h)
		if err != nil {
			return false
		}
		src := TileID(rng.Intn(m.NumTiles()))
		dst := TileID(rng.Intn(m.NumTiles()))
		r, err := m.Route(RouteXY, src, dst)
		if err != nil {
			return false
		}
		return r.Hops() == m.MinHops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTilePanicsOutOfRange(t *testing.T) {
	m := mustMesh(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Tile(5,5) did not panic")
		}
	}()
	m.Tile(5, 5)
}

func TestParseGridSpec(t *testing.T) {
	cases := []struct {
		spec    string
		w, h, d int
	}{
		{"3x2", 3, 2, 1},
		{"3X2", 3, 2, 1},
		{"2x2x4", 2, 2, 4},
		{"10x12x3", 10, 12, 3},
	}
	for _, tc := range cases {
		w, h, d, err := ParseGridSpec(tc.spec)
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if w != tc.w || h != tc.h || d != tc.d {
			t.Errorf("%q = %dx%dx%d, want %dx%dx%d", tc.spec, w, h, d, tc.w, tc.h, tc.d)
		}
	}
	for _, spec := range []string{"", "3", "ax2", "3xb", "0x4", "2x-2", "4x4junk", "2x2x4.5", " 2x2", "2x2x2x2"} {
		if _, _, _, err := ParseGridSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
