package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bfsDist computes shortest-path hop counts by breadth-first search over
// the link structure — an independent reference for MinHops and Route.
func bfsDist(m *Mesh, src TileID) []int {
	dist := make([]int, m.NumTiles())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []TileID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for d := East; d <= North; d++ {
			if nt, ok := m.Neighbor(cur, d); ok && dist[nt] < 0 {
				dist[nt] = dist[cur] + 1
				queue = append(queue, nt)
			}
		}
	}
	return dist
}

// Property: MinHops and the deterministic routes agree with BFS over the
// actual link structure, on meshes and tori, under both routing functions.
func TestQuickRoutesAgreeWithBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(7), 1+rng.Intn(7)
		var m *Mesh
		var err error
		if rng.Intn(2) == 0 {
			m, err = NewMesh(w, h)
		} else {
			m, err = NewTorus(w, h)
		}
		if err != nil {
			return false
		}
		src := TileID(rng.Intn(m.NumTiles()))
		dist := bfsDist(m, src)
		for dst := 0; dst < m.NumTiles(); dst++ {
			if dist[dst] < 0 {
				return false // grid must be connected
			}
			if m.MinHops(src, TileID(dst)) != dist[dst] {
				return false
			}
			for _, algo := range []RoutingAlgo{RouteXY, RouteYX} {
				r, err := m.Route(algo, src, TileID(dst))
				if err != nil || r.Hops() != dist[dst] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
