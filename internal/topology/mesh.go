// Package topology models the communication resource graph (CRG,
// Definition 3 of the paper): a rectangular grid of tiles, each holding one
// router, connected by directed point-to-point links. The paper evaluates a
// 2-D mesh with deterministic XY wormhole routing; a torus variant and YX
// routing are provided as extensions ("other NoC topologies can be equally
// treated").
package topology

import (
	"fmt"
)

// TileID identifies one tile (router) of the NoC. Tiles are numbered
// row-major from the top-left corner: tile = y*W + x, matching the paper's
// τ1..τn reading order (we use 0-based IDs; renderers print τ(i+1)).
type TileID int

// Coord is the (column, row) position of a tile; X grows rightwards and Y
// grows downwards.
type Coord struct {
	X, Y int
}

// Kind distinguishes plain meshes from tori (wrap-around links).
type Kind int

const (
	// KindMesh is a plain 2-D mesh (the paper's target).
	KindMesh Kind = iota
	// KindTorus adds wrap-around links in both dimensions (extension).
	KindTorus
)

func (k Kind) String() string {
	if k == KindTorus {
		return "torus"
	}
	return "mesh"
}

// Mesh is a W×H grid of tiles. The zero value is not usable; construct
// with NewMesh or NewTorus.
type Mesh struct {
	w, h int
	kind Kind

	// linkIdx[from][dir] is the dense index of the directed link leaving
	// tile `from` in direction dir, or -1 if absent.
	linkIdx  [][4]int
	numLinks int
}

// Direction of a link leaving a tile.
type Direction int

// Directions, in enumeration order.
const (
	East Direction = iota
	West
	South
	North
)

func (d Direction) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case South:
		return "S"
	case North:
		return "N"
	}
	return "?"
}

// NewMesh returns a plain W×H mesh. Both dimensions must be positive and
// the mesh must hold at least one tile.
func NewMesh(w, h int) (*Mesh, error) { return newGrid(w, h, KindMesh) }

// NewTorus returns a W×H torus (wrap-around in both dimensions).
func NewTorus(w, h int) (*Mesh, error) { return newGrid(w, h, KindTorus) }

func newGrid(w, h int, kind Kind) (*Mesh, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topology: invalid dimensions %dx%d", w, h)
	}
	m := &Mesh{w: w, h: h, kind: kind}
	n := w * h
	m.linkIdx = make([][4]int, n)
	for t := range m.linkIdx {
		m.linkIdx[t] = [4]int{-1, -1, -1, -1}
	}
	idx := 0
	for t := 0; t < n; t++ {
		for d := East; d <= North; d++ {
			if _, ok := m.step(TileID(t), d); ok {
				m.linkIdx[t][d] = idx
				idx++
			}
		}
	}
	m.numLinks = idx
	return m, nil
}

// W returns the mesh width (number of columns).
func (m *Mesh) W() int { return m.w }

// H returns the mesh height (number of rows).
func (m *Mesh) H() int { return m.h }

// Kind reports whether the grid is a mesh or a torus.
func (m *Mesh) Kind() Kind { return m.kind }

// NumTiles returns W*H, the n of Definition 3.
func (m *Mesh) NumTiles() int { return m.w * m.h }

// NumLinks returns the number of directed inter-tile links.
func (m *Mesh) NumLinks() int { return m.numLinks }

// Valid reports whether t is a tile of this mesh.
func (m *Mesh) Valid(t TileID) bool { return int(t) >= 0 && int(t) < m.w*m.h }

// Coord returns the grid position of tile t.
func (m *Mesh) Coord(t TileID) Coord {
	return Coord{X: int(t) % m.w, Y: int(t) / m.w}
}

// Tile returns the tile at position (x, y). Panics if out of range; use
// Valid/InBounds when the coordinates are untrusted.
func (m *Mesh) Tile(x, y int) TileID {
	if x < 0 || x >= m.w || y < 0 || y >= m.h {
		panic(fmt.Sprintf("topology: tile (%d,%d) outside %dx%d", x, y, m.w, m.h))
	}
	return TileID(y*m.w + x)
}

// TileName returns the paper-style name of tile t: τ1..τn, row-major.
func (m *Mesh) TileName(t TileID) string { return fmt.Sprintf("t%d", int(t)+1) }

// step returns the neighbouring tile in direction d, if any.
func (m *Mesh) step(t TileID, d Direction) (TileID, bool) {
	c := m.Coord(t)
	switch d {
	case East:
		c.X++
	case West:
		c.X--
	case South:
		c.Y++
	case North:
		c.Y--
	}
	if m.kind == KindTorus {
		c.X = (c.X + m.w) % m.w
		c.Y = (c.Y + m.h) % m.h
		if nt := m.Tile(c.X, c.Y); nt != t { // a 1-wide torus has no self links
			return nt, true
		}
		return 0, false
	}
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		return 0, false
	}
	return m.Tile(c.X, c.Y), true
}

// Neighbor returns the tile reached from t in direction d, if the link
// exists.
func (m *Mesh) Neighbor(t TileID, d Direction) (TileID, bool) { return m.step(t, d) }

// LinkIndex returns the dense index in [0, NumLinks) of the directed link
// from tile `from` to the adjacent tile `to`. ok is false if the tiles are
// not adjacent.
func (m *Mesh) LinkIndex(from, to TileID) (int, bool) {
	if !m.Valid(from) || !m.Valid(to) {
		return 0, false
	}
	for d := East; d <= North; d++ {
		if nt, ok := m.step(from, d); ok && nt == to {
			return m.linkIdx[from][d], true
		}
	}
	return 0, false
}

// LinkEnds returns, for a dense link index, its (from, to) tile pair.
// It is the inverse of LinkIndex and is O(NumLinks); intended for
// reporting, not hot paths.
func (m *Mesh) LinkEnds(idx int) (from, to TileID, ok bool) {
	for t := 0; t < m.NumTiles(); t++ {
		for d := East; d <= North; d++ {
			if m.linkIdx[t][d] == idx {
				nt, _ := m.step(TileID(t), d)
				return TileID(t), nt, true
			}
		}
	}
	return 0, 0, false
}

// MinHops returns the minimum number of inter-tile links between two tiles
// (Manhattan distance, with wrap-around shortcuts on a torus).
func (m *Mesh) MinHops(a, b TileID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	dx := abs(ca.X - cb.X)
	dy := abs(ca.Y - cb.Y)
	if m.kind == KindTorus {
		if wrapped := m.w - dx; wrapped < dx {
			dx = wrapped
		}
		if wrapped := m.h - dy; wrapped < dy {
			dy = wrapped
		}
	}
	return dx + dy
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
