// Package topology models the communication resource graph (CRG,
// Definition 3 of the paper): a grid of tiles, each holding one router,
// connected by directed point-to-point links. The paper evaluates a 2-D
// mesh with deterministic XY wormhole routing; torus variants, YX routing
// and stacked 3-D meshes/tori with through-silicon-via (TSV) vertical
// links are provided as extensions ("other NoC topologies can be equally
// treated"). A 2-D grid is exactly the depth-1 special case of the 3-D
// construction: NewMesh(w, h) ≡ NewMesh3D(w, h, 1), bit-identical in tile
// numbering, link enumeration and routing.
package topology

import (
	"fmt"
)

// TileID identifies one tile (router) of the NoC. Tiles are numbered
// row-major from the top-left corner of the first layer:
// tile = z*W*H + y*W + x, matching the paper's τ1..τn reading order (we
// use 0-based IDs; renderers print τ(i+1)).
type TileID int

// Coord is the (column, row, layer) position of a tile; X grows
// rightwards, Y grows downwards and Z grows into deeper layers. 2-D grids
// have Z = 0 everywhere.
type Coord struct {
	X, Y, Z int
}

// Kind distinguishes plain meshes from tori (wrap-around links).
type Kind int

const (
	// KindMesh is a plain mesh (the paper's target is the 2-D case).
	KindMesh Kind = iota
	// KindTorus adds wrap-around links in every dimension (extension).
	KindTorus
)

func (k Kind) String() string {
	if k == KindTorus {
		return "torus"
	}
	return "mesh"
}

// Mesh is a W×H×D grid of tiles. D is 1 for the paper's planar NoCs. The
// zero value is not usable; construct with NewMesh, NewTorus, NewMesh3D
// or NewTorus3D.
type Mesh struct {
	w, h, d int
	kind    Kind

	// linkIdx[from][dir] is the dense index of the directed link leaving
	// tile `from` in direction dir, or -1 if absent.
	linkIdx  [][numDirections]int
	numLinks int
	// vertLink[idx] reports whether dense link idx is a vertical (TSV)
	// link; nil on depth-1 grids, which have none.
	vertLink []bool
}

// Direction of a link leaving a tile.
type Direction int

// Directions, in enumeration order. Down/Up are the vertical (TSV)
// directions of 3-D grids: Down increases Z (deeper layer) like South
// increases Y, Up decreases it. Depth-1 grids have no vertical links, so
// 2-D link enumeration is unchanged by their existence.
const (
	East Direction = iota
	West
	South
	North
	Down
	Up

	numDirections = 6
)

func (d Direction) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case South:
		return "S"
	case North:
		return "N"
	case Down:
		return "D"
	case Up:
		return "U"
	}
	return "?"
}

// Vertical reports whether the direction crosses layers (a TSV link).
func (d Direction) Vertical() bool { return d == Down || d == Up }

// NewMesh returns a plain W×H mesh. Both dimensions must be positive and
// the mesh must hold at least one tile.
func NewMesh(w, h int) (*Mesh, error) { return newGrid(w, h, 1, KindMesh) }

// NewTorus returns a W×H torus (wrap-around in both dimensions).
func NewTorus(w, h int) (*Mesh, error) { return newGrid(w, h, 1, KindTorus) }

// NewMesh3D returns a W×H×D mesh: D stacked W×H layers with vertical
// (TSV) links between vertically adjacent tiles. D = 1 is exactly
// NewMesh(w, h).
func NewMesh3D(w, h, d int) (*Mesh, error) { return newGrid(w, h, d, KindMesh) }

// NewTorus3D returns a W×H×D torus (wrap-around in all three dimensions).
// D = 1 is exactly NewTorus(w, h).
func NewTorus3D(w, h, d int) (*Mesh, error) { return newGrid(w, h, d, KindTorus) }

func newGrid(w, h, d int, kind Kind) (*Mesh, error) {
	if w <= 0 || h <= 0 || d <= 0 {
		return nil, fmt.Errorf("topology: invalid dimensions %dx%dx%d", w, h, d)
	}
	m := &Mesh{w: w, h: h, d: d, kind: kind}
	n := w * h * d
	m.linkIdx = make([][numDirections]int, n)
	for t := range m.linkIdx {
		m.linkIdx[t] = [numDirections]int{-1, -1, -1, -1, -1, -1}
	}
	idx := 0
	var vert []bool
	for t := 0; t < n; t++ {
		for dir := East; dir <= Up; dir++ {
			if _, ok := m.step(TileID(t), dir); ok {
				m.linkIdx[t][dir] = idx
				vert = append(vert, dir.Vertical())
				idx++
			}
		}
	}
	m.numLinks = idx
	if d > 1 {
		m.vertLink = vert
	}
	return m, nil
}

// W returns the mesh width (number of columns).
func (m *Mesh) W() int { return m.w }

// H returns the mesh height (number of rows per layer).
func (m *Mesh) H() int { return m.h }

// D returns the mesh depth (number of stacked layers; 1 for 2-D grids).
func (m *Mesh) D() int { return m.d }

// Kind reports whether the grid is a mesh or a torus.
func (m *Mesh) Kind() Kind { return m.kind }

// NumTiles returns W*H*D, the n of Definition 3.
func (m *Mesh) NumTiles() int { return m.w * m.h * m.d }

// NumLinks returns the number of directed inter-tile links.
func (m *Mesh) NumLinks() int { return m.numLinks }

// LinkVertical reports whether dense link idx is a vertical (TSV) link.
// Always false on depth-1 grids.
func (m *Mesh) LinkVertical(idx int) bool {
	return m.vertLink != nil && idx >= 0 && idx < len(m.vertLink) && m.vertLink[idx]
}

// Valid reports whether t is a tile of this mesh.
func (m *Mesh) Valid(t TileID) bool { return int(t) >= 0 && int(t) < m.NumTiles() }

// Coord returns the grid position of tile t.
func (m *Mesh) Coord(t TileID) Coord {
	layer := m.w * m.h
	return Coord{X: int(t) % m.w, Y: (int(t) / m.w) % m.h, Z: int(t) / layer}
}

// Tile returns the tile at position (x, y) of the first layer. Panics if
// out of range; use Valid/TileAt when the coordinates are untrusted.
func (m *Mesh) Tile(x, y int) TileID { return m.TileAt(x, y, 0) }

// TileAt returns the tile at position (x, y, z). Panics if out of range.
func (m *Mesh) TileAt(x, y, z int) TileID {
	if x < 0 || x >= m.w || y < 0 || y >= m.h || z < 0 || z >= m.d {
		panic(fmt.Sprintf("topology: tile (%d,%d,%d) outside %dx%dx%d", x, y, z, m.w, m.h, m.d))
	}
	return TileID(z*m.w*m.h + y*m.w + x)
}

// TileName returns the paper-style name of tile t: τ1..τn, row-major.
func (m *Mesh) TileName(t TileID) string { return fmt.Sprintf("t%d", int(t)+1) }

// step returns the neighbouring tile in direction d, if any.
func (m *Mesh) step(t TileID, d Direction) (TileID, bool) {
	c := m.Coord(t)
	switch d {
	case East:
		c.X++
	case West:
		c.X--
	case South:
		c.Y++
	case North:
		c.Y--
	case Down:
		c.Z++
	case Up:
		c.Z--
	}
	if m.kind == KindTorus {
		c.X = (c.X + m.w) % m.w
		c.Y = (c.Y + m.h) % m.h
		c.Z = (c.Z + m.d) % m.d
		if nt := m.TileAt(c.X, c.Y, c.Z); nt != t { // a 1-wide torus has no self links
			return nt, true
		}
		return 0, false
	}
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h || c.Z < 0 || c.Z >= m.d {
		return 0, false
	}
	return m.TileAt(c.X, c.Y, c.Z), true
}

// Neighbor returns the tile reached from t in direction d, if the link
// exists.
func (m *Mesh) Neighbor(t TileID, d Direction) (TileID, bool) { return m.step(t, d) }

// LinkIndex returns the dense index in [0, NumLinks) of the directed link
// from tile `from` to the adjacent tile `to`. ok is false if the tiles are
// not adjacent.
func (m *Mesh) LinkIndex(from, to TileID) (int, bool) {
	if !m.Valid(from) || !m.Valid(to) {
		return 0, false
	}
	for d := East; d <= Up; d++ {
		if nt, ok := m.step(from, d); ok && nt == to {
			return m.linkIdx[from][d], true
		}
	}
	return 0, false
}

// LinkEnds returns, for a dense link index, its (from, to) tile pair.
// It is the inverse of LinkIndex and is O(NumLinks); intended for
// reporting, not hot paths.
func (m *Mesh) LinkEnds(idx int) (from, to TileID, ok bool) {
	for t := 0; t < m.NumTiles(); t++ {
		for d := East; d <= Up; d++ {
			if m.linkIdx[t][d] == idx {
				nt, _ := m.step(TileID(t), d)
				return TileID(t), nt, true
			}
		}
	}
	return 0, 0, false
}

// dimDist returns the minimal offset magnitude along one dimension of the
// given size, using the wrap-around shortcut on a torus.
func (m *Mesh) dimDist(a, b, size int) int {
	d := abs(a - b)
	if m.kind == KindTorus {
		if wrapped := size - d; wrapped < d {
			d = wrapped
		}
	}
	return d
}

// MinHops returns the minimum number of inter-tile links between two tiles
// (Manhattan distance across all dimensions, with wrap-around shortcuts on
// a torus).
func (m *Mesh) MinHops(a, b TileID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return m.dimDist(ca.X, cb.X, m.w) + m.dimDist(ca.Y, cb.Y, m.h) + m.dimDist(ca.Z, cb.Z, m.d)
}

// VerticalHops returns the number of vertical (TSV) links on any minimal
// dimension-ordered route between two tiles: the Z distance, with the
// wrap-around shortcut on a torus. It is symmetric in its arguments and
// zero on depth-1 grids — the invariant the CWM evaluator's TSV traffic
// aggregate relies on.
func (m *Mesh) VerticalHops(a, b TileID) int {
	if m.d == 1 {
		return 0
	}
	layer := m.w * m.h
	return m.dimDist(int(a)/layer, int(b)/layer, m.d)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
