package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the routing invariants the incremental CWM evaluator
// (internal/core/cwm_delta.go) builds on, as properties over randomly
// sampled (topology, algorithm, src, dst) instances across mesh/torus ×
// 2-D/3-D instead of hand-picked cases:
//
//   - routes are minimal: Hops == MinHops, so K = MinHops+1;
//   - routes are dimension-ordered (deadlock-free): each algorithm
//     resolves its dimensions in a fixed order, never interleaving, and
//     each dimension moves in a single direction (no U-turns, single wrap
//     direction on a torus);
//   - K is direction-symmetric: K(a,b) == K(b,a) — the delta path prices
//     an edge from whichever endpoint moved;
//   - K totals are invariant under tile permutation: relabelling tiles
//     permutes the pair set, so Σ K over all ordered pairs cannot change.
//     A K that secretly depended on tile IDs (a stale cache row, an
//     ID-ordered tie-break) would break this and silently desynchronise
//     incremental pricing from full recomputes.

// propertyGrids returns the sampled topology matrix: mesh and torus, 2-D
// and 3-D, square and ragged, including degenerate 1-wide shapes.
func propertyGrids(t *testing.T) map[string]*Mesh {
	t.Helper()
	grids := make(map[string]*Mesh)
	add := func(name string, m *Mesh, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		grids[name] = m
	}
	for _, dims := range [][3]int{
		{2, 2, 1}, {3, 3, 1}, {4, 3, 1}, {8, 8, 1}, {5, 2, 1}, {1, 6, 1},
		{2, 2, 2}, {3, 3, 2}, {2, 2, 4}, {4, 4, 2}, {3, 2, 3}, {1, 1, 5},
	} {
		m, err := NewMesh3D(dims[0], dims[1], dims[2])
		add(m.kindDims("mesh"), m, err)
		mt, err := NewTorus3D(dims[0], dims[1], dims[2])
		add(mt.kindDims("torus"), mt, err)
	}
	return grids
}

func (m *Mesh) kindDims(kind string) string {
	return fmt.Sprintf("%s-%dx%dx%d", kind, m.w, m.h, m.d)
}

var propertyAlgos = []RoutingAlgo{RouteXY, RouteYX, RouteXYZ, RouteZYX}

// axisOf classifies one route step by the axis it moved along, and
// verifies it moved by exactly one hop (wrap included).
func axisOf(t *testing.T, m *Mesh, from, to TileID) axis {
	t.Helper()
	cf, ct := m.Coord(from), m.Coord(to)
	moved := -1
	var ax axis
	check := func(a, b, size int, which axis) {
		if a == b {
			return
		}
		d := m.dimDist(a, b, size)
		if d != 1 {
			t.Fatalf("step %v->%v moves %d hops along one axis", from, to, d)
		}
		if moved >= 0 {
			t.Fatalf("step %v->%v moves along two axes", from, to)
		}
		moved = 1
		ax = which
	}
	check(cf.X, ct.X, m.w, axisX)
	check(cf.Y, ct.Y, m.h, axisY)
	check(cf.Z, ct.Z, m.d, axisZ)
	if moved < 0 {
		t.Fatalf("step %v->%v moves along no axis", from, to)
	}
	return ax
}

// TestRoutePropertyMinimalDimensionOrdered samples random endpoint pairs
// on every grid/algorithm combination and checks minimality, contiguity
// and strict dimension order.
func TestRoutePropertyMinimalDimensionOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for name, m := range propertyGrids(t) {
		for _, algo := range propertyAlgos {
			order := algo.order()
			rank := map[axis]int{order[0]: 0, order[1]: 1, order[2]: 2}
			for trial := 0; trial < 60; trial++ {
				src := TileID(rng.Intn(m.NumTiles()))
				dst := TileID(rng.Intn(m.NumTiles()))
				r, err := m.Route(algo, src, dst)
				if err != nil {
					t.Fatal(err)
				}
				if r.Tiles[0] != src || r.Tiles[len(r.Tiles)-1] != dst {
					t.Fatalf("%s %v: route %v does not span %d->%d", name, algo, r.Tiles, src, dst)
				}
				if r.Hops() != m.MinHops(src, dst) {
					t.Fatalf("%s %v %d->%d: %d hops, MinHops %d (not minimal)",
						name, algo, src, dst, r.Hops(), m.MinHops(src, dst))
				}
				lastRank := -1
				dirPerAxis := map[axis]Direction{}
				for i := 0; i+1 < len(r.Tiles); i++ {
					if _, ok := m.LinkIndex(r.Tiles[i], r.Tiles[i+1]); !ok {
						t.Fatalf("%s %v: route step %d->%d is not a link", name, algo, r.Tiles[i], r.Tiles[i+1])
					}
					ax := axisOf(t, m, r.Tiles[i], r.Tiles[i+1])
					if rank[ax] < lastRank {
						t.Fatalf("%s %v %d->%d: route %v interleaves dimensions (axis %d after %d)",
							name, algo, src, dst, r.Tiles, ax, lastRank)
					}
					lastRank = rank[ax]
					// Deadlock-free dimension-ordered routing also never
					// reverses within a dimension: one direction per axis.
					var dir Direction
					for d := East; d <= Up; d++ {
						if nt, ok := m.step(r.Tiles[i], d); ok && nt == r.Tiles[i+1] {
							dir = d
							break
						}
					}
					if prev, seen := dirPerAxis[ax]; seen && prev != dir {
						t.Fatalf("%s %v %d->%d: route reverses axis %d (%v then %v)",
							name, algo, src, dst, ax, prev, dir)
					}
					dirPerAxis[ax] = dir
				}
			}
		}
	}
}

// TestRouteKSymmetric pins the K invariants: for every minimal
// dimension-ordered routing on mesh and torus (2-D and 3-D), the router
// count K of a route is independent of its direction and equals
// MinHops+1, and the vertical hop count matches VerticalHops. The delta
// path prices an edge's route from whichever endpoint moved, so a
// direction-dependent K would silently break its bit-identity with full
// recomputes.
func TestRouteKSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, m := range propertyGrids(t) {
		n := m.NumTiles()
		for _, algo := range propertyAlgos {
			pairs := make([][2]TileID, 0, 120)
			if n <= 12 { // exhaust small grids, sample large ones
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						pairs = append(pairs, [2]TileID{TileID(a), TileID(b)})
					}
				}
			} else {
				for i := 0; i < 120; i++ {
					pairs = append(pairs, [2]TileID{TileID(rng.Intn(n)), TileID(rng.Intn(n))})
				}
			}
			for _, pr := range pairs {
				a, b := pr[0], pr[1]
				fwd, err := m.Route(algo, a, b)
				if err != nil {
					t.Fatal(err)
				}
				rev, err := m.Route(algo, b, a)
				if err != nil {
					t.Fatal(err)
				}
				if fwd.K() != rev.K() {
					t.Fatalf("%s %v: K(%d,%d)=%d but K(%d,%d)=%d", name, algo, a, b, fwd.K(), b, a, rev.K())
				}
				if want := m.MinHops(a, b) + 1; fwd.K() != want {
					t.Fatalf("%s %v: K(%d,%d)=%d, MinHops+1=%d (routing not minimal?)",
						name, algo, a, b, fwd.K(), want)
				}
				vhops := 0
				for i := 0; i+1 < len(fwd.Tiles); i++ {
					li, _ := m.LinkIndex(fwd.Tiles[i], fwd.Tiles[i+1])
					if m.LinkVertical(li) {
						vhops++
					}
				}
				if vhops != m.VerticalHops(a, b) {
					t.Fatalf("%s %v: route %d->%d crosses %d TSVs, VerticalHops says %d",
						name, algo, a, b, vhops, m.VerticalHops(a, b))
				}
			}
		}
	}
}

// TestRouteKTotalPermutationInvariant checks the aggregate form of the
// symmetry invariant: Σ K(a,b) over all ordered tile pairs is unchanged
// when the pairs are visited through a random tile permutation — K must
// be a pure function of the pair, never of tile identity or probe order.
func TestRouteKTotalPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for name, m := range propertyGrids(t) {
		n := m.NumTiles()
		if n > 36 {
			continue // all-pairs walks; keep the matrix cheap
		}
		for _, algo := range propertyAlgos {
			kOf := func(a, b TileID) int {
				r, err := m.Route(algo, a, b)
				if err != nil {
					t.Fatal(err)
				}
				return r.K()
			}
			var total int
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					total += kOf(TileID(a), TileID(b))
				}
			}
			for trial := 0; trial < 3; trial++ {
				perm := rng.Perm(n)
				var permuted int
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						permuted += kOf(TileID(perm[a]), TileID(perm[b]))
					}
				}
				if permuted != total {
					t.Fatalf("%s %v: K total %d changed to %d under tile permutation",
						name, algo, total, permuted)
				}
			}
		}
	}
}
