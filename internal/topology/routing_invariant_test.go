package topology

import "testing"

// TestRouteKSymmetric pins the invariant the incremental CWM evaluator
// (internal/core/cwm_delta.go) builds on: for the minimal XY/YX routings
// on both mesh and torus, the router count K of a route is independent of
// its direction and equals MinHops+1. The delta path prices an edge's
// route from whichever endpoint moved, so a direction-dependent K would
// silently break its bit-identity with full recomputes.
func TestRouteKSymmetric(t *testing.T) {
	for _, tc := range []struct {
		w, h  int
		torus bool
	}{
		{2, 2, false}, {3, 3, false}, {4, 3, false}, {8, 8, false}, {5, 2, false},
		{3, 3, true}, {4, 4, true}, {5, 3, true},
	} {
		var m *Mesh
		var err error
		if tc.torus {
			m, err = NewTorus(tc.w, tc.h)
		} else {
			m, err = NewMesh(tc.w, tc.h)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []RoutingAlgo{RouteXY, RouteYX} {
			for a := 0; a < m.NumTiles(); a++ {
				for b := 0; b < m.NumTiles(); b++ {
					fwd, err := m.Route(algo, TileID(a), TileID(b))
					if err != nil {
						t.Fatal(err)
					}
					rev, err := m.Route(algo, TileID(b), TileID(a))
					if err != nil {
						t.Fatal(err)
					}
					if fwd.K() != rev.K() {
						t.Fatalf("%dx%d torus=%v %v: K(%d,%d)=%d but K(%d,%d)=%d",
							tc.w, tc.h, tc.torus, algo, a, b, fwd.K(), b, a, rev.K())
					}
					if want := m.MinHops(TileID(a), TileID(b)) + 1; fwd.K() != want {
						t.Fatalf("%dx%d torus=%v %v: K(%d,%d)=%d, MinHops+1=%d (routing not minimal?)",
							tc.w, tc.h, tc.torus, algo, a, b, fwd.K(), want)
					}
				}
			}
		}
	}
}
