package topology

import "fmt"

// RoutingAlgo selects the deterministic routing function. The paper uses
// XY (route fully in the X dimension, then in Y); YX is the symmetric
// extension. Both are minimal and deadlock-free on a mesh.
type RoutingAlgo int

const (
	// RouteXY resolves the X offset first, then Y (the paper's choice).
	RouteXY RoutingAlgo = iota
	// RouteYX resolves the Y offset first, then X.
	RouteYX
)

func (r RoutingAlgo) String() string {
	if r == RouteYX {
		return "YX"
	}
	return "XY"
}

// ParseRoutingAlgo converts "xy"/"yx" (case-insensitive) to a RoutingAlgo.
func ParseRoutingAlgo(s string) (RoutingAlgo, error) {
	switch s {
	case "xy", "XY", "Xy", "xY":
		return RouteXY, nil
	case "yx", "YX", "Yx", "yX":
		return RouteYX, nil
	}
	return 0, fmt.Errorf("topology: unknown routing algorithm %q", s)
}

// Route is the ordered list of routers a packet traverses from source tile
// to destination tile, both inclusive. K = len(Tiles) is the router count
// of equations (2) and (6)-(8); the packet additionally crosses K-1
// inter-tile links plus the two core↔router links at the end points.
type Route struct {
	Tiles []TileID
}

// K returns the number of routers traversed.
func (r Route) K() int { return len(r.Tiles) }

// Hops returns the number of inter-tile links traversed (K-1).
func (r Route) Hops() int {
	if len(r.Tiles) == 0 {
		return 0
	}
	return len(r.Tiles) - 1
}

// Route computes the deterministic path from src to dst under the given
// algorithm. On a torus each dimension takes its shortest wrap direction
// (ties broken towards the positive direction). The result always starts
// at src and ends at dst; for src == dst it is the single-router route.
func (m *Mesh) Route(algo RoutingAlgo, src, dst TileID) (Route, error) {
	if !m.Valid(src) || !m.Valid(dst) {
		return Route{}, fmt.Errorf("topology: route endpoints %d->%d outside %dx%d %s", src, dst, m.w, m.h, m.kind)
	}
	tiles := []TileID{src}
	cur := src
	stepDim := func(target int, horizontal bool) {
		for {
			c := m.Coord(cur)
			pos, size := c.X, m.w
			if !horizontal {
				pos, size = c.Y, m.h
			}
			if pos == target {
				return
			}
			dir := chooseDir(pos, target, size, m.kind == KindTorus, horizontal)
			nt, ok := m.step(cur, dir)
			if !ok {
				// Unreachable on well-formed grids; guard keeps the loop finite.
				return
			}
			cur = nt
			tiles = append(tiles, cur)
		}
	}
	dc := m.Coord(dst)
	if algo == RouteXY {
		stepDim(dc.X, true)
		stepDim(dc.Y, false)
	} else {
		stepDim(dc.Y, false)
		stepDim(dc.X, true)
	}
	return Route{Tiles: tiles}, nil
}

// chooseDir picks the direction that moves pos towards target in a
// dimension of the given size, using wrap-around when beneficial on a
// torus.
func chooseDir(pos, target, size int, torus, horizontal bool) Direction {
	fwd := target - pos // positive means East (or South)
	if torus {
		alt := fwd
		if fwd > 0 {
			alt = fwd - size
		} else {
			alt = fwd + size
		}
		if abs(alt) < abs(fwd) {
			fwd = alt
		}
	}
	if horizontal {
		if fwd > 0 {
			return East
		}
		return West
	}
	if fwd > 0 {
		return South
	}
	return North
}
