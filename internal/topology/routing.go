package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseGridSpec parses a "WxH" or "WxHxD" grid specification (lower- or
// upper-case 'x' separators) into its dimensions; D defaults to 1 for
// planar specs. Every dimension must be a bare positive integer —
// trailing garbage ("4x4junk", "2x2x4.5") is rejected, not truncated.
// Both CLIs share this parser so the spec grammar cannot drift between
// them.
func ParseGridSpec(spec string) (w, h, d int, err error) {
	parts := strings.Split(strings.ToLower(spec), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("topology: grid spec %q is not WxH or WxHxD", spec)
	}
	d = 1
	dims := []*int{&w, &h, &d}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return 0, 0, 0, fmt.Errorf("topology: grid dimension %q is not a positive integer", p)
		}
		*dims[i] = v
	}
	return w, h, d, nil
}

// RoutingAlgo selects the deterministic routing function. The paper uses
// XY (route fully in the X dimension, then in Y); the other orders are
// symmetric extensions. All are minimal, dimension-ordered and
// deadlock-free on a mesh. On 3-D grids every algorithm resolves the
// remaining dimensions in its stated order, with unstated dimensions
// last: XY and XYZ route X, then Y, then Z (so they coincide on every
// grid, and on depth-1 grids Z is vacuous); YX routes Y, X, Z; ZYX routes
// Z, Y, X.
type RoutingAlgo int

const (
	// RouteXY resolves the X offset first, then Y, then Z (the paper's
	// choice; Z is vacuous on 2-D grids).
	RouteXY RoutingAlgo = iota
	// RouteYX resolves the Y offset first, then X, then Z.
	RouteYX
	// RouteXYZ is the canonical 3-D name for X-then-Y-then-Z routing; it
	// routes identically to RouteXY on every grid.
	RouteXYZ
	// RouteZYX resolves the Z offset first (TSV hops up front), then Y,
	// then X.
	RouteZYX
	// RouteFA is fault-aware routing: identical to RouteXY on an intact
	// grid, but when paired with a FaultSet (Mesh.RouteFault,
	// wormhole.NewSimulatorFaults) it detours around failed links and
	// routers via negative-first turn-restricted search. See RouteFault.
	RouteFA
)

// axis identifies one routing dimension.
type axis int

const (
	axisX axis = iota
	axisY
	axisZ
)

// order returns the dimension resolution order of the algorithm.
func (r RoutingAlgo) order() [3]axis {
	switch r {
	case RouteYX:
		return [3]axis{axisY, axisX, axisZ}
	case RouteZYX:
		return [3]axis{axisZ, axisY, axisX}
	}
	return [3]axis{axisX, axisY, axisZ} // RouteXY, RouteXYZ
}

func (r RoutingAlgo) String() string {
	switch r {
	case RouteYX:
		return "YX"
	case RouteXYZ:
		return "XYZ"
	case RouteZYX:
		return "ZYX"
	case RouteFA:
		return "FA"
	}
	return "XY"
}

// ParseRoutingAlgo converts "xy"/"yx"/"xyz"/"zyx"/"fa" (case-insensitive)
// to a RoutingAlgo.
func ParseRoutingAlgo(s string) (RoutingAlgo, error) {
	switch strings.ToLower(s) {
	case "xy":
		return RouteXY, nil
	case "yx":
		return RouteYX, nil
	case "xyz":
		return RouteXYZ, nil
	case "zyx":
		return RouteZYX, nil
	case "fa":
		return RouteFA, nil
	}
	return 0, fmt.Errorf("topology: unknown routing algorithm %q", s)
}

// Route is the ordered list of routers a packet traverses from source tile
// to destination tile, both inclusive. K = len(Tiles) is the router count
// of equations (2) and (6)-(8); the packet additionally crosses K-1
// inter-tile links plus the two core↔router links at the end points.
type Route struct {
	Tiles []TileID
}

// K returns the number of routers traversed.
func (r Route) K() int { return len(r.Tiles) }

// Hops returns the number of inter-tile links traversed (K-1).
func (r Route) Hops() int {
	if len(r.Tiles) == 0 {
		return 0
	}
	return len(r.Tiles) - 1
}

// Route computes the deterministic path from src to dst under the given
// algorithm. On a torus each dimension takes its shortest wrap direction;
// when an even-size dimension offers two equally short directions the tie
// breaks towards the positive one (East, South, Down). The result always
// starts at src and ends at dst; for src == dst it is the single-router
// route. RouteFA routes exactly like RouteXY here; its fault-avoiding
// behaviour only engages through RouteFault with a non-empty FaultSet.
func (m *Mesh) Route(algo RoutingAlgo, src, dst TileID) (Route, error) {
	if !m.Valid(src) || !m.Valid(dst) {
		return Route{}, fmt.Errorf("topology: route endpoints %d->%d outside %dx%dx%d %s",
			src, dst, m.w, m.h, m.d, m.kind)
	}
	tiles := []TileID{src}
	cur := src
	stepDim := func(target int, ax axis) {
		for {
			c := m.Coord(cur)
			var pos, size int
			switch ax {
			case axisX:
				pos, size = c.X, m.w
			case axisY:
				pos, size = c.Y, m.h
			case axisZ:
				pos, size = c.Z, m.d
			}
			if pos == target {
				return
			}
			dir := chooseDir(pos, target, size, m.kind == KindTorus, ax)
			nt, ok := m.step(cur, dir)
			if !ok {
				// Unreachable on well-formed grids; guard keeps the loop finite.
				return
			}
			cur = nt
			tiles = append(tiles, cur)
		}
	}
	dc := m.Coord(dst)
	for _, ax := range algo.order() {
		switch ax {
		case axisX:
			stepDim(dc.X, axisX)
		case axisY:
			stepDim(dc.Y, axisY)
		case axisZ:
			stepDim(dc.Z, axisZ)
		}
	}
	return Route{Tiles: tiles}, nil
}

// chooseDir picks the direction that moves pos towards target in a
// dimension of the given size, using wrap-around when beneficial on a
// torus.
func chooseDir(pos, target, size int, torus bool, ax axis) Direction {
	fwd := target - pos // positive means East (or South, or Down)
	if torus {
		alt := fwd
		if fwd > 0 {
			alt = fwd - size
		} else {
			alt = fwd + size
		}
		// On even-size dimensions the two wrap directions can tie; the
		// documented tie-break is towards the positive direction (East,
		// South, Down), so a tying positive alternative replaces a
		// negative fwd but never the other way round.
		if abs(alt) < abs(fwd) || (abs(alt) == abs(fwd) && alt > 0) {
			fwd = alt
		}
	}
	switch ax {
	case axisX:
		if fwd > 0 {
			return East
		}
		return West
	case axisZ:
		if fwd > 0 {
			return Down
		}
		return Up
	}
	if fwd > 0 {
		return South
	}
	return North
}
