// Package graph provides small directed-graph utilities used by the
// application models: topological sorting, cycle detection, reachability
// and weighted critical-path computation on DAGs.
//
// Nodes are dense integers in [0, N). The package is deliberately minimal:
// it exists so that the CDCG (communication dependence and computation
// graph) of package model can be validated and analysed without pulling in
// any external dependency.
package graph

import (
	"errors"
	"fmt"
)

// ErrCycle is returned by operations that require a DAG when the graph
// contains a directed cycle.
var ErrCycle = errors.New("graph: directed cycle detected")

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// The zero value is an empty graph with no nodes; use New to create a
// graph with a fixed node count.
type Digraph struct {
	adj   [][]int
	radj  [][]int
	edges int
}

// New returns a directed graph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		n = 0
	}
	return &Digraph{adj: make([][]int, n), radj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.edges }

// AddEdge inserts the directed edge u->v. It returns an error if either
// endpoint is out of range or if u == v (self loops are never meaningful
// for dependence graphs). Parallel edges are tolerated but collapse to a
// single logical dependence.
func (g *Digraph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	g.adj[u] = append(g.adj[u], v)
	g.radj[v] = append(g.radj[v], u)
	g.edges++
	return nil
}

// Succ returns the successors of u. The returned slice is owned by the
// graph and must not be modified.
//nocvet:noalloc
func (g *Digraph) Succ(u int) []int { return g.adj[u] }

// Pred returns the predecessors of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Pred(u int) []int { return g.radj[u] }

// InDegree returns the number of edges entering u.
//nocvet:noalloc
func (g *Digraph) InDegree(u int) int { return len(g.radj[u]) }

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// Sources returns all nodes with no incoming edges, in increasing order.
func (g *Digraph) Sources() []int {
	var s []int
	for v := range g.adj {
		if len(g.radj[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns all nodes with no outgoing edges, in increasing order.
func (g *Digraph) Sinks() []int {
	var s []int
	for v := range g.adj {
		if len(g.adj[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// TopoSort returns a topological order of the nodes, or ErrCycle if the
// graph is not a DAG. The order is deterministic: among ready nodes the
// smallest index is emitted first (Kahn's algorithm with an index-ordered
// frontier), so repeated runs over the same graph agree.
func (g *Digraph) TopoSort() ([]int, error) {
	n := len(g.adj)
	indeg := make([]int, n)
	for v := range g.radj {
		indeg[v] = len(g.radj[v])
	}
	// Min-heap over node indices keeps the order deterministic.
	h := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			h.push(v)
		}
	}
	order := make([]int, 0, n)
	for h.len() > 0 {
		v := h.pop()
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				h.push(w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, err := g.TopoSort()
	return err != nil
}

// Reachable returns a boolean slice r where r[v] is true iff v is
// reachable from `from` (including from itself).
func (g *Digraph) Reachable(from int) []bool {
	r := make([]bool, len(g.adj))
	if from < 0 || from >= len(g.adj) {
		return r
	}
	stack := []int{from}
	r[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !r[w] {
				r[w] = true
				stack = append(stack, w)
			}
		}
	}
	return r
}

// LongestPath computes, for a DAG, the maximum total node weight over any
// directed path, where weight(v) gives the non-negative weight of node v.
// Edge weights are zero. It returns ErrCycle for cyclic graphs. An empty
// graph has longest path 0.
func (g *Digraph) LongestPath(weight func(v int) int64) (int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	dist := make([]int64, len(g.adj))
	var best int64
	for _, v := range order {
		d := dist[v] + weight(v)
		if d > best {
			best = d
		}
		for _, w := range g.adj[v] {
			if d > dist[w] {
				dist[w] = d
			}
		}
	}
	return best, nil
}

// intHeap is a tiny binary min-heap of ints; container/heap's interface
// indirection is not worth it for this internal helper.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.a[l] < h.a[m] {
			m = l
		}
		if r < len(h.a) && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
