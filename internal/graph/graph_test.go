package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Digraph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestTopoSortLinear(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 4, 1)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 1, 0)
	first, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: order %v differs from first %v", i, again, first)
			}
		}
	}
	// Smallest ready index first: 2, 3, 4 are sources; 2 must come first.
	if first[0] != 2 {
		t.Fatalf("expected node 2 first, got %v", first)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if !g.HasCycle() {
		t.Fatal("HasCycle = false on a 3-cycle")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestEdgeRangeChecked(t *testing.T) {
	g := New(2)
	for _, e := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Fatalf("edge %v accepted", e)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	src := g.Sources()
	if len(src) != 2 || src[0] != 0 || src[1] != 1 {
		t.Fatalf("sources = %v", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0] != 3 {
		t.Fatalf("sinks = %v", snk)
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	r := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reachable(0) = %v, want %v", r, want)
		}
	}
	if r := g.Reachable(-1); r[0] {
		t.Fatal("out-of-range source should reach nothing")
	}
}

func TestLongestPath(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3 with weights 1, 10, 2, 5.
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	w := []int64{1, 10, 2, 5}
	got, err := g.LongestPath(func(v int) int64 { return w[v] })
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 { // 0 -> 1 -> 3
		t.Fatalf("LongestPath = %d, want 16", got)
	}
}

func TestLongestPathEmpty(t *testing.T) {
	g := New(0)
	got, err := g.LongestPath(func(int) int64 { return 1 })
	if err != nil || got != 0 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestLongestPathCycle(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	if _, err := g.LongestPath(func(int) int64 { return 1 }); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

// randomDAG builds a DAG by only adding forward edges under a random
// permutation, so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n, m int) *Digraph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i < m; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if perm[a] > perm[b] {
			a, b = b, a
		}
		_ = g.AddEdge(a, b)
	}
	return g
}

func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, 3*n)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLongestPathAtLeastMaxNode(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := randomDAG(rng, n, 2*n)
		w := make([]int64, n)
		var maxw int64
		for i := range w {
			w[i] = int64(rng.Intn(100))
			if w[i] > maxw {
				maxw = w[i]
			}
		}
		lp, err := g.LongestPath(func(v int) int64 { return w[v] })
		if err != nil {
			return false
		}
		return lp >= maxw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := &intHeap{}
	in := []int{5, 3, 9, 1, 7, 1, 0}
	for _, x := range in {
		h.push(x)
	}
	prev := -1
	for h.len() > 0 {
		x := h.pop()
		if x < prev {
			t.Fatalf("heap popped %d after %d", x, prev)
		}
		prev = x
	}
}
