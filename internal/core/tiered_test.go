package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/appgen"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// tieredGrid is one (mesh, application) pair of the two-tier test matrix;
// the instance is regenerated per grid so every core fits.
type tieredGrid struct {
	name string
	mesh *topology.Mesh
	g    *model.CDCG
}

func tieredGrids(t testing.TB) []tieredGrid {
	t.Helper()
	mk := func(name string, mesh *topology.Mesh, err error, cores int) tieredGrid {
		if err != nil {
			t.Fatal(err)
		}
		g, err := appgen.Generate(appgen.Params{
			Name:      "tiered-" + name,
			Cores:     cores,
			Packets:   8 * cores,
			TotalBits: int64(5000 * cores),
			Seed:      99,
			Chains:    cores / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tieredGrid{name: name, mesh: mesh, g: g}
	}
	m2, err2 := topology.NewMesh(4, 3)
	m3, err3 := topology.NewMesh3D(3, 2, 2)
	tr, errT := topology.NewTorus3D(3, 2, 2)
	return []tieredGrid{
		mk("mesh2d", m2, err2, 10),
		mk("mesh3d", m3, err3, 10),
		mk("torus3d", tr, errT, 10),
	}
}

// tieredCfg exercises the vadj path on 3-D grids: a TSV hop slower than a
// planar link makes the V·(tTSV−tl) critical-path term non-zero.
func tieredCfg() noc.Config {
	cfg := noc.Default()
	cfg.TSVLinkCycles = 3
	return cfg
}

// TestTierAHillTabuBitIdentical is the tentpole's central contract: a
// HillClimber or Tabu run over TieredObjective{Exact, Bound} must retrace
// the bare-CDCM run bit for bit — same Best, same BestCost, same
// Evaluations and Improvements — while actually skipping bound-rejected
// swaps (BoundSkips > 0). Covered on 2-D mesh, 3-D mesh and 3-D torus.
func TestTierAHillTabuBitIdentical(t *testing.T) {
	cfg, tech := tieredCfg(), energy.Tech007
	for _, grid := range tieredGrids(t) {
		cdcm, err := NewCDCM(grid.mesh, cfg, tech, grid.g)
		if err != nil {
			t.Fatal(err)
		}
		lbSkel, err := newTexecLB(cfg, grid.g)
		if err != nil {
			t.Fatal(err)
		}
		run := func(engine string, obj search.Objective) *search.Result {
			prob := search.Problem{Mesh: grid.mesh, NumCores: grid.g.NumCores(), Obj: obj}
			var res *search.Result
			var err error
			if engine == "hill" {
				res, err = (&search.HillClimber{Problem: prob, Seed: 7}).Run()
			} else {
				res, err = (&search.Tabu{Problem: prob, Seed: 7, Iterations: 40}).Run()
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", grid.name, engine, err)
			}
			return res
		}
		for _, engine := range []string{"hill", "tabu"} {
			bare := run(engine, cdcm.Clone())
			bnd, err := newCDCMBound(grid.mesh, cfg, tech, grid.g, lbSkel)
			if err != nil {
				t.Fatal(err)
			}
			tiered := run(engine, &search.TieredObjective{Exact: cdcm.Clone(), Bound: bnd})

			if !mapping.Equal(bare.Best, tiered.Best) {
				t.Fatalf("%s/%s: tiered best %v != bare best %v", grid.name, engine, tiered.Best, bare.Best)
			}
			if math.Float64bits(bare.BestCost) != math.Float64bits(tiered.BestCost) {
				t.Fatalf("%s/%s: tiered cost %x != bare cost %x", grid.name, engine,
					math.Float64bits(tiered.BestCost), math.Float64bits(bare.BestCost))
			}
			if bare.Evaluations != tiered.Evaluations || bare.Improvements != tiered.Improvements {
				t.Fatalf("%s/%s: tiered (evals %d, impr %d) != bare (evals %d, impr %d)",
					grid.name, engine, tiered.Evaluations, tiered.Improvements,
					bare.Evaluations, bare.Improvements)
			}
			if tiered.BoundSkips == 0 {
				t.Fatalf("%s/%s: bound filter never skipped a swap", grid.name, engine)
			}
			if bare.BoundSkips != 0 || bare.SurrogateEvals != 0 {
				t.Fatalf("%s/%s: bare run reports tier counters (%d skips, %d surrogate)",
					grid.name, engine, bare.BoundSkips, bare.SurrogateEvals)
			}
			checkTierSum(t, grid.name+"/"+engine+"/bare", bare)
			checkTierSum(t, grid.name+"/"+engine+"/tiered", tiered)
			if bare.ExactEvals != bare.Evaluations {
				t.Fatalf("%s/%s: bare ExactEvals %d != Evaluations %d",
					grid.name, engine, bare.ExactEvals, bare.Evaluations)
			}
		}
	}
}

func checkTierSum(t *testing.T, name string, res *search.Result) {
	t.Helper()
	if got := res.ExactEvals + res.BoundSkips + res.SurrogateEvals; got != res.Evaluations {
		t.Fatalf("%s: tier counters sum to %d, Evaluations is %d", name, got, res.Evaluations)
	}
}

// TestTierABoundCertified is the property test behind the skip rule: the
// tier-A bound never exceeds the exact simulated cost — across 2-D/3-D/
// torus grids, both buffer policies, and fault sets routed with
// RouteFault. The bound is computed from the intact topology even when
// the exact evaluation is faulted: detour routes are hop-wise at least
// minimal, so the uncontended critical path (and the dynamic term) can
// only grow under faults.
func TestTierABoundCertified(t *testing.T) {
	tech := energy.Tech007
	for _, grid := range tieredGrids(t) {
		lbSkel, err := newTexecLB(tieredCfg(), grid.g)
		if err != nil {
			t.Fatal(err)
		}
		var faultSets []*topology.FaultSet
		faultSets = append(faultSets, nil)
		fs, err := topology.GenerateFaults(grid.mesh, 0.1, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !fs.Empty() {
			faultSets = append(faultSets, fs)
		}
		for _, buffers := range []noc.BufferPolicy{noc.BuffersUnbounded, noc.BuffersBounded} {
			cfg := tieredCfg()
			cfg.Buffers = buffers
			if buffers == noc.BuffersBounded {
				cfg.BufferFlits = 4
			}
			for fi, fs := range faultSets {
				name := fmt.Sprintf("%s/%s/faults=%d", grid.name, buffers, fi)
				var exact *CDCM
				if fs == nil {
					exact, err = NewCDCM(grid.mesh, cfg, tech, grid.g)
				} else {
					exact, err = NewCDCMFaults(grid.mesh, cfg, tech, grid.g, fs)
				}
				if err != nil {
					t.Fatal(err)
				}
				bound, err := newCDCMBound(grid.mesh, cfg, tech, grid.g, lbSkel)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(11))
				tiles := grid.mesh.NumTiles()
				for trial := 0; trial < 12; trial++ {
					mp, err := mapping.Random(rng, grid.g.NumCores(), tiles)
					if err != nil {
						t.Fatal(err)
					}
					lb, err := bound.ResetBound(mp)
					if err != nil {
						t.Fatal(err)
					}
					cost, err := exact.Cost(mp)
					if errors.Is(err, topology.ErrUnreachable) {
						continue
					}
					if err != nil {
						t.Fatalf("%s trial %d: %v", name, trial, err)
					}
					if lb > cost {
						t.Fatalf("%s trial %d: bound %.17g exceeds exact %.17g", name, trial, lb, cost)
					}
					occ := mp.Occupants(tiles)
					for s := 0; s < 8; s++ {
						ta := topology.TileID(rng.Intn(tiles))
						tb := topology.TileID(rng.Intn(tiles))
						if ta == tb {
							continue
						}
						slb, err := bound.SwapBound(occ, ta, tb)
						if err != nil {
							t.Fatal(err)
						}
						sm := mp.Clone()
						socc := mp.Occupants(tiles)
						mapping.SwapTiles(sm, socc, ta, tb)
						scost, err := exact.Cost(sm)
						if errors.Is(err, topology.ErrUnreachable) {
							continue
						}
						if err != nil {
							t.Fatalf("%s trial %d swap %d: %v", name, trial, s, err)
						}
						if slb > scost {
							t.Fatalf("%s trial %d swap (%d,%d): bound %.17g exceeds exact %.17g",
								name, trial, ta, tb, slb, scost)
						}
					}
				}
			}
		}
	}
}

// TestSurrogateDeltaAndCollapseIdentity pins the tier-B evaluator's
// internal consistency: its incremental path reproduces its full path bit
// for bit (SwapDelta equals the difference of full costs; Commit returns
// the full cost of the updated baseline), and its scalar equals the
// collapsed vector — the same contracts CWM and CDCM honour.
func TestSurrogateDeltaAndCollapseIdentity(t *testing.T) {
	mesh, g := deltaInstance3D(t, 3, 2, 2, 10)
	cfg, tech := tieredCfg(), energy.Tech007
	exact, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := fitSurrogate(mesh, cfg, tech, g, exact, 21, 8)
	if err != nil {
		t.Fatal(err)
	}
	surr, err := newCDCMSurrogate(mesh, cfg, tech, g, fit)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tiles := mesh.NumTiles()
	comps := make([]float64, len(surr.Axes()))
	for trial := 0; trial < 10; trial++ {
		mp, err := mapping.Random(rng, g.NumCores(), tiles)
		if err != nil {
			t.Fatal(err)
		}
		base, err := surr.Reset(mp)
		if err != nil {
			t.Fatal(err)
		}
		full, err := surr.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(base) != math.Float64bits(full) {
			t.Fatalf("trial %d: Reset %x != Cost %x", trial, math.Float64bits(base), math.Float64bits(full))
		}
		if err := surr.ComponentsInto(mp, comps); err != nil {
			t.Fatal(err)
		}
		if c := search.Collapse(surr.CollapseWeights(), comps); math.Float64bits(c) != math.Float64bits(full) {
			t.Fatalf("trial %d: collapse %x != Cost %x", trial, math.Float64bits(c), math.Float64bits(full))
		}
		occ := mp.Occupants(tiles)
		for s := 0; s < 6; s++ {
			ta := topology.TileID(rng.Intn(tiles))
			tb := topology.TileID(rng.Intn(tiles))
			if ta == tb {
				continue
			}
			d, err := surr.SwapDelta(occ, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			sm := mp.Clone()
			socc := mp.Occupants(tiles)
			mapping.SwapTiles(sm, socc, ta, tb)
			sfull, err := surr.Cost(sm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(d) != math.Float64bits(sfull-full) {
				t.Fatalf("trial %d swap (%d,%d): delta %x != cost difference %x",
					trial, ta, tb, math.Float64bits(d), math.Float64bits(sfull-full))
			}
			// Fold the swap in and check Commit's return against the full
			// path, then rebind the original baseline for the next probe.
			if c := surr.Commit(ta, tb); math.Float64bits(c) != math.Float64bits(sfull) {
				t.Fatalf("trial %d: Commit %x != swapped Cost %x", trial, math.Float64bits(c), math.Float64bits(sfull))
			}
			if _, err := surr.Reset(mp); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSurrogateFitDeterministic pins the calibration: a fixed (instance,
// seed, samples) triple always yields the same fit, and different seeds
// are allowed to differ (they sample different mappings).
func TestSurrogateFitDeterministic(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 8)
	cfg, tech := noc.Default(), energy.Tech007
	exact, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fitSurrogate(mesh, cfg, tech, g, exact, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fitSurrogate(mesh, cfg, tech, g, exact, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.A) != math.Float64bits(b.A) || math.Float64bits(a.B) != math.Float64bits(b.B) {
		t.Fatalf("same seed, different fits: %+v vs %+v", a, b)
	}
	if a.B < 0 {
		t.Fatalf("fitted slope is negative: %+v", a)
	}
}

// TestSurrogateSADeterministicAcrossWorkers is the tier-B acceptance
// gate: a surrogate-driven SA exploration is deterministic for every
// worker count, reports a Best whose cost a fresh exact evaluator
// reproduces bit for bit, and splits its evaluation counters so that
// Evaluations = ExactEvals + SurrogateEvals.
func TestSurrogateSADeterministicAcrossWorkers(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 8)
	cfg, tech := noc.Default(), energy.Tech007
	var ref *ExploreResult
	for workers := 1; workers <= 3; workers++ {
		res, err := Explore(StrategyCDCM, mesh, cfg, tech, g, Options{
			Method: MethodSA, Seed: 5, Surrogate: true, SurrogateSamples: 10,
			TempSteps: 12, MovesPerTemp: 20, Restarts: 3, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Search.SurrogateEvals == 0 {
			t.Fatalf("workers=%d: surrogate never priced a candidate", workers)
		}
		if res.Search.ExactEvals == 0 {
			t.Fatalf("workers=%d: no exact evaluations at all", workers)
		}
		if res.Search.BoundSkips != 0 {
			t.Fatalf("workers=%d: SA reports %d bound skips; tier A is hill/tabu only",
				workers, res.Search.BoundSkips)
		}
		checkTierSum(t, fmt.Sprintf("workers=%d", workers), res.Search)
		fresh, err := NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			t.Fatal(err)
		}
		m, err := fresh.Evaluate(res.Best)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(m.Total()) != math.Float64bits(res.Search.BestCost) {
			t.Fatalf("workers=%d: BestCost %x is not the exact price %x — a surrogate value leaked",
				workers, math.Float64bits(res.Search.BestCost), math.Float64bits(m.Total()))
		}
		if ref == nil {
			ref = res
			continue
		}
		if !mapping.Equal(ref.Best, res.Best) ||
			math.Float64bits(ref.Search.BestCost) != math.Float64bits(res.Search.BestCost) ||
			ref.Search.Evaluations != res.Search.Evaluations ||
			ref.Search.ExactEvals != res.Search.ExactEvals ||
			ref.Search.SurrogateEvals != res.Search.SurrogateEvals {
			t.Fatalf("workers=%d diverges from workers=1: (%v, %g, %d/%d/%d) vs (%v, %g, %d/%d/%d)",
				workers, res.Best, res.Search.BestCost, res.Search.Evaluations,
				res.Search.ExactEvals, res.Search.SurrogateEvals,
				ref.Best, ref.Search.BestCost, ref.Search.Evaluations,
				ref.Search.ExactEvals, ref.Search.SurrogateEvals)
		}
	}
}

// TestSurrogateParetoFrontExact is tier B's front-side acceptance gate:
// a surrogate-driven Pareto exploration stays deterministic across worker
// counts and every returned front point carries exact components — a
// fresh CDCM reproduces them bit for bit.
func TestSurrogateParetoFrontExact(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 8)
	cfg, tech := noc.Default(), energy.Tech007
	var ref *ExploreResult
	for workers := 1; workers <= 2; workers++ {
		res, err := Explore(StrategyPareto, mesh, cfg, tech, g, Options{
			Seed: 9, Surrogate: true, SurrogateSamples: 10,
			TempSteps: 10, MovesPerTemp: 15, Restarts: 2, FrontSize: 8, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		front := res.Front
		if front.SurrogateEvals == 0 {
			t.Fatalf("workers=%d: surrogate never priced a candidate", workers)
		}
		if got := front.ExactEvals + front.SurrogateEvals; got != front.Evaluations {
			t.Fatalf("workers=%d: front counters sum to %d, Evaluations is %d",
				workers, got, front.Evaluations)
		}
		checkTierSum(t, fmt.Sprintf("pareto workers=%d", workers), res.Search)
		fresh, err := NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			t.Fatal(err)
		}
		comps := make([]float64, len(front.Axes))
		for i, p := range front.Points {
			if err := fresh.ComponentsInto(p.Mapping, comps); err != nil {
				t.Fatal(err)
			}
			for a := range comps {
				if math.Float64bits(comps[a]) != math.Float64bits(p.Components[a]) {
					t.Fatalf("workers=%d point %d axis %s: archived %x != exact %x — a surrogate component leaked",
						workers, i, front.Axes[a], math.Float64bits(p.Components[a]), math.Float64bits(comps[a]))
				}
			}
		}
		if ref == nil {
			ref = res
			continue
		}
		rf := ref.Front
		if len(rf.Points) != len(front.Points) {
			t.Fatalf("workers=%d: front size %d != workers=1 size %d", workers, len(front.Points), len(rf.Points))
		}
		for i := range front.Points {
			if !mapping.Equal(rf.Points[i].Mapping, front.Points[i].Mapping) ||
				math.Float64bits(rf.Points[i].Cost) != math.Float64bits(front.Points[i].Cost) {
				t.Fatalf("workers=%d: front point %d diverges from workers=1", workers, i)
			}
		}
		if !mapping.Equal(ref.Best, res.Best) {
			t.Fatalf("workers=%d: best %v != workers=1 best %v", workers, res.Best, ref.Best)
		}
	}
}

// TestSurrogateIgnoredWhereInapplicable pins the Options.Surrogate
// contract: the flag is a no-op — bit for bit — for the engines that
// cannot use it (hill/tabu, which carry tier A instead, and CWM runs).
func TestSurrogateIgnoredWhereInapplicable(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 8)
	cfg, tech := noc.Default(), energy.Tech007
	for _, tc := range []struct {
		name  string
		strat Strategy
		mth   Method
	}{
		{"cdcm-hill", StrategyCDCM, MethodHill},
		{"cdcm-tabu", StrategyCDCM, MethodTabu},
		{"cwm-sa", StrategyCWM, MethodSA},
	} {
		opts := Options{Method: tc.mth, Seed: 3, TempSteps: 8, MovesPerTemp: 10}
		plain, err := Explore(tc.strat, mesh, cfg, tech, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Surrogate = true
		flagged, err := Explore(tc.strat, mesh, cfg, tech, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !mapping.Equal(plain.Best, flagged.Best) ||
			math.Float64bits(plain.Search.BestCost) != math.Float64bits(flagged.Search.BestCost) ||
			plain.Search.Evaluations != flagged.Search.Evaluations ||
			flagged.Search.SurrogateEvals != 0 {
			t.Fatalf("%s: Surrogate flag changed the run", tc.name)
		}
	}
}

// TestExploreHillTabuUsesBound pins the Explore wiring: CDCM hill/tabu
// runs attach tier A (BoundSkips > 0) and still reproduce the bare-engine
// trajectory bit for bit.
func TestExploreHillTabuUsesBound(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 8)
	cfg, tech := noc.Default(), energy.Tech007
	cdcm, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, mth := range []Method{MethodHill, MethodTabu} {
		res, err := Explore(StrategyCDCM, mesh, cfg, tech, g, Options{Method: mth, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if res.Search.BoundSkips == 0 {
			t.Fatalf("%v: Explore did not attach the tier-A bound", mth)
		}
		checkTierSum(t, mth.String(), res.Search)
		prob := search.Problem{Mesh: mesh, NumCores: g.NumCores(), Obj: cdcm.Clone()}
		var bare *search.Result
		if mth == MethodHill {
			bare, err = (&search.HillClimber{Problem: prob, Seed: 13}).Run()
		} else {
			bare, err = (&search.Tabu{Problem: prob, Seed: 13}).Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		if !mapping.Equal(bare.Best, res.Best) ||
			math.Float64bits(bare.BestCost) != math.Float64bits(res.Search.BestCost) ||
			bare.Evaluations != res.Search.Evaluations {
			t.Fatalf("%v: Explore run diverges from bare engine", mth)
		}
	}
}
