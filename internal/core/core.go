// Package core implements the paper's primary contribution: the FRW
// mapping-exploration framework with its two application models —
//
//   - CWM, the communication weighted model of the prior art (Hu/
//     Marculescu, Murali/De Micheli): prices a mapping by dynamic energy
//     alone (equation (3)), blind to timing;
//   - CDCM, the communication dependence and computation model introduced
//     by the paper: executes the application's CDCG on the mapped NoC with
//     the wormhole simulator, obtains the execution time texec including
//     contention, and prices the mapping by total energy
//     ENoC = EStNoC + EDyNoC (equation (10)).
//
// Both models plug into the search engines of package search, and
// CompareModels runs the paper's Table-2 protocol: explore under each
// model, then price both winners with the CDCM simulator to report the
// execution-time reduction (ETR) and energy-consumption savings (ECS).
package core

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

// CWM is the communication weighted model evaluator. Its objective is
// EDyNoC of equation (3): each communication contributes
// w_ab × (K·ERbit + (K−1)·ELbit + 2·ECbit) where K is the router count of
// the XY route between the mapped tiles. CWM carries no timing
// information, so it cannot price static energy — the paper's central
// criticism.
type CWM struct {
	Mesh *topology.Mesh
	Cfg  noc.Config
	Tech energy.Tech
	G    *model.CWG

	// Evals, when non-nil, is incremented once per pricing — full Cost
	// calls and incremental SwapDelta probes alike. It is telemetry
	// only (an atomic add on the hot path, no allocation) and never
	// feeds back into a cost.
	Evals *obs.Counter

	kCache   []int16 // routers per (srcTile, dstTile) pair, lazily filled
	numTiles int     // cached Mesh.NumTiles(), the kCache stride

	// flat is true on depth-1 grids, which have no vertical links: every
	// vertical-traffic code path below is skipped, keeping the 2-D hot
	// loops (and their results) exactly as they were before the 3-D
	// extension. vCache mirrors kCache with the vertical (TSV) hop count
	// of each tile pair and is nil when flat; it is filled by the same
	// cache-miss path as kCache, so a non-zero kCache entry guarantees a
	// valid vCache entry.
	flat   bool
	vCache []int16

	// totalBits is Σw over all CWG edges. It links the two traffic
	// aggregates — Σ w·(K−1) = Σ w·K − Σw for every mapping — so Cost and
	// the incremental path only fold router-bits and derive link-bits.
	totalBits int64
	// coreBits is the mapping-independent core↔router traffic aggregate:
	// every communication crosses exactly two core↔router links, so the
	// ECbit term of equation (1) contributes 2·Σw regardless of placement.
	coreBits int64

	// adj is the per-core adjacency in structure-of-arrays form: for each
	// core, the other endpoint, bit volume and G.Edges index of every
	// incident edge. Built once in NewCWM, it powers the O(deg)
	// incremental evaluation of cwm_delta.go: a swap of two tiles can only
	// change the contributions of edges incident to the affected cores.
	adj []coreAdj

	// Incremental-evaluation state bound by Reset (see cwm_delta.go): the
	// baseline mapping, its occupancy view, the router count of each CWG
	// edge's route under that baseline, and the integer traffic aggregate
	// routerBits = Σ w·K (link-bits derive as routerBits − totalBits).
	// Keeping the aggregate in exact integer arithmetic is what makes
	// incremental evaluation bit-identical to a full recompute — swap
	// deltas are integer updates, so equal-cost mappings tie exactly on
	// both paths. On 3-D grids edgeV/tsvBits track the vertical (TSV)
	// traffic aggregate Σ w·V the same way (V = vertical hops of the
	// edge's route); both are nil/zero when flat.
	bound      mapping.Mapping
	boundOcc   []model.CoreID
	edgeK      []int16
	edgeV      []int16
	routerBits int64
	tsvBits    int64
}

// NewCWM validates the inputs and builds the evaluator.
func NewCWM(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech, g *model.CWG) (*CWM, error) {
	if mesh == nil {
		return nil, errors.New("core: nil mesh")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumCores() > mesh.NumTiles() {
		return nil, fmt.Errorf("core: %d cores exceed %d tiles", g.NumCores(), mesh.NumTiles())
	}
	adj := make([]coreAdj, g.NumCores())
	for i, e := range g.Edges {
		adj[e.Src].edges = append(adj[e.Src].edges, adjEdge{nbr: int32(e.Dst), edge: int32(i), bits: e.Bits})
		adj[e.Dst].edges = append(adj[e.Dst].edges, adjEdge{nbr: int32(e.Src), edge: int32(i), bits: e.Bits})
	}
	c := &CWM{Mesh: mesh, Cfg: cfg, Tech: tech, G: g,
		kCache:    make([]int16, mesh.NumTiles()*mesh.NumTiles()),
		numTiles:  mesh.NumTiles(),
		flat:      mesh.D() == 1,
		totalBits: g.TotalBits(),
		coreBits:  2 * g.TotalBits(),
		adj:       adj}
	if !c.flat {
		c.vCache = make([]int16, mesh.NumTiles()*mesh.NumTiles())
	}
	return c, nil
}

// routers returns K for a tile pair, caching the route length.
//nocvet:noalloc
func (c *CWM) routers(src, dst topology.TileID) (int, error) {
	if k := c.kCache[int(src)*c.numTiles+int(dst)]; k > 0 {
		return int(k), nil
	}
	//nocvet:ignore cache-miss fallback: every pair is computed once, then served from kCache; amortized alloc-free
	return c.routersSlow(src, dst)
}

// routersSlow computes and caches K (and, on 3-D grids, the vertical hop
// count) on a cache miss; kept out of routers so the hot-path hit check
// inlines into the evaluation loops.
func (c *CWM) routersSlow(src, dst topology.TileID) (int, error) {
	r, err := c.Mesh.Route(c.Cfg.Routing, src, dst)
	if err != nil {
		return 0, err
	}
	idx := int(src)*c.numTiles + int(dst)
	c.kCache[idx] = int16(r.K())
	if !c.flat {
		c.vCache[idx] = int16(c.Mesh.VerticalHops(src, dst))
	}
	return r.K(), nil
}

// Cost implements search.Objective: EDyNoC in joules. The per-edge sum
// Σ w_ab·EBit(K) is folded as exact integer traffic aggregates — Σ w·K
// router-bits, Σ w·(K−1) link-bits and, on 3-D grids, Σ w·V vertical
// (TSV) bits — and priced with one call to Tech.DynamicFromTraffic3D,
// the same formula the CDCM simulator path uses
// (equations (3)/(4) agree on dynamic energy by construction). Integer
// folding means the value is independent of edge order, and incremental
// swap deltas (cwm_delta.go) reproduce it bit-for-bit.
//
// Per the Objective hot-path contract, Cost assumes mp is injective and
// performs only a length check: the search engines call it once per
// proposed move with mappings that are valid by construction, and a full
// injectivity scan here would dominate the hot loop. Callers pricing an
// externally supplied mapping must validate it first — Reset and Traffic
// are the validating entry points.
//nocvet:noalloc
func (c *CWM) Cost(mp mapping.Mapping) (float64, error) {
	if len(mp) != c.G.NumCores() {
		return 0, fmt.Errorf("core: mapping covers %d cores, CWG has %d", len(mp), c.G.NumCores())
	}
	if c.Evals != nil {
		c.Evals.Inc()
	}
	var rb, vb int64
	for _, e := range c.G.Edges {
		k, err := c.routers(mp[e.Src], mp[e.Dst])
		if err != nil {
			return 0, err
		}
		rb += e.Bits * int64(k)
		if !c.flat {
			// routers filled the pair's cache line, so the vertical hop
			// count is valid here.
			vb += e.Bits * int64(c.vCache[int(mp[e.Src])*c.numTiles+int(mp[e.Dst])])
		}
	}
	return c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits), nil
}

// Traffic returns the per-resource bit aggregates of a mapping — the cost
// variables the CWM algorithm stores on CRG vertices and edges (Figure 2):
// routerBits[t] feeds ERbit, linkBits[l] feeds ELbit, coreBits feeds the
// optional ECbit term.
func (c *CWM) Traffic(mp mapping.Mapping) (routerBits, linkBits []int64, coreBits int64, err error) {
	if err := mp.Validate(c.Mesh.NumTiles()); err != nil {
		return nil, nil, 0, err
	}
	if len(mp) != c.G.NumCores() {
		return nil, nil, 0, fmt.Errorf("core: mapping covers %d cores, CWG has %d", len(mp), c.G.NumCores())
	}
	routerBits = make([]int64, c.Mesh.NumTiles())
	linkBits = make([]int64, c.Mesh.NumLinks())
	for _, e := range c.G.Edges {
		r, err := c.Mesh.Route(c.Cfg.Routing, mp[e.Src], mp[e.Dst])
		if err != nil {
			return nil, nil, 0, err
		}
		for i, t := range r.Tiles {
			routerBits[t] += e.Bits
			if i+1 < len(r.Tiles) {
				li, ok := c.Mesh.LinkIndex(t, r.Tiles[i+1])
				if !ok {
					return nil, nil, 0, errors.New("core: route step is not a link")
				}
				linkBits[li] += e.Bits
			}
		}
		coreBits += 2 * e.Bits
	}
	return routerBits, linkBits, coreBits, nil
}

// Metrics is the full CDCM pricing of one mapping.
type Metrics struct {
	// ExecCycles is texec in clock cycles.
	ExecCycles int64
	// ExecNS is texec in nanoseconds (cycles × λ).
	ExecNS float64
	// Energy is the dynamic/static breakdown under the pricing tech.
	Energy energy.Breakdown
	// ContentionCycles is the total packet stall time.
	ContentionCycles int64
	// TSVBits is the bit volume that crossed vertical (TSV) links — zero
	// on depth-1 grids. It reports how much of the dynamic energy the
	// ETSVbit coefficient priced.
	TSVBits int64
}

// Total returns ENoC in joules.
func (m Metrics) Total() float64 { return m.Energy.Total() }

// CDCM is the communication dependence and computation model evaluator:
// it executes the CDCG on the mapped NoC (wormhole simulator) and prices
// the result with equation (10).
//
// The simulator core (route tables, port tables, dependence graph) is
// immutable and shared; the mutable per-run state lives in a private
// wormhole.Scratch. One CDCM is therefore cheap to Clone: clones share
// the simulator and get their own scratch, which is how the parallel
// search engines evaluate the CDCM objective concurrently without
// rebuilding or locking anything. A single CDCM instance is still not
// safe for concurrent use — give each goroutine its own clone.
type CDCM struct {
	Tech energy.Tech

	// Evals, when non-nil, is incremented once per simulation run
	// (EvaluateWith, and therefore Cost/Evaluate/ComponentsInto).
	// Telemetry only; shared by clones so parallel lanes fold into one
	// total.
	Evals *obs.Counter

	sim *wormhole.Simulator
	sc  *wormhole.Scratch
}

// NewCDCM validates the inputs and builds the evaluator.
func NewCDCM(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech, g *model.CDCG) (*CDCM, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	sim, err := wormhole.NewSimulator(mesh, cfg, g)
	if err != nil {
		return nil, err
	}
	return &CDCM{Tech: tech, sim: sim, sc: sim.NewScratch()}, nil
}

// Clone returns an independent evaluator lane sharing this evaluator's
// immutable simulator core: construction cost is one scratch allocation,
// no re-validation and no route recomputation. Clones may run
// concurrently with each other and with the original.
func (c *CDCM) Clone() *CDCM {
	return &CDCM{Tech: c.Tech, Evals: c.Evals, sim: c.sim, sc: c.sim.NewScratch()}
}

// Simulator exposes the underlying wormhole simulator (e.g. to flip
// RecordOccupancy for rendering runs).
func (c *CDCM) Simulator() *wormhole.Simulator { return c.sim }

// Evaluate runs the simulation and prices it under the evaluator's tech.
func (c *CDCM) Evaluate(mp mapping.Mapping) (Metrics, error) {
	return c.EvaluateWith(mp, c.Tech)
}

// EvaluateWith runs the simulation and prices it under an arbitrary
// technology profile — the Table-2 protocol prices the same pair of
// mappings under both 0.35µm and 0.07µm. The run takes the scratch path
// (allocation-free in steady state); Metrics copies everything out, so
// nothing retains the scratch.
func (c *CDCM) EvaluateWith(mp mapping.Mapping, tech energy.Tech) (Metrics, error) {
	if c.Evals != nil {
		c.Evals.Inc()
	}
	res, err := c.sim.RunScratch(mp, c.sc)
	if err != nil {
		return Metrics{}, err
	}
	return c.price(res, tech), nil
}

// price converts a simulation result into Metrics under tech.
func (c *CDCM) price(res *wormhole.Result, tech energy.Tech) Metrics {
	var rb, lb int64
	for _, b := range res.RouterBits {
		rb += b
	}
	for _, b := range res.LinkBits {
		lb += b
	}
	dyn := tech.DynamicFromTraffic3D(rb, lb, res.TSVBits, res.CoreBits)
	st := tech.StaticEnergy(c.sim.Mesh.NumTiles(), c.sim.Cfg.CyclesToSeconds(res.ExecCycles))
	return Metrics{
		ExecCycles:       res.ExecCycles,
		ExecNS:           c.sim.Cfg.CyclesToNS(res.ExecCycles),
		Energy:           energy.Breakdown{Dynamic: dyn, Static: st},
		ContentionCycles: res.TotalContention,
		TSVBits:          res.TSVBits,
	}
}

// Cost implements search.Objective: ENoC of equation (10), in joules.
// It runs on the evaluator's scratch, so the search engines pay no heap
// allocation per candidate once the scratch is warm.
func (c *CDCM) Cost(mp mapping.Mapping) (float64, error) {
	m, err := c.Evaluate(mp)
	if err != nil {
		return 0, err
	}
	return m.Total(), nil
}

// Simulate runs the CDCG on a mapping and returns the raw wormhole result
// (timeline, occupancies) together with the priced metrics. Unlike the
// Cost/Evaluate hot path the returned Result has fresh backing arrays —
// independent of the evaluator and safe to keep across later evaluations
// (the trace/Gantt renderers rely on that). It runs on this evaluator's
// own scratch, so clones may Simulate concurrently like they Cost
// concurrently.
func (c *CDCM) Simulate(mp mapping.Mapping) (*wormhole.Result, Metrics, error) {
	res, err := c.sim.RunFresh(mp, c.sc)
	if err != nil {
		return nil, Metrics{}, err
	}
	return res, c.price(res, c.Tech), nil
}
