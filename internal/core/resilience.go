package core

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

// NewCDCMFaults is NewCDCM over a fault-aware simulator: the route table
// detours around the fault set's failed links/routers (see
// wormhole.NewSimulatorFaults). A nil or empty fault set is bit-identical
// to NewCDCM.
func NewCDCMFaults(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, fs *topology.FaultSet) (*CDCM, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	sim, err := wormhole.NewSimulatorFaults(mesh, cfg, g, fs)
	if err != nil {
		return nil, err
	}
	return &CDCM{Tech: tech, sim: sim, sc: sim.NewScratch()}, nil
}

// UnreachablePenaltyFactor prices a fault scenario that partitions a
// communicating pair of the mapping: the scenario's execution time is
// scored as this factor times the mapping's intact texec. The factor is
// deliberately heavy — an unreachable pair means the application cannot
// finish at all under that fault, so any mapping that keeps every pair
// reachable beats one that does not, while the penalty still scales with
// instance size so scores stay comparable across meshes.
const UnreachablePenaltyFactor = 10

var resilienceAxes = []string{"total_j", "worst_fault_cy"}

// Resilience is the fault-degradation objective: it prices a mapping by
// its intact ENoC plus the worst-case execution time over a set of
// single-fault scenarios, one scenario per failed element of the fault
// set (each failed link pair or router fails alone, the standard
// single-fault model). Scenario simulations run on fault-aware route
// tables precomputed at construction, so the per-candidate evaluation
// stays allocation-free in steady state like plain CDCM — it just runs
// 1+len(fault elements) simulations instead of one.
//
// Resilience implements search.Objective and search.VectorObjective with
// axes ["total_j", "worst_fault_cy"]: component 0 is the intact ENoC in
// joules, component 1 the worst scenario texec in cycles (penalised per
// UnreachablePenaltyFactor when a scenario partitions the mapping).
// The collapse weight of the latency axis is the NoC's static power per
// cycle in joules (Tech.StaticPower × clock period), so the scalar
//
//	Cost = ENoC_intact + P_static·t_worst
//
// reads as "intact energy plus the static energy burned by the worst
// degraded run" — one number that is jointly minimal for intact energy
// and worst-case-fault latency, and Cost equals CollapseWeights ·
// Components bit for bit like the other evaluators.
//
// Like CDCM, a Resilience is not safe for concurrent use; Clone hands
// each worker lane its own scratches over the shared simulator cores.
type Resilience struct {
	faults *topology.FaultSet

	intact *CDCM
	lanes  []*CDCM // one fault-aware evaluator per single-fault scenario
	elems  []topology.FaultElement

	weights []float64
	comps   []float64 // Cost's reusable component buffer
}

// NewResilience validates the inputs and builds the resilience evaluator:
// one intact CDCM plus one fault-aware CDCM per element of the fault set.
// The fault set must be non-empty — with no faults there is nothing to
// degrade; callers wanting the intact objective use NewCDCM.
func NewResilience(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, fs *topology.FaultSet) (*Resilience, error) {
	if fs.Empty() {
		return nil, errors.New("core: resilience objective needs a non-empty fault set")
	}
	intact, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		return nil, err
	}
	elems := fs.Elements()
	lanes := make([]*CDCM, len(elems))
	for i, e := range elems {
		single, err := fs.Singleton(e)
		if err != nil {
			return nil, err
		}
		if lanes[i], err = NewCDCMFaults(mesh, cfg, tech, g, single); err != nil {
			return nil, fmt.Errorf("core: fault scenario %s: %w", e, err)
		}
	}
	return &Resilience{
		faults:  fs,
		intact:  intact,
		lanes:   lanes,
		elems:   elems,
		weights: []float64{1, tech.StaticPower(mesh.NumTiles()) * cfg.CyclesToSeconds(1)},
		comps:   make([]float64, len(resilienceAxes)),
	}, nil
}

// Clone returns an independent evaluator lane: fresh scratches over the
// shared intact and per-scenario simulator cores. Clones may run
// concurrently with each other and with the original.
func (r *Resilience) Clone() *Resilience {
	lanes := make([]*CDCM, len(r.lanes))
	for i, l := range r.lanes {
		lanes[i] = l.Clone()
	}
	return &Resilience{
		faults:  r.faults,
		intact:  r.intact.Clone(),
		lanes:   lanes,
		elems:   r.elems,
		weights: r.weights,
		comps:   make([]float64, len(resilienceAxes)),
	}
}

// Intact exposes the intact CDCM evaluator (route tables without faults);
// Explore prices the winning mapping on it.
func (r *Resilience) Intact() *CDCM { return r.intact }

// Faults returns the fault set the evaluator scores against.
func (r *Resilience) Faults() *topology.FaultSet { return r.faults }

// Axes implements search.VectorObjective.
func (r *Resilience) Axes() []string { return resilienceAxes }

// CollapseWeights implements search.VectorObjective: weight 1 on intact
// ENoC, static-power-per-cycle on the worst-fault latency axis (see the
// type comment for why that makes the collapse a physical energy).
func (r *Resilience) CollapseWeights() []float64 { return r.weights }

// ComponentsInto implements search.VectorObjective: one intact simulation
// plus one per fault scenario, folded into (intact ENoC, worst scenario
// texec). A scenario that partitions the mapping contributes
// UnreachablePenaltyFactor × intact texec instead of a simulated time.
func (r *Resilience) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if len(dst) < len(resilienceAxes) {
		return fmt.Errorf("core: component buffer holds %d axes, resilience has %d", len(dst), len(resilienceAxes))
	}
	m0, err := r.intact.Evaluate(mp)
	if err != nil {
		return err
	}
	worst := m0.ExecCycles
	for _, lane := range r.lanes {
		m, err := lane.Evaluate(mp)
		if err != nil {
			if errors.Is(err, topology.ErrUnreachable) {
				if c := UnreachablePenaltyFactor * m0.ExecCycles; c > worst {
					worst = c
				}
				continue
			}
			return err
		}
		if m.ExecCycles > worst {
			worst = m.ExecCycles
		}
	}
	dst[0] = m0.Total()
	dst[1] = float64(worst)
	return nil
}

// Cost implements search.Objective as the weighted collapse of the
// component vector (identical code path, so the bit-identity between the
// scalar and vector views holds by construction).
func (r *Resilience) Cost(mp mapping.Mapping) (float64, error) {
	if err := r.ComponentsInto(mp, r.comps); err != nil {
		return 0, err
	}
	return search.Collapse(r.weights, r.comps), nil
}

// FaultImpact is the degradation one single-fault scenario inflicts on a
// mapping.
type FaultImpact struct {
	// Element names the failed element ("link 1-2", "router 5", "tsv 3-19").
	Element string
	// Unreachable reports that the fault partitions a communicating pair
	// of the mapping; ExecCycles then holds the documented penalty
	// (UnreachablePenaltyFactor × intact texec) and the energy is priced
	// as intact dynamic energy plus static energy over the penalty time.
	Unreachable bool
	// ExecCycles is the scenario's texec (or the penalty, see above).
	ExecCycles int64
	// TotalJ is the scenario's ENoC.
	TotalJ float64
	// DeltaCycles and DeltaJ are the degradations vs. the intact baseline
	// (never negative: a fault cannot be credited for beating the intact
	// run).
	DeltaCycles int64
	DeltaJ      float64
}

// ResilienceScore is the full degradation report of one mapping over a
// fault set — the per-fault breakdown the service and `nocexp -exp
// resilience` emit, modelled on chaos-duck's experiment ResilienceScore
// (overall 0-100 score plus per-scenario findings and recommendations).
type ResilienceScore struct {
	// FaultKey is the canonical fault-set string (topology.FaultSet.Key).
	FaultKey string
	// BaseExecCycles / BaseTotalJ price the intact mapping.
	BaseExecCycles int64
	BaseTotalJ     float64
	// Impacts holds one entry per fault element, in the fault set's
	// canonical enumeration order.
	Impacts []FaultImpact
	// WorstExecCycles is the worst scenario texec (the latency axis of the
	// resilience objective) and WorstElement the element inflicting it.
	WorstExecCycles int64
	WorstElement    string
	// MeanExecCycles / MeanDeltaJ average the scenario degradations.
	MeanExecCycles float64
	MeanDeltaJ     float64
	// WorstDeltaJ is the largest energy degradation.
	WorstDeltaJ float64
	// Unreachable counts scenarios that partition the mapping.
	Unreachable int
	// Score grades the mapping 0..100: 100 × intact texec / worst texec.
	// 100 means no fault slows the application; unreachable scenarios pull
	// the score down through the penalty time.
	Score float64
	// Recommendations are deterministic rule-based notes on the breakdown.
	Recommendations []string
}

// Score prices mp on the intact NoC and under every single-fault scenario
// and returns the full degradation report. Unlike Cost it allocates the
// report; it is meant for winners, not search loops.
func (r *Resilience) Score(mp mapping.Mapping) (*ResilienceScore, error) {
	m0, err := r.intact.Evaluate(mp)
	if err != nil {
		return nil, err
	}
	tech := r.intact.Tech
	cfg := r.intact.sim.Cfg
	n := r.intact.sim.Mesh.NumTiles()
	sc := &ResilienceScore{
		FaultKey:       r.faults.Key(),
		BaseExecCycles: m0.ExecCycles,
		BaseTotalJ:     m0.Total(),
		Impacts:        make([]FaultImpact, len(r.lanes)),
	}
	sc.WorstExecCycles = m0.ExecCycles
	var sumCy, sumDJ float64
	for i, lane := range r.lanes {
		imp := FaultImpact{Element: r.elems[i].String()}
		m, err := lane.Evaluate(mp)
		switch {
		case errors.Is(err, topology.ErrUnreachable):
			imp.Unreachable = true
			imp.ExecCycles = UnreachablePenaltyFactor * m0.ExecCycles
			imp.TotalJ = m0.Energy.Dynamic + tech.StaticEnergy(n, cfg.CyclesToSeconds(imp.ExecCycles))
			sc.Unreachable++
		case err != nil:
			return nil, fmt.Errorf("core: fault scenario %s: %w", r.elems[i], err)
		default:
			imp.ExecCycles = m.ExecCycles
			imp.TotalJ = m.Total()
		}
		if d := imp.ExecCycles - m0.ExecCycles; d > 0 {
			imp.DeltaCycles = d
		}
		if d := imp.TotalJ - sc.BaseTotalJ; d > 0 {
			imp.DeltaJ = d
		}
		if imp.ExecCycles > sc.WorstExecCycles {
			sc.WorstExecCycles = imp.ExecCycles
			sc.WorstElement = imp.Element
		}
		if imp.DeltaJ > sc.WorstDeltaJ {
			sc.WorstDeltaJ = imp.DeltaJ
		}
		sumCy += float64(imp.ExecCycles)
		sumDJ += imp.DeltaJ
		sc.Impacts[i] = imp
	}
	if len(r.lanes) > 0 {
		sc.MeanExecCycles = sumCy / float64(len(r.lanes))
		sc.MeanDeltaJ = sumDJ / float64(len(r.lanes))
	}
	sc.Score = 100
	if sc.WorstExecCycles > 0 {
		sc.Score = 100 * float64(m0.ExecCycles) / float64(sc.WorstExecCycles)
	}
	sc.Recommendations = recommend(sc)
	return sc, nil
}

// recommend derives deterministic rule-based notes from a score report.
func recommend(sc *ResilienceScore) []string {
	var out []string
	if sc.Unreachable > 0 {
		out = append(out, fmt.Sprintf(
			"%d fault scenario(s) partition the mapping; re-place the affected cores or use the resilience strategy",
			sc.Unreachable))
	}
	if sc.WorstElement != "" && sc.BaseExecCycles > 0 {
		degr := float64(sc.WorstExecCycles-sc.BaseExecCycles) / float64(sc.BaseExecCycles)
		if degr >= 0.25 {
			out = append(out, fmt.Sprintf(
				"single point of stress: %s degrades texec by %.0f%%; spread the traffic crossing it",
				sc.WorstElement, 100*degr))
		}
	}
	if len(out) == 0 {
		out = append(out, "mapping degrades gracefully under every injected fault")
	}
	return out
}
