package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/appgen"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/topology"
)

// TestCDCMCloneConcurrentBitIdentical races clone lanes of one shared
// CDCM evaluator — the exact configuration the parallel search engines
// run — and requires every concurrently computed cost to equal the
// serial evaluator's bit for bit. Run with -race in CI.
func TestCDCMCloneConcurrentBitIdentical(t *testing.T) {
	mesh, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name: "clone-race", Cores: 8, Packets: 48, TotalBits: 30000, Seed: 9, Chains: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewCDCM(mesh, noc.Default(), energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	if base.Clone().Simulator() != base.Simulator() {
		t.Fatal("clone does not share the simulator core")
	}

	rng := rand.New(rand.NewSource(3))
	const nMaps = 64
	mps := make([]mapping.Mapping, nMaps)
	want := make([]float64, nMaps)
	for i := range mps {
		if mps[i], err = mapping.Random(rng, 8, 16); err != nil {
			t.Fatal(err)
		}
		if want[i], err = base.Cost(mps[i]); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	got := make([]float64, nMaps)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := base.Clone()
			for i := w; i < nMaps; i += workers {
				c, err := lane.Cost(mps[i])
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = c
				if i%8 == w%8 {
					// Simulate is part of the clone concurrency contract
					// too (it runs on the lane's own scratch).
					if _, m, err := lane.Simulate(mps[i]); err != nil || m.Total() != c {
						t.Errorf("mapping %d: concurrent Simulate = %v, %v (cost %g)", i, m.Total(), err, c)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mapping %d: clone cost %g != serial %g", i, got[i], want[i])
		}
	}
}

// TestCDCMCostMatchesSimulate pins the two evaluation paths of one CDCM
// against each other: the scratch-backed Cost/Evaluate hot path and the
// independent-Result Simulate path must price every mapping identically.
func TestCDCMCostMatchesSimulate(t *testing.T) {
	mesh, err := topology.NewMesh3D(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.Default()
	cfg.Routing = topology.RouteXYZ
	cfg.TSVLinkCycles = 2
	g, err := appgen.Generate(appgen.Params{
		Name: "scratch-vs-run", Cores: 6, Packets: 40, TotalBits: 20000, Seed: 4, Chains: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cdcm, err := NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 16; trial++ {
		mp, err := mapping.Random(rng, 6, 8)
		if err != nil {
			t.Fatal(err)
		}
		viaScratch, err := cdcm.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		_, viaRun, err := cdcm.Simulate(mp)
		if err != nil {
			t.Fatal(err)
		}
		if viaScratch != viaRun {
			t.Fatalf("trial %d: scratch metrics %+v != run metrics %+v", trial, viaScratch, viaRun)
		}
	}
}

// TestExploreCDCM3DDeterministicAcrossWorkers extends the CDCM
// workers-determinism pin to a stacked instance: multi-restart SA over
// the scratch-lane objective on a 2x2x2 mesh with XYZ routing and TSV
// latency, bit-identical for workers 1..N (runs under -race in CI).
func TestExploreCDCM3DDeterministicAcrossWorkers(t *testing.T) {
	mesh, err := topology.NewMesh3D(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.Default()
	cfg.Routing = topology.RouteXYZ
	cfg.TSVLinkCycles = 2
	g, err := appgen.Generate(appgen.Params{
		Name: "scratch-3d", Cores: 6, Packets: 36, TotalBits: 18000, Seed: 6, Chains: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref *ExploreResult
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Explore(StrategyCDCM, mesh, cfg, energy.Tech007, g, Options{
			Method: MethodSA, Seed: 11, TempSteps: 8, Restarts: 4, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !exploreEqual(ref, res) {
			t.Fatalf("workers=%d diverged: best %g vs %g",
				workers, res.Search.BestCost, ref.Search.BestCost)
		}
	}
}
