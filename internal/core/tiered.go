package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file implements the two cheap tiers of search.TieredObjective for
// CDCM, whose exact pricing is a full wormhole simulation per candidate:
//
//   - cdcmBound (tier A) is a certified lower bound on ENoC. The dynamic
//     term is exact — it folds the same integer traffic aggregates the
//     simulator produces (pinned by the CWM/CDCM dynamic-agreement tests)
//     — and the static term replaces the simulated texec with the
//     dependence graph's uncontended critical path, which can only
//     undershoot it: the wormhole network can delay a packet but never
//     accelerate it below its contention-free duration. Every float on
//     the way from the critical-path cycle count to the bound goes
//     through the same monotone pipeline the exact pricer uses
//     (CyclesToSeconds, StaticEnergy, one final addition), so
//     bound ≤ exact holds on the computed float64s, which is what lets
//     HillClimber/Tabu skip bound-rejected swaps with a bit-identical
//     trajectory.
//   - cdcmSurrogate (tier B) is a calibrated analytic predictor of ENoC:
//     texec is approximated as an affine function of the uncontended
//     hop-latency aggregate L (CWM's latency axis), least-squares fitted
//     per instance against a deterministic sample of exact simulations at
//     build time (fitSurrogate). It prices swaps incrementally over the
//     CWM integer aggregates — roughly the cost of a CWM delta probe —
//     and carries no certification: the Metropolis engines that walk on
//     it re-price everything that can reach a reported result exactly.

// texecLB is the immutable skeleton of the critical-path computation:
// the dependence DAG in topological order with CSR successor lists, the
// per-packet constants, and the per-hop cycle coefficients. One skeleton
// is shared read-only by every worker lane's cdcmBound.
type texecLB struct {
	order     []int32 // topological order of packet vertices
	succStart []int32 // CSR offsets into succ (len = packets+1)
	succ      []int32
	pSrc      []int32 // per-packet source core
	pDst      []int32 // per-packet destination core
	pFlits    []int64 // per-packet flit count
	pCompute  []int64 // per-packet computation cycles (t_aq)
	trl       int64   // tr + tl, per router traversed
	vadj      int64   // tTSV − tl, per vertical hop
	tl        int64   // tl, per payload flit
}

// newTexecLB builds the skeleton from the application's dependence graph.
func newTexecLB(cfg noc.Config, g *model.CDCG) (*texecLB, error) {
	dg, err := g.DepGraph()
	if err != nil {
		return nil, err
	}
	order, err := dg.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.NumPackets()
	lb := &texecLB{
		order:     make([]int32, n),
		succStart: make([]int32, n+1),
		pSrc:      make([]int32, n),
		pDst:      make([]int32, n),
		pFlits:    make([]int64, n),
		pCompute:  make([]int64, n),
		trl:       cfg.RoutingCycles + cfg.LinkCycles,
		vadj:      cfg.TSVCycles() - cfg.LinkCycles,
		tl:        cfg.LinkCycles,
	}
	for i, v := range order {
		lb.order[i] = int32(v)
	}
	for v := 0; v < n; v++ {
		lb.succStart[v+1] = lb.succStart[v] + int32(len(dg.Succ(v)))
	}
	lb.succ = make([]int32, lb.succStart[n])
	for v := 0; v < n; v++ {
		at := int(lb.succStart[v])
		for j, s := range dg.Succ(v) {
			lb.succ[at+j] = int32(s)
		}
	}
	for v, p := range g.Packets {
		lb.pSrc[v] = int32(p.Src)
		lb.pDst[v] = int32(p.Dst)
		lb.pFlits[v] = cfg.Flits(p.Bits)
		lb.pCompute[v] = p.Compute
	}
	return lb, nil
}

// cdcmBound implements search.LowerBoundObjective for CDCM. It owns a
// private CWM (never the walk's delta evaluator — CDCM runs have none)
// whose integer aggregates supply the exact dynamic term and whose
// route caches supply the per-packet hop counts; dist is the lane's
// critical-path scratch. Stateful between ResetBound and the last
// CommitBound, one instance per worker lane.
type cdcmBound struct {
	cwm  *CWM
	lb   *texecLB
	dist []int64
}

var _ search.LowerBoundObjective = (*cdcmBound)(nil)

// newCDCMBound builds one lane's bound evaluator over a shared skeleton.
func newCDCMBound(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, lb *texecLB) (*cdcmBound, error) {
	cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
	if err != nil {
		return nil, err
	}
	return &cdcmBound{cwm: cwm, lb: lb, dist: make([]int64, g.NumPackets())}, nil
}

// ResetBound implements search.LowerBoundObjective: it binds mp as the
// incremental baseline (validating it, via CWM.Reset) and returns its
// bound.
func (b *cdcmBound) ResetBound(mp mapping.Mapping) (float64, error) {
	dyn, err := b.cwm.Reset(mp)
	if err != nil {
		return 0, err
	}
	lp, err := b.lpCycles(-1, -1)
	if err != nil {
		return 0, err
	}
	c := b.cwm
	return dyn + c.Tech.StaticEnergy(c.numTiles, c.Cfg.CyclesToSeconds(lp)), nil
}

// SwapBound implements search.LowerBoundObjective: the certified bound of
// the mapping obtained by exchanging the occupants of ta and tb, priced
// without applying the swap. It returns the absolute bound recomputed
// from the swapped state's aggregates — never tracked-value-plus-delta —
// so the float64 certificate bound ≤ exact survives rounding (see
// search.LowerBoundObjective).
//nocvet:noalloc
func (b *cdcmBound) SwapBound(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	c := b.cwm
	if c.bound == nil {
		return 0, errors.New("core: SwapBound before ResetBound")
	}
	dR, dV, err := c.swapAgg(occ, ta, tb)
	if err != nil {
		return 0, err
	}
	rb, vb := c.routerBits+dR, c.tsvBits+dV
	dyn := c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits)
	lp, err := b.lpCycles(ta, tb)
	if err != nil {
		return 0, err
	}
	return dyn + c.Tech.StaticEnergy(c.numTiles, c.Cfg.CyclesToSeconds(lp)), nil
}

// CommitBound implements search.LowerBoundObjective: folds an accepted
// swap into the baseline.
func (b *cdcmBound) CommitBound(ta, tb topology.TileID) { b.cwm.Commit(ta, tb) }

// lpCycles returns the uncontended critical path of the dependence DAG in
// cycles under the baseline mapping with the occupants of ta and tb
// exchanged (pass ta = tb = -1 for the unpatched baseline). Packet v
// contributes its computation time plus its contention-free network
// duration K·(tr+tl) + V·(tTSV−tl) + n·tl — exactly the duration the
// wormhole simulator charges an unobstructed packet, which contention
// (and fault detours, whose routes are hop-wise at least as long) can
// only increase. The patch trick prices a swap without touching the
// baseline, keeping the scan allocation-free.
//nocvet:noalloc
func (b *cdcmBound) lpCycles(ta, tb topology.TileID) (int64, error) {
	lb := b.lb
	c := b.cwm
	bound := c.bound
	dist := b.dist
	clear(dist)
	var best int64
	for _, vi := range lb.order {
		v := int(vi)
		st := bound[lb.pSrc[v]]
		dt := bound[lb.pDst[v]]
		if st == ta {
			st = tb
		} else if st == tb {
			st = ta
		}
		if dt == ta {
			dt = tb
		} else if dt == tb {
			dt = ta
		}
		k, err := c.routers(st, dt)
		if err != nil {
			return 0, err
		}
		w := lb.pCompute[v] + int64(k)*lb.trl + lb.pFlits[v]*lb.tl
		if !c.flat {
			// routers filled the pair's cache line, so the vertical hop
			// count is valid here (same guarantee Cost relies on).
			w += int64(c.vCache[int(st)*c.numTiles+int(dt)]) * lb.vadj
		}
		d := dist[v] + w
		if d > best {
			best = d
		}
		for _, s := range lb.succ[lb.succStart[v]:lb.succStart[v+1]] {
			if d > dist[s] {
				dist[s] = d
			}
		}
	}
	return best, nil
}

// surrogateFit is the calibrated texec predictor: texec̃ = A + B·L cycles,
// where L is the uncontended hop-latency aggregate (CWM's latency axis).
// Immutable once fitted; shared by every worker lane's cdcmSurrogate so
// the prediction — and therefore the whole tier-B walk — is independent
// of the worker count.
type surrogateFit struct {
	A, B float64
}

// DefaultSurrogateSamples is the tier-B calibration budget when
// Options.SurrogateSamples is zero: enough exact simulations to pin an
// affine fit on the paper's instances, few enough that calibration stays
// a small fraction of the exact evaluations the surrogate then saves.
const DefaultSurrogateSamples = 24

// fitSurrogate calibrates the predictor for one instance: it prices
// `samples` seeded random mappings exactly (on a private clone lane of
// the exact evaluator) and least-squares fits simulated texec against the
// uncontended hop aggregate L. The sample set is keyed by seed alone, so
// a fixed (instance, seed, samples) triple always yields the same fit.
// Degenerate sample sets (constant L) and inverted fits (B < 0, possible
// on contention-dominated instances where L explains nothing) fall back
// to the constant predictor at the mean — the surrogate then ranks by
// dynamic energy alone, which is still a useful walk signal.
func fitSurrogate(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, exact *CDCM, seed int64, samples int) (surrogateFit, error) {
	if samples <= 0 {
		samples = DefaultSurrogateSamples
	}
	feat, err := NewCWM(mesh, cfg, tech, g.ToCWG())
	if err != nil {
		return surrogateFit{}, err
	}
	lane := exact.Clone()
	rng := rand.New(rand.NewSource(seed))
	comps := make([]float64, len(cwmAxes))
	var sx, sy, sxx, sxy float64
	for i := 0; i < samples; i++ {
		mp, err := mapping.Random(rng, g.NumCores(), mesh.NumTiles())
		if err != nil {
			return surrogateFit{}, err
		}
		if err := feat.ComponentsInto(mp, comps); err != nil {
			return surrogateFit{}, err
		}
		m, err := lane.Evaluate(mp)
		if err != nil {
			return surrogateFit{}, err
		}
		x, y := comps[1], float64(m.ExecCycles)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(samples)
	var fit surrogateFit
	den := n*sxx - sx*sx
	if den > 0 {
		fit.B = (n*sxy - sx*sy) / den
		fit.A = (sy - fit.B*sx) / n
	}
	if den <= 0 || fit.B < 0 {
		fit = surrogateFit{A: sy / n}
	}
	return fit, nil
}

// cdcmSurrogate implements search.DeltaObjective and
// search.VectorObjective as CDCM's tier-B approximation: ENoC with the
// simulated texec replaced by the fitted predictor. Pricing runs over a
// private CWM's integer aggregates, so a surrogate swap probe costs
// about as much as a CWM delta probe — the "as cheap as CWM" target.
// One instance per worker lane; the fit is shared and immutable.
type cdcmSurrogate struct {
	cwm *CWM
	fit surrogateFit
	// L coefficients, hoisted from Cfg once: cycles per router bit, per
	// planar link bit and per vertical link bit.
	ftr, ftl, ftv float64
}

var (
	_ search.DeltaObjective  = (*cdcmSurrogate)(nil)
	_ search.VectorObjective = (*cdcmSurrogate)(nil)
)

// newCDCMSurrogate builds one lane's surrogate evaluator around a fit.
func newCDCMSurrogate(mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, fit surrogateFit) (*cdcmSurrogate, error) {
	cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
	if err != nil {
		return nil, err
	}
	return &cdcmSurrogate{cwm: cwm, fit: fit,
		ftr: float64(cfg.RoutingCycles),
		ftl: float64(cfg.LinkCycles),
		ftv: float64(cfg.TSVCycles())}, nil
}

// texecCycles predicts texec (in cycles, clamped non-negative) from the
// traffic aggregates.
//nocvet:noalloc
func (s *cdcmSurrogate) texecCycles(rb, vb int64) float64 {
	c := s.cwm
	l := float64(rb)*s.ftr + float64(rb-c.totalBits-vb)*s.ftl + float64(vb)*s.ftv
	t := s.fit.A + s.fit.B*l
	if t < 0 {
		t = 0
	}
	return t
}

// priceAgg prices the surrogate objective from the traffic aggregates:
// exact dynamic energy plus the predicted static energy, accumulated in
// the same order the exact pricer and Breakdown.Total use so the scalar
// equals the collapsed vector bit for bit.
//nocvet:noalloc
func (s *cdcmSurrogate) priceAgg(rb, vb int64) float64 {
	c := s.cwm
	dyn := c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits)
	st := c.Tech.StaticPower(c.numTiles) * (s.texecCycles(rb, vb) * c.Cfg.ClockNS * 1e-9)
	return dyn + st
}

// aggregates folds mp's traffic aggregates, exactly like CWM.Cost (same
// hot-path contract: mp must be structurally valid and injective).
//nocvet:noalloc
func (s *cdcmSurrogate) aggregates(mp mapping.Mapping) (rb, vb int64, err error) {
	c := s.cwm
	if len(mp) != c.G.NumCores() {
		return 0, 0, fmt.Errorf("core: mapping covers %d cores, CWG has %d", len(mp), c.G.NumCores())
	}
	for _, e := range c.G.Edges {
		k, err := c.routers(mp[e.Src], mp[e.Dst])
		if err != nil {
			return 0, 0, err
		}
		rb += e.Bits * int64(k)
		if !c.flat {
			vb += e.Bits * int64(c.vCache[int(mp[e.Src])*c.numTiles+int(mp[e.Dst])])
		}
	}
	return rb, vb, nil
}

// Cost implements search.Objective: the surrogate ENoC of mp.
//nocvet:noalloc
func (s *cdcmSurrogate) Cost(mp mapping.Mapping) (float64, error) {
	rb, vb, err := s.aggregates(mp)
	if err != nil {
		return 0, err
	}
	return s.priceAgg(rb, vb), nil
}

// Reset implements search.DeltaObjective: binds mp as the incremental
// baseline (validating it) and returns its surrogate cost.
func (s *cdcmSurrogate) Reset(mp mapping.Mapping) (float64, error) {
	if _, err := s.cwm.Reset(mp); err != nil {
		return 0, err
	}
	return s.priceAgg(s.cwm.routerBits, s.cwm.tsvBits), nil
}

// SwapDelta implements search.DeltaObjective: the surrogate cost change
// of exchanging the occupants of ta and tb, priced in O(deg) without
// applying the swap.
//nocvet:noalloc
func (s *cdcmSurrogate) SwapDelta(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	c := s.cwm
	if c.bound == nil {
		return 0, errors.New("core: surrogate SwapDelta before Reset")
	}
	dR, dV, err := c.swapAgg(occ, ta, tb)
	if err != nil {
		return 0, err
	}
	if dR == 0 && dV == 0 {
		return 0, nil
	}
	rb, vb := c.routerBits, c.tsvBits
	return s.priceAgg(rb+dR, vb+dV) - s.priceAgg(rb, vb), nil
}

// Commit implements search.DeltaObjective: folds an accepted swap into
// the baseline and returns the updated baseline's surrogate cost.
//nocvet:noalloc
func (s *cdcmSurrogate) Commit(ta, tb topology.TileID) float64 {
	s.cwm.Commit(ta, tb)
	return s.priceAgg(s.cwm.routerBits, s.cwm.tsvBits)
}

// Axes implements search.VectorObjective: the surrogate prices the same
// three axes as CDCM (dynamic energy, static energy, texec), with the
// latter two predicted instead of simulated — which is what lets the
// Pareto engine walk on it in CDCM's place.
//nocvet:noalloc
func (s *cdcmSurrogate) Axes() []string { return cdcmAxes }

// CollapseWeights implements search.VectorObjective (same collapse as
// CDCM: ENoC = dynamic + static).
//nocvet:noalloc
func (s *cdcmSurrogate) CollapseWeights() []float64 { return cdcmWeights }

// ComponentsInto implements search.VectorObjective.
//nocvet:noalloc
func (s *cdcmSurrogate) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if len(dst) < len(cdcmAxes) {
		return fmt.Errorf("core: component buffer holds %d axes, surrogate has %d", len(dst), len(cdcmAxes))
	}
	rb, vb, err := s.aggregates(mp)
	if err != nil {
		return err
	}
	c := s.cwm
	t := s.texecCycles(rb, vb)
	dst[0] = c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits)
	dst[1] = c.Tech.StaticPower(c.numTiles) * (t * c.Cfg.ClockNS * 1e-9)
	dst[2] = t
	return nil
}
