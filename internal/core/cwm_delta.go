package core

import (
	"errors"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file implements search.DeltaObjective for CWM: incremental O(deg)
// pricing of tile swaps. EDyNoC (equation (3)) is a linear function of
// the integer traffic aggregate routerBits = Σ w·K (link-bits derive as
// routerBits − Σw), and a swap of tiles (ta, tb) only moves the cores
// occupying them, so only edges incident to those cores can change their
// K. The evaluator binds a baseline mapping with Reset, prices proposed
// swaps against it with SwapDelta using the per-core adjacency built in
// NewCWM, and folds accepted swaps into the baseline with Commit.
//
// Because the aggregate lives in exact integer arithmetic, the
// incremental path is not merely close to the full walk — it reproduces
// it bit-for-bit: SwapDelta derives the swapped cost from the updated
// integer through the same DynamicFromTraffic call Cost uses, so
// equal-energy mappings tie exactly on both paths and a delta-driven
// engine retraces the full-recompute engine move for move under a fixed
// seed. CDCM deliberately does not implement the interface: its objective
// includes contention-dependent execution time, a global property with no
// cheap swap delta, so the search engines keep the full simulator path.
//
// The hot loop prices the moved core's edges against one kCache row: the
// moving core's new tile is fixed across its whole edge list, and K is
// direction-symmetric for the minimal dimension-ordered routings
// (XY/YX/XYZ/ZYX) on mesh and torus in 2-D and 3-D alike (K = MinHops+1;
// TestRouteKSymmetric and the property tests in internal/topology pin the
// invariant), so K(newTile, otherTile) equals the K a full walk would
// route for the edge regardless of the edge's direction. The vertical
// (TSV) hop count V shares the symmetry — it is a pure Z distance — so
// the 3-D aggregate Σ w·V is maintained the same way.
//
// The bound state makes a CWM performing incremental evaluation stateful
// and not safe for concurrent use; parallel engines build one instance
// per worker lane via search.ObjectiveFactory (core.Explore already does).

// CWM opts into the engines' incremental fast path; CDCM must not.
var _ search.DeltaObjective = (*CWM)(nil)

// adjEdge is one incident edge in a core's adjacency: the other endpoint,
// the index into G.Edges / edgeK, and the bit volume. One flat struct per
// edge keeps the hot loop at a single bounds check and one cache line per
// couple of edges.
type adjEdge struct {
	nbr  int32 // other endpoint core
	edge int32 // index into G.Edges / edgeK
	bits int64
}

// coreAdj is one core's incident edge list.
type coreAdj struct {
	edges []adjEdge
}

// Reset implements search.DeltaObjective: it binds a copy of mp as the
// incremental baseline and returns its full EDyNoC. Reset is the
// validating entry point of the hot-path contract — it checks injectivity
// once, outside the hot loop, so Cost and SwapDelta never have to.
func (c *CWM) Reset(mp mapping.Mapping) (float64, error) {
	if len(mp) != c.G.NumCores() {
		return 0, errors.New("core: mapping does not cover the CWG")
	}
	if err := mp.Validate(c.numTiles); err != nil {
		return 0, err
	}
	if c.bound == nil {
		c.bound = mp.Clone()
		c.boundOcc = mp.Occupants(c.numTiles)
		c.edgeK = make([]int16, len(c.G.Edges))
		if !c.flat {
			c.edgeV = make([]int16, len(c.G.Edges))
		}
	} else {
		copy(c.bound, mp)
		for i := range c.boundOcc {
			c.boundOcc[i] = mapping.Unassigned
		}
		for core, t := range c.bound {
			c.boundOcc[t] = model.CoreID(core)
		}
	}
	c.routerBits = 0
	c.tsvBits = 0
	for i, e := range c.G.Edges {
		k, err := c.routers(mp[e.Src], mp[e.Dst])
		if err != nil {
			return 0, err
		}
		c.edgeK[i] = int16(k)
		c.routerBits += e.Bits * int64(k)
		if !c.flat {
			v := c.vCache[int(mp[e.Src])*c.numTiles+int(mp[e.Dst])]
			c.edgeV[i] = v
			c.tsvBits += e.Bits * int64(v)
		}
	}
	return c.Tech.DynamicFromTraffic3D(c.routerBits, c.routerBits-c.totalBits, c.tsvBits, c.coreBits), nil
}

// SwapDelta implements search.DeltaObjective: the EDyNoC change of
// exchanging the occupants of ta and tb, priced in O(deg(a)+deg(b))
// against the bound baseline without applying the swap. occ must be the
// occupancy view of the bound mapping (the search engines maintain it
// alongside their working copy). Old router counts come from the edgeK
// cache and new ones from a single kCache row per moved core, so pricing
// records nothing — an accepted swap is folded in by Commit, which
// re-probes the same warm rows. The returned delta is the difference of
// the swapped and baseline costs, each derived from the exact integer
// aggregate exactly as Cost derives them — which is what keeps the
// incremental path bit-identical to full recomputes.
//nocvet:noalloc
func (c *CWM) SwapDelta(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	if c.bound == nil {
		return 0, errors.New("core: SwapDelta before Reset")
	}
	if c.Evals != nil {
		c.Evals.Inc()
	}
	dR, dV, err := c.swapAgg(occ, ta, tb)
	if err != nil {
		return 0, err
	}
	if dR == 0 && dV == 0 {
		// Unchanged aggregates mean the full path would price the swapped
		// mapping at a bit-identical cost, so the delta is an exact zero.
		return 0, nil
	}
	rb, vb := c.routerBits, c.tsvBits
	return c.Tech.DynamicFromTraffic3D(rb+dR, rb+dR-c.totalBits, vb+dV, c.coreBits) -
		c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits), nil
}

// swapAgg prices the integer-aggregate change of exchanging the occupants
// of ta and tb against the bound baseline, in O(deg(a)+deg(b)) and
// without applying the swap: dR is the routerBits change, dV the tsvBits
// change. It is the shared kernel of SwapDelta and the tier-A certified
// bound (cdcmBound.SwapBound), which both need the swapped mapping's
// exact integer aggregates without mutating the baseline.
//nocvet:noalloc
func (c *CWM) swapAgg(occ []model.CoreID, ta, tb topology.TileID) (dR, dV int64, err error) {
	ca, cb := occ[ta], occ[tb]
	bound := c.bound
	edgeK := c.edgeK
	// Two passes: ca's incident edges, then cb's. Edges between ca and cb
	// are priced once — the second pass skips edges touching ca (skip ==
	// Unassigned matches no core, so the first pass skips nothing).
	for pass := 0; pass < 2; pass++ {
		x, skip, nt := ca, mapping.Unassigned, tb
		if pass == 1 {
			x, skip, nt = cb, ca, ta
		}
		if x == mapping.Unassigned {
			continue
		}
		skipI := int32(skip)
		row := c.kCache[int(nt)*c.numTiles : (int(nt)+1)*c.numTiles]
		// vrow stays nil on depth-1 grids: the vertical aggregate then
		// costs the 2-D hot loop nothing but one predictable branch.
		var vrow []int16
		if !c.flat {
			vrow = c.vCache[int(nt)*c.numTiles : (int(nt)+1)*c.numTiles]
		}
		for _, ae := range c.adj[x].edges {
			if ae.nbr == skipI {
				continue
			}
			ot := bound[ae.nbr]
			if ot == ta {
				ot = tb
			} else if ot == tb {
				ot = ta
			}
			k := row[ot]
			if k == 0 {
				//nocvet:ignore cache-miss fallback: every pair is computed once, then served from kCache; amortized alloc-free
				kk, err := c.routersSlow(nt, ot)
				if err != nil {
					return 0, 0, err
				}
				k = int16(kk)
			}
			// Unconditional multiply-add: a dk==0 guard would mispredict
			// on real swap mixes and cost more than the multiply.
			dR += ae.bits * (int64(k) - int64(edgeK[ae.edge]))
			if vrow != nil {
				// routersSlow fills both caches, so vrow[ot] is valid
				// whenever row[ot] is.
				dV += ae.bits * (int64(vrow[ot]) - int64(c.edgeV[ae.edge]))
			}
		}
	}
	return dR, dV, nil
}

// Commit implements search.DeltaObjective: it folds an accepted swap into
// the bound baseline, refreshing the stored router count of every edge
// incident to the moved cores, and returns the exact cost of the updated
// baseline (the same DynamicFromTraffic expression Cost evaluates, so the
// engines' tracked cost stays bit-identical to full recomputes).
// Re-probing the warm route-cache rows here keeps SwapDelta free of
// bookkeeping — pricing runs for every proposal, commits only for
// accepted ones.
//nocvet:noalloc
func (c *CWM) Commit(ta, tb topology.TileID) float64 {
	ca, cb := c.boundOcc[ta], c.boundOcc[tb]
	mapping.SwapTiles(c.bound, c.boundOcc, ta, tb)
	c.refreshEdges(ca, mapping.Unassigned)
	c.refreshEdges(cb, ca)
	return c.Tech.DynamicFromTraffic3D(c.routerBits, c.routerBits-c.totalBits, c.tsvBits, c.coreBits)
}

// refreshEdges re-probes the edges incident to core x under the updated
// baseline, skipping edges to skip (already refreshed by the partner's
// pass). Route lookups cannot fail here: the baseline is a validated
// mapping, so both endpoints are in-range tiles of a connected mesh.
//nocvet:noalloc
func (c *CWM) refreshEdges(x, skip model.CoreID) {
	if x == mapping.Unassigned {
		return
	}
	nt := c.bound[x]
	row := c.kCache[int(nt)*c.numTiles : (int(nt)+1)*c.numTiles]
	var vrow []int16
	if !c.flat {
		vrow = c.vCache[int(nt)*c.numTiles : (int(nt)+1)*c.numTiles]
	}
	bound := c.bound
	edgeK := c.edgeK
	skipI := int32(skip)
	for _, ae := range c.adj[x].edges {
		if ae.nbr == skipI {
			continue
		}
		// K is direction-symmetric (see the invariant note above), so the
		// probe need not honour the edge's direction.
		ot := bound[ae.nbr]
		k := row[ot]
		if k == 0 {
			//nocvet:ignore cache-miss fallback: every pair is computed once, then served from kCache; amortized alloc-free
			kk, err := c.routersSlow(nt, ot)
			if err != nil {
				panic("core: route failed for a validated bound mapping: " + err.Error())
			}
			k = int16(kk)
		}
		c.routerBits += ae.bits * (int64(k) - int64(edgeK[ae.edge]))
		edgeK[ae.edge] = k
		if vrow != nil {
			v := vrow[ot]
			c.tsvBits += ae.bits * (int64(v) - int64(c.edgeV[ae.edge]))
			c.edgeV[ae.edge] = v
		}
	}
}
