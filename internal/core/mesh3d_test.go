package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// TestMesh3DDepth1BitIdenticalThroughSA is the regression pin of the 3-D
// extension's central promise: NewMesh3D(w, h, 1) is not merely similar
// to NewMesh(w, h) — an end-to-end SA exploration (route caches, delta
// evaluation, wormhole pricing) retraces the 2-D run move for move, for
// both strategies.
func TestMesh3DDepth1BitIdenticalThroughSA(t *testing.T) {
	_, g := deltaInstance(t, 4, 3, 9)
	m2, err := topology.NewMesh(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := topology.NewMesh3D(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyCWM, StrategyCDCM} {
		opts := Options{Method: MethodSA, Seed: 17, TempSteps: 12, MovesPerTemp: 25}
		r2, err := Explore(strat, m2, noc.Default(), energy.Tech007, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := Explore(strat, m3, noc.Default(), energy.Tech007, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !mapping.Equal(r2.Best, r3.Best) {
			t.Fatalf("%s: depth-1 best %v != 2D best %v", strat, r3.Best, r2.Best)
		}
		if r2.Search.BestCost != r3.Search.BestCost || r2.Search.Evaluations != r3.Search.Evaluations {
			t.Fatalf("%s: depth-1 run (cost %g, evals %d) != 2D run (cost %g, evals %d)",
				strat, r3.Search.BestCost, r3.Search.Evaluations, r2.Search.BestCost, r2.Search.Evaluations)
		}
		if r2.Metrics != r3.Metrics {
			t.Fatalf("%s: depth-1 metrics %+v != 2D metrics %+v", strat, r3.Metrics, r2.Metrics)
		}
	}
}

// TestCWM3DDynamicAgreesWithSimulator pins equation consistency on 3-D
// grids: for a fixed mapping, the CWM fold of the traffic aggregates
// (router/link/TSV) must price dynamic energy bit-identically to the
// wormhole simulator's measured traffic — the same agreement the 2-D
// models have by construction.
func TestCWM3DDynamicAgreesWithSimulator(t *testing.T) {
	for _, torus := range []bool{false, true} {
		var mesh *topology.Mesh
		var err error
		if torus {
			mesh, err = topology.NewTorus3D(2, 2, 3)
		} else {
			mesh, err = topology.NewMesh3D(2, 2, 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		_, g := deltaInstance(t, 3, 3, 9) // 9 cores fit the 12 tiles
		cwm, err := NewCWM(mesh, noc.Default(), energy.Tech007, g.ToCWG())
		if err != nil {
			t.Fatal(err)
		}
		cdcm, err := NewCDCM(mesh, noc.Default(), energy.Tech007, g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 10; i++ {
			mp, err := mapping.Random(rng, g.NumCores(), mesh.NumTiles())
			if err != nil {
				t.Fatal(err)
			}
			cwmCost, err := cwm.Cost(mp)
			if err != nil {
				t.Fatal(err)
			}
			met, err := cdcm.Evaluate(mp)
			if err != nil {
				t.Fatal(err)
			}
			if cwmCost != met.Energy.Dynamic {
				t.Fatalf("torus=%v: CWM %g != simulator dynamic %g", torus, cwmCost, met.Energy.Dynamic)
			}
			if met.TSVBits == 0 {
				// Statistically impossible on 10 random 3-layer mappings of
				// a connected application unless TSV accounting is broken.
				t.Fatalf("torus=%v: mapping %v reports no TSV traffic", torus, mp)
			}
		}
	}
}

// TestMultiAnnealerDelta3DDeterministicAcrossWorkers extends the
// workers-determinism matrix to stacked instances: 2x2x2 and 4x4x2,
// multi-restart SA on the delta path, bit-identical for workers 1..N
// (this runs under -race in CI).
func TestMultiAnnealerDelta3DDeterministicAcrossWorkers(t *testing.T) {
	for _, dims := range [][4]int{{2, 2, 2, 6}, {4, 4, 2, 16}} {
		mesh, g := deltaInstance3D(t, dims[0], dims[1], dims[2], dims[3])
		cwg := g.ToCWG()
		run := func(workers int) *search.Result {
			t.Helper()
			res, err := (&search.MultiAnnealer{
				Base: search.Annealer{
					Problem:   search.Problem{Mesh: mesh, NumCores: g.NumCores()},
					Seed:      13,
					TempSteps: 10,
				},
				Restarts: 4,
				Workers:  workers,
				NewObjective: func() (search.Objective, error) {
					return NewCWM(mesh, noc.Default(), energy.Tech007, cwg)
				},
			}).Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1)
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			res := run(workers)
			if !mapping.Equal(ref.Best, res.Best) || ref.BestCost != res.BestCost ||
				ref.Evaluations != res.Evaluations || ref.Improvements != res.Improvements {
				t.Fatalf("%dx%dx%d workers=%d diverged from workers=1: %+v vs %+v",
					dims[0], dims[1], dims[2], workers, res, ref)
			}
		}
	}
}
