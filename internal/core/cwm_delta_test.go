package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/appgen"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// deltaInstance builds a seeded mesh + CWG pair sized for delta testing.
func deltaInstance(t testing.TB, w, h, cores int) (*topology.Mesh, *model.CDCG) {
	return deltaInstance3D(t, w, h, 1, cores)
}

// deltaInstance3D is deltaInstance over a stacked W×H×D mesh.
func deltaInstance3D(t testing.TB, w, h, d, cores int) (*topology.Mesh, *model.CDCG) {
	t.Helper()
	mesh, err := topology.NewMesh3D(w, h, d)
	if err != nil {
		t.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name:      "delta-test",
		Cores:     cores,
		Packets:   8 * cores,
		TotalBits: int64(5000 * cores),
		Seed:      99,
		Chains:    cores / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mesh, g
}

func newTestCWM(t testing.TB, mesh *topology.Mesh, g *model.CDCG) *CWM {
	t.Helper()
	cwm, err := NewCWM(mesh, noc.Default(), energy.Tech007, g.ToCWG())
	if err != nil {
		t.Fatal(err)
	}
	return cwm
}

func TestCWMResetMatchesCost(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 8)
	cwm := newTestCWM(t, mesh, g)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		mp, err := mapping.Random(rng, g.NumCores(), mesh.NumTiles())
		if err != nil {
			t.Fatal(err)
		}
		want, err := cwm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cwm.Reset(mp)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Reset = %g, Cost = %g (must be bit-identical)", got, want)
		}
	}
}

func TestCWMResetValidatesInjectivity(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 8)
	cwm := newTestCWM(t, mesh, g)
	dup := mapping.Identity(g.NumCores())
	dup[1] = dup[0] // two cores on one tile
	if _, err := cwm.Reset(dup); err == nil {
		t.Fatal("Reset accepted a non-injective mapping")
	}
	short := mapping.Identity(g.NumCores() - 1)
	if _, err := cwm.Reset(short); err == nil {
		t.Fatal("Reset accepted a short mapping")
	}
	out := mapping.Identity(g.NumCores())
	out[0] = topology.TileID(mesh.NumTiles())
	if _, err := cwm.Reset(out); err == nil {
		t.Fatal("Reset accepted an out-of-range tile")
	}
}

func TestCWMSwapDeltaBeforeResetErrors(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 8)
	cwm := newTestCWM(t, mesh, g)
	occ := mapping.Identity(g.NumCores()).Occupants(mesh.NumTiles())
	if _, err := cwm.SwapDelta(occ, 0, 1); err == nil {
		t.Fatal("SwapDelta before Reset must error")
	}
}

// TestCWMSwapDeltaMatchesFullRecompute proposes random swaps (occupied and
// empty tiles alike) and checks the O(deg) delta against the difference of
// two full evaluations, committing roughly half the moves so the bound
// baseline keeps moving.
func TestCWMSwapDeltaMatchesFullRecompute(t *testing.T) {
	// Planar and stacked instances alike: the 3-D rows exercise the
	// vertical (TSV) traffic aggregate of the delta path.
	for _, dims := range [][4]int{{4, 4, 1, 8}, {8, 8, 1, 16}, {2, 2, 2, 6}, {4, 4, 2, 20}} {
		mesh, g := deltaInstance3D(t, dims[0], dims[1], dims[2], dims[3])
		cwm := newTestCWM(t, mesh, g)
		rng := rand.New(rand.NewSource(7))
		mp, err := mapping.Random(rng, g.NumCores(), mesh.NumTiles())
		if err != nil {
			t.Fatal(err)
		}
		occ := mp.Occupants(mesh.NumTiles())
		cost, err := cwm.Reset(mp)
		if err != nil {
			t.Fatal(err)
		}
		tracked := cost
		for i := 0; i < 400; i++ {
			ta := topology.TileID(rng.Intn(mesh.NumTiles()))
			tb := topology.TileID(rng.Intn(mesh.NumTiles()))
			if ta == tb {
				continue
			}
			d, err := cwm.SwapDelta(occ, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			before, err := cwm.Cost(mp)
			if err != nil {
				t.Fatal(err)
			}
			swapped := mp.Clone()
			mapping.SwapTiles(swapped, swapped.Occupants(mesh.NumTiles()), ta, tb)
			after, err := cwm.Cost(swapped)
			if err != nil {
				t.Fatal(err)
			}
			want := after - before
			if diff := math.Abs(d - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("swap (%d,%d): delta %g, full recompute difference %g", ta, tb, d, want)
			}
			if rng.Intn(2) == 0 {
				mapping.SwapTiles(mp, occ, ta, tb)
				cwm.Commit(ta, tb)
				tracked += d
			}
		}
		// Accumulated deltas must stay within floating-point noise of a
		// full recompute — the drift the engines' final re-price guards.
		full, err := cwm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(tracked - full); diff > 1e-9*(1+math.Abs(full)) {
			t.Fatalf("delta-tracked cost %g drifted from full recompute %g by %g", tracked, full, diff)
		}
	}
}

// TestEnginesDeltaVsFullEquivalence is the seeded equivalence matrix of
// the issue: for SA, hill climbing and tabu search on planar (4x4, 8x8)
// and stacked (2x2x2, 4x4x2) meshes, the CWM delta path must return the
// same Best mapping, the same BestCost and the same Evaluations count as
// the full-recompute path (obtained by hiding the DeltaObjective
// interface behind an ObjectiveFunc).
func TestEnginesDeltaVsFullEquivalence(t *testing.T) {
	for _, dims := range [][4]int{{4, 4, 1, 8}, {8, 8, 1, 16}, {2, 2, 2, 6}, {4, 4, 2, 16}} {
		mesh, g := deltaInstance3D(t, dims[0], dims[1], dims[2], dims[3])
		for _, seed := range []int64{1, 2, 3} {
			for _, tc := range []struct {
				name string
				run  func(p search.Problem) (*search.Result, error)
			}{
				{"sa", func(p search.Problem) (*search.Result, error) {
					return (&search.Annealer{Problem: p, Seed: seed, TempSteps: 15, Reheats: 1}).Run()
				}},
				{"hill", func(p search.Problem) (*search.Result, error) {
					return (&search.HillClimber{Problem: p, Seed: seed, Restarts: 1}).Run()
				}},
				{"tabu", func(p search.Problem) (*search.Result, error) {
					return (&search.Tabu{Problem: p, Seed: seed, Iterations: 10}).Run()
				}},
			} {
				name, run := tc.name, tc.run
				cwm := newTestCWM(t, mesh, g)
				full, err := run(search.Problem{Mesh: mesh, NumCores: g.NumCores(),
					Obj: search.ObjectiveFunc(cwm.Cost)})
				if err != nil {
					t.Fatalf("%s full: %v", name, err)
				}
				delta, err := run(search.Problem{Mesh: mesh, NumCores: g.NumCores(), Obj: cwm})
				if err != nil {
					t.Fatalf("%s delta: %v", name, err)
				}
				if !mapping.Equal(full.Best, delta.Best) {
					t.Fatalf("%s %dx%d seed %d: delta best %v != full best %v",
						name, dims[0], dims[1], seed, delta.Best, full.Best)
				}
				if full.BestCost != delta.BestCost {
					t.Fatalf("%s %dx%d seed %d: delta cost %g != full cost %g",
						name, dims[0], dims[1], seed, delta.BestCost, full.BestCost)
				}
				if full.Evaluations != delta.Evaluations {
					t.Fatalf("%s %dx%d seed %d: delta evaluations %d != full %d",
						name, dims[0], dims[1], seed, delta.Evaluations, full.Evaluations)
				}
			}
		}
	}
}

// TestMultiAnnealerDeltaDeterministicAcrossWorkers checks the delta fast
// path composes with the parallel runner: restarts bind per-worker CWM
// instances, and the merged result is bit-identical for every worker
// count (this runs under -race in CI).
func TestMultiAnnealerDeltaDeterministicAcrossWorkers(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 8)
	cwg := g.ToCWG()
	run := func(workers int) *search.Result {
		t.Helper()
		res, err := (&search.MultiAnnealer{
			Base: search.Annealer{
				Problem:   search.Problem{Mesh: mesh, NumCores: g.NumCores()},
				Seed:      11,
				TempSteps: 10,
			},
			Restarts: 4,
			Workers:  workers,
			NewObjective: func() (search.Objective, error) {
				return NewCWM(mesh, noc.Default(), energy.Tech007, cwg)
			},
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		res := run(workers)
		if !mapping.Equal(ref.Best, res.Best) || ref.BestCost != res.BestCost ||
			ref.Evaluations != res.Evaluations || ref.Improvements != res.Improvements {
			t.Fatalf("workers=%d diverged from workers=1: %+v vs %+v", workers, res, ref)
		}
	}
}

// TestDeltaRunDeterministicUnderSeed re-runs the delta path on one CWM
// instance: the second run must rebind cleanly and reproduce the first.
func TestDeltaRunDeterministicUnderSeed(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 8)
	cwm := newTestCWM(t, mesh, g)
	p := search.Problem{Mesh: mesh, NumCores: g.NumCores(), Obj: cwm}
	a := &search.Annealer{Problem: p, Seed: 21, TempSteps: 12}
	r1, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !mapping.Equal(r1.Best, r2.Best) || r1.BestCost != r2.BestCost || r1.Evaluations != r2.Evaluations {
		t.Fatalf("same seed diverged on the delta path: %+v vs %+v", r1, r2)
	}
}
