package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// Strategy selects the application model driving the exploration.
type Strategy int

// Strategies.
const (
	StrategyCWM Strategy = iota
	StrategyCDCM
)

func (s Strategy) String() string {
	if s == StrategyCDCM {
		return "CDCM"
	}
	return "CWM"
}

// Method selects the search engine.
type Method int

// Methods. MethodSA is the paper's default; MethodES certifies optimality
// on small NoCs.
const (
	MethodSA Method = iota
	MethodES
	MethodRandom
	MethodHill
	MethodTabu
)

func (m Method) String() string {
	switch m {
	case MethodSA:
		return "SA"
	case MethodES:
		return "ES"
	case MethodRandom:
		return "random"
	case MethodHill:
		return "hill"
	case MethodTabu:
		return "tabu"
	}
	return "?"
}

// ParseMethod converts a CLI string into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "sa", "SA":
		return MethodSA, nil
	case "es", "ES", "exhaustive":
		return MethodES, nil
	case "random", "rand":
		return MethodRandom, nil
	case "hill", "hc":
		return MethodHill, nil
	case "tabu":
		return MethodTabu, nil
	}
	return 0, fmt.Errorf("core: unknown search method %q", s)
}

// Options tunes one exploration run.
type Options struct {
	// Method selects the engine (default MethodSA).
	Method Method
	// Seed drives every stochastic engine deterministically.
	Seed int64
	// TempSteps / MovesPerTemp / Alpha / StallSteps / Reheats tune the
	// annealer (0 = engine defaults).
	TempSteps    int
	MovesPerTemp int
	Alpha        float64
	StallSteps   int
	Reheats      int
	// ESLimit bounds exhaustive enumeration (0 = none).
	ESLimit int64
	// ESAnchor applies symmetry anchoring in exhaustive search.
	ESAnchor bool
	// Samples sets the random-search budget (0 = default).
	Samples int
	// Initial, when non-nil, seeds the annealer with this mapping
	// instead of a random one (ignored by the other methods).
	Initial mapping.Mapping
}

// ExploreResult is the outcome of one exploration.
type ExploreResult struct {
	// Strategy that produced the result.
	Strategy Strategy
	// Search holds engine statistics (evaluations, improvements, ...).
	Search *search.Result
	// Best is the winning mapping.
	Best mapping.Mapping
	// Metrics prices Best with the CDCM simulator under the exploration
	// tech — even for CWM-driven runs, because pricing time and static
	// energy requires the dependence model (the paper's point).
	Metrics Metrics
}

// Explore searches the mapping space of application g on the given NoC
// under the chosen strategy and prices the winner with the CDCM simulator.
func Explore(strategy Strategy, mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, opts Options) (*ExploreResult, error) {

	var obj search.Objective
	switch strategy {
	case StrategyCWM:
		cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
		if err != nil {
			return nil, err
		}
		obj = cwm
	case StrategyCDCM:
		cdcm, err := NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			return nil, err
		}
		obj = cdcm
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", strategy)
	}

	prob := search.Problem{Mesh: mesh, NumCores: g.NumCores(), Obj: obj}
	var (
		res *search.Result
		err error
	)
	switch opts.Method {
	case MethodSA:
		res, err = (&search.Annealer{
			Problem:      prob,
			Seed:         opts.Seed,
			Initial:      opts.Initial,
			TempSteps:    opts.TempSteps,
			MovesPerTemp: opts.MovesPerTemp,
			Alpha:        opts.Alpha,
			StallSteps:   opts.StallSteps,
			Reheats:      opts.Reheats,
		}).Run()
	case MethodES:
		res, err = (&search.Exhaustive{Problem: prob, Limit: opts.ESLimit, Anchor: opts.ESAnchor}).Run()
	case MethodRandom:
		res, err = (&search.RandomSearch{Problem: prob, Seed: opts.Seed, Samples: opts.Samples}).Run()
	case MethodHill:
		res, err = (&search.HillClimber{Problem: prob, Seed: opts.Seed}).Run()
	case MethodTabu:
		res, err = (&search.Tabu{Problem: prob, Seed: opts.Seed}).Run()
	default:
		err = fmt.Errorf("core: unknown method %d", opts.Method)
	}
	if err != nil {
		return nil, err
	}

	pricer, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		return nil, err
	}
	metrics, err := pricer.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	return &ExploreResult{Strategy: strategy, Search: res, Best: res.Best, Metrics: metrics}, nil
}

// CompareOptions tunes the Table-2 protocol.
type CompareOptions struct {
	// Options configures the (shared) search budget for both strategies.
	Options
	// OptimizeTech is the profile the CDCM objective minimises ENoC
	// under; the zero value defaults to Tech007 — the deep-submicron
	// point where timing matters most, and the regime the paper targets.
	OptimizeTech energy.Tech
	// ReportTechs are the profiles both winners are priced under (default
	// Tech035 and Tech007).
	ReportTechs []energy.Tech
}

// Comparison is the outcome of the CWM-vs-CDCM protocol on one workload.
type Comparison struct {
	// CWMMapping is the volume-only strategy's winner (tech independent:
	// equation (3) scales uniformly with the bit-energy constants).
	CWMMapping mapping.Mapping
	// CDCMMappings holds the CDCM winner per reporting tech (keyed by
	// Tech.Name): the CDCM objective depends on the technology through
	// the static/dynamic balance, so each technology is explored under
	// its own constants — "ECS values obtained from 0.35µ technology".
	CDCMMappings map[string]mapping.Mapping
	// CWMEvaluations/CDCMEvaluations count objective calls per strategy
	// (CDCM totals across techs and restarts).
	CWMEvaluations, CDCMEvaluations int64
	// CWMMetrics and CDCMMetrics price the winners per reporting tech.
	CWMMetrics, CDCMMetrics map[string]Metrics
	// ETR is the execution-time reduction (t_cwm − t_cdcm) / t_cwm,
	// measured on the OptimizeTech run (the deep-submicron point, where
	// the paper's argument lives).
	ETR float64
	// ECS is the energy-consumption saving per reporting tech:
	// (E_cwm − E_cdcm) / E_cwm, keyed by Tech.Name.
	ECS map[string]float64
}

// CompareModels runs the paper's comparison protocol on one workload.
//
// The shared search budget first explores the space under the CWM
// objective. Then, for every reporting technology, the CDCM objective
// (equation (10) under that technology's constants) is explored twice
// with the same budget — once from a random mapping like the paper, and
// once seeded with the CWM winner — keeping the better result. The
// restart only improves the optimisation of the CDCM objective; in
// particular it guarantees the reported ECS reflects what the dependence
// model can see, not annealing luck on large instances. Both winners are
// executed on the CDCM simulator and priced under the reporting
// technology. The CWM strategy cannot see time, so its winner's texec is
// whatever contention falls out of its volume-only placement — that gap
// is the paper's result.
func CompareModels(mesh *topology.Mesh, cfg noc.Config, g *model.CDCG, opts CompareOptions) (*Comparison, error) {
	optTech := opts.OptimizeTech
	if optTech == (energy.Tech{}) {
		optTech = energy.Tech007
	}
	report := opts.ReportTechs
	if len(report) == 0 {
		report = []energy.Tech{energy.Tech035, energy.Tech007}
	}
	hasOpt := false
	for _, t := range report {
		if t.Name == optTech.Name {
			hasOpt = true
		}
	}
	if !hasOpt {
		report = append(append([]energy.Tech{}, report...), optTech)
	}

	cwmRes, err := Explore(StrategyCWM, mesh, cfg, optTech, g, opts.Options)
	if err != nil {
		return nil, fmt.Errorf("core: CWM exploration: %w", err)
	}

	cmp := &Comparison{
		CWMMapping:     cwmRes.Best,
		CDCMMappings:   make(map[string]mapping.Mapping, len(report)),
		CWMEvaluations: cwmRes.Search.Evaluations,
		CWMMetrics:     make(map[string]Metrics, len(report)),
		CDCMMetrics:    make(map[string]Metrics, len(report)),
		ECS:            make(map[string]float64, len(report)),
	}
	for _, tech := range report {
		pricer, err := NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			return nil, err
		}
		mw, err := pricer.Evaluate(cwmRes.Best)
		if err != nil {
			return nil, err
		}
		cmp.CWMMetrics[tech.Name] = mw

		randRun, err := Explore(StrategyCDCM, mesh, cfg, tech, g, opts.Options)
		if err != nil {
			return nil, fmt.Errorf("core: CDCM exploration (%s): %w", tech.Name, err)
		}
		seeded := opts.Options
		seeded.Initial = cwmRes.Best
		seedRun, err := Explore(StrategyCDCM, mesh, cfg, tech, g, seeded)
		if err != nil {
			return nil, fmt.Errorf("core: CDCM refinement (%s): %w", tech.Name, err)
		}
		best := randRun
		if seedRun.Search.BestCost < randRun.Search.BestCost {
			best = seedRun
		}
		cmp.CDCMEvaluations += randRun.Search.Evaluations + seedRun.Search.Evaluations
		cmp.CDCMMappings[tech.Name] = best.Best
		cmp.CDCMMetrics[tech.Name] = best.Metrics
		if mw.Total() > 0 {
			cmp.ECS[tech.Name] = (mw.Total() - best.Metrics.Total()) / mw.Total()
		}
	}
	tw := cmp.CWMMetrics[optTech.Name].ExecCycles
	td := cmp.CDCMMetrics[optTech.Name].ExecCycles
	if tw > 0 {
		cmp.ETR = float64(tw-td) / float64(tw)
	}
	return cmp, nil
}
