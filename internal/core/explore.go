package core

import (
	"context"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/search"
	"repro/internal/topology"
)

// Strategy selects the application model driving the exploration.
type Strategy int

// Strategies. StrategyPareto is the multi-objective mode: it explores
// under CDCM's vector components (dynamic energy, static energy,
// execution time) with the archived weight-swept annealer and returns a
// Pareto front alongside the scalar winner.
const (
	StrategyCWM Strategy = iota
	StrategyCDCM
	StrategyPareto
	// StrategyResilience optimises the fault-degradation objective
	// (core.Resilience): intact ENoC plus worst-case texec over the
	// single-fault scenarios of Options.Faults, which must be non-empty.
	StrategyResilience
)

func (s Strategy) String() string {
	switch s {
	case StrategyCWM:
		return "CWM"
	case StrategyCDCM:
		return "CDCM"
	case StrategyPareto:
		return "pareto"
	case StrategyResilience:
		return "resilience"
	}
	return "?"
}

// ParseStrategy converts a CLI string into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "cwm", "CWM":
		return StrategyCWM, nil
	case "cdcm", "CDCM":
		return StrategyCDCM, nil
	case "pareto", "PARETO":
		return StrategyPareto, nil
	case "resilience", "RESILIENCE":
		return StrategyResilience, nil
	}
	return 0, fmt.Errorf("core: unknown mapping strategy %q", s)
}

// Method selects the search engine.
type Method int

// Methods. MethodSA is the paper's default; MethodES certifies optimality
// on small NoCs.
const (
	MethodSA Method = iota
	MethodES
	MethodRandom
	MethodHill
	MethodTabu
)

func (m Method) String() string {
	switch m {
	case MethodSA:
		return "SA"
	case MethodES:
		return "ES"
	case MethodRandom:
		return "random"
	case MethodHill:
		return "hill"
	case MethodTabu:
		return "tabu"
	}
	return "?"
}

// ParseMethod converts a CLI string into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "sa", "SA":
		return MethodSA, nil
	case "es", "ES", "exhaustive":
		return MethodES, nil
	case "random", "rand":
		return MethodRandom, nil
	case "hill", "hc":
		return MethodHill, nil
	case "tabu":
		return MethodTabu, nil
	}
	return 0, fmt.Errorf("core: unknown search method %q", s)
}

// Options tunes one exploration run.
type Options struct {
	// Method selects the engine (default MethodSA).
	Method Method
	// Seed drives every stochastic engine deterministically.
	Seed int64
	// TempSteps / MovesPerTemp / Alpha / StallSteps / Reheats tune the
	// annealer (0 = engine defaults).
	TempSteps    int
	MovesPerTemp int
	Alpha        float64
	StallSteps   int
	Reheats      int
	// ESLimit bounds exhaustive enumeration (0 = none).
	ESLimit int64
	// ESAnchor applies symmetry anchoring in exhaustive search.
	ESAnchor bool
	// Samples sets the random-search budget (0 = default).
	Samples int
	// Initial, when non-nil, seeds the annealer, the hill climber or the
	// Pareto engine with this mapping instead of a random one (ignored by
	// the other methods).
	Initial mapping.Mapping
	// SeedGreedy, when true and Initial is nil, warm-starts the engine
	// with the deterministic highest-traffic-first constructive placement
	// (mapping.SeedGreedy over the application's communication volumes).
	// It only changes the starting point, never the engine's moves, and
	// the greedy mapping is deterministic, so results stay reproducible.
	SeedGreedy bool
	// FrontSize bounds the Pareto front returned by StrategyPareto
	// (0 = search.DefaultFrontSize); ignored by the scalar strategies.
	FrontSize int
	// Restarts runs MethodSA as a multi-restart: Restarts independent
	// annealing runs with seeds Seed..Seed+Restarts-1, best-cost winner,
	// lowest restart index breaking ties (0 or 1 = single run, the
	// historical behaviour). Results depend on Restarts, never on Workers.
	Restarts int
	// Workers bounds the goroutines used by the parallel paths: SA
	// restarts, exhaustive-search shards and the independent legs of
	// CompareModels (0 or 1 = serial). For a fixed Seed the results are
	// bit-identical across Workers values; Workers only buys wall-clock.
	Workers int
	// Surrogate enables the tier-B calibrated surrogate for the
	// Metropolis engines (MethodSA under StrategyCDCM, and the intact
	// StrategyPareto): the walk prices candidates on an analytic
	// predictor fitted against exact simulations at build time, and only
	// accepted moves (plus the final winner and every front point) pay an
	// exact simulation. Default off — surrogate runs are deterministic
	// (fixed Seed ⇒ fixed fit ⇒ fixed walk, for every Workers value) but
	// not bit-identical to a surrogate-free run. The flag is ignored by
	// the engines that cannot use it: CWM (already cheap), the
	// strict-improvement and enumerating methods, and the
	// resilience/faulted-pareto objectives.
	Surrogate bool
	// SurrogateSamples is the tier-B calibration budget — the number of
	// exact simulations the per-instance fit consumes (0 =
	// DefaultSurrogateSamples). Ignored unless Surrogate is set.
	SurrogateSamples int
	// Faults, when non-empty, is the fault set resilience runs score
	// against. StrategyResilience requires it; with the other strategies
	// it leaves the search objective untouched but makes Explore attach a
	// ResilienceScore for the winning mapping (and StrategyPareto explores
	// the resilience axes instead of CDCM's). Nil or empty is the intact
	// behaviour, bit for bit.
	Faults *topology.FaultSet
	// Ctx, when non-nil, cancels a running exploration: every engine
	// polls it on its hot loop and Explore returns ctx.Err(). A nil Ctx
	// (the default) is bit-identical to the historical behaviour — the
	// mapping-as-a-service daemon relies on this to share one search
	// code path between batch and cancellable runs.
	Ctx context.Context
	// OnProgress, when non-nil, receives periodic search.Progress
	// snapshots. The parallel engines invoke it concurrently from their
	// worker lanes; see search.ProgressFunc for the contract.
	OnProgress search.ProgressFunc
	// OnPhase, when non-nil, is invoked from Explore's own goroutine at
	// the start of each exploration phase — "build" (evaluator
	// construction), "search" (engine run), "price" (winner pricing on
	// the CDCM simulator). Observational only: the calls never feed back
	// into the walk, so attaching one is bit-identical to not.
	OnPhase func(phase string)
	// EvalCounter, when non-nil, is incremented once per objective
	// pricing by the instrumented evaluators — CWM full costs and
	// incremental swap probes, CDCM simulations — across every worker
	// lane. The concrete counter type keeps the hot paths
	// allocation-free (one atomic add, no interface boxing).
	EvalCounter *obs.Counter
}

// ExploreResult is the outcome of one exploration.
type ExploreResult struct {
	// Strategy that produced the result.
	Strategy Strategy
	// Search holds engine statistics (evaluations, improvements, ...).
	Search *search.Result
	// Best is the winning mapping.
	Best mapping.Mapping
	// Metrics prices Best with the CDCM simulator under the exploration
	// tech — even for CWM-driven runs, because pricing time and static
	// energy requires the dependence model (the paper's point).
	Metrics Metrics
	// Front is the Pareto front (StrategyPareto only, nil otherwise). Its
	// lowest-collapse point is Best; the scalar Search fields summarise
	// the same run (BestCost = that point's ENoC collapse).
	Front *search.FrontResult
	// Resilience is the fault-degradation report for Best, present
	// whenever Options.Faults was non-empty (any strategy), nil otherwise.
	Resilience *ResilienceScore
}

// GreedyInitial builds the constructive warm-start placement for an
// application: mapping.SeedGreedy over the CWG communication volumes
// (the deterministic highest-traffic-first heuristic).
func GreedyInitial(mesh *topology.Mesh, g *model.CDCG) (mapping.Mapping, error) {
	cwg := g.ToCWG()
	edges := make([]mapping.TrafficEdge, len(cwg.Edges))
	for i, e := range cwg.Edges {
		edges[i] = mapping.TrafficEdge{A: e.Src, B: e.Dst, Bits: e.Bits}
	}
	return mapping.SeedGreedy(mesh, cwg.NumCores(), edges)
}

// Explore searches the mapping space of application g on the given NoC
// under the chosen strategy and prices the winner with the CDCM simulator.
func Explore(strategy Strategy, mesh *topology.Mesh, cfg noc.Config, tech energy.Tech,
	g *model.CDCG, opts Options) (*ExploreResult, error) {

	phase := func(name string) {
		if opts.OnPhase != nil {
			opts.OnPhase(name)
		}
	}
	phase("build")

	// The evaluators are stateful (CWM route cache + delta binding, CDCM
	// scratch), so the parallel engines receive a factory and build one
	// per worker lane; the serial engines call it once. For CDCM the
	// factory hands out clones of one shared evaluator: the simulator
	// core (route/port tables, dependence graph) is built and validated
	// once, each lane gets only its own scratch, and the lanes run
	// concurrently against the shared immutable core.
	var newObjective search.ObjectiveFactory
	var cdcmBase *CDCM
	var resBase *Resilience
	switch strategy {
	case StrategyCWM:
		newObjective = func() (search.Objective, error) {
			cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
			if err != nil {
				return nil, err
			}
			cwm.Evals = opts.EvalCounter
			return cwm, nil
		}
	case StrategyCDCM, StrategyPareto, StrategyResilience:
		var err error
		// A non-empty fault set turns the resilience objective on:
		// StrategyResilience requires it, and StrategyPareto then explores
		// the resilience axes (intact energy × worst-fault latency) instead
		// of CDCM's. The empty-fault CDCM/Pareto paths are untouched.
		switch {
		case strategy == StrategyResilience || (strategy == StrategyPareto && !opts.Faults.Empty()):
			if opts.Faults.Empty() {
				return nil, fmt.Errorf("core: %s strategy needs a non-empty fault set (Options.Faults)", strategy)
			}
			if resBase, err = NewResilience(mesh, cfg, tech, g, opts.Faults); err != nil {
				return nil, err
			}
			cdcmBase = resBase.Intact()
			// Instrumenting the intact CDCM counts one increment per
			// resilience evaluation (clones share the counter); the
			// per-fault degraded runs ride along uncounted.
			cdcmBase.Evals = opts.EvalCounter
			newObjective = func() (search.Objective, error) { return resBase.Clone(), nil }
		default:
			if cdcmBase, err = NewCDCM(mesh, cfg, tech, g); err != nil {
				return nil, err
			}
			cdcmBase.Evals = opts.EvalCounter
			newObjective = func() (search.Objective, error) { return cdcmBase.Clone(), nil }

			// Two-tier seam (search.TieredObjective). Tier A — the certified
			// lower bound — attaches unconditionally to the strict-improvement
			// engines: it is bit-identical by construction, so there is no
			// reason to make it optional. Tier B — the calibrated surrogate —
			// attaches only on request to the Metropolis engines that can
			// exact-reprice their accepted moves.
			needBound := strategy == StrategyCDCM &&
				(opts.Method == MethodHill || opts.Method == MethodTabu)
			needSurr := opts.Surrogate &&
				(strategy == StrategyPareto || (strategy == StrategyCDCM && opts.Method == MethodSA))
			if needBound || needSurr {
				var lbSkel *texecLB
				if needBound {
					if lbSkel, err = newTexecLB(cfg, g); err != nil {
						return nil, err
					}
				}
				var fit surrogateFit
				if needSurr {
					// Fitted once, before any lane exists: every worker lane
					// shares the same immutable fit, so the surrogate walk is
					// independent of the worker count.
					if fit, err = fitSurrogate(mesh, cfg, tech, g, cdcmBase,
						opts.Seed, opts.SurrogateSamples); err != nil {
						return nil, err
					}
				}
				newObjective = func() (search.Objective, error) {
					t := &search.TieredObjective{Exact: cdcmBase.Clone()}
					if needBound {
						bnd, err := newCDCMBound(mesh, cfg, tech, g, lbSkel)
						if err != nil {
							return nil, err
						}
						t.Bound = bnd
					}
					if needSurr {
						surr, err := newCDCMSurrogate(mesh, cfg, tech, g, fit)
						if err != nil {
							return nil, err
						}
						t.Surrogate = surr
					}
					return t, nil
				}
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", strategy)
	}

	if opts.SeedGreedy && opts.Initial == nil {
		seed, err := GreedyInitial(mesh, g)
		if err != nil {
			return nil, err
		}
		opts.Initial = seed
	}

	prob := search.Problem{Mesh: mesh, NumCores: g.NumCores()}

	// StrategyPareto is engine and strategy in one: the front engine over
	// CDCM's vector components. Options.Method is ignored — the front has
	// exactly one engine — and the scalar Search result summarises the
	// front's lowest-ENoC point so every downstream consumer of
	// ExploreResult keeps working unchanged.
	if strategy == StrategyPareto {
		base, err := newObjective()
		if err != nil {
			return nil, err
		}
		prob.Obj = base
		phase("search")
		front, err := (&search.ParetoSA{
			Problem:      prob,
			Seed:         opts.Seed,
			Initial:      opts.Initial,
			TempSteps:    opts.TempSteps,
			MovesPerTemp: opts.MovesPerTemp,
			Alpha:        opts.Alpha,
			StallSteps:   opts.StallSteps,
			Walks:        opts.Restarts,
			FrontSize:    opts.FrontSize,
			Workers:      opts.Workers,
			NewObjective: newObjective,
			Ctx:          opts.Ctx,
			OnProgress:   opts.OnProgress,
		}).Run()
		if err != nil {
			return nil, err
		}
		best, ok := front.Best()
		if !ok {
			return nil, fmt.Errorf("core: pareto exploration returned an empty front")
		}
		phase("price")
		metrics, err := cdcmBase.Evaluate(best.Mapping)
		if err != nil {
			return nil, err
		}
		out := &ExploreResult{
			Strategy: strategy,
			Search: &search.Result{
				Best:           best.Mapping,
				BestCost:       best.Cost,
				InitialCost:    front.InitialCost,
				Evaluations:    front.Evaluations,
				ExactEvals:     front.ExactEvals,
				SurrogateEvals: front.SurrogateEvals,
				Improvements:   front.Improvements,
			},
			Best:    best.Mapping,
			Metrics: metrics,
			Front:   front,
		}
		if err := attachResilience(out, resBase, mesh, cfg, tech, g, opts.Faults); err != nil {
			return nil, err
		}
		return out, nil
	}

	var (
		res *search.Result
		err error
	)
	phase("search")
	switch opts.Method {
	case MethodSA:
		res, err = (&search.MultiAnnealer{
			Base: search.Annealer{
				Problem:      prob,
				Seed:         opts.Seed,
				Initial:      opts.Initial,
				TempSteps:    opts.TempSteps,
				MovesPerTemp: opts.MovesPerTemp,
				Alpha:        opts.Alpha,
				StallSteps:   opts.StallSteps,
				Reheats:      opts.Reheats,
				Ctx:          opts.Ctx,
				OnProgress:   opts.OnProgress,
			},
			Restarts:     opts.Restarts,
			Workers:      opts.Workers,
			NewObjective: newObjective,
		}).Run()
	case MethodES:
		res, err = (&search.ShardedExhaustive{
			Problem:      prob,
			Limit:        opts.ESLimit,
			Anchor:       opts.ESAnchor,
			Workers:      opts.Workers,
			NewObjective: newObjective,
			Ctx:          opts.Ctx,
			OnProgress:   opts.OnProgress,
		}).Run()
	case MethodRandom, MethodHill, MethodTabu:
		var obj search.Objective
		if obj, err = newObjective(); err != nil {
			return nil, err
		}
		prob.Obj = obj
		switch opts.Method {
		case MethodRandom:
			res, err = (&search.RandomSearch{Problem: prob, Seed: opts.Seed, Samples: opts.Samples,
				Ctx: opts.Ctx, OnProgress: opts.OnProgress}).Run()
		case MethodHill:
			res, err = (&search.HillClimber{Problem: prob, Seed: opts.Seed, Initial: opts.Initial,
				Ctx: opts.Ctx, OnProgress: opts.OnProgress}).Run()
		case MethodTabu:
			res, err = (&search.Tabu{Problem: prob, Seed: opts.Seed,
				Ctx: opts.Ctx, OnProgress: opts.OnProgress}).Run()
		}
	default:
		err = fmt.Errorf("core: unknown method %d", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	if opts.Ctx != nil {
		// The winner still has to be priced on the CDCM simulator below;
		// don't start that (potentially expensive) run for a caller that
		// has already walked away.
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Price the winner with the CDCM simulator. A CDCM-driven run already
	// built the shared simulator core; reuse it instead of recomputing
	// the route tables.
	phase("price")
	pricer := cdcmBase
	if pricer == nil {
		if pricer, err = NewCDCM(mesh, cfg, tech, g); err != nil {
			return nil, err
		}
	}
	metrics, err := pricer.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	out := &ExploreResult{Strategy: strategy, Search: res, Best: res.Best, Metrics: metrics}
	if err := attachResilience(out, resBase, mesh, cfg, tech, g, opts.Faults); err != nil {
		return nil, err
	}
	return out, nil
}

// attachResilience scores the winning mapping over the run's fault set
// (no-op when none was configured). Runs that already built a resilience
// evaluator reuse it; the CWM/CDCM strategies build one here just to
// score their winner.
func attachResilience(out *ExploreResult, resBase *Resilience, mesh *topology.Mesh, cfg noc.Config,
	tech energy.Tech, g *model.CDCG, fs *topology.FaultSet) error {
	if fs.Empty() {
		return nil
	}
	if resBase == nil {
		var err error
		if resBase, err = NewResilience(mesh, cfg, tech, g, fs); err != nil {
			return err
		}
	}
	sc, err := resBase.Score(out.Best)
	if err != nil {
		return err
	}
	out.Resilience = sc
	return nil
}

// CompareOptions tunes the Table-2 protocol.
type CompareOptions struct {
	// Options configures the (shared) search budget for both strategies.
	Options
	// OptimizeTech is the profile the CDCM objective minimises ENoC
	// under; the zero value defaults to Tech007 — the deep-submicron
	// point where timing matters most, and the regime the paper targets.
	OptimizeTech energy.Tech
	// ReportTechs are the profiles both winners are priced under (default
	// Tech035 and Tech007).
	ReportTechs []energy.Tech
}

// Comparison is the outcome of the CWM-vs-CDCM protocol on one workload.
type Comparison struct {
	// CWMMapping is the volume-only strategy's winner (tech independent:
	// equation (3) scales uniformly with the bit-energy constants).
	CWMMapping mapping.Mapping
	// CDCMMappings holds the CDCM winner per reporting tech (keyed by
	// Tech.Name): the CDCM objective depends on the technology through
	// the static/dynamic balance, so each technology is explored under
	// its own constants — "ECS values obtained from 0.35µ technology".
	CDCMMappings map[string]mapping.Mapping
	// CWMEvaluations/CDCMEvaluations count objective calls per strategy
	// (CDCM totals across techs and restarts).
	CWMEvaluations, CDCMEvaluations int64
	// CWMMetrics and CDCMMetrics price the winners per reporting tech.
	CWMMetrics, CDCMMetrics map[string]Metrics
	// ETR is the execution-time reduction (t_cwm − t_cdcm) / t_cwm,
	// measured on the OptimizeTech run (the deep-submicron point, where
	// the paper's argument lives).
	ETR float64
	// ECS is the energy-consumption saving per reporting tech:
	// (E_cwm − E_cdcm) / E_cwm, keyed by Tech.Name.
	ECS map[string]float64
}

// CompareModels runs the paper's comparison protocol on one workload.
//
// The shared search budget first explores the space under the CWM
// objective. Then, for every reporting technology, the CDCM objective
// (equation (10) under that technology's constants) is explored twice
// with the same budget — once from a random mapping like the paper, and
// once seeded with the CWM winner — keeping the better result. The
// restart only improves the optimisation of the CDCM objective; in
// particular it guarantees the reported ECS reflects what the dependence
// model can see, not annealing luck on large instances. Both winners are
// executed on the CDCM simulator and priced under the reporting
// technology. The CWM strategy cannot see time, so its winner's texec is
// whatever contention falls out of its volume-only placement — that gap
// is the paper's result.
//
// The protocol's legs are independent explorations, so with
// Options.Workers > 1 they run concurrently: the CWM exploration and
// every per-tech random-start CDCM run launch immediately, and the
// CWM-seeded refinements plus pricing follow once the CWM winner exists.
// Every leg is deterministic under its own seed, so the comparison is
// bit-identical for every Workers value.
func CompareModels(mesh *topology.Mesh, cfg noc.Config, g *model.CDCG, opts CompareOptions) (*Comparison, error) {
	optTech := opts.OptimizeTech
	if optTech == (energy.Tech{}) {
		optTech = energy.Tech007
	}
	report := opts.ReportTechs
	if len(report) == 0 {
		report = []energy.Tech{energy.Tech035, energy.Tech007}
	}
	hasOpt := false
	for _, t := range report {
		if t.Name == optTech.Name {
			hasOpt = true
		}
	}
	if !hasOpt {
		report = append(append([]energy.Tech{}, report...), optTech)
	}

	// Phase 1 — every leg that needs no other leg's output: the CWM
	// exploration (job 0) and one random-start CDCM exploration per
	// reporting tech (jobs 1..len(report)).
	var cwmRes *ExploreResult
	randRuns := make([]*ExploreResult, len(report))
	err := par.ForEachCtx(opts.Ctx, 1+len(report), opts.Workers, func(i int) error {
		if i == 0 {
			res, err := Explore(StrategyCWM, mesh, cfg, optTech, g, opts.Options)
			if err != nil {
				return fmt.Errorf("core: CWM exploration: %w", err)
			}
			cwmRes = res
			return nil
		}
		tech := report[i-1]
		res, err := Explore(StrategyCDCM, mesh, cfg, tech, g, opts.Options)
		if err != nil {
			return fmt.Errorf("core: CDCM exploration (%s): %w", tech.Name, err)
		}
		randRuns[i-1] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 — per-tech legs downstream of the CWM winner: pricing the
	// CWM mapping under the reporting tech and the CWM-seeded CDCM
	// refinement.
	cwmMetrics := make([]Metrics, len(report))
	seedRuns := make([]*ExploreResult, len(report))
	err = par.ForEachCtx(opts.Ctx, 2*len(report), opts.Workers, func(i int) error {
		tech := report[i/2]
		if i%2 == 0 {
			pricer, err := NewCDCM(mesh, cfg, tech, g)
			if err != nil {
				return err
			}
			mw, err := pricer.Evaluate(cwmRes.Best)
			if err != nil {
				return err
			}
			cwmMetrics[i/2] = mw
			return nil
		}
		seeded := opts.Options
		seeded.Initial = cwmRes.Best
		res, err := Explore(StrategyCDCM, mesh, cfg, tech, g, seeded)
		if err != nil {
			return fmt.Errorf("core: CDCM refinement (%s): %w", tech.Name, err)
		}
		seedRuns[i/2] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	cmp := &Comparison{
		CWMMapping:     cwmRes.Best,
		CDCMMappings:   make(map[string]mapping.Mapping, len(report)),
		CWMEvaluations: cwmRes.Search.Evaluations,
		CWMMetrics:     make(map[string]Metrics, len(report)),
		CDCMMetrics:    make(map[string]Metrics, len(report)),
		ECS:            make(map[string]float64, len(report)),
	}
	for i, tech := range report {
		mw := cwmMetrics[i]
		cmp.CWMMetrics[tech.Name] = mw
		randRun, seedRun := randRuns[i], seedRuns[i]
		best := randRun
		if seedRun.Search.BestCost < randRun.Search.BestCost {
			best = seedRun
		}
		cmp.CDCMEvaluations += randRun.Search.Evaluations + seedRun.Search.Evaluations
		cmp.CDCMMappings[tech.Name] = best.Best
		cmp.CDCMMetrics[tech.Name] = best.Metrics
		if mw.Total() > 0 {
			cmp.ECS[tech.Name] = (mw.Total() - best.Metrics.Total()) / mw.Total()
		}
	}
	tw := cmp.CWMMetrics[optTech.Name].ExecCycles
	td := cmp.CDCMMetrics[optTech.Name].ExecCycles
	if tw > 0 {
		cmp.ETR = float64(tw-td) / float64(tw)
	}
	return cmp, nil
}
