package core

import (
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/topology"
)

// TestInstrumentedCWMZeroAlloc pins that attaching the telemetry counter
// keeps the warm CWM hot path allocation-free: the instrumented
// SwapDelta/Commit loop must match the bare loop's 0 allocs/op.
func TestInstrumentedCWMZeroAlloc(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 10)
	cwm := newTestCWM(t, mesh, g)
	var evals obs.Counter
	cwm.Evals = &evals
	mp := mapping.Identity(g.NumCores())
	occ := mp.Occupants(mesh.NumTiles())
	if _, err := cwm.Reset(mp); err != nil {
		t.Fatal(err)
	}
	n := topology.TileID(mesh.NumTiles())
	for src := topology.TileID(0); src < n; src++ {
		for dst := topology.TileID(0); dst < n; dst++ {
			if src == dst {
				continue
			}
			if _, err := cwm.routers(src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}

	var a, b topology.TileID = 0, 1
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := cwm.SwapDelta(occ, a, b); err != nil {
			t.Fatal(err)
		}
		cwm.Commit(a, b)
		occ[a], occ[b] = occ[b], occ[a]
		a = (a + 1) % n
		b = (b + 3) % n
		if a == b {
			b = (b + 1) % n
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented SwapDelta+Commit allocates %.1f objects/run, want 0", allocs)
	}
	if evals.Value() == 0 {
		t.Fatal("instrumented run recorded no evaluations")
	}
}

// TestInstrumentedCDCMZeroAllocSteadyState pins the CDCM analogue: the
// counted simulation path stays allocation-free once the scratch is
// warm.
func TestInstrumentedCDCMZeroAllocSteadyState(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 6)
	cdcm, err := NewCDCM(mesh, noc.Default(), energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	var evals obs.Counter
	cdcm.Evals = &evals
	mp := mapping.Identity(g.NumCores())
	if _, err := cdcm.Evaluate(mp); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(32, func() {
		if _, err := cdcm.Evaluate(mp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented CDCM.Evaluate allocates %.1f objects/run, want 0", allocs)
	}
	if evals.Value() < 33 {
		t.Fatalf("eval counter = %d, want at least 33", evals.Value())
	}
}

// TestExploreOnPhaseOrderAndEvalCounter pins the phase seam — every
// strategy announces build, search, price in that order from Explore's
// goroutine — and that the evaluation counter matches the engine's own
// count for the single-lane engines.
func TestExploreOnPhaseOrderAndEvalCounter(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 6)
	for _, strategy := range []Strategy{StrategyCWM, StrategyCDCM, StrategyPareto} {
		var phases []string
		var evals obs.Counter
		opts := Options{
			Method:       MethodSA,
			Seed:         7,
			TempSteps:    6,
			MovesPerTemp: 4,
			OnPhase:      func(name string) { phases = append(phases, name) },
			EvalCounter:  &evals,
		}
		if strategy == StrategyPareto {
			opts.TempSteps, opts.MovesPerTemp, opts.Restarts = 5, 4, 2
		}
		res, err := Explore(strategy, mesh, noc.Default(), energy.Tech007, g, opts)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if want := []string{"build", "search", "price"}; !reflect.DeepEqual(phases, want) {
			t.Errorf("%s: phases = %v, want %v", strategy, phases, want)
		}
		if evals.Value() == 0 {
			t.Errorf("%s: eval counter stayed 0", strategy)
		}
		// CDCM counts one increment per simulation: every engine
		// evaluation plus the final winner pricing.
		if strategy == StrategyCDCM {
			if got, want := evals.Value(), res.Search.Evaluations+1; got != want {
				t.Errorf("CDCM eval counter = %d, want %d", got, want)
			}
		}
	}
}

// TestExploreInstrumentationIsObservational pins that attaching
// OnPhase and EvalCounter changes nothing about the result.
func TestExploreInstrumentationIsObservational(t *testing.T) {
	mesh, g := deltaInstance(t, 3, 3, 6)
	opts := Options{Method: MethodSA, Seed: 3, TempSteps: 8, MovesPerTemp: 4}
	bare, err := Explore(StrategyCWM, mesh, noc.Default(), energy.Tech007, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var evals obs.Counter
	opts.OnPhase = func(string) {}
	opts.EvalCounter = &evals
	instrumented, err := Explore(StrategyCWM, mesh, noc.Default(), energy.Tech007, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Search.BestCost != instrumented.Search.BestCost ||
		bare.Search.Evaluations != instrumented.Search.Evaluations ||
		!mapping.Equal(bare.Best, instrumented.Best) {
		t.Fatalf("instrumentation changed the exploration:\nbare %+v\ninst %+v",
			bare.Search, instrumented.Search)
	}
}
