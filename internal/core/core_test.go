package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// Paper mappings of Figure 1(c,d); core order A,B,E,F; tiles t1..t4=0..3.
var (
	mapA = mapping.Mapping{1, 0, 3, 2}
	mapB = mapping.Mapping{3, 0, 1, 2}
)

func paperSetup(t *testing.T) (*topology.Mesh, noc.Config, energy.Tech, *model.CDCG) {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return mesh, noc.PaperExample(), energy.PaperExample(), model.PaperExampleCDCG()
}

func almostEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12*math.Max(math.Abs(a), math.Abs(b)) || d == 0
}

// Figure 2: the CWM evaluation cannot distinguish the two mappings — both
// price at exactly 390 pJ.
func TestCWMFigure2Energy(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mp   mapping.Mapping
	}{{"a", mapA}, {"b", mapB}} {
		name, mp := tc.name, tc.mp
		got, err := cwm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, 390e-12) {
			t.Errorf("CWM cost of mapping %s = %g, want 390e-12", name, got)
		}
	}
}

// Figure 2(a): per-resource cost variables of mapping (a).
func TestCWMFigure2Annotation(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
	if err != nil {
		t.Fatal(err)
	}
	rb, lb, cb, err := cwm.Traffic(mapA)
	if err != nil {
		t.Fatal(err)
	}
	// Routers: t1=85 (AB+AF+BF+FB), t2=65 (AB+AF+EA), t3=70 (AF+BF+FB),
	// t4=35 (EA) — the vertex labels of Figure 2(a).
	wantR := []int64{85, 65, 70, 35}
	for i, w := range wantR {
		if rb[i] != w {
			t.Errorf("router t%d bits = %d, want %d", i+1, rb[i], w)
		}
	}
	link := func(a, b topology.TileID) int64 {
		li, ok := mesh.LinkIndex(a, b)
		if !ok {
			t.Fatalf("no link %d->%d", a, b)
		}
		return lb[li]
	}
	// Edges: t2->t1 = 30 (AB+AF), t1->t3 = 55 (AF+BF), t4->t2 = 35 (EA),
	// t3->t1 = 15 (FB); all others 0.
	if link(1, 0) != 30 || link(0, 2) != 55 || link(3, 1) != 35 || link(2, 0) != 15 {
		t.Errorf("link bits: t2->t1=%d t1->t3=%d t4->t2=%d t3->t1=%d",
			link(1, 0), link(0, 2), link(3, 1), link(2, 0))
	}
	if link(0, 1) != 0 || link(2, 3) != 0 || link(1, 3) != 0 || link(3, 2) != 0 {
		t.Error("unused links carry traffic")
	}
	if cb != 240 {
		t.Errorf("core bits = %d, want 240", cb)
	}
	// Sum of cost variables × bit energies = 390 pJ (equation (3)).
	var sumR, sumL int64
	for _, b := range rb {
		sumR += b
	}
	for _, b := range lb {
		sumL += b
	}
	if got := tech.DynamicFromTraffic(sumR, sumL, 0); !almostEq(got, 390e-12) {
		t.Errorf("aggregated energy = %g, want 390e-12", got)
	}
}

// Figure 3: CDCM distinguishes the mappings: 400 pJ / 100 ns vs
// 399 pJ / 90 ns.
func TestCDCMFigure3Metrics(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cdcm, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := cdcm.Evaluate(mapA)
	if err != nil {
		t.Fatal(err)
	}
	if ma.ExecCycles != 100 || !almostEq(ma.ExecNS, 100) {
		t.Errorf("mapping a texec = %d cycles / %g ns, want 100", ma.ExecCycles, ma.ExecNS)
	}
	if !almostEq(ma.Total(), 400e-12) {
		t.Errorf("mapping a ENoC = %g, want 400e-12", ma.Total())
	}
	mb, err := cdcm.Evaluate(mapB)
	if err != nil {
		t.Fatal(err)
	}
	if mb.ExecCycles != 90 {
		t.Errorf("mapping b texec = %d, want 90", mb.ExecCycles)
	}
	if !almostEq(mb.Total(), 399e-12) {
		t.Errorf("mapping b ENoC = %g, want 399e-12", mb.Total())
	}
	// "Mapping (a) consumes 1% more energy than (b)".
	if ratio := ma.Total() / mb.Total(); math.Abs(ratio-400.0/399.0) > 1e-9 {
		t.Errorf("energy ratio = %v, want 400/399", ratio)
	}
	// Dynamic components agree with CWM exactly (equations (3) vs (4)).
	if !almostEq(ma.Energy.Dynamic, 390e-12) || !almostEq(mb.Energy.Dynamic, 390e-12) {
		t.Errorf("dynamic = %g / %g, want 390e-12", ma.Energy.Dynamic, mb.Energy.Dynamic)
	}
	if ma.ContentionCycles != 7 || mb.ContentionCycles != 0 {
		t.Errorf("contention = %d / %d, want 7 / 0", ma.ContentionCycles, mb.ContentionCycles)
	}
}

func TestCWMCDCMDynamicAgreeOnRandomMappings(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cwm, _ := NewCWM(mesh, cfg, tech, g.ToCWG())
	cdcm, _ := NewCDCM(mesh, cfg, tech, g)
	perms := []mapping.Mapping{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2},
	}
	for _, mp := range perms {
		cw, err := cwm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := cdcm.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(cw, cd.Energy.Dynamic) {
			t.Errorf("mapping %v: CWM %g != CDCM dynamic %g", mp, cw, cd.Energy.Dynamic)
		}
	}
}

func TestExploreESFindsOptimum(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	res, err := Explore(StrategyCDCM, mesh, cfg, tech, g, Options{Method: MethodES})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Search.Certified {
		t.Fatal("ES on 2x2 must certify")
	}
	// The paper's mapping (b) prices at 399 pJ; the certified optimum can
	// only be at or below that.
	if res.Search.BestCost > 399e-12+1e-15 {
		t.Fatalf("certified optimum %g above paper mapping (b) 399e-12", res.Search.BestCost)
	}
	if res.Metrics.ExecCycles > 90 {
		// Lowest-energy mapping need not have lowest texec, but on this
		// instance static dominates ties: check it stays competitive.
		t.Logf("note: optimum texec = %d", res.Metrics.ExecCycles)
	}
}

func TestExploreSAMatchesESOnPaperExample(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	es, err := Explore(StrategyCDCM, mesh, cfg, tech, g, Options{Method: MethodES})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Explore(StrategyCDCM, mesh, cfg, tech, g, Options{Method: MethodSA, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sa.Search.BestCost, es.Search.BestCost) {
		t.Fatalf("SA %g != ES %g on a 24-point space", sa.Search.BestCost, es.Search.BestCost)
	}
}

func TestExploreAllMethodsRun(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	for _, m := range []Method{MethodSA, MethodES, MethodRandom, MethodHill, MethodTabu} {
		res, err := Explore(StrategyCWM, mesh, cfg, tech, g, Options{Method: m, Seed: 1, TempSteps: 10})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := res.Best.Validate(4); err != nil {
			t.Fatalf("%s: invalid mapping: %v", m, err)
		}
		if res.Metrics.ExecCycles <= 0 {
			t.Fatalf("%s: no metrics", m)
		}
	}
}

func TestCompareModelsProtocol(t *testing.T) {
	mesh, cfg, _, g := paperSetup(t)
	cmp, err := CompareModels(mesh, cfg, g, CompareOptions{
		Options: Options{Method: MethodES},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.CWMMetrics) != 2 || len(cmp.CDCMMetrics) != 2 {
		t.Fatalf("expected 2 reporting techs, got %d/%d", len(cmp.CWMMetrics), len(cmp.CDCMMetrics))
	}
	for _, tech := range []string{"0.35um", "0.07um"} {
		if _, ok := cmp.ECS[tech]; !ok {
			t.Fatalf("missing ECS for %s", tech)
		}
	}
	// ES under CDCM is the certified ENoC optimum per tech, so ECS must
	// be >= 0 everywhere.
	for tech, ecs := range cmp.ECS {
		if ecs < 0 {
			t.Fatalf("certified CDCM worse than CWM at %s: %g", tech, ecs)
		}
	}
	// The CWM winner is one mapping: its texec is tech independent.
	if cmp.CWMMetrics["0.35um"].ExecCycles != cmp.CWMMetrics["0.07um"].ExecCycles {
		t.Fatal("CWM texec depends on pricing tech")
	}
	// Each tech has its own CDCM winner.
	if len(cmp.CDCMMappings) != 2 {
		t.Fatalf("CDCM winners = %d, want one per tech", len(cmp.CDCMMappings))
	}
	if cmp.CWMEvaluations == 0 || cmp.CDCMEvaluations == 0 {
		t.Fatal("evaluation counts missing")
	}
}

func TestNewCWMValidation(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cwg := g.ToCWG()
	if _, err := NewCWM(nil, cfg, tech, cwg); err == nil {
		t.Error("nil mesh accepted")
	}
	bad := cfg
	bad.LinkCycles = 0
	if _, err := NewCWM(mesh, bad, tech, cwg); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewCWM(mesh, cfg, energy.Tech{ERbit: -1}, cwg); err == nil {
		t.Error("bad tech accepted")
	}
	if _, err := NewCWM(mesh, cfg, tech, &model.CWG{}); err == nil {
		t.Error("empty CWG accepted")
	}
	small, _ := topology.NewMesh(1, 2)
	if _, err := NewCWM(small, cfg, tech, cwg); err == nil {
		t.Error("oversubscribed mesh accepted")
	}
	cwm, err := NewCWM(mesh, cfg, tech, cwg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cwm.Cost(mapping.Mapping{0}); err == nil {
		t.Error("short mapping accepted by Cost")
	}
	if _, _, _, err := cwm.Traffic(mapping.Mapping{0, 0, 1, 2}); err == nil {
		t.Error("invalid mapping accepted by Traffic")
	}
}

func TestNewCDCMValidation(t *testing.T) {
	mesh, cfg, _, g := paperSetup(t)
	if _, err := NewCDCM(mesh, cfg, energy.Tech{PSRouter: -1}, g); err == nil {
		t.Error("bad tech accepted")
	}
	if _, err := NewCDCM(nil, cfg, energy.PaperExample(), g); err == nil {
		t.Error("nil mesh accepted")
	}
}

func TestParseMethodAndStrings(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Method
	}{
		{"sa", MethodSA}, {"es", MethodES}, {"exhaustive", MethodES},
		{"random", MethodRandom}, {"hill", MethodHill}, {"tabu", MethodTabu},
	} {
		s, want := tc.s, tc.want
		got, err := ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMethod("genetic"); err == nil {
		t.Error("unknown method accepted")
	}
	if StrategyCWM.String() != "CWM" || StrategyCDCM.String() != "CDCM" || StrategyPareto.String() != "pareto" {
		t.Error("Strategy.String mismatch")
	}
	if MethodSA.String() != "SA" || Method(99).String() != "?" {
		t.Error("Method.String mismatch")
	}
}

// TestStrategyRoundTrip walks every defined Strategy value (stopping at
// the "?" sentinel) and checks ParseStrategy inverts String exactly, so
// a newly added strategy cannot ship without a CLI spelling.
func TestStrategyRoundTrip(t *testing.T) {
	n := 0
	for s := Strategy(0); s.String() != "?"; s++ {
		n++
		name := s.String()
		got, err := ParseStrategy(name)
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, s)
		}
		// Both case spellings parse.
		if got, err := ParseStrategy(strings.ToLower(name)); err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", strings.ToLower(name), got, err, s)
		}
		if got, err := ParseStrategy(strings.ToUpper(name)); err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", strings.ToUpper(name), got, err, s)
		}
	}
	if n != 4 {
		t.Errorf("walked %d strategies before the ? sentinel, want 4 (CWM, CDCM, pareto, resilience)", n)
	}
	if Strategy(n).String() != "?" {
		t.Errorf("Strategy(%d).String() = %q, want the ? sentinel", n, Strategy(n).String())
	}
	if _, err := ParseStrategy("?"); err == nil {
		t.Error("ParseStrategy accepted the ? sentinel")
	}
	if _, err := ParseStrategy("ilp"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

func TestSimulateExposesRawResult(t *testing.T) {
	mesh, cfg, tech, g := paperSetup(t)
	cdcm, err := NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		t.Fatal(err)
	}
	cdcm.Simulator().RecordOccupancy = true
	raw, metrics, err := cdcm.Simulate(mapA)
	if err != nil {
		t.Fatal(err)
	}
	if raw.ExecCycles != metrics.ExecCycles {
		t.Fatal("raw and priced texec disagree")
	}
	if len(raw.Packets) != g.NumPackets() {
		t.Fatal("raw packet schedules missing")
	}
}
