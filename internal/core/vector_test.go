package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/appgen"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// Both evaluators promise Cost == CollapseWeights·Components bit for bit
// (the vector seam's contract); these pins are the multi-objective
// analogue of the delta-equivalence tests.

func vectorSetup(t *testing.T) (*topology.Mesh, *model.CDCG) {
	t.Helper()
	mesh, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name: "vector-4x4", Cores: 8, Packets: 48, TotalBits: 30000, Seed: 9, Chains: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mesh, g
}

func randomMappings(t *testing.T, n, cores, tiles int) []mapping.Mapping {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	mps := make([]mapping.Mapping, n)
	for i := range mps {
		var err error
		if mps[i], err = mapping.Random(rng, cores, tiles); err != nil {
			t.Fatal(err)
		}
	}
	return mps
}

func TestCWMCollapseIdentity(t *testing.T) {
	mesh, g := vectorSetup(t)
	cwm, err := NewCWM(mesh, noc.Default(), energy.Tech007, g.ToCWG())
	if err != nil {
		t.Fatal(err)
	}
	var vobj search.VectorObjective = cwm // compile-time interface pin
	if got := vobj.Axes(); !reflect.DeepEqual(got, []string{"dynamic_j", "latency_cy"}) {
		t.Fatalf("CWM axes %v", got)
	}
	dst := make([]float64, 2)
	for _, mp := range randomMappings(t, 24, 8, 16) {
		cost, err := cwm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if err := cwm.ComponentsInto(mp, dst); err != nil {
			t.Fatal(err)
		}
		// CWM collapses with weights {1, 0}: the scalar must equal the
		// dynamic axis exactly, and the collapse bit for bit.
		if got := search.Collapse(vobj.CollapseWeights(), dst); got != cost {
			t.Fatalf("collapse %g != Cost %g", got, cost)
		}
		if dst[0] != cost {
			t.Fatalf("dynamic axis %g != Cost %g", dst[0], cost)
		}
		if dst[1] <= 0 {
			t.Fatalf("latency aggregate %g not positive", dst[1])
		}
	}
	if err := cwm.ComponentsInto(mapping.Mapping{0, 1}, dst[:1]); err == nil {
		t.Fatal("short component buffer accepted")
	}
}

func TestCDCMCollapseIdentity(t *testing.T) {
	mesh, g := vectorSetup(t)
	cdcm, err := NewCDCM(mesh, noc.Default(), energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	var vobj search.VectorObjective = cdcm
	if got := vobj.Axes(); !reflect.DeepEqual(got, []string{"dynamic_j", "static_j", "latency_cy"}) {
		t.Fatalf("CDCM axes %v", got)
	}
	dst := make([]float64, 3)
	for _, mp := range randomMappings(t, 16, 8, 16) {
		cost, err := cdcm.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if err := cdcm.ComponentsInto(mp, dst); err != nil {
			t.Fatal(err)
		}
		if got := search.Collapse(vobj.CollapseWeights(), dst); got != cost {
			t.Fatalf("collapse %g != Cost %g", got, cost)
		}
		met, err := cdcm.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		want := met.Components()
		if !reflect.DeepEqual(want, append([]float64(nil), dst...)) {
			t.Fatalf("components %v != metrics view %v", dst, want)
		}
		if met.Total() != cost {
			t.Fatalf("Metrics.Total %g != Cost %g", met.Total(), cost)
		}
	}
}

func paretoOptions(workers int) Options {
	return Options{Seed: 7, TempSteps: 10, MovesPerTemp: 12, Restarts: 5, Workers: workers}
}

func TestExploreParetoDeterministicAcrossWorkers(t *testing.T) {
	mesh, g := vectorSetup(t)
	var ref *ExploreResult
	for _, workers := range []int{1, 2, 3} {
		res, err := Explore(StrategyPareto, mesh, noc.Default(), energy.Tech007, g, paretoOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			if len(ref.Front.Points) == 0 {
				t.Fatal("empty front")
			}
			continue
		}
		if !reflect.DeepEqual(res.Front, ref.Front) {
			t.Fatalf("workers=%d changed the front", workers)
		}
		if !reflect.DeepEqual(res.Best, ref.Best) || res.Search.BestCost != ref.Search.BestCost {
			t.Fatalf("workers=%d changed the scalar summary", workers)
		}
	}
}

func TestExploreParetoFrontRepricesExactly(t *testing.T) {
	mesh, g := vectorSetup(t)
	cfg := noc.Default()
	res, err := Explore(StrategyPareto, mesh, cfg, energy.Tech007, g, paretoOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	front := res.Front
	if front == nil {
		t.Fatal("no front on a pareto exploration")
	}
	// Mutual non-domination.
	for i := range front.Points {
		for j := range front.Points {
			if i != j && search.Dominates(front.Points[i].Components, front.Points[j].Components) {
				t.Fatalf("front point %d dominates %d", i, j)
			}
		}
	}
	// Exact reprice on a fresh evaluator: the front must be reproducible
	// from the instance alone, with no accumulated search state.
	fresh, err := NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	for i, p := range front.Points {
		if err := fresh.ComponentsInto(p.Mapping, dst); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Components, append([]float64(nil), dst...)) {
			t.Fatalf("point %d does not reprice: stored %v, fresh %v", i, p.Components, dst)
		}
		if got := search.Collapse(front.Weights, p.Components); got != p.Cost {
			t.Fatalf("point %d: cost %g != collapse %g", i, p.Cost, got)
		}
	}
	// The scalar summary is the front's best point, priced like any
	// scalar exploration.
	best, _ := front.Best()
	if !reflect.DeepEqual(res.Best, best.Mapping) || res.Search.BestCost != best.Cost {
		t.Fatal("ExploreResult does not summarise the front's best point")
	}
	if res.Metrics.Energy.Dynamic != best.Components[0] ||
		res.Metrics.Energy.Static != best.Components[1] ||
		float64(res.Metrics.ExecCycles) != best.Components[2] {
		t.Fatal("Metrics disagree with the best point's components")
	}
}

// TestExploreSeedGreedyNeverWorse is the warm-start guarantee: every
// engine that accepts an initial mapping prices it as its starting point
// and can only improve from there, so a seeded exploration never
// finishes worse than the greedy seed itself.
func TestExploreSeedGreedyNeverWorse(t *testing.T) {
	mesh, g := vectorSetup(t)
	cfg := noc.Default()
	seed, err := GreedyInitial(mesh, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Validate(mesh.NumTiles()); err != nil {
		t.Fatal(err)
	}
	cdcm, err := NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	seedCost, err := cdcm.Cost(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sa", Options{Method: MethodSA, Seed: 3, TempSteps: 8, MovesPerTemp: 10, SeedGreedy: true}},
		{"hill", Options{Method: MethodHill, Seed: 3, SeedGreedy: true}},
		{"pareto", func() Options { o := paretoOptions(2); o.SeedGreedy = true; return o }()},
	} {
		strategy := StrategyCDCM
		if tc.name == "pareto" {
			strategy = StrategyPareto
		}
		res, err := Explore(strategy, mesh, cfg, energy.Tech007, g, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Search.InitialCost != seedCost {
			t.Errorf("%s: InitialCost %g, want the greedy seed's %g", tc.name, res.Search.InitialCost, seedCost)
		}
		if res.Search.BestCost > seedCost {
			t.Errorf("%s: finished at %g, worse than the greedy seed %g", tc.name, res.Search.BestCost, seedCost)
		}
	}

	// An explicit Initial wins over SeedGreedy.
	explicit := seed.Clone()
	explicit[0], explicit[1] = explicit[1], explicit[0]
	explicitCost, err := cdcm.Cost(explicit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(StrategyCDCM, mesh, cfg, energy.Tech007, g,
		Options{Method: MethodHill, Seed: 3, SeedGreedy: true, Initial: explicit})
	if err != nil {
		t.Fatal(err)
	}
	if res.Search.InitialCost != explicitCost {
		t.Fatalf("explicit Initial overridden: InitialCost %g, want %g", res.Search.InitialCost, explicitCost)
	}
}
