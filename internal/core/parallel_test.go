package core

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

func compareSetup(t *testing.T) (*topology.Mesh, noc.Config, *model.CDCG) {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return mesh, noc.Default(), model.PaperExampleCDCG()
}

func exploreEqual(a, b *ExploreResult) bool {
	return a.Search.BestCost == b.Search.BestCost &&
		a.Search.Evaluations == b.Search.Evaluations &&
		mapping.Equal(a.Best, b.Best) &&
		a.Metrics == b.Metrics
}

// TestExploreDeterministicAcrossWorkers pins the tentpole invariant at
// the framework level: a fixed seed yields bit-identical explorations
// for every Workers value, for both strategies, for multi-restart SA and
// for sharded ES.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	mesh, cfg, g := compareSetup(t)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sa-multirestart", Options{Method: MethodSA, Seed: 5, TempSteps: 8, Restarts: 4}},
		{"es-sharded", Options{Method: MethodES}},
		{"es-sharded-anchor", Options{Method: MethodES, ESAnchor: true}},
	} {
		for _, strat := range []Strategy{StrategyCWM, StrategyCDCM} {
			var ref *ExploreResult
			for _, workers := range []int{1, 2, 4, 9} {
				opts := tc.opts
				opts.Workers = workers
				res, err := Explore(strat, mesh, cfg, energy.Tech007, g, opts)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tc.name, strat, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !exploreEqual(ref, res) {
					t.Fatalf("%s/%s workers=%d diverged: best %g vs %g",
						tc.name, strat, workers, res.Search.BestCost, ref.Search.BestCost)
				}
			}
		}
	}
}

// TestExploreMultiRestartImproves checks that restarts add evaluations
// and can only improve the reported best for the shared base seed.
func TestExploreMultiRestartImproves(t *testing.T) {
	mesh, cfg, g := compareSetup(t)
	single, err := Explore(StrategyCDCM, mesh, cfg, energy.Tech007, g,
		Options{Method: MethodSA, Seed: 2, TempSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Explore(StrategyCDCM, mesh, cfg, energy.Tech007, g,
		Options{Method: MethodSA, Seed: 2, TempSteps: 6, Restarts: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Search.BestCost > single.Search.BestCost {
		t.Fatalf("multi-restart best %g worse than single %g",
			multi.Search.BestCost, single.Search.BestCost)
	}
	if multi.Search.Evaluations <= single.Search.Evaluations {
		t.Fatalf("restart evaluations not accumulated: %d <= %d",
			multi.Search.Evaluations, single.Search.Evaluations)
	}
}

// TestCompareModelsDeterministicAcrossWorkers runs the full Table-2
// protocol at several worker counts and requires identical mappings and
// metrics from all of them.
func TestCompareModelsDeterministicAcrossWorkers(t *testing.T) {
	mesh, cfg, g := compareSetup(t)
	var ref *Comparison
	for _, workers := range []int{1, 2, 4, 8} {
		cmp, err := CompareModels(mesh, cfg, g, CompareOptions{
			Options: Options{Method: MethodSA, Seed: 3, TempSteps: 8, Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = cmp
			continue
		}
		if cmp.ETR != ref.ETR {
			t.Fatalf("workers=%d: ETR %g != %g", workers, cmp.ETR, ref.ETR)
		}
		if !mapping.Equal(cmp.CWMMapping, ref.CWMMapping) {
			t.Fatalf("workers=%d: CWM mapping diverged", workers)
		}
		if cmp.CWMEvaluations != ref.CWMEvaluations || cmp.CDCMEvaluations != ref.CDCMEvaluations {
			t.Fatalf("workers=%d: evaluation counts diverged", workers)
		}
		for tech, m := range ref.CDCMMappings {
			if !mapping.Equal(cmp.CDCMMappings[tech], m) {
				t.Fatalf("workers=%d: CDCM mapping (%s) diverged", workers, tech)
			}
			if cmp.ECS[tech] != ref.ECS[tech] {
				t.Fatalf("workers=%d: ECS (%s) %g != %g", workers, tech, cmp.ECS[tech], ref.ECS[tech])
			}
			if cmp.CDCMMetrics[tech] != ref.CDCMMetrics[tech] || cmp.CWMMetrics[tech] != ref.CWMMetrics[tech] {
				t.Fatalf("workers=%d: metrics (%s) diverged", workers, tech)
			}
		}
	}
	if math.IsNaN(ref.ETR) {
		t.Fatal("ETR is NaN")
	}
}

func TestStrategyStringSentinel(t *testing.T) {
	if got := Strategy(99).String(); got != "?" {
		t.Errorf("Strategy(99).String() = %q, want \"?\"", got)
	}
	if got := Strategy(-1).String(); got != "?" {
		t.Errorf("Strategy(-1).String() = %q, want \"?\"", got)
	}
}

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want Strategy
	}{
		{"cwm", StrategyCWM}, {"CWM", StrategyCWM},
		{"cdcm", StrategyCDCM}, {"CDCM", StrategyCDCM},
	}
	for _, c := range cases {
		got, err := ParseStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "cwm2", "both", "CdCm"} {
		if _, err := ParseStrategy(bad); err == nil {
			t.Errorf("ParseStrategy(%q) accepted", bad)
		}
	}
	// Round trip: every valid strategy parses back from its String.
	for _, s := range []Strategy{StrategyCWM, StrategyCDCM} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v, %v", s, got, err)
		}
	}
}
