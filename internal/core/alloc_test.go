package core

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/topology"
)

// TestCWMSwapDeltaCommitZeroAlloc pins the hot-path contract the
// hotpath analyzer enforces statically: once the route cache is warm,
// pricing and committing swaps allocates nothing. The warm-up sweep
// touches every tile pair so the kCache misses (the one sanctioned
// allocation-bearing fallback) are all behind us before measuring.
func TestCWMSwapDeltaCommitZeroAlloc(t *testing.T) {
	mesh, g := deltaInstance(t, 4, 4, 10)
	cwm := newTestCWM(t, mesh, g)
	mp := mapping.Identity(g.NumCores())
	occ := mp.Occupants(mesh.NumTiles())
	if _, err := cwm.Reset(mp); err != nil {
		t.Fatal(err)
	}
	n := topology.TileID(mesh.NumTiles())
	for src := topology.TileID(0); src < n; src++ {
		for dst := topology.TileID(0); dst < n; dst++ {
			if src == dst {
				continue
			}
			if _, err := cwm.routers(src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}

	var a, b topology.TileID = 0, 1
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := cwm.SwapDelta(occ, a, b); err != nil {
			t.Fatal(err)
		}
		cwm.Commit(a, b)
		occ[a], occ[b] = occ[b], occ[a]
		a = (a + 1) % n
		b = (b + 3) % n
		if a == b {
			b = (b + 1) % n
		}
	})
	if allocs != 0 {
		t.Fatalf("SwapDelta+Commit steady state allocates %.1f objects/run, want 0", allocs)
	}
}
