package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// mirrorX reflects a mapping across the mesh's vertical axis.
func mirrorX(mesh *topology.Mesh, mp mapping.Mapping) mapping.Mapping {
	out := make(mapping.Mapping, len(mp))
	for c, t := range mp {
		xy := mesh.Coord(t)
		out[c] = mesh.Tile(mesh.W()-1-xy.X, xy.Y)
	}
	return out
}

// mirrorY reflects a mapping across the mesh's horizontal axis.
func mirrorY(mesh *topology.Mesh, mp mapping.Mapping) mapping.Mapping {
	out := make(mapping.Mapping, len(mp))
	for c, t := range mp {
		xy := mesh.Coord(t)
		out[c] = mesh.Tile(xy.X, mesh.H()-1-xy.Y)
	}
	return out
}

func randomTestCDCG(rng *rand.Rand, nc, np int) *model.CDCG {
	g := &model.CDCG{Cores: model.MakeCores(nc)}
	for i := 0; i < np; i++ {
		s := model.CoreID(rng.Intn(nc))
		d := model.CoreID(rng.Intn(nc))
		for d == s {
			d = model.CoreID(rng.Intn(nc))
		}
		g.Packets = append(g.Packets, model.Packet{
			ID: model.PacketID(i), Src: s, Dst: d,
			Compute: int64(rng.Intn(20)), Bits: 1 + int64(rng.Intn(200)),
		})
		if i > 0 && rng.Intn(2) == 0 {
			g.Deps = append(g.Deps, model.Dep{From: model.PacketID(rng.Intn(i)), To: model.PacketID(i)})
		}
	}
	return g
}

// Mirroring a mapping across either mesh axis mirrors every XY route, so
// both the CWM cost and the CDCM schedule (texec, contention, energy) are
// invariant. This is also the property that justifies the exhaustive
// engine's symmetry anchor.
func TestQuickMirrorSymmetryInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(3), 2+rng.Intn(3)
		mesh, err := topology.NewMesh(w, h)
		if err != nil {
			return false
		}
		nc := 2 + rng.Intn(mesh.NumTiles()-1)
		g := randomTestCDCG(rng, nc, 2+rng.Intn(25))
		if g.Validate() != nil {
			return false
		}
		cfg := noc.Default()
		tech := energy.Tech007
		cwm, err := NewCWM(mesh, cfg, tech, g.ToCWG())
		if err != nil {
			return false
		}
		cdcm, err := NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			return false
		}
		mp, err := mapping.Random(rng, nc, mesh.NumTiles())
		if err != nil {
			return false
		}
		baseC, err := cwm.Cost(mp)
		if err != nil {
			return false
		}
		baseM, err := cdcm.Evaluate(mp)
		if err != nil {
			return false
		}
		for _, mir := range []mapping.Mapping{mirrorX(mesh, mp), mirrorY(mesh, mp)} {
			c, err := cwm.Cost(mir)
			if err != nil || c != baseC {
				return false
			}
			m, err := cdcm.Evaluate(mir)
			if err != nil {
				return false
			}
			if m.ExecCycles != baseM.ExecCycles ||
				m.ContentionCycles != baseM.ContentionCycles ||
				m.Total() != baseM.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
