package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
)

// resilienceSetup builds a 3x3 instance with a pinned non-empty fault
// set (0.15/seed 2 generates three failed link pairs on a 3x3).
func resilienceSetup(t *testing.T) (*topology.Mesh, noc.Config, *model.CDCG, *topology.FaultSet) {
	t.Helper()
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := topology.GenerateFaults(mesh, 0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Empty() {
		t.Fatal("fault pin (0.15, seed 2) became empty; pick a different seed")
	}
	rng := rand.New(rand.NewSource(3))
	g := &model.CDCG{Cores: model.MakeCores(6)}
	for i := 0; i < 24; i++ {
		s := model.CoreID(rng.Intn(6))
		d := model.CoreID(rng.Intn(6))
		for d == s {
			d = model.CoreID(rng.Intn(6))
		}
		g.Packets = append(g.Packets, model.Packet{
			ID: model.PacketID(i), Src: s, Dst: d,
			Compute: int64(rng.Intn(12)), Bits: 20 + int64(rng.Intn(200)),
		})
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return mesh, noc.Default(), g, fs
}

// TestResilienceCollapseIdentity pins the scalar/vector bit-identity the
// Pareto engine relies on: Cost(mp) == CollapseWeights · ComponentsInto
// exactly, and the axes and weights are well-formed.
func TestResilienceCollapseIdentity(t *testing.T) {
	mesh, cfg, g, fs := resilienceSetup(t)
	r, err := NewResilience(mesh, cfg, energy.Tech007, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Axes(); !reflect.DeepEqual(got, []string{"total_j", "worst_fault_cy"}) {
		t.Fatalf("axes %v", got)
	}
	w := r.CollapseWeights()
	if len(w) != 2 || w[0] != 1 || w[1] <= 0 {
		t.Fatalf("collapse weights %v", w)
	}
	rng := rand.New(rand.NewSource(9))
	comps := make([]float64, 2)
	for trial := 0; trial < 10; trial++ {
		mp, err := mapping.Random(rng, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := r.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ComponentsInto(mp, comps); err != nil {
			t.Fatal(err)
		}
		if collapsed := search.Collapse(w, comps); cost != collapsed {
			t.Fatalf("Cost %v != Collapse %v (components %v)", cost, collapsed, comps)
		}
		if comps[1] < float64(0) {
			t.Fatalf("negative worst latency %v", comps[1])
		}
	}
}

// TestResilienceCloneDeterministic: clones price identically to the
// original — the property the parallel lanes rely on.
func TestResilienceCloneDeterministic(t *testing.T) {
	mesh, cfg, g, fs := resilienceSetup(t)
	r, err := NewResilience(mesh, cfg, energy.Tech007, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	clone := r.Clone()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		mp, err := mapping.Random(rng, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := clone.Cost(mp)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("clone cost %v != original %v", b, a)
		}
	}
}

// TestResilienceUnreachablePenalty pins the documented penalty: a fault
// set whose single element partitions every mapping scores the scenario
// at UnreachablePenaltyFactor × intact texec.
func TestResilienceUnreachablePenalty(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Failing router 3 partitions nothing by itself — routes avoid it —
	// but any mapping placing a core there is unreachable. Use a failed
	// router and a mapping on top of it.
	fs := topology.NewFaultSet(mesh)
	if err := fs.FailRouter(3); err != nil {
		t.Fatal(err)
	}
	g := &model.CDCG{
		Cores:   model.MakeCores(2),
		Packets: []model.Packet{{ID: 0, Src: 0, Dst: 1, Compute: 2, Bits: 16}},
	}
	r, err := NewResilience(mesh, noc.Default(), energy.Tech007, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.Mapping{0, 3} // core 1 sits on the failed router's tile
	m0, err := r.Intact().Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := r.Score(mp)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Unreachable != 1 {
		t.Fatalf("unreachable count %d", sc.Unreachable)
	}
	want := int64(UnreachablePenaltyFactor) * m0.ExecCycles
	if sc.WorstExecCycles != want {
		t.Fatalf("worst texec %d, want penalty %d", sc.WorstExecCycles, want)
	}
	if sc.Impacts[0].ExecCycles != want || !sc.Impacts[0].Unreachable {
		t.Fatalf("impact %+v", sc.Impacts[0])
	}
	if sc.Score >= 100/float64(UnreachablePenaltyFactor)+1e-9 {
		t.Fatalf("score %v not pulled down by the penalty", sc.Score)
	}
	if len(sc.Recommendations) == 0 {
		t.Fatal("no recommendation for a partitioned mapping")
	}
	// The same penalty must drive the vector components.
	comps := make([]float64, 2)
	if err := r.ComponentsInto(mp, comps); err != nil {
		t.Fatal(err)
	}
	if comps[1] != float64(want) {
		t.Fatalf("component worst latency %v, want %v", comps[1], float64(want))
	}
	// A mapping avoiding the failed tile keeps a perfect score here (the
	// 2x2 loses no connectivity when routes detour around router 3).
	good, err := r.Score(mapping.Mapping{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if good.Unreachable != 0 {
		t.Fatalf("mapping off the failed router still unreachable: %+v", good)
	}
}

// TestResilienceValidation: empty fault sets are rejected by the
// objective and by StrategyResilience.
func TestResilienceValidation(t *testing.T) {
	mesh, cfg, g, _ := resilienceSetup(t)
	if _, err := NewResilience(mesh, cfg, energy.Tech007, g, nil); err == nil {
		t.Fatal("nil fault set accepted")
	}
	if _, err := NewResilience(mesh, cfg, energy.Tech007, g, topology.NewFaultSet(mesh)); err == nil {
		t.Fatal("empty fault set accepted")
	}
	if _, err := Explore(StrategyResilience, mesh, cfg, energy.Tech007, g, Options{Method: MethodSA, Seed: 1, TempSteps: 4}); err == nil {
		t.Fatal("StrategyResilience without faults accepted")
	}
}

// TestExploreResilienceDeterministicAcrossWorkers extends the tentpole
// determinism invariant to the resilience objective: fixed seed, any
// Workers value, bit-identical winner, cost and degradation report.
func TestExploreResilienceDeterministicAcrossWorkers(t *testing.T) {
	mesh, cfg, g, fs := resilienceSetup(t)
	opts := Options{Method: MethodSA, Seed: 5, TempSteps: 6, MovesPerTemp: 10, Restarts: 3, Faults: fs}
	var ref *ExploreResult
	for _, workers := range []int{1, 2, 4} {
		o := opts
		o.Workers = workers
		res, err := Explore(StrategyResilience, mesh, cfg, energy.Tech007, g, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Resilience == nil {
			t.Fatalf("workers=%d: no resilience report", workers)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !exploreEqual(ref, res) {
			t.Fatalf("workers=%d diverged: best %g vs %g", workers, res.Search.BestCost, ref.Search.BestCost)
		}
		if !reflect.DeepEqual(ref.Resilience, res.Resilience) {
			t.Fatalf("workers=%d: resilience report diverged", workers)
		}
	}
}

// TestExploreAttachesResilienceAnyStrategy: a non-empty fault set makes
// every strategy attach a degradation report for its winner without
// changing the search itself; nil faults attach nothing and leave the
// result bit-identical to the historical behaviour.
func TestExploreAttachesResilienceAnyStrategy(t *testing.T) {
	mesh, cfg, g, fs := resilienceSetup(t)
	base := Options{Method: MethodSA, Seed: 7, TempSteps: 6, MovesPerTemp: 10}
	for _, strat := range []Strategy{StrategyCWM, StrategyCDCM} {
		intact, err := Explore(strat, mesh, cfg, energy.Tech007, g, base)
		if err != nil {
			t.Fatal(err)
		}
		if intact.Resilience != nil {
			t.Fatalf("%s: resilience report without faults", strat)
		}
		withFaults := base
		withFaults.Faults = fs
		scored, err := Explore(strat, mesh, cfg, energy.Tech007, g, withFaults)
		if err != nil {
			t.Fatal(err)
		}
		if scored.Resilience == nil {
			t.Fatalf("%s: no resilience report with faults", strat)
		}
		if scored.Resilience.FaultKey != fs.Key() {
			t.Fatalf("%s: report covers %q, want %q", strat, scored.Resilience.FaultKey, fs.Key())
		}
		// Scoring is observation only: the search outcome is untouched.
		if !exploreEqual(intact, scored) {
			t.Fatalf("%s: attaching a fault set changed the search outcome", strat)
		}
	}
}

// TestExploreParetoResilienceAxes: StrategyPareto with faults explores
// the resilience axes and returns a front over them.
func TestExploreParetoResilienceAxes(t *testing.T) {
	mesh, cfg, g, fs := resilienceSetup(t)
	opts := Options{Seed: 3, TempSteps: 5, MovesPerTemp: 8, Restarts: 2, FrontSize: 6, Faults: fs}
	res, err := Explore(StrategyPareto, mesh, cfg, energy.Tech007, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Front == nil || len(res.Front.Points) == 0 {
		t.Fatal("empty resilience front")
	}
	if !reflect.DeepEqual(res.Front.Axes, []string{"total_j", "worst_fault_cy"}) {
		t.Fatalf("front axes %v", res.Front.Axes)
	}
	if res.Resilience == nil {
		t.Fatal("pareto resilience run without degradation report")
	}
}

// TestNewCDCMFaultsNilMatchesNewCDCM pins the evaluator-level nil-fault
// bit-identity.
func TestNewCDCMFaultsNilMatchesNewCDCM(t *testing.T) {
	mesh, cfg, g, _ := resilienceSetup(t)
	plain, err := NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	faultless, err := NewCDCMFaults(mesh, cfg, energy.Tech007, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		mp, err := mapping.Random(rng, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		a, err := plain.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := faultless.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("nil-fault CDCM metrics diverged: %+v vs %+v", b, a)
		}
	}
}

// TestResilienceCostUnreachableIsNotAnError: the search objective must
// absorb partition scenarios as penalties (so SA can walk through them),
// while genuine errors still surface.
func TestResilienceCostUnreachableIsNotAnError(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs := topology.NewFaultSet(mesh)
	if err := fs.FailRouter(3); err != nil {
		t.Fatal(err)
	}
	g := &model.CDCG{
		Cores:   model.MakeCores(2),
		Packets: []model.Packet{{ID: 0, Src: 0, Dst: 1, Compute: 2, Bits: 16}},
	}
	r, err := NewResilience(mesh, noc.Default(), energy.Tech007, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Cost(mapping.Mapping{0, 3}); err != nil {
		t.Fatalf("partition scenario must be a penalty, got error %v", err)
	}
	if _, err := r.Cost(mapping.Mapping{0}); err == nil {
		t.Fatal("short mapping accepted")
	} else if errors.Is(err, topology.ErrUnreachable) {
		t.Fatalf("validation error mislabelled unreachable: %v", err)
	}
}
