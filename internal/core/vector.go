package core

import (
	"fmt"

	"repro/internal/mapping"
)

// The vector-objective view of the two model evaluators: the same pricing
// machinery exposed per component instead of collapsed into one scalar
// (search.VectorObjective). The scalar Cost of each evaluator is the
// weighted collapse of its vector — bit for bit, pinned by tests — so the
// scalar engines, goldens and delta paths are untouched by the vector
// seam; only the Pareto engine reads the extra axes.
//
// Axis names are shared across models where the semantics line up:
// "dynamic_j" is EDyNoC in joules on both models, "latency_cy" is the
// timing axis in cycle units (CDCM: simulated texec including contention;
// CWM: the uncontended bit·cycle hop aggregate — the best a volume-only
// model can say about time), and "static_j" is EStNoC, which only CDCM
// can price because it requires texec (the paper's point).

var (
	cwmAxes    = []string{"dynamic_j", "latency_cy"}
	cwmWeights = []float64{1, 0}

	cdcmAxes    = []string{"dynamic_j", "static_j", "latency_cy"}
	cdcmWeights = []float64{1, 1, 0}
)

// Axes implements search.VectorObjective: dynamic energy and the
// uncontended hop-latency aggregate.
//nocvet:noalloc
func (c *CWM) Axes() []string { return cwmAxes }

// CollapseWeights implements search.VectorObjective: CWM's scalar cost is
// EDyNoC alone — the model is blind to timing, so the latency axis
// carries weight zero in the collapse.
//nocvet:noalloc
func (c *CWM) CollapseWeights() []float64 { return cwmWeights }

// ComponentsInto implements search.VectorObjective. Component 0 is
// EDyNoC in joules, folded from the identical integer traffic aggregates
// as Cost (bit-identical by construction). Component 1 is the uncontended
// hop-latency aggregate in bit·cycles: every bit pays tr per router
// traversed, tl per planar inter-tile link and the TSV per-flit time per
// vertical link —
//
//	Σ w·K·tr + (Σ w·(K−1) − Σ w·V)·tl + Σ w·V·tTSV
//
// — the timing information a volume-only model can extract from a
// placement (no contention, which only the CDCM simulator sees). Both
// components fall out of the one aggregate pass Cost already does, so the
// vector view prices at full-Cost speed and stays allocation-free.
//
// The hot-path contract of search.VectorObjective applies: mp must be
// structurally valid and injective.
//nocvet:noalloc
func (c *CWM) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if len(dst) < len(cwmAxes) {
		return fmt.Errorf("core: component buffer holds %d axes, CWM has %d", len(dst), len(cwmAxes))
	}
	if len(mp) != c.G.NumCores() {
		return fmt.Errorf("core: mapping covers %d cores, CWG has %d", len(mp), c.G.NumCores())
	}
	var rb, vb int64
	for _, e := range c.G.Edges {
		k, err := c.routers(mp[e.Src], mp[e.Dst])
		if err != nil {
			return err
		}
		rb += e.Bits * int64(k)
		if !c.flat {
			vb += e.Bits * int64(c.vCache[int(mp[e.Src])*c.numTiles+int(mp[e.Dst])])
		}
	}
	dst[0] = c.Tech.DynamicFromTraffic3D(rb, rb-c.totalBits, vb, c.coreBits)
	dst[1] = float64(rb)*float64(c.Cfg.RoutingCycles) +
		float64(rb-c.totalBits-vb)*float64(c.Cfg.LinkCycles) +
		float64(vb)*float64(c.Cfg.TSVCycles())
	return nil
}

// Components prices mp on CDCM's three axes: EDyNoC and EStNoC in joules
// and texec in cycles.
func (m Metrics) Components() []float64 {
	return []float64{m.Energy.Dynamic, m.Energy.Static, float64(m.ExecCycles)}
}

// Axes implements search.VectorObjective: dynamic energy, static energy
// and simulated execution time.
func (c *CDCM) Axes() []string { return cdcmAxes }

// CollapseWeights implements search.VectorObjective: CDCM's scalar cost
// is ENoC = EDyNoC + EStNoC (equation (10)); texec enters the collapse
// only through the static term, so the explicit latency axis carries
// weight zero.
func (c *CDCM) CollapseWeights() []float64 { return cdcmWeights }

// ComponentsInto implements search.VectorObjective: one simulator run on
// the evaluator's scratch, split into (EDyNoC, EStNoC, texec). The
// collapse 1·dynamic + 1·static + 0·texec accumulates in exactly the
// order Breakdown.Total computes ENoC, so Cost equals the collapsed
// vector bit for bit.
func (c *CDCM) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if len(dst) < len(cdcmAxes) {
		return fmt.Errorf("core: component buffer holds %d axes, CDCM has %d", len(dst), len(cdcmAxes))
	}
	m, err := c.Evaluate(mp)
	if err != nil {
		return err
	}
	dst[0] = m.Energy.Dynamic
	dst[1] = m.Energy.Static
	dst[2] = float64(m.ExecCycles)
	return nil
}
