// Package obs is the daemon's stdlib-only observability layer: an
// atomic metrics registry with a Prometheus text-format exposition
// writer, structured logging built on log/slog, and HTTP middleware
// carrying request IDs and access logs.
//
// The package deliberately has no dependency outside the standard
// library and none on the rest of the repository, so every layer — the
// service, the search engines via core.Options.EvalCounter, the nocd
// daemon — can depend on it without cycles. Metric updates on the
// evaluation hot path are single atomic operations (Counter.Add,
// Histogram.Observe), annotated //nocvet:noalloc and pinned by
// testing.AllocsPerRun, so instrumentation never perturbs the
// allocation-free evaluator contract.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric backed by one atomic
// word. The zero value is ready to use; a Counter obtained from a
// Registry is additionally rendered by WritePrometheus.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Hot-path safe: one atomic add, no
// allocation, no lock.
//
//nocvet:noalloc
func (c *Counter) Add(n int64) {
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//nocvet:noalloc
func (c *Counter) Inc() {
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, backed by one atomic word.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//nocvet:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
//
//nocvet:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
//
//nocvet:noalloc
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
//
//nocvet:noalloc
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: counts per bucket, a total
// count and a running sum, all maintained with atomic operations so
// Observe is safe on the hot path. Bucket bounds are upper-inclusive
// like Prometheus ("le"), with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound; +Inf is count − Σbuckets
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultDurationBuckets is a spread suitable for job latencies in
// seconds, from milliseconds to a minute.
var DefaultDurationBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// NewHistogram builds an unregistered histogram over the given bucket
// upper bounds, which must be strictly increasing and non-empty.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)),
	}
}

// Observe records one value. Hot-path safe: a bounded scan over the
// bucket bounds plus three atomic operations, no allocation, no lock.
//
//nocvet:noalloc
func (h *Histogram) Observe(v float64) {
	for i := range h.bounds {
		if v <= h.bounds[i] {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric family types, as rendered on the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one registered metric name: its metadata plus either a set
// of label-keyed children or a read-at-scrape function.
type family struct {
	name     string
	help     string
	typ      string
	labelKey string // label name for vec families, "" otherwise

	read func() float64 // CounterFunc/GaugeFunc families

	mu       sync.Mutex
	keys     []string // child label values in creation order
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All registration methods panic on duplicate
// or syntactically invalid names — wiring errors, caught at startup.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, typ, labelKey string, read func() float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if labelKey != "" && !validName(labelKey) {
		panic("obs: invalid label name " + strconv.Quote(labelKey))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey, read: read}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, "", nil)
	return f.counter("")
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, "", nil)
	return f.gauge("")
}

// CounterFunc registers a counter whose value is read at scrape time.
// fn runs during WritePrometheus and must not call back into the
// registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, "", fn)
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, "", fn)
}

// Histogram registers and returns an unlabeled histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, typeHistogram, "", nil)
	return f.histogram("", bounds)
}

// CounterVec is a family of counters split by one label.
type CounterVec struct{ f *family }

// CounterVec registers a counter family keyed by the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic("obs: counter vec needs a label name")
	}
	return &CounterVec{f: r.register(name, help, typeCounter, label, nil)}
}

// With returns the counter for one label value, creating it on first
// use. The returned Counter is cached — hold on to it near hot paths
// instead of calling With per update.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.counter(labelValue) }

// GaugeVec is a family of gauges split by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family keyed by the given label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if label == "" {
		panic("obs: gauge vec needs a label name")
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, label, nil)}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.gauge(labelValue) }

// HistogramVec is a family of histograms split by one label.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a histogram family keyed by the given label
// name, all children sharing one set of bucket bounds.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if label == "" {
		panic("obs: histogram vec needs a label name")
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, label, nil), bounds: bounds}
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.histogram(labelValue, v.bounds) }

func (f *family) counter(key string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counters == nil {
		f.counters = make(map[string]*Counter)
	}
	if c, ok := f.counters[key]; ok {
		return c
	}
	c := &Counter{}
	f.counters[key] = c
	f.keys = append(f.keys, key)
	return c
}

func (f *family) gauge(key string) *Gauge {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gauges == nil {
		f.gauges = make(map[string]*Gauge)
	}
	if g, ok := f.gauges[key]; ok {
		return g
	}
	g := &Gauge{}
	f.gauges[key] = g
	f.keys = append(f.keys, key)
	return g
}

func (f *family) histogram(key string, bounds []float64) *Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hists == nil {
		f.hists = make(map[string]*Histogram)
	}
	if h, ok := f.hists[key]; ok {
		return h
	}
	h := NewHistogram(bounds)
	f.hists[key] = h
	f.keys = append(f.keys, key)
	return h
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children sorted by label value, so the
// output is deterministic for a fixed metric state. Scrape-time
// functions (CounterFunc/GaugeFunc) are evaluated here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	// Render into a buffer first: no family lock is held while writing
	// to w (which is an http.ResponseWriter under /metrics).
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.read != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.read()))
		return
	}
	f.mu.Lock()
	keys := make([]string, len(f.keys))
	copy(keys, f.keys)
	f.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		f.mu.Lock()
		c, g, h := f.counters[key], f.gauges[key], f.hists[key]
		f.mu.Unlock()
		switch {
		case c != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, f.labels(key), formatValue(float64(c.Value())))
		case g != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, f.labels(key), formatValue(float64(g.Value())))
		case h != nil:
			f.renderHistogram(b, key, h)
		}
	}
}

// renderHistogram writes the cumulative _bucket series plus _sum and
// _count for one child.
func (f *family) renderHistogram(b *strings.Builder, key string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.bucketLabels(key, formatValue(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.bucketLabels(key, "+Inf"), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labels(key), formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labels(key), h.Count())
}

// labels renders the label set for one child ("" for unlabeled).
func (f *family) labels(key string) string {
	if f.labelKey == "" {
		return ""
	}
	return "{" + f.labelKey + `="` + escapeLabel(key) + `"}`
}

// bucketLabels renders the label set of a _bucket sample, appending le.
func (f *family) bucketLabels(key, le string) string {
	if f.labelKey == "" {
		return `{le="` + le + `"}`
	}
	return "{" + f.labelKey + `="` + escapeLabel(key) + `",le="` + le + `"}`
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
