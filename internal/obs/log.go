package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader is the header request IDs arrive on and are echoed
// back on.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied request IDs so a
// hostile header cannot bloat logs and job records.
const maxRequestIDLen = 128

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID draws a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a constant ID is still a valid (if useless) ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewLogger builds a slog.Logger writing to w. level is one of
// "debug", "info", "warn", "error"; format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the nil-config
// default of layers that log unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// HTTPOptions configures WrapHTTP.
type HTTPOptions struct {
	// Logger receives one access-log line per request (nil = no access
	// logs).
	Logger *slog.Logger
	// Now is the clock access-log durations are measured on (nil =
	// time.Now). The service layer passes its Config.Now seam here so
	// fake-clocked tests see deterministic durations.
	Now func() time.Time
	// GenID mints request IDs for requests that arrive without an
	// X-Request-ID header (nil = NewRequestID). Tests inject a
	// deterministic generator.
	GenID func() string
	// Requests, when non-nil, counts completed requests by status code.
	Requests *CounterVec
}

// statusWriter records the response status and size, forwarding Flush
// to the underlying writer when it supports it so SSE streams keep
// flushing through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// WrapHTTP wraps an http.Handler with the observability middleware:
// it accepts an X-Request-ID header (or mints one), stores the ID in
// the request context, echoes it on the response, counts the request
// by status code, and emits one structured access-log line with
// method, path, status, response size, duration and request ID.
func WrapHTTP(next http.Handler, o HTTPOptions) http.Handler {
	now := o.Now
	if now == nil {
		now = time.Now
	}
	genID := o.GenID
	if genID == nil {
		genID = NewRequestID
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = genID()
		}
		w.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(WithRequestID(r.Context(), rid))

		sw := &statusWriter{ResponseWriter: w}
		start := now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if o.Requests != nil {
			o.Requests.With(strconv.Itoa(sw.status)).Inc()
		}
		if o.Logger != nil {
			o.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("duration_ms", float64(now().Sub(start).Nanoseconds())/1e6),
				slog.String("request_id", rid),
			)
		}
	})
}
