package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 0.7, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 111.2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestWritePrometheusGolden pins the full exposition rendering:
// family sorting, label sorting and escaping, scrape-time functions,
// cumulative histogram buckets with +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("test_jobs_total", "jobs handled")
	jobs.Add(3)
	depth := r.Gauge("test_depth", "queue depth")
	depth.Set(2)
	r.GaugeFunc("test_cache_entries", "cache entries", func() float64 { return 7 })
	ev := r.CounterVec("test_evals_total", "evaluations by engine", "engine")
	ev.With("SA").Add(10)
	ev.With("ES").Add(4)
	ev.With(`we"ird\`).Add(1)
	h := r.HistogramVec("test_duration_seconds", "latency by model", "model", []float64{1, 5})
	h.With("CWM").Observe(0.5)
	h.With("CWM").Observe(4)
	h.With("CWM").Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_cache_entries cache entries
# TYPE test_cache_entries gauge
test_cache_entries 7
# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth 2
# HELP test_duration_seconds latency by model
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{model="CWM",le="1"} 1
test_duration_seconds_bucket{model="CWM",le="5"} 2
test_duration_seconds_bucket{model="CWM",le="+Inf"} 3
test_duration_seconds_sum{model="CWM"} 103.5
test_duration_seconds_count{model="CWM"} 3
# HELP test_evals_total evaluations by engine
# TYPE test_evals_total counter
test_evals_total{engine="ES"} 4
test_evals_total{engine="SA"} 10
test_evals_total{engine="we\"ird\\"} 1
# HELP test_jobs_total jobs handled
# TYPE test_jobs_total counter
test_jobs_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_x_total", "", "k")
	for _, k := range []string{"c", "a", "b"} {
		v.With(k).Inc()
	}
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, b.String(), first)
		}
	}
	if !strings.Contains(first, `test_x_total{k="a"} 1`) {
		t.Fatalf("missing sorted child:\n%s", first)
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for _, fn := range []func(){
		func() { r.Counter("ok_total", "") },        // duplicate
		func() { r.Counter("9bad", "") },            // leading digit
		func() { r.Counter("bad name", "") },        // space
		func() { r.Counter("", "") },                // empty
		func() { r.CounterVec("v_total", "", "") },  // missing label
		func() { r.CounterVec("v2_total", "", "l abel") }, // bad label
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("registration did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestConcurrentUpdates exercises the atomic paths under the race
// detector; values must still add up exactly.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "")
	v := r.CounterVec("test_v_total", "", "k")
	h := r.Histogram("test_h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(0.5)
			}
		}()
	}
	// Concurrent scrapes must not race with updates.
	for i := 0; i < 4; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || v.With("a").Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d v=%d h=%d", c.Value(), v.With("a").Value(), h.Count())
	}
	if got, want := h.Sum(), 4000.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

// TestMetricUpdatesZeroAlloc pins the hot-path contract the hotpath
// analyzer enforces statically: Counter.Add/Inc, Gauge ops and
// Histogram.Observe never allocate.
func TestMetricUpdatesZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefaultDurationBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(0.42)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate %.1f objects/run, want 0", allocs)
	}
}
