package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	if s := b.String(); strings.Contains(s, "dropped") || !strings.Contains(s, "kept") {
		t.Fatalf("warn-level filtering broken:\n%s", s)
	}

	b.Reset()
	lg, err = NewLogger(&b, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	var line map[string]any
	if err := json.Unmarshal(b.Bytes(), &line); err != nil {
		t.Fatalf("json log line: %v\n%s", err, b.String())
	}
	if line["msg"] != "hello" || line["k"] != float64(1) {
		t.Fatalf("json fields: %v", line)
	}

	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	// Empty strings select the defaults.
	if _, err := NewLogger(&b, "", ""); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID = %q", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty context RequestID = %q", got)
	}
	id := NewRequestID()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("NewRequestID = %q, want 16 hex chars", id)
	}
	if NewRequestID() == id {
		t.Fatal("two generated request IDs collided")
	}
}

func TestWrapHTTPRequestID(t *testing.T) {
	var seen string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	})
	h := WrapHTTP(inner, HTTPOptions{GenID: func() string { return "generated1" }})

	// Supplied ID is kept, stored in context, echoed on the response.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-id-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-id-7" {
		t.Fatalf("context request ID = %q, want client-id-7", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-7" {
		t.Fatalf("echoed header = %q", got)
	}
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}

	// Missing ID: one is minted.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen != "generated1" || rec.Header().Get(RequestIDHeader) != "generated1" {
		t.Fatalf("generated ID not used: ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// Oversized IDs are replaced, not stored.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("a", 500))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "generated1" {
		t.Fatalf("oversized ID kept: %q", seen)
	}
}

// TestWrapHTTPAccessLog pins the access-log field schema with an
// injected step clock: method, path, status, bytes, duration_ms,
// request_id.
func TestWrapHTTPAccessLog(t *testing.T) {
	var b bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&b, nil))
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * 250 * time.Millisecond)
	}
	reg := NewRegistry()
	requests := reg.CounterVec("test_http_requests_total", "", "code")
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	})
	h := WrapHTTP(inner, HTTPOptions{Logger: lg, Now: now, GenID: func() string { return "rid1" }, Requests: requests})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-1", nil))

	var line map[string]any
	if err := json.Unmarshal(b.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, b.String())
	}
	want := map[string]any{
		"msg":        "http request",
		"method":     "GET",
		"path":       "/v1/jobs/j-1",
		"status":     float64(404),
		"bytes":      float64(4),
		"request_id": "rid1",
		// Two now() calls, 250ms apart on the step clock.
		"duration_ms": float64(250),
	}
	for k, v := range want {
		if line[k] != v {
			t.Errorf("access log %s = %v, want %v", k, line[k], v)
		}
	}
	if got := requests.With("404").Value(); got != 1 {
		t.Errorf("request counter 404 = %d, want 1", got)
	}
}

// flushRecorder tracks whether Flush reached the underlying writer.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed bool
}

func (f *flushRecorder) Flush() { f.flushed = true }

func TestStatusWriterFlushPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware writer lost http.Flusher")
		}
		w.WriteHeader(http.StatusOK)
		fl.Flush()
	})
	h := WrapHTTP(inner, HTTPOptions{})
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if !rec.flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}
