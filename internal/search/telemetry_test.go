package search

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/mapping"
)

// streamKey identifies one snapshot stream: each (engine, restart) pair
// is emitted sequentially from a single worker lane, so ordering
// invariants hold per stream even for the parallel engines.
type streamKey struct {
	engine  string
	restart int
}

// collectTelemetry runs every engine over the shared test problem plus
// the pareto engine over the vector test problem, gathering all
// snapshots grouped first by runner (each Run() is its own telemetry
// universe) and then by stream.
func collectTelemetry(t *testing.T) map[string]map[streamKey][]Progress {
	t.Helper()
	byRunner := map[string]map[streamKey][]Progress{}
	collect := func(runner string) (ProgressFunc, *sync.Mutex) {
		streams := map[streamKey][]Progress{}
		byRunner[runner] = streams
		var mu sync.Mutex
		return func(pr Progress) {
			mu.Lock()
			k := streamKey{pr.Engine, pr.Restart}
			streams[k] = append(streams[k], pr)
			mu.Unlock()
		}, &mu
	}
	// 9P6 placements: large enough that the exhaustive engines cross
	// their 4096-evaluation emission stride several times.
	p, _ := testProblem(t, 3, 3, 6)
	for name := range engines(p, nil, nil) {
		prog, _ := collect(name)
		if _, err := engines(p, nil, prog)[name].Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	vp, _ := testVecProblem(t, 3, 3, 7)
	pe := paretoEngine(vp)
	prog, _ := collect("pareto")
	pe.OnProgress = prog
	if _, err := pe.Run(); err != nil {
		t.Fatalf("pareto: %v", err)
	}
	return byRunner
}

// TestTelemetryCountersMonotonicAndBounded pins the accept/reject
// accounting contract: within every stream the counters only grow, and
// a walk never decides more moves than it priced.
func TestTelemetryCountersMonotonicAndBounded(t *testing.T) {
	byRunner := collectTelemetry(t)
	engines := map[string]bool{}
	for runner, streams := range byRunner {
		for key, snaps := range streams {
			engines[key.engine] = true
			var prev Progress
			for i, pr := range snaps {
				if pr.Accepted < 0 || pr.Rejected < 0 {
					t.Fatalf("%s %v snapshot %d: negative counter %+v", runner, key, i, pr)
				}
				if pr.Accepted+pr.Rejected > pr.Evaluations {
					t.Fatalf("%s %v snapshot %d: accepted+rejected %d > evaluations %d",
						runner, key, i, pr.Accepted+pr.Rejected, pr.Evaluations)
				}
				if i > 0 && (pr.Accepted < prev.Accepted || pr.Rejected < prev.Rejected ||
					pr.Evaluations < prev.Evaluations) {
					t.Fatalf("%s %v snapshot %d went backwards: %+v after %+v", runner, key, i, pr, prev)
				}
				prev = pr
			}
			last := snaps[len(snaps)-1]
			if last.Accepted+last.Rejected == 0 {
				t.Errorf("%s %v: no move decisions recorded in %d snapshots", runner, key, len(snaps))
			}
		}
	}
	for _, want := range []string{"SA", "ES", "random", "hill", "tabu", "pareto"} {
		if !engines[want] {
			t.Errorf("engine %s emitted no telemetry", want)
		}
	}
}

// TestTelemetryDeterministic pins that two identical runs produce
// byte-identical snapshot streams: telemetry is part of the
// deterministic surface, not a best-effort side channel.
func TestTelemetryDeterministic(t *testing.T) {
	first := collectTelemetry(t)
	second := collectTelemetry(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("telemetry streams differ between identical runs")
	}
}

// TestTelemetryCallbackDoesNotChangeResult pins the observational-only
// contract: attaching a progress callback must not perturb the walk.
func TestTelemetryCallbackDoesNotChangeResult(t *testing.T) {
	p, _ := testProblem(t, 3, 2, 4)
	sink := func(Progress) {}
	for name := range engines(p, nil, nil) {
		bare, err := engines(p, nil, nil)[name].Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		observed, err := engines(p, nil, sink)[name].Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bare.BestCost != observed.BestCost || bare.Evaluations != observed.Evaluations ||
			!mapping.Equal(bare.Best, observed.Best) {
			t.Errorf("%s: callback changed the walk: %+v vs %+v", name, bare, observed)
		}
	}
}
