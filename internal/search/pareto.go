package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/par"
	"repro/internal/topology"
)

// ParetoSA approximates the Pareto front of a VectorObjective with
// archived, weight-swept simulated annealing: Walks independent SA walks
// run concurrently, each optimising a different scalarisation of the
// component vector, and every evaluated candidate — accepted or not — is
// offered to a per-walk dominance archive. The per-walk archives merge in
// walk order into the returned front.
//
// The first K walks (K = number of axes) optimise one pure axis each, so
// the front always probes the extremes; later walks draw their weight
// vector from the walk RNG, filling in the middle. Components are
// normalised by the walk's starting point before weighting, so axes with
// picojoule and kilocycle magnitudes trade off on comparable scales.
//
// Determinism follows the MultiAnnealer idiom: walk i seeds its RNG with
// Seed+i, walks are distributed over a bounded worker pool with one
// objective instance per worker lane, and both the per-walk archives and
// the merge are order-independent for equal component vectors (see
// Archive) — so for a fixed Seed and Walks the front is bit-identical
// for every Workers value, including Workers == 1.
type ParetoSA struct {
	// Problem describes the instance. Problem.Obj must implement
	// VectorObjective (as must every objective built by NewObjective).
	Problem Problem
	// Seed makes the run reproducible; walk i uses Seed + int64(i).
	Seed int64
	// Initial, when non-nil, replaces walk 0's random starting mapping —
	// the warm-start seam (mapping.SeedGreedy plugs in here). Other walks
	// keep random starts for diversity.
	Initial mapping.Mapping
	// InitialTemp, Alpha, MovesPerTemp, TempSteps and StallSteps tune
	// each walk's annealing schedule exactly as on Annealer (zero values
	// take the same defaults). Walks do not reheat: escaping a basin is
	// the job of the other walks' different scalarisations.
	InitialTemp  float64
	Alpha        float64
	MovesPerTemp int
	TempSteps    int
	StallSteps   int
	// Walks is the number of independent weight-swept walks (0 = one per
	// axis plus four interior weightings). Results depend on Walks but
	// never on Workers.
	Walks int
	// FrontSize bounds the returned front and each walk's archive;
	// overflow evicts the most crowded point (0 = DefaultFrontSize).
	FrontSize int
	// Workers bounds the number of concurrent walks (0 = 1).
	Workers int
	// NewObjective supplies a private objective per worker lane; see
	// ObjectiveFactory. Required when the objective is stateful (both
	// core evaluators are). Each built objective must implement
	// VectorObjective.
	NewObjective ObjectiveFactory
	// Ctx, when non-nil, makes the run cancellable exactly like
	// Annealer.Ctx; the nil path is bit-identical.
	Ctx context.Context
	// OnProgress, when non-nil, receives per-walk snapshots with Restart
	// set to the walk index and BestCost to the walk's best scalar
	// collapse — concurrently when Workers > 1, so the callback must be
	// safe for concurrent use.
	OnProgress ProgressFunc
}

// DefaultFrontSize bounds the front when ParetoSA.FrontSize is zero:
// large enough to resolve the energy×latency trade-off curves of the
// paper's instances, small enough that crowding pruning keeps archive
// maintenance off the critical path.
const DefaultFrontSize = 32

// paretoWalk is one walk's contribution, merged in walk order.
type paretoWalk struct {
	archive     *Archive
	evaluations int64
	// exactEvals / surrogateEvals split evaluations by the tier that
	// priced them; see Result. Without a surrogate every evaluation is
	// exact.
	exactEvals     int64
	surrogateEvals int64
	initialCost    float64
}

// vectorObjective extracts the VectorObjective view of obj, which the
// front engine requires.
func vectorObjective(obj Objective) (VectorObjective, error) {
	v, ok := obj.(VectorObjective)
	if !ok {
		return nil, fmt.Errorf("search: pareto engine needs a VectorObjective, got %T", obj)
	}
	return v, nil
}

// Run executes the walks and merges their archives into the front.
func (e *ParetoSA) Run() (*FrontResult, error) {
	if err := e.Problem.validate(); err != nil {
		return nil, err
	}
	if err := pollCtx(e.Ctx); err != nil {
		return nil, err
	}
	shared, err := vectorObjective(e.Problem.Obj)
	if err != nil {
		return nil, err
	}
	axes := shared.Axes()
	k := len(axes)
	if k == 0 {
		return nil, fmt.Errorf("search: vector objective reports no axes")
	}
	walks := e.Walks
	if walks == 0 {
		walks = k + 4
	}
	if walks < 0 {
		return nil, fmt.Errorf("search: %d walks", walks)
	}
	frontSize := e.FrontSize
	if frontSize == 0 {
		frontSize = DefaultFrontSize
	}
	if frontSize < 0 {
		return nil, fmt.Errorf("search: front size %d", frontSize)
	}
	workers := par.Workers(e.Workers)
	objs, err := perWorkerObjectives(min(workers, walks), e.Problem.Obj, e.NewObjective)
	if err != nil {
		return nil, err
	}
	vobjs := make([]VectorObjective, len(objs))
	for i, obj := range objs {
		if vobjs[i], err = vectorObjective(obj); err != nil {
			return nil, err
		}
	}

	results := make([]*paretoWalk, walks)
	err = par.ForEachWorkerCtx(e.Ctx, walks, workers, func(w, i int) error {
		res, err := e.walk(i, vobjs[w], k, frontSize)
		if err != nil {
			return fmt.Errorf("search: pareto walk %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	front := &FrontResult{
		Axes:    axes,
		Weights: shared.CollapseWeights(),
	}
	merged := NewArchive(frontSize)
	for i, r := range results {
		if i == 0 {
			front.InitialCost = r.initialCost
		}
		front.Evaluations += r.evaluations
		front.ExactEvals += r.exactEvals
		front.SurrogateEvals += r.surrogateEvals
		front.Improvements += r.archive.Inserted()
		for _, p := range r.archive.Points() {
			merged.OfferPoint(p)
		}
	}
	front.Points = merged.Points()
	return front, nil
}

// walkWeights returns walk i's scalarisation weights over k axes: pure
// axis weights for the first k walks, then normalised draws from the
// walk RNG. The draws happen before the walk touches the RNG for
// anything else, so a walk's weights depend only on (Seed, i, k).
func walkWeights(rng *rand.Rand, i, k int) []float64 {
	w := make([]float64, k)
	if i < k {
		w[i] = 1
		return w
	}
	var sum float64
	for ax := range w {
		// 1-Float64 is in (0,1]: no all-zero vector, every axis retains
		// at least infinitesimal pressure.
		w[ax] = 1 - rng.Float64()
		sum += w[ax]
	}
	for ax := range w {
		w[ax] /= sum
	}
	return w
}

// walk runs one weight-swept annealing walk, offering every evaluated
// candidate to a fresh archive.
func (e *ParetoSA) walk(i int, obj VectorObjective, k, frontSize int) (*paretoWalk, error) {
	rng := rand.New(rand.NewSource(e.Seed + int64(i)))
	weights := walkWeights(rng, i, k)
	collapse := obj.CollapseWeights()
	numTiles := e.Problem.Mesh.NumTiles()

	cur := e.Initial
	if i != 0 || cur == nil {
		var err error
		cur, err = mapping.Random(rng, e.Problem.NumCores, numTiles)
		if err != nil {
			return nil, err
		}
	} else {
		if len(cur) != e.Problem.NumCores {
			return nil, fmt.Errorf("initial mapping has %d cores, want %d", len(cur), e.Problem.NumCores)
		}
		if err := cur.Validate(numTiles); err != nil {
			return nil, err
		}
		cur = cur.Clone()
	}
	occ := cur.Occupants(numTiles)

	// Tier-B surrogate (see TieredObjective): the Metropolis walk prices
	// candidates on the surrogate's vector view, and only accepted moves
	// pay an exact component pricing — which is also the only pricing
	// ever offered to the archive, so every front point is exact.
	var sobj VectorObjective
	if s := surrogateOf(obj); s != nil {
		if sv, ok := s.(VectorObjective); ok {
			sobj = sv
		}
	}
	useSurr := sobj != nil

	res := &paretoWalk{archive: NewArchive(frontSize)}
	comps := make([]float64, k)
	if err := obj.ComponentsInto(cur, comps); err != nil {
		return nil, err
	}
	res.evaluations++
	res.exactEvals++
	res.initialCost = Collapse(collapse, comps)

	// Normalise by the starting point so the axes trade off on comparable
	// scales whatever their units; a zero start component falls back to
	// the raw scale.
	norm := make([]float64, k)
	for ax := range norm {
		norm[ax] = math.Abs(comps[ax])
		if norm[ax] == 0 {
			norm[ax] = 1
		}
	}
	scalar := func(c []float64) float64 {
		var s float64
		for ax, w := range weights {
			s += w * c[ax] / norm[ax]
		}
		return s
	}

	// The walk's tracked scalar lives in whichever domain prices the
	// Metropolis candidates: exact components normally, surrogate
	// components under tier B (same norm — the surrogate approximates the
	// exact axes, so the starting-point scales transfer). The archive and
	// bestCollapse always see exact components only.
	scomps := comps
	if useSurr {
		scomps = make([]float64, k)
		if err := sobj.ComponentsInto(cur, scomps); err != nil {
			return nil, err
		}
	}
	cost := scalar(scomps)
	bestScalar := cost
	bestCollapse := res.initialCost
	res.archive.Offer(cur, comps, res.initialCost)

	// A 1-tile mesh admits exactly one mapping; see Annealer.Run.
	if numTiles < 2 {
		return res, nil
	}

	alpha := e.Alpha
	if alpha == 0 {
		alpha = 0.95
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("alpha %g outside (0,1)", alpha)
	}
	moves := e.MovesPerTemp
	if moves == 0 {
		moves = 10 * numTiles
	}
	steps := e.TempSteps
	if steps == 0 {
		steps = 100
	}
	stall := e.StallSteps
	if stall == 0 {
		stall = 20
	}

	propose := func() (ta, tb topology.TileID) {
		for {
			ta = cur[rng.Intn(len(cur))]
			tb = topology.TileID(rng.Intn(numTiles))
			if ta != tb {
				return ta, tb
			}
		}
	}

	// price applies the swap, prices the swapped mapping on every axis,
	// offers it to the archive, and undoes the swap — the front engine
	// has no incremental path (components must be exact evaluator
	// output, never accumulated deltas), so it always full-prices. Under
	// the tier-B surrogate, pricing runs on the surrogate's vector view
	// and nothing is offered here: only accepted moves are exact-priced
	// (below), and only exact components ever reach the archive.
	price := func(ta, tb topology.TileID) (float64, error) {
		mapping.SwapTiles(cur, occ, ta, tb)
		if useSurr {
			err := sobj.ComponentsInto(cur, scomps)
			mapping.SwapTiles(cur, occ, ta, tb) // undo
			return scalar(scomps), err
		}
		err := obj.ComponentsInto(cur, comps)
		if err == nil {
			res.archive.Offer(cur, comps, Collapse(collapse, comps))
		}
		mapping.SwapTiles(cur, occ, ta, tb) // undo
		return scalar(comps), err
	}
	// countEval attributes one priced candidate to the tier that priced
	// it, mirroring Annealer.Run.
	countEval := func() {
		res.evaluations++
		if useSurr {
			res.surrogateEvals++
		} else {
			res.exactEvals++
		}
	}

	temp := e.InitialTemp
	if temp <= 0 {
		// Calibration pass, mirroring Annealer: T0 accepts an average
		// degradation of the walk scalar with probability ~0.9.
		var sum float64
		var n int
		for s := 0; s < 40; s++ {
			if e.Ctx != nil && res.evaluations%pollEvery == 0 {
				if err := pollCtx(e.Ctx); err != nil {
					return nil, err
				}
			}
			ta, tb := propose()
			c, err := price(ta, tb)
			if err != nil {
				return nil, err
			}
			countEval()
			if d := c - cost; d > 0 {
				sum += d
				n++
			}
		}
		if n > 0 {
			temp = (sum / float64(n)) / -math.Log(0.9)
		} else {
			temp = math.Max(cost*0.01, 1e-300)
		}
	}

	stalled := 0
	// Telemetry counters for the Metropolis walk; never read by the
	// search itself (the calibration pass above counts as neither).
	var accepted, rejected int64
	for step := 0; step < steps; step++ {
		if stalled >= stall {
			break
		}
		improvedThisStep := false
		for mv := 0; mv < moves; mv++ {
			if e.Ctx != nil && res.evaluations%pollEvery == 0 {
				if err := pollCtx(e.Ctx); err != nil {
					return nil, err
				}
			}
			ta, tb := propose()
			c, err := price(ta, tb)
			if err != nil {
				return nil, err
			}
			countEval()
			d := c - cost
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				accepted++
				mapping.SwapTiles(cur, occ, ta, tb)
				cost = c
				if useSurr {
					// Exact-reprice the adopted mapping: the archive and
					// bestCollapse only ever see exact components, so a
					// surrogate mis-ranking can pollute the walk path but
					// never the reported front.
					if err := obj.ComponentsInto(cur, comps); err != nil {
						return nil, err
					}
					res.evaluations++
					res.exactEvals++
					res.archive.Offer(cur, comps, Collapse(collapse, comps))
				}
				if cost < bestScalar {
					bestScalar = cost
					bestCollapse = Collapse(collapse, comps)
					improvedThisStep = true
				}
			} else {
				rejected++
			}
		}
		if improvedThisStep {
			stalled = 0
		} else {
			stalled++
		}
		temp *= alpha
		if e.OnProgress != nil {
			e.OnProgress(Progress{Engine: "pareto", Restart: i, Step: step + 1,
				Steps: steps, Evaluations: res.evaluations,
				ExactEvals: res.exactEvals, SurrogateEvals: res.surrogateEvals,
				Accepted: accepted, Rejected: rejected, BestCost: bestCollapse})
		}
	}
	return res, nil
}
