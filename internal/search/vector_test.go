package search

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/topology"
)

func TestDominates(t *testing.T) {
	for _, tc := range []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: neither dominates
		{[]float64{1, 3}, []float64{3, 1}, false}, // incomparable
		{[]float64{3, 1}, []float64{1, 3}, false},
		{[]float64{5}, []float64{6}, true},
	} {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCollapse(t *testing.T) {
	if got := Collapse([]float64{1, 0.5, 0}, []float64{10, 4, 1e18}); got != 12 {
		t.Errorf("Collapse = %g, want 12", got)
	}
	if got := Collapse(nil, nil); got != 0 {
		t.Errorf("empty Collapse = %g, want 0", got)
	}
}

// offerAll feeds the points to a fresh archive in the given order.
func offerAll(capacity int, pts []FrontPoint) *Archive {
	a := NewArchive(capacity)
	for _, p := range pts {
		a.Offer(p.Mapping, p.Components, p.Cost)
	}
	return a
}

// assertFront checks the archive's core invariants: pairwise
// non-domination and strict deterministic order.
func assertFront(t *testing.T, pts []FrontPoint) {
	t.Helper()
	for i := range pts {
		for j := range pts {
			if i != j && Dominates(pts[i].Components, pts[j].Components) {
				t.Fatalf("front point %d dominates point %d: %v vs %v",
					i, j, pts[i].Components, pts[j].Components)
			}
		}
		if i > 0 && !pts[i-1].less(&pts[i]) {
			t.Fatalf("front not strictly ordered at %d: %v !< %v",
				i, pts[i-1].Components, pts[i].Components)
		}
	}
}

func TestArchiveKeepsOnlyNonDominated(t *testing.T) {
	mp := mapping.Mapping{0, 1}
	a := NewArchive(0)
	a.Offer(mp, []float64{5, 5}, 10)
	a.Offer(mp, []float64{6, 6}, 12) // dominated: rejected
	if a.Len() != 1 {
		t.Fatalf("dominated offer admitted: len %d", a.Len())
	}
	a.Offer(mp, []float64{6, 4}, 10) // incomparable: admitted
	a.Offer(mp, []float64{4, 6}, 10)
	if a.Len() != 3 {
		t.Fatalf("incomparable offers lost: len %d", a.Len())
	}
	a.Offer(mp, []float64{3, 3}, 6) // dominates all three: evicts them
	if a.Len() != 1 || a.Points()[0].Components[0] != 3 {
		t.Fatalf("dominating offer did not evict: %v", a.Points())
	}
	if a.Inserted() != 4 {
		t.Fatalf("inserted = %d, want 4", a.Inserted())
	}
	assertFront(t, a.Points())
}

func TestArchiveOfferOrderIndependent(t *testing.T) {
	// A fixed pool of candidates offered in many shuffled orders must
	// always produce the identical archive — the property the walk-order
	// merge (and hence workers-determinism) rests on.
	rng := rand.New(rand.NewSource(9))
	var pool []FrontPoint
	for i := 0; i < 40; i++ {
		mp := mapping.Mapping{topology.TileID(rng.Intn(4)), topology.TileID(4 + rng.Intn(4))}
		c := []float64{float64(rng.Intn(6)), float64(rng.Intn(6))}
		pool = append(pool, FrontPoint{Mapping: mp, Components: c, Cost: c[0] + c[1]})
	}
	ref := offerAll(4, pool).Points()
	assertFront(t, ref)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]FrontPoint(nil), pool...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := offerAll(4, shuffled).Points()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: archive depends on offer order:\n got %v\nwant %v", trial, got, ref)
		}
	}
}

func TestArchiveEqualComponentsKeepLexSmallerMapping(t *testing.T) {
	small := mapping.Mapping{0, 1}
	big := mapping.Mapping{1, 0}
	c := []float64{2, 2}
	for name, order := range map[string][2]mapping.Mapping{
		"small-first": {small, big},
		"big-first":   {big, small},
	} {
		a := NewArchive(0)
		a.Offer(order[0], c, 4)
		a.Offer(order[1], c, 4)
		if a.Len() != 1 {
			t.Fatalf("%s: equal components duplicated: len %d", name, a.Len())
		}
		if got := a.Points()[0].Mapping; !reflect.DeepEqual(got, small) {
			t.Errorf("%s: kept mapping %v, want lexicographically smaller %v", name, got, small)
		}
	}
}

func TestArchiveCrowdingNeverEvictsExtremes(t *testing.T) {
	mp := mapping.Mapping{0, 1}
	a := NewArchive(3)
	// A dense trade-off line: capacity pruning must keep both axis
	// extremes and thin the middle.
	for i := 0; i <= 10; i++ {
		c := []float64{float64(i), float64(10 - i)}
		a.Offer(mp, c, c[0]+c[1])
	}
	pts := a.Points()
	if len(pts) != 3 {
		t.Fatalf("capacity not enforced: len %d", len(pts))
	}
	if pts[0].Components[0] != 0 || pts[len(pts)-1].Components[0] != 10 {
		t.Fatalf("crowding evicted an axis extreme: %v", pts)
	}
	assertFront(t, pts)
}

func TestArchiveOfferCopiesBuffers(t *testing.T) {
	mp := mapping.Mapping{0, 1}
	c := []float64{1, 2}
	a := NewArchive(0)
	a.Offer(mp, c, 3)
	mp[0], c[0] = 9, 9 // caller reuses its buffers, as the hot loop does
	got := a.Points()[0]
	if got.Mapping[0] != 0 || got.Components[0] != 1 {
		t.Fatalf("archive aliases caller buffers: %v %v", got.Mapping, got.Components)
	}
}

func TestFrontResultBest(t *testing.T) {
	f := &FrontResult{}
	if _, ok := f.Best(); ok {
		t.Fatal("empty front reported a best point")
	}
	f.Points = []FrontPoint{
		{Mapping: mapping.Mapping{0, 1}, Components: []float64{1, 9}, Cost: 5},
		{Mapping: mapping.Mapping{1, 0}, Components: []float64{2, 8}, Cost: 3},
		{Mapping: mapping.Mapping{2, 0}, Components: []float64{3, 7}, Cost: 3}, // exact tie: first wins
	}
	best, ok := f.Best()
	if !ok || best.Cost != 3 || best.Components[0] != 2 {
		t.Fatalf("Best = %v, %v; want the first cost-3 point", best, ok)
	}
}
