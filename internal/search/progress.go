package search

import "context"

// Progress is a periodic snapshot of a running search, delivered through
// an engine's OnProgress callback. It is observational only: emitting it
// never touches the walk's RNG or incumbent state, so a run with a
// callback is bit-identical to one without.
type Progress struct {
	// Engine names the emitting engine ("SA", "ES", "random", "hill",
	// "tabu").
	Engine string
	// Restart is the restart index (MultiAnnealer) or shard index
	// (ShardedExhaustive) the snapshot belongs to; 0 for serial engines.
	Restart int
	// Step / Steps report outer-loop progress in engine-specific units:
	// temperature steps for SA, iterations for tabu, samples for random
	// search, restarts for hill climbing. Steps is 0 when the total is
	// unknown up front (exhaustive enumeration).
	Step, Steps int
	// Evaluations counts candidate pricings so far in this run (for the
	// parallel engines: in this restart/shard), whatever tier priced
	// them; Evaluations == ExactEvals + BoundSkips + SurrogateEvals.
	Evaluations int64
	// ExactEvals counts pricings that ran the exact objective;
	// BoundSkips counts candidates the tier-A certified lower bound
	// dismissed without an exact pricing; SurrogateEvals counts
	// candidates priced by the tier-B calibrated surrogate. Runs without
	// tiers report ExactEvals == Evaluations and zeros elsewhere. Each
	// counter is monotone over a run, like Evaluations.
	ExactEvals, BoundSkips, SurrogateEvals int64
	// Accepted / Rejected count the walk's move decisions so far. For
	// the move-based engines (SA, hill, tabu, pareto) an accepted move
	// is one applied to the walk state and a rejected one is a priced
	// candidate that was not applied (SA's calibration probes count as
	// neither). The enumerating engines (ES, random) have no move
	// decision; they report incumbent improvements as Accepted and the
	// remaining evaluations as Rejected, so acceptance-rate telemetry is
	// meaningful for every engine.
	Accepted, Rejected int64
	// BestCost is the incumbent best objective value.
	BestCost float64
}

// ProgressFunc receives Progress snapshots. The parallel engines
// (MultiAnnealer, ShardedExhaustive) invoke it concurrently from their
// worker lanes, so implementations must be safe for concurrent use; they
// must also not block for long (they run on the search hot path) and must
// not mutate engine state.
type ProgressFunc func(Progress)

// pollEvery is the number of objective evaluations the inner loops let
// elapse between cancellation checks: rare enough to stay invisible on
// the ~100ns incremental-evaluation path, frequent enough that a
// cancelled CDCM run (milliseconds per evaluation) stops promptly.
const pollEvery = 64

// pollCtx reports whether a run should stop: nil when ctx is nil (the
// engines' default, bit-identical to the pre-cancellation behaviour) or
// not yet done, ctx.Err() otherwise.
func pollCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
