package search

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/topology"
)

// vecWire is the test VectorObjective: two wireLength legs over disjoint
// traffic patterns, so shortening one set of flows tends to stretch the
// other and the axes genuinely compete. Cost is the fixed collapse
// 1·a + 0.5·b, accumulated in ascending axis order like the core
// evaluators.
type vecWire struct {
	a, b *wireLength
}

var vecWeights = []float64{1, 0.5}

func (v *vecWire) Axes() []string             { return []string{"a", "b"} }
func (v *vecWire) CollapseWeights() []float64 { return vecWeights }

func (v *vecWire) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	ca, err := v.a.Cost(mp)
	if err != nil {
		return err
	}
	cb, err := v.b.Cost(mp)
	if err != nil {
		return err
	}
	dst[0], dst[1] = ca, cb
	return nil
}

func (v *vecWire) Cost(mp mapping.Mapping) (float64, error) {
	var c [2]float64
	if err := v.ComponentsInto(mp, c[:]); err != nil {
		return 0, err
	}
	return Collapse(v.CollapseWeights(), c[:]), nil
}

func testVecProblem(t *testing.T, w, h, cores int) (Problem, *vecWire) {
	t.Helper()
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	flows := func(seed int64) *wireLength {
		rng := rand.New(rand.NewSource(seed))
		var fl [][3]int
		for i := 0; i < cores; i++ {
			for j := 0; j < cores; j++ {
				if i != j && rng.Float64() < 0.3 {
					fl = append(fl, [3]int{i, j, 1 + rng.Intn(100)})
				}
			}
		}
		return &wireLength{mesh: mesh, flows: fl}
	}
	obj := &vecWire{a: flows(11), b: flows(23)}
	return Problem{Mesh: mesh, NumCores: cores, Obj: obj}, obj
}

func paretoEngine(p Problem) *ParetoSA {
	return &ParetoSA{Problem: p, Seed: 3, Walks: 6, TempSteps: 25, MovesPerTemp: 15, FrontSize: 8}
}

func TestParetoSADeterministicAcrossWorkers(t *testing.T) {
	p, obj := testVecProblem(t, 3, 3, 7)
	var ref *FrontResult
	for _, workers := range []int{1, 2, 4} {
		e := paretoEngine(p)
		e.Workers = workers
		// Fresh per-lane objective instances, as the stateful core
		// evaluators require.
		e.NewObjective = func() (Objective, error) {
			return &vecWire{a: obj.a, b: obj.b}, nil
		}
		got, err := e.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = got
			if len(ref.Points) < 2 {
				t.Fatalf("front degenerate (%d points): test instance does not exercise the trade-off", len(ref.Points))
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d changed the front:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestParetoSAFrontInvariants(t *testing.T) {
	p, obj := testVecProblem(t, 3, 3, 7)
	front, err := paretoEngine(p).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertFront(t, front.Points)
	if front.Evaluations <= 0 || front.Improvements <= 0 {
		t.Fatalf("counters not threaded: eval=%d impr=%d", front.Evaluations, front.Improvements)
	}
	// Every front point must exact-reprice: a fresh evaluation of its
	// mapping reproduces the stored components and scalar bit for bit.
	dst := make([]float64, len(front.Axes))
	for i, pt := range front.Points {
		if err := pt.Mapping.Validate(p.Mesh.NumTiles()); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if err := obj.ComponentsInto(pt.Mapping, dst); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if !reflect.DeepEqual(dst, pt.Components) {
			t.Fatalf("point %d does not reprice: stored %v, fresh %v", i, pt.Components, dst)
		}
		if got := Collapse(front.Weights, pt.Components); got != pt.Cost {
			t.Fatalf("point %d: Cost %g != collapse %g", i, pt.Cost, got)
		}
	}
	best, ok := front.Best()
	if !ok {
		t.Fatal("no best point")
	}
	if c, err := obj.Cost(best.Mapping); err != nil || c != best.Cost {
		t.Fatalf("best point scalar mismatch: %g vs %g (%v)", c, best.Cost, err)
	}
}

func TestParetoSAInitialWarmStart(t *testing.T) {
	p, obj := testVecProblem(t, 3, 3, 7)
	seed, err := mapping.Random(rand.New(rand.NewSource(77)), p.NumCores, p.Mesh.NumTiles())
	if err != nil {
		t.Fatal(err)
	}
	seedCost, err := obj.Cost(seed)
	if err != nil {
		t.Fatal(err)
	}
	e := paretoEngine(p)
	e.Initial = seed
	front, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if front.InitialCost != seedCost {
		t.Fatalf("InitialCost %g, want the seed mapping's %g", front.InitialCost, seedCost)
	}
	if best, ok := front.Best(); !ok || best.Cost > seedCost {
		t.Fatalf("seeded run finished at %g, worse than its seed %g", best.Cost, seedCost)
	}

	e = paretoEngine(p)
	e.Initial = seed[:3] // wrong arity
	if _, err := e.Run(); err == nil {
		t.Fatal("short initial mapping accepted")
	}
}

func TestParetoSARejectsScalarObjective(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 6) // plain wireLength: no vector view
	if _, err := (&ParetoSA{Problem: p, Seed: 1}).Run(); err == nil {
		t.Fatal("scalar-only objective accepted")
	}
	pv, _ := testVecProblem(t, 3, 3, 6)
	e := paretoEngine(pv)
	e.NewObjective = func() (Objective, error) {
		return ObjectiveFunc(func(mp mapping.Mapping) (float64, error) { return 0, nil }), nil
	}
	e.Workers = 2
	if _, err := e.Run(); err == nil {
		t.Fatal("scalar-only factory objective accepted")
	}
}

func TestParetoSAPreCanceledContext(t *testing.T) {
	p, _ := testVecProblem(t, 3, 3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := paretoEngine(p)
	e.Ctx = ctx
	if _, err := e.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx returned %v, want context.Canceled", err)
	}
}

func TestParetoSABackgroundContextBitIdenticalToNil(t *testing.T) {
	p, _ := testVecProblem(t, 3, 3, 6)
	plain, err := paretoEngine(p).Run()
	if err != nil {
		t.Fatal(err)
	}
	e := paretoEngine(p)
	e.Ctx = context.Background()
	ctxed, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatal("live context changed the front")
	}
}

func TestParetoSAProgress(t *testing.T) {
	p, _ := testVecProblem(t, 3, 3, 6)
	e := paretoEngine(p)
	walks := map[int]bool{}
	e.OnProgress = func(pr Progress) {
		if pr.Engine != "pareto" {
			t.Errorf("progress engine %q", pr.Engine)
		}
		walks[pr.Restart] = true
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(walks) != e.Walks {
		t.Fatalf("progress covered %d walks, want %d", len(walks), e.Walks)
	}
}

func TestWalkWeights(t *testing.T) {
	const k = 3
	for i := 0; i < k; i++ {
		w := walkWeights(rand.New(rand.NewSource(1)), i, k)
		for ax, v := range w {
			want := 0.0
			if ax == i {
				want = 1
			}
			if v != want {
				t.Fatalf("walk %d weights %v, want pure axis %d", i, w, i)
			}
		}
	}
	w := walkWeights(rand.New(rand.NewSource(1)), k, k)
	again := walkWeights(rand.New(rand.NewSource(1)), k, k)
	if !reflect.DeepEqual(w, again) {
		t.Fatal("interior weights not deterministic for a fixed seed")
	}
	var sum float64
	for _, v := range w {
		if v <= 0 {
			t.Fatalf("interior weight %g not positive: %v", v, w)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("interior weights sum to %g, want 1", sum)
	}
}
