package search

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/topology"
)

// boundWire wraps the wireLength test objective with a certified
// LowerBoundObjective: the bound of any mapping is its exact cost minus a
// small epsilon, so bound ≤ exact holds by construction and the filter
// skips almost every non-improving swap — the strongest possible stress
// on the bit-identity contract.
type boundWire struct {
	w     *wireLength
	bound mapping.Mapping
	eps   float64

	resets, swaps, commits int
}

var _ LowerBoundObjective = (*boundWire)(nil)

func (b *boundWire) ResetBound(mp mapping.Mapping) (float64, error) {
	if err := mp.Validate(b.w.mesh.NumTiles()); err != nil {
		return 0, err
	}
	b.bound = mp.Clone()
	b.resets++
	c, err := b.w.Cost(mp)
	return c - b.eps, err
}

func (b *boundWire) SwapBound(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	if b.bound == nil {
		return 0, errors.New("SwapBound before ResetBound")
	}
	b.swaps++
	sm := b.bound.Clone()
	for c, t := range sm {
		switch t {
		case ta:
			sm[c] = tb
		case tb:
			sm[c] = ta
		}
	}
	c, err := b.w.Cost(sm)
	return c - b.eps, err
}

func (b *boundWire) CommitBound(ta, tb topology.TileID) {
	b.commits++
	for c, t := range b.bound {
		switch t {
		case ta:
			b.bound[c] = tb
		case tb:
			b.bound[c] = ta
		}
	}
}

// surrWire distorts deltaWireLength into a tier-B style surrogate: an
// affine transformation of the exact cost. It predicts ranks correctly
// (the distortion is monotone) but its values are never the exact
// objective's, so any surrogate number leaking into a reported result
// trips the bitwise assertions downstream.
type surrWire struct {
	deltaWireLength
}

func (s *surrWire) Reset(mp mapping.Mapping) (float64, error) {
	c, err := s.deltaWireLength.Reset(mp)
	return 1.25*c + 3, err
}

func (s *surrWire) SwapDelta(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	d, err := s.deltaWireLength.SwapDelta(occ, ta, tb)
	return 1.25 * d, err
}

func (s *surrWire) Commit(ta, tb topology.TileID) float64 {
	return 1.25*s.deltaWireLength.Commit(ta, tb) + 3
}

func checkTierInvariant(t *testing.T, name string, res *Result) {
	t.Helper()
	if got := res.ExactEvals + res.BoundSkips + res.SurrogateEvals; got != res.Evaluations {
		t.Fatalf("%s: ExactEvals %d + BoundSkips %d + SurrogateEvals %d != Evaluations %d",
			name, res.ExactEvals, res.BoundSkips, res.SurrogateEvals, res.Evaluations)
	}
}

// TestTierAFilterBitIdentical pins the tier-A contract at the engine
// level with a synthetic certified bound: HillClimber and Tabu runs over
// TieredObjective{Exact, Bound} reproduce the bare runs bit for bit
// while skipping swaps (BoundSkips > 0) and committing accepted ones
// into the bound baseline.
func TestTierAFilterBitIdentical(t *testing.T) {
	p, w := testProblem(t, 4, 3, 10)
	for _, engine := range []string{"hill", "tabu"} {
		run := func(obj Objective) *Result {
			prob := p
			prob.Obj = obj
			var res *Result
			var err error
			if engine == "hill" {
				res, err = (&HillClimber{Problem: prob, Seed: 3}).Run()
			} else {
				res, err = (&Tabu{Problem: prob, Seed: 3, Iterations: 30}).Run()
			}
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			return res
		}
		bare := run(w)
		bnd := &boundWire{w: w, eps: 1e-9}
		tiered := run(&TieredObjective{Exact: w, Bound: bnd})

		if !mapping.Equal(bare.Best, tiered.Best) {
			t.Fatalf("%s: tiered best %v != bare best %v", engine, tiered.Best, bare.Best)
		}
		if math.Float64bits(bare.BestCost) != math.Float64bits(tiered.BestCost) {
			t.Fatalf("%s: tiered cost %g != bare cost %g", engine, tiered.BestCost, bare.BestCost)
		}
		if bare.Evaluations != tiered.Evaluations || bare.Improvements != tiered.Improvements {
			t.Fatalf("%s: tiered (evals %d, impr %d) != bare (evals %d, impr %d)",
				engine, tiered.Evaluations, tiered.Improvements, bare.Evaluations, bare.Improvements)
		}
		if tiered.BoundSkips == 0 {
			t.Fatalf("%s: certified bound never skipped a swap", engine)
		}
		if tiered.ExactEvals >= bare.ExactEvals {
			t.Fatalf("%s: filter saved no exact evaluations (%d vs %d)",
				engine, tiered.ExactEvals, bare.ExactEvals)
		}
		if bnd.resets == 0 || bnd.swaps == 0 {
			t.Fatalf("%s: bound never consulted (resets %d, swaps %d)", engine, bnd.resets, bnd.swaps)
		}
		checkTierInvariant(t, engine+"/bare", bare)
		checkTierInvariant(t, engine+"/tiered", tiered)
	}
}

// TestIncumbentAuditInvariant pins the hoisted incumbent-cost field (the
// PR-2 drift-guard rule): after every adopted move, on both the full and
// the delta paths of both neighbourhood engines, inc.cost is bitwise the
// exactly recomputed cost of inc.cur — never an accumulation of deltas.
func TestIncumbentAuditInvariant(t *testing.T) {
	audits := 0
	incumbentAudit = func(engine string, obj Objective, inc *incumbent) {
		audits++
		c, err := exactOf(obj).Cost(inc.cur)
		if err != nil {
			t.Fatalf("%s audit: %v", engine, err)
		}
		if math.Float64bits(c) != math.Float64bits(inc.cost) {
			t.Fatalf("%s audit %d: inc.cost %x drifted from exact %x",
				engine, audits, math.Float64bits(inc.cost), math.Float64bits(c))
		}
		for core, tile := range inc.cur {
			if inc.occ[tile] != model.CoreID(core) {
				t.Fatalf("%s audit: occupancy view drifted at tile %d", engine, tile)
			}
		}
	}
	defer func() { incumbentAudit = nil }()

	p, w := testProblem(t, 4, 3, 10)
	full := p
	full.Obj = w
	delta := p
	delta.Obj = &deltaWireLength{wireLength: *w}
	tiered := p
	tiered.Obj = &TieredObjective{Exact: w, Bound: &boundWire{w: w, eps: 1e-9}}
	for name, prob := range map[string]Problem{"full": full, "delta": delta, "tiered": tiered} {
		for _, engine := range []string{"hill", "tabu"} {
			before := audits
			var err error
			if engine == "hill" {
				_, err = (&HillClimber{Problem: prob, Seed: 3}).Run()
			} else {
				_, err = (&Tabu{Problem: prob, Seed: 3, Iterations: 20}).Run()
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			if audits == before {
				t.Fatalf("%s/%s: no adopted move audited", name, engine)
			}
		}
	}
}

// TestAnnealerSurrogateExactResults pins the tier-B protocol on the
// annealer: the walk prices candidates on the surrogate (SurrogateEvals
// > 0), exact-reprices every accepted move, and reports a Best whose
// cost the exact objective reproduces bit for bit. Two identical runs
// must agree exactly, including after reheats.
func TestAnnealerSurrogateExactResults(t *testing.T) {
	p, w := testProblem(t, 4, 3, 10)
	run := func() *Result {
		prob := p
		prob.Obj = &TieredObjective{Exact: w, Surrogate: &surrWire{deltaWireLength{wireLength: *w}}}
		res, err := (&Annealer{Problem: prob, Seed: 11, TempSteps: 15, MovesPerTemp: 20,
			StallSteps: 3, Reheats: 1}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.SurrogateEvals == 0 {
		t.Fatal("surrogate never priced a candidate")
	}
	if a.ExactEvals == 0 {
		t.Fatal("no exact evaluations: accepted moves were not repriced")
	}
	checkTierInvariant(t, "annealer", a)
	exact, err := w.Cost(a.Best)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(exact) != math.Float64bits(a.BestCost) {
		t.Fatalf("BestCost %x is not the exact price %x — a surrogate value leaked",
			math.Float64bits(a.BestCost), math.Float64bits(exact))
	}
	b := run()
	if !mapping.Equal(a.Best, b.Best) || a.BestCost != b.BestCost ||
		a.Evaluations != b.Evaluations || a.SurrogateEvals != b.SurrogateEvals ||
		a.ExactEvals != b.ExactEvals {
		t.Fatal("surrogate annealer is not deterministic under a fixed seed")
	}
}

// vecSurrWire is surrWire's vector counterpart for the Pareto engine: a
// DeltaObjective + VectorObjective whose components are a uniform
// distortion of vecWire's, so the walk ranks sensibly but any surrogate
// component leaking into the archive trips the bitwise checks.
type vecSurrWire struct {
	surrWire
	v *vecWire
}

func (s *vecSurrWire) Axes() []string             { return s.v.Axes() }
func (s *vecSurrWire) CollapseWeights() []float64 { return s.v.CollapseWeights() }

func (s *vecSurrWire) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if err := s.v.ComponentsInto(mp, dst); err != nil {
		return err
	}
	for i := range dst[:len(s.v.Axes())] {
		dst[i] = 1.25*dst[i] + 3
	}
	return nil
}

// TestParetoSurrogateFrontExact pins the tier-B protocol on the front
// engine: the walk runs in the surrogate domain but only exact
// components ever reach the archive, and the run stays deterministic
// across worker counts.
func TestParetoSurrogateFrontExact(t *testing.T) {
	p, v := testVecProblem(t, 4, 3, 10)
	scalarFlows := &wireLength{mesh: v.a.mesh, flows: append(append([][3]int{}, v.a.flows...), v.b.flows...)}
	newObj := func() (Objective, error) {
		return &TieredObjective{
			Exact:     v,
			Surrogate: &vecSurrWire{surrWire{deltaWireLength{wireLength: *scalarFlows}}, v},
		}, nil
	}
	var ref *FrontResult
	for workers := 1; workers <= 2; workers++ {
		obj, _ := newObj()
		prob := p
		prob.Obj = obj
		front, err := (&ParetoSA{Problem: prob, Seed: 19, TempSteps: 10, MovesPerTemp: 15,
			Walks: 2, Workers: workers, NewObjective: newObj}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if front.SurrogateEvals == 0 {
			t.Fatalf("workers=%d: surrogate never priced a candidate", workers)
		}
		if got := front.ExactEvals + front.SurrogateEvals; got != front.Evaluations {
			t.Fatalf("workers=%d: counters sum to %d, Evaluations is %d", workers, got, front.Evaluations)
		}
		dst := make([]float64, len(front.Axes))
		for i, pt := range front.Points {
			if err := v.ComponentsInto(pt.Mapping, dst); err != nil {
				t.Fatal(err)
			}
			for a := range dst {
				if math.Float64bits(dst[a]) != math.Float64bits(pt.Components[a]) {
					t.Fatalf("workers=%d point %d axis %d: archived %g != exact %g — surrogate leaked",
						workers, i, a, pt.Components[a], dst[a])
				}
			}
		}
		if ref == nil {
			ref = front
			continue
		}
		if len(ref.Points) != len(front.Points) {
			t.Fatalf("workers=%d: front size %d != workers=1 size %d",
				workers, len(front.Points), len(ref.Points))
		}
		for i := range front.Points {
			if !mapping.Equal(ref.Points[i].Mapping, front.Points[i].Mapping) {
				t.Fatalf("workers=%d: point %d diverges from workers=1", workers, i)
			}
		}
	}
}

// TestProgressTierCountersMonotone pins the telemetry contract of the
// split counters: within one engine run every snapshot's ExactEvals,
// BoundSkips and SurrogateEvals are non-decreasing and always sum to
// Evaluations — the same monotonicity the service layer's clamps rely
// on.
func TestProgressTierCountersMonotone(t *testing.T) {
	p, w := testProblem(t, 4, 3, 10)
	check := func(name string, snaps []Progress) {
		t.Helper()
		if len(snaps) == 0 {
			t.Fatalf("%s: no progress snapshots", name)
		}
		var prev Progress
		for i, s := range snaps {
			if s.ExactEvals+s.BoundSkips+s.SurrogateEvals != s.Evaluations {
				t.Fatalf("%s snapshot %d: tier counters %d+%d+%d != Evaluations %d",
					name, i, s.ExactEvals, s.BoundSkips, s.SurrogateEvals, s.Evaluations)
			}
			if s.ExactEvals < prev.ExactEvals || s.BoundSkips < prev.BoundSkips ||
				s.SurrogateEvals < prev.SurrogateEvals {
				t.Fatalf("%s snapshot %d: tier counter decreased: %+v after %+v", name, i, s, prev)
			}
			prev = s
		}
	}

	var snaps []Progress
	collect := func(pr Progress) { snaps = append(snaps, pr) }

	prob := p
	prob.Obj = &TieredObjective{Exact: w, Bound: &boundWire{w: w, eps: 1e-9}}
	if _, err := (&HillClimber{Problem: prob, Seed: 3, OnProgress: collect}).Run(); err != nil {
		t.Fatal(err)
	}
	check("hill", snaps)
	hill := snaps[len(snaps)-1]
	if hill.BoundSkips == 0 {
		t.Fatal("hill: snapshots never saw a bound skip")
	}

	snaps = nil
	if _, err := (&Tabu{Problem: prob, Seed: 3, Iterations: 20, OnProgress: collect}).Run(); err != nil {
		t.Fatal(err)
	}
	check("tabu", snaps)

	snaps = nil
	sprob := p
	sprob.Obj = &TieredObjective{Exact: w, Surrogate: &surrWire{deltaWireLength{wireLength: *w}}}
	if _, err := (&Annealer{Problem: sprob, Seed: 11, TempSteps: 10, MovesPerTemp: 30,
		OnProgress: collect}).Run(); err != nil {
		t.Fatal(err)
	}
	check("sa", snaps)
	if last := snaps[len(snaps)-1]; last.SurrogateEvals == 0 {
		t.Fatal("sa: snapshots never saw a surrogate evaluation")
	}
}
