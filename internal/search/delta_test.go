package search

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/topology"
)

// deltaWireLength wraps the wireLength test objective with a
// search.DeltaObjective implementation. Costs are integer-valued, so the
// incremental path is exact and a delta-driven engine must retrace the
// full-recompute engine move for move.
type deltaWireLength struct {
	wireLength
	bound mapping.Mapping

	resets, swapDeltas, commits int
}

var _ DeltaObjective = (*deltaWireLength)(nil)

func (w *deltaWireLength) Reset(mp mapping.Mapping) (float64, error) {
	if err := mp.Validate(w.mesh.NumTiles()); err != nil {
		return 0, err
	}
	w.bound = mp.Clone()
	w.resets++
	return w.Cost(mp)
}

func (w *deltaWireLength) SwapDelta(occ []model.CoreID, ta, tb topology.TileID) (float64, error) {
	if w.bound == nil {
		return 0, errors.New("SwapDelta before Reset")
	}
	w.swapDeltas++
	ca, cb := occ[ta], occ[tb]
	pos := func(c int) topology.TileID {
		switch t := w.bound[c]; t {
		case ta:
			return tb
		case tb:
			return ta
		default:
			return t
		}
	}
	var d float64
	for _, f := range w.flows {
		s, t := model.CoreID(f[0]), model.CoreID(f[1])
		if s != ca && s != cb && t != ca && t != cb {
			continue
		}
		d += float64(f[2] * w.mesh.MinHops(pos(f[0]), pos(f[1])))
		d -= float64(f[2] * w.mesh.MinHops(w.bound[f[0]], w.bound[f[1]]))
	}
	return d, nil
}

func (w *deltaWireLength) Commit(ta, tb topology.TileID) float64 {
	w.commits++
	for c, t := range w.bound {
		switch t {
		case ta:
			w.bound[c] = tb
		case tb:
			w.bound[c] = ta
		}
	}
	c, err := w.Cost(w.bound)
	if err != nil {
		panic(err)
	}
	return c
}

// deltaProblem returns the same instance twice: once behind the plain
// Objective (full recompute path) and once behind the DeltaObjective.
func deltaProblem(t *testing.T, w, h, cores int) (full, delta Problem, dw *deltaWireLength) {
	return deltaProblem3D(t, w, h, 1, cores)
}

// deltaProblem3D is deltaProblem over a stacked W×H×D mesh.
func deltaProblem3D(t *testing.T, w, h, d, cores int) (full, delta Problem, dw *deltaWireLength) {
	t.Helper()
	full, obj := testProblem3D(t, w, h, d, cores)
	dw = &deltaWireLength{wireLength: *obj}
	delta = Problem{Mesh: full.Mesh, NumCores: cores, Obj: dw}
	return full, delta, dw
}

// TestAnnealerSingleTile is the regression test for the 1-tile hang:
// propose() can never draw two distinct tiles when numTiles == 1, and the
// auto-calibration pass used to call it before the main loop, spinning
// forever. The unique mapping must be returned immediately.
func TestAnnealerSingleTile(t *testing.T) {
	mesh, err := topology.NewMesh(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Mesh: mesh, NumCores: 1, Obj: ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
		return 7, nil
	})}
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := (&Annealer{Problem: p, Seed: 1}).Run()
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	select {
	case res := <-done:
		if !mapping.Equal(res.Best, mapping.Mapping{0}) {
			t.Fatalf("best = %v, want the unique mapping [0]", res.Best)
		}
		if res.BestCost != 7 || res.InitialCost != 7 || res.Evaluations != 1 {
			t.Fatalf("unexpected result %+v", res)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("annealer still hangs on a 1-tile mesh")
	}
}

// TestAnnealerSingleTileInitial covers the explicit-Initial variant of the
// same degenerate instance.
func TestAnnealerSingleTileInitial(t *testing.T) {
	mesh, err := topology.NewMesh(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Mesh: mesh, NumCores: 1, Obj: ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
		return 3, nil
	})}
	res, err := (&Annealer{Problem: p, Seed: 2, Initial: mapping.Mapping{0}, InitialTemp: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != 3 || !mapping.Equal(res.Best, mapping.Mapping{0}) {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestHillClimberBestCostMatchesFullRecompute pins the satellite fix for
// the accumulated-delta drift: the returned BestCost must equal a full
// Cost(Best) recompute exactly, on both the full path (the engine now
// records the evaluated neighbour cost instead of cost += bestD) and the
// delta path (the engine re-prices the winner before returning).
func TestHillClimberBestCostMatchesFullRecompute(t *testing.T) {
	full, delta, _ := deltaProblem(t, 3, 3, 6)
	for _, tc := range []struct {
		name string
		p    Problem
	}{{"full", full}, {"delta", delta}} {
		name, p := tc.name, tc.p
		res, err := (&HillClimber{Problem: p, Seed: 17, Restarts: 2}).Run()
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Obj.Cost(res.Best)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost != want {
			t.Fatalf("%s path: BestCost = %g, full recompute = %g", name, res.BestCost, want)
		}
	}
}

// TestTabuBestCostMatchesFullRecompute extends the same exactness
// guarantee to tabu search.
func TestTabuBestCostMatchesFullRecompute(t *testing.T) {
	full, delta, _ := deltaProblem(t, 3, 3, 6)
	for _, tc := range []struct {
		name string
		p    Problem
	}{{"full", full}, {"delta", delta}} {
		name, p := tc.name, tc.p
		res, err := (&Tabu{Problem: p, Seed: 13, Iterations: 30}).Run()
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Obj.Cost(res.Best)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost != want {
			t.Fatalf("%s path: BestCost = %g, full recompute = %g", name, res.BestCost, want)
		}
	}
}

// TestDeltaPathMatchesFullPath runs every swap-move engine through both
// evaluation paths on the same seeded instance. The wire-length objective
// is integer-valued, so the incremental deltas are exact and the
// trajectories must coincide exactly: same best mapping, same cost, same
// number of objective evaluations.
func TestDeltaPathMatchesFullPath(t *testing.T) {
	for _, dims := range [][4]int{{3, 3, 1, 6}, {4, 4, 1, 9}, {5, 4, 1, 11}, {2, 2, 2, 6}, {4, 4, 2, 14}} {
		full, delta, dw := deltaProblem3D(t, dims[0], dims[1], dims[2], dims[3])
		for _, tc := range []struct {
			name string
			run  func(p Problem) (*Result, error)
		}{
			{"annealer", func(p Problem) (*Result, error) {
				return (&Annealer{Problem: p, Seed: 5, TempSteps: 12, Reheats: 1}).Run()
			}},
			{"hill", func(p Problem) (*Result, error) {
				return (&HillClimber{Problem: p, Seed: 5, Restarts: 2}).Run()
			}},
			{"tabu", func(p Problem) (*Result, error) {
				return (&Tabu{Problem: p, Seed: 5, Iterations: 25}).Run()
			}},
		} {
			name, run := tc.name, tc.run
			ref, err := run(full)
			if err != nil {
				t.Fatalf("%s full: %v", name, err)
			}
			got, err := run(delta)
			if err != nil {
				t.Fatalf("%s delta: %v", name, err)
			}
			if !mapping.Equal(ref.Best, got.Best) {
				t.Fatalf("%s %dx%d: delta best %v != full best %v", name, dims[0], dims[1], got.Best, ref.Best)
			}
			if ref.BestCost != got.BestCost {
				t.Fatalf("%s %dx%d: delta cost %g != full cost %g", name, dims[0], dims[1], got.BestCost, ref.BestCost)
			}
			if ref.Evaluations != got.Evaluations {
				t.Fatalf("%s %dx%d: delta evaluations %d != full %d", name, dims[0], dims[1], got.Evaluations, ref.Evaluations)
			}
			if dw.swapDeltas == 0 || dw.commits == 0 || dw.resets == 0 {
				t.Fatalf("%s %dx%d: delta path not exercised (%d resets, %d deltas, %d commits)",
					name, dims[0], dims[1], dw.resets, dw.swapDeltas, dw.commits)
			}
		}
	}
}

// TestDeltaEngineResetsBeforeSwapDelta verifies the engines bind the
// objective with Reset before pricing any swap — SwapDelta on an unbound
// objective errors, so a successful run proves the sequencing.
func TestDeltaEngineResetsBeforeSwapDelta(t *testing.T) {
	_, delta, dw := deltaProblem(t, 3, 3, 5)
	dw.bound = nil // a skipped Reset would now make every SwapDelta error
	res, err := (&Annealer{Problem: delta, Seed: 1, TempSteps: 3}).Run()
	if err != nil {
		t.Fatalf("engine must Reset before SwapDelta: %v", err)
	}
	if res == nil || dw.resets == 0 {
		t.Fatal("Reset was never called")
	}
}
