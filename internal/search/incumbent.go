package search

import (
	"repro/internal/mapping"
	"repro/internal/model"
)

// incumbent is the walk state the neighbourhood engines (HillClimber,
// Tabu) share: the current mapping, its occupancy view, and the single
// tracked exact cost of that mapping. Before the two-tier seam each
// engine re-derived the incumbent cost through scattered locals, which
// left the tier-A bound filter nowhere clean to compare against; hoisting
// it into one field makes the bound compare one read (`lb - inc.cost`)
// and gives the drift invariant one seam to audit.
//
// The invariant: after bind/adopt, inc.cost is always an exactly
// recomputed cost of inc.cur — either bindObjective's initial pricing or
// an accepted neighbour's full/Commit pricing — never an accumulation of
// deltas (the PR-2 drift-guard rule the engines have pinned since the
// DeltaObjective seam).
type incumbent struct {
	cur  mapping.Mapping
	occ  []model.CoreID
	cost float64
}

// bind points the incumbent at a walk's starting state.
func (inc *incumbent) bind(cur mapping.Mapping, numTiles int, cost float64) {
	inc.cur = cur
	inc.occ = cur.Occupants(numTiles)
	inc.cost = cost
}

// adopt records an exactly recomputed cost for the (already swapped)
// current mapping and notifies the test audit hook, if any.
func (inc *incumbent) adopt(engine string, obj Objective, cost float64) {
	inc.cost = cost
	if incumbentAudit != nil {
		incumbentAudit(engine, obj, inc)
	}
}

// incumbentAudit is a test-only hook invoked after every adopted move
// with the engine name, the walk's objective and the incumbent state.
// The invariant test re-prices inc.cur and asserts bitwise equality with
// inc.cost. Nil in production: the only hot-path cost is one nil check
// per accepted move (not per scanned candidate).
var incumbentAudit func(engine string, obj Objective, inc *incumbent)
