package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/topology"
)

// Exhaustive enumerates every injective placement and certifies the global
// optimum. Only feasible on small NoCs — the space is m!/(m-n)! — which is
// exactly how the paper uses it ("for small NoC sizes both ES and SA
// reached the same results").
type Exhaustive struct {
	Problem Problem
	// Anchor, when true, pins the first core to the canonical mesh
	// quadrant, exploiting mirror symmetry to shrink the space up to 4x.
	// The returned optimum cost is unaffected as long as the objective is
	// symmetry-invariant, which holds for both CWM and CDCM on a mesh.
	Anchor bool
	// Limit aborts after this many placements (0 = none). If it fires,
	// the result is the best-so-far and Certified stays false.
	Limit int64
	// Ctx, when non-nil, cancels the enumeration; Run returns ctx.Err().
	// Nil is bit-identical to the historical behaviour.
	Ctx context.Context
	// OnProgress, when non-nil, receives a snapshot every few thousand
	// placements (Steps is 0: the space size is not precomputed).
	OnProgress ProgressFunc
}

// Run enumerates the space.
func (e *Exhaustive) Run() (*Result, error) {
	if err := e.Problem.validate(); err != nil {
		return nil, err
	}
	res := &Result{BestCost: math.Inf(1)}
	anchor := -1
	if e.Anchor {
		anchor = 0
	}
	var innerErr error
	err := mapping.Enumerate(e.Problem.Mesh, e.Problem.NumCores,
		mapping.EnumerateOptions{Limit: e.Limit, AnchorCore: anchor},
		func(m mapping.Mapping) bool {
			if e.Ctx != nil && res.Evaluations%pollEvery == 0 {
				if err := pollCtx(e.Ctx); err != nil {
					innerErr = err
					return false
				}
			}
			c, err := e.Problem.Obj.Cost(m)
			if err != nil {
				innerErr = err
				return false
			}
			res.Evaluations++
			res.ExactEvals++
			if e.OnProgress != nil && res.Evaluations%4096 == 0 {
				e.OnProgress(Progress{Engine: "ES", Evaluations: res.Evaluations,
					ExactEvals: res.ExactEvals,
					Accepted:   res.Improvements, Rejected: res.Evaluations - res.Improvements,
					BestCost: res.BestCost})
			}
			if res.Evaluations == 1 {
				res.InitialCost = c
			}
			if c < res.BestCost {
				res.BestCost = c
				res.Best = m.Clone()
				res.Improvements++
			}
			return true
		})
	if innerErr != nil {
		return nil, innerErr
	}
	if err == mapping.ErrLimit {
		return res, nil // truncated: not certified
	}
	if err != nil {
		return nil, err
	}
	res.Certified = true
	return res, nil
}

// RandomSearch samples independent random mappings — the baseline of the
// paper's reference [4], which reports that guided mapping beats random
// mapping by more than 60% in energy.
type RandomSearch struct {
	Problem Problem
	Seed    int64
	Samples int // 0 defaults to 1000
	// Ctx, when non-nil, cancels the sampling; Run returns ctx.Err().
	Ctx context.Context
	// OnProgress, when non-nil, receives a snapshot every few hundred
	// samples.
	OnProgress ProgressFunc
}

// Run draws and prices Samples random mappings.
func (r *RandomSearch) Run() (*Result, error) {
	if err := r.Problem.validate(); err != nil {
		return nil, err
	}
	samples := r.Samples
	if samples == 0 {
		samples = 1000
	}
	rng := rand.New(rand.NewSource(r.Seed))
	res := &Result{BestCost: math.Inf(1)}
	for i := 0; i < samples; i++ {
		if r.Ctx != nil && i%pollEvery == 0 {
			if err := pollCtx(r.Ctx); err != nil {
				return nil, err
			}
		}
		m, err := mapping.Random(rng, r.Problem.NumCores, r.Problem.Mesh.NumTiles())
		if err != nil {
			return nil, err
		}
		c, err := r.Problem.Obj.Cost(m)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		res.ExactEvals++
		if i == 0 {
			res.InitialCost = c
		}
		if c < res.BestCost {
			res.BestCost = c
			res.Best = m
			res.Improvements++
		}
		if r.OnProgress != nil && (i+1)%256 == 0 {
			r.OnProgress(Progress{Engine: "random", Step: i + 1, Steps: samples,
				Evaluations: res.Evaluations, ExactEvals: res.ExactEvals,
				Accepted: res.Improvements, Rejected: res.Evaluations - res.Improvements,
				BestCost: res.BestCost})
		}
	}
	return res, nil
}

// HillClimber performs steepest-descent over the swap neighbourhood with
// random restarts: from a random mapping, repeatedly apply the best
// improving swap until none exists. Its O(numTiles²) neighbourhood scan
// per move is where the DeltaObjective fast path pays off most: each
// neighbour is priced in O(deg) instead of a full O(|E|) walk.
type HillClimber struct {
	Problem  Problem
	Seed     int64
	Restarts int // 0 defaults to 3
	// Initial, when non-nil, replaces the first restart's random starting
	// mapping — the warm-start seam (mapping.SeedGreedy plugs in here).
	// Later restarts keep random starts for diversity. Steepest descent
	// never accepts a degrading move, so the first restart's local
	// optimum — and therefore the returned Best — can never price worse
	// than the supplied mapping.
	Initial mapping.Mapping
	// Ctx, when non-nil, cancels the climb; Run returns ctx.Err().
	Ctx context.Context
	// OnProgress, when non-nil, receives a snapshot after every accepted
	// steepest-descent move (Step/Steps count restarts).
	OnProgress ProgressFunc
}

// Run executes the restarts.
func (h *HillClimber) Run() (*Result, error) {
	if err := h.Problem.validate(); err != nil {
		return nil, err
	}
	restarts := h.Restarts
	if restarts == 0 {
		restarts = 3
	}
	rng := rand.New(rand.NewSource(h.Seed))
	numTiles := h.Problem.Mesh.NumTiles()
	res := &Result{BestCost: math.Inf(1)}
	var useDeltaAny bool
	// Telemetry counters across all restarts: each steepest-descent scan
	// accepts at most one neighbour (the applied move) and rejects the
	// rest. Never read by the search itself.
	var accepted, rejected int64
	for r := 0; r < restarts; r++ {
		var cur mapping.Mapping
		if r == 0 && h.Initial != nil {
			if len(h.Initial) != h.Problem.NumCores {
				return nil, fmt.Errorf("search: initial mapping has %d cores, want %d",
					len(h.Initial), h.Problem.NumCores)
			}
			if err := h.Initial.Validate(numTiles); err != nil {
				return nil, err
			}
			cur = h.Initial.Clone()
		} else {
			var err error
			cur, err = mapping.Random(rng, h.Problem.NumCores, numTiles)
			if err != nil {
				return nil, err
			}
		}
		cost, dobj, useDelta, err := bindObjective(h.Problem.Obj, cur)
		if err != nil {
			return nil, err
		}
		useDeltaAny = useDelta
		res.Evaluations++
		res.ExactEvals++
		if r == 0 {
			res.InitialCost = cost
		}
		var inc incumbent
		inc.bind(cur, numTiles, cost)
		// Tier-A bound filter: nil unless the objective is a
		// TieredObjective with a certified lower bound (and the exact tier
		// has no delta path — a delta-capable exact objective is already
		// cheaper than any bound probe).
		var bnd LowerBoundObjective
		if !useDelta {
			if bnd, err = bindBound(h.Problem.Obj, cur); err != nil {
				return nil, err
			}
		}
		for {
			bestD := 0.0
			bestC := 0.0
			var scanned int64
			bestA, bestB := topology.TileID(-1), topology.TileID(-1)
			for a := 0; a < numTiles; a++ {
				for b := a + 1; b < numTiles; b++ {
					ta, tb := topology.TileID(a), topology.TileID(b)
					if inc.occ[ta] == mapping.Unassigned && inc.occ[tb] == mapping.Unassigned {
						continue
					}
					if h.Ctx != nil && res.Evaluations%pollEvery == 0 {
						if err := pollCtx(h.Ctx); err != nil {
							return nil, err
						}
					}
					if bnd != nil {
						// Skip rule: the candidate's certified bound already
						// proves its exact delta cannot beat bestD. lb ≤ c
						// (the exact cost) gives lb−cost ≤ c−cost = d by
						// monotonicity of float subtraction in its first
						// operand, so lb−cost ≥ bestD implies d ≥ bestD and
						// the strict d < bestD selection below could never
						// fire — the skipped candidate is exactly one the
						// exact scan would have rejected, which is what
						// keeps the filtered trajectory bit-identical.
						lb, err := bnd.SwapBound(inc.occ, ta, tb)
						if err != nil {
							return nil, err
						}
						if lb-inc.cost >= bestD {
							res.Evaluations++
							res.BoundSkips++
							scanned++
							continue
						}
					}
					var c, d float64
					if useDelta {
						d, err = dobj.SwapDelta(inc.occ, ta, tb)
						c = inc.cost + d
					} else {
						mapping.SwapTiles(inc.cur, inc.occ, ta, tb)
						c, err = h.Problem.Obj.Cost(inc.cur)
						mapping.SwapTiles(inc.cur, inc.occ, ta, tb)
						d = c - inc.cost
					}
					if err != nil {
						return nil, err
					}
					res.Evaluations++
					res.ExactEvals++
					scanned++
					if d < bestD {
						bestD = d
						bestC = c
						bestA, bestB = ta, tb
					}
				}
			}
			if bestA < 0 {
				rejected += scanned
				break // local optimum
			}
			accepted++
			rejected += scanned - 1
			mapping.SwapTiles(inc.cur, inc.occ, bestA, bestB)
			// Record an exactly recomputed cost rather than accumulating
			// cost += bestD: repeated accumulation drifts away from the
			// true cost and distorts later d < bestD comparisons. On the
			// full path bestC is the evaluated neighbour's full Cost; on
			// the delta path Commit returns the exact updated baseline.
			if useDelta {
				bestC = dobj.Commit(bestA, bestB)
			}
			if bnd != nil {
				bnd.CommitBound(bestA, bestB)
			}
			inc.adopt("hill", h.Problem.Obj, bestC)
			if h.OnProgress != nil {
				b := res.BestCost
				if inc.cost < b {
					b = inc.cost
				}
				h.OnProgress(Progress{Engine: "hill", Step: r + 1, Steps: restarts,
					Evaluations: res.Evaluations, ExactEvals: res.ExactEvals,
					BoundSkips: res.BoundSkips,
					Accepted:   accepted, Rejected: rejected,
					BestCost: b})
			}
		}
		if inc.cost < res.BestCost {
			res.BestCost = inc.cost
			res.Best = inc.cur.Clone()
			res.Improvements++
		}
	}
	if useDeltaAny {
		if err := repriceBest(h.Problem.Obj, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Tabu is a short-term-memory tabu search over the swap neighbourhood
// (extension): the best non-tabu neighbour is taken even when degrading,
// and reversing a recent swap is forbidden for Tenure iterations unless it
// beats the incumbent (aspiration).
type Tabu struct {
	Problem    Problem
	Seed       int64
	Iterations int // 0 defaults to 200
	Tenure     int // 0 defaults to NumTiles/2+1
	// Ctx, when non-nil, cancels the search; Run returns ctx.Err().
	Ctx context.Context
	// OnProgress, when non-nil, receives a snapshot after every iteration.
	OnProgress ProgressFunc
}

// Run executes the tabu search.
func (t *Tabu) Run() (*Result, error) {
	if err := t.Problem.validate(); err != nil {
		return nil, err
	}
	iters := t.Iterations
	if iters == 0 {
		iters = 200
	}
	numTiles := t.Problem.Mesh.NumTiles()
	tenure := t.Tenure
	if tenure == 0 {
		tenure = numTiles/2 + 1
	}
	rng := rand.New(rand.NewSource(t.Seed))
	cur, err := mapping.Random(rng, t.Problem.NumCores, numTiles)
	if err != nil {
		return nil, err
	}
	cost, dobj, useDelta, err := bindObjective(t.Problem.Obj, cur)
	if err != nil {
		return nil, err
	}
	res := &Result{InitialCost: cost, BestCost: cost, Best: cur.Clone(),
		Evaluations: 1, ExactEvals: 1}
	var inc incumbent
	inc.bind(cur, numTiles, cost)
	// Tier-A bound filter; see HillClimber.Run.
	var bnd LowerBoundObjective
	if !useDelta {
		if bnd, err = bindBound(t.Problem.Obj, cur); err != nil {
			return nil, err
		}
	}

	tabuUntil := make(map[[2]topology.TileID]int, numTiles)
	// Telemetry counters: one applied (accepted) move per iteration, the
	// rest of the scanned neighbourhood rejected. Never read by the
	// search itself.
	var accepted, rejected int64
	for it := 0; it < iters; it++ {
		// All neighbour comparisons run in the delta domain: the delta
		// path's SwapDelta and the full path's c − cost are bit-identical
		// for an exact DeltaObjective (same operands), whereas comparing
		// reconstructed absolute costs (cost + d) could round a tie apart
		// and make the two paths pick different moves. The aspiration
		// threshold is expressed the same way, against a per-iteration
		// constant.
		bestD := math.Inf(1)
		var bestC float64
		var scanned int64
		aspire := res.BestCost - inc.cost
		bestA, bestB := topology.TileID(-1), topology.TileID(-1)
		for a := 0; a < numTiles; a++ {
			for b := a + 1; b < numTiles; b++ {
				ta, tb := topology.TileID(a), topology.TileID(b)
				if inc.occ[ta] == mapping.Unassigned && inc.occ[tb] == mapping.Unassigned {
					continue
				}
				if t.Ctx != nil && res.Evaluations%pollEvery == 0 {
					if err := pollCtx(t.Ctx); err != nil {
						return nil, err
					}
				}
				if bnd != nil {
					// Skip rule as in HillClimber.Run: lb−cost ≥ bestD
					// certifies d ≥ bestD, so the candidate could neither
					// be selected (strict d < bestD) nor change any tabu
					// bookkeeping (the scan only reads tabuUntil). The
					// first scanned candidate is never skipped — bestD
					// starts at +Inf — so bestA is found exactly as in the
					// unfiltered scan.
					lb, err := bnd.SwapBound(inc.occ, ta, tb)
					if err != nil {
						return nil, err
					}
					if lb-inc.cost >= bestD {
						res.Evaluations++
						res.BoundSkips++
						scanned++
						continue
					}
				}
				var c, d float64
				if useDelta {
					d, err = dobj.SwapDelta(inc.occ, ta, tb)
					c = inc.cost + d
				} else {
					mapping.SwapTiles(inc.cur, inc.occ, ta, tb)
					c, err = t.Problem.Obj.Cost(inc.cur)
					mapping.SwapTiles(inc.cur, inc.occ, ta, tb)
					d = c - inc.cost
				}
				if err != nil {
					return nil, err
				}
				res.Evaluations++
				res.ExactEvals++
				scanned++
				if tabuUntil[[2]topology.TileID{ta, tb}] > it && d >= aspire {
					continue // tabu and no aspiration
				}
				if d < bestD {
					bestD = d
					bestC = c
					bestA, bestB = ta, tb
				}
			}
		}
		if bestA < 0 {
			rejected += scanned
			break // every move tabu: rare on real instances
		}
		accepted++
		rejected += scanned - 1
		mapping.SwapTiles(inc.cur, inc.occ, bestA, bestB)
		// As in the hill climber, the delta path adopts Commit's exact
		// recompute instead of the accumulated cost + delta.
		if useDelta {
			bestC = dobj.Commit(bestA, bestB)
		}
		if bnd != nil {
			bnd.CommitBound(bestA, bestB)
		}
		inc.adopt("tabu", t.Problem.Obj, bestC)
		tabuUntil[[2]topology.TileID{bestA, bestB}] = it + tenure
		if inc.cost < res.BestCost {
			res.BestCost = inc.cost
			copy(res.Best, inc.cur)
			res.Improvements++
		}
		if t.OnProgress != nil {
			t.OnProgress(Progress{Engine: "tabu", Step: it + 1, Steps: iters,
				Evaluations: res.Evaluations, ExactEvals: res.ExactEvals,
				BoundSkips: res.BoundSkips, Accepted: accepted,
				Rejected: rejected, BestCost: res.BestCost})
		}
	}
	if useDelta {
		if err := repriceBest(t.Problem.Obj, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
