package search

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mapping"
)

// runner abstracts the engines for the cancellation table tests.
type runner interface {
	Run() (*Result, error)
}

// engines builds one of every engine over the same problem, context and
// progress sink.
func engines(p Problem, ctx context.Context, prog ProgressFunc) map[string]runner {
	return map[string]runner{
		"annealer": &Annealer{Problem: p, Seed: 1, TempSteps: 40, Ctx: ctx, OnProgress: prog},
		"hill":     &HillClimber{Problem: p, Seed: 1, Ctx: ctx, OnProgress: prog},
		"tabu":     &Tabu{Problem: p, Seed: 1, Iterations: 40, Ctx: ctx, OnProgress: prog},
		"random":   &RandomSearch{Problem: p, Seed: 1, Samples: 500, Ctx: ctx, OnProgress: prog},
		"es":       &Exhaustive{Problem: p, Ctx: ctx, OnProgress: prog},
		"multi": &MultiAnnealer{Base: Annealer{Problem: p, Seed: 1, TempSteps: 40,
			Ctx: ctx, OnProgress: prog}, Restarts: 2, Workers: 2},
		"sharded": &ShardedExhaustive{Problem: p, Workers: 2, Ctx: ctx, OnProgress: prog},
	}
}

func TestEnginesReturnErrOnPreCanceledContext(t *testing.T) {
	p, _ := testProblem(t, 3, 2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, eng := range engines(p, ctx, nil) {
		if _, err := eng.Run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-canceled ctx returned %v, want context.Canceled", name, err)
		}
	}
}

func TestEnginesCancelMidRun(t *testing.T) {
	// The objective itself trips the cancellation after a few calls; each
	// engine must notice at its next poll and abort with ctx.Err() instead
	// of finishing its budget.
	p, base := testProblem(t, 3, 3, 6)
	for name := range engines(p, nil, nil) {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		tripping := ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
			if calls.Add(1) == 100 {
				cancel()
			}
			return base.Cost(mp)
		})
		tp := p
		tp.Obj = tripping
		eng := engines(tp, ctx, nil)[name]
		if _, err := eng.Run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-run cancel returned %v, want context.Canceled", name, err)
		}
		if n := calls.Load(); n > 100+8*pollEvery {
			t.Errorf("%s: kept evaluating after cancel: %d calls", name, n)
		}
		cancel()
	}
}

func TestBackgroundContextBitIdenticalToNil(t *testing.T) {
	// The cancellation plumbing must be pure overhead: a run under a live
	// context returns exactly the nil-context result.
	p, _ := testProblem(t, 3, 3, 6)
	for name := range engines(p, nil, nil) {
		plain, err := engines(p, nil, nil)[name].Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ctxed, err := engines(p, context.Background(), nil)[name].Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plain.BestCost != ctxed.BestCost || plain.Evaluations != ctxed.Evaluations ||
			plain.InitialCost != ctxed.InitialCost || !mapping.Equal(plain.Best, ctxed.Best) {
			t.Errorf("%s: context changed the walk: %+v vs %+v", name, plain, ctxed)
		}
	}
}

func TestProgressSnapshotsObserveTheWalk(t *testing.T) {
	p, _ := testProblem(t, 3, 2, 4)
	var mu sync.Mutex
	byEngine := map[string][]Progress{}
	prog := func(pr Progress) {
		mu.Lock()
		byEngine[pr.Engine] = append(byEngine[pr.Engine], pr)
		mu.Unlock()
	}
	for name, eng := range engines(p, nil, prog) {
		if _, err := eng.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, engine := range []string{"SA", "hill", "tabu", "random"} {
		snaps := byEngine[engine]
		if len(snaps) == 0 {
			t.Errorf("engine %s emitted no progress", engine)
			continue
		}
		last := snaps[len(snaps)-1]
		if last.Evaluations <= 0 || last.BestCost <= 0 {
			t.Errorf("engine %s: implausible snapshot %+v", engine, last)
		}
	}
	// The multi-restart annealer labels snapshots with their restart
	// index; with 2 restarts both labels must appear.
	restarts := map[int]bool{}
	for _, pr := range byEngine["SA"] {
		restarts[pr.Restart] = true
	}
	if !restarts[0] || !restarts[1] {
		t.Errorf("MultiAnnealer restart labels missing: %v", restarts)
	}
}
