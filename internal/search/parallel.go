package search

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/mapping"
	"repro/internal/par"
	"repro/internal/topology"
)

// ObjectiveFactory builds one objective instance per worker goroutine.
// The core evaluators are stateful (the CWM route cache and incremental
// DeltaObjective binding, the CDCM wormhole simulator) and therefore not
// safe for concurrent use; the parallel engines call the factory once per
// worker lane instead of sharing Problem.Obj. A nil factory falls back to
// the shared objective, which is only correct when that objective is
// concurrency-safe (e.g. a pure ObjectiveFunc) — in particular a shared
// DeltaObjective would race on its bound mapping. Each lane's instance
// takes the same engine-internal fast path (DeltaObjective or full Cost)
// as a serial run would, so the worker count never changes results.
type ObjectiveFactory func() (Objective, error)

// perWorkerObjectives materialises one objective per worker lane. All
// instances are semantically identical evaluators, so which lane prices
// which job cannot affect results.
func perWorkerObjectives(n int, shared Objective, factory ObjectiveFactory) ([]Objective, error) {
	objs := make([]Objective, n)
	for i := range objs {
		if factory == nil {
			objs[i] = shared
			continue
		}
		obj, err := factory()
		if err != nil {
			return nil, err
		}
		objs[i] = obj
	}
	return objs, nil
}

// MultiAnnealer runs N independent annealing restarts and keeps the best
// result. Restart i derives its seed deterministically from the base run
// (Base.Seed + i), restarts are distributed over a bounded worker pool,
// and the winner is chosen by lowest cost with the lowest restart index
// breaking ties — so for a fixed Base.Seed and Restarts the outcome is
// bit-identical for every Workers value, including Workers == 1.
type MultiAnnealer struct {
	// Base configures every restart; restart i runs Base with
	// Seed = Base.Seed + int64(i).
	Base Annealer
	// Restarts is the number of independent annealing runs (0 = 1).
	// Results depend on Restarts but never on Workers.
	Restarts int
	// Workers bounds the number of concurrent restarts (0 = 1).
	Workers int
	// NewObjective supplies a private objective per worker lane; see
	// ObjectiveFactory. When nil, all restarts share Base.Problem.Obj.
	NewObjective ObjectiveFactory
}

// Run executes the restarts and merges their results. Cancellation and
// progress reporting are configured on Base: Base.Ctx cancels every
// restart (running restarts stop at their next poll, queued restarts are
// never dispatched), and Base.OnProgress receives each restart's
// snapshots with Restart set to the restart index — concurrently when
// Workers > 1, so the callback must be safe for concurrent use.
func (m *MultiAnnealer) Run() (*Result, error) {
	restarts := m.Restarts
	if restarts == 0 {
		restarts = 1
	}
	if restarts < 0 {
		return nil, fmt.Errorf("search: %d restarts", restarts)
	}
	workers := par.Workers(m.Workers)
	objs, err := perWorkerObjectives(min(workers, restarts), m.Base.Problem.Obj, m.NewObjective)
	if err != nil {
		return nil, err
	}
	probe := m.Base.Problem
	probe.Obj = objs[0]
	if err := probe.validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, restarts)
	err = par.ForEachWorkerCtx(m.Base.Ctx, restarts, workers, func(w, i int) error {
		a := m.Base // copy: each restart mutates only its own Annealer
		a.Seed = m.Base.Seed + int64(i)
		a.Problem.Obj = objs[w]
		if base := m.Base.OnProgress; base != nil {
			a.OnProgress = func(p Progress) {
				p.Restart = i
				base(p)
			}
		}
		res, err := a.Run()
		if err != nil {
			return fmt.Errorf("search: restart %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRestarts(results), nil
}

// mergeRestarts folds per-restart results into the reported Result: the
// winner's mapping and cost, with Evaluations and Improvements summed
// across restarts (they are real objective calls and real incumbent
// improvements, and the sums are scheduling-independent). InitialCost is
// restart 0's, matching the single-run engine's meaning of "the starting
// point of the base seed".
func mergeRestarts(results []*Result) *Result {
	win := 0
	for i := 1; i < len(results); i++ {
		if results[i].BestCost < results[win].BestCost {
			win = i
		}
	}
	merged := &Result{
		Best:        results[win].Best,
		BestCost:    results[win].BestCost,
		InitialCost: results[0].InitialCost,
	}
	for _, r := range results {
		merged.Evaluations += r.Evaluations
		merged.ExactEvals += r.ExactEvals
		merged.BoundSkips += r.BoundSkips
		merged.SurrogateEvals += r.SurrogateEvals
		merged.Improvements += r.Improvements
	}
	return merged
}

// ShardedExhaustive partitions the exhaustive enumeration by the tile
// assigned to core 0: one shard per candidate first tile, shards spread
// over a bounded worker pool, results merged in ascending tile order with
// a strict-improvement rule. The merged Best, BestCost, Evaluations and
// Certified are bit-identical to the serial Exhaustive engine for every
// Workers value, because serial enumeration visits first tiles in exactly
// that ascending order and keeps the first of equal-cost optima. The
// sharded path runs even at Workers == 1 (shards just execute in order on
// one goroutine), so every reported field — including the shard-local
// Improvements sum — is independent of the worker count.
type ShardedExhaustive struct {
	Problem Problem
	// Anchor pins core 0 to the canonical mesh quadrant, exactly like
	// Exhaustive.Anchor; out-of-quadrant shards are simply not spawned.
	Anchor bool
	// Limit bounds the total number of evaluated placements (0 = none).
	// A non-zero limit forces the serial engine — the limit is a global
	// early-exit whose cut point depends on enumeration order, and
	// replicating it shard-locally would change which placements are
	// seen. Serial fallback preserves the documented ErrLimit semantics.
	Limit int64
	// Workers bounds shard concurrency (0 = 1).
	Workers int
	// NewObjective supplies a private objective per worker lane; see
	// ObjectiveFactory. When nil, shards share Problem.Obj.
	NewObjective ObjectiveFactory
	// Ctx, when non-nil, cancels the enumeration: running shards stop at
	// their next poll, queued shards are never dispatched, and Run
	// returns ctx.Err(). Nil is bit-identical to the historical
	// behaviour.
	Ctx context.Context
	// OnProgress, when non-nil, receives per-shard snapshots with Restart
	// set to the shard index — concurrently when Workers > 1, so the
	// callback must be safe for concurrent use.
	OnProgress ProgressFunc
}

// Run enumerates the space.
func (s *ShardedExhaustive) Run() (*Result, error) {
	workers := par.Workers(s.Workers)
	if s.Limit > 0 {
		objs, err := perWorkerObjectives(1, s.Problem.Obj, s.NewObjective)
		if err != nil {
			return nil, err
		}
		prob := s.Problem
		prob.Obj = objs[0]
		return (&Exhaustive{Problem: prob, Anchor: s.Anchor, Limit: s.Limit,
			Ctx: s.Ctx, OnProgress: s.OnProgress}).Run()
	}

	if s.Problem.Mesh == nil {
		return nil, errors.New("search: nil mesh")
	}
	tiles := s.firstTiles()
	objs, err := perWorkerObjectives(min(workers, len(tiles)), s.Problem.Obj, s.NewObjective)
	if err != nil {
		return nil, err
	}
	probe := s.Problem
	probe.Obj = objs[0]
	if err := probe.validate(); err != nil {
		return nil, err
	}
	shards := make([]*Result, len(tiles))
	err = par.ForEachWorkerCtx(s.Ctx, len(tiles), workers, func(w, i int) error {
		res := &Result{BestCost: math.Inf(1)}
		obj := objs[w]
		var innerErr error
		err := mapping.Enumerate(s.Problem.Mesh, s.Problem.NumCores,
			mapping.EnumerateOptions{AnchorCore: -1, PinFirst: true, FirstTile: tiles[i]},
			func(m mapping.Mapping) bool {
				if s.Ctx != nil && res.Evaluations%pollEvery == 0 {
					if err := pollCtx(s.Ctx); err != nil {
						innerErr = err
						return false
					}
				}
				c, err := obj.Cost(m)
				if err != nil {
					innerErr = err
					return false
				}
				res.Evaluations++
				res.ExactEvals++
				if res.Evaluations == 1 {
					res.InitialCost = c
				}
				if s.OnProgress != nil && res.Evaluations%4096 == 0 {
					s.OnProgress(Progress{Engine: "ES", Restart: i,
						Evaluations: res.Evaluations, ExactEvals: res.ExactEvals,
						Accepted: res.Improvements,
						Rejected: res.Evaluations - res.Improvements,
						BestCost: res.BestCost})
				}
				if c < res.BestCost {
					res.BestCost = c
					res.Best = m.Clone()
					res.Improvements++
				}
				return true
			})
		if innerErr != nil {
			return innerErr
		}
		if err != nil {
			return err
		}
		shards[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(shards), nil
}

// firstTiles lists the candidate tiles for core 0 in ascending order,
// honouring the symmetry anchor (mapping.InAnchorQuadrant, the same rule
// EnumerateOptions.AnchorCore applies).
func (s *ShardedExhaustive) firstTiles() []topology.TileID {
	mesh := s.Problem.Mesh
	var tiles []topology.TileID
	for t := 0; t < mesh.NumTiles(); t++ {
		if s.Anchor && !mapping.InAnchorQuadrant(mesh, topology.TileID(t)) {
			continue
		}
		tiles = append(tiles, topology.TileID(t))
	}
	return tiles
}

// mergeShards folds per-shard results in ascending first-tile order. The
// strict < mirrors the serial engine's incumbent rule, so equal-cost
// optima resolve to the one the serial enumeration would have found
// first. Improvements sums shard-local improvement counts (a per-shard
// quantity; the serial engine's global count depends on an interleaving
// that sharding removes). InitialCost is the first shard's first
// placement — also the first placement of the serial enumeration.
func mergeShards(shards []*Result) *Result {
	merged := &Result{BestCost: math.Inf(1), Certified: true}
	for i, r := range shards {
		merged.Evaluations += r.Evaluations
		merged.ExactEvals += r.ExactEvals
		merged.BoundSkips += r.BoundSkips
		merged.SurrogateEvals += r.SurrogateEvals
		merged.Improvements += r.Improvements
		if i == 0 {
			merged.InitialCost = r.InitialCost
		}
		if r.Best != nil && r.BestCost < merged.BestCost {
			merged.BestCost = r.BestCost
			merged.Best = r.Best
		}
	}
	return merged
}
