package search

import (
	"math"

	"repro/internal/mapping"
)

// VectorObjective is the component-aware extension of Objective: instead
// of one collapsed scalar it prices a mapping on K named axes — energy
// and latency in this repository — so a front engine can treat them as
// competing objectives the way the 3-D mapping literature does (Jha et
// al., energy- and latency-aware mapping) rather than folding them into
// one number up front.
//
// The scalar seam stays authoritative: Cost(mp) must equal the weighted
// collapse of the component vector, CollapseWeights()·Components(mp),
// bit for bit. Every scalar engine therefore keeps running unchanged on
// a VectorObjective, and the collapse identity is pinned by tests (the
// same style as the delta-equivalence pins).
//
// Hot-path contract: like Objective.Cost, ComponentsInto is called once
// per proposed move with a structurally valid, injective mapping and may
// skip per-call validation. Implementations fill the caller's dst buffer
// so the front engines evaluate candidates without allocating.
type VectorObjective interface {
	Objective
	// Axes names the components, in the order ComponentsInto fills them.
	// The slice is fixed for the evaluator's lifetime; callers must not
	// mutate it.
	Axes() []string
	// ComponentsInto prices mp on every axis into dst, which must hold at
	// least len(Axes()) entries. Lower is better on every axis.
	ComponentsInto(mp mapping.Mapping, dst []float64) error
	// CollapseWeights returns the weight vector w such that
	// Cost(mp) == Σ w[k]·components[k] bitwise for every valid mapping.
	// The slice is fixed for the evaluator's lifetime; callers must not
	// mutate it.
	CollapseWeights() []float64
}

// Dominates reports Pareto dominance for minimisation: a dominates b
// when a is no worse on every axis and strictly better on at least one.
// Equal vectors dominate in neither direction.
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Collapse folds a component vector with the given weights — the scalar
// the legacy Objective seam reports. The accumulation order (ascending
// axis index) is part of the bit-identity contract between Cost and the
// vector view.
func Collapse(weights, components []float64) float64 {
	var s float64
	for i, w := range weights {
		s += w * components[i]
	}
	return s
}

// FrontPoint is one non-dominated mapping of a Pareto front.
type FrontPoint struct {
	// Mapping is the placement.
	Mapping mapping.Mapping
	// Components prices the mapping per axis (same order as the front's
	// Axes), exactly as the evaluator returned them — no accumulated
	// deltas, so re-evaluating reproduces them bit for bit.
	Components []float64
	// Cost is the scalar collapse CollapseWeights·Components, i.e. what
	// Objective.Cost reports for this mapping.
	Cost float64
}

// less orders front points deterministically: lexicographic on the
// component vector, then lexicographic on the mapping — the tie-break
// mirroring the lowest-restart-index idiom of the scalar engines (the
// archive keeps the lexicographically smaller of two exactly-equal
// fronts regardless of discovery order).
func (p *FrontPoint) less(q *FrontPoint) bool {
	for i := range p.Components {
		if p.Components[i] != q.Components[i] {
			return p.Components[i] < q.Components[i]
		}
	}
	return p.lessMapping(q)
}

func (p *FrontPoint) lessMapping(q *FrontPoint) bool {
	for i := range p.Mapping {
		if p.Mapping[i] != q.Mapping[i] {
			return p.Mapping[i] < q.Mapping[i]
		}
	}
	return false
}

// equalComponents reports exact per-axis equality.
func (p *FrontPoint) equalComponents(q *FrontPoint) bool {
	for i := range p.Components {
		if p.Components[i] != q.Components[i] {
			return false
		}
	}
	return true
}

// Archive maintains a mutually non-dominated set of mappings in
// deterministic order. It is the accumulator of the front engines: every
// evaluated candidate is offered, dominated candidates are rejected,
// and an inserted candidate evicts the points it dominates.
//
// Determinism: the archive is kept sorted by FrontPoint.less, and two
// candidates with exactly equal component vectors resolve to the
// lexicographically smaller mapping whatever the offer order — so two
// walks discovering the same front in different orders produce identical
// archives, which is what makes the merged front independent of the
// worker count. When a capacity is set, overflow evicts the point with
// the smallest crowding distance (axis extremes are never evicted), with
// sort position breaking crowding ties; the rule depends only on the
// archive's contents, never on arrival order.
//
// An Archive is not safe for concurrent use; the front engines keep one
// per walk and merge in walk order.
type Archive struct {
	cap int
	pts []FrontPoint
	// inserted counts successful Offer calls — the front analogue of
	// Result.Improvements.
	inserted int64
}

// NewArchive returns an archive bounded to capacity points (0 = unbounded).
func NewArchive(capacity int) *Archive {
	return &Archive{cap: capacity}
}

// Len returns the current front size.
func (a *Archive) Len() int { return len(a.pts) }

// Inserted counts how many offers were admitted (including points later
// evicted by dominating insertions or capacity pruning).
func (a *Archive) Inserted() int64 { return a.inserted }

// Points returns the archived front in deterministic order. The slice
// aliases the archive's storage; callers must not mutate it.
func (a *Archive) Points() []FrontPoint { return a.pts }

// Offer proposes a candidate. It returns true when the candidate entered
// the archive, in which case mp and components were copied (the caller
// may keep mutating its buffers); a rejected offer copies nothing, so
// offering every evaluated candidate stays cheap on the hot loop.
func (a *Archive) Offer(mp mapping.Mapping, components []float64, cost float64) bool {
	cand := FrontPoint{Mapping: mp, Components: components, Cost: cost}
	// Reject if dominated; evict the points the candidate dominates.
	// One pass suffices: survivors are mutually non-dominated, so a
	// candidate dominating one point cannot be dominated by another.
	w := 0
	equalAt := -1
	for i := range a.pts {
		p := &a.pts[i]
		if Dominates(p.Components, cand.Components) {
			return false
		}
		if Dominates(cand.Components, p.Components) {
			continue // evict
		}
		if equalAt < 0 && p.equalComponents(&cand) {
			equalAt = w
		}
		a.pts[w] = a.pts[i]
		w++
	}
	a.pts = a.pts[:w]
	if equalAt >= 0 {
		// Exactly equal on every axis: keep the lexicographically smaller
		// mapping, independent of discovery order.
		if cand.lessMapping(&a.pts[equalAt]) {
			a.pts[equalAt].Mapping = mp.Clone()
			a.pts[equalAt].Cost = cost
			a.inserted++
			return true
		}
		return false
	}
	cand.Mapping = mp.Clone()
	cand.Components = append([]float64(nil), components...)
	a.insertSorted(cand)
	a.inserted++
	if a.cap > 0 && len(a.pts) > a.cap {
		a.evictCrowded()
	}
	return true
}

// OfferPoint is Offer for an already-materialised point (front merging);
// the point's slices are adopted, not copied.
func (a *Archive) OfferPoint(p FrontPoint) bool {
	return a.Offer(p.Mapping, p.Components, p.Cost)
}

// insertSorted places cand at its deterministic position.
func (a *Archive) insertSorted(cand FrontPoint) {
	lo, hi := 0, len(a.pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.pts[mid].less(&cand) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a.pts = append(a.pts, FrontPoint{})
	copy(a.pts[lo+1:], a.pts[lo:])
	a.pts[lo] = cand
}

// evictCrowded removes the point with the smallest crowding distance —
// the NSGA-II spread heuristic: per axis, points are ranked and each
// interior point accumulates the normalised gap between its rank
// neighbours; axis extremes get +Inf and are therefore never evicted.
// Ties evict the point latest in the deterministic sort order, so the
// pruned archive depends only on its contents.
func (a *Archive) evictCrowded() {
	n := len(a.pts)
	k := len(a.pts[0].Components)
	crowd := make([]float64, n)
	rank := make([]int, n)
	for ax := 0; ax < k; ax++ {
		for i := range rank {
			rank[i] = i
		}
		// Insertion sort by the axis value, stable on the deterministic
		// archive order (n is at most cap+1, and evictions are rare next
		// to evaluations, so simplicity beats an O(n log n) sort here).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && a.pts[rank[j]].Components[ax] < a.pts[rank[j-1]].Components[ax]; j-- {
				rank[j], rank[j-1] = rank[j-1], rank[j]
			}
		}
		lo := a.pts[rank[0]].Components[ax]
		hi := a.pts[rank[n-1]].Components[ax]
		span := hi - lo
		crowd[rank[0]] = math.Inf(1)
		crowd[rank[n-1]] = math.Inf(1)
		if span <= 0 {
			continue // axis is flat: contributes nothing to interior spread
		}
		for r := 1; r < n-1; r++ {
			i := rank[r]
			crowd[i] += (a.pts[rank[r+1]].Components[ax] - a.pts[rank[r-1]].Components[ax]) / span
		}
	}
	evict := 0
	for i := 1; i < n; i++ {
		// Strictly smaller crowding wins; on ties the later point in sort
		// order is evicted, so scanning forward with >= picks it.
		if crowd[i] <= crowd[evict] {
			evict = i
		}
	}
	a.pts = append(a.pts[:evict], a.pts[evict+1:]...)
}

// FrontResult is the outcome of one front-engine run: the scalar
// Result's multi-objective sibling.
type FrontResult struct {
	// Axes names the component axes (from the objective).
	Axes []string
	// Weights is the objective's collapse vector: Cost of every point is
	// Weights·Components.
	Weights []float64
	// Points is the mutually non-dominated front in deterministic order
	// (lexicographic components, then mapping).
	Points []FrontPoint
	// InitialCost is the scalar collapse of walk 0's starting mapping.
	InitialCost float64
	// Evaluations counts component evaluations across all walks.
	Evaluations int64
	// ExactEvals / SurrogateEvals split Evaluations by the tier that
	// priced each candidate (the front engines never use the tier-A
	// bound, so Evaluations == ExactEvals + SurrogateEvals here). Runs
	// without a surrogate report ExactEvals == Evaluations.
	ExactEvals, SurrogateEvals int64
	// Improvements counts archive insertions across all walks (points
	// that advanced a walk's front, including ones later evicted by
	// better candidates).
	Improvements int64
}

// Best returns the front point with the lowest scalar collapse — the
// mapping the legacy scalar seam would report — with the deterministic
// front order breaking exact cost ties. It returns false on an empty
// front.
func (f *FrontResult) Best() (FrontPoint, bool) {
	if len(f.Points) == 0 {
		return FrontPoint{}, false
	}
	best := 0
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Cost < f.Points[best].Cost {
			best = i
		}
	}
	return f.Points[best], true
}
