// Package search provides the mapping-space exploration engines of the
// FRW framework: simulated annealing (the paper's workhorse), exhaustive
// search (used on small NoCs to certify optimality), plus hill climbing,
// random sampling and tabu search as extensions. All engines are
// deterministic under a fixed seed and generic over an Objective, so the
// same machinery explores both the CWM and the CDCM cost functions.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/topology"
)

// Objective prices a mapping; lower is better. Implementations are the
// CWM evaluator (EDyNoC of equation (3)) and the CDCM evaluator (ENoC of
// equation (10)) in package core.
//
// Hot-path contract: the engines call Cost once per proposed move, always
// with a structurally valid, injective mapping — starting points are
// validated once up front (mapping.Random output, or the explicit
// Initial/Reset validation) and every subsequent move is an
// injectivity-preserving tile swap. Implementations may therefore skip
// per-call validation inside Cost. Callers pricing externally supplied
// mappings must validate them first (mapping.Validate) or go through an
// entry point that does, such as core.CWM.Reset or core.CWM.Traffic.
type Objective interface {
	Cost(mp mapping.Mapping) (float64, error)
}

// DeltaObjective is an optional extension of Objective for evaluators
// that can price a single tile swap incrementally. A swap of tiles
// (ta, tb) only changes the contributions of the edges incident to the
// affected cores, so an implementation holding per-core incidence lists
// prices a move in O(deg(a)+deg(b)) instead of the O(|E|) full walk —
// the difference between tolerable and fast on large meshes, where the
// engines evaluate tens of thousands of moves per run.
//
// The protocol is bind/price/apply:
//
//	cost, _ := obj.Reset(mp)           // bind mp (copied) and price it fully
//	d, _ := obj.SwapDelta(occ, ta, tb) // price a proposed swap, no mutation
//	cost = obj.Commit(ta, tb)          // make an accepted swap permanent
//
// occ must be the occupancy view of the bound mapping (the engines
// maintain it alongside their working mapping). The engines type-assert
// their Problem.Obj against this interface and fall back to plain Cost
// when it is absent (the CDCM simulator keeps the full path: contention
// is global, so no cheap swap delta exists).
//
// Commit returns the exact cost of the updated baseline, and the engines
// adopt it as their tracked cost: accumulating cost += delta instead
// would let floating-point rounding drift the walk away from the
// full-recompute path and flip comparisons on exact cost ties. As a
// final guard — implementations whose deltas are only approximately
// consistent with Cost still converge — the engines also re-price the
// returned Best with one full Cost call.
//
// A DeltaObjective is stateful between Reset and the last Commit and
// therefore never safe for concurrent use; the parallel engines must
// receive an ObjectiveFactory so each worker lane binds its own instance.
type DeltaObjective interface {
	Objective
	// Reset binds a copy of mp as the incremental baseline and returns
	// its full cost. It validates mp (including injectivity) — the one
	// validation point of the hot-path contract.
	Reset(mp mapping.Mapping) (float64, error)
	// SwapDelta returns cost(swapped) − cost(bound) for exchanging the
	// occupants of ta and tb, without applying the swap. occ is the
	// occupancy view of the bound mapping.
	SwapDelta(occ []model.CoreID, ta, tb topology.TileID) (float64, error)
	// Commit applies a swap to the bound state and returns the exact
	// cost of the updated baseline. Call it exactly when the engine
	// accepts a move previously priced with SwapDelta.
	Commit(ta, tb topology.TileID) float64
}

// ObjectiveFunc adapts a plain function to the Objective interface.
type ObjectiveFunc func(mp mapping.Mapping) (float64, error)

// Cost implements Objective.
func (f ObjectiveFunc) Cost(mp mapping.Mapping) (float64, error) { return f(mp) }

// bindObjective primes an objective for one walk over the given starting
// mapping: a DeltaObjective binds it via Reset (which also validates
// injectivity), the fallback prices it with a plain Cost call. A
// TieredObjective is unwrapped to its exact tier first, so tiered runs
// bind and price on exactly the bare evaluator's code path. The caller
// counts the returned evaluation (an exact one).
func bindObjective(obj Objective, mp mapping.Mapping) (cost float64, dobj DeltaObjective, useDelta bool, err error) {
	obj = exactOf(obj)
	if dobj, ok := obj.(DeltaObjective); ok {
		c, err := dobj.Reset(mp)
		return c, dobj, true, err
	}
	c, err := obj.Cost(mp)
	return c, nil, false, err
}

// repriceBest re-prices res.Best with one full evaluation — the delta
// path's final guard against objectives whose deltas are only
// approximately consistent with Cost. Deliberately not counted in
// res.Evaluations: it is a guard, not search work, and keeping the count
// identical to the full-recompute path makes the two paths directly
// comparable in tests.
func repriceBest(obj Objective, res *Result) error {
	c, err := obj.Cost(res.Best)
	if err != nil {
		return err
	}
	res.BestCost = c
	return nil
}

// Result reports the outcome of one search run.
type Result struct {
	// Best is the lowest-cost mapping found.
	Best mapping.Mapping
	// BestCost is its objective value.
	BestCost float64
	// InitialCost is the objective value of the starting mapping.
	InitialCost float64
	// Evaluations counts candidate pricings, whatever tier priced them:
	// Evaluations == ExactEvals + BoundSkips + SurrogateEvals always
	// holds, and a tier-A run's Evaluations equals the unfiltered run's
	// (skipped candidates still count — they were priced, by the bound).
	Evaluations int64
	// ExactEvals counts pricings that ran the exact objective. A run
	// without tiers has ExactEvals == Evaluations.
	ExactEvals int64
	// BoundSkips counts candidates dismissed by the tier-A certified
	// lower bound without an exact pricing.
	BoundSkips int64
	// SurrogateEvals counts candidates priced by the tier-B calibrated
	// surrogate instead of the exact objective.
	SurrogateEvals int64
	// Improvements counts strict improvements of the incumbent best.
	Improvements int64
	// Certified is true when the whole space was enumerated (exhaustive
	// search without hitting a limit), i.e. Best is a global optimum.
	Certified bool
}

// Problem describes the placement instance shared by all engines.
type Problem struct {
	Mesh     *topology.Mesh
	NumCores int
	Obj      Objective
}

func (p *Problem) validate() error {
	if p.Mesh == nil {
		return errors.New("search: nil mesh")
	}
	if p.Obj == nil {
		return errors.New("search: nil objective")
	}
	if p.NumCores <= 0 || p.NumCores > p.Mesh.NumTiles() {
		return fmt.Errorf("search: %d cores cannot be placed on %d tiles",
			p.NumCores, p.Mesh.NumTiles())
	}
	return nil
}

// Annealer is the paper's simulated-annealing engine: start from a random
// mapping, propose tile swaps, accept degradations with Metropolis
// probability under a geometrically cooling temperature, and keep the best
// mapping seen.
type Annealer struct {
	Problem Problem
	// Seed makes the run reproducible.
	Seed int64
	// Initial, when non-nil, replaces the random starting mapping.
	Initial mapping.Mapping
	// InitialTemp is the starting temperature in objective units. Zero
	// auto-calibrates it from sampled moves so that ~90% of degrading
	// moves are initially accepted (objective magnitudes here are
	// picojoules, so a fixed default would be meaningless).
	InitialTemp float64
	// Alpha is the geometric cooling factor in (0,1); 0 defaults to 0.95.
	Alpha float64
	// MovesPerTemp is the number of proposed swaps per temperature step;
	// 0 defaults to 10 × NumTiles.
	MovesPerTemp int
	// TempSteps bounds the number of cooling steps; 0 defaults to 100.
	TempSteps int
	// StallSteps stops early after this many consecutive temperature
	// steps without improving the incumbent; 0 defaults to 20.
	StallSteps int
	// Reheats restarts a stalled schedule: the walk jumps back to the
	// best mapping and the temperature resets to half the previous
	// starting temperature, up to Reheats times. Reheating spends the
	// same per-step budget but escapes local basins on rugged landscapes
	// (the contention-driven CDCM objective in particular).
	Reheats int
	// Ctx, when non-nil, makes the run cancellable: the inner loops poll
	// it every few evaluations and Run returns ctx.Err() once it is done.
	// A nil Ctx (the default) takes exactly the historical code path —
	// polling never touches the RNG or the incumbent, so results are
	// bit-identical with or without a context.
	Ctx context.Context
	// OnProgress, when non-nil, receives a snapshot after every
	// temperature step. Observational only; see ProgressFunc.
	OnProgress ProgressFunc
}

// Run executes the annealing schedule.
func (a *Annealer) Run() (*Result, error) {
	if err := a.Problem.validate(); err != nil {
		return nil, err
	}
	if err := pollCtx(a.Ctx); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed))
	numTiles := a.Problem.Mesh.NumTiles()

	cur := a.Initial
	if cur == nil {
		var err error
		cur, err = mapping.Random(rng, a.Problem.NumCores, numTiles)
		if err != nil {
			return nil, err
		}
	} else {
		if len(cur) != a.Problem.NumCores {
			return nil, fmt.Errorf("search: initial mapping has %d cores, want %d", len(cur), a.Problem.NumCores)
		}
		if err := cur.Validate(numTiles); err != nil {
			return nil, err
		}
		cur = cur.Clone()
	}
	occ := cur.Occupants(numTiles)

	res := &Result{}
	cost, dobj, useDelta, err := bindObjective(a.Problem.Obj, cur)
	if err != nil {
		return nil, err
	}
	res.Evaluations++
	res.ExactEvals++
	res.InitialCost = cost
	res.Best = cur.Clone()
	res.BestCost = cost

	// Tier-B surrogate walk (see TieredObjective): candidates are priced
	// on the calibrated surrogate and only accepted moves pay an exact
	// pricing, so `cost` (and therefore Best/BestCost) stays exact while
	// the Metropolis decisions run on surrogate deltas. scost tracks the
	// surrogate's own baseline the way cost tracks the exact one on the
	// delta path. Never combined with useDelta: a delta-capable exact
	// objective is already as cheap as any surrogate.
	surr := surrogateOf(a.Problem.Obj)
	useSurr := surr != nil && !useDelta
	var scost float64
	if useSurr {
		if scost, err = surr.Reset(cur); err != nil {
			return nil, err
		}
	}

	// A 1-tile mesh admits exactly one mapping, so it is already the
	// optimum — and propose() below could never draw two distinct tiles:
	// without this return the calibration pass would spin forever.
	if numTiles < 2 {
		return res, nil
	}

	alpha := a.Alpha
	if alpha == 0 {
		alpha = 0.95
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("search: alpha %g outside (0,1)", alpha)
	}
	moves := a.MovesPerTemp
	if moves == 0 {
		moves = 10 * numTiles
	}
	steps := a.TempSteps
	if steps == 0 {
		steps = 100
	}
	stall := a.StallSteps
	if stall == 0 {
		stall = 20
	}

	propose := func() (ta, tb topology.TileID) {
		for {
			// Draw the first tile through a uniform core, so it is always
			// occupied: a swap of two empty tiles is a no-op, and on a
			// sparsely occupied mesh drawing tiles directly wastes most
			// draws on empty-empty pairs before finding a real move.
			ta = cur[rng.Intn(len(cur))]
			tb = topology.TileID(rng.Intn(numTiles))
			if ta != tb {
				return ta, tb
			}
		}
	}

	// price returns the would-be cost of swapping (ta, tb) and its delta
	// against the current cost, leaving cur/occ untouched. The delta path
	// asks the objective for the O(deg) incremental price; the fallback
	// applies the swap, runs a full Cost, and undoes it.
	price := func(ta, tb topology.TileID) (float64, float64, error) {
		if useDelta {
			d, err := dobj.SwapDelta(occ, ta, tb)
			return cost + d, d, err
		}
		if useSurr {
			// Surrogate pricing: the returned delta (and so the Metropolis
			// decision) lives in the surrogate's own scale.
			d, err := surr.SwapDelta(occ, ta, tb)
			return scost + d, d, err
		}
		mapping.SwapTiles(cur, occ, ta, tb)
		c, err := a.Problem.Obj.Cost(cur)
		mapping.SwapTiles(cur, occ, ta, tb) // undo
		return c, c - cost, err
	}
	// countEval attributes one priced candidate to the tier that priced
	// it; Evaluations always advances so the poll cadence and the
	// reported totals are tier-independent.
	countEval := func() {
		res.Evaluations++
		if useSurr {
			res.SurrogateEvals++
		} else {
			res.ExactEvals++
		}
	}
	// accept applies the swap priced at newCost. On the delta path the
	// tracked cost is Commit's exact recompute of the updated baseline,
	// not an accumulation of deltas — see the DeltaObjective contract. On
	// the surrogate path the applied move is immediately re-priced
	// exactly: the walk may be steered by the surrogate, but the tracked
	// incumbent (and so Best/BestCost) only ever holds exact values.
	accept := func(ta, tb topology.TileID, newCost float64) error {
		mapping.SwapTiles(cur, occ, ta, tb)
		switch {
		case useDelta:
			newCost = dobj.Commit(ta, tb)
		case useSurr:
			scost = surr.Commit(ta, tb)
			c, err := a.Problem.Obj.Cost(cur)
			if err != nil {
				return err
			}
			res.Evaluations++
			res.ExactEvals++
			newCost = c
		}
		cost = newCost
		return nil
	}

	temp := a.InitialTemp
	if temp <= 0 {
		// Calibration pass: sample some moves and set T0 so that an
		// average degradation is accepted with probability ~0.9.
		var sum float64
		var n int
		for i := 0; i < 40; i++ {
			if a.Ctx != nil && res.Evaluations%pollEvery == 0 {
				if err := pollCtx(a.Ctx); err != nil {
					return nil, err
				}
			}
			ta, tb := propose()
			_, d, err := price(ta, tb)
			if err != nil {
				return nil, err
			}
			countEval()
			if d > 0 {
				sum += d
				n++
			}
		}
		if n > 0 {
			temp = (sum / float64(n)) / -math.Log(0.9)
		} else {
			// Start in a local minimum w.r.t. sampled moves: any positive
			// temperature works; pick one proportional to the cost scale.
			temp = math.Max(cost*0.01, 1e-300)
		}
	}

	stalled := 0
	reheatsLeft := a.Reheats
	baseTemp := temp
	// Telemetry counters: updated on every move decision, emitted in
	// Progress snapshots, never read by the walk itself — so counting
	// cannot perturb the RNG stream or the incumbent.
	var accepted, rejected int64
	for step := 0; step < steps; step++ {
		if stalled >= stall {
			if reheatsLeft <= 0 {
				break
			}
			// Reheat: continue from the incumbent best at half the
			// previous starting temperature.
			reheatsLeft--
			baseTemp /= 2
			temp = baseTemp
			copy(cur, res.Best)
			for i := range occ {
				occ[i] = mapping.Unassigned
			}
			for c, tl := range cur {
				occ[tl] = model.CoreID(c)
			}
			cost = res.BestCost
			if useDelta {
				// Rebind the incremental baseline to the jump target. The
				// full recompute also flushes any floating-point drift the
				// accumulated deltas picked up since the last Reset.
				c, err := dobj.Reset(cur)
				if err != nil {
					return nil, err
				}
				cost = c
				res.BestCost = c
			}
			if useSurr {
				// Rebind the surrogate baseline to the jump target; cost
				// stays the incumbent's exact BestCost.
				if scost, err = surr.Reset(cur); err != nil {
					return nil, err
				}
			}
			stalled = 0
		}
		improvedThisStep := false
		for mv := 0; mv < moves; mv++ {
			if a.Ctx != nil && res.Evaluations%pollEvery == 0 {
				if err := pollCtx(a.Ctx); err != nil {
					return nil, err
				}
			}
			ta, tb := propose()
			c, d, err := price(ta, tb)
			if err != nil {
				return nil, err
			}
			countEval()
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				if err := accept(ta, tb, c); err != nil {
					return nil, err
				}
				accepted++
				if cost < res.BestCost {
					res.BestCost = cost
					copy(res.Best, cur)
					res.Improvements++
					improvedThisStep = true
				}
			} else {
				rejected++
			}
		}
		if improvedThisStep {
			stalled = 0
		} else {
			stalled++
		}
		temp *= alpha
		if a.OnProgress != nil {
			a.OnProgress(Progress{Engine: "SA", Step: step + 1, Steps: steps,
				Evaluations: res.Evaluations, ExactEvals: res.ExactEvals,
				SurrogateEvals: res.SurrogateEvals,
				Accepted:       accepted, Rejected: rejected,
				BestCost: res.BestCost})
		}
	}
	if useDelta || useSurr {
		if err := repriceBest(a.Problem.Obj, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
