// Package search provides the mapping-space exploration engines of the
// FRW framework: simulated annealing (the paper's workhorse), exhaustive
// search (used on small NoCs to certify optimality), plus hill climbing,
// random sampling and tabu search as extensions. All engines are
// deterministic under a fixed seed and generic over an Objective, so the
// same machinery explores both the CWM and the CDCM cost functions.
package search

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/topology"
)

// Objective prices a mapping; lower is better. Implementations are the
// CWM evaluator (EDyNoC of equation (3)) and the CDCM evaluator (ENoC of
// equation (10)) in package core.
type Objective interface {
	Cost(mp mapping.Mapping) (float64, error)
}

// ObjectiveFunc adapts a plain function to the Objective interface.
type ObjectiveFunc func(mp mapping.Mapping) (float64, error)

// Cost implements Objective.
func (f ObjectiveFunc) Cost(mp mapping.Mapping) (float64, error) { return f(mp) }

// Result reports the outcome of one search run.
type Result struct {
	// Best is the lowest-cost mapping found.
	Best mapping.Mapping
	// BestCost is its objective value.
	BestCost float64
	// InitialCost is the objective value of the starting mapping.
	InitialCost float64
	// Evaluations counts objective calls.
	Evaluations int64
	// Improvements counts strict improvements of the incumbent best.
	Improvements int64
	// Certified is true when the whole space was enumerated (exhaustive
	// search without hitting a limit), i.e. Best is a global optimum.
	Certified bool
}

// Problem describes the placement instance shared by all engines.
type Problem struct {
	Mesh     *topology.Mesh
	NumCores int
	Obj      Objective
}

func (p *Problem) validate() error {
	if p.Mesh == nil {
		return errors.New("search: nil mesh")
	}
	if p.Obj == nil {
		return errors.New("search: nil objective")
	}
	if p.NumCores <= 0 || p.NumCores > p.Mesh.NumTiles() {
		return fmt.Errorf("search: %d cores cannot be placed on %d tiles",
			p.NumCores, p.Mesh.NumTiles())
	}
	return nil
}

// Annealer is the paper's simulated-annealing engine: start from a random
// mapping, propose tile swaps, accept degradations with Metropolis
// probability under a geometrically cooling temperature, and keep the best
// mapping seen.
type Annealer struct {
	Problem Problem
	// Seed makes the run reproducible.
	Seed int64
	// Initial, when non-nil, replaces the random starting mapping.
	Initial mapping.Mapping
	// InitialTemp is the starting temperature in objective units. Zero
	// auto-calibrates it from sampled moves so that ~90% of degrading
	// moves are initially accepted (objective magnitudes here are
	// picojoules, so a fixed default would be meaningless).
	InitialTemp float64
	// Alpha is the geometric cooling factor in (0,1); 0 defaults to 0.95.
	Alpha float64
	// MovesPerTemp is the number of proposed swaps per temperature step;
	// 0 defaults to 10 × NumTiles.
	MovesPerTemp int
	// TempSteps bounds the number of cooling steps; 0 defaults to 100.
	TempSteps int
	// StallSteps stops early after this many consecutive temperature
	// steps without improving the incumbent; 0 defaults to 20.
	StallSteps int
	// Reheats restarts a stalled schedule: the walk jumps back to the
	// best mapping and the temperature resets to half the previous
	// starting temperature, up to Reheats times. Reheating spends the
	// same per-step budget but escapes local basins on rugged landscapes
	// (the contention-driven CDCM objective in particular).
	Reheats int
}

// Run executes the annealing schedule.
func (a *Annealer) Run() (*Result, error) {
	if err := a.Problem.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed))
	numTiles := a.Problem.Mesh.NumTiles()

	cur := a.Initial
	if cur == nil {
		var err error
		cur, err = mapping.Random(rng, a.Problem.NumCores, numTiles)
		if err != nil {
			return nil, err
		}
	} else {
		if len(cur) != a.Problem.NumCores {
			return nil, fmt.Errorf("search: initial mapping has %d cores, want %d", len(cur), a.Problem.NumCores)
		}
		if err := cur.Validate(numTiles); err != nil {
			return nil, err
		}
		cur = cur.Clone()
	}
	occ := cur.Occupants(numTiles)

	res := &Result{}
	cost, err := a.Problem.Obj.Cost(cur)
	if err != nil {
		return nil, err
	}
	res.Evaluations++
	res.InitialCost = cost
	res.Best = cur.Clone()
	res.BestCost = cost

	alpha := a.Alpha
	if alpha == 0 {
		alpha = 0.95
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("search: alpha %g outside (0,1)", alpha)
	}
	moves := a.MovesPerTemp
	if moves == 0 {
		moves = 10 * numTiles
	}
	steps := a.TempSteps
	if steps == 0 {
		steps = 100
	}
	stall := a.StallSteps
	if stall == 0 {
		stall = 20
	}

	propose := func() (ta, tb topology.TileID) {
		for {
			ta = topology.TileID(rng.Intn(numTiles))
			tb = topology.TileID(rng.Intn(numTiles))
			if ta == tb {
				continue
			}
			// A swap of two empty tiles changes nothing; re-draw.
			if occ[ta] == mapping.Unassigned && occ[tb] == mapping.Unassigned {
				continue
			}
			return ta, tb
		}
	}

	temp := a.InitialTemp
	if temp <= 0 {
		// Calibration pass: sample some moves and set T0 so that an
		// average degradation is accepted with probability ~0.9.
		var sum float64
		var n int
		for i := 0; i < 40; i++ {
			ta, tb := propose()
			mapping.SwapTiles(cur, occ, ta, tb)
			c, err := a.Problem.Obj.Cost(cur)
			mapping.SwapTiles(cur, occ, ta, tb) // undo
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			if d := c - cost; d > 0 {
				sum += d
				n++
			}
		}
		if n > 0 {
			temp = (sum / float64(n)) / -math.Log(0.9)
		} else {
			// Start in a local minimum w.r.t. sampled moves: any positive
			// temperature works; pick one proportional to the cost scale.
			temp = math.Max(cost*0.01, 1e-300)
		}
	}

	stalled := 0
	reheatsLeft := a.Reheats
	baseTemp := temp
	for step := 0; step < steps; step++ {
		if stalled >= stall {
			if reheatsLeft <= 0 {
				break
			}
			// Reheat: continue from the incumbent best at half the
			// previous starting temperature.
			reheatsLeft--
			baseTemp /= 2
			temp = baseTemp
			copy(cur, res.Best)
			for i := range occ {
				occ[i] = mapping.Unassigned
			}
			for c, tl := range cur {
				occ[tl] = model.CoreID(c)
			}
			cost = res.BestCost
			stalled = 0
		}
		improvedThisStep := false
		for mv := 0; mv < moves; mv++ {
			ta, tb := propose()
			mapping.SwapTiles(cur, occ, ta, tb)
			c, err := a.Problem.Obj.Cost(cur)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			d := c - cost
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cost = c
				if cost < res.BestCost {
					res.BestCost = cost
					copy(res.Best, cur)
					res.Improvements++
					improvedThisStep = true
				}
			} else {
				mapping.SwapTiles(cur, occ, ta, tb) // reject: undo
			}
		}
		if improvedThisStep {
			stalled = 0
		} else {
			stalled++
		}
		temp *= alpha
	}
	return res, nil
}
