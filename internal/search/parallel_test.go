package search

import (
	"errors"
	"testing"

	"repro/internal/mapping"
)

// resultsEqual compares the fields that must be bit-identical across
// worker counts.
func resultsEqual(a, b *Result) bool {
	return a.BestCost == b.BestCost &&
		a.InitialCost == b.InitialCost &&
		a.Evaluations == b.Evaluations &&
		a.Improvements == b.Improvements &&
		a.Certified == b.Certified &&
		mapping.Equal(a.Best, b.Best)
}

func TestMultiAnnealerDeterministicAcrossWorkers(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 6)
	var ref *Result
	for _, workers := range []int{1, 2, 5, 16} {
		res, err := (&MultiAnnealer{
			Base:     Annealer{Problem: p, Seed: 7, TempSteps: 15},
			Restarts: 5,
			Workers:  workers,
		}).Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !resultsEqual(ref, res) {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, res, ref)
		}
	}
}

func TestMultiAnnealerSingleRestartMatchesAnnealer(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 6)
	single, err := (&Annealer{Problem: p, Seed: 3, TempSteps: 12}).Run()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := (&MultiAnnealer{
		Base:    Annealer{Problem: p, Seed: 3, TempSteps: 12},
		Workers: 4,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(single, multi) {
		t.Fatalf("restarts=1 diverged from plain annealer: %+v vs %+v", multi, single)
	}
}

func TestMultiAnnealerNeverWorseThanSingleRun(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 7)
	single, err := (&Annealer{Problem: p, Seed: 11, TempSteps: 10}).Run()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := (&MultiAnnealer{
		Base:     Annealer{Problem: p, Seed: 11, TempSteps: 10},
		Restarts: 6,
		Workers:  3,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if multi.BestCost > single.BestCost {
		t.Fatalf("6 restarts (%g) worse than restart 0 alone (%g)", multi.BestCost, single.BestCost)
	}
	if multi.Evaluations <= single.Evaluations {
		t.Fatalf("evaluations %d do not accumulate across restarts (single: %d)",
			multi.Evaluations, single.Evaluations)
	}
}

func TestMultiAnnealerTieBreaksToLowestRestart(t *testing.T) {
	// A flat objective makes every restart tie at cost 0; the winner must
	// be restart 0 (the base seed's own run) for reproducibility.
	p, _ := testProblem(t, 2, 2, 4)
	flat := ObjectiveFunc(func(mapping.Mapping) (float64, error) { return 0, nil })
	p.Obj = flat
	want, err := (&Annealer{Problem: p, Seed: 9, TempSteps: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&MultiAnnealer{
		Base:     Annealer{Problem: p, Seed: 9, TempSteps: 5},
		Restarts: 4,
		Workers:  4,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !mapping.Equal(got.Best, want.Best) {
		t.Fatalf("tie not broken towards restart 0: %v vs %v", got.Best, want.Best)
	}
}

func TestMultiAnnealerObjectiveFactory(t *testing.T) {
	p, obj := testProblem(t, 3, 3, 6)
	var built int
	shared, err := (&MultiAnnealer{
		Base:     Annealer{Problem: p, Seed: 1, TempSteps: 10},
		Restarts: 4,
		Workers:  2,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	viaFactory, err := (&MultiAnnealer{
		Base:     Annealer{Problem: Problem{Mesh: p.Mesh, NumCores: p.NumCores}, Seed: 1, TempSteps: 10},
		Restarts: 4,
		Workers:  2,
		NewObjective: func() (Objective, error) {
			built++
			return obj, nil
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if built != 2 {
		t.Fatalf("factory called %d times, want once per worker lane (2)", built)
	}
	if !resultsEqual(shared, viaFactory) {
		t.Fatalf("factory path diverged: %+v vs %+v", viaFactory, shared)
	}
}

func TestMultiAnnealerErrors(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	if _, err := (&MultiAnnealer{Base: Annealer{Problem: p}, Restarts: -1}).Run(); err == nil {
		t.Error("negative restarts accepted")
	}
	boom := errors.New("factory boom")
	if _, err := (&MultiAnnealer{
		Base:         Annealer{Problem: Problem{Mesh: p.Mesh, NumCores: 4}},
		Restarts:     2,
		Workers:      2,
		NewObjective: func() (Objective, error) { return nil, boom },
	}).Run(); !errors.Is(err, boom) {
		t.Errorf("factory error not propagated: %v", err)
	}
	objBoom := errors.New("objective boom")
	bad := ObjectiveFunc(func(mapping.Mapping) (float64, error) { return 0, objBoom })
	if _, err := (&MultiAnnealer{
		Base:     Annealer{Problem: Problem{Mesh: p.Mesh, NumCores: 4, Obj: bad}},
		Restarts: 3,
		Workers:  3,
	}).Run(); !errors.Is(err, objBoom) {
		t.Errorf("objective error not propagated: %v", err)
	}
}

func TestShardedExhaustiveMatchesSerial(t *testing.T) {
	for _, anchor := range []bool{false, true} {
		p, _ := testProblem(t, 3, 2, 4)
		serial, err := (&Exhaustive{Problem: p, Anchor: anchor}).Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8, 32} {
			sharded, err := (&ShardedExhaustive{Problem: p, Anchor: anchor, Workers: workers}).Run()
			if err != nil {
				t.Fatalf("anchor=%v workers=%d: %v", anchor, workers, err)
			}
			if sharded.BestCost != serial.BestCost ||
				sharded.Evaluations != serial.Evaluations ||
				sharded.InitialCost != serial.InitialCost ||
				!sharded.Certified ||
				!mapping.Equal(sharded.Best, serial.Best) {
				t.Fatalf("anchor=%v workers=%d diverged: %+v vs serial %+v",
					anchor, workers, sharded, serial)
			}
		}
	}
}

func TestShardedExhaustiveEqualCostTieMatchesSerial(t *testing.T) {
	// A flat landscape makes every placement optimal; the sharded merge
	// must still report the first placement of the serial enumeration.
	p, _ := testProblem(t, 3, 2, 3)
	p.Obj = ObjectiveFunc(func(mapping.Mapping) (float64, error) { return 42, nil })
	serial, err := (&Exhaustive{Problem: p}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := (&ShardedExhaustive{Problem: p, Workers: 6}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !mapping.Equal(sharded.Best, serial.Best) {
		t.Fatalf("tie resolution diverged: %v vs %v", sharded.Best, serial.Best)
	}
}

func TestShardedExhaustiveLimitFallsBackToSerial(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	serial, err := (&Exhaustive{Problem: p, Limit: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := (&ShardedExhaustive{Problem: p, Limit: 5, Workers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(serial, sharded) {
		t.Fatalf("limited run diverged: %+v vs %+v", sharded, serial)
	}
	if sharded.Certified {
		t.Fatal("truncated sharded run claims certification")
	}
}

func TestShardedExhaustiveErrorPropagates(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	boom := errors.New("boom")
	p.Obj = ObjectiveFunc(func(mapping.Mapping) (float64, error) { return 0, boom })
	if _, err := (&ShardedExhaustive{Problem: p, Workers: 4}).Run(); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestShardedExhaustiveValidates(t *testing.T) {
	if _, err := (&ShardedExhaustive{Workers: 4}).Run(); err == nil {
		t.Error("nil mesh accepted")
	}
	p, _ := testProblem(t, 2, 2, 4)
	bad := Problem{Mesh: p.Mesh, NumCores: 99, Obj: p.Obj}
	if _, err := (&ShardedExhaustive{Problem: bad, Workers: 4}).Run(); err == nil {
		t.Error("oversubscribed problem accepted")
	}
}
