package search

import (
	"testing"
)

// Reheating spends extra steps but may only improve the incumbent.
func TestAnnealerReheatNeverWorse(t *testing.T) {
	p, _ := testProblem(t, 4, 4, 12)
	base, err := (&Annealer{Problem: p, Seed: 5, TempSteps: 30, StallSteps: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	hot, err := (&Annealer{Problem: p, Seed: 5, TempSteps: 60, StallSteps: 5, Reheats: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if hot.BestCost > base.BestCost {
		t.Fatalf("reheated run worse: %g > %g", hot.BestCost, base.BestCost)
	}
	if err := hot.Best.Validate(16); err != nil {
		t.Fatal(err)
	}
}

// After a reheat the internal occupancy view must stay consistent with
// the mapping (the walk restarts from the incumbent best).
func TestAnnealerReheatStateConsistency(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 5) // partial occupancy stresses the reset
	for seed := int64(0); seed < 8; seed++ {
		res, err := (&Annealer{
			Problem: p, Seed: seed,
			TempSteps: 40, StallSteps: 3, Reheats: 4,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Best.Validate(9); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.BestCost > res.InitialCost {
			t.Fatalf("seed %d: best %g worse than initial %g", seed, res.BestCost, res.InitialCost)
		}
	}
}
