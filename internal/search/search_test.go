package search

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/topology"
)

// wireLength is a miniature CWM-like objective: total bits×hops over a
// fixed traffic pattern. Its global optimum is known by exhaustive search.
type wireLength struct {
	mesh  *topology.Mesh
	flows [][3]int // src core, dst core, weight
}

func (w *wireLength) Cost(mp mapping.Mapping) (float64, error) {
	var sum float64
	for _, f := range w.flows {
		sum += float64(f[2] * w.mesh.MinHops(mp[f[0]], mp[f[1]]))
	}
	return sum, nil
}

func testProblem(t *testing.T, w, h, cores int) (Problem, *wireLength) {
	return testProblem3D(t, w, h, 1, cores)
}

// testProblem3D is testProblem over a stacked W×H×D mesh; wireLength
// already measures 3-D Manhattan distance through Mesh.MinHops.
func testProblem3D(t *testing.T, w, h, d, cores int) (Problem, *wireLength) {
	t.Helper()
	mesh, err := topology.NewMesh3D(w, h, d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var flows [][3]int
	for i := 0; i < cores; i++ {
		for j := 0; j < cores; j++ {
			if i != j && rng.Float64() < 0.4 {
				flows = append(flows, [3]int{i, j, 1 + rng.Intn(100)})
			}
		}
	}
	obj := &wireLength{mesh: mesh, flows: flows}
	return Problem{Mesh: mesh, NumCores: cores, Obj: obj}, obj
}

func TestExhaustiveCertifiesOptimum(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	ex := &Exhaustive{Problem: p}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatal("full enumeration not certified")
	}
	if res.Evaluations != 24 {
		t.Fatalf("evaluations = %d, want 4! = 24", res.Evaluations)
	}
	if err := res.Best.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveAnchorSameOptimum(t *testing.T) {
	p, _ := testProblem(t, 3, 2, 5)
	full, err := (&Exhaustive{Problem: p}).Run()
	if err != nil {
		t.Fatal(err)
	}
	anchored, err := (&Exhaustive{Problem: p, Anchor: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if full.BestCost != anchored.BestCost {
		t.Fatalf("anchor changed optimum: %g vs %g", anchored.BestCost, full.BestCost)
	}
	if anchored.Evaluations >= full.Evaluations {
		t.Fatalf("anchor did not shrink the space: %d vs %d", anchored.Evaluations, full.Evaluations)
	}
}

func TestExhaustiveLimit(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	res, err := (&Exhaustive{Problem: p, Limit: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("truncated run claims certification")
	}
	if res.Evaluations != 5 {
		t.Fatalf("evaluations = %d, want 5", res.Evaluations)
	}
}

func TestAnnealerMatchesExhaustiveOnSmallInstance(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	ex, err := (&Exhaustive{Problem: p}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := (&Annealer{Problem: p, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestCost != ex.BestCost {
		t.Fatalf("SA best %g != optimum %g", sa.BestCost, ex.BestCost)
	}
}

func TestAnnealerNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p, _ := testProblem(t, 3, 3, 6)
		res, err := (&Annealer{Problem: p, Seed: seed, TempSteps: 20}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost > res.InitialCost {
			t.Fatalf("seed %d: best %g worse than initial %g", seed, res.BestCost, res.InitialCost)
		}
		if err := res.Best.Validate(9); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnnealerDeterministicUnderSeed(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 6)
	a := &Annealer{Problem: p, Seed: 99, TempSteps: 15}
	r1, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestCost != r2.BestCost || r1.Evaluations != r2.Evaluations || !mapping.Equal(r1.Best, r2.Best) {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestAnnealerInitialMapping(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	init := mapping.Identity(4)
	res, err := (&Annealer{Problem: p, Seed: 3, Initial: init, TempSteps: 10}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.Obj.Cost(init)
	if res.InitialCost != want {
		t.Fatalf("initial cost %g, want %g", res.InitialCost, want)
	}
	// The provided initial mapping must not be mutated by the search.
	if !mapping.Equal(init, mapping.Identity(4)) {
		t.Fatal("annealer mutated caller's initial mapping")
	}
}

func TestAnnealerParameterValidation(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	if _, err := (&Annealer{Problem: p, Alpha: 1.5}).Run(); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := (&Annealer{Problem: p, Initial: mapping.Mapping{0}}).Run(); err == nil {
		t.Fatal("short initial mapping accepted")
	}
	if _, err := (&Annealer{Problem: p, Initial: mapping.Mapping{0, 0, 1, 2}}).Run(); err == nil {
		t.Fatal("invalid initial mapping accepted")
	}
	bad := Problem{Mesh: p.Mesh, NumCores: 99, Obj: p.Obj}
	if _, err := (&Annealer{Problem: bad}).Run(); err == nil {
		t.Fatal("oversubscribed problem accepted")
	}
	if _, err := (&Annealer{Problem: Problem{Mesh: p.Mesh, NumCores: 2}}).Run(); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := (&Annealer{Problem: Problem{NumCores: 2, Obj: p.Obj}}).Run(); err == nil {
		t.Fatal("nil mesh accepted")
	}
}

func TestObjectiveErrorPropagates(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	boom := errors.New("boom")
	p := Problem{Mesh: mesh, NumCores: 3, Obj: ObjectiveFunc(func(mapping.Mapping) (float64, error) {
		return 0, boom
	})}
	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"annealer", func() (*Result, error) { return (&Annealer{Problem: p}).Run() }},
		{"exhaustive", func() (*Result, error) { return (&Exhaustive{Problem: p}).Run() }},
		{"random", func() (*Result, error) { return (&RandomSearch{Problem: p, Samples: 5}).Run() }},
		{"hill", func() (*Result, error) { return (&HillClimber{Problem: p}).Run() }},
		{"tabu", func() (*Result, error) { return (&Tabu{Problem: p, Iterations: 3}).Run() }},
	} {
		name, run := tc.name, tc.run
		if _, err := run(); !errors.Is(err, boom) {
			t.Errorf("%s: error not propagated: %v", name, err)
		}
	}
}

func TestRandomSearchImprovesWithSamples(t *testing.T) {
	p, _ := testProblem(t, 3, 3, 7)
	small, err := (&RandomSearch{Problem: p, Seed: 5, Samples: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	big, err := (&RandomSearch{Problem: p, Seed: 5, Samples: 300}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if big.BestCost > small.BestCost {
		t.Fatalf("more samples got worse: %g > %g", big.BestCost, small.BestCost)
	}
	if big.Evaluations != 300 {
		t.Fatalf("evaluations = %d", big.Evaluations)
	}
}

func TestHillClimberReachesLocalOptimum(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	res, err := (&HillClimber{Problem: p, Seed: 7, Restarts: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Verify local optimality of the result: no single swap improves it.
	occ := res.Best.Occupants(4)
	cur := res.Best.Clone()
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			mapping.SwapTiles(cur, occ, topology.TileID(a), topology.TileID(b))
			c, _ := p.Obj.Cost(cur)
			mapping.SwapTiles(cur, occ, topology.TileID(a), topology.TileID(b))
			if c < res.BestCost {
				t.Fatalf("swap (%d,%d) improves hill-climbing result", a, b)
			}
		}
	}
}

func TestTabuFindsOptimumOnSmallInstance(t *testing.T) {
	p, _ := testProblem(t, 2, 2, 4)
	ex, _ := (&Exhaustive{Problem: p}).Run()
	res, err := (&Tabu{Problem: p, Seed: 11, Iterations: 50}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != ex.BestCost {
		t.Fatalf("tabu best %g != optimum %g", res.BestCost, ex.BestCost)
	}
}

func TestEnginesOnPartialOccupancy(t *testing.T) {
	// 5 cores on 9 tiles: moves must handle empty tiles.
	p, _ := testProblem(t, 3, 3, 5)
	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"annealer", func() (*Result, error) { return (&Annealer{Problem: p, Seed: 2, TempSteps: 10}).Run() }},
		{"random", func() (*Result, error) { return (&RandomSearch{Problem: p, Seed: 2, Samples: 50}).Run() }},
		{"hill", func() (*Result, error) { return (&HillClimber{Problem: p, Seed: 2, Restarts: 1}).Run() }},
		{"tabu", func() (*Result, error) { return (&Tabu{Problem: p, Seed: 2, Iterations: 20}).Run() }},
	} {
		name, run := tc.name, tc.run
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Best.Validate(9); err != nil {
			t.Fatalf("%s produced invalid mapping: %v", name, err)
		}
		if math.IsInf(res.BestCost, 0) {
			t.Fatalf("%s: no cost recorded", name)
		}
	}
}

func TestAnnealerZeroCostLandscape(t *testing.T) {
	// A flat objective exercises the T0 auto-calibration fallback path.
	mesh, _ := topology.NewMesh(2, 2)
	p := Problem{Mesh: mesh, NumCores: 3, Obj: ObjectiveFunc(func(mapping.Mapping) (float64, error) {
		return 0, nil
	})}
	res, err := (&Annealer{Problem: p, Seed: 1, TempSteps: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != 0 {
		t.Fatalf("flat landscape cost = %g", res.BestCost)
	}
}

func TestObjectiveFuncAdapter(t *testing.T) {
	f := ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
		return float64(len(mp)), nil
	})
	c, err := f.Cost(mapping.Mapping{0, 1})
	if err != nil || c != 2 {
		t.Fatalf("adapter: %g, %v", c, err)
	}
}

func TestSAScalesToLargerMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p, _ := testProblem(t, 5, 5, 18)
	rs, err := (&RandomSearch{Problem: p, Seed: 1, Samples: 200}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := (&Annealer{Problem: p, Seed: 1, TempSteps: 40}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestCost > rs.BestCost {
		t.Fatalf("SA (%g) lost to random sampling (%g)", sa.BestCost, rs.BestCost)
	}
}

func ExampleAnnealer() {
	mesh, _ := topology.NewMesh(2, 2)
	obj := ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
		// Place core 0 and core 1 adjacently.
		return float64(mesh.MinHops(mp[0], mp[1])), nil
	})
	res, _ := (&Annealer{
		Problem: Problem{Mesh: mesh, NumCores: 2, Obj: obj},
		Seed:    1,
	}).Run()
	fmt.Println(res.BestCost)
	// Output: 1
}
