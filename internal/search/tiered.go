package search

import (
	"errors"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/topology"
)

// errNoVector reports a vector call on a tiered objective whose exact
// tier is scalar-only.
var errNoVector = errors.New("search: tiered objective's exact tier is not a VectorObjective")

// This file is the two-tier evaluation seam: a TieredObjective layers
// cheaper evaluation tiers over an exact pricer so the engines can avoid
// paying the exact cost (a full wormhole simulation for CDCM) on every
// candidate.
//
//   - Tier A, LowerBoundObjective, is a certified lower bound: for any
//     candidate, Bound ≤ exact Cost, bitwise on the computed float64s.
//     The strict-improvement engines (HillClimber, Tabu) use it to skip
//     swaps whose bound already proves they cannot beat the incumbent
//     threshold — the skipped candidates are exactly the ones the exact
//     scan would have rejected, so Best, BestCost and the accept/reject
//     trajectory stay bit-identical to the unfiltered run.
//   - Tier B, Surrogate, is an opt-in calibrated approximation (a
//     DeltaObjective fitted against exact evaluations at build time).
//     The Metropolis engines (Annealer, ParetoSA) walk on surrogate
//     deltas and pay the exact price only for accepted moves, so the
//     incumbent Best and every archived front point remain exact-priced;
//     the walk itself is approximate, so results are deterministic but
//     not bit-identical to a surrogate-free run.
//
// Engines that use neither tier (exhaustive, random) see only Exact
// through the plain Objective interface, so wrapping is behaviourally
// free for them.

// LowerBoundObjective prices a certified lower bound of an exact
// objective incrementally, mirroring the DeltaObjective bind/price/apply
// protocol — except that SwapBound returns the absolute bound of the
// swapped mapping, not a delta. Returning the absolute value is what
// keeps the certificate sound in floating point: the implementation
// derives it from the swapped state's aggregates through the same
// monotone float pipeline the exact evaluator uses, so
// bound(candidate) ≤ exactCost(candidate) holds on the computed
// float64s, not merely in exact arithmetic.
//
// Like DeltaObjective, an implementation is stateful between ResetBound
// and the last CommitBound and is not safe for concurrent use; parallel
// engines bind one instance per worker lane.
type LowerBoundObjective interface {
	// ResetBound binds a copy of mp as the incremental baseline and
	// returns its bound. It validates mp, making the tiered path a
	// validating entry point like DeltaObjective.Reset.
	ResetBound(mp mapping.Mapping) (float64, error)
	// SwapBound returns the certified lower bound of the mapping obtained
	// by exchanging the occupants of ta and tb, without applying the
	// swap. occ is the occupancy view of the bound mapping.
	SwapBound(occ []model.CoreID, ta, tb topology.TileID) (float64, error)
	// CommitBound folds an accepted swap into the bound baseline. Call it
	// exactly when the engine applies a move to its working mapping.
	CommitBound(ta, tb topology.TileID)
}

// TieredObjective wraps an exact Objective with optional cheaper tiers.
// Exact is authoritative: Cost forwards to it, so any engine (or caller)
// that ignores the tiers prices exactly as before. Bound and Surrogate
// are both optional and independent.
type TieredObjective struct {
	// Exact is the authoritative pricer (the CDCM evaluator in core).
	Exact Objective
	// Bound, when non-nil, is the tier-A certified lower bound used by
	// the strict-improvement engines. It must satisfy
	// Bound ≤ Exact.Cost on the computed float64s for every candidate.
	Bound LowerBoundObjective
	// Surrogate, when non-nil, is the tier-B calibrated approximation the
	// Metropolis engines walk on. It needs no ordering guarantee — every
	// decision it influences is re-checked with an exact pricing before
	// it can reach a reported result.
	Surrogate DeltaObjective
}

// Cost implements Objective by forwarding to the exact tier.
func (t *TieredObjective) Cost(mp mapping.Mapping) (float64, error) { return t.Exact.Cost(mp) }

// exactVector returns the exact tier's vector view, or nil.
func (t *TieredObjective) exactVector() VectorObjective {
	v, ok := t.Exact.(VectorObjective)
	if !ok {
		return nil
	}
	return v
}

// Axes implements VectorObjective by forwarding to the exact tier; a
// tiered objective over a scalar-only exact pricer reports no axes (and
// vectorObjective rejects it, exactly as it rejects the bare pricer).
func (t *TieredObjective) Axes() []string {
	if v := t.exactVector(); v != nil {
		return v.Axes()
	}
	return nil
}

// CollapseWeights implements VectorObjective by forwarding to the exact
// tier.
func (t *TieredObjective) CollapseWeights() []float64 {
	if v := t.exactVector(); v != nil {
		return v.CollapseWeights()
	}
	return nil
}

// ComponentsInto implements VectorObjective by forwarding to the exact
// tier.
func (t *TieredObjective) ComponentsInto(mp mapping.Mapping, dst []float64) error {
	if v := t.exactVector(); v != nil {
		return v.ComponentsInto(mp, dst)
	}
	return errNoVector
}

var _ VectorObjective = (*TieredObjective)(nil)

// exactOf unwraps the authoritative pricer: the exact tier of a
// TieredObjective, obj itself otherwise. bindObjective and the engines'
// full-price paths go through it so a tiered CDCM run takes exactly the
// code path a bare CDCM run takes.
func exactOf(obj Objective) Objective {
	if t, ok := obj.(*TieredObjective); ok {
		return t.Exact
	}
	return obj
}

// boundOf returns the tier-A bound of a tiered objective, or nil.
func boundOf(obj Objective) LowerBoundObjective {
	if t, ok := obj.(*TieredObjective); ok {
		return t.Bound
	}
	return nil
}

// surrogateOf returns the tier-B surrogate of a tiered objective, or nil.
func surrogateOf(obj Objective) DeltaObjective {
	if t, ok := obj.(*TieredObjective); ok {
		return t.Surrogate
	}
	return nil
}

// bindBound primes the tier-A bound for a walk starting at mp. It
// returns (nil, nil) when obj carries no bound — the caller falls back
// to the unfiltered scan.
func bindBound(obj Objective, mp mapping.Mapping) (LowerBoundObjective, error) {
	bnd := boundOf(obj)
	if bnd == nil {
		return nil, nil
	}
	if _, err := bnd.ResetBound(mp); err != nil {
		return nil, err
	}
	return bnd, nil
}
