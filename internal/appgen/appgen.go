// Package appgen generates synthetic CDCG benchmarks. It stands in for
// the paper's "proprietary system similar to TGFF" that "describes
// benchmarks through CDCGs, representing message dependence and bit volume
// of each message" (Section 5). The generator is deterministic under a
// seed and hits the requested core count, packet count and total bit
// volume EXACTLY, so the Table-1 workload suite can be regenerated from
// its published aggregate characteristics.
//
// Structure: packets are organised into a configurable number of parallel
// dependence chains that pipeline through the cores (a packet's consumer
// computes and forwards), with optional cross-chain dependences and an
// optional traffic hotspot. Parallel chains are what make mappings differ
// in contention — the effect CDCM can see and CWM cannot.
package appgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// Mode selects the generated dependence structure.
type Mode int

const (
	// ModeChains (default) builds pipelined dependence chains that wander
	// across the cores — streaming/dataflow-style applications.
	ModeChains Mode = iota
	// ModePhases builds barrier-synchronised communication rounds: in
	// each phase every core sends one equal-class packet to a partner
	// drawn from a random derangement, and a core's phase-r send depends
	// on what it sent and received in phase r-1 (BSP-style parallel
	// kernels, like the FFT's butterfly exchanges). Phase traffic is
	// symmetric and simultaneous, which makes mapping quality show up as
	// contention — the CWM-blind effect the paper measures.
	ModePhases
)

// Params configures one generated benchmark.
type Params struct {
	// Name labels the CDCG.
	Name string
	// Mode selects the dependence structure (default ModeChains).
	Mode Mode
	// Cores is the exact number of IP cores; every core is used.
	Cores int
	// Packets is the exact number of CDCG packet vertices.
	Packets int
	// TotalBits is the exact total communicated volume.
	TotalBits int64
	// Seed makes generation reproducible.
	Seed int64
	// Chains is the number of independent dependence chains (parallel
	// pipelines). 0 defaults to max(2, Cores/2).
	Chains int
	// CrossDeps is the probability that a packet gains one extra
	// dependence on a packet of another chain (default 0.15 when zero;
	// use a negative value for none).
	CrossDeps float64
	// ComputeMin/ComputeMax bound per-packet computation times in cycles
	// (defaults 5..60).
	ComputeMin, ComputeMax int64
	// HotspotBias in [0,1) is the probability that a packet's destination
	// is redirected to a designated hotspot core, concentrating traffic
	// (default 0).
	HotspotBias float64
	// VolumeSpread controls the dispersion of per-packet volumes: 0
	// defaults to 0.8. Larger values produce heavier-tailed packet sizes.
	VolumeSpread float64
	// VolumeClasses, when positive, quantises packet volumes into that
	// many discrete size classes (TGFF-style transfer classes). Few
	// classes create many equal-volume packets, and therefore large
	// plateaus of dynamic-energy-equal mappings — the regime where a
	// volume-only mapper (CWM) is blind to large timing differences.
	VolumeClasses int
}

func (p Params) validate() error {
	if p.Cores < 2 {
		return fmt.Errorf("appgen: need at least 2 cores, got %d", p.Cores)
	}
	if p.Packets < 1 {
		return fmt.Errorf("appgen: need at least 1 packet, got %d", p.Packets)
	}
	if p.TotalBits < int64(p.Packets) {
		return fmt.Errorf("appgen: %d bits cannot cover %d packets (each needs >=1)", p.TotalBits, p.Packets)
	}
	if p.HotspotBias < 0 || p.HotspotBias >= 1 {
		return fmt.Errorf("appgen: hotspot bias %g outside [0,1)", p.HotspotBias)
	}
	if p.ComputeMin < 0 || p.ComputeMax < p.ComputeMin {
		return fmt.Errorf("appgen: bad compute bounds [%d,%d]", p.ComputeMin, p.ComputeMax)
	}
	return nil
}

// Generate builds the benchmark CDCG.
func Generate(p Params) (*model.CDCG, error) {
	if p.ComputeMin == 0 && p.ComputeMax == 0 {
		p.ComputeMin, p.ComputeMax = 5, 60
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	chains := p.Chains
	if chains == 0 {
		chains = p.Cores / 2
		if chains < 2 {
			chains = 2
		}
	}
	if chains > p.Packets {
		chains = p.Packets
	}
	cross := p.CrossDeps
	if cross == 0 {
		cross = 0.15
	}
	if cross < 0 {
		cross = 0
	}
	spread := p.VolumeSpread
	if spread == 0 {
		spread = 0.8
	}

	rng := rand.New(rand.NewSource(p.Seed))
	g := &model.CDCG{Name: p.Name, Cores: model.MakeCores(p.Cores)}

	if p.Mode == ModePhases {
		buildPhases(g, p, rng)
	} else {
		buildChains(g, p, rng, chains, cross)
	}

	// Heavy-tailed (or class-quantised) per-packet volumes, scaled to sum
	// exactly to TotalBits.
	weights := make([]float64, p.Packets)
	if p.Mode == ModePhases {
		// Equal transfer class: phase exchanges move the same payload.
		for i := range weights {
			weights[i] = 1
		}
	} else if p.VolumeClasses > 0 {
		// Discrete size classes, geometrically spaced (x2 per class),
		// drawn uniformly.
		class := make([]float64, p.VolumeClasses)
		for c := range class {
			class[c] = math.Pow(2, float64(c))
		}
		for i := range weights {
			weights[i] = class[rng.Intn(len(class))]
		}
	} else {
		for i := range weights {
			// Log-normal: exp(spread * N(0,1)), clamped to a 6-decade
			// range so ScaleVolumes stays well conditioned.
			x := spread * rng.NormFloat64()
			if x > 7 {
				x = 7
			} else if x < -7 {
				x = -7
			}
			weights[i] = math.Exp(x)
		}
	}
	vols := ScaleVolumes(weights, p.TotalBits)
	for i := range g.Packets {
		g.Packets[i].Bits = vols[i]
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("appgen: generated invalid CDCG: %w", err)
	}
	return g, nil
}

// buildPhases constructs the ModePhases dependence structure.
func buildPhases(g *model.CDCG, p Params, rng *rand.Rand) {
	compute := computeFn(p, rng)
	// prevSent[c] / prevRecv[c]: the packet core c sent / received in the
	// previous phase (-1 if none).
	prevSent := make([]model.PacketID, p.Cores)
	prevRecv := make([]model.PacketID, p.Cores)
	for i := range prevSent {
		prevSent[i], prevRecv[i] = -1, -1
	}
	for phase := 0; len(g.Packets) < p.Packets; phase++ {
		perm := derangement(rng, p.Cores)
		sent := make([]model.PacketID, p.Cores)
		for i := range sent {
			sent[i] = -1
		}
		for c := 0; c < p.Cores && len(g.Packets) < p.Packets; c++ {
			id := model.PacketID(len(g.Packets))
			dst := perm[c]
			if p.HotspotBias > 0 && rng.Float64() < p.HotspotBias && c != 0 {
				dst = 0 // designated hotspot core
			}
			g.Packets = append(g.Packets, model.Packet{
				ID: id, Src: model.CoreID(c), Dst: model.CoreID(dst),
				Compute: compute(), Bits: 1,
			})
			if prevSent[c] >= 0 {
				g.Deps = append(g.Deps, model.Dep{From: prevSent[c], To: id})
			}
			if prevRecv[c] >= 0 && prevRecv[c] != prevSent[c] {
				g.Deps = append(g.Deps, model.Dep{From: prevRecv[c], To: id})
			}
			sent[c] = id
		}
		for c := 0; c < p.Cores; c++ {
			if sent[c] >= 0 {
				prevSent[c] = sent[c]
				prevRecv[perm[c]] = sent[c]
			}
		}
	}
}

// derangement draws a permutation of n elements with no fixed points (so
// no core sends to itself). For n >= 2 a few rejection rounds suffice.
func derangement(rng *rand.Rand, n int) []int {
	for {
		perm := rng.Perm(n)
		ok := true
		for i, v := range perm {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return perm
		}
	}
}

func computeFn(p Params, rng *rand.Rand) func() int64 {
	return func() int64 {
		if p.ComputeMax == p.ComputeMin {
			return p.ComputeMin
		}
		return p.ComputeMin + rng.Int63n(p.ComputeMax-p.ComputeMin+1)
	}
}

// buildChains constructs the ModeChains dependence structure.
func buildChains(g *model.CDCG, p Params, rng *rand.Rand, chains int, cross float64) {
	// Guarantee every core is used: hand cores out from a shuffled
	// round-robin queue until all have appeared at least once.
	pending := rng.Perm(p.Cores)
	nextCore := func(avoid model.CoreID) model.CoreID {
		for i, c := range pending {
			if model.CoreID(c) != avoid {
				pending = append(pending[:i], pending[i+1:]...)
				return model.CoreID(c)
			}
		}
		c := model.CoreID(rng.Intn(p.Cores))
		for c == avoid {
			c = model.CoreID(rng.Intn(p.Cores))
		}
		return c
	}

	hotspot := model.CoreID(rng.Intn(p.Cores))
	chainTail := make([]model.PacketID, 0, chains) // last packet per chain
	tailDst := make([]model.CoreID, 0, chains)     // its destination core
	compute := computeFn(p, rng)

	for i := 0; i < p.Packets; i++ {
		id := model.PacketID(i)
		var src model.CoreID
		var deps []model.PacketID
		if i < chains {
			// New chain root: depends only on Start.
			src = nextCore(-1)
		} else {
			// Extend a uniformly chosen chain: the consumer of the tail
			// packet computes and forwards.
			ci := rng.Intn(len(chainTail))
			src = tailDst[ci]
			deps = append(deps, chainTail[ci])
			if len(chainTail) > 1 && rng.Float64() < cross {
				cj := rng.Intn(len(chainTail))
				if cj != ci && chainTail[cj] != deps[0] {
					deps = append(deps, chainTail[cj])
				}
			}
		}
		var dst model.CoreID
		if p.HotspotBias > 0 && rng.Float64() < p.HotspotBias && hotspot != src {
			dst = hotspot
		} else {
			dst = nextCore(src)
		}
		g.Packets = append(g.Packets, model.Packet{
			ID: id, Src: src, Dst: dst, Compute: compute(), Bits: 1,
		})
		for _, d := range deps {
			g.Deps = append(g.Deps, model.Dep{From: d, To: id})
		}
		if i < chains {
			chainTail = append(chainTail, id)
			tailDst = append(tailDst, dst)
		} else {
			// Replace the extended chain's tail (deps[0] is that tail).
			for ci := range chainTail {
				if chainTail[ci] == deps[0] {
					chainTail[ci] = id
					tailDst[ci] = dst
					break
				}
			}
		}
	}
}

// ScaleVolumes distributes total bits over len(weights) packets
// proportionally to the weights, with every packet receiving at least one
// bit and the sum landing on total exactly. Deterministic.
func ScaleVolumes(weights []float64, total int64) []int64 {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var sumW float64
	for _, w := range weights {
		if w < 0 {
			w = 0
		}
		sumW += w
	}
	out := make([]int64, n)
	if sumW <= 0 {
		// Uniform fallback.
		var s int64
		for i := range out {
			out[i] = total / int64(n)
			s += out[i]
		}
		out[0] += total - s
	} else {
		type frac struct {
			i int
			f float64
		}
		fracs := make([]frac, n)
		var assigned int64
		for i, w := range weights {
			if w < 0 {
				w = 0
			}
			exact := float64(total) * w / sumW
			fl := int64(exact)
			out[i] = fl
			fracs[i] = frac{i, exact - float64(fl)}
			assigned += fl
		}
		// Hand the remainder to the largest fractional parts.
		sort.Slice(fracs, func(a, b int) bool {
			if fracs[a].f != fracs[b].f {
				return fracs[a].f > fracs[b].f
			}
			return fracs[a].i < fracs[b].i
		})
		for r := int64(0); r < total-assigned; r++ {
			out[fracs[int(r)%n].i]++
		}
	}
	// Enforce the >=1 floor by stealing from the largest entries.
	for i := range out {
		if out[i] >= 1 {
			continue
		}
		need := 1 - out[i]
		big := 0
		for j := range out {
			if out[j] > out[big] {
				big = j
			}
		}
		if out[big] <= need {
			continue // degenerate: total too small, validated upstream
		}
		out[big] -= need
		out[i] = 1
	}
	return out
}
