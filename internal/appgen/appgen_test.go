package appgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestGenerateExactTargets(t *testing.T) {
	cases := []struct {
		cores, packets int
		bits           int64
	}{
		{5, 43, 78817},
		{6, 17, 174},
		{8, 18, 5930},
		{62, 344, 9799200},
		{99, 446, 680006120},
		{2, 1, 100},
	}
	for _, tc := range cases {
		g, err := Generate(Params{
			Name: "t", Cores: tc.cores, Packets: tc.packets,
			TotalBits: tc.bits, Seed: 42,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if g.NumCores() != tc.cores {
			t.Errorf("%+v: cores = %d", tc, g.NumCores())
		}
		if g.NumPackets() != tc.packets {
			t.Errorf("%+v: packets = %d", tc, g.NumPackets())
		}
		if g.TotalBits() != tc.bits {
			t.Errorf("%+v: bits = %d", tc, g.TotalBits())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%+v: invalid: %v", tc, err)
		}
	}
}

func TestGenerateAllCoresUsed(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g, err := Generate(Params{Cores: 12, Packets: 25, TotalBits: 2578920, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		used := make(map[model.CoreID]bool)
		for _, p := range g.Packets {
			used[p.Src] = true
			used[p.Dst] = true
		}
		if len(used) != 12 {
			t.Fatalf("seed %d: only %d/12 cores used", seed, len(used))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Cores: 9, Packets: 51, TotalBits: 23244, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) || len(a.Deps) != len(b.Deps) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
	c, err := Generate(Params{Cores: 9, Packets: 51, TotalBits: 23244, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Packets {
		if a.Packets[i] != c.Packets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical benchmarks")
	}
}

func TestGenerateHasParallelChains(t *testing.T) {
	g, err := Generate(Params{Cores: 10, Packets: 60, TotalBits: 100000, Seed: 3, Chains: 5})
	if err != nil {
		t.Fatal(err)
	}
	starts, err := g.StartPackets()
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 5 {
		t.Fatalf("chain roots = %d, want 5", len(starts))
	}
}

func TestGenerateHotspot(t *testing.T) {
	g, err := Generate(Params{Cores: 8, Packets: 200, TotalBits: 40000, Seed: 9, HotspotBias: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[model.CoreID]int{}
	for _, p := range g.Packets {
		counts[p.Dst]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With 60% bias one destination must dominate clearly: an unbiased
	// spread over 8 cores would put ~25 packets on each.
	if max < 60 {
		t.Fatalf("hotspot max dst count = %d, want >= 60", max)
	}
}

func TestGenerateRejections(t *testing.T) {
	bad := []Params{
		{Cores: 1, Packets: 5, TotalBits: 100},
		{Cores: 4, Packets: 0, TotalBits: 100},
		{Cores: 4, Packets: 10, TotalBits: 5},
		{Cores: 4, Packets: 10, TotalBits: 100, HotspotBias: 1.0},
		{Cores: 4, Packets: 10, TotalBits: 100, ComputeMin: 5, ComputeMax: 1},
		{Cores: 4, Packets: 10, TotalBits: 100, ComputeMin: -1, ComputeMax: 2},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestScaleVolumesExact(t *testing.T) {
	cases := []struct {
		weights []float64
		total   int64
	}{
		{[]float64{1, 1, 1}, 10},
		{[]float64{1, 2, 3, 4}, 174},
		{[]float64{0.001, 1000}, 50},
		{[]float64{5}, 7},
		{[]float64{0, 0, 0}, 9},
		{[]float64{1, 1e-9, 1e-9}, 3},
	}
	for _, tc := range cases {
		vols := ScaleVolumes(tc.weights, tc.total)
		var sum int64
		for _, v := range vols {
			if v < 1 {
				t.Fatalf("weights %v: volume %d below floor", tc.weights, v)
			}
			sum += v
		}
		if sum != tc.total {
			t.Fatalf("weights %v: sum %d, want %d", tc.weights, sum, tc.total)
		}
	}
	if ScaleVolumes(nil, 5) != nil {
		t.Fatal("empty weights should give nil")
	}
}

func TestQuickScaleVolumesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 100
		}
		total := int64(n) + rng.Int63n(1_000_000)
		vols := ScaleVolumes(weights, total)
		var sum int64
		for _, v := range vols {
			if v < 1 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGeneratedGraphsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(20)
		packets := 1 + rng.Intn(100)
		bits := int64(packets) + rng.Int63n(1_000_000)
		g, err := Generate(Params{Cores: cores, Packets: packets, TotalBits: bits, Seed: seed})
		if err != nil {
			return false
		}
		return g.Validate() == nil &&
			g.NumPackets() == packets && g.TotalBits() == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
