package wormhole

// Golden tests: the simulator must reproduce, exactly, every number the
// paper publishes for its Section 4.1 worked example — the two mappings of
// Figure 1(c,d), every resource interval annotated in Figure 3, the
// contention of Figure 4 and the execution times 100 ns / 90 ns.

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// Paper tile layout on the 2x2 mesh: t1 t2 / t3 t4 (IDs 0..3).
//
// MappingA is Figure 1(c): B@t1, A@t2, F@t3, E@t4.
// MappingB is Figure 1(d): B@t1, E@t2, F@t3, A@t4.
// Core order in the model is A, B, E, F.
var (
	paperMappingA = mapping.Mapping{1, 0, 3, 2}
	paperMappingB = mapping.Mapping{3, 0, 1, 2}
)

func newPaperSim(t *testing.T, record bool) *Simulator {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(mesh, noc.PaperExample(), model.PaperExampleCDCG())
	if err != nil {
		t.Fatal(err)
	}
	sim.RecordOccupancy = record
	return sim
}

func TestPaperMappingAExecutionTime(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCycles != 100 {
		t.Fatalf("texec(a) = %d, want 100 (paper Figure 3a)", res.ExecCycles)
	}
}

func TestPaperMappingBExecutionTime(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingB)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCycles != 90 {
		t.Fatalf("texec(b) = %d, want 90 (paper Figure 3b)", res.ExecCycles)
	}
}

func TestPaperMappingAPacketTimeline(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	// id: pAB1=0 pBF1=1 pEA1=2 pEA2=3 pAF1=4 pFB1=5
	want := []PacketSchedule{
		{ID: 0, Ready: 0, Start: 6, Delivered: 27, Contention: 0, K: 2, Flits: 15},
		{ID: 1, Ready: 0, Start: 10, Delivered: 56, Contention: 0, K: 2, Flits: 40},
		{ID: 2, Ready: 0, Start: 10, Delivered: 36, Contention: 0, K: 2, Flits: 20},
		{ID: 3, Ready: 36, Start: 56, Delivered: 77, Contention: 0, K: 2, Flits: 15},
		{ID: 4, Ready: 36, Start: 42, Delivered: 73, Contention: 7, K: 3, Flits: 15},
		{ID: 5, Ready: 73, Start: 79, Delivered: 100, Contention: 0, K: 2, Flits: 15},
	}
	for i, w := range want {
		if res.Packets[i] != w {
			t.Errorf("packet %d: got %+v, want %+v", i, res.Packets[i], w)
		}
	}
	if res.TotalContention != 7 {
		t.Fatalf("total contention = %d, want 7 (Figure 4)", res.TotalContention)
	}
}

func TestPaperMappingBPacketTimeline(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingB)
	if err != nil {
		t.Fatal(err)
	}
	want := []PacketSchedule{
		{ID: 0, Ready: 0, Start: 6, Delivered: 30, Contention: 0, K: 3, Flits: 15},
		{ID: 1, Ready: 0, Start: 10, Delivered: 56, Contention: 0, K: 2, Flits: 40},
		{ID: 2, Ready: 0, Start: 10, Delivered: 36, Contention: 0, K: 2, Flits: 20},
		{ID: 3, Ready: 36, Start: 56, Delivered: 77, Contention: 0, K: 2, Flits: 15},
		{ID: 4, Ready: 36, Start: 42, Delivered: 63, Contention: 0, K: 2, Flits: 15},
		{ID: 5, Ready: 63, Start: 69, Delivered: 90, Contention: 0, K: 2, Flits: 15},
	}
	for i, w := range want {
		if res.Packets[i] != w {
			t.Errorf("packet %d: got %+v, want %+v", i, res.Packets[i], w)
		}
	}
	if res.TotalContention != 0 {
		t.Fatalf("mapping (b) should be contention free (Figure 5), got %d", res.TotalContention)
	}
}

// occEq asserts an occupancy list matches (packet, start, end) triples.
func occEq(t *testing.T, got []Occupancy, want []Occupancy, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: got %+v, want %+v\nfull: %v", what, i, got[i], want[i], got)
		}
	}
}

// TestPaperFigure3aResourceIntervals checks every interval the paper
// annotates on the mapping-(a) CRG (Figure 3a). Packet IDs:
// pAB1=0 pBF1=1 pEA1=2 pEA2=3 pAF1=4 pFB1=5. Tiles: t1=0 t2=1 t3=2 t4=3.
func TestPaperFigure3aResourceIntervals(t *testing.T) {
	sim := newPaperSim(t, true)
	res, err := sim.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	mesh := sim.Mesh
	link := func(a, b topology.TileID) int {
		li, ok := mesh.LinkIndex(a, b)
		if !ok {
			t.Fatalf("no link %d->%d", a, b)
		}
		return li
	}

	// Core output links. Core A@t2: 15(A→B):[6,21], 15(A→F):[42,57].
	occEq(t, res.Occupancies(KindCoreOut, 1), []Occupancy{
		{Packet: 0, Start: 6, End: 21},
		{Packet: 4, Start: 42, End: 57},
	}, "coreOut(A@t2)")
	// Core B@t1: 40(B→F):[10,50].
	occEq(t, res.Occupancies(KindCoreOut, 0), []Occupancy{
		{Packet: 1, Start: 10, End: 50},
	}, "coreOut(B@t1)")
	// Core E@t4: 20(E→A):[10,30], 15(E→A):[56,71].
	occEq(t, res.Occupancies(KindCoreOut, 3), []Occupancy{
		{Packet: 2, Start: 10, End: 30},
		{Packet: 3, Start: 56, End: 71},
	}, "coreOut(E@t4)")
	// Core F@t3: 15(F→B):[79,94].
	occEq(t, res.Occupancies(KindCoreOut, 2), []Occupancy{
		{Packet: 5, Start: 79, End: 94},
	}, "coreOut(F@t3)")

	// Core input links. A@t2 receives E→A twice: [16,36], [62,77].
	occEq(t, res.Occupancies(KindCoreIn, 1), []Occupancy{
		{Packet: 2, Start: 16, End: 36},
		{Packet: 3, Start: 62, End: 77},
	}, "coreIn(A@t2)")
	// B@t1 receives A→B [12,27] and F→B [85,100].
	occEq(t, res.Occupancies(KindCoreIn, 0), []Occupancy{
		{Packet: 0, Start: 12, End: 27},
		{Packet: 5, Start: 85, End: 100},
	}, "coreIn(B@t1)")
	// F@t3 receives B→F [16,56] and the contended A→F [58,73] (starred).
	occEq(t, res.Occupancies(KindCoreIn, 2), []Occupancy{
		{Packet: 1, Start: 16, End: 56},
		{Packet: 4, Start: 58, End: 73},
	}, "coreIn(F@t3)")

	// Inter-tile links.
	// t2->t1: 15(A→B):[9,24], 15(A→F):[45,60].
	occEq(t, res.Occupancies(KindLink, link(1, 0)), []Occupancy{
		{Packet: 0, Start: 9, End: 24},
		{Packet: 4, Start: 45, End: 60},
	}, "link t2->t1")
	// t1->t3: 40(B→F):[13,53], *15(A→F):[55,70].
	occEq(t, res.Occupancies(KindLink, link(0, 2)), []Occupancy{
		{Packet: 1, Start: 13, End: 53},
		{Packet: 4, Start: 55, End: 70},
	}, "link t1->t3")
	// t4->t2: 20(E→A):[13,33], 15(E→A):[59,74].
	occEq(t, res.Occupancies(KindLink, link(3, 1)), []Occupancy{
		{Packet: 2, Start: 13, End: 33},
		{Packet: 3, Start: 59, End: 74},
	}, "link t4->t2")
	// t3->t1: 15(F→B):[82,97].
	occEq(t, res.Occupancies(KindLink, link(2, 0)), []Occupancy{
		{Packet: 5, Start: 82, End: 97},
	}, "link t3->t1")

	// Router display spans (include buffer wait; may overlap).
	// Router t1: 15(A→B):[10,26], 40(B→F):[11,52], *15(A→F):[46,69],
	// 15(F→B):[83,99].
	occEq(t, res.Occupancies(KindRouter, 0), []Occupancy{
		{Packet: 0, Start: 10, End: 26},
		{Packet: 1, Start: 11, End: 52},
		{Packet: 4, Start: 46, End: 69},
		{Packet: 5, Start: 83, End: 99},
	}, "router t1")
	// Router t2: 15(A→B):[7,23], 20(E→A):[14,35], 15(E→A):[60,76],
	// 15(A→F):[43,59].
	occEq(t, res.Occupancies(KindRouter, 1), []Occupancy{
		{Packet: 0, Start: 7, End: 23},
		{Packet: 2, Start: 14, End: 35},
		{Packet: 4, Start: 43, End: 59},
		{Packet: 3, Start: 60, End: 76},
	}, "router t2")
	// Router t3: 40(B→F):[14,55], *15(A→F):[56,72], 15(F→B):[80,96].
	occEq(t, res.Occupancies(KindRouter, 2), []Occupancy{
		{Packet: 1, Start: 14, End: 55},
		{Packet: 4, Start: 56, End: 72},
		{Packet: 5, Start: 80, End: 96},
	}, "router t3")
	// Router t4: 20(E→A):[11,32], 15(E→A):[57,73].
	occEq(t, res.Occupancies(KindRouter, 3), []Occupancy{
		{Packet: 2, Start: 11, End: 32},
		{Packet: 3, Start: 57, End: 73},
	}, "router t4")
}

// TestPaperFigure3bResourceIntervals spot-checks the contention-free
// mapping (b) intervals the paper prints.
func TestPaperFigure3bResourceIntervals(t *testing.T) {
	sim := newPaperSim(t, true)
	res, err := sim.Run(paperMappingB)
	if err != nil {
		t.Fatal(err)
	}
	mesh := sim.Mesh
	link := func(a, b topology.TileID) int {
		li, _ := mesh.LinkIndex(a, b)
		return li
	}
	// A@t4 now: A→B crosses t4 [7,23], t3 [10,26], t1 [13,29]; t4 also
	// delivers both E→A packets and injects A→F.
	occEq(t, res.Occupancies(KindRouter, 3), []Occupancy{
		{Packet: 0, Start: 7, End: 23},
		{Packet: 2, Start: 14, End: 35},
		{Packet: 4, Start: 43, End: 59},
		{Packet: 3, Start: 60, End: 76},
	}, "router t4 (b)")
	// Core F's delivery link shows the paper's overlapping bookings:
	// 40(B→F):[16,56] and 15(A→F):[48,63] — delivery is not arbitrated.
	occEq(t, res.Occupancies(KindCoreIn, 2), []Occupancy{
		{Packet: 1, Start: 16, End: 56},
		{Packet: 4, Start: 48, End: 63},
	}, "coreIn(F@t3) (b)")
	// 15(F→B):[69,84] is core F's output link.
	occEq(t, res.Occupancies(KindCoreOut, 2), []Occupancy{
		{Packet: 5, Start: 69, End: 84},
	}, "coreOut(F@t3) (b)")
	occEq(t, res.Occupancies(KindCoreIn, 0), []Occupancy{
		{Packet: 0, Start: 15, End: 30},
		{Packet: 5, Start: 75, End: 90},
	}, "coreIn(B@t1) (b)")
	// Link t4->t3 carries A→B [9,24] and A→F [45,60].
	occEq(t, res.Occupancies(KindLink, link(3, 2)), []Occupancy{
		{Packet: 0, Start: 9, End: 24},
		{Packet: 4, Start: 45, End: 60},
	}, "link t4->t3 (b)")
}

// TestPaperTrafficAggregates checks the bit-volume aggregates that feed
// the energy model: 255 router-bit and 135 link-bit for both mappings
// (hence the identical 390 pJ dynamic energy of Figure 2).
func TestPaperTrafficAggregates(t *testing.T) {
	sim := newPaperSim(t, false)
	for _, tc := range []struct {
		name string
		mp   mapping.Mapping
	}{{"a", paperMappingA}, {"b", paperMappingB}} {
		name, mp := tc.name, tc.mp
		res, err := sim.Run(mp)
		if err != nil {
			t.Fatal(err)
		}
		var rb, lb int64
		for _, b := range res.RouterBits {
			rb += b
		}
		for _, b := range res.LinkBits {
			lb += b
		}
		if rb != 255 {
			t.Errorf("mapping %s: router bits = %d, want 255", name, rb)
		}
		if lb != 135 {
			t.Errorf("mapping %s: link bits = %d, want 135", name, lb)
		}
		if res.CoreBits != 240 { // 2 x 120 total bits
			t.Errorf("mapping %s: core bits = %d, want 240", name, res.CoreBits)
		}
	}
}

// TestPaperEquation8NoContention verifies delivered-start equals the
// paper's equation (8) for every uncontended packet of mapping (b).
func TestPaperEquation8NoContention(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingB)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Cfg
	for _, ps := range res.Packets {
		want := cfg.UncontendedDelay(ps.K, ps.Flits)
		if got := ps.Delivered - ps.Start; got != want {
			t.Errorf("packet %d: delay %d, want eq(8) %d", ps.ID, got, want)
		}
		// And eq(8) = eq(6) + eq(7): d = dR + dP.
		if want != cfg.RoutingDelay(ps.K)+cfg.PayloadDelay(ps.Flits) {
			t.Errorf("packet %d: eq(6)+eq(7) != eq(8)", ps.ID)
		}
	}
}
