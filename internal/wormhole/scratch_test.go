package wormhole

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// cloneResult deep-copies a (possibly scratch-backed) Result so it can be
// compared after later runs reuse the backing arrays.
func cloneResult(r *Result) *Result {
	c := *r
	c.Packets = append([]PacketSchedule(nil), r.Packets...)
	c.RouterBits = append([]int64(nil), r.RouterBits...)
	c.LinkBits = append([]int64(nil), r.LinkBits...)
	c.occ = nil
	return &c
}

func resultsEqual(a, b *Result) bool {
	return a.ExecCycles == b.ExecCycles &&
		a.CoreBits == b.CoreBits &&
		a.TSVBits == b.TSVBits &&
		a.TotalContention == b.TotalContention &&
		reflect.DeepEqual(a.Packets, b.Packets) &&
		reflect.DeepEqual(a.RouterBits, b.RouterBits) &&
		reflect.DeepEqual(a.LinkBits, b.LinkBits)
}

// scratchMesh builds one of the grids the equivalence suite sweeps: a
// planar mesh, a stacked 3-D mesh and a torus, so the scratch path is
// pinned against Run on every topology family.
func scratchMeshes(t *testing.T) []*topology.Mesh {
	t.Helper()
	m2, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := topology.NewMesh3D(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Mesh{m2, m3, tor}
}

// TestRunScratchMatchesRun pins the scratch fast path against Run
// schedule-for-schedule: every field of every PacketSchedule and every
// traffic aggregate must be identical, across 2-D/3-D/torus grids and
// both buffer policies.
func TestRunScratchMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, mesh := range scratchMeshes(t) {
		for _, bounded := range []bool{false, true} {
			cfg := noc.Default()
			if mesh.D() > 1 {
				cfg.Routing = topology.RouteXYZ
				cfg.TSVLinkCycles = 3
			}
			if bounded {
				cfg.Buffers = noc.BuffersBounded
				cfg.BufferFlits = 2
			}
			nc := 2 + rng.Intn(mesh.NumTiles()-1)
			g := randomValidCDCG(rng, nc, 30)
			ref, err := NewSimulator(mesh, cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := NewSimulator(mesh, cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			sc := sim.NewScratch()
			for trial := 0; trial < 20; trial++ {
				mp, err := mapping.Random(rng, nc, mesh.NumTiles())
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Run(mp)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.RunScratch(mp, sc)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsEqual(want, got) {
					t.Fatalf("mesh %dx%dx%d bounded=%v trial %d: scratch result diverged",
						mesh.W(), mesh.H(), mesh.D(), bounded, trial)
				}
			}
		}
	}
}

// TestRunScratchResultReused pins the documented aliasing contract: the
// Result returned by RunScratch is backed by the scratch and overwritten
// by the next run with that scratch.
func TestRunScratchResultReused(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	sim, err := NewSimulator(mesh, noc.PaperExample(), model.PaperExampleCDCG())
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScratch()
	a, err := sim.RunScratch(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunScratch(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("RunScratch allocated a fresh Result instead of reusing the scratch's")
	}
	if &a.Packets[0] != &b.Packets[0] {
		t.Fatal("RunScratch reallocated the Packets backing array")
	}
}

// TestRunScratchSteadyStateZeroAllocs is the headline allocation test of
// the scratch subsystem: after warmup, a full CDCM wormhole simulation
// performs zero heap allocations.
func TestRunScratchSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mesh, _ := topology.NewMesh(4, 4)
	g := randomValidCDCG(rng, 9, 60)
	sim, err := NewSimulator(mesh, noc.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScratch()
	mps := make([]mapping.Mapping, 8)
	for i := range mps {
		if mps[i], err = mapping.Random(rng, 9, 16); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch: grow every interval list, the heap and the hop
	// plan to their steady-state capacity.
	for range 4 {
		for _, mp := range mps {
			if _, err := sim.RunScratch(mp, sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		mp := mps[i%len(mps)]
		i++
		if _, err := sim.RunScratch(mp, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunScratch steady state allocates %.1f objects/run, want 0", allocs)
	}
}

// TestScratchConcurrentClonesMatchSequential races N scratches over a
// shared simulator (the parallel search engines' configuration) and
// requires every concurrent schedule to match the sequential Run result
// field for field. Run with -race in CI.
func TestScratchConcurrentClonesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mesh, _ := topology.NewMesh3D(2, 2, 2)
	cfg := noc.Default()
	cfg.Routing = topology.RouteXYZ
	g := randomValidCDCG(rng, 6, 50)
	seq, err := NewSimulator(mesh, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewSimulator(mesh, cfg, g)
	if err != nil {
		t.Fatal(err)
	}

	const nMaps = 64
	mps := make([]mapping.Mapping, nMaps)
	want := make([]*Result, nMaps)
	for i := range mps {
		if mps[i], err = mapping.Random(rng, 6, 8); err != nil {
			t.Fatal(err)
		}
		res, err := seq.Run(mps[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const workers = 8
	got := make([]*Result, nMaps)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := shared.NewScratch()
			for i := w; i < nMaps; i += workers {
				res, err := shared.RunScratch(mps[i], sc)
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = cloneResult(res)
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] == nil || !resultsEqual(want[i], got[i]) {
			t.Fatalf("mapping %d: concurrent scratch schedule diverged from sequential Run", i)
		}
	}
}

// TestRunFreshIndependentResult pins RunFresh's contract: same schedule
// as RunScratch, but the Result survives later runs on the same scratch.
func TestRunFreshIndependentResult(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	sim, err := NewSimulator(mesh, noc.PaperExample(), model.PaperExampleCDCG())
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScratch()
	fresh, err := sim.RunFresh(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	keep := cloneResult(fresh)
	other := mapping.Mapping{0, 1, 2, 3}
	if _, err := sim.RunScratch(other, sc); err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(keep, fresh) {
		t.Fatal("RunFresh result mutated by a later run on the same scratch")
	}
	via, err := sim.RunScratch(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(via, fresh) {
		t.Fatal("RunFresh schedule diverged from RunScratch")
	}
}

func TestRunScratchRejectsForeignScratch(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	g := model.PaperExampleCDCG()
	a, err := NewSimulator(mesh, noc.PaperExample(), g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulator(mesh, noc.PaperExample(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunScratch(paperMappingA, b.NewScratch()); err == nil {
		t.Fatal("scratch from another simulator accepted")
	}
	if _, err := a.RunScratch(paperMappingA, nil); err == nil {
		t.Fatal("nil scratch accepted")
	}
	if _, err := a.RunFresh(paperMappingA, b.NewScratch()); err == nil {
		t.Fatal("RunFresh: scratch from another simulator accepted")
	}
	var zero Simulator
	if _, err := zero.RunScratch(paperMappingA, nil); err == nil {
		t.Fatal("zero-value simulator accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewScratch on zero-value simulator did not panic")
		}
	}()
	zero.NewScratch()
}

// TestScratchRecordOccupancy checks the per-scratch recording flag: off
// by default (search lanes), on it produces the same occupancies Run
// records via Simulator.RecordOccupancy.
func TestScratchRecordOccupancy(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	g := model.PaperExampleCDCG()
	ref := newPaperSim(t, true)
	want, err := ref.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(mesh, noc.PaperExample(), g)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScratch()
	res, err := sim.RunScratch(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Occupancies(KindRouter, 0) != nil {
		t.Fatal("scratch run recorded occupancies without the flag")
	}
	sc.RecordOccupancy = true
	res, err = sim.RunScratch(paperMappingA, sc)
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < 4; tile++ {
		for _, kind := range []ResourceKind{KindRouter, KindCoreOut, KindCoreIn} {
			if !reflect.DeepEqual(res.Occupancies(kind, tile), want.Occupancies(kind, tile)) {
				t.Fatalf("%s occupancies of tile %d diverged from the recording Run", kind, tile)
			}
		}
	}
}
