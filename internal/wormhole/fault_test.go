package wormhole

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// TestNewSimulatorFaultsNilBitIdentity pins the zero-cost contract of the
// fault-aware constructor: nil and empty fault sets build a simulator
// whose results are bit-identical to NewSimulator's on every mapping —
// the intact fast path is untouched by the fault machinery.
func TestNewSimulatorFaultsNilBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := randomValidCDCG(rng, 7, 50)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	intact, err := NewSimulator(mesh, noc.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	for name, fs := range map[string]*topology.FaultSet{"nil": nil, "empty": topology.NewFaultSet(mesh)} {
		sim, err := NewSimulatorFaults(mesh, noc.Default(), g, fs)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			mp, err := mapping.Random(rng, 7, 9)
			if err != nil {
				t.Fatal(err)
			}
			want, err := intact.Run(mp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(mp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s fault set: result diverges from intact simulator", name)
			}
		}
	}
}

// TestFaultSimulatorAvoidsFailedLink checks that a faulted simulator's
// traffic never crosses the failed link: its LinkBits stay zero in both
// directions while the packets still deliver (the 3x3 remains connected).
func TestFaultSimulatorAvoidsFailedLink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := randomValidCDCG(rng, 9, 60)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := topology.NewFaultSet(mesh)
	if err := fs.FailLink(4, 5); err != nil { // center -> east, heavily used by XY
		t.Fatal(err)
	}
	cfg := noc.Default()
	cfg.Routing = topology.RouteFA
	sim, err := NewSimulatorFaults(mesh, cfg, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(mapping.Identity(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]topology.TileID{{4, 5}, {5, 4}} {
		li, ok := mesh.LinkIndex(pair[0], pair[1])
		if !ok {
			t.Fatal("link 4-5 missing")
		}
		if res.LinkBits[li] != 0 {
			t.Errorf("failed link %d->%d carried %d bits", pair[0], pair[1], res.LinkBits[li])
		}
	}
	if res.ExecCycles <= 0 {
		t.Fatal("faulted run delivered nothing")
	}
}

// TestFaultSimulatorUnreachable pins the partition behaviour: the
// constructor still succeeds (the route table marks the dead pairs), and
// a run whose mapping routes across the partition fails fast with the
// static ErrUnreachable sentinel, matchable as both the wormhole and the
// topology error.
func TestFaultSimulatorUnreachable(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Isolate tile 0 (links 0-1 and 0-2 are its only attachments).
	fs := topology.NewFaultSet(mesh)
	if err := fs.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailLink(0, 2); err != nil {
		t.Fatal(err)
	}
	g := &model.CDCG{
		Cores:   model.MakeCores(2),
		Packets: []model.Packet{{ID: 0, Src: 0, Dst: 1, Compute: 1, Bits: 8}},
	}
	cfg := noc.Default()
	cfg.Routing = topology.RouteFA
	sim, err := NewSimulatorFaults(mesh, cfg, g, fs)
	if err != nil {
		t.Fatalf("constructor must tolerate partitions: %v", err)
	}
	if sim.Faults() != fs {
		t.Fatal("Faults() does not return the configured set")
	}
	// Core 0 on the isolated tile, core 1 across the partition.
	_, err = sim.Run(mapping.Mapping{0, 3})
	if !errors.Is(err, ErrUnreachable) || !errors.Is(err, topology.ErrUnreachable) {
		t.Fatalf("partitioned run: err = %v, want the unreachable sentinel", err)
	}
	// Both cores inside the connected component: the run succeeds.
	if _, err := sim.Run(mapping.Mapping{1, 3}); err != nil {
		t.Fatalf("reachable mapping failed: %v", err)
	}
}

// TestFaultSimulatorScratchDeterministic: fault-aware runs are
// deterministic and Scratch lanes reproduce Run exactly, the property the
// parallel search workers rely on.
func TestFaultSimulatorScratchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := randomValidCDCG(rng, 6, 40)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	fs, err := topology.GenerateFaults(mesh, 0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Empty() {
		t.Fatal("fault pin (0.15, seed 2) became empty; pick a different seed")
	}
	cfg := noc.Default()
	cfg.Routing = topology.RouteFA
	sim, err := NewSimulatorFaults(mesh, cfg, g, fs)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Random(rng, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScratch()
	for i := 0; i < 4; i++ {
		got, err := sim.RunScratch(mp, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.ExecCycles != want.ExecCycles || got.TotalContention != want.TotalContention {
			t.Fatalf("scratch run %d diverged: %d cycles vs %d", i, got.ExecCycles, want.ExecCycles)
		}
	}
}
