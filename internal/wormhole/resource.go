// Package wormhole implements the timed, contention-aware wormhole
// simulator at the heart of the CDCM mapping evaluation (paper Section 4).
//
// Every NoC resource — router, inter-tile link, core↔router link — keeps a
// list of closed busy intervals ("cost variable lists" in the paper). A
// packet acquires each resource along its XY route at the earliest instant
// the resource is continuously free, waiting in the router input buffer
// otherwise; that wait is the contention delay the CWM model cannot see.
package wormhole

import (
	"repro/internal/model"
)

// Occupancy records one packet holding one resource over a closed cycle
// interval [Start, End] — the paper's "number of bits in a given time
// interval" annotation of Figure 3.
type Occupancy struct {
	Packet model.PacketID
	Start  int64
	End    int64
}

// busyList is a list of closed busy intervals for one resource, sorted by
// Start. Arbitrated resources keep non-overlapping intervals; unarbitrated
// resources and backpressure extensions may overlap. maxEnd caches the
// largest End so the common append-at-the-back acquisition is O(1).
type busyList struct {
	iv     []Occupancy
	maxEnd int64
}

// reset empties the list, retaining capacity for reuse across runs.
//nocvet:noalloc
func (b *busyList) reset() {
	b.iv = b.iv[:0]
	b.maxEnd = 0
}

// acquire books the earliest interval [t, t+hold] with t >= arrival that
// does not overlap any existing booking, inserts it, and returns t.
// Intervals are closed: a resource busy through cycle e is free from e+1.
//nocvet:noalloc
func (b *busyList) acquire(arrival, hold int64, pkt model.PacketID) int64 {
	t := arrival
	pos := len(b.iv)
	if len(b.iv) == 0 || arrival > b.maxEnd {
		// Fast path: strictly after everything booked.
	} else {
		for i := range b.iv {
			cur := &b.iv[i]
			if cur.End < t {
				continue // entirely in the past w.r.t. t
			}
			if t+hold < cur.Start {
				pos = i // fits wholly in the gap before cur
				break
			}
			t = cur.End + 1 // conflict: jump past cur
		}
	}
	b.iv = append(b.iv, Occupancy{})
	copy(b.iv[pos+1:], b.iv[pos:])
	b.iv[pos] = Occupancy{Packet: pkt, Start: t, End: t + hold}
	if t+hold > b.maxEnd {
		b.maxEnd = t + hold
	}
	return t
}

// record inserts [start, start+hold] keeping the list sorted by Start,
// WITHOUT conflict checking. Used for resources that are timed but not
// arbitrated (the paper's router→core delivery path, whose bookings may
// overlap) and to commit planned hops. Bookings mostly arrive in
// time-sorted order, so the insertion position is searched from the back.
//nocvet:noalloc
func (b *busyList) record(start, hold int64, pkt model.PacketID) {
	pos := len(b.iv)
	for pos > 0 {
		prev := &b.iv[pos-1]
		if prev.Start < start || (prev.Start == start && prev.Packet <= pkt) {
			break
		}
		pos--
	}
	b.iv = append(b.iv, Occupancy{})
	copy(b.iv[pos+1:], b.iv[pos:])
	b.iv[pos] = Occupancy{Packet: pkt, Start: start, End: start + hold}
	if start+hold > b.maxEnd {
		b.maxEnd = start + hold
	}
}

// earliestFree returns the earliest instant >= arrival at which an
// interval of the given hold length would fit, without booking it.
// Bookings may overlap (backpressure extensions); the scan handles that:
// t only grows, and any interval already passed has End below the t at
// which it was examined.
//nocvet:noalloc
func (b *busyList) earliestFree(arrival, hold int64) int64 {
	if len(b.iv) == 0 || arrival > b.maxEnd {
		return arrival // fast path: strictly after everything booked
	}
	t := arrival
	for i := range b.iv {
		cur := &b.iv[i]
		if cur.End < t {
			continue
		}
		if t+hold < cur.Start {
			break
		}
		t = cur.End + 1
	}
	return t
}

// snapshot copies the interval list for external exposure.
func (b *busyList) snapshot() []Occupancy {
	out := make([]Occupancy, len(b.iv))
	copy(out, b.iv)
	return out
}
