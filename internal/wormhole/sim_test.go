package wormhole

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

func TestBusyListAcquireSequential(t *testing.T) {
	var b busyList
	if got := b.acquire(10, 5, 0); got != 10 {
		t.Fatalf("first acquire = %d", got)
	}
	// [10,15] booked; arrival 12 conflicts -> 16.
	if got := b.acquire(12, 3, 1); got != 16 {
		t.Fatalf("conflicting acquire = %d, want 16", got)
	}
	// Gap fit: [0,8] is free for a hold of 8? [0,8] vs [10,15]: fits at 0... 0+8=8 < 10 OK.
	if got := b.acquire(0, 8, 2); got != 0 {
		t.Fatalf("gap acquire = %d, want 0", got)
	}
	// Now [0,8],[10,15],[16,19]: arrival 0 hold 1 must go after 19 (no gap:
	// 9..9 is a 1-wide gap but hold=1 needs [9,10] which hits [10,15]).
	if got := b.acquire(0, 1, 3); got != 20 {
		t.Fatalf("tight acquire = %d, want 20", got)
	}
}

func TestBusyListGapFitExact(t *testing.T) {
	var b busyList
	b.acquire(0, 4, 0)  // [0,4]
	b.acquire(10, 4, 1) // [10,14]
	// Hold 4 needs [5,9]: exactly the gap.
	if got := b.acquire(0, 4, 2); got != 5 {
		t.Fatalf("exact gap = %d, want 5", got)
	}
}

func TestBusyListNoOverlapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b busyList
		for i := 0; i < 200; i++ {
			arrival := int64(rng.Intn(500))
			hold := int64(rng.Intn(40))
			got := b.acquire(arrival, hold, model.PacketID(i))
			if got < arrival {
				return false
			}
		}
		// Sorted and pairwise disjoint.
		for i := 1; i < len(b.iv); i++ {
			if b.iv[i-1].End >= b.iv[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Differential test: the maxEnd fast path must agree with a reference
// implementation without it, including under overlapping records.
func TestQuickEarliestFreeFastPathEquivalence(t *testing.T) {
	ref := func(iv []Occupancy, arrival, hold int64) int64 {
		t := arrival
		for i := range iv {
			cur := &iv[i]
			if cur.End < t {
				continue
			}
			if t+hold < cur.Start {
				break
			}
			t = cur.End + 1
		}
		return t
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b busyList
		for i := 0; i < 60; i++ {
			start := int64(rng.Intn(300))
			hold := int64(rng.Intn(50))
			if rng.Intn(2) == 0 {
				b.record(start, hold, model.PacketID(i)) // may overlap
			} else {
				b.acquire(start, hold, model.PacketID(i))
			}
			arrival := int64(rng.Intn(500))
			qh := int64(rng.Intn(60))
			if b.earliestFree(arrival, qh) != ref(b.iv, arrival, qh) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyListRecordAllowsOverlap(t *testing.T) {
	var b busyList
	b.record(10, 20, 1)
	b.record(5, 20, 0)
	b.record(10, 2, 2)
	iv := b.snapshot()
	if len(iv) != 3 || iv[0].Packet != 0 || iv[1].Packet != 1 || iv[2].Packet != 2 {
		t.Fatalf("record order = %v", iv)
	}
}

func randomValidCDCG(rng *rand.Rand, nc, np int) *model.CDCG {
	g := &model.CDCG{Cores: model.MakeCores(nc)}
	for i := 0; i < np; i++ {
		s := model.CoreID(rng.Intn(nc))
		d := model.CoreID(rng.Intn(nc))
		for d == s {
			d = model.CoreID(rng.Intn(nc))
		}
		g.Packets = append(g.Packets, model.Packet{
			ID: model.PacketID(i), Src: s, Dst: d,
			Compute: int64(rng.Intn(30)),
			Bits:    1 + int64(rng.Intn(500)),
		})
	}
	for i := 0; i < np; i++ {
		for j := i + 1; j < np; j++ {
			if rng.Float64() < 0.15 {
				g.Deps = append(g.Deps, model.Dep{From: model.PacketID(i), To: model.PacketID(j)})
			}
		}
	}
	return g
}

func TestSimulatorRejectsBadInputs(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	g := model.PaperExampleCDCG()

	if _, err := NewSimulator(nil, noc.PaperExample(), g); err == nil {
		t.Fatal("nil mesh accepted")
	}
	bad := noc.PaperExample()
	bad.FlitBits = 0
	if _, err := NewSimulator(mesh, bad, g); err == nil {
		t.Fatal("invalid config accepted")
	}
	badG := model.PaperExampleCDCG()
	badG.Packets[0].Bits = -3
	if _, err := NewSimulator(mesh, noc.PaperExample(), badG); err == nil {
		t.Fatal("invalid CDCG accepted")
	}
	tiny, _ := topology.NewMesh(1, 2)
	if _, err := NewSimulator(tiny, noc.PaperExample(), g); err == nil {
		t.Fatal("oversubscribed mesh accepted")
	}

	sim, err := NewSimulator(mesh, noc.PaperExample(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(mapping.Mapping{0, 1}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := sim.Run(mapping.Mapping{0, 0, 1, 2}); err == nil {
		t.Fatal("non-injective mapping accepted")
	}
	var zero Simulator
	if _, err := zero.Run(mapping.Mapping{0}); err == nil {
		t.Fatal("zero-value simulator accepted")
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mesh, _ := topology.NewMesh(3, 3)
	g := randomValidCDCG(rng, 6, 40)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(mesh, noc.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := mapping.Random(rng, 6, 9)
	first, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := sim.Run(mp)
		if err != nil {
			t.Fatal(err)
		}
		if again.ExecCycles != first.ExecCycles || again.TotalContention != first.TotalContention {
			t.Fatalf("run %d differs: %d/%d vs %d/%d", i,
				again.ExecCycles, again.TotalContention, first.ExecCycles, first.TotalContention)
		}
	}
}

// Property: simulated packet delay is never below equation (8), texec is
// never below the dependence lower bound, and traffic aggregates conserve
// volume exactly.
func TestQuickSimulatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(3), 2+rng.Intn(3)
		mesh, err := topology.NewMesh(w, h)
		if err != nil {
			return false
		}
		nc := 2 + rng.Intn(mesh.NumTiles()-1)
		g := randomValidCDCG(rng, nc, 1+rng.Intn(30))
		if g.Validate() != nil {
			return false
		}
		cfg := noc.Default()
		sim, err := NewSimulator(mesh, cfg, g)
		if err != nil {
			return false
		}
		mp, err := mapping.Random(rng, nc, mesh.NumTiles())
		if err != nil {
			return false
		}
		res, err := sim.Run(mp)
		if err != nil {
			return false
		}
		var totalBits, routeBits int64
		for _, p := range g.Packets {
			totalBits += p.Bits
		}
		for i, ps := range res.Packets {
			pkt := g.Packets[i]
			minDelay := cfg.UncontendedDelay(ps.K, ps.Flits)
			if ps.Delivered-ps.Start < minDelay {
				return false // faster than physics
			}
			if ps.Delivered-ps.Start != minDelay+ps.Contention {
				return false // delay decomposition must be exact
			}
			if ps.Contention < 0 || ps.Start < ps.Ready {
				return false
			}
			// K matches the XY route of the mapped tiles.
			r, _ := mesh.Route(cfg.Routing, mp[pkt.Src], mp[pkt.Dst])
			if ps.K != r.K() {
				return false
			}
			routeBits += pkt.Bits * int64(r.K())
		}
		var rb, lb, hopBits int64
		for _, b := range res.RouterBits {
			rb += b
		}
		for _, b := range res.LinkBits {
			lb += b
		}
		for i, ps := range res.Packets {
			hopBits += g.Packets[i].Bits * int64(ps.K-1)
		}
		if rb != routeBits || lb != hopBits || res.CoreBits != 2*totalBits {
			return false
		}
		// texec >= dependence-chain computation lower bound.
		lbound, err := g.ComputeLowerBound()
		if err != nil {
			return false
		}
		return res.ExecCycles >= lbound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: exclusive resources (ports, links, core-out) never overlap,
// and all recorded intervals stay within [0, texec].
func TestQuickNoOverlapOnExclusiveResources(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mesh, _ := topology.NewMesh(3, 3)
		nc := 2 + rng.Intn(7)
		g := randomValidCDCG(rng, nc, 1+rng.Intn(40))
		sim, err := NewSimulator(mesh, noc.Default(), g)
		if err != nil {
			return false
		}
		sim.RecordOccupancy = true
		mp, _ := mapping.Random(rng, nc, 9)
		res, err := sim.Run(mp)
		if err != nil {
			return false
		}
		disjoint := func(iv []Occupancy) bool {
			for i := 1; i < len(iv); i++ {
				if iv[i-1].End >= iv[i].Start {
					return false
				}
			}
			for _, o := range iv {
				if o.Start < 0 || o.End > res.ExecCycles {
					return false
				}
			}
			return true
		}
		for i := 0; i < mesh.NumTiles()*NumPorts; i++ {
			// The local port is unarbitrated; skip it.
			if i%NumPorts == LocalPort {
				continue
			}
			if !disjoint(res.Occupancies(KindRouterPort, i)) {
				return false
			}
		}
		for i := 0; i < mesh.NumLinks(); i++ {
			if !disjoint(res.Occupancies(KindLink, i)) {
				return false
			}
		}
		// Core links are unarbitrated by default (paper CRG semantics):
		// their occupancies may overlap but must stay within the run.
		for i := 0; i < mesh.NumTiles(); i++ {
			for _, o := range res.Occupancies(KindCoreOut, i) {
				if o.Start < 0 || o.End > res.ExecCycles {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// With ArbitrateLocal the delivery path becomes exclusive too, so coreIn
// lists must be disjoint. Note that total execution time is NOT guaranteed
// to grow: adding a resource constraint can reorder the greedy schedule and
// occasionally finish earlier (a classic Graham scheduling anomaly), so we
// deliberately do not assert monotonicity.
func TestArbitrateLocalAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mesh, _ := topology.NewMesh(3, 3)
	for trial := 0; trial < 30; trial++ {
		nc := 3 + rng.Intn(6)
		g := randomValidCDCG(rng, nc, 25)
		cfg := noc.Default()
		simA, err := NewSimulator(mesh, cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ArbitrateLocal = true
		simB, err := NewSimulator(mesh, cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		simB.RecordOccupancy = true
		mp, _ := mapping.Random(rng, nc, 9)
		if _, err := simA.Run(mp); err != nil {
			t.Fatal(err)
		}
		rb, err := simB.Run(mp)
		if err != nil {
			t.Fatal(err)
		}
		for tile := 0; tile < 9; tile++ {
			for _, kind := range []ResourceKind{KindCoreIn, KindCoreOut} {
				iv := rb.Occupancies(kind, tile)
				for i := 1; i < len(iv); i++ {
					if iv[i-1].End >= iv[i].Start {
						t.Fatalf("arbitrated %s overlaps: %v", kind, iv)
					}
				}
			}
		}
	}
}

func TestOccupanciesNilWithoutRecording(t *testing.T) {
	sim := newPaperSim(t, false)
	res, err := sim.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Occupancies(KindRouter, 0) != nil {
		t.Fatal("occupancies present without recording")
	}
	rec := newPaperSim(t, true)
	res2, err := rec.Run(paperMappingA)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Occupancies(KindRouter, 99) != nil || res2.Occupancies(ResourceKind(42), 0) != nil {
		t.Fatal("out-of-range occupancies not nil")
	}
}

func TestComputeDelayAccessor(t *testing.T) {
	ps := PacketSchedule{Ready: 10, Start: 16}
	if ps.ComputeDelay() != 6 {
		t.Fatalf("ComputeDelay = %d", ps.ComputeDelay())
	}
}

func TestResourceKindStrings(t *testing.T) {
	want := map[ResourceKind]string{
		KindRouter: "router", KindRouterPort: "router-port", KindLink: "link",
		KindCoreOut: "core-out", KindCoreIn: "core-in", ResourceKind(9): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// A single-packet CDCG on a 1x2 mesh: smallest possible system.
func TestMinimalSystem(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 1)
	g := &model.CDCG{
		Cores:   model.MakeCores(2, "src", "dst"),
		Packets: []model.Packet{{ID: 0, Src: 0, Dst: 1, Compute: 5, Bits: 10}},
	}
	cfg := noc.PaperExample()
	sim, err := NewSimulator(mesh, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(mapping.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// K=2 routers: delivered = 5 + 2*(2+1) + 10 = 21.
	if res.ExecCycles != 21 {
		t.Fatalf("texec = %d, want 21", res.ExecCycles)
	}
}
