package wormhole

import (
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// The simulator is topology-agnostic ("other NoC topologies can be
// equally treated"): the same CDCG runs on a torus, where wrap links
// shorten routes and therefore delivery times.
func TestSimulateOnTorus(t *testing.T) {
	g := &model.CDCG{
		Cores: model.MakeCores(2, "a", "b"),
		Packets: []model.Packet{
			{ID: 0, Src: 0, Dst: 1, Compute: 5, Bits: 10},
		},
	}
	cfg := noc.PaperExample()

	mesh, err := topology.NewMesh(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	simM, err := NewSimulator(mesh, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// Cores at opposite row ends: 3 hops on the mesh...
	resM, err := simM.Run(mapping.Mapping{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	// K=4 routers: 5 + 4*3 + 10 = 27.
	if resM.ExecCycles != 27 {
		t.Fatalf("mesh texec = %d, want 27", resM.ExecCycles)
	}

	torus, err := topology.NewTorus(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	simT, err := NewSimulator(torus, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// ...but one wrap hop on the torus: K=2: 5 + 2*3 + 10 = 21.
	resT, err := simT.Run(mapping.Mapping{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resT.ExecCycles != 21 {
		t.Fatalf("torus texec = %d, want 21", resT.ExecCycles)
	}
}

// YX routing produces valid, deterministic schedules with the same
// uncontended delay structure as XY.
func TestSimulateYXRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mesh, _ := topology.NewMesh(3, 3)
	g := randomValidCDCG(rng, 6, 25)
	cfgYX := noc.Default()
	cfgYX.Routing = topology.RouteYX
	sim, err := NewSimulator(mesh, cfgYX, g)
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := mapping.Random(rng, 6, 9)
	res, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range res.Packets {
		min := cfgYX.UncontendedDelay(ps.K, ps.Flits)
		if ps.Delivered-ps.Start != min+ps.Contention {
			t.Fatalf("packet %d: delay decomposition broken under YX", i)
		}
		// K must match the YX route.
		r, _ := mesh.Route(topology.RouteYX, mp[g.Packets[i].Src], mp[g.Packets[i].Dst])
		if ps.K != r.K() {
			t.Fatalf("packet %d: K=%d, YX route K=%d", i, ps.K, r.K())
		}
	}
	again, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	if again.ExecCycles != res.ExecCycles {
		t.Fatal("YX runs nondeterministic")
	}
}

// Torus wrap ports arbitrate like any other: two packets forced through
// the same wrap link serialise.
func TestTorusWrapPortContention(t *testing.T) {
	torus, _ := topology.NewTorus(3, 1)
	g := &model.CDCG{
		Cores: model.MakeCores(3, "a", "b", "c"),
		Packets: []model.Packet{
			{ID: 0, Src: 0, Dst: 1, Compute: 0, Bits: 20},
			{ID: 1, Src: 2, Dst: 1, Compute: 0, Bits: 20},
		},
	}
	cfg := noc.PaperExample()
	sim, err := NewSimulator(torus, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// a@t0, b@t2, c@t1: packet0 routes 0->2 westwards (wrap, 1 hop);
	// packet1 routes 1->2 eastwards (1 hop): disjoint links, no
	// contention.
	res, err := sim.Run(mapping.Mapping{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalContention != 0 {
		t.Fatalf("disjoint wrap routes contend: %+v", res.Packets)
	}
}
