package wormhole

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// vertApp is a two-core application with one 4-bit packet A→B.
func vertApp() *model.CDCG {
	return &model.CDCG{
		Name:    "vert",
		Cores:   []model.Core{{ID: 0, Name: "A"}, {ID: 1, Name: "B"}},
		Packets: []model.Packet{{ID: 0, Src: 0, Dst: 1, Compute: 0, Bits: 4}},
	}
}

// TestSim3DTSVLatency pins the vertical-hop timing: a packet crossing one
// TSV link pays the TSV per-flit rate on that hop (and on the output port
// feeding it), while core links and horizontal hops keep tl.
//
// With tr=2, tl=1 and a 4-flit packet from (0,0,0) to (0,0,1):
//
//	core-out [0,4], header at router 0 at t=1, routing done t=3,
//	TSV link crossed by the header at t=3+tlv, router 1 done at
//	t=3+tlv+2, delivery 4 cycles later.
//
// So delivered = 9+tlv: 10 with tlv = tl = 1, 12 with tlv = 3.
func TestSim3DTSVLatency(t *testing.T) {
	mesh, err := topology.NewMesh3D(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := vertApp()
	mp := mapping.Mapping{mesh.TileAt(0, 0, 0), mesh.TileAt(0, 0, 1)}
	for _, tc := range []struct {
		tsvCycles int64
		delivered int64
	}{
		{0, 10}, // 0 = same as LinkCycles
		{1, 10},
		{3, 12},
	} {
		cfg := noc.Default()
		cfg.TSVLinkCycles = tc.tsvCycles
		sim, err := NewSimulator(mesh, cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(mp)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecCycles != tc.delivered {
			t.Fatalf("tsv=%d: delivered at %d, want %d", tc.tsvCycles, res.ExecCycles, tc.delivered)
		}
		if res.TSVBits != 4 {
			t.Fatalf("tsv=%d: TSVBits = %d, want 4", tc.tsvCycles, res.TSVBits)
		}
		var lb int64
		for _, b := range res.LinkBits {
			lb += b
		}
		if lb != 4 {
			t.Fatalf("tsv=%d: total link bits %d, want 4 (one hop)", tc.tsvCycles, lb)
		}
	}
}

// TestSim3DTSVPortContention checks vertical output ports arbitrate like
// planar ones: two packets descending through the same router serialise on
// its Down port.
func TestSim3DTSVPortContention(t *testing.T) {
	mesh, err := topology.NewMesh3D(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cores A,B on layer 0 of column (0,0)/(0,1); C on layer 1 below A.
	// Both packets route (0,1,0)->(0,0,0)->(0,0,1) under YX? No: A at
	// (0,0,0) sends to C directly; B at (0,1,0) routes via A's router.
	g := &model.CDCG{
		Name: "contend",
		Cores: []model.Core{
			{ID: 0, Name: "A"}, {ID: 1, Name: "B"}, {ID: 2, Name: "C"},
		},
		Packets: []model.Packet{
			{ID: 0, Src: 0, Dst: 2, Compute: 0, Bits: 4},
			{ID: 1, Src: 1, Dst: 2, Compute: 0, Bits: 4},
		},
	}
	mp := mapping.Mapping{mesh.TileAt(0, 0, 0), mesh.TileAt(0, 1, 0), mesh.TileAt(0, 0, 1)}
	sim, err := NewSimulator(mesh, noc.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	// Both packets need router (0,0,0)'s Down port; the later header
	// stalls, so total contention must be positive and the two deliveries
	// must not coincide.
	if res.TotalContention <= 0 {
		t.Fatalf("no contention recorded on a shared TSV port (total %d)", res.TotalContention)
	}
	if res.Packets[0].Delivered == res.Packets[1].Delivered {
		t.Fatalf("both packets delivered at %d despite sharing a TSV port", res.Packets[0].Delivered)
	}
	if res.TSVBits != 8 {
		t.Fatalf("TSVBits = %d, want 8", res.TSVBits)
	}
}

// TestSim2DNoTSVTraffic pins the planar invariant: depth-1 runs never
// report vertical traffic.
func TestSim2DNoTSVTraffic(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(mesh, noc.Default(), vertApp())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(mapping.Mapping{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TSVBits != 0 {
		t.Fatalf("2D run reports %d TSV bits", res.TSVBits)
	}
}
