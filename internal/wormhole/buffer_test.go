package wormhole

import (
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// twoFlowContention builds two independent packets that share the t1->t3
// output port of the paper's 2x2 mesh under mapping (a) semantics: B->F
// first, then A->F arriving while the port is held.
func contendingCDCG() *model.CDCG {
	cores := model.MakeCores(4, "A", "B", "E", "F")
	return &model.CDCG{
		Name:  "contend",
		Cores: cores,
		Packets: []model.Packet{
			{ID: 0, Src: 1, Dst: 3, Compute: 10, Bits: 40}, // B->F
			{ID: 1, Src: 0, Dst: 3, Compute: 42, Bits: 15}, // A->F, arrives at t1 mid-stream
		},
	}
}

func runBuffered(t *testing.T, policy noc.BufferPolicy, depth int64) *Result {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.PaperExample()
	cfg.Buffers = policy
	cfg.BufferFlits = depth
	sim, err := NewSimulator(mesh, cfg, contendingCDCG())
	if err != nil {
		t.Fatal(err)
	}
	sim.RecordOccupancy = true
	res, err := sim.Run(mapping.Mapping{1, 0, 3, 2}) // B@t1, A@t2, F@t3, E@t4
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBoundedBuffersExtendUpstreamOccupancy(t *testing.T) {
	unb := runBuffered(t, noc.BuffersUnbounded, 0)
	// A->F stalls at the t1->t3 port: arrival at 46, port busy [11,52]
	// by B->F, acquired at 53 => stall 7 (the paper's Figure-4 value).
	if unb.Packets[1].Contention != 7 {
		t.Fatalf("unbounded contention = %d, want 7", unb.Packets[1].Contention)
	}
	mesh := unb.occLink(t)

	// With a 2-flit input buffer, 7-2 = 5 stall cycles overflow onto the
	// upstream t2->t1 link: its booking for A->F extends from [45,60] to
	// [45,65].
	bounded := runBuffered(t, noc.BuffersBounded, 2)
	link := bounded.Occupancies(KindLink, mesh)
	if len(link) != 1 || link[0].Start != 45 || link[0].End != 65 {
		t.Fatalf("bounded upstream link = %v, want [45,65]", link)
	}
	// Header timing (and so delivery) is unchanged by the occupancy
	// extension.
	if bounded.Packets[1].Delivered != unb.Packets[1].Delivered {
		t.Fatalf("delivery changed: %d vs %d", bounded.Packets[1].Delivered, unb.Packets[1].Delivered)
	}

	// A buffer at least as deep as the stall absorbs everything.
	deep := runBuffered(t, noc.BuffersBounded, 7)
	link = deep.Occupancies(KindLink, mesh)
	if len(link) != 1 || link[0].End != 60 {
		t.Fatalf("deep-buffer upstream link = %v, want end 60", link)
	}
}

// occLink finds the dense index of the t2->t1 link on the 2x2 mesh.
func (r *Result) occLink(t *testing.T) int {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	li, ok := mesh.LinkIndex(1, 0)
	if !ok {
		t.Fatal("no t2->t1 link")
	}
	return li
}

func TestUnboundedEqualsVeryDeepBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mesh, _ := topology.NewMesh(3, 3)
	for trial := 0; trial < 25; trial++ {
		nc := 3 + rng.Intn(6)
		g := randomValidCDCG(rng, nc, 30)
		mp, _ := mapping.Random(rng, nc, 9)

		cfgU := noc.Default()
		simU, err := NewSimulator(mesh, cfgU, g)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := simU.Run(mp)
		if err != nil {
			t.Fatal(err)
		}

		cfgB := noc.Default()
		cfgB.Buffers = noc.BuffersBounded
		cfgB.BufferFlits = 1 << 40 // effectively infinite
		simB, err := NewSimulator(mesh, cfgB, g)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := simB.Run(mp)
		if err != nil {
			t.Fatal(err)
		}
		if ru.ExecCycles != rb.ExecCycles || ru.TotalContention != rb.TotalContention {
			t.Fatalf("trial %d: unbounded %d/%d != deep bounded %d/%d",
				trial, ru.ExecCycles, ru.TotalContention, rb.ExecCycles, rb.TotalContention)
		}
	}
}

// Shrinking buffers can only lengthen resource occupancy, which can only
// delay later packets; texec is monotonically non-increasing in buffer
// depth ON THE SAME greedy schedule order. Because extensions can also
// reorder the schedule, we assert the weaker, always-true invariant:
// bounded-buffer texec is never below the dependence lower bound, and a
// zero-depth buffer produces at least as much total occupancy as a deep
// one.
func TestBoundedBuffersSane(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mesh, _ := topology.NewMesh(3, 3)
	for trial := 0; trial < 20; trial++ {
		nc := 3 + rng.Intn(6)
		g := randomValidCDCG(rng, nc, 30)
		mp, _ := mapping.Random(rng, nc, 9)
		lb, err := g.ComputeLowerBound()
		if err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int64{1, 4, 64} {
			cfg := noc.Default()
			cfg.Buffers = noc.BuffersBounded
			cfg.BufferFlits = depth
			sim, err := NewSimulator(mesh, cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(mp)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecCycles < lb {
				t.Fatalf("trial %d depth %d: texec %d below lower bound %d",
					trial, depth, res.ExecCycles, lb)
			}
			for i, ps := range res.Packets {
				min := cfg.UncontendedDelay(ps.K, ps.Flits)
				if ps.Delivered-ps.Start < min {
					t.Fatalf("trial %d depth %d packet %d faster than physics", trial, depth, i)
				}
			}
		}
	}
}
