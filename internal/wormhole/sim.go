package wormhole

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// ResourceKind classifies the NoC resources tracked by the simulator.
type ResourceKind int

// Resource kinds.
//
// Routers are crossbars: packets only contend when they request the same
// OUTPUT port. (The paper's Figure 3(a) shows A→B and B→F overlapping in
// router τ1 — different outputs — while A→F stalls behind B→F, which holds
// the same τ1→τ3 output.) KindRouterPort is therefore the exclusive
// resource: index = tile*NumPorts + direction, with direction 0..5 the
// topology directions (E, W, S, N plus the vertical Down/Up of 3-D grids)
// and 6 the local (core) port. KindRouter is the display view of a
// router: the union of its ports' traffic, each span stretched back to
// the packet's arrival (time spent waiting in the input buffer included),
// exactly like the paper's router annotations; those spans may overlap.
//
// CoreOut is the link from an IP core into its local router; CoreIn the
// link from a router down to its core. They are distinct full-duplex
// resources: Figure 3 shows a core's outgoing and incoming packets
// overlapping in time.
const (
	KindRouter ResourceKind = iota
	KindRouterPort
	KindLink
	KindCoreOut
	KindCoreIn
)

// NumPorts is the number of output ports per router:
// E, W, S, N, Down, Up, Local. 2-D routers simply never book the two
// vertical ports, so the port-index layout is uniform across 2-D and 3-D
// grids.
const NumPorts = 7

// LocalPort is the output-port index of the router→core direction.
const LocalPort = 6

func (k ResourceKind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindRouterPort:
		return "router-port"
	case KindLink:
		return "link"
	case KindCoreOut:
		return "core-out"
	case KindCoreIn:
		return "core-in"
	}
	return "?"
}

// PacketSchedule is the simulated timeline of one CDCG packet.
type PacketSchedule struct {
	ID model.PacketID
	// Ready is the cycle at which every dependence was satisfied (0 for
	// packets that only depend on Start).
	Ready int64
	// Start is Ready + the packet's computation time: the cycle the first
	// flit enters the source core's output link.
	Start int64
	// Delivered is the cycle the last flit reaches the destination core.
	Delivered int64
	// Contention is the total stall time in cycles spent waiting for busy
	// output ports (and, degenerately, links) along the route.
	Contention int64
	// K is the number of routers traversed.
	K int
	// Flits is the packet length in flits.
	Flits int64
}

// ComputeDelay returns Start-Ready (the paper's "computation delay").
func (p PacketSchedule) ComputeDelay() int64 { return p.Start - p.Ready }

// Result is the outcome of simulating one CDCG on one mapping.
type Result struct {
	// ExecCycles is texec: the cycle the last packet is delivered.
	ExecCycles int64
	// Packets holds one schedule per CDCG packet, indexed by PacketID.
	Packets []PacketSchedule
	// RouterBits[t] is the total bit volume that traversed the router of
	// tile t (feeds the ERbit term of the energy model).
	RouterBits []int64
	// LinkBits[l] is the total bit volume that traversed inter-tile link
	// l (dense link index; feeds the ELbit term).
	LinkBits []int64
	// CoreBits is the total bit volume over core↔router links (2 per
	// packet; feeds the optional ECbit term).
	CoreBits int64
	// TSVBits is the subset of the LinkBits total that crossed vertical
	// (TSV) links — always zero on depth-1 grids. It feeds the ETSVbit
	// term of the 3-D energy model.
	TSVBits int64
	// TotalContention is the sum of all packet contention delays.
	TotalContention int64

	occ *occStore // nil unless the run recorded occupancies
}

// occStore holds per-resource occupancy lists for rendering/analysis runs.
type occStore struct {
	routerSpans []busyList // display spans incl. buffer wait; may overlap
	ports       []busyList
	links       []busyList
	coreOut     []busyList
	coreIn      []busyList
}

// Occupancies returns the recorded busy intervals of a resource, sorted by
// start time, or nil if the run did not record them (RecordOccupancy was
// false) or the resource index is out of range. For KindRouter the
// intervals include input-buffer waiting and may overlap; all other kinds
// are exclusive and never overlap.
func (r *Result) Occupancies(kind ResourceKind, index int) []Occupancy {
	if r.occ == nil {
		return nil
	}
	var ls []busyList
	switch kind {
	case KindRouter:
		ls = r.occ.routerSpans
	case KindRouterPort:
		ls = r.occ.ports
	case KindLink:
		ls = r.occ.links
	case KindCoreOut:
		ls = r.occ.coreOut
	case KindCoreIn:
		ls = r.occ.coreIn
	}
	if index < 0 || index >= len(ls) {
		return nil
	}
	return ls[index].snapshot()
}

// Simulator evaluates mappings of one CDCG on one NoC. It is reusable: Run
// may be called many times with different mappings (the annealer's hot
// path); scratch state is recycled between runs. A Simulator is not safe
// for concurrent use; create one per goroutine.
type Simulator struct {
	Mesh *topology.Mesh
	Cfg  noc.Config
	G    *model.CDCG

	// RecordOccupancy keeps the per-resource busy lists on the Result for
	// rendering (Figure 3/4/5 style output). Leave false in search loops.
	RecordOccupancy bool

	dg *graph.Digraph
	// vertLink[li] marks vertical (TSV) links; nil on depth-1 grids so
	// the 2-D hot loop pays one nil check, nothing more.
	vertLink    []bool
	ports       []busyList
	links       []busyList
	coreOut     []busyList
	coreIn      []busyList
	routerSpans []busyList // only filled when RecordOccupancy
	indeg       []int
	ready       []int64
	routes      [][]topology.TileID // dense [src*n+dst] route cache
	heap        pktHeap
	flits       []int64
	hops        []hopPlan
	initOnce    bool
}

// hopPlan is one resource traversal of the packet currently being routed:
// computed during the plan pass, booked during the commit pass.
type hopPlan struct {
	list   *busyList
	t      int64 // acquisition time
	stall  int64 // t - arrival (only >0 on arbitrated resources)
	hold   int64 // busy through [t, t+hold]
	rate   int64 // per-flit cycles of the hop (tl, or tlv on a TSV link)
	isPort bool  // router output port (where input buffering happens)
}

// plan computes the acquisition time of one hop. With unbounded buffers
// (the default) the hop is booked immediately — occupancies never change
// after the fact, so the extra plan/commit pass would be wasted work on
// the annealer's hot path. With bounded buffers the hop is appended to
// the plan and booked by the commit pass after backpressure extensions.
// Unarbitrated resources acquire at arrival regardless of existing
// bookings.
func (s *Simulator) plan(list *busyList, arrival, hold, rate int64, arbitrated, isPort bool, pkt model.PacketID) int64 {
	if s.Cfg.Buffers != noc.BuffersBounded {
		if arbitrated {
			return list.acquire(arrival, hold, pkt)
		}
		list.record(arrival, hold, pkt)
		return arrival
	}
	t := arrival
	if arbitrated {
		t = list.earliestFree(arrival, hold)
	}
	s.hops = append(s.hops, hopPlan{list: list, t: t, stall: t - arrival, hold: hold, rate: rate, isPort: isPort})
	return t
}

// applyBackpressure models bounded router input buffers: when a packet
// waits S cycles at an output port, up to BufferFlits of its flits are
// absorbed by the input buffer; any excess occupies the hop immediately
// upstream (the feeding link — and transitively the port feeding that
// link) for the overflow duration. This is a one-packet-deep analytic
// approximation of wormhole backpressure: extended occupancies delay
// later packets via earliest-fit, but intervals already booked by earlier
// packets are not re-planned (an exact treatment needs flit-level
// simulation; see DESIGN.md). With unbounded buffers it is a no-op.
func (s *Simulator) applyBackpressure(tl int64) {
	if s.Cfg.Buffers != noc.BuffersBounded {
		return
	}
	for i := range s.hops {
		hp := &s.hops[i]
		if !hp.isPort {
			continue
		}
		// The buffer fills at the rate flits arrive over the feeding hop
		// (the upstream link, or tl off the source core), so a buffer
		// downstream of a slow TSV link absorbs proportionally more stall.
		feedRate := tl
		if i > 0 && !s.hops[i-1].isPort {
			feedRate = s.hops[i-1].rate
		}
		capCycles := s.Cfg.BufferFlits * feedRate
		if hp.stall <= capCycles {
			continue
		}
		overflow := hp.stall - capCycles
		// Extend the feeding link (hop i-1) and, if present, the port
		// driving that link (hop i-2).
		for back := 1; back <= 2 && i-back >= 0; back++ {
			s.hops[i-back].hold += overflow
		}
	}
}

// NewSimulator validates the inputs and prepares a reusable simulator.
func NewSimulator(mesh *topology.Mesh, cfg noc.Config, g *model.CDCG) (*Simulator, error) {
	if mesh == nil {
		return nil, errors.New("wormhole: nil mesh")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumCores() > mesh.NumTiles() {
		return nil, fmt.Errorf("wormhole: %d cores exceed %d tiles", g.NumCores(), mesh.NumTiles())
	}
	dg, err := g.DepGraph()
	if err != nil {
		return nil, err
	}
	s := &Simulator{Mesh: mesh, Cfg: cfg, G: g, dg: dg}
	n := mesh.NumTiles()
	if mesh.D() > 1 {
		s.vertLink = make([]bool, mesh.NumLinks())
		for i := range s.vertLink {
			s.vertLink[i] = mesh.LinkVertical(i)
		}
	}
	s.ports = make([]busyList, n*NumPorts)
	s.links = make([]busyList, mesh.NumLinks())
	s.coreOut = make([]busyList, n)
	s.coreIn = make([]busyList, n)
	s.routerSpans = make([]busyList, n)
	s.indeg = make([]int, g.NumPackets())
	s.ready = make([]int64, g.NumPackets())
	s.routes = make([][]topology.TileID, n*n)
	s.flits = make([]int64, g.NumPackets())
	for i, p := range g.Packets {
		s.flits[i] = cfg.Flits(p.Bits)
	}
	s.initOnce = true
	return s, nil
}

// route returns the (cached) deterministic route between two tiles.
func (s *Simulator) route(src, dst topology.TileID) []topology.TileID {
	idx := int(src)*s.Mesh.NumTiles() + int(dst)
	if r := s.routes[idx]; r != nil {
		return r
	}
	r, err := s.Mesh.Route(s.Cfg.Routing, src, dst)
	if err != nil {
		// Unreachable: endpoints are validated tiles of the same mesh.
		panic(err)
	}
	s.routes[idx] = r.Tiles
	return r.Tiles
}

// portIndex returns the dense output-port index for leaving tile `from`
// towards adjacent tile `to`, or the local port when to == from.
func (s *Simulator) portIndex(from, to topology.TileID) (int, error) {
	if from == to {
		return int(from)*NumPorts + LocalPort, nil
	}
	for d := topology.East; d <= topology.Up; d++ {
		if nt, ok := s.Mesh.Neighbor(from, d); ok && nt == to {
			return int(from)*NumPorts + int(d), nil
		}
	}
	return 0, fmt.Errorf("wormhole: tiles %d and %d are not adjacent", from, to)
}

// Run simulates the CDCG under the given mapping and returns the schedule.
func (s *Simulator) Run(mp mapping.Mapping) (*Result, error) {
	if !s.initOnce {
		return nil, errors.New("wormhole: use NewSimulator")
	}
	if len(mp) != s.G.NumCores() {
		return nil, fmt.Errorf("wormhole: mapping covers %d cores, CDCG has %d", len(mp), s.G.NumCores())
	}
	if err := mp.Validate(s.Mesh.NumTiles()); err != nil {
		return nil, err
	}

	np := s.G.NumPackets()
	res := &Result{
		Packets:    make([]PacketSchedule, np),
		RouterBits: make([]int64, s.Mesh.NumTiles()),
		LinkBits:   make([]int64, len(s.links)),
	}
	for i := range s.ports {
		s.ports[i].reset()
	}
	for i := range s.links {
		s.links[i].reset()
	}
	for i := range s.coreOut {
		s.coreOut[i].reset()
		s.coreIn[i].reset()
		s.routerSpans[i].reset()
	}
	s.heap.reset()
	for p := 0; p < np; p++ {
		s.indeg[p] = s.dg.InDegree(p)
		s.ready[p] = 0
		if s.indeg[p] == 0 {
			s.heap.push(pktKey{start: s.G.Packets[p].Compute, id: model.PacketID(p)})
		}
	}

	tr, tl := s.Cfg.RoutingCycles, s.Cfg.LinkCycles
	tlv := s.Cfg.TSVCycles() // per-flit vertical (TSV) hop time; unused on depth-1 grids
	scheduled := 0
	for s.heap.len() > 0 {
		k := s.heap.pop()
		p := int(k.id)
		pkt := &s.G.Packets[p]
		nFlits := s.flits[p]
		srcTile, dstTile := mp[pkt.Src], mp[pkt.Dst]
		tiles := s.route(srcTile, dstTile)

		linkHold := nFlits * tl
		portHold := tr + (nFlits-1)*tl
		// Vertical hops stream flits at the TSV rate: both the link
		// occupancy and the output port feeding it scale with tlv.
		vLinkHold := nFlits * tlv
		vPortHold := tr + (nFlits-1)*tlv

		// Plan pass: walk the route head-first, computing acquisition
		// times without booking anything (the hops of one packet touch
		// distinct resources, so peek-then-book is exact).
		s.hops = s.hops[:0]
		var contention int64
		h := k.start // header enters the source core's output link

		// Source core -> local router link. Core links are timed but not
		// arbitrated under the paper's CRG semantics (ArbitrateLocal
		// false); see noc.Config.ArbitrateLocal.
		t := s.plan(&s.coreOut[srcTile], h, linkHold, tl, s.Cfg.ArbitrateLocal, false, k.id)
		contention += t - h
		h = t + tl

		// Routers (output-port arbitration) and the links they feed.
		var delivered int64
		for i, tile := range tiles {
			arrival := h
			next := tile // == tile signals the local (core) port
			if i+1 < len(tiles) {
				next = tiles[i+1]
			}
			pi, err := s.portIndex(tile, next)
			if err != nil {
				return nil, err
			}
			local := next == tile
			// Resolve the outgoing link (and whether it is a TSV) before
			// booking the port: a port feeding a vertical link streams its
			// flits at the TSV rate, so its hold time follows the link's.
			li, vert := -1, false
			pHold := portHold
			if !local {
				var ok bool
				li, ok = s.Mesh.LinkIndex(tile, next)
				if !ok {
					return nil, fmt.Errorf("wormhole: route step %d->%d is not a link", tile, next)
				}
				if s.vertLink != nil && s.vertLink[li] {
					vert = true
					pHold = vPortHold
				}
			}
			// Paper-faithful: the local output port is timed but not
			// arbitrated (Figure 3(b) shows overlapping deliveries).
			pRate := tl
			if vert {
				pRate = tlv
			}
			t = s.plan(&s.ports[pi], h, pHold, pRate, !local || s.Cfg.ArbitrateLocal, true, k.id)
			contention += t - h
			portEnd := t + pHold
			h = t + tr
			res.RouterBits[tile] += pkt.Bits
			if s.RecordOccupancy {
				// Display span: from arrival (incl. buffer wait) to the
				// last flit leaving the router — the paper's annotation.
				s.routerSpans[tile].iv = append(s.routerSpans[tile].iv,
					Occupancy{Packet: k.id, Start: arrival, End: portEnd})
			}
			if !local {
				lHold, adv := linkHold, tl
				if vert {
					lHold, adv = vLinkHold, tlv
				}
				t = s.plan(&s.links[li], h, lHold, adv, true, false, k.id)
				contention += t - h
				h = t + adv
				res.LinkBits[li] += pkt.Bits
				if vert {
					res.TSVBits += pkt.Bits
				}
			} else {
				// Local router -> destination core link; delivery is when
				// the last flit crosses it.
				t = s.plan(&s.coreIn[dstTile], h, linkHold, tl, s.Cfg.ArbitrateLocal, false, k.id)
				contention += t - h
				delivered = t + linkHold
			}
		}
		s.applyBackpressure(tl)
		// Commit pass: book every hop (including any backpressure
		// extensions) so later packets see the occupancy.
		for i := range s.hops {
			hp := &s.hops[i]
			hp.list.record(hp.t, hp.hold, k.id)
		}
		res.CoreBits += 2 * pkt.Bits

		res.Packets[p] = PacketSchedule{
			ID:         k.id,
			Ready:      k.start - pkt.Compute,
			Start:      k.start,
			Delivered:  delivered,
			Contention: contention,
			K:          len(tiles),
			Flits:      nFlits,
		}
		res.TotalContention += contention
		if delivered > res.ExecCycles {
			res.ExecCycles = delivered
		}
		scheduled++

		for _, succ := range s.dg.Succ(p) {
			if delivered > s.ready[succ] {
				s.ready[succ] = delivered
			}
			s.indeg[succ]--
			if s.indeg[succ] == 0 {
				s.heap.push(pktKey{
					start: s.ready[succ] + s.G.Packets[succ].Compute,
					id:    model.PacketID(succ),
				})
			}
		}
	}
	if scheduled != np {
		return nil, errors.New("wormhole: dependence deadlock (cyclic CDCG)")
	}

	if s.RecordOccupancy {
		for i := range s.routerSpans {
			sortOcc(s.routerSpans[i].iv)
		}
		res.occ = &occStore{
			routerSpans: snapshotAll(s.routerSpans),
			ports:       snapshotAll(s.ports),
			links:       snapshotAll(s.links),
			coreOut:     snapshotAll(s.coreOut),
			coreIn:      snapshotAll(s.coreIn),
		}
	}
	return res, nil
}

// sortOcc sorts occupancies by (Start, Packet) via insertion sort; display
// lists are short.
func sortOcc(a []Occupancy) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0; j-- {
			if a[j].Start < a[j-1].Start ||
				(a[j].Start == a[j-1].Start && a[j].Packet < a[j-1].Packet) {
				a[j], a[j-1] = a[j-1], a[j]
			} else {
				break
			}
		}
	}
}

func snapshotAll(ls []busyList) []busyList {
	out := make([]busyList, len(ls))
	for i := range ls {
		out[i] = busyList{iv: ls[i].snapshot()}
	}
	return out
}

// pktKey orders packets by transmission start time, tie-broken by ID so
// runs are fully deterministic.
type pktKey struct {
	start int64
	id    model.PacketID
}

func (a pktKey) less(b pktKey) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.id < b.id
}

// pktHeap is a binary min-heap of pktKey.
type pktHeap struct{ a []pktKey }

func (h *pktHeap) reset()   { h.a = h.a[:0] }
func (h *pktHeap) len() int { return len(h.a) }

func (h *pktHeap) push(k pktKey) {
	h.a = append(h.a, k)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.a[i].less(h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *pktHeap) pop() pktKey {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.a[l].less(h.a[m]) {
			m = l
		}
		if r < len(h.a) && h.a[r].less(h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
