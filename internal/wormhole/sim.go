package wormhole

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
)

// ErrUnreachable reports that a simulated mapping routes at least one
// packet between tiles that the simulator's fault set partitions (see
// NewSimulatorFaults). It is a static sentinel so the allocation-free run
// path can report it without allocating; resilience scoring treats it as
// a documented penalty, not a hard failure. errors.Is(err,
// topology.ErrUnreachable) also matches it.
var ErrUnreachable = fmt.Errorf("wormhole: packet route crosses a faulted partition: %w", topology.ErrUnreachable)

// ResourceKind classifies the NoC resources tracked by the simulator.
type ResourceKind int

// Resource kinds.
//
// Routers are crossbars: packets only contend when they request the same
// OUTPUT port. (The paper's Figure 3(a) shows A→B and B→F overlapping in
// router τ1 — different outputs — while A→F stalls behind B→F, which holds
// the same τ1→τ3 output.) KindRouterPort is therefore the exclusive
// resource: index = tile*NumPorts + direction, with direction 0..5 the
// topology directions (E, W, S, N plus the vertical Down/Up of 3-D grids)
// and 6 the local (core) port. KindRouter is the display view of a
// router: the union of its ports' traffic, each span stretched back to
// the packet's arrival (time spent waiting in the input buffer included),
// exactly like the paper's router annotations; those spans may overlap.
//
// CoreOut is the link from an IP core into its local router; CoreIn the
// link from a router down to its core. They are distinct full-duplex
// resources: Figure 3 shows a core's outgoing and incoming packets
// overlapping in time.
const (
	KindRouter ResourceKind = iota
	KindRouterPort
	KindLink
	KindCoreOut
	KindCoreIn
)

// NumPorts is the number of output ports per router:
// E, W, S, N, Down, Up, Local. 2-D routers simply never book the two
// vertical ports, so the port-index layout is uniform across 2-D and 3-D
// grids.
const NumPorts = 7

// LocalPort is the output-port index of the router→core direction.
const LocalPort = 6

func (k ResourceKind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindRouterPort:
		return "router-port"
	case KindLink:
		return "link"
	case KindCoreOut:
		return "core-out"
	case KindCoreIn:
		return "core-in"
	}
	return "?"
}

// PacketSchedule is the simulated timeline of one CDCG packet.
type PacketSchedule struct {
	ID model.PacketID
	// Ready is the cycle at which every dependence was satisfied (0 for
	// packets that only depend on Start).
	Ready int64
	// Start is Ready + the packet's computation time: the cycle the first
	// flit enters the source core's output link.
	Start int64
	// Delivered is the cycle the last flit reaches the destination core.
	Delivered int64
	// Contention is the total stall time in cycles spent waiting for busy
	// output ports (and, degenerately, links) along the route.
	Contention int64
	// K is the number of routers traversed.
	K int
	// Flits is the packet length in flits.
	Flits int64
}

// ComputeDelay returns Start-Ready (the paper's "computation delay").
func (p PacketSchedule) ComputeDelay() int64 { return p.Start - p.Ready }

// Result is the outcome of simulating one CDCG on one mapping.
type Result struct {
	// ExecCycles is texec: the cycle the last packet is delivered.
	ExecCycles int64
	// Packets holds one schedule per CDCG packet, indexed by PacketID.
	Packets []PacketSchedule
	// RouterBits[t] is the total bit volume that traversed the router of
	// tile t (feeds the ERbit term of the energy model).
	RouterBits []int64
	// LinkBits[l] is the total bit volume that traversed inter-tile link
	// l (dense link index; feeds the ELbit term).
	LinkBits []int64
	// CoreBits is the total bit volume over core↔router links (2 per
	// packet; feeds the optional ECbit term).
	CoreBits int64
	// TSVBits is the subset of the LinkBits total that crossed vertical
	// (TSV) links — always zero on depth-1 grids. It feeds the ETSVbit
	// term of the 3-D energy model.
	TSVBits int64
	// TotalContention is the sum of all packet contention delays.
	TotalContention int64

	occ *occStore // nil unless the run recorded occupancies
}

// occStore holds per-resource occupancy lists for rendering/analysis runs.
type occStore struct {
	routerSpans []busyList // display spans incl. buffer wait; may overlap
	ports       []busyList
	links       []busyList
	coreOut     []busyList
	coreIn      []busyList
}

// Occupancies returns the recorded busy intervals of a resource, sorted by
// start time, or nil if the run did not record them (RecordOccupancy was
// false) or the resource index is out of range. For KindRouter the
// intervals include input-buffer waiting and may overlap; all other kinds
// are exclusive and never overlap.
func (r *Result) Occupancies(kind ResourceKind, index int) []Occupancy {
	if r.occ == nil {
		return nil
	}
	var ls []busyList
	switch kind {
	case KindRouter:
		ls = r.occ.routerSpans
	case KindRouterPort:
		ls = r.occ.ports
	case KindLink:
		ls = r.occ.links
	case KindCoreOut:
		ls = r.occ.coreOut
	case KindCoreIn:
		ls = r.occ.coreIn
	}
	if index < 0 || index >= len(ls) {
		return nil
	}
	return ls[index].snapshot()
}

// Simulator evaluates mappings of one CDCG on one NoC. Everything bound
// at NewSimulator time — the full route table, the dense
// (tile, nextTile) → output-port and → link tables, flit counts and the
// dependence graph — is immutable afterwards, so one Simulator is safe to
// share across goroutines as long as each goroutine runs with its own
// Scratch (NewScratch + RunScratch): that is how the parallel search
// engines evaluate the CDCM objective concurrently without re-parsing or
// locking.
//
// Run is the one-goroutine convenience path: it lazily keeps a private
// internal scratch, so a Simulator used via Run is NOT safe for
// concurrent use.
type Simulator struct {
	Mesh *topology.Mesh
	Cfg  noc.Config
	G    *model.CDCG

	// RecordOccupancy keeps the per-resource busy lists on Results
	// returned by Run, for rendering (Figure 3/4/5 style output). Leave
	// false in search loops — recording snapshots every resource's full
	// occupancy history, which only the trace/Gantt consumers need.
	// RunScratch ignores it; set Scratch.RecordOccupancy instead.
	RecordOccupancy bool

	dg       *graph.Digraph
	numTiles int
	// vertLink[li] marks vertical (TSV) links; nil on depth-1 grids so
	// the 2-D hot loop pays one nil check, nothing more.
	vertLink []bool
	flits    []int64
	// baseIndeg and initHeap are the dependence state every run starts
	// from: per-packet in-degrees and the heap of source packets (keyed
	// by their compute time). Precomputing them turns per-run scheduling
	// setup into two copies.
	baseIndeg []int
	initHeap  []pktKey

	// The full route table, precomputed at construction: the route from
	// src to dst is routeData[routeOff[src*n+dst]:routeOff[src*n+dst+1]].
	// Flattening into one backing array keeps the table cache-friendly
	// and the lookup branch-free — no lazy fill, so concurrent RunScratch
	// lanes never write here. Memory is O(n²·avg-route-length), the same
	// order as the lazy per-pair cache it replaces once a search has
	// touched every pair (which annealing does). Construction costs one
	// Route call per tile pair (~6.5 ms on a 12x10 grid) — noise against
	// any search, noticeable only when a Simulator is built to price a
	// single mapping.
	routeOff  []int32
	routeData []topology.TileID
	// faults is the fault set the route table was built against (nil for
	// an intact simulator — the NewSimulator path, which is bit-identical
	// to the pre-fault behaviour). unreach[src*n+dst] marks tile pairs the
	// fault set partitions; it is nil when every pair is reachable, so the
	// intact hot loop pays a single nil check.
	faults  *topology.FaultSet
	unreach []bool
	// portOf[from*n+to] is the dense output-port index for leaving tile
	// `from` towards adjacent tile `to` (diagonal entries hold the local
	// port); linkOf[from*n+to] the dense link index. -1 where the tiles
	// are not adjacent. They replace the per-hop linear neighbor scans of
	// Mesh.Neighbor/LinkIndex on the hot path.
	portOf []int32
	linkOf []int32

	scratch  *Scratch // lazily built by Run; nil until then
	initOnce bool
}

// Scratch is the mutable per-lane state of one simulation: busy lists,
// the event heap, dependence counters and the reusable Result backing
// arrays. Results returned by RunScratch point into the scratch and are
// valid only until its next RunScratch — callers that keep a Result
// across runs must copy what they need (or use Run, which returns an
// independent Result).
//
// A Scratch belongs to the Simulator that created it and is not safe for
// concurrent use; concurrency comes from running many scratches, one per
// goroutine, against the same shared Simulator.
type Scratch struct {
	// RecordOccupancy keeps the per-resource busy lists on Results
	// produced through this scratch (see Simulator.RecordOccupancy).
	// Leave false on search lanes: the snapshot allocates.
	RecordOccupancy bool

	sim *Simulator

	ports       []busyList
	links       []busyList
	coreOut     []busyList
	coreIn      []busyList
	routerSpans []busyList // only filled when RecordOccupancy
	indeg       []int
	ready       []int64
	heap        pktHeap
	hops        []hopPlan
	seen        []model.CoreID // mapping-validation buffer, reused per run

	res        Result
	packets    []PacketSchedule
	routerBits []int64
	linkBits   []int64
}

// hopPlan is one resource traversal of the packet currently being routed:
// computed during the plan pass, booked during the commit pass.
type hopPlan struct {
	list   *busyList
	t      int64 // acquisition time
	stall  int64 // t - arrival (only >0 on arbitrated resources)
	hold   int64 // busy through [t, t+hold]
	rate   int64 // per-flit cycles of the hop (tl, or tlv on a TSV link)
	isPort bool  // router output port (where input buffering happens)
}

// plan computes the acquisition time of one hop. With unbounded buffers
// (the default) the hop is booked immediately — occupancies never change
// after the fact, so the extra plan/commit pass would be wasted work on
// the annealer's hot path. With bounded buffers the hop is appended to
// the plan and booked by the commit pass after backpressure extensions.
// Unarbitrated resources acquire at arrival regardless of existing
// bookings.
//nocvet:noalloc
func (s *Simulator) plan(sc *Scratch, list *busyList, arrival, hold, rate int64, arbitrated, isPort bool, pkt model.PacketID) int64 {
	if s.Cfg.Buffers != noc.BuffersBounded {
		if arbitrated {
			return list.acquire(arrival, hold, pkt)
		}
		list.record(arrival, hold, pkt)
		return arrival
	}
	t := arrival
	if arbitrated {
		t = list.earliestFree(arrival, hold)
	}
	sc.hops = append(sc.hops, hopPlan{list: list, t: t, stall: t - arrival, hold: hold, rate: rate, isPort: isPort})
	return t
}

// applyBackpressure models bounded router input buffers: when a packet
// waits S cycles at an output port, up to BufferFlits of its flits are
// absorbed by the input buffer; any excess occupies the hop immediately
// upstream (the feeding link — and transitively the port feeding that
// link) for the overflow duration. This is a one-packet-deep analytic
// approximation of wormhole backpressure: extended occupancies delay
// later packets via earliest-fit, but intervals already booked by earlier
// packets are not re-planned (an exact treatment needs flit-level
// simulation; see DESIGN.md). With unbounded buffers it is a no-op.
//nocvet:noalloc
func (s *Simulator) applyBackpressure(sc *Scratch, tl int64) {
	if s.Cfg.Buffers != noc.BuffersBounded {
		return
	}
	for i := range sc.hops {
		hp := &sc.hops[i]
		if !hp.isPort {
			continue
		}
		// The buffer fills at the rate flits arrive over the feeding hop
		// (the upstream link, or tl off the source core), so a buffer
		// downstream of a slow TSV link absorbs proportionally more stall.
		feedRate := tl
		if i > 0 && !sc.hops[i-1].isPort {
			feedRate = sc.hops[i-1].rate
		}
		capCycles := s.Cfg.BufferFlits * feedRate
		if hp.stall <= capCycles {
			continue
		}
		overflow := hp.stall - capCycles
		// Extend the feeding link (hop i-1) and, if present, the port
		// driving that link (hop i-2).
		for back := 1; back <= 2 && i-back >= 0; back++ {
			sc.hops[i-back].hold += overflow
		}
	}
}

// NewSimulator validates the inputs and prepares a reusable simulator:
// every route of the grid and the dense port/link adjacency tables are
// computed here, once, so the run hot path is pure table lookups and the
// shared state never mutates again.
func NewSimulator(mesh *topology.Mesh, cfg noc.Config, g *model.CDCG) (*Simulator, error) {
	return NewSimulatorFaults(mesh, cfg, g, nil)
}

// NewSimulatorFaults is NewSimulator with an optional fault set: the
// route table is precomputed with Mesh.RouteFault, so detours around
// failed links/routers cost nothing at run time and Scratch lanes stay
// allocation-free. Tile pairs the fault set partitions are marked in an
// unreachable bitmap; simulating a mapping that routes a packet across a
// partition fails fast with ErrUnreachable (a static sentinel — the hot
// path allocates nothing to report it). A nil or empty fault set is
// bit-identical to NewSimulator.
func NewSimulatorFaults(mesh *topology.Mesh, cfg noc.Config, g *model.CDCG, fs *topology.FaultSet) (*Simulator, error) {
	if mesh == nil {
		return nil, errors.New("wormhole: nil mesh")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumCores() > mesh.NumTiles() {
		return nil, fmt.Errorf("wormhole: %d cores exceed %d tiles", g.NumCores(), mesh.NumTiles())
	}
	dg, err := g.DepGraph()
	if err != nil {
		return nil, err
	}
	s := &Simulator{Mesh: mesh, Cfg: cfg, G: g, dg: dg}
	n := mesh.NumTiles()
	s.numTiles = n
	if mesh.D() > 1 {
		s.vertLink = make([]bool, mesh.NumLinks())
		for i := range s.vertLink {
			s.vertLink[i] = mesh.LinkVertical(i)
		}
	}
	s.flits = make([]int64, g.NumPackets())
	for i, p := range g.Packets {
		s.flits[i] = cfg.Flits(p.Bits)
	}
	s.baseIndeg = make([]int, g.NumPackets())
	var srcHeap pktHeap
	for p := range g.Packets {
		s.baseIndeg[p] = dg.InDegree(p)
		if s.baseIndeg[p] == 0 {
			srcHeap.push(pktKey{start: g.Packets[p].Compute, id: model.PacketID(p)})
		}
	}
	s.initHeap = srcHeap.a

	// Dense adjacency tables. Directions are scanned in the East..Up
	// enumeration order and the first link between a tile pair wins,
	// mirroring the scan the lazy path used (on small tori two directions
	// can reach the same neighbor).
	s.portOf = make([]int32, n*n)
	s.linkOf = make([]int32, n*n)
	for i := range s.portOf {
		s.portOf[i] = -1
		s.linkOf[i] = -1
	}
	for t := 0; t < n; t++ {
		s.portOf[t*n+t] = int32(t*NumPorts + LocalPort)
		for d := topology.East; d <= topology.Up; d++ {
			nt, ok := mesh.Neighbor(topology.TileID(t), d)
			if !ok || s.linkOf[t*n+int(nt)] >= 0 {
				continue
			}
			li, ok := mesh.LinkIndex(topology.TileID(t), nt)
			if !ok {
				return nil, fmt.Errorf("wormhole: tiles %d and %d are not adjacent", t, nt)
			}
			s.portOf[t*n+int(nt)] = int32(t*NumPorts + int(d))
			s.linkOf[t*n+int(nt)] = int32(li)
		}
	}

	// Full route table, flattened. On the intact path route lengths are
	// K = MinHops+1, which sizes the backing array exactly before the
	// fill pass; fault-aware detours can be longer, so that total is only
	// a best-effort capacity hint there.
	s.routeOff = make([]int32, n*n+1)
	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += mesh.MinHops(topology.TileID(a), topology.TileID(b)) + 1
		}
	}
	s.routeData = make([]topology.TileID, 0, total)
	if fs.Empty() {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				r, err := mesh.Route(cfg.Routing, topology.TileID(a), topology.TileID(b))
				if err != nil {
					return nil, err
				}
				s.routeData = append(s.routeData, r.Tiles...)
				s.routeOff[a*n+b+1] = int32(len(s.routeData))
			}
		}
	} else {
		if fs.Mesh() != mesh {
			return nil, errors.New("wormhole: fault set belongs to a different mesh")
		}
		s.faults = fs
		s.unreach = make([]bool, n*n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				r, err := mesh.RouteFault(cfg.Routing, fs, topology.TileID(a), topology.TileID(b))
				switch {
				case errors.Is(err, topology.ErrUnreachable):
					s.unreach[a*n+b] = true
				case err != nil:
					return nil, err
				default:
					s.routeData = append(s.routeData, r.Tiles...)
				}
				s.routeOff[a*n+b+1] = int32(len(s.routeData))
			}
		}
	}
	s.initOnce = true
	return s, nil
}

// Faults returns the fault set the simulator's route table was built
// against, nil for an intact simulator.
func (s *Simulator) Faults() *topology.FaultSet { return s.faults }

// NewScratch allocates a fresh per-lane scratch sized for this simulator.
// Panics on a zero-value Simulator; construct with NewSimulator.
func (s *Simulator) NewScratch() *Scratch {
	if !s.initOnce {
		panic("wormhole: NewScratch on zero-value Simulator (use NewSimulator)")
	}
	n := s.numTiles
	np := s.G.NumPackets()
	return &Scratch{
		sim:         s,
		ports:       make([]busyList, n*NumPorts),
		links:       make([]busyList, s.Mesh.NumLinks()),
		coreOut:     make([]busyList, n),
		coreIn:      make([]busyList, n),
		routerSpans: make([]busyList, n),
		indeg:       make([]int, np),
		ready:       make([]int64, np),
		seen:        make([]model.CoreID, n),
		packets:     make([]PacketSchedule, np),
		routerBits:  make([]int64, n),
		linkBits:    make([]int64, s.Mesh.NumLinks()),
	}
}

// Run simulates the CDCG under the given mapping and returns the
// schedule as an independent Result (safe to keep across runs). It uses
// a lazily-created internal scratch, so Run is not safe for concurrent
// use — parallel callers use NewScratch with RunScratch or RunFresh.
func (s *Simulator) Run(mp mapping.Mapping) (*Result, error) {
	if !s.initOnce {
		return nil, errors.New("wormhole: use NewSimulator")
	}
	if s.scratch == nil {
		s.scratch = s.NewScratch()
	}
	return s.RunFresh(mp, s.scratch)
}

// RunFresh simulates with the caller's scratch like RunScratch but
// returns an independent Result with fresh backing arrays, safe to keep
// across later runs. It is the concurrency-safe form of Run: lanes that
// occasionally need a durable Result (rendering snapshots, winner
// reports) call it on their own scratch without touching the shared
// internal one. Occupancies are recorded when either the scratch's or
// the simulator's RecordOccupancy flag is set; flip those before
// spinning up concurrent lanes.
func (s *Simulator) RunFresh(mp mapping.Mapping, sc *Scratch) (*Result, error) {
	if !s.initOnce {
		return nil, errors.New("wormhole: use NewSimulator")
	}
	if sc == nil || sc.sim != s {
		return nil, errors.New("wormhole: scratch is not from this simulator's NewScratch")
	}
	res := &Result{
		Packets:    make([]PacketSchedule, s.G.NumPackets()),
		RouterBits: make([]int64, s.numTiles),
		LinkBits:   make([]int64, s.Mesh.NumLinks()),
	}
	if err := s.run(sc, res, mp, sc.RecordOccupancy || s.RecordOccupancy); err != nil {
		return nil, err
	}
	return res, nil
}

// RunScratch simulates the CDCG under the given mapping using the
// caller's scratch. It is the allocation-free hot path of the CDCM
// objective: in steady state (after the scratch's first few runs have
// grown its interval lists) a call performs no heap allocation. The
// returned Result is backed by the scratch and is only valid until the
// next RunScratch with the same scratch. Distinct scratches may run
// concurrently against one shared Simulator.
//nocvet:noalloc
func (s *Simulator) RunScratch(mp mapping.Mapping, sc *Scratch) (*Result, error) {
	if !s.initOnce {
		return nil, errors.New("wormhole: use NewSimulator")
	}
	if sc == nil || sc.sim != s {
		return nil, errors.New("wormhole: scratch is not from this simulator's NewScratch")
	}
	res := &sc.res
	res.Packets = sc.packets
	res.RouterBits = sc.routerBits
	res.LinkBits = sc.linkBits
	if err := s.run(sc, res, mp, sc.RecordOccupancy); err != nil {
		return nil, err
	}
	return res, nil
}

// run is the simulation core shared by Run and RunScratch: all mutable
// state lives in sc, all shared state on s is read-only, and the
// schedule is written into res (whose slices the caller sized).
//nocvet:noalloc
func (s *Simulator) run(sc *Scratch, res *Result, mp mapping.Mapping, record bool) error {
	if len(mp) != s.G.NumCores() {
		return fmt.Errorf("wormhole: mapping covers %d cores, CDCG has %d", len(mp), s.G.NumCores())
	}
	if err := mp.ValidateInto(s.numTiles, sc.seen); err != nil {
		return err
	}

	np := s.G.NumPackets()
	res.ExecCycles = 0
	res.CoreBits = 0
	res.TSVBits = 0
	res.TotalContention = 0
	res.occ = nil
	clear(res.RouterBits)
	clear(res.LinkBits)
	for i := range sc.ports {
		sc.ports[i].reset()
	}
	for i := range sc.links {
		sc.links[i].reset()
	}
	for i := range sc.coreOut {
		sc.coreOut[i].reset()
		sc.coreIn[i].reset()
	}
	if record {
		for i := range sc.routerSpans {
			sc.routerSpans[i].reset()
		}
	}
	copy(sc.indeg, s.baseIndeg)
	clear(sc.ready)
	sc.heap.a = append(sc.heap.a[:0], s.initHeap...)

	n := s.numTiles
	tr, tl := s.Cfg.RoutingCycles, s.Cfg.LinkCycles
	tlv := s.Cfg.TSVCycles() // per-flit vertical (TSV) hop time; unused on depth-1 grids
	arbLocal := s.Cfg.ArbitrateLocal
	scheduled := 0
	for sc.heap.len() > 0 {
		k := sc.heap.pop()
		p := int(k.id)
		pkt := &s.G.Packets[p]
		nFlits := s.flits[p]
		srcTile, dstTile := mp[pkt.Src], mp[pkt.Dst]
		ri := int(srcTile)*n + int(dstTile)
		if s.unreach != nil && s.unreach[ri] {
			// The mapping routes this packet across a faulted partition.
			// The sentinel is static so the noalloc hot path stays clean;
			// resilience scoring catches it and applies the documented
			// penalty instead of treating it as a failure.
			return ErrUnreachable
		}
		tiles := s.routeData[s.routeOff[ri]:s.routeOff[ri+1]]

		linkHold := nFlits * tl
		portHold := tr + (nFlits-1)*tl
		// Vertical hops stream flits at the TSV rate: both the link
		// occupancy and the output port feeding it scale with tlv.
		vLinkHold := nFlits * tlv
		vPortHold := tr + (nFlits-1)*tlv

		// Plan pass: walk the route head-first, computing acquisition
		// times without booking anything (the hops of one packet touch
		// distinct resources, so peek-then-book is exact).
		sc.hops = sc.hops[:0]
		var contention int64
		h := k.start // header enters the source core's output link

		// Source core -> local router link. Core links are timed but not
		// arbitrated under the paper's CRG semantics (ArbitrateLocal
		// false); see noc.Config.ArbitrateLocal.
		t := s.plan(sc, &sc.coreOut[srcTile], h, linkHold, tl, arbLocal, false, k.id)
		contention += t - h
		h = t + tl

		// Routers (output-port arbitration) and the links they feed.
		var delivered int64
		for i, tile := range tiles {
			arrival := h
			next := tile // == tile signals the local (core) port
			if i+1 < len(tiles) {
				next = tiles[i+1]
			}
			// Route steps are adjacent tiles of this mesh by
			// construction, so the table entries are always valid.
			pi := int(s.portOf[int(tile)*n+int(next)])
			local := next == tile
			// Resolve the outgoing link (and whether it is a TSV) before
			// booking the port: a port feeding a vertical link streams its
			// flits at the TSV rate, so its hold time follows the link's.
			li, vert := -1, false
			pHold := portHold
			if !local {
				li = int(s.linkOf[int(tile)*n+int(next)])
				if s.vertLink != nil && s.vertLink[li] {
					vert = true
					pHold = vPortHold
				}
			}
			// Paper-faithful: the local output port is timed but not
			// arbitrated (Figure 3(b) shows overlapping deliveries).
			pRate := tl
			if vert {
				pRate = tlv
			}
			t = s.plan(sc, &sc.ports[pi], h, pHold, pRate, !local || arbLocal, true, k.id)
			contention += t - h
			portEnd := t + pHold
			h = t + tr
			res.RouterBits[tile] += pkt.Bits
			if record {
				// Display span: from arrival (incl. buffer wait) to the
				// last flit leaving the router — the paper's annotation.
				sc.routerSpans[tile].iv = append(sc.routerSpans[tile].iv,
					Occupancy{Packet: k.id, Start: arrival, End: portEnd})
			}
			if !local {
				lHold, adv := linkHold, tl
				if vert {
					lHold, adv = vLinkHold, tlv
				}
				t = s.plan(sc, &sc.links[li], h, lHold, adv, true, false, k.id)
				contention += t - h
				h = t + adv
				res.LinkBits[li] += pkt.Bits
				if vert {
					res.TSVBits += pkt.Bits
				}
			} else {
				// Local router -> destination core link; delivery is when
				// the last flit crosses it.
				t = s.plan(sc, &sc.coreIn[dstTile], h, linkHold, tl, arbLocal, false, k.id)
				contention += t - h
				delivered = t + linkHold
			}
		}
		s.applyBackpressure(sc, tl)
		// Commit pass: book every hop (including any backpressure
		// extensions) so later packets see the occupancy.
		for i := range sc.hops {
			hp := &sc.hops[i]
			hp.list.record(hp.t, hp.hold, k.id)
		}
		res.CoreBits += 2 * pkt.Bits

		res.Packets[p] = PacketSchedule{
			ID:         k.id,
			Ready:      k.start - pkt.Compute,
			Start:      k.start,
			Delivered:  delivered,
			Contention: contention,
			K:          len(tiles),
			Flits:      nFlits,
		}
		res.TotalContention += contention
		if delivered > res.ExecCycles {
			res.ExecCycles = delivered
		}
		scheduled++

		for _, succ := range s.dg.Succ(p) {
			if delivered > sc.ready[succ] {
				sc.ready[succ] = delivered
			}
			sc.indeg[succ]--
			if sc.indeg[succ] == 0 {
				sc.heap.push(pktKey{
					start: sc.ready[succ] + s.G.Packets[succ].Compute,
					id:    model.PacketID(succ),
				})
			}
		}
	}
	if scheduled != np {
		return errors.New("wormhole: dependence deadlock (cyclic CDCG)")
	}

	if record {
		for i := range sc.routerSpans {
			sortOcc(sc.routerSpans[i].iv)
		}
		//nocvet:ignore trace recording is the diagnostic path (Run with record), never the annealer steady state
		res.occ = &occStore{
			routerSpans: snapshotAll(sc.routerSpans),
			ports:       snapshotAll(sc.ports),
			links:       snapshotAll(sc.links),
			coreOut:     snapshotAll(sc.coreOut),
			coreIn:      snapshotAll(sc.coreIn),
		}
	}
	return nil
}

// sortOcc sorts occupancies by (Start, Packet) via insertion sort; display
// lists are short.
//nocvet:noalloc
func sortOcc(a []Occupancy) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0; j-- {
			if a[j].Start < a[j-1].Start ||
				(a[j].Start == a[j-1].Start && a[j].Packet < a[j-1].Packet) {
				a[j], a[j-1] = a[j-1], a[j]
			} else {
				break
			}
		}
	}
}

func snapshotAll(ls []busyList) []busyList {
	out := make([]busyList, len(ls))
	for i := range ls {
		out[i] = busyList{iv: ls[i].snapshot()}
	}
	return out
}

// pktKey orders packets by transmission start time, tie-broken by ID so
// runs are fully deterministic.
type pktKey struct {
	start int64
	id    model.PacketID
}

//nocvet:noalloc
func (a pktKey) less(b pktKey) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.id < b.id
}

// pktHeap is a binary min-heap of pktKey.
type pktHeap struct{ a []pktKey }

//nocvet:noalloc
func (h *pktHeap) reset()   { h.a = h.a[:0] }
//nocvet:noalloc
func (h *pktHeap) len() int { return len(h.a) }

//nocvet:noalloc
func (h *pktHeap) push(k pktKey) {
	h.a = append(h.a, k)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.a[i].less(h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

//nocvet:noalloc
func (h *pktHeap) pop() pktKey {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.a[l].less(h.a[m]) {
			m = l
		}
		if r < len(h.a) && h.a[r].less(h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
