// Package trace renders simulation results as text: the timing diagrams
// of the paper's Figures 4 and 5 (per-packet Gantt charts distinguishing
// computation, routing, contention and payload time), the annotated-CRG
// views of Figures 2 and 3 (per-resource energy and occupancy lists), and
// plain column tables for the experiment reports.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

// Gantt renders the per-packet timing diagram of a simulation — the
// paper's Figure 4/5. Each row shows one packet as
//
//	computation '.' | routing 'r' | contention 'x' | payload '='
//
// scaled to at most width columns. Segment order approximates the paper's
// legend; contention is drawn between routing and payload even though it
// physically interleaves with routing hop by hop.
func Gantt(g *model.CDCG, cfg noc.Config, res *wormhole.Result, width int) string {
	if width < 40 {
		width = 40
	}
	span := res.ExecCycles
	if span <= 0 {
		span = 1
	}
	cols := width - 24 // label gutter
	scale := float64(cols) / float64(span+1)

	var b strings.Builder
	end := fmt.Sprintf("%d", span)
	fmt.Fprintf(&b, "%-22s|%-*s%s\n", "time (cycles)", cols-len(end), "0", end)
	fmt.Fprintf(&b, "%-22s+%s\n", "packet", strings.Repeat("-", cols))
	for i, ps := range res.Packets {
		pkt := g.Packets[i]
		label := fmt.Sprintf("%d(%s>%s):%d", pkt.Bits, g.CoreName(pkt.Src), g.CoreName(pkt.Dst), pkt.Compute)
		if len(label) > 22 {
			label = label[:22]
		}
		row := make([]byte, cols)
		for j := range row {
			row[j] = ' '
		}
		mark := func(from, to int64, ch byte) {
			if to < from {
				return
			}
			a := int(float64(from) * scale)
			z := int(float64(to) * scale)
			if z >= cols {
				z = cols - 1
			}
			for j := a; j <= z && j >= 0; j++ {
				row[j] = ch
			}
		}
		route := cfg.RoutingDelay(ps.K)
		payload := cfg.PayloadDelay(ps.Flits)
		mark(ps.Ready, ps.Start, '.')
		mark(ps.Start, ps.Start+route, 'r')
		mark(ps.Start+route, ps.Start+route+ps.Contention, 'x')
		mark(ps.Start+route+ps.Contention, ps.Start+route+ps.Contention+payload, '=')
		fmt.Fprintf(&b, "%-22s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%-22s|legend: .=computation r=routing x=contention ==payload\n", "")
	fmt.Fprintf(&b, "texec = %d cycles (%.4g ns)\n", res.ExecCycles, cfg.CyclesToNS(res.ExecCycles))
	return b.String()
}

// AnnotateCWM renders the Figure-2 view: each router and used link
// labelled with its cost-variable bit volume and the resulting dynamic
// energy in picojoules.
func AnnotateCWM(mesh *topology.Mesh, g *model.CWG, mp mapping.Mapping,
	routerBits, linkBits []int64, erbit, elbit float64) string {

	occ := mp.Occupants(mesh.NumTiles())
	var b strings.Builder
	b.WriteString("CWM cost variables (bits through each resource):\n")
	for z := 0; z < mesh.D(); z++ {
		if mesh.D() > 1 {
			fmt.Fprintf(&b, "  layer %d:\n", z)
		}
		for y := 0; y < mesh.H(); y++ {
			for x := 0; x < mesh.W(); x++ {
				t := mesh.TileAt(x, y, z)
				who := "-"
				if occ[t] != mapping.Unassigned {
					who = g.CoreName(occ[t])
				}
				fmt.Fprintf(&b, "  [%s %s:%d]", mesh.TileName(t), who, routerBits[t])
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("links:\n")
	for li, bits := range linkBits {
		if bits == 0 {
			continue
		}
		from, to, _ := mesh.LinkEnds(li)
		fmt.Fprintf(&b, "  %s->%s: %d bits\n", mesh.TileName(from), mesh.TileName(to), bits)
	}
	var rb, lb int64
	for _, v := range routerBits {
		rb += v
	}
	for _, v := range linkBits {
		lb += v
	}
	fmt.Fprintf(&b, "EDyNoC = %.6g pJ (routers %.6g pJ + links %.6g pJ)\n",
		(float64(rb)*erbit+float64(lb)*elbit)*1e12, float64(rb)*erbit*1e12, float64(lb)*elbit*1e12)
	return b.String()
}

// AnnotateSchedule renders the Figure-3 view: the occupancy list of every
// router, inter-tile link and core link, in the paper's
// "bits(src>dst):[start,end]" notation. Entries of packets that suffered
// contention anywhere on their route are starred like the paper's figure.
// The result must come from a run with RecordOccupancy enabled.
func AnnotateSchedule(mesh *topology.Mesh, g *model.CDCG, mp mapping.Mapping, res *wormhole.Result) string {
	contended := make(map[model.PacketID]bool)
	for _, ps := range res.Packets {
		if ps.Contention > 0 {
			contended[ps.ID] = true
		}
	}
	occ := mp.Occupants(mesh.NumTiles())
	entry := func(o wormhole.Occupancy) string {
		pkt := g.Packets[o.Packet]
		star := ""
		if contended[o.Packet] {
			star = "*"
		}
		return fmt.Sprintf("%s%d(%s>%s):[%d,%d]", star, pkt.Bits,
			g.CoreName(pkt.Src), g.CoreName(pkt.Dst), o.Start, o.End)
	}
	list := func(os []wormhole.Occupancy) string {
		if len(os) == 0 {
			return "0"
		}
		parts := make([]string, len(os))
		for i, o := range os {
			parts[i] = entry(o)
		}
		return strings.Join(parts, " ")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "CDCM occupancy annotation (texec = %d cycles):\n", res.ExecCycles)
	for t := 0; t < mesh.NumTiles(); t++ {
		who := "-"
		if occ[t] != mapping.Unassigned {
			who = g.CoreName(occ[t])
		}
		fmt.Fprintf(&b, "router %s (%s): %s\n", mesh.TileName(topology.TileID(t)), who,
			list(res.Occupancies(wormhole.KindRouter, t)))
	}
	for li := 0; li < mesh.NumLinks(); li++ {
		os := res.Occupancies(wormhole.KindLink, li)
		if len(os) == 0 {
			continue
		}
		from, to, _ := mesh.LinkEnds(li)
		fmt.Fprintf(&b, "link %s->%s: %s\n", mesh.TileName(from), mesh.TileName(to), list(os))
	}
	for t := 0; t < mesh.NumTiles(); t++ {
		if occ[t] == mapping.Unassigned {
			continue
		}
		name := g.CoreName(occ[t])
		if os := res.Occupancies(wormhole.KindCoreOut, t); len(os) > 0 {
			fmt.Fprintf(&b, "core-out %s@%s: %s\n", name, mesh.TileName(topology.TileID(t)), list(os))
		}
		if os := res.Occupancies(wormhole.KindCoreIn, t); len(os) > 0 {
			fmt.Fprintf(&b, "core-in  %s@%s: %s\n", name, mesh.TileName(topology.TileID(t)), list(os))
		}
	}
	return b.String()
}

// Table renders rows under headers with columns padded to their widest
// cell — the experiment reports' output format.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var b strings.Builder
	b.WriteString(line(headers))
	b.WriteByte('\n')
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(line(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// MappingGrid renders which core sits on which tile.
func MappingGrid(mesh *topology.Mesh, names func(model.CoreID) string, mp mapping.Mapping) string {
	occ := mp.Occupants(mesh.NumTiles())
	width := 1
	for t := range occ {
		label := "-"
		if occ[t] != mapping.Unassigned {
			label = names(occ[t])
		}
		if len(label) > width {
			width = len(label)
		}
	}
	var b strings.Builder
	for z := 0; z < mesh.D(); z++ {
		if mesh.D() > 1 {
			fmt.Fprintf(&b, "layer %d:\n", z)
		}
		for y := 0; y < mesh.H(); y++ {
			for x := 0; x < mesh.W(); x++ {
				t := mesh.TileAt(x, y, z)
				label := "-"
				if occ[t] != mapping.Unassigned {
					label = names(occ[t])
				}
				fmt.Fprintf(&b, "[%-*s]", width, label)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SortedPacketIDs returns packet IDs ordered by start time then ID —
// useful for stable diagram row ordering when callers want paper-like
// grouping instead of ID order.
func SortedPacketIDs(res *wormhole.Result) []model.PacketID {
	ids := make([]model.PacketID, len(res.Packets))
	for i := range ids {
		ids[i] = model.PacketID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := res.Packets[ids[a]], res.Packets[ids[b]]
		if pa.Start != pb.Start {
			return pa.Start < pb.Start
		}
		return ids[a] < ids[b]
	})
	return ids
}
