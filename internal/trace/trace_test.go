package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

var (
	mapA = mapping.Mapping{1, 0, 3, 2}
	mapB = mapping.Mapping{3, 0, 1, 2}
)

func paperRun(t *testing.T, mp mapping.Mapping) (*topology.Mesh, *model.CDCG, noc.Config, *wormhole.Result) {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := model.PaperExampleCDCG()
	cfg := noc.PaperExample()
	sim, err := wormhole.NewSimulator(mesh, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	sim.RecordOccupancy = true
	res, err := sim.Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	return mesh, g, cfg, res
}

func TestGanttFigure4(t *testing.T) {
	_, g, cfg, res := paperRun(t, mapA)
	out := Gantt(g, cfg, res, 100)
	// All six packet rows present.
	for _, want := range []string{"15(A>B):6", "40(B>F):10", "20(E>A):10",
		"15(E>A):20", "15(A>F):6", "15(F>B):6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Gantt missing row %q:\n%s", want, out)
		}
	}
	// The contended A→F row must show contention marks; texec printed.
	if !strings.Contains(out, "x") {
		t.Fatalf("no contention marks in Figure-4 diagram:\n%s", out)
	}
	if !strings.Contains(out, "texec = 100 cycles") {
		t.Fatalf("missing texec:\n%s", out)
	}
}

func TestGanttFigure5NoContention(t *testing.T) {
	_, g, cfg, res := paperRun(t, mapB)
	out := Gantt(g, cfg, res, 100)
	for _, line := range strings.Split(out, "\n") {
		// Only packet rows (label|bar) carry marks; skip legend/footer.
		if !strings.Contains(line, "|") || strings.Contains(line, "legend") {
			continue
		}
		if strings.Contains(line, "x") {
			t.Fatalf("Figure-5 mapping should have no contention marks: %q", line)
		}
	}
	if !strings.Contains(out, "texec = 90 cycles") {
		t.Fatalf("missing texec:\n%s", out)
	}
}

func TestGanttMinWidth(t *testing.T) {
	_, g, cfg, res := paperRun(t, mapA)
	out := Gantt(g, cfg, res, 5) // clamped to 40
	if len(out) == 0 || !strings.Contains(out, "legend") {
		t.Fatal("narrow Gantt broken")
	}
}

func TestAnnotateScheduleFigure3(t *testing.T) {
	mesh, g, _, res := paperRun(t, mapA)
	out := AnnotateSchedule(mesh, g, mapA, res)
	// Spot-check paper annotations, including the starred contended
	// packet and an idle router-less tile list.
	for _, want := range []string{
		"40(B>F):[11,52]",    // router t1
		"*15(A>F):[46,69]",   // contended, starred
		"*15(A>F):[55,70]",   // link t1->t3
		"15(F>B):[85,100]",   // core-in B
		"core-out E@t4",      // core link naming
		"router t1 (B)",      // occupant naming
		"texec = 100 cycles", // header
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("annotation missing %q:\n%s", want, out)
		}
	}
}

func TestAnnotateCWMFigure2(t *testing.T) {
	mesh, g, cfg, _ := paperRun(t, mapA)
	cwm, err := core.NewCWM(mesh, cfg, energy.PaperExample(), g.ToCWG())
	if err != nil {
		t.Fatal(err)
	}
	rb, lb, _, err := cwm.Traffic(mapA)
	if err != nil {
		t.Fatal(err)
	}
	out := AnnotateCWM(mesh, g.ToCWG(), mapA, rb, lb, 1e-12, 1e-12)
	for _, want := range []string{
		"[t1 B:85]", "[t2 A:65]", "[t3 F:70]", "[t4 E:35]",
		"t1->t3: 55 bits",
		"EDyNoC = 390 pJ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CWM annotation missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table([]string{"NoC", "ETR"}, [][]string{{"3x2", "36%"}, {"12x10", "48%"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "NoC") || !strings.Contains(lines[0], "ETR") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "12x10") {
		t.Fatalf("row: %q", lines[3])
	}
	// Ragged rows must not panic.
	_ = Table([]string{"a", "b", "c"}, [][]string{{"1"}, {"1", "2", "3", "4"}})
}

func TestMappingGrid(t *testing.T) {
	mesh, g, _, _ := paperRun(t, mapA)
	out := MappingGrid(mesh, func(c model.CoreID) string { return g.CoreName(c) }, mapA)
	if !strings.Contains(out, "[B][A]") || !strings.Contains(out, "[F][E]") {
		t.Fatalf("grid:\n%s", out)
	}
	// Partial mapping shows empty tiles.
	partial := MappingGrid(mesh, func(c model.CoreID) string { return g.CoreName(c) }, mapping.Mapping{0, 3})
	if !strings.Contains(partial, "[-]") {
		t.Fatalf("partial grid:\n%s", partial)
	}
}

func TestSortedPacketIDs(t *testing.T) {
	_, _, _, res := paperRun(t, mapA)
	ids := SortedPacketIDs(res)
	for i := 1; i < len(ids); i++ {
		a, b := res.Packets[ids[i-1]], res.Packets[ids[i]]
		if a.Start > b.Start {
			t.Fatalf("not sorted: %v", ids)
		}
		if a.Start == b.Start && ids[i-1] > ids[i] {
			t.Fatalf("tie not broken by ID: %v", ids)
		}
	}
}
