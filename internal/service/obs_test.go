package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// stepClock advances one second on every reading, so each call site of
// the Config.Now seam lands on a distinct, predictable tick.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// promSample matches one exposition sample line:
// name{labels} value — labels optional, value a float, inf or NaN.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := testServer(t, Config{})

	// One computed job plus one cache-hit replay gives every counter
	// family something to say.
	_, st := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":11}`)
	pollUntil(t, ts, st.ID, StateSucceeded)
	resp2, st2 := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":11}`)
	if resp2.StatusCode != http.StatusOK || !st2.CacheHit {
		t.Fatalf("expected cache hit, got %d %+v", resp2.StatusCode, st2)
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content-type = %q, want %q", ct, obs.ContentType)
	}

	// Every line is a comment or a well-formed sample, and the exposition
	// carries at least a dozen distinct families.
	types := 0
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	if types < 12 {
		t.Errorf("exposition has %d # TYPE families, want >= 12:\n%s", types, body)
	}

	for _, want := range []string{
		"nocd_jobs_submitted_total 2",
		"nocd_jobs_completed_total 2",
		"nocd_computes_total 1",
		"nocd_cache_hits_total 1",
		"nocd_cache_misses_total 1",
		"nocd_cache_entries 1",
		"nocd_dedup_total 0",
		"nocd_jobs_running 0",
		"nocd_queue_depth 0",
		"nocd_jobs_inflight 0",
		"nocd_sse_subscribers 0",
		"nocd_evaluations_total ",
		`nocd_http_requests_total{code="200"} `,
		`nocd_http_requests_total{code="202"} 1`,
		`nocd_search_evaluations_total{engine="SA"} `,
		`nocd_search_accepted_total{engine="SA"} `,
		`nocd_search_rejected_total{engine="SA"} `,
		`nocd_search_restarts_total{engine="SA"} 1`,
		`nocd_job_duration_seconds_bucket{model="CWM",le="+Inf"} 1`,
		`nocd_job_duration_seconds_count{model="CWM"} 1`,
		"# TYPE nocd_job_duration_seconds histogram",
		"# TYPE nocd_jobs_submitted_total counter",
		"# TYPE nocd_queue_depth gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsJSONKeyOrderPinned pins the legacy endpoint byte for byte on
// a fresh server: fixed key order, two-space indent, trailing newline.
// Line-oriented scrapers of the pre-Prometheus endpoint depend on this.
func TestMetricsJSONKeyOrderPinned(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/metrics?format=json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	want := `{
  "cache_entries": 0,
  "cache_hits": 0,
  "cache_misses": 0,
  "computes": 0,
  "jobs_canceled": 0,
  "jobs_completed": 0,
  "jobs_failed": 0,
  "jobs_queued": 0,
  "jobs_rejected": 0,
  "jobs_running": 0,
  "jobs_submitted": 0
}
`
	if body != want {
		t.Errorf("legacy JSON body changed:\n got: %q\nwant: %q", body, want)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDPropagation(t *testing.T) {
	_, ts := testServer(t, Config{})

	// Client-supplied ID: echoed on the response and stamped on the job.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":21}`))
	req.Header.Set(obs.RequestIDHeader, "rid-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "rid-test-1" {
		t.Errorf("POST echoed %q, want rid-test-1", got)
	}
	if st.RequestID != "rid-test-1" {
		t.Errorf("job status request_id = %q, want rid-test-1", st.RequestID)
	}

	// A status poll is its own request: the response echoes a fresh
	// minted ID, while the body keeps the submitting request's ID.
	final := pollUntil(t, ts, st.ID, StateSucceeded)
	if final.RequestID != "rid-test-1" {
		t.Errorf("polled status request_id = %q, want rid-test-1", final.RequestID)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); !hexID.MatchString(got) {
		t.Errorf("GET minted request id %q, want 16 hex chars", got)
	}

	// No header: the middleware mints one on every route, DELETE included.
	_, st2 := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":22}`)
	if st2.RequestID == "" || !hexID.MatchString(st2.RequestID) {
		t.Errorf("minted job request_id = %q, want 16 hex chars", st2.RequestID)
	}
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	del.Header.Set(obs.RequestIDHeader, "rid-cancel")
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "rid-cancel" {
		t.Errorf("DELETE echoed %q, want rid-cancel", got)
	}
}

// TestSSECarriesTelemetryAndRequestID checks the events stream end to
// end: progress events carry the submitting request's ID and the
// accepted/rejected counters, and the final done event's status has the
// per-engine telemetry block.
func TestSSECarriesTelemetryAndRequestID(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"demo":true,"mesh":"2x2","model":"cdcm","method":"sa",
			"temp_steps":300,"moves_per_temp":400,"stall_steps":300}`))
	req.Header.Set(obs.RequestIDHeader, "rid-sse")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var sawCounters bool
	var done *Event
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.RequestID != "rid-sse" {
			t.Fatalf("event request_id = %q, want rid-sse: %+v", ev.RequestID, ev)
		}
		switch ev.Type {
		case "progress":
			if ev.Progress.Accepted+ev.Progress.Rejected > 0 {
				sawCounters = true
			}
			if ev.Progress.Accepted < 0 || ev.Progress.Rejected < 0 ||
				ev.Progress.Accepted+ev.Progress.Rejected > ev.Progress.Evaluations {
				t.Fatalf("implausible progress counters: %+v", ev.Progress)
			}
		case "done":
			done = &ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawCounters {
		t.Error("no progress event carried accepted/rejected counters")
	}
	if done == nil || done.Job == nil {
		t.Fatal("stream ended without a done event")
	}
	tel := done.Job.Telemetry
	if tel == nil || len(tel.Engines) == 0 {
		t.Fatalf("done status has no engine telemetry: %+v", done.Job)
	}
	sa := tel.Engines[0]
	if sa.Engine != "SA" || sa.Evaluations <= 0 || sa.Snapshots <= 0 ||
		sa.Accepted+sa.Rejected <= 0 || sa.Accepted+sa.Rejected > sa.Evaluations {
		t.Errorf("implausible SA telemetry aggregate: %+v", sa)
	}
	if tel.Spans == nil {
		t.Error("computed terminal job has no phase spans")
	}

	// The same counters flowed into the engine-labeled registry series.
	var b strings.Builder
	if err := s.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`nocd_search_evaluations_total{engine="SA"} `,
		`nocd_search_restarts_total{engine="SA"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("registry missing %q after SSE job", want)
		}
	}
}

// TestTelemetrySpansFakeClock pins the whole timing pipeline on a step
// clock: the compute path reads Config.Now exactly six times (submit,
// start, and the build/search/price marks, then finish), so every span is
// exactly one fake second and the job-duration histogram lands in a known
// bucket. No HTTP here — the access-log middleware would consume ticks.
func TestTelemetrySpansFakeClock(t *testing.T) {
	clock := &stepClock{t: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)}
	s := New(Config{Workers: 1, Now: clock.Now})
	t.Cleanup(func() { s.Shutdown(t.Context()) })

	j, err := s.Submit(&Request{Demo: true, Mesh: "2x2", Model: "cwm", Method: "sa", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := j.Wait()
	if st.State != StateSucceeded {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if st.Telemetry == nil || st.Telemetry.Spans == nil {
		t.Fatalf("no spans on terminal computed job: %+v", st.Telemetry)
	}
	want := SpansJSON{QueuedMS: 1000, BuildMS: 1000, SearchMS: 1000, PriceMS: 1000}
	if *st.Telemetry.Spans != want {
		t.Errorf("spans = %+v, want %+v", *st.Telemetry.Spans, want)
	}
	if st.ElapsedMS != 4000 {
		t.Errorf("elapsed = %vms, want 4000 (start to finish, four ticks)", st.ElapsedMS)
	}

	// The histogram observed the same start-to-finish four seconds.
	var b strings.Builder
	if err := s.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`nocd_job_duration_seconds_bucket{model="CWM",le="2.5"} 0`,
		`nocd_job_duration_seconds_bucket{model="CWM",le="5"} 1`,
		`nocd_job_duration_seconds_sum{model="CWM"} 4`,
		`nocd_job_duration_seconds_count{model="CWM"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("histogram missing %q:\n%s", want, b.String())
		}
	}
}

// TestCachedReplayByteIdenticalWithTelemetry re-pins the determinism
// contract under the observability layer: telemetry and request IDs live
// in the status envelope only, so a cache-hit replay serves byte-identical
// result JSON and carries no telemetry of its own.
func TestCachedReplayByteIdenticalWithTelemetry(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"demo":true,"mesh":"3x3","model":"cdcm","method":"sa","seed":5}`

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set(obs.RequestIDHeader, "rid-first")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	first := pollUntil(t, ts, st.ID, StateSucceeded)
	if first.Telemetry == nil {
		t.Fatal("computed job has no telemetry")
	}

	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req2.Header.Set(obs.RequestIDHeader, "rid-second")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var replay JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&replay); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !replay.CacheHit || replay.State != StateSucceeded {
		t.Fatalf("not a cache hit: %+v", replay)
	}
	if !bytes.Equal(first.Result, replay.Result) {
		t.Errorf("cached result differs:\n%s\n%s", first.Result, replay.Result)
	}
	if replay.Telemetry != nil {
		t.Errorf("cache-hit job carries telemetry: %+v", replay.Telemetry)
	}
	if replay.RequestID != "rid-second" {
		t.Errorf("replay request_id = %q, want rid-second", replay.RequestID)
	}
}
