package service

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/core"
)

// Result is the machine-readable outcome of one mapping job — the schema
// shared byte-for-byte between `nocmap -json` and the daemon's job API.
//
// Determinism contract: Result contains only values derived from the
// instance and the (seeded) search — no timestamps, durations or host
// state — so identical (instance, strategy, seed) submissions marshal to
// byte-identical JSON. Wall-clock data lives in the surrounding envelope
// (JobStatus for the daemon, CLIResult for the CLI). The daemon's result
// cache relies on this: a cached entry is indistinguishable from a fresh
// compute.
type Result struct {
	// Application identity.
	App       string `json:"app"`
	AppHash   string `json:"app_hash"`
	Cores     int    `json:"cores"`
	Packets   int    `json:"packets"`
	TotalBits int64  `json:"total_bits"`

	// Instance parameters.
	Grid     string `json:"grid"`     // "WxHxD"
	Topology string `json:"topology"` // mesh | torus
	Routing  string `json:"routing"`
	FlitBits int    `json:"flit_bits"`
	Tech     string `json:"tech"`
	Model    string `json:"model"`
	Method   string `json:"method"`
	Seed     int64  `json:"seed"`
	Restarts int    `json:"restarts"`

	// Search outcome.
	Mapping     []int   `json:"mapping"` // core index -> tile index
	BestCost    float64 `json:"best_cost_j"`
	InitialCost float64 `json:"initial_cost_j"`
	Evaluations int64   `json:"evaluations"`
	// The two-tier split of Evaluations (always ExactEvals + BoundSkips +
	// SurrogateEvals): exact simulator pricings, candidates the certified
	// tier-A bound disposed of without a simulation, and candidates priced
	// on the tier-B surrogate. Single-tier runs report ExactEvals ==
	// Evaluations and zero for the other two.
	ExactEvals     int64 `json:"exact_evals"`
	BoundSkips     int64 `json:"bound_skips"`
	SurrogateEvals int64 `json:"surrogate_evals"`
	Improvements   int64 `json:"improvements"`
	Certified      bool  `json:"certified"`

	// CDCM pricing of the winner (cost breakdown).
	ExecCycles       int64   `json:"exec_cycles"`
	ExecNS           float64 `json:"exec_ns"`
	ContentionCycles int64   `json:"contention_cycles"`
	TSVBits          int64   `json:"tsv_bits"`
	DynamicJ         float64 `json:"dynamic_j"`
	StaticJ          float64 `json:"static_j"`
	TotalJ           float64 `json:"total_j"`

	// Pareto front (model "pareto" only, omitted otherwise). FrontAxes
	// names the component axes; Front lists the mutually non-dominated
	// points in the engine's deterministic order. Like everything else in
	// Result the front is a pure function of the instance, so cached and
	// fresh responses stay byte-identical.
	FrontAxes []string         `json:"front_axes,omitempty"`
	Front     []FrontPointJSON `json:"front,omitempty"`

	// Resilience is the fault-degradation report of the winning mapping,
	// present whenever the request configured a non-empty fault set (any
	// model) and omitted otherwise. It is a pure function of the instance
	// like the rest of Result, so the byte-identical replay contract
	// holds for resilience jobs too.
	Resilience *ResilienceJSON `json:"resilience,omitempty"`
}

// ResilienceJSON is the result-schema form of core.ResilienceScore.
type ResilienceJSON struct {
	// FaultSet is the canonical fault enumeration the score covers.
	FaultSet string `json:"fault_set"`
	// Score grades the mapping 0..100 (100 × intact texec / worst-fault
	// texec; unreachable scenarios enter through the documented penalty).
	Score float64 `json:"score"`
	// Intact baseline and degradation summary.
	BaseExecCycles  int64   `json:"base_exec_cycles"`
	BaseTotalJ      float64 `json:"base_total_j"`
	WorstExecCycles int64   `json:"worst_exec_cycles"`
	WorstElement    string  `json:"worst_element,omitempty"`
	MeanExecCycles  float64 `json:"mean_exec_cycles"`
	WorstDeltaJ     float64 `json:"worst_delta_j"`
	MeanDeltaJ      float64 `json:"mean_delta_j"`
	Unreachable     int     `json:"unreachable"`
	// Impacts is the per-fault breakdown in canonical element order.
	Impacts []FaultImpactJSON `json:"impacts"`
	// Recommendations are the deterministic rule-based notes.
	Recommendations []string `json:"recommendations"`
}

// FaultImpactJSON is one single-fault scenario of the breakdown.
type FaultImpactJSON struct {
	Element     string  `json:"element"`
	Unreachable bool    `json:"unreachable,omitempty"`
	ExecCycles  int64   `json:"exec_cycles"`
	TotalJ      float64 `json:"total_j"`
	DeltaCycles int64   `json:"delta_cycles"`
	DeltaJ      float64 `json:"delta_j"`
}

// FrontPointJSON is one Pareto-front point in the result schema.
type FrontPointJSON struct {
	// Mapping is core index -> tile index.
	Mapping []int `json:"mapping"`
	// Components prices the mapping per axis, in FrontAxes order.
	Components []float64 `json:"components"`
	// CostJ is the scalar ENoC collapse of the components.
	CostJ float64 `json:"cost_j"`
}

// NewResult builds the shared result record from one exploration.
func NewResult(in *Instance, res *core.ExploreResult) *Result {
	mp := make([]int, len(res.Best))
	for c, t := range res.Best {
		mp[c] = int(t)
	}
	name := in.G.Name
	if name == "" {
		name = "(unnamed)"
	}
	met := res.Metrics
	var frontAxes []string
	var front []FrontPointJSON
	if res.Front != nil {
		frontAxes = res.Front.Axes
		front = make([]FrontPointJSON, len(res.Front.Points))
		for i, p := range res.Front.Points {
			pm := make([]int, len(p.Mapping))
			for c, t := range p.Mapping {
				pm[c] = int(t)
			}
			front[i] = FrontPointJSON{
				Mapping:    pm,
				Components: append([]float64(nil), p.Components...),
				CostJ:      p.Cost,
			}
		}
	}
	return &Result{
		App:       name,
		AppHash:   in.G.Hash(),
		Cores:     in.G.NumCores(),
		Packets:   in.G.NumPackets(),
		TotalBits: in.G.TotalBits(),

		Grid:     in.GridSpec(),
		Topology: in.Mesh.Kind().String(),
		Routing:  in.Cfg.Routing.String(),
		FlitBits: in.Cfg.FlitBits,
		Tech:     in.Tech.Name,
		Model:    in.Strategy.String(),
		Method:   in.Method.String(),
		Seed:     in.Opts.Seed,
		Restarts: in.Opts.Restarts,

		Mapping:        mp,
		BestCost:       res.Search.BestCost,
		InitialCost:    res.Search.InitialCost,
		Evaluations:    res.Search.Evaluations,
		ExactEvals:     res.Search.ExactEvals,
		BoundSkips:     res.Search.BoundSkips,
		SurrogateEvals: res.Search.SurrogateEvals,
		Improvements:   res.Search.Improvements,
		Certified:      res.Search.Certified,

		ExecCycles:       met.ExecCycles,
		ExecNS:           met.ExecNS,
		ContentionCycles: met.ContentionCycles,
		TSVBits:          met.TSVBits,
		DynamicJ:         met.Energy.Dynamic,
		StaticJ:          met.Energy.Static,
		TotalJ:           met.Total(),

		FrontAxes: frontAxes,
		Front:     front,

		Resilience: resilienceJSON(res.Resilience),
	}
}

// resilienceJSON converts the core degradation report into the result
// schema (nil in, nil out).
func resilienceJSON(sc *core.ResilienceScore) *ResilienceJSON {
	if sc == nil {
		return nil
	}
	impacts := make([]FaultImpactJSON, len(sc.Impacts))
	for i, imp := range sc.Impacts {
		impacts[i] = FaultImpactJSON{
			Element:     imp.Element,
			Unreachable: imp.Unreachable,
			ExecCycles:  imp.ExecCycles,
			TotalJ:      imp.TotalJ,
			DeltaCycles: imp.DeltaCycles,
			DeltaJ:      imp.DeltaJ,
		}
	}
	return &ResilienceJSON{
		FaultSet:        sc.FaultKey,
		Score:           sc.Score,
		BaseExecCycles:  sc.BaseExecCycles,
		BaseTotalJ:      sc.BaseTotalJ,
		WorstExecCycles: sc.WorstExecCycles,
		WorstElement:    sc.WorstElement,
		MeanExecCycles:  sc.MeanExecCycles,
		WorstDeltaJ:     sc.WorstDeltaJ,
		MeanDeltaJ:      sc.MeanDeltaJ,
		Unreachable:     sc.Unreachable,
		Impacts:         impacts,
		Recommendations: append([]string(nil), sc.Recommendations...),
	}
}

// CLIResult is the envelope `nocmap -json` emits: the deterministic
// Result plus wall-clock elapsed time, kept outside Result so repeated
// identical runs differ only in the envelope.
type CLIResult struct {
	Result    *Result `json:"result"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WriteCLI encodes the CLI envelope as indented JSON.
func WriteCLI(w io.Writer, res *Result, elapsed time.Duration) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CLIResult{Result: res, ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6})
}
