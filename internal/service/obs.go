package service

import "repro/internal/obs"

// initObs builds the server's metric registry. Counter-style families
// read the existing atomic metrics struct through scrape-time closures,
// so the submit/finish paths keep their single bookkeeping site; gauge
// closures may take s.mu (the scrape path acquires registry locks before
// s.mu, and no code path holds s.mu while touching the registry, so the
// order is acyclic).
func (s *Server) initObs() {
	r := obs.NewRegistry()
	s.reg = r

	r.CounterFunc("nocd_jobs_submitted_total", "Submissions accepted by the service (all outcomes).",
		func() float64 { return float64(s.m.submitted.Load()) })
	r.CounterFunc("nocd_jobs_rejected_total", "Submissions refused: full queue (HTTP 429) or shutdown.",
		func() float64 { return float64(s.m.rejected.Load()) })
	r.CounterFunc("nocd_jobs_completed_total", "Jobs that reached the succeeded state.",
		func() float64 { return float64(s.m.completed.Load()) })
	r.CounterFunc("nocd_jobs_failed_total", "Jobs that reached the failed state.",
		func() float64 { return float64(s.m.failed.Load()) })
	r.CounterFunc("nocd_jobs_canceled_total", "Jobs that reached the canceled state.",
		func() float64 { return float64(s.m.canceled.Load()) })
	r.CounterFunc("nocd_computes_total", "Searches actually executed on the worker pool.",
		func() float64 { return float64(s.m.compute.Load()) })
	r.CounterFunc("nocd_cache_hits_total", "Submissions served without a fresh compute (result cache or in-flight dedup).",
		func() float64 { return float64(s.m.cacheHits.Load()) })
	r.CounterFunc("nocd_cache_misses_total", "Submissions that required a fresh compute.",
		func() float64 { return float64(s.m.cacheMisses.Load()) })
	r.CounterFunc("nocd_dedup_total", "Submissions attached as followers to an identical in-flight computation.",
		func() float64 { return float64(s.m.dedups.Load()) })

	r.GaugeFunc("nocd_cache_entries", "Entries in the result LRU cache.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("nocd_queue_depth", "Jobs submitted to the compute pool but not yet started.",
		func() float64 { return float64(s.pool.Queued()) })
	r.GaugeFunc("nocd_jobs_running", "Jobs currently computing on the pool.",
		func() float64 { return float64(s.pool.Running()) })
	r.GaugeFunc("nocd_jobs_inflight", "Distinct instance keys currently being computed (dedup leaders).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.inflight))
		})
	s.sseSubs = r.Gauge("nocd_sse_subscribers", "Open /v1/jobs/{id}/events streams.")

	s.httpRequests = r.CounterVec("nocd_http_requests_total", "HTTP requests by response status code.", "code")
	s.jobDuration = r.HistogramVec("nocd_job_duration_seconds",
		"Wall-clock latency of computed jobs (start to finish, server clock seam) by model strategy.",
		"model", obs.DefaultDurationBuckets)
	s.searchEvals = r.CounterVec("nocd_search_evaluations_total", "Objective evaluations reported by search progress snapshots, by engine.", "engine")
	s.searchExact = r.CounterVec("nocd_search_exact_evals_total", "Exact (simulator) pricings within the reported evaluations, by engine.", "engine")
	s.searchSkips = r.CounterVec("nocd_search_bound_skips_total", "Candidates disposed of by the certified tier-A lower bound without an exact pricing, by engine.", "engine")
	s.searchSurrogate = r.CounterVec("nocd_search_surrogate_evals_total", "Candidates priced on the calibrated tier-B surrogate, by engine.", "engine")
	s.searchAccepted = r.CounterVec("nocd_search_accepted_total", "Accepted search moves, by engine.", "engine")
	s.searchRejected = r.CounterVec("nocd_search_rejected_total", "Rejected search moves, by engine.", "engine")
	s.searchRestarts = r.CounterVec("nocd_search_restarts_total", "Search restarts/shards observed, by engine.", "engine")
	s.evals = r.Counter("nocd_evaluations_total",
		"Objective pricings counted on the evaluator hot paths (CWM full and delta costs, CDCM simulations).")
}

// Registry exposes the server's metric registry, e.g. for embedding the
// daemon and scraping in-process.
func (s *Server) Registry() *obs.Registry { return s.reg }
