package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// fastRequest is a small deterministic CWM/SA job (~ms).
func fastRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "2x2", Model: "cwm", Method: "sa", Seed: seed}
}

// slowRequest is a CDCM/SA job with a budget large enough that it only
// ends by cancellation within a test's lifetime.
func slowRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "3x3", Model: "cdcm", Method: "sa", Seed: seed,
		TempSteps: 1 << 20, MovesPerTemp: 1 << 12, StallSteps: 1 << 20}
}

// mediumRequest takes a few hundred milliseconds — long enough to still
// be in flight when a drain starts, short enough to finish within it.
func mediumRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "2x2", Model: "cdcm", Method: "sa", Seed: seed,
		TempSteps: 300, MovesPerTemp: 400, StallSteps: 300}
}

func waitTerminal(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
		return j.Status()
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished (state %s)", j.ID, j.Status().State)
		return JobStatus{}
	}
}

// waitState polls until the job reaches the wanted transient state.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status().State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.ID, want, j.Status().State)
}

func TestSubmitComputeThenCacheHit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j1, err := s.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateSucceeded || st1.CacheHit || len(st1.Result) == 0 {
		t.Fatalf("first job: %+v", st1)
	}
	var res Result
	if err := json.Unmarshal(st1.Result, &res); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if res.Model != "CWM" || res.Seed != 7 || res.TotalJ <= 0 || len(res.Mapping) != 4 {
		t.Fatalf("implausible result: %+v", res)
	}

	j2, err := s.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateSucceeded || !st2.CacheHit {
		t.Fatalf("second job not served from cache: %+v", st2)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Errorf("cached result not byte-identical:\n%s\n%s", st1.Result, st2.Result)
	}
	if st1.Key != st2.Key {
		t.Errorf("identical requests keyed differently: %s vs %s", st1.Key, st2.Key)
	}
	if got := s.m.compute.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	if got := s.m.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// A different seed is a different instance: fresh compute, new key.
	j3, err := s.Submit(fastRequest(8))
	if err != nil {
		t.Fatal(err)
	}
	if st3 := waitTerminal(t, j3); st3.CacheHit || st3.Key == st1.Key {
		t.Errorf("distinct instance hit the cache: %+v", st3)
	}
}

func TestWorkersExcludedFromCacheKey(t *testing.T) {
	r1, r2 := fastRequest(3), fastRequest(3)
	r2.Workers = 8
	in1, err := r1.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := r2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if in1.Key() != in2.Key() {
		t.Error("worker count changed the cache key (results are worker-independent)")
	}
	r3 := fastRequest(3)
	r3.Restarts = 5
	in3, err := r3.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if in3.Key() == in1.Key() {
		t.Error("restart count did not change the cache key (restarts change results)")
	}
}

// TestConcurrentIdenticalSubmissionsComputeOnce is the dedup contract
// under -race: N concurrent submissions of one instance, exactly one
// compute, N byte-identical results.
func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	s := New(Config{Workers: 4, QueueSize: 64})
	defer s.Shutdown(context.Background())

	const n = 24
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(mediumRequest(11))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()

	var first json.RawMessage
	for i, j := range jobs {
		if j == nil {
			continue
		}
		st := waitTerminal(t, j)
		if st.State != StateSucceeded {
			t.Fatalf("job %d: %+v", i, st)
		}
		if first == nil {
			first = st.Result
		} else if !bytes.Equal(first, st.Result) {
			t.Fatalf("job %d result differs", i)
		}
	}
	if got := s.m.compute.Load(); got != 1 {
		t.Errorf("computes = %d, want exactly 1", got)
	}
	if got := s.m.cacheHits.Load(); got != n-1 {
		t.Errorf("cache/dedup hits = %d, want %d", got, n-1)
	}
}

func TestCancelRunningJobPromptly(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(slowRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)

	start := time.Now()
	cj, ok := s.Cancel(j.ID)
	if !ok || cj != j {
		t.Fatal("cancel did not find the job")
	}
	st := waitTerminal(t, j)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	// "Promptly": the search polls its context every few evaluations; a
	// second is orders of magnitude above the expected latency.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %s", d)
	}
	// Canceling a terminal job is a harmless no-op.
	if _, ok := s.Cancel(j.ID); !ok {
		t.Error("re-cancel lost the job")
	}
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("re-cancel changed state to %s", st.State)
	}
}

func TestCancelQueuedJobNeverComputes(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 4})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(slowRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	queued, err := s.Submit(slowRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel did not find the queued job")
	}
	if st := waitTerminal(t, queued); st.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	computes := s.m.compute.Load()
	s.Cancel(blocker.ID)
	waitTerminal(t, blocker)
	if got := s.m.compute.Load(); got != computes {
		t.Errorf("canceled queued job computed anyway (%d -> %d)", computes, got)
	}
}

func TestCancelFollowerLeavesLeaderRunning(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	leader, err := s.Submit(slowRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, leader, StateRunning)
	follower, err := s.Submit(slowRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(follower.ID); !ok {
		t.Fatal("cancel did not find the follower")
	}
	if st := waitTerminal(t, follower); st.State != StateCanceled {
		t.Fatalf("follower state = %s", st.State)
	}
	if st := leader.Status(); st.State != StateRunning {
		t.Fatalf("canceling a follower disturbed the leader: %s", st.State)
	}
	s.Cancel(leader.ID)
	if st := waitTerminal(t, leader); st.State != StateCanceled {
		t.Fatalf("leader state = %s", st.State)
	}
}

func TestCancelLeaderCancelsFollowers(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	leader, err := s.Submit(slowRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, leader, StateRunning)
	follower, err := s.Submit(slowRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(leader.ID)
	if st := waitTerminal(t, leader); st.State != StateCanceled {
		t.Fatalf("leader state = %s", st.State)
	}
	if st := waitTerminal(t, follower); st.State != StateCanceled {
		t.Fatalf("follower state = %s", st.State)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1})
	defer s.Shutdown(context.Background())

	running, err := s.Submit(slowRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s.Submit(slowRequest(7))
	if err != nil {
		t.Fatalf("queued submit refused: %v", err)
	}
	if _, err := s.Submit(slowRequest(8)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := s.m.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// Unblock the deferred drain: neither slow job may survive it.
	s.Cancel(queued.ID)
	s.Cancel(running.ID)
}

func TestBadRequestsRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	bad := []*Request{
		{},                              // no app, no demo
		{Demo: true, Mesh: "1x1"},       // 4 cores cannot fit
		{Demo: true, Tech: "90nm"},      // unknown tech
		{Demo: true, Model: "x"},        // unknown model
		{Demo: true, Method: "x"},       // unknown method
		{Demo: true, Routing: "zz"},     // unknown routing
		{Demo: true, Restarts: -1},      // negative restarts
		{Demo: true, Alpha: 1.5},        // alpha outside (0,1)
		{Demo: true, TempSteps: -5},     // negative tuning
		{Demo: true, FlitBits: -1},      // invalid flit width
		{Demo: true, Topology: "tube"},              // unknown topology
		{Demo: true, App: model.PaperExampleCDCG()}, // app and demo together
	}
	for i, req := range bad {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d: err = %v, want ErrBadRequest", i, err)
		}
	}
}

func TestRetentionEvictsPastActiveHead(t *testing.T) {
	// A long-running job at the head of the retention order must not pin
	// the terminal records submitted after it: the eviction scan skips
	// active jobs and drops the oldest terminal ones.
	// Two workers: the long job pins one, the fast jobs' single compute
	// needs the other.
	s := New(Config{Workers: 2, MaxJobs: 8, QueueSize: 4})
	defer s.Shutdown(context.Background())

	long, err := s.Submit(slowRequest(100))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateRunning)
	// 20 quick terminal jobs behind the active head (cache-hit repeats
	// after the first, so only one compute worker is needed).
	var last *Job
	for i := 0; i < 20; i++ {
		j, err := s.Submit(fastRequest(200))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		last = j
	}
	s.mu.Lock()
	retained := len(s.jobs)
	_, activeKept := s.jobs[long.ID]
	s.mu.Unlock()
	if retained > 8+1 { // MaxJobs plus at most the skipped active head
		t.Errorf("retained %d job records, want <= 9", retained)
	}
	if !activeKept {
		t.Error("active job was evicted")
	}
	if _, ok := s.Job(last.ID); !ok {
		t.Error("newest terminal job was evicted")
	}
	s.Cancel(long.ID)
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	j, err := s.Submit(mediumRequest(9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// During the drain, new submissions are refused...
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Submit(fastRequest(10))
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions were never refused during drain")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and the in-flight job finishes rather than being killed.
	if err := <-done; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	if st := j.Status(); st.State != StateSucceeded {
		t.Fatalf("drained job state = %s, want succeeded", st.State)
	}
}

func TestShutdownTimeoutCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	j, err := s.Submit(slowRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("straggler state = %s, want canceled", st.State)
	}
}

// paretoRequest is a small deterministic pareto-front job.
func paretoRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "3x3", Model: "pareto", Seed: seed,
		TempSteps: 8, MovesPerTemp: 10, Restarts: 4, FrontSize: 8}
}

func TestParetoJobFrontSchemaAndCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j1, err := s.Submit(paretoRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateSucceeded || st1.CacheHit {
		t.Fatalf("pareto job: %+v", st1)
	}
	var res Result
	if err := json.Unmarshal(st1.Result, &res); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if res.Model != "pareto" {
		t.Fatalf("model = %q", res.Model)
	}
	if len(res.FrontAxes) != 3 || res.FrontAxes[0] != "dynamic_j" {
		t.Fatalf("front axes %v", res.FrontAxes)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front in result")
	}
	bestCost := res.Front[0].CostJ
	for i, p := range res.Front {
		if len(p.Mapping) != res.Cores || len(p.Components) != len(res.FrontAxes) {
			t.Fatalf("front point %d malformed: %+v", i, p)
		}
		if p.CostJ < bestCost {
			bestCost = p.CostJ
		}
	}
	// The scalar summary is the front's cheapest point.
	if res.BestCost != bestCost {
		t.Fatalf("best_cost_j %g != front minimum %g", res.BestCost, bestCost)
	}

	// Identical resubmission: served from cache, byte-identical front.
	j2, err := s.Submit(paretoRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateSucceeded || !st2.CacheHit {
		t.Fatalf("pareto resubmission not cached: %+v", st2)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Error("cached pareto result not byte-identical")
	}

	// The front knobs are part of the instance key: changing either is a
	// different job, not a cache hit.
	bigger := paretoRequest(7)
	bigger.FrontSize = 16
	seeded := paretoRequest(7)
	seeded.GreedySeed = true
	for name, r := range map[string]*Request{"front_size": bigger, "greedy_seed": seeded} {
		j, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st.CacheHit || st.Key == st1.Key {
			t.Errorf("%s change still hit the cache: %+v", name, st)
		}
	}

	// Scalar jobs must not grow front fields (omitempty keeps the schema
	// byte-stable for every existing consumer).
	js, err := s.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, js); bytes.Contains(st.Result, []byte(`"front`)) {
		t.Errorf("scalar result leaks front fields: %s", st.Result)
	}
}
