package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// lruCache is a bounded most-recently-used cache from canonical instance
// key to encoded result bytes. Values are stored encoded so every reader
// — first compute, cache hit, follower of an in-flight compute — serves
// byte-identical JSON.
//
// Ownership: the cache owns its bytes. Add copies the value in and Get
// copies it out, so neither a caller mutating its submission buffer nor
// one scribbling on a returned result can corrupt what later readers
// see. The copies cost one allocation per call on result-sized buffers —
// off the mapping hot path, and the price of the byte-identical replay
// contract surviving careless callers.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val json.RawMessage
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns a copy of the cached bytes for key and refreshes its
// recency. The copy keeps the stored value immune to callers that mutate
// what they were handed.
func (c *lruCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return append(json.RawMessage(nil), el.Value.(*lruEntry).val...), true
}

// Add stores a copy of key's bytes, evicting the least recently used
// entry when the cache is full. The copy detaches the stored value from
// the caller's buffer.
func (c *lruCache) Add(key string, val json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	val = append(json.RawMessage(nil), val...)
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
