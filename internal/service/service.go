// Package service is the mapping-as-a-service layer of the repository:
// a job queue, a canonical-instance result cache and cancellable search
// execution behind an HTTP/JSON API (cmd/nocd).
//
// One Server owns a bounded par.Pool of compute workers, a bounded
// submission queue with explicit backpressure (full queue = rejected
// submission, HTTP 429), and an LRU cache keyed by the canonical content
// hash of the resolved instance (Instance.Key, built on
// model.CDCG.Hash). Identical instances are deduplicated at every stage:
// a submission matching a cached key completes instantly from the cache;
// one matching an in-flight computation attaches to it as a follower and
// shares the single compute. Because search results are deterministic
// under a fixed seed and Result contains no wall-clock state, all three
// paths serve byte-identical result JSON.
//
// Cancellation runs on context.Context threaded through core.Explore
// into every search engine; progress streams out of the same plumbing
// via search.ProgressFunc into per-job event subscriptions.
//
// Observability rides internal/obs: a Prometheus-text metric registry
// (Registry) over the server's atomic counters, engine-labeled search
// telemetry folded from progress snapshots into each job's status
// telemetry block, per-phase spans timed on the Config.Now clock seam,
// structured slog lifecycle logs, and X-Request-ID propagation from the
// HTTP middleware through job status, SSE events and every log line.
// Telemetry is strictly observational — it lives in the status
// envelope, never in the cache-keyed Result, so replayed results stay
// byte-identical.
//
// Job computes inherit the evaluator fast paths of core.Explore: CWM
// jobs price candidate swaps incrementally (search.DeltaObjective), and
// CDCM jobs run the allocation-free wormhole scratch lanes — one shared
// immutable simulator core per job, one wormhole.Scratch per search
// worker (core.CDCM.Clone) — so a daemon under load allocates almost
// nothing per evaluated mapping.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/search"
)

// Errors the HTTP layer maps to status codes (ErrBadRequest lives in
// request.go).
var (
	// ErrQueueFull reports that the bounded job queue refused a
	// submission — backpressure, HTTP 429.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown reports a submission during drain — HTTP 503.
	ErrShuttingDown = errors.New("service: shutting down")
)

// Config sizes a Server. Zero values pick daemon defaults.
type Config struct {
	// Workers is the compute-pool size (0 = one per logical CPU).
	Workers int
	// QueueSize bounds jobs submitted but not yet started (0 = 64).
	QueueSize int
	// CacheSize bounds the result LRU in entries (0 = 256).
	CacheSize int
	// MaxJobs bounds retained job records; once exceeded, the oldest
	// terminal jobs are forgotten (0 = 4096). Active jobs are never
	// evicted.
	MaxJobs int
	// Now is the server's time source (nil = time.Now). Every timestamp
	// the service records — submission, start, finish, elapsed-time
	// snapshots of running jobs, phase spans, access-log durations —
	// reads this clock, so tests inject a fake and observe deterministic
	// wall-clock fields.
	Now func() time.Time
	// Logger receives the server's structured logs: HTTP access lines
	// and job lifecycle events, each carrying the request ID. Nil
	// discards them.
	Logger *slog.Logger
}

type metrics struct {
	submitted, rejected             atomic.Int64
	completed, failed, canceled     atomic.Int64
	cacheHits, cacheMisses, compute atomic.Int64
	// dedups counts submissions attached to an in-flight identical
	// computation (a subset of cacheHits, which has always covered both
	// cache and dedup hits).
	dedups atomic.Int64
}

// Server is the mapping service: submit with Submit, look up with Job,
// stop with Shutdown. The HTTP API in http.go is a thin layer over these
// methods, so in-process callers (tests, benchmarks, future batch
// front-ends) get the same semantics as network clients.
type Server struct {
	pool       *par.Pool
	cache      *lruCache
	baseCtx    context.Context
	baseCancel context.CancelFunc
	maxJobs    int
	now        func() time.Time
	log        *slog.Logger

	// Observability (see obs.go for the registry wiring). Everything
	// here is updated with lock-free atomics only; code holding s.mu
	// must never touch the registry or its vectors (the scrape path
	// takes registry locks and then, in gauge closures, s.mu — so the
	// reverse order would deadlock).
	reg             *obs.Registry
	httpRequests    *obs.CounterVec
	jobDuration     *obs.HistogramVec
	searchEvals     *obs.CounterVec
	searchExact     *obs.CounterVec
	searchSkips     *obs.CounterVec
	searchSurrogate *obs.CounterVec
	searchAccepted  *obs.CounterVec
	searchRejected  *obs.CounterVec
	searchRestarts  *obs.CounterVec
	sseSubs         *obs.Gauge
	evals           *obs.Counter

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[string]*Job
	order    []string // submission order, for bounded retention
	inflight map[string]*Job
	m        metrics
}

// New builds and starts a Server.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers == 0 {
		workers = par.DefaultWorkers()
	}
	queue := cfg.QueueSize
	if queue == 0 {
		queue = 64
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	maxJobs := cfg.MaxJobs
	if maxJobs == 0 {
		maxJobs = 4096
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		pool:       par.NewPool(workers, queue),
		cache:      newLRU(cacheSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		maxJobs:    maxJobs,
		now:        now,
		log:        log,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
	s.initObs()
	return s
}

// Submit resolves, keys and enqueues one request. It returns the created
// job, which is already terminal on a cache hit. Errors: ErrBadRequest
// (invalid request), ErrQueueFull (backpressure), ErrShuttingDown.
func (s *Server) Submit(req *Request) (*Job, error) {
	return s.submit(req, "")
}

// submit is Submit with the originating request ID attached; the HTTP
// layer passes the X-Request-ID it accepted or minted. Lifecycle logs
// are emitted here, after s.mu is released.
func (s *Server) submit(req *Request, requestID string) (*Job, error) {
	in, err := req.Resolve()
	if err != nil {
		s.log.Warn("job rejected", "reason", "bad request", "error", err.Error(), "request_id", requestID)
		return nil, err
	}
	key := in.Key()

	j, outcome, err := s.enqueue(in, key, requestID)
	if err != nil {
		s.log.Warn("job rejected", "reason", outcome, "key", key, "request_id", requestID)
		return nil, err
	}
	s.log.Info("job submitted", "job_id", j.ID, "outcome", outcome, "key", key,
		"strategy", in.Strategy.String(), "request_id", requestID)
	return j, nil
}

// enqueue is the locked section of submit: it classifies the submission
// as cache_hit, dedup or queued and does the matching bookkeeping. Only
// lock-free atomics are touched under s.mu (see the Server lock rule).
func (s *Server) enqueue(in *Instance, key, requestID string) (*Job, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.rejected.Add(1)
		return nil, "shutting down", ErrShuttingDown
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j-%06d", s.nextID), key, requestID, in, s.now)

	if raw, ok := s.cache.Get(key); ok {
		s.m.submitted.Add(1)
		s.m.cacheHits.Add(1)
		s.retain(j)
		j.finish(raw, nil, true, s.now())
		s.m.completed.Add(1)
		return j, "cache_hit", nil
	}
	if leader, ok := s.inflight[key]; ok {
		// Attach to the in-flight computation: one compute, N results.
		s.m.submitted.Add(1)
		s.m.cacheHits.Add(1)
		s.m.dedups.Add(1)
		j.leader = leader
		leader.followers = append(leader.followers, j)
		s.retain(j)
		return j, "dedup", nil
	}

	if !s.pool.TrySubmit(func() { s.runJob(j) }) {
		s.m.rejected.Add(1)
		return nil, "queue full", ErrQueueFull
	}
	s.m.submitted.Add(1)
	s.m.cacheMisses.Add(1)
	s.inflight[key] = j
	s.retain(j)
	return j, "queued", nil
}

// retain records a job and evicts the oldest terminal records beyond
// MaxJobs. Active jobs are never evicted: the scan skips over them to
// the oldest terminal record, so a long-running job at the head cannot
// pin an unbounded tail of finished records behind it. Caller holds
// s.mu.
func (s *Server) retain(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	overflow := len(s.order) - s.maxJobs
	if overflow <= 0 {
		return
	}
	var active []string
	i := 0
	for ; i < len(s.order) && overflow > 0; i++ {
		id := s.order[i]
		old, ok := s.jobs[id]
		if !ok {
			overflow--
			continue
		}
		if old.Status().State.Terminal() {
			delete(s.jobs, id)
			overflow--
		} else {
			active = append(active, id)
		}
	}
	s.order = append(active, s.order[i:]...)
}

// Job returns a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: a queued job is finished as
// canceled before it ever computes, a running job's context is canceled
// and the search engines stop at their next poll, and a follower is
// detached without disturbing the shared computation. Canceling a
// terminal job is a no-op. The second return reports whether the job
// exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	if j.leader != nil {
		// Detach the follower; the leader's compute (and its other
		// followers) continue undisturbed.
		l := j.leader
		for i, f := range l.followers {
			if f == j {
				l.followers = append(l.followers[:i], l.followers[i+1:]...)
				break
			}
		}
		j.leader = nil
		s.mu.Unlock()
		if j.finish(nil, context.Canceled, false, s.now()) {
			s.m.canceled.Add(1)
		}
		return j, true
	}
	// Leader (or sole) job: remove it from the in-flight index so new
	// identical submissions start a fresh compute, then cancel.
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	for _, f := range followers {
		f.leader = nil
	}
	s.mu.Unlock()

	j.requestCancel()
	if j.Status().State == StateQueued {
		// The pool has not reached it yet; finish now so the caller sees
		// a terminal state immediately. runJob's later start() fails and
		// its finish is a no-op.
		if j.finish(nil, context.Canceled, false, s.now()) {
			s.m.canceled.Add(1)
		}
	}
	// The shared computation is gone; followers cancel with it.
	for _, f := range followers {
		if f.finish(nil, fmt.Errorf("%w (shared computation canceled)", context.Canceled), false, s.now()) {
			s.m.canceled.Add(1)
		}
	}
	return j, true
}

// runJob executes one leader job on a pool worker.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel, s.now()) {
		// Canceled while queued; Cancel normally finished it already, so
		// this finish is usually a no-op.
		if j.finish(nil, context.Canceled, false, s.now()) {
			s.m.canceled.Add(1)
		}
		return
	}
	s.m.compute.Add(1)
	s.log.Info("job started", "job_id", j.ID, "strategy", j.in.Strategy.String(),
		"request_id", j.requestID)
	onProgress := func(p search.Progress) {
		d := j.publishProgress(p)
		// Engine-labeled counters take the snapshot's own engine name:
		// with a multi-engine future (portfolios) the label follows the
		// emitter, not the job.
		s.searchEvals.With(p.Engine).Add(d.evals)
		s.searchExact.With(p.Engine).Add(d.exact)
		s.searchSkips.With(p.Engine).Add(d.skips)
		s.searchSurrogate.With(p.Engine).Add(d.surrogate)
		s.searchAccepted.With(p.Engine).Add(d.accepted)
		s.searchRejected.With(p.Engine).Add(d.rejected)
		if d.newStream {
			s.searchRestarts.With(p.Engine).Inc()
		}
	}
	onPhase := func(name string) { j.markPhase(name, s.now()) }
	res, err := j.in.Explore(ctx, onProgress, onPhase, s.evals)
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(NewResult(j.in, res))
	}
	s.finishLeader(j, raw, err)
}

// finishLeader completes a leader job and everything attached to it, and
// feeds the cache on success.
func (s *Server) finishLeader(j *Job, raw json.RawMessage, err error) {
	now := s.now()
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	for _, f := range followers {
		f.leader = nil
	}
	if err == nil {
		s.cache.Add(j.key, raw)
	}
	s.mu.Unlock()

	if j.finish(raw, err, false, now) {
		s.countFinish(err)
	}
	for _, f := range followers {
		var ferr error
		if err != nil {
			ferr = fmt.Errorf("shared computation: %w", err)
		}
		if f.finish(raw, ferr, true, now) {
			s.countFinish(ferr)
		}
	}

	st := j.Status()
	if st.StartedAt != nil {
		// Job latency by model/strategy, on the server clock seam. Only
		// computed jobs observe: cache hits never start.
		s.jobDuration.With(j.in.Strategy.String()).Observe(now.Sub(*st.StartedAt).Seconds())
	}
	logArgs := []any{"job_id", j.ID, "state", string(st.State),
		"duration_ms", st.ElapsedMS, "followers", len(followers), "request_id", j.requestID}
	if err != nil {
		s.log.Warn("job finished", append(logArgs, "error", err.Error())...)
	} else {
		s.log.Info("job finished", logArgs...)
	}
}

func (s *Server) countFinish(err error) {
	switch {
	case err == nil:
		s.m.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.m.canceled.Add(1)
	default:
		s.m.failed.Add(1)
	}
}

// Shutdown drains the service: new submissions are refused, queued and
// running jobs finish, and the compute pool exits. If ctx expires first,
// the remaining jobs are canceled (they finish promptly as canceled) and
// Shutdown returns ctx.Err() after they do.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel() // cancel in-flight searches; they stop at next poll
		<-done
		return ctx.Err()
	}
}
