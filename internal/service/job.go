package service

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/search"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are transient; the other three are
// terminal and final.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// ProgressJSON is the wire form of a search.Progress snapshot.
type ProgressJSON struct {
	Engine      string `json:"engine"`
	Restart     int    `json:"restart"`
	Step        int    `json:"step"`
	Steps       int    `json:"steps"`
	Evaluations int64  `json:"evaluations"`
	// Two-tier split of Evaluations; see Result for the invariant.
	ExactEvals     int64   `json:"exact_evals"`
	BoundSkips     int64   `json:"bound_skips"`
	SurrogateEvals int64   `json:"surrogate_evals"`
	Accepted       int64   `json:"accepted"`
	Rejected       int64   `json:"rejected"`
	BestCost       float64 `json:"best_cost_j"`
}

// Event is one server-sent event on /v1/jobs/{id}/events.
type Event struct {
	// Type is "progress" or "done".
	Type string `json:"type"`
	// RequestID is the submitting request's ID, carried on every event
	// so a stream consumer can correlate against the daemon's logs.
	RequestID string `json:"request_id,omitempty"`
	// Progress is set on progress events.
	Progress *ProgressJSON `json:"progress,omitempty"`
	// Job is the final status, set on the done event.
	Job *JobStatus `json:"job,omitempty"`
}

// SpansJSON is the per-phase wall-clock breakdown of a computed job,
// measured on the server's clock seam (Config.Now): time spent queued,
// building the evaluators, searching, and pricing the winner. It is
// attached once the job is terminal; it lives in the status envelope,
// never in the cache-keyed Result.
type SpansJSON struct {
	QueuedMS float64 `json:"queued_ms"`
	BuildMS  float64 `json:"build_ms"`
	SearchMS float64 `json:"search_ms"`
	PriceMS  float64 `json:"price_ms"`
}

// EngineTelemetryJSON aggregates one engine's search telemetry across
// its restarts/shards: totals of the final Progress snapshot per stream.
type EngineTelemetryJSON struct {
	Engine      string `json:"engine"`
	Restarts    int    `json:"restarts"`
	Snapshots   int64  `json:"snapshots"`
	Evaluations int64  `json:"evaluations"`
	// Two-tier split of Evaluations; see Result for the invariant.
	ExactEvals     int64   `json:"exact_evals"`
	BoundSkips     int64   `json:"bound_skips"`
	SurrogateEvals int64   `json:"surrogate_evals"`
	Accepted       int64   `json:"accepted"`
	Rejected       int64   `json:"rejected"`
	BestCost       float64 `json:"best_cost_j"`
}

// TelemetryJSON is the observability block of a computed job's status:
// phase spans plus per-engine search telemetry. Cache-hit and
// deduplicated jobs have none (nothing was computed for them), which is
// also what keeps their result bytes identical to the original compute.
type TelemetryJSON struct {
	Spans   *SpansJSON            `json:"spans,omitempty"`
	Engines []EngineTelemetryJSON `json:"engines,omitempty"`
}

// JobStatus is the wire form of a job — the body of POST/GET/DELETE
// /v1/jobs responses. Result is raw pre-encoded bytes so identical
// instances serve byte-identical result JSON whether computed, cached or
// deduplicated.
type JobStatus struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	Key         string          `json:"key"`
	RequestID   string          `json:"request_id,omitempty"`
	CacheHit    bool            `json:"cache_hit"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Progress    *ProgressJSON   `json:"progress,omitempty"`
	Telemetry   *TelemetryJSON  `json:"telemetry,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// Job is one submitted mapping instance tracked by the Server.
//
// Locking: Job.mu guards every mutable field below it. The Server's
// bookkeeping (inflight map, follower/leader links) is guarded by
// Server.mu, and the lock order is always Server.mu before Job.mu.
type Job struct {
	// Immutable after creation.
	ID  string
	key string
	in  *Instance
	// requestID is the submitting request's X-Request-ID (empty for
	// in-process submissions without one); it rides on the job status
	// and on every SSE event so clients can correlate with the logs.
	requestID string
	// clock is the server's time source (the Server.now seam), so status
	// snapshots of fake-clocked servers report fake elapsed times too.
	clock func() time.Time

	mu        sync.Mutex
	state     State
	cacheHit  bool
	canceling bool // cancel requested; runJob turns it into StateCanceled
	cancel    context.CancelFunc
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  *ProgressJSON
	phases    map[string]time.Time
	streams   map[streamKey]*streamStats
	result    json.RawMessage
	errMsg    string
	done      chan struct{}
	subs      map[chan Event]struct{}

	// Guarded by Server.mu, not Job.mu (see Server).
	leader    *Job
	followers []*Job
}

// streamKey identifies one telemetry stream: each (engine, restart)
// pair emits cumulative Progress snapshots from a single worker lane.
type streamKey struct {
	engine  string
	restart int
}

// streamStats is the per-stream aggregation state: the latest
// cumulative snapshot and how many snapshots arrived.
type streamStats struct {
	last  search.Progress
	snaps int64
}

// progressDelta is what one snapshot added over the previous one on its
// stream — the increments the server folds into its engine-labeled
// counters.
type progressDelta struct {
	evals, accepted, rejected int64
	exact, skips, surrogate   int64
	newStream                 bool
}

func newJob(id, key, requestID string, in *Instance, clock func() time.Time) *Job {
	if clock == nil {
		clock = time.Now
	}
	return &Job{
		ID:        id,
		key:       key,
		in:        in,
		requestID: requestID,
		clock:     clock,
		state:     StateQueued,
		submitted: clock(),
		done:      make(chan struct{}),
		subs:      make(map[chan Event]struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal and returns its final status.
func (j *Job) Wait() JobStatus {
	<-j.done
	return j.Status()
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Key:         j.key,
		RequestID:   j.requestID,
		CacheHit:    j.cacheHit,
		SubmittedAt: j.submitted,
		Progress:    j.progress,
		Telemetry:   j.telemetryLocked(),
		Result:      j.result,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
		end := j.finished
		if end.IsZero() {
			// Still running: measure against the server clock seam, not the
			// wall clock, so fake-clocked tests see consistent elapsed times.
			end = j.clock()
		}
		st.ElapsedMS = float64(end.Sub(j.started).Nanoseconds()) / 1e6
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// telemetryLocked assembles the status telemetry block. Caller holds
// j.mu. Spans appear once the job is terminal and all three phase marks
// exist (i.e. it actually computed); engine aggregates appear as soon as
// snapshots arrive, so a running job's status already reports them.
func (j *Job) telemetryLocked() *TelemetryJSON {
	var tel TelemetryJSON
	if j.state.Terminal() && !j.started.IsZero() && !j.finished.IsZero() {
		build, bok := j.phases["build"]
		srch, sok := j.phases["search"]
		price, pok := j.phases["price"]
		if bok && sok && pok {
			tel.Spans = &SpansJSON{
				QueuedMS: durMS(j.submitted, j.started),
				BuildMS:  durMS(build, srch),
				SearchMS: durMS(srch, price),
				PriceMS:  durMS(price, j.finished),
			}
		}
	}
	if len(j.streams) > 0 {
		agg := make(map[string]*EngineTelemetryJSON, len(j.streams))
		//nocvet:ignore per-engine sums and minima are commutative, and the output is sorted below
		for k, st := range j.streams {
			e := agg[k.engine]
			if e == nil {
				e = &EngineTelemetryJSON{Engine: k.engine, BestCost: st.last.BestCost}
				agg[k.engine] = e
			}
			e.Restarts++
			e.Snapshots += st.snaps
			e.Evaluations += st.last.Evaluations
			e.ExactEvals += st.last.ExactEvals
			e.BoundSkips += st.last.BoundSkips
			e.SurrogateEvals += st.last.SurrogateEvals
			e.Accepted += st.last.Accepted
			e.Rejected += st.last.Rejected
			if st.last.BestCost < e.BestCost {
				e.BestCost = st.last.BestCost
			}
		}
		tel.Engines = make([]EngineTelemetryJSON, 0, len(agg))
		//nocvet:ignore collected into a slice and sorted before use
		for _, e := range agg {
			tel.Engines = append(tel.Engines, *e)
		}
		sort.Slice(tel.Engines, func(a, b int) bool { return tel.Engines[a].Engine < tel.Engines[b].Engine })
	}
	if tel.Spans == nil && len(tel.Engines) == 0 {
		return nil
	}
	return &tel
}

func durMS(from, to time.Time) float64 {
	return float64(to.Sub(from).Nanoseconds()) / 1e6
}

// markPhase records the first time a named exploration phase began;
// repeats (there are none today) keep the earliest mark.
func (j *Job) markPhase(name string, t time.Time) {
	j.mu.Lock()
	if j.phases == nil {
		j.phases = make(map[string]time.Time, 3)
	}
	if _, ok := j.phases[name]; !ok {
		j.phases[name] = t
	}
	j.mu.Unlock()
}

// start transitions queued -> running and records the cancel function.
// It reports false when cancellation was requested first, in which case
// the caller must not compute.
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceling || j.state.Terminal() {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return true
}

// requestCancel marks the job for cancellation and interrupts a running
// compute. It reports whether the request took effect (false once the
// job is already terminal or already canceling).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.canceling {
		return false
	}
	j.canceling = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// finish moves the job to its terminal state and reports whether this
// call made the transition. Idempotent: only the first call takes effect
// (a job canceled while queued is finished by Cancel and again,
// harmlessly, when the pool reaches it), so callers count metrics off
// the return value.
func (j *Job) finish(result json.RawMessage, err error, cacheHit bool, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = result
		j.cacheHit = cacheHit
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.finished = now
	subs := make([]chan Event, 0, len(j.subs))
	//nocvet:ignore every subscriber gets the same event and delivery is non-blocking, so fan-out order is unobservable
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()

	// Subscribers learn the terminal state from Done() (the event stream
	// selects on it), so the done event here is best-effort.
	ev := Event{Type: "done", RequestID: j.requestID}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
	close(j.done)
	return true
}

// publishProgress records a search snapshot, folds it into the per-job
// telemetry streams, and fans it out to event subscribers. It returns
// what the snapshot added over its stream's previous one, so the server
// can bump its engine-labeled counters without re-deriving the deltas.
// Called concurrently from parallel search lanes; events are dropped
// (never blocking) when a subscriber's buffer is full — progress events
// are snapshots, so losing an intermediate one is harmless.
func (j *Job) publishProgress(p search.Progress) progressDelta {
	pj := &ProgressJSON{
		Engine:         p.Engine,
		Restart:        p.Restart,
		Step:           p.Step,
		Steps:          p.Steps,
		Evaluations:    p.Evaluations,
		ExactEvals:     p.ExactEvals,
		BoundSkips:     p.BoundSkips,
		SurrogateEvals: p.SurrogateEvals,
		Accepted:       p.Accepted,
		Rejected:       p.Rejected,
		BestCost:       p.BestCost,
	}
	var d progressDelta
	j.mu.Lock()
	j.progress = pj
	if j.streams == nil {
		j.streams = make(map[streamKey]*streamStats)
	}
	k := streamKey{p.Engine, p.Restart}
	st, ok := j.streams[k]
	if !ok {
		st = &streamStats{}
		j.streams[k] = st
		d.newStream = true
	}
	// Snapshots are cumulative per stream; clamp protects the counters
	// against a regressing engine rather than trusting it blindly.
	d.evals = max(p.Evaluations-st.last.Evaluations, 0)
	d.exact = max(p.ExactEvals-st.last.ExactEvals, 0)
	d.skips = max(p.BoundSkips-st.last.BoundSkips, 0)
	d.surrogate = max(p.SurrogateEvals-st.last.SurrogateEvals, 0)
	d.accepted = max(p.Accepted-st.last.Accepted, 0)
	d.rejected = max(p.Rejected-st.last.Rejected, 0)
	st.last = p
	st.snaps++
	subs := make([]chan Event, 0, len(j.subs))
	//nocvet:ignore every subscriber gets the same event and delivery is non-blocking, so fan-out order is unobservable
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	ev := Event{Type: "progress", RequestID: j.requestID, Progress: pj}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
	return d
}

// subscribe attaches an event channel; the caller must unsubscribe it.
func (j *Job) subscribe() chan Event {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}
