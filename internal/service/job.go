package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/search"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are transient; the other three are
// terminal and final.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// ProgressJSON is the wire form of a search.Progress snapshot.
type ProgressJSON struct {
	Engine      string  `json:"engine"`
	Restart     int     `json:"restart"`
	Step        int     `json:"step"`
	Steps       int     `json:"steps"`
	Evaluations int64   `json:"evaluations"`
	BestCost    float64 `json:"best_cost_j"`
}

// Event is one server-sent event on /v1/jobs/{id}/events.
type Event struct {
	// Type is "progress" or "done".
	Type string `json:"type"`
	// Progress is set on progress events.
	Progress *ProgressJSON `json:"progress,omitempty"`
	// Job is the final status, set on the done event.
	Job *JobStatus `json:"job,omitempty"`
}

// JobStatus is the wire form of a job — the body of POST/GET/DELETE
// /v1/jobs responses. Result is raw pre-encoded bytes so identical
// instances serve byte-identical result JSON whether computed, cached or
// deduplicated.
type JobStatus struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	Key         string          `json:"key"`
	CacheHit    bool            `json:"cache_hit"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Progress    *ProgressJSON   `json:"progress,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// Job is one submitted mapping instance tracked by the Server.
//
// Locking: Job.mu guards every mutable field below it. The Server's
// bookkeeping (inflight map, follower/leader links) is guarded by
// Server.mu, and the lock order is always Server.mu before Job.mu.
type Job struct {
	// Immutable after creation.
	ID  string
	key string
	in  *Instance
	// clock is the server's time source (the Server.now seam), so status
	// snapshots of fake-clocked servers report fake elapsed times too.
	clock func() time.Time

	mu        sync.Mutex
	state     State
	cacheHit  bool
	canceling bool // cancel requested; runJob turns it into StateCanceled
	cancel    context.CancelFunc
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  *ProgressJSON
	result    json.RawMessage
	errMsg    string
	done      chan struct{}
	subs      map[chan Event]struct{}

	// Guarded by Server.mu, not Job.mu (see Server).
	leader    *Job
	followers []*Job
}

func newJob(id, key string, in *Instance, clock func() time.Time) *Job {
	if clock == nil {
		clock = time.Now
	}
	return &Job{
		ID:        id,
		key:       key,
		in:        in,
		clock:     clock,
		state:     StateQueued,
		submitted: clock(),
		done:      make(chan struct{}),
		subs:      make(map[chan Event]struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal and returns its final status.
func (j *Job) Wait() JobStatus {
	<-j.done
	return j.Status()
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Key:         j.key,
		CacheHit:    j.cacheHit,
		SubmittedAt: j.submitted,
		Progress:    j.progress,
		Result:      j.result,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
		end := j.finished
		if end.IsZero() {
			// Still running: measure against the server clock seam, not the
			// wall clock, so fake-clocked tests see consistent elapsed times.
			end = j.clock()
		}
		st.ElapsedMS = float64(end.Sub(j.started).Nanoseconds()) / 1e6
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// start transitions queued -> running and records the cancel function.
// It reports false when cancellation was requested first, in which case
// the caller must not compute.
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceling || j.state.Terminal() {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return true
}

// requestCancel marks the job for cancellation and interrupts a running
// compute. It reports whether the request took effect (false once the
// job is already terminal or already canceling).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.canceling {
		return false
	}
	j.canceling = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// finish moves the job to its terminal state and reports whether this
// call made the transition. Idempotent: only the first call takes effect
// (a job canceled while queued is finished by Cancel and again,
// harmlessly, when the pool reaches it), so callers count metrics off
// the return value.
func (j *Job) finish(result json.RawMessage, err error, cacheHit bool, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = result
		j.cacheHit = cacheHit
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.finished = now
	subs := make([]chan Event, 0, len(j.subs))
	//nocvet:ignore every subscriber gets the same event and delivery is non-blocking, so fan-out order is unobservable
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()

	// Subscribers learn the terminal state from Done() (the event stream
	// selects on it), so the done event here is best-effort.
	ev := Event{Type: "done"}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
	close(j.done)
	return true
}

// publishProgress records a search snapshot and fans it out to event
// subscribers. Called concurrently from parallel search lanes; dropped
// (never blocking) when a subscriber's buffer is full — progress events
// are snapshots, so losing an intermediate one is harmless.
func (j *Job) publishProgress(p search.Progress) {
	pj := &ProgressJSON{
		Engine:      p.Engine,
		Restart:     p.Restart,
		Step:        p.Step,
		Steps:       p.Steps,
		Evaluations: p.Evaluations,
		BestCost:    p.BestCost,
	}
	j.mu.Lock()
	j.progress = pj
	subs := make([]chan Event, 0, len(j.subs))
	//nocvet:ignore every subscriber gets the same event and delivery is non-blocking, so fan-out order is unobservable
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	ev := Event{Type: "progress", Progress: pj}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe attaches an event channel; the caller must unsubscribe it.
func (j *Job) subscribe() chan Event {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}
