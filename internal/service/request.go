package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/topology"

	"context"
)

// ErrBadRequest wraps every request-validation failure; the HTTP layer
// maps it to 400.
var ErrBadRequest = errors.New("service: bad request")

func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Request is one mapping job as submitted to POST /v1/jobs. The zero
// value of every optional field selects the same default the nocmap CLI
// uses, and defaults are normalised before the cache key is computed, so
// an explicit `"model":"cdcm"` and an omitted model land on the same key.
type Request struct {
	// App is the CDCG to map (the same JSON schema cmd/nocgen emits).
	// Exactly one of App and Demo must be set.
	App *model.CDCG `json:"app,omitempty"`
	// Demo substitutes the paper's Figure-1 example application —
	// convenient for smoke tests.
	Demo bool `json:"demo,omitempty"`

	// Mesh is the grid spec "WxH" or "WxHxD"; empty auto-sizes the
	// smallest near-square grid fitting the cores (over Depth layers
	// when Depth is set).
	Mesh string `json:"mesh,omitempty"`
	// Topology is "mesh" (default) or "torus".
	Topology string `json:"topology,omitempty"`
	// Depth stacks a planar Mesh into this many layers.
	Depth int `json:"depth,omitempty"`
	// Routing is "xy" (default), "yx", "xyz", "zyx" or "fa"
	// (fault-aware: XY on intact pairs, turn-restricted detours around a
	// configured fault set).
	Routing string `json:"routing,omitempty"`
	// FlitBits is the link width in bits per flit (default 1).
	FlitBits int `json:"flit_bits,omitempty"`
	// Tech is "0.35um", "0.07um" (default) or "paper".
	Tech string `json:"tech,omitempty"`

	// Model is the mapping strategy: "cwm", "cdcm" (default), "pareto"
	// (multi-objective exploration over the CDCM components) or
	// "resilience" (fault-degradation objective; needs a fault set).
	Model string `json:"model,omitempty"`
	// Method is the search engine: "sa" (default), "es", "random",
	// "hill" or "tabu". The pareto model has exactly one engine (the
	// archived weight-swept annealer) and ignores Method.
	Method string `json:"method,omitempty"`
	// Seed drives every stochastic engine deterministically.
	Seed int64 `json:"seed,omitempty"`
	// Restarts runs SA as a deterministic multi-restart (default 1).
	Restarts int `json:"restarts,omitempty"`
	// Workers bounds the goroutines of one job's search. It is a pure
	// wall-clock lever — results are bit-identical for every value — and
	// is therefore the one knob excluded from the cache key. Default 1:
	// the daemon's cross-job pool is the concurrency source.
	Workers int `json:"workers,omitempty"`

	// Engine tuning, 0 = engine default; all of these shape results and
	// are part of the cache key.
	TempSteps    int     `json:"temp_steps,omitempty"`
	MovesPerTemp int     `json:"moves_per_temp,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	StallSteps   int     `json:"stall_steps,omitempty"`
	Reheats      int     `json:"reheats,omitempty"`
	Samples      int     `json:"samples,omitempty"`
	ESLimit      int64   `json:"es_limit,omitempty"`
	ESAnchor     bool    `json:"es_anchor,omitempty"`
	// FrontSize bounds the Pareto front of model "pareto" (0 = engine
	// default); ignored by the scalar models.
	FrontSize int `json:"front_size,omitempty"`
	// GreedySeed warm-starts the engine with the deterministic
	// highest-traffic-first constructive placement instead of a random
	// mapping (mapping.SeedGreedy).
	GreedySeed bool `json:"greedy_seed,omitempty"`

	// Surrogate enables the tier-B calibrated surrogate for the Metropolis
	// engines (model "cdcm" with method "sa", and the intact "pareto"
	// model): candidates are priced on an analytic predictor fitted
	// against exact simulations at build time, with every reported result
	// exact-repriced (core.Options.Surrogate). Deterministic under the
	// job's seed but not bit-identical to a surrogate-free run, so it is
	// part of the cache key. Ignored — bit for bit — by the engines that
	// cannot use it.
	Surrogate bool `json:"surrogate,omitempty"`
	// SurrogateSamples is the surrogate's calibration budget in exact
	// simulations (0 = core.DefaultSurrogateSamples); meaningful only
	// with Surrogate.
	SurrogateSamples int `json:"surrogate_samples,omitempty"`

	// FaultSet enumerates explicit failed NoC elements; FaultRate/
	// FaultSeed instead draw a deterministic random fault set
	// (topology.GenerateFaults — every bidirectional link pair fails with
	// probability FaultRate under FaultSeed). The two forms are mutually
	// exclusive. A non-empty resolved fault set makes every model attach a
	// resilience score for its winner, is required by model "resilience",
	// and switches model "pareto" to the resilience axes; the resolved
	// set's canonical form is part of the cache key. Omitting both is the
	// intact behaviour, bit for bit.
	FaultSet  *FaultSetJSON `json:"fault_set,omitempty"`
	FaultRate float64       `json:"fault_rate,omitempty"`
	FaultSeed int64         `json:"fault_seed,omitempty"`
}

// FaultSetJSON is the explicit fault enumeration of a request: failed
// bidirectional links and TSVs as [from, to] tile pairs, failed routers
// as tile IDs (all 0-based, the numbering of the result's mapping).
type FaultSetJSON struct {
	Links   [][2]int `json:"links,omitempty"`
	Routers []int    `json:"routers,omitempty"`
	TSVs    [][2]int `json:"tsvs,omitempty"`
}

// Instance is a fully resolved, validated Request: the form the daemon
// queues, keys its cache on, and executes. The nocmap CLI resolves its
// flags through the same type, which is what keeps CLI and daemon output
// schema-identical.
type Instance struct {
	G        *model.CDCG
	Mesh     *topology.Mesh
	Cfg      noc.Config
	Tech     energy.Tech
	Strategy core.Strategy
	Method   core.Method
	Opts     core.Options
}

// Resolve validates the request, fills in defaults and builds the
// runnable Instance. All failures wrap ErrBadRequest.
func (r *Request) Resolve() (*Instance, error) {
	g := r.App
	if r.Demo {
		if g != nil {
			return nil, badRequest("app and demo are mutually exclusive")
		}
		g = model.PaperExampleCDCG()
	}
	if g == nil {
		return nil, badRequest("missing app (or set demo)")
	}
	if err := g.Validate(); err != nil {
		return nil, badRequest("invalid app: %v", err)
	}

	topo := r.Topology
	if topo == "" {
		topo = "mesh"
	}
	mesh, err := ParseMesh(r.Mesh, topo, r.Depth, g.NumCores())
	if err != nil {
		return nil, badRequest("%v", err)
	}

	cfg := noc.Default()
	if r.FlitBits != 0 {
		cfg.FlitBits = r.FlitBits
	}
	routing := r.Routing
	if routing == "" {
		routing = "xy"
	}
	if cfg.Routing, err = topology.ParseRoutingAlgo(routing); err != nil {
		return nil, badRequest("%v", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}

	techName := r.Tech
	if techName == "" {
		techName = "0.07um"
	}
	tech, err := ParseTech(techName)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	modelName := r.Model
	if modelName == "" {
		modelName = "cdcm"
	}
	strategy, err := core.ParseStrategy(modelName)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	methodName := r.Method
	if methodName == "" {
		methodName = "sa"
	}
	method, err := core.ParseMethod(methodName)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	restarts := r.Restarts
	if restarts == 0 {
		restarts = 1
	}
	if restarts < 0 {
		return nil, badRequest("negative restarts %d", restarts)
	}
	if r.Alpha < 0 || r.Alpha >= 1 {
		if r.Alpha != 0 {
			return nil, badRequest("alpha %g outside (0,1)", r.Alpha)
		}
	}
	if r.TempSteps < 0 || r.MovesPerTemp < 0 || r.StallSteps < 0 || r.Reheats < 0 ||
		r.Samples < 0 || r.ESLimit < 0 || r.FrontSize < 0 || r.SurrogateSamples < 0 {
		return nil, badRequest("negative engine tuning value")
	}

	var faults *topology.FaultSet
	switch {
	case r.FaultSet != nil && r.FaultRate != 0:
		return nil, badRequest("fault_set and fault_rate are mutually exclusive")
	case r.FaultSet != nil:
		faults = topology.NewFaultSet(mesh)
		for _, t := range r.FaultSet.Routers {
			if err := faults.FailRouter(topology.TileID(t)); err != nil {
				return nil, badRequest("fault_set: %v", err)
			}
		}
		for _, l := range r.FaultSet.Links {
			if err := faults.FailLink(topology.TileID(l[0]), topology.TileID(l[1])); err != nil {
				return nil, badRequest("fault_set: %v", err)
			}
		}
		for _, l := range r.FaultSet.TSVs {
			if err := faults.FailTSV(topology.TileID(l[0]), topology.TileID(l[1])); err != nil {
				return nil, badRequest("fault_set: %v", err)
			}
		}
	case r.FaultRate != 0:
		if faults, err = topology.GenerateFaults(mesh, r.FaultRate, r.FaultSeed); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	if strategy == core.StrategyResilience && faults.Empty() {
		return nil, badRequest("model resilience needs a non-empty fault set (fault_set, or fault_rate drawing at least one fault)")
	}

	return &Instance{
		G:        g,
		Mesh:     mesh,
		Cfg:      cfg,
		Tech:     tech,
		Strategy: strategy,
		Method:   method,
		Opts: core.Options{
			Method:           method,
			Seed:             r.Seed,
			TempSteps:        r.TempSteps,
			MovesPerTemp:     r.MovesPerTemp,
			Alpha:            r.Alpha,
			StallSteps:       r.StallSteps,
			Reheats:          r.Reheats,
			Samples:          r.Samples,
			ESLimit:          r.ESLimit,
			ESAnchor:         r.ESAnchor,
			FrontSize:        r.FrontSize,
			SeedGreedy:       r.GreedySeed,
			Restarts:         restarts,
			Workers:          r.Workers,
			Surrogate:        r.Surrogate,
			SurrogateSamples: r.SurrogateSamples,
			Faults:           faults,
		},
	}, nil
}

// GridSpec renders the instance's grid as the canonical "WxHxD" string.
func (in *Instance) GridSpec() string {
	return fmt.Sprintf("%dx%dx%d", in.Mesh.W(), in.Mesh.H(), in.Mesh.D())
}

// Key returns the canonical content hash identifying this instance's
// result: it covers the application graph (model.CDCG.Hash), the full
// topology and NoC configuration, the technology coefficients, and every
// search option that shapes the outcome. Workers is deliberately
// excluded — results are bit-identical across worker counts, so a
// 1-worker and an 8-worker submission of the same instance share one
// cache entry.
func (in *Instance) Key() string {
	h := sha256.New()
	io.WriteString(h, "nocd/job/v1\n")
	io.WriteString(h, "app:"+in.G.Hash()+"\n")
	fmt.Fprintf(h, "grid:%s:%s\n", in.GridSpec(), in.Mesh.Kind())
	fmt.Fprintf(h, "noc:flit=%d tr=%d tl=%d tsv=%d clock=%g routing=%s buffers=%s bufflits=%d arb=%t\n",
		in.Cfg.FlitBits, in.Cfg.RoutingCycles, in.Cfg.LinkCycles, in.Cfg.TSVLinkCycles,
		in.Cfg.ClockNS, in.Cfg.Routing, in.Cfg.Buffers, in.Cfg.BufferFlits, in.Cfg.ArbitrateLocal)
	fmt.Fprintf(h, "tech:%s er=%g el=%g ec=%g etsv=%g ps=%g\n",
		in.Tech.Name, in.Tech.ERbit, in.Tech.ELbit, in.Tech.ECbit, in.Tech.ETSVbit, in.Tech.PSRouter)
	o := in.Opts
	fmt.Fprintf(h, "search:model=%s method=%s seed=%d restarts=%d temps=%d moves=%d alpha=%g stall=%d reheats=%d samples=%d eslimit=%d esanchor=%t front=%d greedy=%t\n",
		in.Strategy, in.Method, o.Seed, o.Restarts, o.TempSteps, o.MovesPerTemp,
		o.Alpha, o.StallSteps, o.Reheats, o.Samples, o.ESLimit, o.ESAnchor,
		o.FrontSize, o.SeedGreedy)
	// Tier-B surrogate runs hash an extra line only when the flag is set:
	// a surrogate walk is deterministic but not bit-identical to the
	// surrogate-free walk, so the two must never share a cache entry —
	// while every surrogate-free submission keeps its pre-two-tier key.
	if o.Surrogate {
		samples := o.SurrogateSamples
		if samples == 0 {
			samples = core.DefaultSurrogateSamples
		}
		fmt.Fprintf(h, "surrogate:samples=%d\n", samples)
	}
	// The resolved fault set, in canonical element form: fault_set and
	// fault_rate submissions resolving to the same failed elements share a
	// cache entry, and an empty set hashes exactly like the pre-fault
	// schema so existing keys are unchanged.
	if !o.Faults.Empty() {
		fmt.Fprintf(h, "faults:%s\n", o.Faults.Key())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Explore runs the instance's search under ctx with optional progress,
// phase and evaluation-count reporting and prices the winner —
// core.Explore with the instance's resolved parameters. All three
// observability hooks may be nil; they are observational only, so the
// result is bit-identical either way.
func (in *Instance) Explore(ctx context.Context, onProgress search.ProgressFunc,
	onPhase func(string), evals *obs.Counter) (*core.ExploreResult, error) {
	opts := in.Opts
	opts.Ctx = ctx
	opts.OnProgress = onProgress
	opts.OnPhase = onPhase
	opts.EvalCounter = evals
	return core.Explore(in.Strategy, in.Mesh, in.Cfg, in.Tech, in.G, opts)
}

// ParseTech resolves a technology profile by CLI/API name.
func ParseTech(name string) (energy.Tech, error) {
	switch name {
	case "0.35um":
		return energy.Tech035, nil
	case "0.07um":
		return energy.Tech007, nil
	case "paper":
		return energy.PaperExample(), nil
	}
	return energy.Tech{}, fmt.Errorf("unknown tech %q (want 0.35um, 0.07um or paper)", name)
}

// ParseMesh parses "WxH" or "WxHxD" (optionally stacked deeper by depth
// and wrapped into a torus), or picks the smallest grid fitting the cores
// when spec is empty: near-square layers, spread over depth layers when
// given, so 16 cores at depth 4 auto-size to 2x2x4 rather than a 4x4
// layer replicated 4 times. Shared by the nocmap CLI and the daemon so
// both resolve grid specs identically.
func ParseMesh(spec, topo string, depth, cores int) (*topology.Mesh, error) {
	torus := false
	switch topo {
	case "", "mesh":
	case "torus":
		torus = true
	default:
		return nil, fmt.Errorf("unknown topology %q (want mesh or torus)", topo)
	}
	var w, h, d int
	if spec == "" {
		d = 1
		if depth > 0 {
			d = depth
		}
		perLayer := (cores + d - 1) / d
		w = 1
		for w*w < perLayer {
			w++
		}
		h = w
		for (h-1)*w >= perLayer {
			h--
		}
	} else {
		var err error
		if w, h, d, err = topology.ParseGridSpec(spec); err != nil {
			return nil, err
		}
		if depth > 0 {
			if d > 1 && depth != d {
				return nil, fmt.Errorf("depth %d conflicts with mesh spec %q", depth, spec)
			}
			d = depth
		}
	}
	var mesh *topology.Mesh
	var err error
	if torus {
		mesh, err = topology.NewTorus3D(w, h, d)
	} else {
		mesh, err = topology.NewMesh3D(w, h, d)
	}
	if err != nil {
		return nil, err
	}
	if cores > mesh.NumTiles() {
		return nil, fmt.Errorf("%d cores do not fit on %d tiles (%s)", cores, mesh.NumTiles(), spec)
	}
	return mesh, nil
}
