package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// maxRequestBytes bounds a job submission body; CDCGs are small (the
// paper's biggest benchmark is a few thousand packets), so 8 MiB is
// generous.
const maxRequestBytes = 8 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a Request; 202 (queued) or 200 (cache hit)
//	GET    /v1/jobs/{id}        job status, including the result when done
//	DELETE /v1/jobs/{id}        cancel: queued jobs never compute, running
//	                            searches stop at their next context poll
//	GET    /v1/jobs/{id}/events server-sent events: progress + final done
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
//	                            (?format=json keeps the legacy JSON counters)
//
// Every route runs behind the obs middleware: requests carry an
// X-Request-ID (accepted from the client or minted), responses echo it,
// access lines go to the structured log, and responses count into
// nocd_http_requests_total by status code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return obs.WrapHTTP(mux, obs.HTTPOptions{
		Logger:   s.log,
		Now:      s.now,
		Requests: s.httpRequests,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.submit(&req, obs.RequestID(r.Context()))
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK // served from the cache
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams job progress as server-sent events and closes the
// stream with one final "done" event carrying the terminal status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := j.subscribe()
	defer j.unsubscribe(sub)
	s.sseSubs.Inc()
	defer s.sseSubs.Dec()
	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case ev := <-sub:
			if ev.Type == "done" {
				continue // the Done() arm emits the authoritative final event
			}
			if !writeEvent(ev) {
				return
			}
		case <-j.Done():
			// Drain any progress events that raced the finish, then emit
			// the terminal status and end the stream.
			for drained := false; !drained; {
				select {
				case ev := <-sub:
					if ev.Type != "done" && !writeEvent(ev) {
						return
					}
				default:
					drained = true
				}
			}
			st := j.Status()
			writeEvent(Event{Type: "done", RequestID: j.requestID, Job: &st})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics serves the metric registry as Prometheus text
// exposition (version 0.0.4). The pre-Prometheus JSON counters stay
// available at ?format=json with their historical fixed key order, so
// line-oriented scrapers keep working.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		s.handleMetricsJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.reg.WritePrometheus(w)
}

// handleMetricsJSON is the legacy expvar-style endpoint. Key order is
// fixed so the endpoint is friendly to line-oriented scraping.
func (s *Server) handleMetricsJSON(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{
  "cache_entries": %d,
  "cache_hits": %d,
  "cache_misses": %d,
  "computes": %d,
  "jobs_canceled": %d,
  "jobs_completed": %d,
  "jobs_failed": %d,
  "jobs_queued": %d,
  "jobs_rejected": %d,
  "jobs_running": %d,
  "jobs_submitted": %d
}
`,
		s.cache.Len(),
		s.m.cacheHits.Load(),
		s.m.cacheMisses.Load(),
		s.m.compute.Load(),
		s.m.canceled.Load(),
		s.m.completed.Load(),
		s.m.failed.Load(),
		s.pool.Queued(),
		s.m.rejected.Load(),
		s.pool.Running(),
		s.m.submitted.Load(),
	)
}
