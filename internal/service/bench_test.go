package service

import (
	"context"
	"testing"
)

// benchRequest is a realistic CWM/SA instance: the paper demo on a 3x3
// grid with the default annealing budget.
func benchRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "3x3", Model: "cwm", Method: "sa", Seed: seed}
}

// BenchmarkServiceColdCompute measures an uncached submission end to end
// (resolve, key, queue, search, encode). Each iteration uses a fresh seed
// so the cache never hits.
func BenchmarkServiceColdCompute(b *testing.B) {
	s := New(Config{Workers: 1, QueueSize: 1 << 16, CacheSize: 1 << 16, MaxJobs: 1 << 20})
	defer s.Shutdown(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(benchRequest(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if st := j.Wait(); st.State != StateSucceeded {
			b.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
	}
}

// BenchmarkServiceCacheHit measures the identical submission once the
// result is cached — the daemon's steady state for repeated and
// near-duplicate requests. The gap to ColdCompute is the point of the
// canonical-instance cache.
func BenchmarkServiceCacheHit(b *testing.B) {
	s := New(Config{Workers: 1, QueueSize: 1 << 16, CacheSize: 1 << 16, MaxJobs: 1 << 20})
	defer s.Shutdown(context.Background())
	j, err := s.Submit(benchRequest(1))
	if err != nil {
		b.Fatal(err)
	}
	if st := j.Wait(); st.State != StateSucceeded {
		b.Fatalf("warmup: %s (%s)", st.State, st.Error)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(benchRequest(1))
		if err != nil {
			b.Fatal(err)
		}
		if st := j.Wait(); st.State != StateSucceeded || !st.CacheHit {
			b.Fatalf("iteration %d missed the cache: %s", i, st.State)
		}
	}
}
