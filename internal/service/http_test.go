package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func pollUntil(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s: %d", id, code)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, st := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":7}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if st.ID == "" || st.Key == "" {
		t.Fatalf("empty id/key: %+v", st)
	}
	final := pollUntil(t, ts, st.ID, StateSucceeded)
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if res.Seed != 7 || res.Model != "CWM" || len(res.Mapping) != 4 {
		t.Errorf("result: %+v", res)
	}

	// Resubmission of the identical instance is served from the cache
	// with byte-identical result JSON.
	resp2, st2 := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":7}`)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("cache hit status %d, want 200", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != StateSucceeded {
		t.Errorf("not a cache hit: %+v", st2)
	}
	if !bytes.Equal(final.Result, st2.Result) {
		t.Errorf("cached result differs:\n%s\n%s", final.Result, st2.Result)
	}
}

func TestHTTPBadInputAnd404(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},                                 // no app
		{`{"demo":true,"mesh":"1x1"}`, http.StatusBadRequest},         // does not fit
		{`{"demo":true,"tech":"90nm"}`, http.StatusBadRequest},        // unknown tech
		{`{"demo":true,"method":"simplex"}`, http.StatusBadRequest},   // unknown method
		{`{"demo":true,"mesh":"axb"}`, http.StatusBadRequest},         // bad spec
		{`{"demo":true,"app":{"cores":[]}}`, http.StatusBadRequest},   // app+demo
	}
	for _, tc := range cases {
		resp, _ := postJob(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	if code, _ := getStatus(t, ts, "j-999999"); code != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
	if code, _ := getStatus(t, ts, "j-999999/events"); code != http.StatusNotFound {
		t.Errorf("GET events of unknown job: %d, want 404", code)
	}

	// An oversized body is a size rejection (413), not malformed input.
	huge := `{"demo":true,"mesh":"` + strings.Repeat(" ", maxRequestBytes+1) + `2x2"}`
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"demo":true,"mesh":"3x3","model":"cdcm","method":"sa",
		"temp_steps":1048576,"moves_per_temp":4096,"stall_steps":1048576}`)
	pollUntil(t, ts, st.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	final := pollUntil(t, ts, st.ID, StateCanceled)
	if final.Result != nil {
		t.Error("canceled job carries a result")
	}
}

func TestHTTPQueueFull(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueSize: 1})
	slow := func(seed int) string {
		return fmt.Sprintf(`{"demo":true,"mesh":"3x3","model":"cdcm","seed":%d,
			"temp_steps":1048576,"moves_per_temp":4096,"stall_steps":1048576}`, seed)
	}
	_, st1 := postJob(t, ts, slow(1))
	pollUntil(t, ts, st1.ID, StateRunning)
	_, st2 := postJob(t, ts, slow(2))
	resp, _ := postJob(t, ts, slow(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue: status %d, want 429", resp.StatusCode)
	}
	for _, id := range []string{st2.ID, st1.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestHTTPEventsStream(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	// A few hundred milliseconds of compute with one progress snapshot
	// per temperature step: the stream reliably attaches while the job
	// is still running and sees both event kinds.
	_, st := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cdcm","method":"sa",
		"temp_steps":300,"moves_per_temp":400,"stall_steps":300}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var sawProgress, sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			sawProgress = true
			if ev.Progress == nil || ev.Progress.Engine == "" {
				t.Errorf("empty progress event: %+v", ev)
			}
		case "done":
			sawDone = true
			if ev.Job == nil || !ev.Job.State.Terminal() {
				t.Errorf("done event without terminal job: %+v", ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDone {
		t.Error("stream ended without a done event")
	}
	if !sawProgress {
		t.Error("stream carried no progress events")
	}

	// Subscribing to an already-finished job yields an immediate done.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := readAll(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, `"type":"done"`) {
		t.Errorf("terminal job stream missing done event: %q", body)
	}
}

func readAll(resp *http.Response) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	_, st := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm"}`)
	pollUntil(t, ts, st.ID, StateSucceeded)

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if m["jobs_submitted"] < 1 || m["jobs_completed"] < 1 || m["computes"] < 1 {
		t.Errorf("metrics implausible: %v", m)
	}
	for _, key := range []string{"cache_entries", "cache_hits", "cache_misses",
		"jobs_canceled", "jobs_failed", "jobs_queued", "jobs_rejected", "jobs_running"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

func TestHTTPShuttingDownReturns503(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJob(t, ts, `{"demo":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
}
