package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSurrogateCacheKeyOnlyWhenSet pins the cache-key extension protocol
// (the fault-set precedent): surrogate-free submissions keep their
// pre-two-tier key bytes — with or without a stray surrogate_samples —
// while surrogate runs key on their normalised calibration budget.
func TestSurrogateCacheKeyOnlyWhenSet(t *testing.T) {
	key := func(req *Request) string {
		t.Helper()
		in, err := req.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		return in.Key()
	}
	base := key(&Request{Demo: true, Mesh: "2x2", Seed: 7})
	if got := key(&Request{Demo: true, Mesh: "2x2", Seed: 7, SurrogateSamples: 10}); got != base {
		t.Fatal("surrogate_samples without surrogate changed the cache key")
	}
	surr := key(&Request{Demo: true, Mesh: "2x2", Seed: 7, Surrogate: true})
	if surr == base {
		t.Fatal("surrogate flag did not change the cache key")
	}
	// 0 normalises to the default budget: an explicit default shares the
	// entry, a different budget does not.
	if got := key(&Request{Demo: true, Mesh: "2x2", Seed: 7, Surrogate: true, SurrogateSamples: 24}); got != surr {
		t.Fatal("explicit default surrogate_samples landed on a different key")
	}
	if got := key(&Request{Demo: true, Mesh: "2x2", Seed: 7, Surrogate: true, SurrogateSamples: 10}); got == surr {
		t.Fatal("different surrogate_samples share a cache key")
	}
	if _, err := (&Request{Demo: true, SurrogateSamples: -1}).Resolve(); err == nil {
		t.Fatal("negative surrogate_samples accepted")
	}
}

// TestTierCountersInResultAndTelemetry drives the split evaluation
// counters end to end through the daemon: a hill job reports bound skips
// and a surrogate SA job reports surrogate evaluations, in both the
// cache-keyed result and the per-engine telemetry block, with
// Evaluations = ExactEvals + BoundSkips + SurrogateEvals everywhere, and
// the new Prometheus families exposed on /metrics.
func TestTierCountersInResultAndTelemetry(t *testing.T) {
	_, ts := testServer(t, Config{})

	checkResult := func(st JobStatus) Result {
		t.Helper()
		var res Result
		if err := json.Unmarshal(st.Result, &res); err != nil {
			t.Fatal(err)
		}
		if got := res.ExactEvals + res.BoundSkips + res.SurrogateEvals; got != res.Evaluations {
			t.Fatalf("result counters sum to %d, evaluations is %d: %+v", got, res.Evaluations, res)
		}
		if st.Telemetry == nil || len(st.Telemetry.Engines) == 0 {
			t.Fatalf("computed job has no engine telemetry: %+v", st.Telemetry)
		}
		for _, e := range st.Telemetry.Engines {
			if got := e.ExactEvals + e.BoundSkips + e.SurrogateEvals; got != e.Evaluations {
				t.Fatalf("telemetry counters for %s sum to %d, evaluations is %d", e.Engine, got, e.Evaluations)
			}
		}
		return res
	}

	_, st := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cdcm","method":"hill","seed":11}`)
	hill := checkResult(pollUntil(t, ts, st.ID, StateSucceeded))
	if hill.BoundSkips == 0 {
		t.Fatalf("hill job reports no bound skips: %+v", hill)
	}
	if hill.SurrogateEvals != 0 {
		t.Fatalf("hill job reports surrogate evaluations: %+v", hill)
	}

	_, st = postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cdcm","method":"sa","seed":11,"surrogate":true,"surrogate_samples":8,"temp_steps":10,"moves_per_temp":10}`)
	sa := checkResult(pollUntil(t, ts, st.ID, StateSucceeded))
	if sa.SurrogateEvals == 0 {
		t.Fatalf("surrogate job reports no surrogate evaluations: %+v", sa)
	}
	if sa.ExactEvals == 0 {
		t.Fatalf("surrogate job reports no exact evaluations: %+v", sa)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`nocd_search_exact_evals_total{engine="hill"} `,
		`nocd_search_bound_skips_total{engine="hill"} `,
		`nocd_search_exact_evals_total{engine="SA"} `,
		`nocd_search_surrogate_evals_total{engine="SA"} `,
		"# TYPE nocd_search_exact_evals_total counter",
		"# TYPE nocd_search_bound_skips_total counter",
		"# TYPE nocd_search_surrogate_evals_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSurrogateJobDeterministicAcrossServers pins the replay contract
// for tier-B jobs: two independent daemons computing the same surrogate
// instance serve byte-identical result JSON (nothing host- or
// schedule-dependent leaks into the cache-keyed Result).
func TestSurrogateJobDeterministicAcrossServers(t *testing.T) {
	req := `{"demo":true,"mesh":"2x2","model":"cdcm","method":"sa","seed":5,"surrogate":true,"temp_steps":8,"moves_per_temp":10,"restarts":2,"workers":2}`
	var results [2]json.RawMessage
	for i := range results {
		_, ts := testServer(t, Config{})
		_, st := postJob(t, ts, req)
		results[i] = pollUntil(t, ts, st.ID, StateSucceeded).Result
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("surrogate results differ across servers:\n%s\n%s", results[0], results[1])
	}
}
