package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/search"
)

// fakeClock is a manually advanced time source for the Config.Now seam.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestStatusUsesServerClock is the regression test for the clock seam:
// Job.Status used to read the wall clock directly for the elapsed time
// of a running job, so a fake-clocked server reported real elapsed
// times. Every timestamp must come from Config.Now.
func TestStatusUsesServerClock(t *testing.T) {
	epoch := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	fc := &fakeClock{t: epoch}
	s := New(Config{Workers: 1, Now: fc.Now})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(slowRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if !st.SubmittedAt.Equal(epoch) {
		t.Fatalf("SubmittedAt %v, want fake epoch %v", st.SubmittedAt, epoch)
	}
	waitState(t, j, StateRunning)
	if got := j.Status().ElapsedMS; got != 0 {
		t.Fatalf("running job elapsed %vms before the fake clock moved", got)
	}
	fc.Advance(1500 * time.Millisecond)
	if got := j.Status().ElapsedMS; got != 1500 {
		t.Fatalf("running job elapsed %vms, want 1500 from the fake clock", got)
	}
	if _, ok := s.Cancel(j.ID); !ok {
		t.Fatal("cancel failed")
	}
	waitTerminal(t, j)
	fc.Advance(time.Hour) // once terminal, elapsed is pinned at finish time
	st = j.Status()
	if st.ElapsedMS != 1500 {
		t.Fatalf("terminal job elapsed %vms, want pinned 1500", st.ElapsedMS)
	}
	if st.FinishedAt == nil || !st.FinishedAt.Equal(epoch.Add(1500*time.Millisecond)) {
		t.Fatalf("FinishedAt %v, want fake finish time", st.FinishedAt)
	}
}

// TestCacheCopiesOnBothSides is the regression test for result aliasing:
// the LRU used to store and return the caller's json.RawMessage slice,
// so a caller scribbling on either buffer corrupted every later cache
// hit. Add must copy in; Get must copy out.
func TestCacheCopiesOnBothSides(t *testing.T) {
	c := newLRU(4)
	want := `{"a":1}`
	val := json.RawMessage(want)
	c.Add("k", val)
	val[1] = 'X' // caller mutates its buffer after Add

	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if string(got) != want {
		t.Fatalf("Add aliased the caller's buffer: cached %q", got)
	}
	got[1] = 'Y' // caller mutates what Get handed out
	again, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if string(again) != want {
		t.Fatalf("Get aliased the stored buffer: cached %q", again)
	}
}

// TestEventsSubscribeAfterFinish: attaching to a job that was already
// terminal before the stream existed (here: a cache hit, terminal at
// submission) must deliver the done event promptly — the Done() arm is
// authoritative, not the per-subscriber channel that never saw a finish.
func TestEventsSubscribeAfterFinish(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	_, first := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":4}`)
	pollUntil(t, ts, first.ID, StateSucceeded)
	_, hit := postJob(t, ts, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":4}`)
	if !hit.CacheHit || !hit.State.Terminal() {
		t.Fatalf("resubmission not a terminal cache hit: %+v", hit)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	resp, err := client.Get(ts.URL + "/v1/jobs/" + hit.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("terminal job stream took %v to close", elapsed)
	}
	if !strings.Contains(body, `"type":"done"`) || !strings.Contains(body, `"state":"succeeded"`) {
		t.Fatalf("terminal job stream missing done event: %q", body)
	}
}

// TestEventsDoneSurvivesFullSubscriberBuffer: finish's per-subscriber
// done delivery is best-effort and drops when a subscriber's buffer is
// full; the HTTP stream must still terminate with a done event because
// it selects on Job.Done(). A rogue undrained subscriber must neither
// block the finish nor steal the stream's terminal event.
func TestEventsDoneSurvivesFullSubscriberBuffer(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"demo":true,"mesh":"3x3","model":"cdcm","method":"sa","seed":2,
		"temp_steps":1048576,"moves_per_temp":4096,"stall_steps":1048576}`)
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job not tracked")
	}
	waitState(t, j, StateRunning)

	rogue := j.subscribe() // never drained
	defer j.unsubscribe(rogue)
	for i := 0; i < 3*cap(rogue); i++ {
		j.publishProgress(search.Progress{Engine: "test", Step: i, Steps: 100})
	}
	if len(rogue) != cap(rogue) {
		t.Fatalf("rogue buffer %d/%d not full", len(rogue), cap(rogue))
	}

	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("cancel failed")
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, `"type":"done"`) || !strings.Contains(body, `"state":"canceled"`) {
		t.Fatalf("stream missing authoritative done event: %q", body)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done() not closed after finish")
	}
	// The rogue channel stayed full of progress: the done event was
	// dropped there, never delivered late, never blocked the finish.
	for len(rogue) > 0 {
		if ev := <-rogue; ev.Type == "done" {
			t.Fatal("full subscriber received a done event")
		}
	}
}

func resilienceRequest(seed int64) *Request {
	return &Request{Demo: true, Mesh: "3x3", Model: "resilience", Method: "sa", Seed: seed,
		TempSteps: 8, MovesPerTemp: 10, FaultRate: 0.15, FaultSeed: 2}
}

// TestResilienceJobSchemaAndCache runs the new experiment type end to
// end through the service: a resilience job succeeds, carries the
// degradation report, replays byte-identically from the cache, and the
// fault fields are part of the instance key.
func TestResilienceJobSchemaAndCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j1, err := s.Submit(resilienceRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateSucceeded || st1.CacheHit {
		t.Fatalf("resilience job: %+v", st1)
	}
	var res Result
	if err := json.Unmarshal(st1.Result, &res); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if res.Model != "resilience" {
		t.Fatalf("model = %q", res.Model)
	}
	r := res.Resilience
	if r == nil {
		t.Fatal("resilience job without resilience block")
	}
	if r.FaultSet == "" || len(r.Impacts) == 0 {
		t.Fatalf("degenerate resilience block: %+v", r)
	}
	if r.Score <= 0 || r.Score > 100 {
		t.Fatalf("score %v outside (0,100]", r.Score)
	}
	if r.WorstExecCycles < r.BaseExecCycles {
		t.Fatalf("worst %d < base %d", r.WorstExecCycles, r.BaseExecCycles)
	}
	if len(r.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	for _, imp := range r.Impacts {
		if imp.Element == "" || imp.ExecCycles <= 0 {
			t.Fatalf("malformed impact %+v", imp)
		}
	}

	// Byte-identical cache replay.
	j2, err := s.Submit(resilienceRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateSucceeded || !st2.CacheHit {
		t.Fatalf("resubmission not cached: %+v", st2)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Error("cached resilience result not byte-identical")
	}

	// The fault fields are keyed: a different seed or an explicit set is
	// a different instance.
	reseeded := resilienceRequest(7)
	reseeded.FaultSeed = 5
	explicit := resilienceRequest(7)
	explicit.FaultRate, explicit.FaultSeed = 0, 0
	explicit.FaultSet = &FaultSetJSON{Links: [][2]int{{3, 4}}}
	for name, req := range map[string]*Request{"fault_seed": reseeded, "fault_set": explicit} {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st.CacheHit || st.Key == st1.Key || st.State != StateSucceeded {
			t.Errorf("%s change still hit the cache: %+v", name, st)
		}
	}

	// A CDCM job with the same faults attaches the same-shaped block but
	// keys differently from its intact twin.
	intact := &Request{Demo: true, Mesh: "3x3", Model: "cdcm", Method: "sa", Seed: 7, TempSteps: 8, MovesPerTemp: 10}
	faulted := &Request{Demo: true, Mesh: "3x3", Model: "cdcm", Method: "sa", Seed: 7, TempSteps: 8, MovesPerTemp: 10,
		FaultRate: 0.15, FaultSeed: 2}
	ji, err := s.Submit(intact)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := s.Submit(faulted)
	if err != nil {
		t.Fatal(err)
	}
	sti, stf := waitTerminal(t, ji), waitTerminal(t, jf)
	if sti.Key == stf.Key {
		t.Error("fault fields not part of the instance key")
	}
	if bytes.Contains(sti.Result, []byte(`"resilience"`)) {
		t.Errorf("intact result leaks resilience block: %s", sti.Result)
	}
	if !bytes.Contains(stf.Result, []byte(`"resilience"`)) {
		t.Errorf("faulted cdcm result missing resilience block: %s", stf.Result)
	}
}

// TestFaultRequestValidation pins the service-level fault validation.
func TestFaultRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	cases := map[string]*Request{
		"both forms": {Demo: true, Mesh: "3x3", Model: "cdcm",
			FaultRate: 0.1, FaultSet: &FaultSetJSON{Links: [][2]int{{0, 1}}}},
		"resilience without faults": {Demo: true, Mesh: "3x3", Model: "resilience"},
		"resilience empty draw":     {Demo: true, Mesh: "3x3", Model: "resilience", FaultRate: 0.15, FaultSeed: 3},
		"non-adjacent link":         {Demo: true, Mesh: "3x3", Model: "cdcm", FaultSet: &FaultSetJSON{Links: [][2]int{{0, 5}}}},
		"horizontal tsv":            {Demo: true, Mesh: "3x3", Model: "cdcm", FaultSet: &FaultSetJSON{TSVs: [][2]int{{0, 1}}}},
		"router out of range":       {Demo: true, Mesh: "3x3", Model: "cdcm", FaultSet: &FaultSetJSON{Routers: []int{99}}},
		"rate out of range":         {Demo: true, Mesh: "3x3", Model: "cdcm", FaultRate: 1.5},
	}
	for name, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
