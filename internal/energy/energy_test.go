package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-12*m
}

func TestBitEnergyEquation2(t *testing.T) {
	tech := Tech{ERbit: 1e-12, ELbit: 1e-12}
	// Paper: E→A crosses K=2 routers and one link: 3 pJ per bit; the
	// whole 35-bit communication costs 105 pJ... the paper states 35 pJ
	// per resource set (35 bits × (2 routers + 1 link) × 1 pJ = 105?).
	// Figure 2 annotates τ4=35, τ2=35, link=35 → 3 resources × 35 pJ =
	// 105e-12? No: the paper says "implies 35e-12 J of energy
	// consumption, which is computed in tiles τ4 and τ2, and in the link"
	// — i.e. 35 pJ per resource, 105 pJ total for E→A. BitEnergy(2) must
	// therefore be 3 pJ/bit.
	if got := tech.BitEnergy(2); !almostEq(got, 3e-12) {
		t.Fatalf("BitEnergy(2) = %g, want 3e-12", got)
	}
	if got := tech.BitEnergy(1); !almostEq(got, 1e-12) {
		t.Fatalf("BitEnergy(1) = %g, want 1e-12 (no links)", got)
	}
	if tech.BitEnergy(0) != 0 || tech.BitEnergy(-2) != 0 {
		t.Fatal("BitEnergy of degenerate K must be 0")
	}
	withC := Tech{ERbit: 1e-12, ELbit: 1e-12, ECbit: 0.5e-12}
	if got := withC.BitEnergy(2); !almostEq(got, 4e-12) {
		t.Fatalf("BitEnergy with ECbit = %g, want 4e-12", got)
	}
}

func TestPaperFigure2Energy(t *testing.T) {
	// Figure 2: EDyNoC = 390 pJ for both mappings, from 255 router-bits
	// and 135 link-bits at 1 pJ/bit each.
	tech := PaperExample()
	got := tech.DynamicFromTraffic(255, 135, 240)
	if !almostEq(got, 390e-12) {
		t.Fatalf("EDyNoC = %g, want 390e-12", got)
	}
}

func TestPaperFigure3TotalEnergy(t *testing.T) {
	// Mapping (a): texec=100 ns → ENoC = 390 + 0.1*100 = 400 pJ.
	// Mapping (b): texec=90 ns → 399 pJ.
	tech := PaperExample()
	dyn := tech.DynamicFromTraffic(255, 135, 240)
	ba := Breakdown{Dynamic: dyn, Static: tech.StaticEnergy(4, 100e-9)}
	bb := Breakdown{Dynamic: dyn, Static: tech.StaticEnergy(4, 90e-9)}
	if !almostEq(ba.Total(), 400e-12) {
		t.Fatalf("ENoC(a) = %g, want 400e-12", ba.Total())
	}
	if !almostEq(bb.Total(), 399e-12) {
		t.Fatalf("ENoC(b) = %g, want 399e-12", bb.Total())
	}
	// The paper: "mapping (a) consumes 1% more energy than (b)" — 400/399.
	if ratio := ba.Total() / bb.Total(); math.Abs(ratio-400.0/399.0) > 1e-9 {
		t.Fatalf("energy ratio = %v", ratio)
	}
}

func TestStaticPowerEquation5(t *testing.T) {
	tech := Tech{PSRouter: 2e-6}
	if got := tech.StaticPower(10); !almostEq(got, 20e-6) {
		t.Fatalf("StaticPower = %g", got)
	}
	if tech.StaticPower(0) != 0 || tech.StaticPower(-3) != 0 {
		t.Fatal("degenerate tile counts must give 0")
	}
	if tech.StaticEnergy(10, -1) != 0 {
		t.Fatal("negative time must give 0 static energy")
	}
}

func TestBreakdownShares(t *testing.T) {
	b := Breakdown{Dynamic: 3, Static: 1}
	if !almostEq(b.Total(), 4) || !almostEq(b.StaticShare(), 0.25) {
		t.Fatalf("total=%g share=%g", b.Total(), b.StaticShare())
	}
	var zero Breakdown
	if zero.StaticShare() != 0 {
		t.Fatal("zero breakdown share must be 0")
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, tech := range []Tech{PaperExample(), Tech035, Tech007} {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
	}
	bad := Tech{ERbit: -1}
	if bad.Validate() == nil {
		t.Error("negative coefficient accepted")
	}
}

func TestTechnologyShapes(t *testing.T) {
	// The defining contrast of the evaluation: per-bit dynamic energy
	// shrinks from 0.35µ to 0.07µ while router leakage does not — so the
	// static share grows with scaling.
	if Tech007.ERbit >= Tech035.ERbit || Tech007.ELbit >= Tech035.ELbit {
		t.Fatal("0.07um dynamic energy should be below 0.35um")
	}
	if Tech007.PSRouter < Tech035.PSRouter {
		t.Fatal("0.07um leakage should not shrink")
	}
}

func TestQuickEnergyMonotoneInTraffic(t *testing.T) {
	f := func(rb, lb, cb uint16, extra uint8) bool {
		tech := Tech035
		base := tech.DynamicFromTraffic(int64(rb), int64(lb), int64(cb))
		more := tech.DynamicFromTraffic(int64(rb)+int64(extra), int64(lb), int64(cb))
		return more >= base && base >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStaticMonotoneInTime(t *testing.T) {
	f := func(ns uint32, extra uint16) bool {
		tech := Tech007
		a := tech.StaticEnergy(16, float64(ns)*1e-9)
		b := tech.StaticEnergy(16, (float64(ns)+float64(extra))*1e-9)
		return b >= a && a >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicFromTraffic3D(t *testing.T) {
	tech := Tech{Name: "t", ERbit: 2, ELbit: 3, ECbit: 5, ETSVbit: 1}
	// tsvBits == 0 must reduce to the 2-D formula bit-for-bit.
	if got, want := tech.DynamicFromTraffic3D(7, 4, 0, 2), tech.DynamicFromTraffic(7, 4, 2); got != want {
		t.Fatalf("3D with no TSV traffic = %g, 2D = %g", got, want)
	}
	// 7 router-bits, 4 link-bits of which 3 vertical, 2 core-bits:
	// 7*2 + 1*3 + 3*1 + 2*5 = 30.
	if got := tech.DynamicFromTraffic3D(7, 4, 3, 2); got != 30 {
		t.Fatalf("3D pricing = %g, want 30", got)
	}
	// ETSVbit falls back to ELbit when unset, so 3-D grids stay priced
	// under techs that predate the extension.
	legacy := Tech{Name: "legacy", ERbit: 2, ELbit: 3}
	if legacy.TSVBit() != 3 {
		t.Fatalf("TSVBit fallback = %g, want ELbit 3", legacy.TSVBit())
	}
	if got := legacy.DynamicFromTraffic3D(0, 4, 3, 0); got != 12 {
		t.Fatalf("fallback pricing = %g, want 12", got)
	}
	neg := Tech{Name: "n", ETSVbit: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative ETSVbit accepted")
	}
}
