// Package energy implements the paper's NoC energy model (Section 3.2):
// per-bit dynamic energies (equations (1)-(4)) and static leakage power
// and energy (equations (5), (9), (10)), plus the technology profiles used
// by the evaluation (0.35µm and 0.07µm).
package energy

import (
	"fmt"
)

// Tech is one technology operating point. All energies are in joules, all
// powers in watts.
type Tech struct {
	// Name identifies the profile ("0.35um", "0.07um", ...).
	Name string
	// ERbit is the dynamic energy one bit dissipates traversing a router
	// (wires, buffers and logic gates).
	ERbit float64
	// ELbit is the dynamic energy one bit dissipates on an inter-tile
	// link. The paper assumes square tiles, so the horizontal and
	// vertical components ELHbit and ELVbit collapse to one value.
	ELbit float64
	// ECbit is the dynamic energy one bit dissipates on a core↔router
	// link; the paper treats it as negligible for large tiles (its
	// example sets it to zero).
	ECbit float64
	// ETSVbit is the dynamic energy one bit dissipates on a vertical
	// (through-silicon-via) link of a 3-D topology — the EvBit analogue of
	// the ELHbit/ELVbit split the paper collapses for square 2-D tiles.
	// TSVs are far shorter than planar inter-tile wires, so profiles set
	// it well below ELbit. 0 means "same as ELbit" (see TSVBit), so
	// profiles predating the 3-D extension stay valid; the coefficient
	// only enters pricing when vertical traffic exists, never on 2-D
	// grids.
	ETSVbit float64
	// PSRouter is the static (leakage) power of one router.
	PSRouter float64
}

// TSVBit returns the effective per-bit vertical-link energy: ETSVbit when
// set, ELbit otherwise.
//nocvet:noalloc
func (t Tech) TSVBit() float64 {
	if t.ETSVbit > 0 {
		return t.ETSVbit
	}
	return t.ELbit
}

// Validate checks physical plausibility (non-negative coefficients).
func (t Tech) Validate() error {
	if t.ERbit < 0 || t.ELbit < 0 || t.ECbit < 0 || t.ETSVbit < 0 || t.PSRouter < 0 {
		return fmt.Errorf("energy: negative coefficient in profile %q", t.Name)
	}
	return nil
}

// BitEnergy returns EBit_ij of equation (2): the dynamic energy of one bit
// travelling from tile i to tile j through K routers and K-1 inter-tile
// links, plus the two core↔router hops (the ECbit term of equation (1),
// zero in the paper's example):
//
//	EBit_ij = K*ERbit + (K-1)*ELbit + 2*ECbit
func (t Tech) BitEnergy(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k)*t.ERbit + float64(k-1)*t.ELbit + 2*t.ECbit
}

// DynamicFromTraffic returns EDyNoC (equations (3)/(4)) from traffic
// aggregates: routerBits is Σ w over every (packet, router) traversal,
// linkBits over every (packet, inter-tile link) traversal, and coreBits
// over every (packet, core↔router link) traversal. The simulator and the
// CWM path evaluator both produce exactly these aggregates, which is why
// the two models agree on dynamic energy for a fixed mapping.
//nocvet:noalloc
func (t Tech) DynamicFromTraffic(routerBits, linkBits, coreBits int64) float64 {
	return t.DynamicFromTraffic3D(routerBits, linkBits, 0, coreBits)
}

// DynamicFromTraffic3D is DynamicFromTraffic with the vertical-link
// traffic split out: tsvBits (a subset of linkBits) is priced at TSVBit
// instead of ELbit. With tsvBits == 0 the expression reduces, operation
// for operation, to the 2-D formula — which is what keeps depth-1 grids
// bit-identical to the original model.
//nocvet:noalloc
func (t Tech) DynamicFromTraffic3D(routerBits, linkBits, tsvBits, coreBits int64) float64 {
	e := float64(routerBits)*t.ERbit + float64(linkBits-tsvBits)*t.ELbit + float64(coreBits)*t.ECbit
	if tsvBits != 0 {
		e += float64(tsvBits) * t.TSVBit()
	}
	return e
}

// StaticPower returns PStNoC of equation (5): numTiles * PSRouter.
//nocvet:noalloc
func (t Tech) StaticPower(numTiles int) float64 {
	if numTiles <= 0 {
		return 0
	}
	return float64(numTiles) * t.PSRouter
}

// StaticEnergy returns EStNoC of equation (9): PStNoC * texec.
//nocvet:noalloc
func (t Tech) StaticEnergy(numTiles int, execSeconds float64) float64 {
	if execSeconds < 0 {
		return 0
	}
	return t.StaticPower(numTiles) * execSeconds
}

// Breakdown is a priced mapping: the two energy components of equation
// (10).
type Breakdown struct {
	Dynamic float64 // EDyNoC, joules
	Static  float64 // EStNoC, joules
}

// Total returns ENoC = EStNoC + EDyNoC (equation (10)).
func (b Breakdown) Total() float64 { return b.Dynamic + b.Static }

// StaticShare returns the leakage fraction of the total energy in [0,1].
func (b Breakdown) StaticShare() float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return b.Static / t
}

// PaperExample returns the constants of the paper's Section 4.1 example:
// ERbit = ELbit = 1 pJ/bit, ECbit = 0, and PStNoC = 0.1 pJ/ns for the
// 2x2 NoC, i.e. PSRouter = 0.025 pJ/ns = 25 µW.
func PaperExample() Tech {
	return Tech{
		Name:     "paper-example",
		ERbit:    1e-12,
		ELbit:    1e-12,
		ECbit:    0,
		PSRouter: 0.025e-12 / 1e-9, // 0.025 pJ/ns per router
	}
}

// Tech035 models a 0.35µm process. Leakage is negligible at this node
// (the paper measures average energy savings of only 0.65% there), so the
// profile has large dynamic per-bit energies — long 3.3V wires — and a
// router leakage chosen so that static energy is 1-2% of a typical
// workload's NoC energy. See EXPERIMENTS.md for the measured share.
var Tech035 = Tech{
	Name:     "0.35um",
	ERbit:    4.0e-12,
	ELbit:    6.0e-12,
	ECbit:    0,
	ETSVbit:  1.2e-12, // TSVs are ~mm-to-µm shorter than planar links: ELbit/5
	PSRouter: 55e-6,   // 55 µW per router
}

// Tech007 models a projected 0.07µm process following the paper's
// reference [8] (Duarte et al., ICCD'02): dynamic energy per bit shrinks
// with V²C while leakage grows steeply, making static energy a large
// share of the NoC total — the regime where CDCM's execution-time
// reductions convert into energy savings. The constants put the static
// share of a typical workload near 50%, consistent with the paper's
// measured ECS0.07 ≈ 0.5 × ETR. See EXPERIMENTS.md for the measured
// share.
var Tech007 = Tech{
	Name:     "0.07um",
	ERbit:    0.16e-12,
	ELbit:    0.24e-12,
	ECbit:    0,
	ETSVbit:  0.048e-12, // ELbit/5, same short-wire ratio as Tech035
	PSRouter: 155e-6,    // 155 µW per router, leakage dominated
}
