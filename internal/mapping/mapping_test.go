package mapping

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/topology"
)

func TestRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m, err := Random(rng, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(8); err != nil {
			t.Fatalf("random mapping invalid: %v", err)
		}
	}
}

func TestRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, 9, 8); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if _, err := Random(rng, 0, 8); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		m    Mapping
		n    int
	}{
		{"empty", Mapping{}, 4},
		{"dup tile", Mapping{0, 0}, 4},
		{"out of range", Mapping{5}, 4},
		{"negative", Mapping{-1}, 4},
		{"too many cores", Mapping{0, 1, 2, 3, 0}, 4},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(tc.n); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
}

func TestOccupantsRoundTrip(t *testing.T) {
	m := Mapping{3, 0, 2}
	occ := m.Occupants(4)
	want := []model.CoreID{1, Unassigned, 2, 0}
	for i := range want {
		if occ[i] != want[i] {
			t.Fatalf("occ = %v, want %v", occ, want)
		}
	}
}

func TestSwapTiles(t *testing.T) {
	m := Mapping{0, 1} // core0@t0, core1@t1 on 3 tiles
	occ := m.Occupants(3)

	SwapTiles(m, occ, 0, 1) // swap two occupied tiles
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("after occupied swap: %v", m)
	}
	SwapTiles(m, occ, 0, 2) // move core1 from t0 to empty t2
	if m[1] != 2 || occ[0] != Unassigned || occ[2] != 1 {
		t.Fatalf("after move to empty: m=%v occ=%v", m, occ)
	}
	SwapTiles(m, occ, 0, 0) // degenerate same-tile swap is a no-op
	if err := m.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSwapPreservesInjectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTiles := 2 + rng.Intn(12)
		nCores := 1 + rng.Intn(nTiles)
		m, err := Random(rng, nCores, nTiles)
		if err != nil {
			return false
		}
		occ := m.Occupants(nTiles)
		for i := 0; i < 100; i++ {
			a := topology.TileID(rng.Intn(nTiles))
			b := topology.TileID(rng.Intn(nTiles))
			SwapTiles(m, occ, a, b)
			if m.Validate(nTiles) != nil {
				return false
			}
			// occ must stay consistent with m.
			for c, tl := range m {
				if occ[tl] != model.CoreID(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		cores, tiles int
		want         int64
	}{
		{4, 4, 24},
		{5, 6, 720},
		{1, 10, 10},
		{3, 3, 6},
		{0, 5, 0},
		{6, 5, 0},
	}
	for _, tc := range cases {
		if got := Count(tc.cores, tc.tiles); got != tc.want {
			t.Fatalf("Count(%d,%d) = %d, want %d", tc.cores, tc.tiles, got, tc.want)
		}
	}
	if Count(20, 30) <= 0 {
		t.Fatal("large count should saturate positive")
	}
}

func TestEnumerateComplete(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var seen int64
	distinct := map[string]bool{}
	err = Enumerate(mesh, 3, EnumerateOptions{AnchorCore: -1}, func(m Mapping) bool {
		seen++
		if err := m.Validate(4); err != nil {
			t.Fatalf("enumerated invalid mapping: %v", err)
		}
		distinct[m.String()] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := Count(3, 4); seen != want || int64(len(distinct)) != want {
		t.Fatalf("enumerated %d (distinct %d), want %d", seen, len(distinct), want)
	}
}

func TestEnumerateEarlyStopAndLimit(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	var n int
	err := Enumerate(mesh, 2, EnumerateOptions{AnchorCore: -1}, func(Mapping) bool {
		n++
		return n < 3
	})
	if err != nil || n != 3 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
	n = 0
	err = Enumerate(mesh, 2, EnumerateOptions{Limit: 5, AnchorCore: -1}, func(Mapping) bool {
		n++
		return true
	})
	if err != ErrLimit || n != 5 {
		t.Fatalf("limit: n=%d err=%v", n, err)
	}
}

func TestEnumerateAnchorShrinksSpace(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	var anchored, full int64
	_ = Enumerate(mesh, 2, EnumerateOptions{AnchorCore: -1}, func(Mapping) bool { full++; return true })
	_ = Enumerate(mesh, 2, EnumerateOptions{AnchorCore: 0}, func(Mapping) bool { anchored++; return true })
	// On 2x2 the canonical quadrant is the single tile (0,0): core 0 pinned.
	if full != 12 || anchored != 3 {
		t.Fatalf("full=%d anchored=%d, want 12 and 3", full, anchored)
	}
}

func TestEnumerateErrors(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2)
	if err := Enumerate(mesh, 5, EnumerateOptions{}, func(Mapping) bool { return true }); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if err := Enumerate(mesh, 0, EnumerateOptions{}, func(Mapping) bool { return true }); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestStringAndEqualAndClone(t *testing.T) {
	m := Mapping{1, 0}
	if !Equal(m, m.Clone()) {
		t.Fatal("clone not equal")
	}
	if Equal(m, Mapping{1}) || Equal(m, Mapping{0, 1}) {
		t.Fatal("unequal mappings compare equal")
	}
	if s := m.String(); !strings.Contains(s, "c0>t2") || !strings.Contains(s, "c1>t1") {
		t.Fatalf("String = %q", s)
	}
	c := m.Clone()
	c[0] = 9
	if m[0] == 9 {
		t.Fatal("clone aliases original")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	if err := m.Validate(3); err != nil {
		t.Fatal(err)
	}
	for i, tl := range m {
		if int(tl) != i {
			t.Fatalf("identity[%d] = %d", i, tl)
		}
	}
}

// TestValidateIntoMatchesValidate pins the allocation-free validation
// path against Validate: same verdict and same error text on every
// class of invalid mapping, with the buffer reused across calls.
func TestValidateIntoMatchesValidate(t *testing.T) {
	seen := make([]model.CoreID, 16)
	cases := []struct {
		name     string
		m        Mapping
		numTiles int
	}{
		{"valid", Mapping{3, 0, 2}, 4},
		{"empty", Mapping{}, 4},
		{"too-many-cores", Mapping{0, 1, 2}, 2},
		{"tile-out-of-range", Mapping{0, 9}, 4},
		{"negative-tile", Mapping{0, -1}, 4},
		{"duplicate-tile", Mapping{2, 0, 2}, 4},
	}
	for _, c := range cases {
		want := c.m.Validate(c.numTiles)
		got := c.m.ValidateInto(c.numTiles, seen)
		switch {
		case want == nil && got == nil:
		case want == nil || got == nil:
			t.Errorf("%s: ValidateInto = %v, Validate = %v", c.name, got, want)
		case want.Error() != got.Error():
			t.Errorf("%s: error text diverged:\n into: %s\n full: %s", c.name, got, want)
		}
	}
	// The buffer carries the tile→core view of the last valid mapping.
	if err := (Mapping{3, 0, 2}).ValidateInto(4, seen); err != nil {
		t.Fatal(err)
	}
	wantSeen := []model.CoreID{1, Unassigned, 2, 0}
	for tl, c := range wantSeen {
		if seen[tl] != c {
			t.Fatalf("seen[%d] = %d, want %d", tl, seen[tl], c)
		}
	}
}

// TestValidateIntoZeroAlloc: the point of the scratch buffer.
func TestValidateIntoZeroAlloc(t *testing.T) {
	m := Mapping{3, 0, 2, 1}
	seen := make([]model.CoreID, 8)
	allocs := testing.AllocsPerRun(32, func() {
		if err := m.ValidateInto(8, seen); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ValidateInto allocates %.1f objects/run, want 0", allocs)
	}
}
