package mapping

import (
	"testing"

	"repro/internal/topology"
)

// TestEnumeratePinFirstPartitionsSpace verifies the sharding invariant:
// the union of pinned enumerations over all first tiles, taken in
// ascending tile order, visits exactly the placements of an unpinned
// enumeration, in the same order.
func TestEnumeratePinFirstPartitionsSpace(t *testing.T) {
	mesh, err := topology.NewMesh(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	const cores = 3
	var full []Mapping
	err = Enumerate(mesh, cores, EnumerateOptions{AnchorCore: -1}, func(m Mapping) bool {
		full = append(full, m.Clone())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var union []Mapping
	for tile := 0; tile < mesh.NumTiles(); tile++ {
		err = Enumerate(mesh, cores,
			EnumerateOptions{AnchorCore: -1, PinFirst: true, FirstTile: topology.TileID(tile)},
			func(m Mapping) bool {
				if m[0] != topology.TileID(tile) {
					t.Fatalf("pin %d leaked placement %v", tile, m)
				}
				union = append(union, m.Clone())
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(union) != len(full) {
		t.Fatalf("union has %d placements, full enumeration %d", len(union), len(full))
	}
	for i := range full {
		if !Equal(union[i], full[i]) {
			t.Fatalf("placement %d: union %v != full %v", i, union[i], full[i])
		}
	}
}

func TestEnumeratePinFirstOutOfRange(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range []topology.TileID{-1, 4, 99} {
		err := Enumerate(mesh, 2, EnumerateOptions{AnchorCore: -1, PinFirst: true, FirstTile: tile},
			func(Mapping) bool { return true })
		if err == nil {
			t.Errorf("pinned tile %d accepted on a 4-tile mesh", tile)
		}
	}
}
