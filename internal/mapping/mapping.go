// Package mapping represents core→tile assignments (the solutions of the
// paper's mapping problem) and the operations search engines need on them:
// validation, random initialisation, swap moves and exhaustive enumeration
// of injective placements.
package mapping

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/topology"
)

// Unassigned marks a tile with no core in occupancy views.
const Unassigned model.CoreID = -1

// Mapping assigns each core (by index) to a tile. A valid mapping is
// injective: one core per tile, which is the paper's formulation (n!
// possible solutions on n tiles).
type Mapping []topology.TileID

// Clone returns a deep copy.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	copy(c, m)
	return c
}

// Validate checks that every core is placed on a distinct, in-range tile.
func (m Mapping) Validate(numTiles int) error {
	return m.ValidateInto(numTiles, make([]model.CoreID, numTiles))
}

// ValidateInto is Validate with a caller-owned occupancy buffer: it
// reports exactly the same errors without allocating, which is what lets
// per-run mapping validation stay on the simulator's allocation-free hot
// path. seen must hold at least numTiles entries; its contents are
// overwritten (and carry the tile→core view of a valid mapping on
// return).
//nocvet:noalloc
func (m Mapping) ValidateInto(numTiles int, seen []model.CoreID) error {
	if len(m) == 0 {
		return fmt.Errorf("mapping: empty")
	}
	if len(m) > numTiles {
		return fmt.Errorf("mapping: %d cores cannot be placed injectively on %d tiles", len(m), numTiles)
	}
	seen = seen[:numTiles]
	for i := range seen {
		seen[i] = Unassigned
	}
	for c, t := range m {
		if int(t) < 0 || int(t) >= numTiles {
			return fmt.Errorf("mapping: core %d on tile %d outside [0,%d)", c, t, numTiles)
		}
		if prev := seen[t]; prev != Unassigned {
			return fmt.Errorf("mapping: cores %d and %d share tile %d", prev, c, t)
		}
		seen[t] = model.CoreID(c)
	}
	return nil
}

// TileOf returns the tile hosting core c.
func (m Mapping) TileOf(c model.CoreID) topology.TileID { return m[c] }

// Occupants returns the inverse view: for each tile, the core it hosts or
// Unassigned.
func (m Mapping) Occupants(numTiles int) []model.CoreID {
	occ := make([]model.CoreID, numTiles)
	for i := range occ {
		occ[i] = Unassigned
	}
	for c, t := range m {
		occ[t] = model.CoreID(c)
	}
	return occ
}

// Random places numCores cores uniformly at random on distinct tiles of a
// numTiles-tile NoC, the paper's initial condition ("initially, all cores
// of C are randomly mapped onto the set of tiles").
func Random(rng *rand.Rand, numCores, numTiles int) (Mapping, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("mapping: need at least one core, got %d", numCores)
	}
	if numCores > numTiles {
		return nil, fmt.Errorf("mapping: %d cores do not fit on %d tiles", numCores, numTiles)
	}
	perm := rng.Perm(numTiles)
	m := make(Mapping, numCores)
	for c := range m {
		m[c] = topology.TileID(perm[c])
	}
	return m, nil
}

// Identity places core i on tile i. Useful as a deterministic baseline.
func Identity(numCores int) Mapping {
	m := make(Mapping, numCores)
	for c := range m {
		m[c] = topology.TileID(c)
	}
	return m
}

// SwapTiles exchanges the occupants of tiles a and b in place, updating
// both the mapping and the occupancy view. Swapping two empty tiles is a
// no-op. This is the neighbourhood move of the annealer.
//nocvet:noalloc
func SwapTiles(m Mapping, occ []model.CoreID, a, b topology.TileID) {
	ca, cb := occ[a], occ[b]
	if ca != Unassigned {
		m[ca] = b
	}
	if cb != Unassigned {
		m[cb] = a
	}
	occ[a], occ[b] = cb, ca
}

// Equal reports whether two mappings place every core identically.
func Equal(a, b Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the mapping as "core->tile" pairs for diagnostics.
func (m Mapping) String() string {
	s := "["
	for c, t := range m {
		if c > 0 {
			s += " "
		}
		s += fmt.Sprintf("c%d>t%d", c, int(t)+1)
	}
	return s + "]"
}
