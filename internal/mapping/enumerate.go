package mapping

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// EnumerateOptions tunes exhaustive placement enumeration.
type EnumerateOptions struct {
	// Limit aborts enumeration after this many placements (0 = no limit).
	// Enumeration returns ErrLimit when the limit triggers, so callers can
	// distinguish a certified-complete sweep from a truncated one.
	Limit int64
	// AnchorCore, when >= 0, restricts the given core to tiles in the
	// canonical quadrant of the mesh (x <= (W-1)/2, y <= (H-1)/2). Mesh
	// symmetry (horizontal/vertical mirror) guarantees at least one
	// optimal mapping survives, shrinking the space by up to 4x without
	// losing optimality. Use -1 to disable.
	AnchorCore int
	// PinFirst, when true, pins core 0 to exactly FirstTile. The sharded
	// exhaustive engine partitions the space by running one enumeration
	// per candidate first tile; the union over all first tiles (in
	// ascending tile order) visits exactly the placements of an unpinned
	// enumeration, in the same order. Combines with AnchorCore == 0: a
	// pin outside the anchor quadrant yields an empty enumeration.
	PinFirst  bool
	FirstTile topology.TileID
}

// ErrLimit is returned when enumeration stops because Options.Limit was
// reached before the space was exhausted.
var ErrLimit = fmt.Errorf("mapping: enumeration limit reached")

// InAnchorQuadrant reports whether tile t lies in the canonical mesh
// quadrant (x <= (W-1)/2, y <= (H-1)/2) — the single definition of the
// symmetry-anchoring rule, shared by EnumerateOptions.AnchorCore and the
// sharded exhaustive engine's shard selection so the two can never drift
// apart.
func InAnchorQuadrant(mesh *topology.Mesh, t topology.TileID) bool {
	c := mesh.Coord(t)
	return c.X <= (mesh.W()-1)/2 && c.Y <= (mesh.H()-1)/2
}

// Count returns the number of injective placements of numCores cores on
// numTiles tiles: numTiles!/(numTiles-numCores)!. It saturates at
// math.MaxInt64 on overflow.
func Count(numCores, numTiles int) int64 {
	if numCores > numTiles || numCores <= 0 {
		return 0
	}
	var n int64 = 1
	for i := 0; i < numCores; i++ {
		f := int64(numTiles - i)
		if n > math.MaxInt64/f {
			return math.MaxInt64
		}
		n *= f
	}
	return n
}

// Enumerate calls fn for every injective placement of numCores cores on
// the mesh, reusing a single Mapping buffer (fn must not retain it; clone
// if needed). fn returning false stops enumeration early with a nil error.
// The order is deterministic: lexicographic in (core, tile) choice order.
func Enumerate(mesh *topology.Mesh, numCores int, opts EnumerateOptions, fn func(Mapping) bool) error {
	numTiles := mesh.NumTiles()
	if numCores <= 0 || numCores > numTiles {
		return fmt.Errorf("mapping: cannot place %d cores on %d tiles", numCores, numTiles)
	}
	if opts.PinFirst && (opts.FirstTile < 0 || int(opts.FirstTile) >= numTiles) {
		return fmt.Errorf("mapping: pinned first tile %d outside %d tiles", opts.FirstTile, numTiles)
	}
	m := make(Mapping, numCores)
	used := make([]bool, numTiles)
	var emitted int64

	anchored := opts.AnchorCore >= 0 && opts.AnchorCore < numCores

	var rec func(core int) error
	rec = func(core int) error {
		if core == numCores {
			emitted++
			if !fn(m) {
				return errStop
			}
			if opts.Limit > 0 && emitted >= opts.Limit {
				return ErrLimit
			}
			return nil
		}
		for t := 0; t < numTiles; t++ {
			if used[t] {
				continue
			}
			if core == 0 && opts.PinFirst && topology.TileID(t) != opts.FirstTile {
				continue
			}
			if core == opts.AnchorCore && anchored && !InAnchorQuadrant(mesh, topology.TileID(t)) {
				continue
			}
			used[t] = true
			m[core] = topology.TileID(t)
			err := rec(core + 1)
			used[t] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0)
	if err == errStop {
		return nil
	}
	return err
}

var errStop = fmt.Errorf("mapping: enumeration stopped by callback")
