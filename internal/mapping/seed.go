package mapping

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/topology"
)

// TrafficEdge is one undirected communication volume between two cores —
// the input of the constructive seeding heuristic. Callers fold their
// application model down to this (core.CWG edges map directly).
type TrafficEdge struct {
	A, B model.CoreID
	Bits int64
}

// SeedGreedy builds a deterministic highest-traffic-first constructive
// placement, in the style of the run-time mapping heuristics surveyed by
// Benhaoua et al.: place the most communicating core on the most central
// tile, then repeatedly place the unplaced core most attached to the
// already-placed set on the free tile that minimises its bit·hop cost to
// its placed neighbours. The result is a cheap warm start for the
// iterative engines (Annealer.Initial, HillClimber.Initial,
// ParetoSA.Initial) — typically far below a random start on the CWM
// objective, never guaranteed optimal.
//
// Determinism: every selection breaks ties by a fixed rule (larger
// volume, then lower core index; lower tile ID), so the mapping depends
// only on (mesh, numCores, edges) — no RNG, no map iteration.
func SeedGreedy(mesh *topology.Mesh, numCores int, edges []TrafficEdge) (Mapping, error) {
	if mesh == nil {
		return nil, fmt.Errorf("mapping: nil mesh")
	}
	numTiles := mesh.NumTiles()
	if numCores <= 0 || numCores > numTiles {
		return nil, fmt.Errorf("mapping: %d cores cannot be placed on %d tiles", numCores, numTiles)
	}
	type adjEdge struct {
		nbr  model.CoreID
		bits int64
	}
	adj := make([][]adjEdge, numCores)
	vol := make([]int64, numCores)
	for _, e := range edges {
		if int(e.A) < 0 || int(e.A) >= numCores || int(e.B) < 0 || int(e.B) >= numCores {
			return nil, fmt.Errorf("mapping: traffic edge %d-%d outside %d cores", e.A, e.B, numCores)
		}
		if e.Bits < 0 {
			return nil, fmt.Errorf("mapping: negative traffic volume %d on edge %d-%d", e.Bits, e.A, e.B)
		}
		if e.A == e.B {
			continue // self-traffic never crosses the NoC
		}
		adj[e.A] = append(adj[e.A], adjEdge{nbr: e.B, bits: e.Bits})
		adj[e.B] = append(adj[e.B], adjEdge{nbr: e.A, bits: e.Bits})
		vol[e.A] += e.Bits
		vol[e.B] += e.Bits
	}

	m := make(Mapping, numCores)
	for c := range m {
		m[c] = topology.TileID(-1)
	}
	occ := make([]model.CoreID, numTiles)
	for t := range occ {
		occ[t] = Unassigned
	}
	// attach[c] accumulates the traffic between unplaced core c and the
	// already-placed set — the heuristic's attachment score.
	attach := make([]int64, numCores)

	// centralTile is the tile minimising total hop distance to every
	// tile (lowest ID on ties) — the hub position for the hub core.
	centralTile := func() topology.TileID {
		best := topology.TileID(0)
		bestSum := -1
		for t := 0; t < numTiles; t++ {
			sum := 0
			for u := 0; u < numTiles; u++ {
				sum += mesh.MinHops(topology.TileID(t), topology.TileID(u))
			}
			if bestSum < 0 || sum < bestSum {
				best, bestSum = topology.TileID(t), sum
			}
		}
		return best
	}

	for placed := 0; placed < numCores; placed++ {
		// Select: highest attachment, then highest volume, then lowest
		// index. On the first pick every attachment is zero, so this
		// degenerates to the highest-volume core.
		next := model.CoreID(-1)
		for c := 0; c < numCores; c++ {
			if m[c] >= 0 {
				continue
			}
			cc := model.CoreID(c)
			if next < 0 ||
				attach[c] > attach[next] ||
				(attach[c] == attach[next] && vol[c] > vol[next]) {
				next = cc
			}
		}

		// Place: the free tile minimising Σ bits·hops to the core's
		// already-placed neighbours, lowest tile ID on ties. With no
		// placed neighbour every tile costs zero, so the first core
		// lands on the central tile and traffic-free cores fill the
		// lowest free tiles.
		var tile topology.TileID = -1
		if placed == 0 {
			tile = centralTile()
		} else {
			var tileCost int64
			for t := 0; t < numTiles; t++ {
				if occ[t] != Unassigned {
					continue
				}
				var cost int64
				for _, e := range adj[next] {
					if nt := m[e.nbr]; nt >= 0 {
						cost += e.bits * int64(mesh.MinHops(topology.TileID(t), nt))
					}
				}
				if tile < 0 || cost < tileCost {
					tile, tileCost = topology.TileID(t), cost
				}
			}
		}
		m[next] = tile
		occ[tile] = next
		for _, e := range adj[next] {
			if m[e.nbr] < 0 {
				attach[e.nbr] += e.bits
			}
		}
	}
	return m, nil
}
