package mapping

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

func seedMesh(t *testing.T, w, h int) *topology.Mesh {
	t.Helper()
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return mesh
}

func TestSeedGreedyValidAndDeterministic(t *testing.T) {
	mesh := seedMesh(t, 3, 3)
	edges := []TrafficEdge{
		{A: 0, B: 1, Bits: 1000},
		{A: 1, B: 2, Bits: 600},
		{A: 2, B: 3, Bits: 200},
		{A: 0, B: 4, Bits: 50},
		{A: 5, B: 5, Bits: 999}, // self-traffic: ignored
	}
	mp, err := SeedGreedy(mesh, 7, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(mesh.NumTiles()); err != nil {
		t.Fatal(err)
	}
	if len(mp) != 7 {
		t.Fatalf("placed %d cores, want 7", len(mp))
	}
	again, err := SeedGreedy(mesh, 7, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mp, again) {
		t.Fatalf("not deterministic: %v vs %v", mp, again)
	}
}

func TestSeedGreedyPlacesHeaviestPairAdjacent(t *testing.T) {
	mesh := seedMesh(t, 4, 4)
	edges := []TrafficEdge{
		{A: 2, B: 5, Bits: 10000}, // dominant flow
		{A: 0, B: 1, Bits: 10},
		{A: 3, B: 4, Bits: 10},
	}
	mp, err := SeedGreedy(mesh, 6, edges)
	if err != nil {
		t.Fatal(err)
	}
	if hops := mesh.MinHops(mp[2], mp[5]); hops != 1 {
		t.Fatalf("dominant pair placed %d hops apart: %v", hops, mp)
	}
}

func TestSeedGreedyBeatsRandomOnWireLength(t *testing.T) {
	// The heuristic's whole point: on a bit×hop objective the greedy seed
	// should never lose to the identity placement for a clustered pattern.
	mesh := seedMesh(t, 4, 4)
	edges := []TrafficEdge{
		{A: 0, B: 1, Bits: 5000}, {A: 0, B: 2, Bits: 4000},
		{A: 1, B: 2, Bits: 3000}, {A: 3, B: 4, Bits: 2000},
		{A: 4, B: 5, Bits: 1000}, {A: 6, B: 7, Bits: 500},
		{A: 0, B: 7, Bits: 100},
	}
	cost := func(mp Mapping) (s int64) {
		for _, e := range edges {
			s += e.Bits * int64(mesh.MinHops(mp[e.A], mp[e.B]))
		}
		return s
	}
	mp, err := SeedGreedy(mesh, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	identity := make(Mapping, 8)
	for c := range identity {
		identity[c] = topology.TileID(c)
	}
	if g, id := cost(mp), cost(identity); g > id {
		t.Fatalf("greedy seed (%d) worse than identity placement (%d)", g, id)
	}
}

func TestSeedGreedyNoTraffic(t *testing.T) {
	mesh := seedMesh(t, 2, 2)
	mp, err := SeedGreedy(mesh, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestSeedGreedyErrors(t *testing.T) {
	mesh := seedMesh(t, 2, 2)
	if _, err := SeedGreedy(nil, 2, nil); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := SeedGreedy(mesh, 5, nil); err == nil {
		t.Error("more cores than tiles accepted")
	}
	if _, err := SeedGreedy(mesh, 0, nil); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := SeedGreedy(mesh, 2, []TrafficEdge{{A: 0, B: 7, Bits: 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := SeedGreedy(mesh, 2, []TrafficEdge{{A: 0, B: 1, Bits: -1}}); err == nil {
		t.Error("negative volume accepted")
	}
}
