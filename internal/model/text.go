package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a compact, line-oriented text format for CDCGs,
// convenient for hand-written applications (the paper notes CDCGs "are
// described by hand"). Grammar, one directive per line, '#' comments:
//
//	name  <application-name>
//	cores <name> [<name> ...]
//	packet <label> <src> <dst> compute=<cycles> bits=<bits> [after=<lbl>[,<lbl>...]]
//
// Cores are referenced by name; packets by label. Dependences are
// declared inline with after=. Example (the paper's Figure 1):
//
//	name fig1
//	cores A B E F
//	packet pAB1 A B compute=6  bits=15
//	packet pBF1 B F compute=10 bits=40
//	packet pEA1 E A compute=10 bits=20
//	packet pEA2 E A compute=20 bits=15 after=pEA1
//	packet pAF1 A F compute=6  bits=15 after=pAB1,pEA1
//	packet pFB1 F B compute=6  bits=15 after=pAF1

// ParseText reads the text format and returns a validated CDCG.
func ParseText(r io.Reader) (*CDCG, error) {
	g := &CDCG{}
	coreByName := make(map[string]CoreID)
	pktByLabel := make(map[string]PacketID)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("model: line %d: name takes one argument", lineNo)
			}
			g.Name = fields[1]
		case "core", "cores":
			for _, name := range fields[1:] {
				if _, dup := coreByName[name]; dup {
					return nil, fmt.Errorf("model: line %d: duplicate core %q", lineNo, name)
				}
				id := CoreID(len(g.Cores))
				coreByName[name] = id
				g.Cores = append(g.Cores, Core{ID: id, Name: name})
			}
		case "packet":
			if len(fields) < 4 {
				return nil, fmt.Errorf("model: line %d: packet needs label, src, dst", lineNo)
			}
			label := fields[1]
			if _, dup := pktByLabel[label]; dup {
				return nil, fmt.Errorf("model: line %d: duplicate packet %q", lineNo, label)
			}
			src, ok := coreByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[2])
			}
			dst, ok := coreByName[fields[3]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[3])
			}
			pkt := Packet{ID: PacketID(len(g.Packets)), Src: src, Dst: dst, Label: label}
			haveBits := false
			for _, kv := range fields[4:] {
				key, val, found := strings.Cut(kv, "=")
				if !found {
					return nil, fmt.Errorf("model: line %d: expected key=value, got %q", lineNo, kv)
				}
				switch key {
				case "compute":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("model: line %d: compute: %w", lineNo, err)
					}
					pkt.Compute = n
				case "bits":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("model: line %d: bits: %w", lineNo, err)
					}
					pkt.Bits = n
					haveBits = true
				case "after":
					for _, dep := range strings.Split(val, ",") {
						from, ok := pktByLabel[dep]
						if !ok {
							return nil, fmt.Errorf("model: line %d: unknown packet %q in after=", lineNo, dep)
						}
						g.Deps = append(g.Deps, Dep{From: from, To: pkt.ID})
					}
				default:
					return nil, fmt.Errorf("model: line %d: unknown attribute %q", lineNo, key)
				}
			}
			if !haveBits {
				return nil, fmt.Errorf("model: line %d: packet %q needs bits=", lineNo, label)
			}
			pktByLabel[label] = pkt.ID
			g.Packets = append(g.Packets, pkt)
		default:
			return nil, fmt.Errorf("model: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: reading text CDCG: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteText renders the CDCG in the text format parsed by ParseText.
// Packets without labels get generated p<ID> labels.
func (g *CDCG) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.Name != "" {
		fmt.Fprintf(bw, "name %s\n", g.Name)
	}
	bw.WriteString("cores")
	for _, c := range g.Cores {
		fmt.Fprintf(bw, " %s", g.CoreName(c.ID))
	}
	bw.WriteByte('\n')

	// Labels serve as references in after= lists, so characters that the
	// parser treats as separators (whitespace, commas, '#', '=') are
	// sanitised to underscores; sanitised collisions fall back to
	// generated p<ID> labels.
	used := make(map[string]PacketID, len(g.Packets))
	label := func(id PacketID) string {
		l := g.Packets[id].Label
		if l == "" {
			return fmt.Sprintf("p%d", id)
		}
		l = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '\t', ',', '#', '=':
				return '_'
			}
			return r
		}, l)
		if prev, dup := used[l]; dup && prev != id {
			return fmt.Sprintf("p%d", id)
		}
		used[l] = id
		return l
	}
	after := make(map[PacketID][]string)
	for _, d := range g.Deps {
		after[d.To] = append(after[d.To], label(d.From))
	}
	for _, p := range g.Packets {
		fmt.Fprintf(bw, "packet %s %s %s compute=%d bits=%d",
			label(p.ID), g.CoreName(p.Src), g.CoreName(p.Dst), p.Compute, p.Bits)
		if deps := after[p.ID]; len(deps) > 0 {
			fmt.Fprintf(bw, " after=%s", strings.Join(deps, ","))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
