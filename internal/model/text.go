package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a compact, line-oriented text format for CDCGs,
// convenient for hand-written applications (the paper notes CDCGs "are
// described by hand"). Grammar, one directive per line, '#' comments:
//
//	name  <application-name>
//	cores <name> [<name> ...]
//	packet <label> <src> <dst> compute=<cycles> bits=<bits> [after=<lbl>[,<lbl>...]]
//
// Cores are referenced by name; packets by label. Dependences are
// declared inline with after=. Example (the paper's Figure 1):
//
//	name fig1
//	cores A B E F
//	packet pAB1 A B compute=6  bits=15
//	packet pBF1 B F compute=10 bits=40
//	packet pEA1 E A compute=10 bits=20
//	packet pEA2 E A compute=20 bits=15 after=pEA1
//	packet pAF1 A F compute=6  bits=15 after=pAB1,pEA1
//	packet pFB1 F B compute=6  bits=15 after=pAF1

// The CWG variant of the format shares the name/cores directives and
// declares aggregate communications instead of packets:
//
//	name  <application-name>
//	cores <name> [<name> ...]
//	comm  <src> <dst> <bits>

// ParseText reads the text format and returns a validated CDCG.
func ParseText(r io.Reader) (*CDCG, error) {
	g := &CDCG{}
	coreByName := make(map[string]CoreID)
	pktByLabel := make(map[string]PacketID)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("model: line %d: name takes one argument", lineNo)
			}
			g.Name = fields[1]
		case "core", "cores":
			for _, name := range fields[1:] {
				if _, dup := coreByName[name]; dup {
					return nil, fmt.Errorf("model: line %d: duplicate core %q", lineNo, name)
				}
				id := CoreID(len(g.Cores))
				coreByName[name] = id
				g.Cores = append(g.Cores, Core{ID: id, Name: name})
			}
		case "packet":
			if len(fields) < 4 {
				return nil, fmt.Errorf("model: line %d: packet needs label, src, dst", lineNo)
			}
			label := fields[1]
			if _, dup := pktByLabel[label]; dup {
				return nil, fmt.Errorf("model: line %d: duplicate packet %q", lineNo, label)
			}
			src, ok := coreByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[2])
			}
			dst, ok := coreByName[fields[3]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[3])
			}
			pkt := Packet{ID: PacketID(len(g.Packets)), Src: src, Dst: dst, Label: label}
			haveBits := false
			for _, kv := range fields[4:] {
				key, val, found := strings.Cut(kv, "=")
				if !found {
					return nil, fmt.Errorf("model: line %d: expected key=value, got %q", lineNo, kv)
				}
				switch key {
				case "compute":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("model: line %d: compute: %w", lineNo, err)
					}
					pkt.Compute = n
				case "bits":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("model: line %d: bits: %w", lineNo, err)
					}
					pkt.Bits = n
					haveBits = true
				case "after":
					for _, dep := range strings.Split(val, ",") {
						from, ok := pktByLabel[dep]
						if !ok {
							return nil, fmt.Errorf("model: line %d: unknown packet %q in after=", lineNo, dep)
						}
						g.Deps = append(g.Deps, Dep{From: from, To: pkt.ID})
					}
				default:
					return nil, fmt.Errorf("model: line %d: unknown attribute %q", lineNo, key)
				}
			}
			if !haveBits {
				return nil, fmt.Errorf("model: line %d: packet %q needs bits=", lineNo, label)
			}
			pktByLabel[label] = pkt.ID
			g.Packets = append(g.Packets, pkt)
		default:
			return nil, fmt.Errorf("model: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: reading text CDCG: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// sanitize replaces every byte of s listed in seps with '_'. The
// separator sets are pure ASCII, so byte-wise mapping leaves every other
// byte untouched — including invalid UTF-8, which strings.Map would
// silently re-encode as U+FFFD and break byte-exact round trips.
func sanitize(s, seps string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(seps, s[i]) >= 0 {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// writeNames returns parser-safe, unique renderings of the n core names:
// characters the line format cannot carry in a name (whitespace, '#') are
// sanitised to underscores and collisions get '_' suffixes, mirroring the
// packet-label canonicalisation. Parser-produced names pass through
// untouched (they are whitespace- and comment-free by construction); the
// sanitising exists for graphs built programmatically, whose names would
// otherwise render to text the parsers cannot round-trip.
func writeNames(n int, name func(CoreID) string) []string {
	names := make([]string, n)
	used := make(map[string]bool, n)
	for i := range names {
		l := sanitize(name(CoreID(i)), " \t\n\r#")
		if l == "" {
			l = fmt.Sprintf("c%d", i)
		}
		for used[l] {
			l += "_"
		}
		used[l] = true
		names[i] = l
	}
	return names
}

// ParseCWGText reads the CWG text format (name/cores/comm directives) and
// returns a validated CWG.
func ParseCWGText(r io.Reader) (*CWG, error) {
	g := &CWG{}
	coreByName := make(map[string]CoreID)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("model: line %d: name takes one argument", lineNo)
			}
			// CWG carries no name field; accepted for symmetry with the
			// CDCG grammar so one header works for both projections.
		case "core", "cores":
			for _, name := range fields[1:] {
				if _, dup := coreByName[name]; dup {
					return nil, fmt.Errorf("model: line %d: duplicate core %q", lineNo, name)
				}
				id := CoreID(len(g.Cores))
				coreByName[name] = id
				g.Cores = append(g.Cores, Core{ID: id, Name: name})
			}
		case "comm":
			if len(fields) != 4 {
				return nil, fmt.Errorf("model: line %d: comm needs src, dst, bits", lineNo)
			}
			src, ok := coreByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[1])
			}
			dst, ok := coreByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("model: line %d: unknown core %q", lineNo, fields[2])
			}
			bits, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("model: line %d: bits: %w", lineNo, err)
			}
			g.Edges = append(g.Edges, CWGEdge{Src: src, Dst: dst, Bits: bits})
		default:
			return nil, fmt.Errorf("model: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: reading text CWG: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteText renders the CWG in the text format parsed by ParseCWGText.
func (g *CWG) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := writeNames(len(g.Cores), g.CoreName)
	bw.WriteString("cores")
	for _, n := range names {
		fmt.Fprintf(bw, " %s", n)
	}
	bw.WriteByte('\n')
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "comm %s %s %d\n", names[e.Src], names[e.Dst], e.Bits)
	}
	return bw.Flush()
}

// WriteText renders the CDCG in the text format parsed by ParseText.
// Packets without labels get generated p<ID> labels.
func (g *CDCG) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.Name != "" {
		fmt.Fprintf(bw, "name %s\n", g.Name)
	}
	names := writeNames(len(g.Cores), g.CoreName)
	bw.WriteString("cores")
	for _, n := range names {
		fmt.Fprintf(bw, " %s", n)
	}
	bw.WriteByte('\n')

	// Labels serve as references in after= lists, so characters that the
	// parser treats as separators (whitespace, commas, '#', '=') are
	// sanitised to underscores. Labels are assigned up front in packet-ID
	// order and forced unique by suffixing '_' — a collision fallback that
	// invented p<ID> names could itself collide with another packet's
	// literal label and render unparseable output.
	labels := make([]string, len(g.Packets))
	used := make(map[string]bool, len(g.Packets))
	for i, p := range g.Packets {
		l := sanitize(p.Label, " \t\n\r,#=")
		if l == "" {
			l = fmt.Sprintf("p%d", p.ID)
		}
		for used[l] {
			l += "_"
		}
		used[l] = true
		labels[i] = l
	}
	label := func(id PacketID) string { return labels[id] }
	after := make(map[PacketID][]string)
	for _, d := range g.Deps {
		after[d.To] = append(after[d.To], label(d.From))
	}
	for _, p := range g.Packets {
		fmt.Fprintf(bw, "packet %s %s %s compute=%d bits=%d",
			label(p.ID), names[p.Src], names[p.Dst], p.Compute, p.Bits)
		if deps := after[p.ID]; len(deps) > 0 {
			fmt.Fprintf(bw, " after=%s", strings.Join(deps, ","))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
