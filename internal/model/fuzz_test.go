package model

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The fuzz targets cover the two text parsers: any input must either be
// rejected with an error or produce a validated graph that survives a
// parse → format → parse round trip — the canonical rendering must
// reparse to the same graph and re-render byte-identically. Panics and
// round-trip failures are both bugs. Seed corpora live under
// testdata/fuzz; CI runs a short -fuzz smoke on both targets.

func FuzzParseCDCG(f *testing.F) {
	f.Add("name fig1\ncores A B E F\npacket pAB1 A B compute=6 bits=15\n")
	f.Add("cores A B\npacket p1 A B bits=1\npacket p2 B A compute=3 bits=2 after=p1\n")
	f.Add("cores a b c\npacket x a b bits=5\npacket y b c bits=5 after=x\npacket z a c bits=5 after=x,y\n")
	f.Add("# comment only\n\ncores solo\n")
	f.Add("cores A B\npacket p#q A B bits=1\n")
	f.Add("cores A B\npacket p0 A B bits=1\npacket x=y A B bits=2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseText(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var canon bytes.Buffer
		if err := g.WriteText(&canon); err != nil {
			t.Fatalf("WriteText failed on a parsed graph: %v", err)
		}
		g2, err := ParseText(bytes.NewReader(canon.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n--- canonical ---\n%s", err, canon.String())
		}
		if g2.Name != g.Name || len(g2.Cores) != len(g.Cores) ||
			len(g2.Packets) != len(g.Packets) || !reflect.DeepEqual(g2.Deps, g.Deps) {
			t.Fatalf("round trip changed the graph shape:\n%+v\nvs\n%+v", g, g2)
		}
		if !reflect.DeepEqual(g2.Cores, g.Cores) {
			t.Fatalf("round trip changed the cores: %+v vs %+v", g.Cores, g2.Cores)
		}
		for i := range g.Packets {
			a, b := g.Packets[i], g2.Packets[i]
			// Labels are canonicalised (separator sanitising, uniqueness
			// suffixes); everything else must survive exactly.
			if a.ID != b.ID || a.Src != b.Src || a.Dst != b.Dst || a.Compute != b.Compute || a.Bits != b.Bits {
				t.Fatalf("round trip changed packet %d: %+v vs %+v", i, a, b)
			}
		}
		var canon2 bytes.Buffer
		if err := g2.WriteText(&canon2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("canonical form is not a fixed point:\n--- first ---\n%s--- second ---\n%s",
				canon.String(), canon2.String())
		}
	})
}

func FuzzParseCWG(f *testing.F) {
	f.Add("cores A B E F\ncomm A B 15\ncomm B F 40\n")
	f.Add("name app\ncores x y\ncomm x y 1\ncomm y x 2\n")
	f.Add("cores a\n")
	f.Add("# nothing\ncores p q r\ncomm p q 100 # tail comment\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseCWGText(strings.NewReader(input))
		if err != nil {
			return
		}
		var canon bytes.Buffer
		if err := g.WriteText(&canon); err != nil {
			t.Fatalf("WriteText failed on a parsed graph: %v", err)
		}
		g2, err := ParseCWGText(bytes.NewReader(canon.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n--- canonical ---\n%s", err, canon.String())
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("round trip changed the graph:\n%+v\nvs\n%+v", g, g2)
		}
	})
}
