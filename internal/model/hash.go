package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// This file defines a canonical, content-only serialization of the
// application models plus a content hash over it. The mapping service
// keys its result cache on these hashes: two requests whose graphs are
// semantically identical — same cores, packets and dependence relation,
// regardless of dependence-edge order or duplicate dependence entries —
// produce the same key and therefore share one computed result.
//
// The encoding is deliberately not JSON: it is length-prefixed and
// field-ordered so it cannot collide across string boundaries, never
// changes with encoder cosmetics (indentation, field order, float
// formats), and is cheap enough to run per request.

// CanonicalBytes returns the canonical serialization of the CDCG.
//
// Cores and packets are emitted in ID order (Validate pins slice order to
// ID order, so this is also slice order); dependence edges are sorted by
// (from, to) and deduplicated, making the bytes independent of the order
// in which Deps was assembled. Strings are length-prefixed, so names
// containing the separator characters cannot forge another graph's
// encoding.
func (g *CDCG) CanonicalBytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "cdcg/v1 name=%d:%s cores=%d packets=%d\n",
		len(g.Name), g.Name, len(g.Cores), len(g.Packets))
	for _, c := range g.Cores {
		fmt.Fprintf(&b, "core %d %d:%s\n", c.ID, len(c.Name), c.Name)
	}
	for _, p := range g.Packets {
		fmt.Fprintf(&b, "pkt %d %d %d %d %d %d:%s\n",
			p.ID, p.Src, p.Dst, p.Compute, p.Bits, len(p.Label), p.Label)
	}
	deps := make([]Dep, len(g.Deps))
	copy(deps, g.Deps)
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].From != deps[j].From {
			return deps[i].From < deps[j].From
		}
		return deps[i].To < deps[j].To
	})
	var prev Dep
	for i, d := range deps {
		if i > 0 && d == prev {
			continue
		}
		prev = d
		fmt.Fprintf(&b, "dep %d %d\n", d.From, d.To)
	}
	return b.Bytes()
}

// Hash returns the hex SHA-256 of CanonicalBytes — the CDCG's identity
// for caching and deduplication.
func (g *CDCG) Hash() string {
	sum := sha256.Sum256(g.CanonicalBytes())
	return hex.EncodeToString(sum[:])
}

// CanonicalBytes returns the canonical serialization of the CWG. Edges
// are sorted by (src, dst) — volume aggregation makes the edge set
// order-free, and Validate forbids duplicates, so sorting alone
// canonicalises it.
func (g *CWG) CanonicalBytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "cwg/v1 cores=%d edges=%d\n", len(g.Cores), len(g.Edges))
	for _, c := range g.Cores {
		fmt.Fprintf(&b, "core %d %d:%s\n", c.ID, len(c.Name), c.Name)
	}
	edges := make([]CWGEdge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "edge %d %d %d\n", e.Src, e.Dst, e.Bits)
	}
	return b.Bytes()
}

// Hash returns the hex SHA-256 of CanonicalBytes.
func (g *CWG) Hash() string {
	sum := sha256.Sum256(g.CanonicalBytes())
	return hex.EncodeToString(sum[:])
}
