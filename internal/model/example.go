package model

// This file encodes the worked example of the paper (Figure 1): a
// hypothetical application with four IP cores A, B, E, F exchanging six
// packets on a 2x2 NoC. It is used throughout the test suite as golden
// input and by examples/quickstart.

// Figure-1 core indices. The paper names the cores A, B, E and F.
const (
	ExampleA CoreID = iota
	ExampleB
	ExampleE
	ExampleF
)

// PaperExampleCDCG returns the CDCG of Figure 1(b):
//
//	P = { pAB1=(A,B,6,15), pBF1=(B,F,10,40), pEA1=(E,A,10,20),
//	      pEA2=(E,A,20,15), pAF1=(A,F,6,15),  pFB1=(F,B,6,15) }
//	D = { (Start,pAB1), (Start,pBF1), (Start,pEA1),
//	      (pEA1,pEA2), (pAB1,pAF1), (pEA1,pAF1), (pAF1,pFB1) }
//
// The dependence set is the one consistent with the timing diagrams of
// Figures 4 and 5 (the paper prints only a prefix of D): pAF1 waits for
// both pAB1 and pEA1, and pFB1 waits for pAF1. With these edges the
// simulator reproduces every annotated interval of Figure 3 and the
// published execution times (100 ns and 90 ns).
func PaperExampleCDCG() *CDCG {
	cores := MakeCores(4, "A", "B", "E", "F")
	pk := func(id PacketID, s, d CoreID, t, w int64, lbl string) Packet {
		return Packet{ID: id, Src: s, Dst: d, Compute: t, Bits: w, Label: lbl}
	}
	g := &CDCG{
		Name:  "paper-fig1",
		Cores: cores,
		Packets: []Packet{
			pk(0, ExampleA, ExampleB, 6, 15, "pAB1"),
			pk(1, ExampleB, ExampleF, 10, 40, "pBF1"),
			pk(2, ExampleE, ExampleA, 10, 20, "pEA1"),
			pk(3, ExampleE, ExampleA, 20, 15, "pEA2"),
			pk(4, ExampleA, ExampleF, 6, 15, "pAF1"),
			pk(5, ExampleF, ExampleB, 6, 15, "pFB1"),
		},
		Deps: []Dep{
			{From: 2, To: 3}, // pEA1 -> pEA2
			{From: 0, To: 4}, // pAB1 -> pAF1
			{From: 2, To: 4}, // pEA1 -> pAF1
			{From: 4, To: 5}, // pAF1 -> pFB1
		},
	}
	return g
}

// PaperExampleCWG returns the CWG of Figure 1(a):
// wAB=15, wAF=15, wBF=40, wEA=35, wFB=15.
func PaperExampleCWG() *CWG { return PaperExampleCDCG().ToCWG() }
