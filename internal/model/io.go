package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON serialises the CDCG as indented JSON.
func (g *CDCG) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadCDCG parses a CDCG from JSON and validates it.
func ReadCDCG(r io.Reader) (*CDCG, error) {
	var g CDCG
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("model: decoding CDCG: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// WriteJSON serialises the CWG as indented JSON.
func (g *CWG) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadCWG parses a CWG from JSON and validates it.
func ReadCWG(r io.Reader) (*CWG, error) {
	var g CWG
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("model: decoding CWG: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// DOT renders the CWG in Graphviz dot syntax, one edge per communication
// labelled with its bit volume.
func (g *CWG) DOT() string {
	var b strings.Builder
	b.WriteString("digraph cwg {\n  rankdir=LR;\n")
	for _, c := range g.Cores {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", c.ID, g.CoreName(c.ID))
	}
	edges := make([]CWGEdge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", e.Src, e.Dst, e.Bits)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the CDCG in Graphviz dot syntax with explicit Start and End
// vertices, one node per packet labelled "w(src->dst) t:compute".
func (g *CDCG) DOT() string {
	var b strings.Builder
	b.WriteString("digraph cdcg {\n  rankdir=TB;\n  start [shape=circle,label=\"Start\"];\n  end [shape=doublecircle,label=\"End\"];\n")
	for _, p := range g.Packets {
		fmt.Fprintf(&b, "  p%d [shape=box,label=\"%d(%s\\u2192%s) t:%d\"];\n",
			p.ID, p.Bits, g.CoreName(p.Src), g.CoreName(p.Dst), p.Compute)
	}
	indeg := make([]int, len(g.Packets))
	outdeg := make([]int, len(g.Packets))
	for _, d := range g.Deps {
		indeg[d.To]++
		outdeg[d.From]++
		fmt.Fprintf(&b, "  p%d -> p%d;\n", d.From, d.To)
	}
	for _, p := range g.Packets {
		if indeg[p.ID] == 0 {
			fmt.Fprintf(&b, "  start -> p%d;\n", p.ID)
		}
		if outdeg[p.ID] == 0 {
			fmt.Fprintf(&b, "  p%d -> end;\n", p.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
