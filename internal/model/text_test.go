package model

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const fig1Text = `
# The paper's Figure 1 application.
name fig1
cores A B E F
packet pAB1 A B compute=6  bits=15
packet pBF1 B F compute=10 bits=40
packet pEA1 E A compute=10 bits=20
packet pEA2 E A compute=20 bits=15 after=pEA1
packet pAF1 A F compute=6  bits=15 after=pAB1,pEA1
packet pFB1 F B compute=6  bits=15 after=pAF1
`

func TestParseTextFigure1(t *testing.T) {
	g, err := ParseText(strings.NewReader(fig1Text))
	if err != nil {
		t.Fatal(err)
	}
	ref := PaperExampleCDCG()
	if g.NumCores() != ref.NumCores() || g.NumPackets() != ref.NumPackets() {
		t.Fatalf("parsed %d cores %d packets", g.NumCores(), g.NumPackets())
	}
	if g.TotalBits() != ref.TotalBits() {
		t.Fatalf("bits = %d", g.TotalBits())
	}
	for i := range ref.Packets {
		rp, gp := ref.Packets[i], g.Packets[i]
		if rp.Src != gp.Src || rp.Dst != gp.Dst || rp.Bits != gp.Bits || rp.Compute != gp.Compute {
			t.Fatalf("packet %d: %+v vs %+v", i, gp, rp)
		}
	}
	if len(g.Deps) != len(ref.Deps) {
		t.Fatalf("deps = %d, want %d", len(g.Deps), len(ref.Deps))
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := PaperExampleCDCG()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\ntext:\n%s", err, buf.String())
	}
	if back.Name != g.Name || back.NumPackets() != g.NumPackets() || back.TotalBits() != g.TotalBits() {
		t.Fatalf("round trip changed the graph")
	}
	if len(back.Deps) != len(g.Deps) {
		t.Fatalf("round trip deps = %d, want %d", len(back.Deps), len(g.Deps))
	}
}

func TestWriteTextUnlabeled(t *testing.T) {
	g := &CDCG{
		Cores: MakeCores(2, "a", "b"),
		Packets: []Packet{
			{ID: 0, Src: 0, Dst: 1, Compute: 1, Bits: 5},
			{ID: 1, Src: 1, Dst: 0, Compute: 2, Bits: 7},
		},
		Deps: []Dep{{From: 0, To: 1}},
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "packet p1 b a compute=2 bits=7 after=p0") {
		t.Fatalf("unlabeled render:\n%s", buf.String())
	}
	if _, err := ParseText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown directive", "frobnicate x"},
		{"name arity", "name a b"},
		{"dup core", "cores A A"},
		{"packet arity", "cores A B\npacket p1 A"},
		{"unknown src", "cores A B\npacket p1 X B bits=5"},
		{"unknown dst", "cores A B\npacket p1 A X bits=5"},
		{"dup packet", "cores A B\npacket p1 A B bits=5\npacket p1 B A bits=5"},
		{"bad kv", "cores A B\npacket p1 A B bits"},
		{"bad compute", "cores A B\npacket p1 A B compute=x bits=5"},
		{"bad bits", "cores A B\npacket p1 A B bits=x"},
		{"missing bits", "cores A B\npacket p1 A B compute=5"},
		{"unknown attr", "cores A B\npacket p1 A B bits=5 color=red"},
		{"unknown dep", "cores A B\npacket p1 A B bits=5 after=p0"},
		{"forward dep impossible", "cores A B\npacket p1 A B bits=5 after=p2\npacket p2 B A bits=5"},
		{"self packet", "cores A B\npacket p1 A A bits=5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tc.text)); err == nil {
				t.Fatalf("accepted:\n%s", tc.text)
			}
		})
	}
}

func TestTextRoundTripAwkwardLabels(t *testing.T) {
	// Labels with separator characters (the FFT builder emits commas)
	// must survive the round trip via sanitisation.
	g := &CDCG{
		Cores: MakeCores(3, "a", "b", "c"),
		Packets: []Packet{
			{ID: 0, Src: 0, Dst: 1, Bits: 5, Label: "bfly[s0,0->4]"},
			{ID: 1, Src: 1, Dst: 2, Bits: 5, Label: "x=y #z"},
			{ID: 2, Src: 2, Dst: 0, Bits: 5, Label: "bfly[s0,0->4]"}, // sanitised collision
		},
		Deps: []Dep{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 2}},
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, buf.String())
	}
	if back.NumPackets() != 3 || len(back.Deps) != 3 {
		t.Fatalf("round trip lost structure:\n%s", buf.String())
	}
}

func TestParseTextCommentsAndBlank(t *testing.T) {
	text := "# header\n\ncores A B # trailing\npacket p A B bits=3 # done\n"
	g, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPackets() != 1 || g.Packets[0].Bits != 3 {
		t.Fatalf("parsed %+v", g.Packets)
	}
}

func TestParseCWGText(t *testing.T) {
	in := "name app\ncores A B C # trailing comment\ncomm A B 15\ncomm B C 40\n"
	g, err := ParseCWGText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCores() != 3 || len(g.Edges) != 2 || g.TotalBits() != 55 {
		t.Fatalf("parsed %d cores, %d edges, %d bits", g.NumCores(), len(g.Edges), g.TotalBits())
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseCWGText(&buf)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(g, g2) {
		t.Fatalf("round trip changed the graph: %+v vs %+v", g, g2)
	}
}

func TestParseCWGTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad directive":  "cores A B\nlink A B 3\n",
		"unknown src":    "cores A\ncomm X A 3\n",
		"unknown dst":    "cores A\ncomm A X 3\n",
		"bad bits":       "cores A B\ncomm A B lots\n",
		"negative bits":  "cores A B\ncomm A B -4\n",
		"self comm":      "cores A B\ncomm A A 4\n",
		"duplicate comm": "cores A B\ncomm A B 4\ncomm A B 5\n",
		"duplicate core": "cores A A\n",
		"short comm":     "cores A B\ncomm A B\n",
		"name arity":     "name a b\ncores A\n",
	}
	for name, in := range cases {
		if _, err := ParseCWGText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// TestWriteTextSanitisesProgrammaticNames covers graphs built in code
// rather than by the parser: core names carrying whitespace or '#', and
// colliding names, must still render to parseable, round-trippable text.
func TestWriteTextSanitisesProgrammaticNames(t *testing.T) {
	g := &CWG{
		Cores: []Core{
			{ID: 0, Name: "a b"},
			{ID: 1, Name: "a_b"}, // collides with 0 after sanitising
			{ID: 2, Name: "c#2"},
		},
		Edges: []CWGEdge{{Src: 0, Dst: 2, Bits: 7}, {Src: 1, Dst: 0, Bits: 3}},
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseCWGText(&buf)
	if err != nil {
		t.Fatalf("sanitised output does not parse: %v\n%s", err, buf.String())
	}
	if g2.NumCores() != 3 || len(g2.Edges) != 2 ||
		g2.Edges[0] != g.Edges[0] || g2.Edges[1] != g.Edges[1] {
		t.Fatalf("round trip changed the structure: %+v", g2)
	}
	cd := &CDCG{
		Cores:   []Core{{ID: 0, Name: "x y"}, {ID: 1, Name: "x_y"}},
		Packets: []Packet{{ID: 0, Src: 0, Dst: 1, Bits: 4}},
	}
	buf.Reset()
	if err := cd.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	cd2, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("sanitised CDCG output does not parse: %v\n%s", err, buf.String())
	}
	p := cd2.Packets[0]
	if cd2.NumCores() != 2 || p.Src != 0 || p.Dst != 1 || p.Bits != 4 {
		t.Fatalf("round trip changed the structure: %+v", cd2)
	}
}
