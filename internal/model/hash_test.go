package model

import (
	"strings"
	"testing"
)

func TestCDCGHashStableAndContentSensitive(t *testing.T) {
	g := PaperExampleCDCG()
	h1, h2 := g.Hash(), PaperExampleCDCG().Hash()
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}

	// Any content change must change the hash.
	mut := PaperExampleCDCG()
	mut.Packets[0].Bits++
	if mut.Hash() == h1 {
		t.Error("bit-volume change kept the hash")
	}
	mut = PaperExampleCDCG()
	mut.Cores[0].Name = "Z"
	if mut.Hash() == h1 {
		t.Error("core rename kept the hash")
	}
	mut = PaperExampleCDCG()
	mut.Deps = mut.Deps[:len(mut.Deps)-1]
	if mut.Hash() == h1 {
		t.Error("dropped dependence kept the hash")
	}
}

func TestCDCGHashIgnoresDepOrderAndDuplicates(t *testing.T) {
	g := PaperExampleCDCG()
	h := g.Hash()

	perm := PaperExampleCDCG()
	perm.Deps[0], perm.Deps[len(perm.Deps)-1] = perm.Deps[len(perm.Deps)-1], perm.Deps[0]
	if perm.Hash() != h {
		t.Error("dependence order changed the hash")
	}

	dup := PaperExampleCDCG()
	dup.Deps = append(dup.Deps, dup.Deps[0])
	if dup.Hash() != h {
		t.Error("duplicate dependence changed the hash")
	}
}

func TestCanonicalBytesResistStringForgery(t *testing.T) {
	// Two different graphs whose names concatenate identically must not
	// collide: the length prefix separates "ab"+"" from "a"+"b".
	a := &CDCG{Name: "ab", Cores: MakeCores(2, "", "x"),
		Packets: []Packet{{ID: 0, Src: 0, Dst: 1, Bits: 1}}}
	b := &CDCG{Name: "a", Cores: MakeCores(2, "b", "x"),
		Packets: []Packet{{ID: 0, Src: 0, Dst: 1, Bits: 1}}}
	if a.Hash() == b.Hash() {
		t.Error("length prefixing failed: distinct graphs collide")
	}
	if !strings.HasPrefix(string(a.CanonicalBytes()), "cdcg/v1 ") {
		t.Errorf("canonical bytes missing version tag: %q", a.CanonicalBytes()[:16])
	}
}

func TestCWGHashIgnoresEdgeOrder(t *testing.T) {
	g := PaperExampleCWG()
	h := g.Hash()
	perm := PaperExampleCWG()
	perm.Edges[0], perm.Edges[len(perm.Edges)-1] = perm.Edges[len(perm.Edges)-1], perm.Edges[0]
	if perm.Hash() != h {
		t.Error("edge order changed the CWG hash")
	}
	mut := PaperExampleCWG()
	mut.Edges[0].Bits++
	if mut.Hash() == h {
		t.Error("volume change kept the CWG hash")
	}
}
