// Package model defines the application models of the paper:
//
//   - CWG  — communication weighted graph (Definition 1): cores as
//     vertices, aggregate communicated bit volumes as edge weights.
//     Equivalent to the APCG of Hu/Marculescu and the core graph of
//     Murali/De Micheli.
//   - CDCG — communication dependence and computation graph
//     (Definition 2): one vertex per packet, annotated with the source
//     core's computation time and the packet's bit volume, plus dependence
//     edges and the implicit Start/End vertices.
//
// A CDCG can always be projected onto its CWG (volume aggregation); the
// reverse is impossible, which is precisely the information gap the paper
// exploits.
package model

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// CoreID identifies an IP core within one application. IDs are dense:
// 0..NumCores-1.
type CoreID int

// PacketID identifies a CDCG packet vertex. IDs are dense: 0..NumPackets-1.
type PacketID int

// Core is one IP core of the application.
type Core struct {
	ID   CoreID `json:"id"`
	Name string `json:"name"`
}

// CWGEdge is a directed communication c_a -> c_b carrying Bits total bits
// over the whole application run (the w_ab label of Definition 1).
type CWGEdge struct {
	Src  CoreID `json:"src"`
	Dst  CoreID `json:"dst"`
	Bits int64  `json:"bits"`
}

// CWG is the communication weighted graph <C, W> of Definition 1.
type CWG struct {
	Cores []Core    `json:"cores"`
	Edges []CWGEdge `json:"edges"`
}

// Packet is one CDCG vertex: the q-th packet from Src to Dst, transmitted
// after Compute cycles of the originating core have elapsed (t_aq) and
// carrying Bits bits (w_abq). Compute is expressed in clock cycles of the
// NoC (the paper uses λ=1 ns so cycles and nanoseconds coincide in its
// example).
type Packet struct {
	ID      PacketID `json:"id"`
	Src     CoreID   `json:"src"`
	Dst     CoreID   `json:"dst"`
	Compute int64    `json:"compute"`
	Bits    int64    `json:"bits"`
	Label   string   `json:"label,omitempty"`
}

// Dep is a dependence edge between two packet vertices: To may only start
// (begin its computation) once From has been fully delivered.
type Dep struct {
	From PacketID `json:"from"`
	To   PacketID `json:"to"`
}

// CDCG is the communication dependence and computation graph <P, D> of
// Definition 2. The special Start and End vertices are implicit: packets
// with no predecessors depend only on Start, and every packet reaches End.
type CDCG struct {
	Name    string   `json:"name,omitempty"`
	Cores   []Core   `json:"cores"`
	Packets []Packet `json:"packets"`
	Deps    []Dep    `json:"deps"`
}

// NumCores returns the number of cores in the application.
//nocvet:noalloc
func (g *CDCG) NumCores() int { return len(g.Cores) }

// NumPackets returns the number of packet vertices.
//nocvet:noalloc
func (g *CDCG) NumPackets() int { return len(g.Packets) }

// TotalBits returns the total communicated volume in bits over the whole
// application (the "total volume of bits during application execution"
// column of Table 1).
func (g *CDCG) TotalBits() int64 {
	var sum int64
	for _, p := range g.Packets {
		sum += p.Bits
	}
	return sum
}

// NumCores returns the number of cores in the application.
//nocvet:noalloc
func (g *CWG) NumCores() int { return len(g.Cores) }

// TotalBits returns the total communicated volume in bits.
func (g *CWG) TotalBits() int64 {
	var sum int64
	for _, e := range g.Edges {
		sum += e.Bits
	}
	return sum
}

// Validate checks structural well-formedness of a CWG: dense core IDs,
// endpoints in range, strictly positive volumes, no self communication and
// no duplicate (src,dst) pairs.
func (g *CWG) Validate() error {
	if err := validateCores(g.Cores); err != nil {
		return err
	}
	seen := make(map[[2]CoreID]bool, len(g.Edges))
	for i, e := range g.Edges {
		if int(e.Src) < 0 || int(e.Src) >= len(g.Cores) || int(e.Dst) < 0 || int(e.Dst) >= len(g.Cores) {
			return fmt.Errorf("model: CWG edge %d endpoints (%d,%d) out of range", i, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("model: CWG edge %d is a self communication on core %d", i, e.Src)
		}
		if e.Bits <= 0 {
			return fmt.Errorf("model: CWG edge %d has non-positive volume %d", i, e.Bits)
		}
		k := [2]CoreID{e.Src, e.Dst}
		if seen[k] {
			return fmt.Errorf("model: duplicate CWG edge %d->%d", e.Src, e.Dst)
		}
		seen[k] = true
	}
	return nil
}

// Validate checks structural well-formedness of a CDCG: dense core and
// packet IDs, endpoints in range, positive bit volumes, non-negative
// computation times, dependence endpoints in range, and acyclicity of the
// dependence relation (a cyclic CDCG can never execute).
func (g *CDCG) Validate() error {
	if err := validateCores(g.Cores); err != nil {
		return err
	}
	if len(g.Packets) == 0 {
		return errors.New("model: CDCG has no packets")
	}
	for i, p := range g.Packets {
		if int(p.ID) != i {
			return fmt.Errorf("model: packet %d has ID %d, want dense IDs", i, p.ID)
		}
		if int(p.Src) < 0 || int(p.Src) >= len(g.Cores) || int(p.Dst) < 0 || int(p.Dst) >= len(g.Cores) {
			return fmt.Errorf("model: packet %d endpoints (%d,%d) out of range", i, p.Src, p.Dst)
		}
		if p.Src == p.Dst {
			return fmt.Errorf("model: packet %d is a self communication on core %d", i, p.Src)
		}
		if p.Bits <= 0 {
			return fmt.Errorf("model: packet %d has non-positive volume %d", i, p.Bits)
		}
		if p.Compute < 0 {
			return fmt.Errorf("model: packet %d has negative computation time %d", i, p.Compute)
		}
	}
	dg, err := g.depGraph()
	if err != nil {
		return err
	}
	if dg.HasCycle() {
		return errors.New("model: CDCG dependence relation is cyclic")
	}
	return nil
}

func validateCores(cores []Core) error {
	if len(cores) == 0 {
		return errors.New("model: application has no cores")
	}
	for i, c := range cores {
		if int(c.ID) != i {
			return fmt.Errorf("model: core %d has ID %d, want dense IDs", i, c.ID)
		}
	}
	return nil
}

// depGraph builds the dependence digraph over packet vertices.
func (g *CDCG) depGraph() (*graph.Digraph, error) {
	dg := graph.New(len(g.Packets))
	for i, d := range g.Deps {
		if int(d.From) < 0 || int(d.From) >= len(g.Packets) || int(d.To) < 0 || int(d.To) >= len(g.Packets) {
			return nil, fmt.Errorf("model: dependence %d endpoints (%d,%d) out of range", i, d.From, d.To)
		}
		if err := dg.AddEdge(int(d.From), int(d.To)); err != nil {
			return nil, fmt.Errorf("model: dependence %d: %w", i, err)
		}
	}
	return dg, nil
}

// DepGraph returns the dependence digraph over packet vertices. The CDCG
// must be valid.
func (g *CDCG) DepGraph() (*graph.Digraph, error) { return g.depGraph() }

// StartPackets returns the packets with no predecessors — exactly the
// vertices pointed to by the implicit Start vertex.
func (g *CDCG) StartPackets() ([]PacketID, error) {
	dg, err := g.depGraph()
	if err != nil {
		return nil, err
	}
	var out []PacketID
	for _, v := range dg.Sources() {
		out = append(out, PacketID(v))
	}
	return out, nil
}

// ToCWG projects the CDCG onto its communication weighted graph by
// aggregating packet volumes per (src,dst) pair: w_ab = Σ_q w_abq. Edge
// order is deterministic (first occurrence order over packet IDs).
func (g *CDCG) ToCWG() *CWG {
	cores := make([]Core, len(g.Cores))
	copy(cores, g.Cores)
	type key struct{ s, d CoreID }
	idx := make(map[key]int)
	var edges []CWGEdge
	for _, p := range g.Packets {
		k := key{p.Src, p.Dst}
		if j, ok := idx[k]; ok {
			edges[j].Bits += p.Bits
		} else {
			idx[k] = len(edges)
			edges = append(edges, CWGEdge{Src: p.Src, Dst: p.Dst, Bits: p.Bits})
		}
	}
	return &CWG{Cores: cores, Edges: edges}
}

// ComputeLowerBound returns a mapping-independent lower bound on execution
// time in cycles: the maximum over dependence chains of the sum of
// computation times along the chain. Transmission takes additional time on
// any real NoC, so no mapping can beat this bound.
func (g *CDCG) ComputeLowerBound() (int64, error) {
	dg, err := g.depGraph()
	if err != nil {
		return 0, err
	}
	return dg.LongestPath(func(v int) int64 { return g.Packets[v].Compute })
}

// CoreName returns the display name of core id, falling back to "c<id>".
func (g *CDCG) CoreName(id CoreID) string {
	if int(id) >= 0 && int(id) < len(g.Cores) && g.Cores[id].Name != "" {
		return g.Cores[id].Name
	}
	return fmt.Sprintf("c%d", id)
}

// CoreName returns the display name of core id, falling back to "c<id>".
func (g *CWG) CoreName(id CoreID) string {
	if int(id) >= 0 && int(id) < len(g.Cores) && g.Cores[id].Name != "" {
		return g.Cores[id].Name
	}
	return fmt.Sprintf("c%d", id)
}

// MakeCores is a convenience constructor producing n cores with the given
// names (remaining cores get generated names).
func MakeCores(n int, names ...string) []Core {
	cores := make([]Core, n)
	for i := range cores {
		cores[i].ID = CoreID(i)
		if i < len(names) {
			cores[i].Name = names[i]
		} else {
			cores[i].Name = fmt.Sprintf("c%d", i)
		}
	}
	return cores
}
