package model

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExampleValid(t *testing.T) {
	g := PaperExampleCDCG()
	if err := g.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	if g.NumCores() != 4 {
		t.Fatalf("cores = %d, want 4", g.NumCores())
	}
	if g.NumPackets() != 6 {
		t.Fatalf("packets = %d, want 6", g.NumPackets())
	}
	if got := g.TotalBits(); got != 120 {
		t.Fatalf("total bits = %d, want 120", got)
	}
}

func TestPaperExampleCWGWeights(t *testing.T) {
	// Figure 1(a): wAB=15, wAF=15, wBF=40, wEA=35, wFB=15.
	cwg := PaperExampleCWG()
	if err := cwg.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[[2]CoreID]int64{
		{ExampleA, ExampleB}: 15,
		{ExampleA, ExampleF}: 15,
		{ExampleB, ExampleF}: 40,
		{ExampleE, ExampleA}: 35,
		{ExampleF, ExampleB}: 15,
	}
	if len(cwg.Edges) != len(want) {
		t.Fatalf("edges = %d, want %d", len(cwg.Edges), len(want))
	}
	for _, e := range cwg.Edges {
		if want[[2]CoreID{e.Src, e.Dst}] != e.Bits {
			t.Fatalf("edge %d->%d has %d bits, want %d", e.Src, e.Dst, e.Bits, want[[2]CoreID{e.Src, e.Dst}])
		}
	}
	if cwg.TotalBits() != 120 {
		t.Fatalf("total = %d, want 120", cwg.TotalBits())
	}
}

func TestStartPackets(t *testing.T) {
	g := PaperExampleCDCG()
	starts, err := g.StartPackets()
	if err != nil {
		t.Fatal(err)
	}
	// pAB1 (0), pBF1 (1) and pEA1 (2) have no predecessors.
	want := []PacketID{0, 1, 2}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestComputeLowerBound(t *testing.T) {
	g := PaperExampleCDCG()
	// Longest computation chain: pEA1(10) -> pAF1(6) -> pFB1(6) = 22
	// vs pEA1(10) -> pEA2(20) = 30.
	lb, err := g.ComputeLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb != 30 {
		t.Fatalf("lower bound = %d, want 30", lb)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *CDCG { return PaperExampleCDCG() }

	cases := []struct {
		name   string
		mutate func(*CDCG)
	}{
		{"no cores", func(g *CDCG) { g.Cores = nil }},
		{"no packets", func(g *CDCG) { g.Packets = nil }},
		{"sparse core ids", func(g *CDCG) { g.Cores[2].ID = 7 }},
		{"sparse packet ids", func(g *CDCG) { g.Packets[3].ID = 9 }},
		{"src out of range", func(g *CDCG) { g.Packets[0].Src = 99 }},
		{"dst out of range", func(g *CDCG) { g.Packets[0].Dst = -1 }},
		{"self packet", func(g *CDCG) { g.Packets[0].Dst = g.Packets[0].Src }},
		{"zero bits", func(g *CDCG) { g.Packets[0].Bits = 0 }},
		{"negative compute", func(g *CDCG) { g.Packets[0].Compute = -1 }},
		{"dep out of range", func(g *CDCG) { g.Deps[0].To = 42 }},
		{"dep self loop", func(g *CDCG) { g.Deps[0].To = g.Deps[0].From }},
		{"dep cycle", func(g *CDCG) { g.Deps = append(g.Deps, Dep{From: 5, To: 0}, Dep{From: 0, To: 5}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := base()
			tc.mutate(g)
			if err := g.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestCWGValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		g    *CWG
	}{
		{"no cores", &CWG{}},
		{"dup edge", &CWG{Cores: MakeCores(2), Edges: []CWGEdge{{0, 1, 5}, {0, 1, 7}}}},
		{"self edge", &CWG{Cores: MakeCores(2), Edges: []CWGEdge{{1, 1, 5}}}},
		{"zero bits", &CWG{Cores: MakeCores(2), Edges: []CWGEdge{{0, 1, 0}}}},
		{"range", &CWG{Cores: MakeCores(2), Edges: []CWGEdge{{0, 5, 3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestJSONRoundTripCDCG(t *testing.T) {
	g := PaperExampleCDCG()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCDCG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPackets() != g.NumPackets() || back.TotalBits() != g.TotalBits() {
		t.Fatalf("round trip changed the graph: %+v", back)
	}
	if back.Packets[2].Label != "pEA1" {
		t.Fatalf("labels lost: %+v", back.Packets[2])
	}
}

func TestJSONRoundTripCWG(t *testing.T) {
	g := PaperExampleCWG()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCWG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalBits() != 120 || len(back.Edges) != 5 {
		t.Fatalf("round trip changed the graph: %+v", back)
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := ReadCDCG(strings.NewReader(`{"cores":[],"packets":[]}`)); err == nil {
		t.Fatal("accepted empty CDCG")
	}
	if _, err := ReadCDCG(strings.NewReader(`{bogus`)); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ReadCWG(strings.NewReader(`{"cores":[{"id":0,"name":"x"}],"edges":[{"src":0,"dst":0,"bits":1}]}`)); err == nil {
		t.Fatal("accepted self edge")
	}
}

func TestDOTOutputs(t *testing.T) {
	cw := PaperExampleCWG().DOT()
	for _, want := range []string{"digraph cwg", `label="40"`, "n2 -> n0"} {
		if !strings.Contains(cw, want) {
			t.Fatalf("CWG DOT missing %q:\n%s", want, cw)
		}
	}
	cd := PaperExampleCDCG().DOT()
	for _, want := range []string{"digraph cdcg", "start -> p0", "p5 -> end", "p2 -> p3"} {
		if !strings.Contains(cd, want) {
			t.Fatalf("CDCG DOT missing %q:\n%s", want, cd)
		}
	}
}

// randomCDCG builds a structurally valid random CDCG for property tests.
func randomCDCG(rng *rand.Rand) *CDCG {
	nc := 2 + rng.Intn(8)
	np := 1 + rng.Intn(40)
	g := &CDCG{Cores: MakeCores(nc)}
	for i := 0; i < np; i++ {
		s := CoreID(rng.Intn(nc))
		d := CoreID(rng.Intn(nc))
		for d == s {
			d = CoreID(rng.Intn(nc))
		}
		g.Packets = append(g.Packets, Packet{
			ID: PacketID(i), Src: s, Dst: d,
			Compute: int64(rng.Intn(50)),
			Bits:    1 + int64(rng.Intn(1000)),
		})
	}
	// Forward edges only => acyclic.
	for i := 0; i < np; i++ {
		for j := i + 1; j < np; j++ {
			if rng.Float64() < 0.1 {
				g.Deps = append(g.Deps, Dep{From: PacketID(i), To: PacketID(j)})
			}
		}
	}
	return g
}

func TestQuickProjectionConservesVolume(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCDCG(rng)
		if g.Validate() != nil {
			return false
		}
		cwg := g.ToCWG()
		if cwg.Validate() != nil {
			return false
		}
		return cwg.TotalBits() == g.TotalBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectionEdgeCountAtMostPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCDCG(rng)
		cwg := g.ToCWG()
		// No more CWG edges than packets, and no duplicates.
		if len(cwg.Edges) > len(g.Packets) {
			return false
		}
		seen := map[[2]CoreID]bool{}
		for _, e := range cwg.Edges {
			k := [2]CoreID{e.Src, e.Dst}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreNameFallback(t *testing.T) {
	g := &CDCG{Cores: []Core{{ID: 0, Name: ""}}}
	if got := g.CoreName(0); got != "c0" {
		t.Fatalf("CoreName = %q", got)
	}
	if got := g.CoreName(12); got != "c12" {
		t.Fatalf("CoreName out of range = %q", got)
	}
}
