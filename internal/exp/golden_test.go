package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/noc"
)

// The golden tests pin the rendered experiment reports byte-for-byte on a
// small fixed-seed workload: a refactor that silently changes published
// numbers (routing, energy folding, simulator timing, search trajectory)
// fails here even when every unit test still passes. Regenerate with
//
//	go test ./internal/exp -run TestGolden -update
//
// and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite golden files with the current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output diverged from %s (run with -update and review the diff)\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

// goldenSuite is one fixed-seed 3x3 workload, built directly from the
// generator (not Table1Suite) so the golden baseline cannot drift when
// the published suite is retuned.
func goldenSuite(t *testing.T) []Workload {
	t.Helper()
	g, err := appgen.Generate(appgen.Params{
		Name: "golden-3x3", Cores: 7, Packets: 24, TotalBits: 4200,
		Seed: 42, Mode: appgen.ModePhases, ComputeMin: 5, ComputeMax: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []Workload{{Name: "golden-3x3", MeshW: 3, MeshH: 3, G: g, PaperCores: 7}}
}

// goldenOptions is the shared small deterministic search budget.
func goldenOptions() core.Options {
	return core.Options{Method: core.MethodSA, Seed: 7, TempSteps: 12, MovesPerTemp: 20}
}

func TestGoldenTable2(t *testing.T) {
	rep, err := RunTable2(goldenSuite(t), Table2Options{
		Search: goldenOptions(),
		Seeds:  []int64{7},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.golden", rep.Render())
}

func TestGoldenAblation(t *testing.T) {
	outs, err := RunAblations(goldenSuite(t), nil, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ablation.golden", RenderAblations(outs))
}

func TestGoldenDim3(t *testing.T) {
	g, err := Dim3Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunDim3(g, nil, noc.Config{}, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dim3.golden", RenderDim3(outs))
}

func TestGoldenPareto(t *testing.T) {
	g, err := ParetoWorkload(0)
	if err != nil {
		t.Fatal(err)
	}
	opts := goldenOptions()
	opts.Restarts = 7 // pareto walks: 3 pure-axis + 4 mixed weightings
	out, err := RunPareto(g, 4, 4, noc.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pareto.golden", RenderPareto(out))
}

func TestGoldenResilience(t *testing.T) {
	g, err := ParetoWorkload(0)
	if err != nil {
		t.Fatal(err)
	}
	// Fault draw 0.08/seed 2 fails two links of the 4x4; the pinned
	// report must show the resilience-driven mapping beating the
	// energy-optimal one on worst-case-fault latency (the acceptance
	// criterion of the resilience subsystem).
	out, err := RunResilience(g, 4, 4, noc.Config{}, goldenOptions(), 0.08, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resilient.WorstExecCycles >= out.Energy.WorstExecCycles {
		t.Fatalf("resilience winner's worst-fault texec %d does not beat the energy-optimal mapping's %d",
			out.Resilient.WorstExecCycles, out.Energy.WorstExecCycles)
	}
	checkGolden(t, "resilience.golden", RenderResilience(out))
}

func TestGoldenSensitivity(t *testing.T) {
	outs, err := RunSensitivity(nil, goldenSuite(t), noc.Config{}, 50, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sensitivity.golden", RenderSensitivity(outs))
}
