package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/topology"
	"repro/internal/trace"
)

// AblationOutcome reports one workload explored under a model/routing/
// topology variant. The paper treats the mesh with XY routing as its
// target and notes "other NoC topologies can be equally treated"; these
// ablations substantiate that the framework is topology-agnostic and
// quantify the design choices DESIGN.md calls out.
type AblationOutcome struct {
	Workload string
	Variant  string
	// ExecCycles/TotalPJ/ContentionCycles price the CDCM winner under
	// Tech007.
	ExecCycles       int64
	TotalPJ          float64
	ContentionCycles int64
}

// AblationVariant names a configuration under test.
type AblationVariant struct {
	Name string
	// Torus switches the grid to wrap-around links.
	Torus bool
	// Routing selects the deterministic routing function.
	Routing topology.RoutingAlgo
	// ArbitrateLocal makes the core-attachment path exclusive.
	ArbitrateLocal bool
}

// DefaultAblations returns the standard variant set: the paper's model,
// YX routing, a torus, and arbitrated delivery.
func DefaultAblations() []AblationVariant {
	return []AblationVariant{
		{Name: "mesh/XY (paper)", Routing: topology.RouteXY},
		{Name: "mesh/YX", Routing: topology.RouteYX},
		{Name: "torus/XY", Torus: true, Routing: topology.RouteXY},
		{Name: "mesh/XY+arbitrated-local", Routing: topology.RouteXY, ArbitrateLocal: true},
	}
}

// RunAblations explores each workload under each variant with the CDCM
// strategy and a fixed budget. The (workload, variant) grid runs on a
// worker pool sized by opts.Workers; outcomes are stored by grid index,
// so the result order never depends on scheduling.
func RunAblations(suite []Workload, variants []AblationVariant, opts core.Options) ([]AblationOutcome, error) {
	if len(variants) == 0 {
		variants = DefaultAblations()
	}
	outs := make([]AblationOutcome, len(suite)*len(variants))
	// opts.Ctx (when set) cancels the batch and the explorations within.
	err := par.ForEachCtx(opts.Ctx, len(outs), opts.Workers, func(i int) error {
		w := suite[i/len(variants)]
		v := variants[i%len(variants)]
		var mesh *topology.Mesh
		var err error
		if v.Torus {
			mesh, err = topology.NewTorus(w.MeshW, w.MeshH)
		} else {
			mesh, err = topology.NewMesh(w.MeshW, w.MeshH)
		}
		if err != nil {
			return err
		}
		cfg := noc.Default()
		cfg.Routing = v.Routing
		cfg.ArbitrateLocal = v.ArbitrateLocal
		res, err := core.Explore(core.StrategyCDCM, mesh, cfg, energy.Tech007, w.G, opts)
		if err != nil {
			return fmt.Errorf("exp: ablation %s on %s: %w", v.Name, w.Name, err)
		}
		outs[i] = AblationOutcome{
			Workload:         w.Name,
			Variant:          v.Name,
			ExecCycles:       res.Metrics.ExecCycles,
			TotalPJ:          res.Metrics.Total() * 1e12,
			ContentionCycles: res.Metrics.ContentionCycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// RenderAblations formats the variant comparison.
func RenderAblations(outs []AblationOutcome) string {
	headers := []string{"workload", "variant", "texec (cy)", "ENoC (pJ)", "contention (cy)"}
	var rows [][]string
	last := ""
	for _, o := range outs {
		name := o.Workload
		if name == last {
			name = ""
		} else {
			last = o.Workload
		}
		rows = append(rows, []string{
			name, o.Variant,
			fmt.Sprint(o.ExecCycles),
			fmt.Sprintf("%.5g", o.TotalPJ),
			fmt.Sprint(o.ContentionCycles),
		})
	}
	return "Topology/routing ablations — CDCM winner per variant (Tech 0.07um)\n" +
		trace.Table(headers, rows)
}
