package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

// SensitivityOutcome quantifies how mapping-sensitive a workload's
// execution time is: the spread of texec over random mappings, the best
// texec a time-only annealer can reach, and the gap the CWM winner leaves
// on the table. This analysis explains WHERE the paper's ETR comes from —
// workloads whose volume-optimal placements still leave avoidable
// contention (symmetric, phase-parallel traffic) show large gaps;
// hub-centred traffic shows nearly none.
type SensitivityOutcome struct {
	Workload string
	NoCSize  string
	// MinRandom/MeanRandom/MaxRandom summarise texec (cycles) over the
	// random-mapping sample.
	MinRandom, MeanRandom, MaxRandom int64
	// MeanContention is the average total contention over the sample.
	MeanContention int64
	// BestTime is the texec found by an annealer minimising texec alone.
	BestTime int64
	// CWMTime is the texec of the CWM (volume-only) winner.
	CWMTime int64
	// Gap is (CWMTime-BestTime)/CWMTime: the execution time a timing-blind
	// mapper leaves on the table — an upper bound on per-workload ETR.
	Gap float64
}

// RunSensitivity samples `samples` random mappings per workload and
// bounds the achievable ETR. Workloads are analysed concurrently on a
// pool of `workers` goroutines (0 or 1 = serial); each job owns its own
// simulator and RNG, so the outcome slice is bit-identical for every
// worker count. A non-nil ctx cancels the run between workloads and is
// threaded into every exploration; a nil ctx reproduces the exact
// uncancellable behavior.
func RunSensitivity(ctx context.Context, suite []Workload, cfg noc.Config, samples int, seed int64, workers int) ([]SensitivityOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	if samples <= 0 {
		samples = 200
	}
	outs := make([]SensitivityOutcome, len(suite))
	err := par.ForEachCtx(ctx, len(suite), workers, func(i int) error {
		w := suite[i]
		mesh, err := w.Mesh()
		if err != nil {
			return err
		}
		sim, err := wormhole.NewSimulator(mesh, cfg, w.G)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed))
		o := SensitivityOutcome{Workload: w.Name, NoCSize: w.NoCSize(), MinRandom: math.MaxInt64}
		var sumT, sumC int64
		for s := 0; s < samples; s++ {
			mp, err := mapping.Random(rng, w.G.NumCores(), mesh.NumTiles())
			if err != nil {
				return err
			}
			res, err := sim.Run(mp)
			if err != nil {
				return err
			}
			if res.ExecCycles < o.MinRandom {
				o.MinRandom = res.ExecCycles
			}
			if res.ExecCycles > o.MaxRandom {
				o.MaxRandom = res.ExecCycles
			}
			sumT += res.ExecCycles
			sumC += res.TotalContention
		}
		o.MeanRandom = sumT / int64(samples)
		o.MeanContention = sumC / int64(samples)

		timeObj := search.ObjectiveFunc(func(mp mapping.Mapping) (float64, error) {
			res, err := sim.Run(mp)
			if err != nil {
				return 0, err
			}
			return float64(res.ExecCycles), nil
		})
		tSA, err := (&search.Annealer{
			Problem: search.Problem{Mesh: mesh, NumCores: w.G.NumCores(), Obj: timeObj},
			Seed:    seed,
			Ctx:     ctx,
		}).Run()
		if err != nil {
			return err
		}
		o.BestTime = int64(tSA.BestCost)

		cw, err := core.Explore(core.StrategyCWM, mesh, cfg, energy.Tech007, w.G,
			core.Options{Method: core.MethodSA, Seed: seed, Ctx: ctx})
		if err != nil {
			return err
		}
		o.CWMTime = cw.Metrics.ExecCycles
		if o.CWMTime > 0 {
			o.Gap = float64(o.CWMTime-o.BestTime) / float64(o.CWMTime)
		}
		outs[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// RenderSensitivity formats the analysis.
func RenderSensitivity(outs []SensitivityOutcome) string {
	headers := []string{"workload", "NoC", "t rand min/mean/max", "mean contention", "t best", "t cwm", "ETR bound"}
	var rows [][]string
	for _, o := range outs {
		rows = append(rows, []string{
			o.Workload, o.NoCSize,
			fmt.Sprintf("%d/%d/%d", o.MinRandom, o.MeanRandom, o.MaxRandom),
			fmt.Sprint(o.MeanContention),
			fmt.Sprint(o.BestTime), fmt.Sprint(o.CWMTime),
			fmt.Sprintf("%.1f %%", o.Gap*100),
		})
	}
	return "Mapping sensitivity — texec spread and the gap a volume-only mapper leaves\n" +
		trace.Table(headers, rows)
}
