package exp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/noc"
)

func TestBatchRunnersHonorContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := core.Options{Ctx: ctx, Workers: 2}

	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDim3(model.PaperExampleCDCG(), nil, noc.Default(), opts); !errors.Is(err, context.Canceled) {
		t.Errorf("RunDim3: err = %v, want context.Canceled", err)
	}
	if _, err := RunAblations(suite, nil, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAblations: err = %v, want context.Canceled", err)
	}
	if _, err := RunTable2(suite, Table2Options{Search: opts, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTable2: err = %v, want context.Canceled", err)
	}
}
