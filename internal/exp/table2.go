package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/trace"
)

// Table2Options tunes the Table-2 regeneration.
type Table2Options struct {
	// Cfg is the NoC architecture (default noc.Default()).
	Cfg noc.Config
	// Search is the shared budget for both strategies. The zero value
	// uses MethodSA with annealer defaults.
	Search core.Options
	// Seeds averages each workload over several search seeds (default
	// {1}). The paper reports per-size averages; seeds reduce SA noise.
	Seeds []int64
	// MaxTiles skips workloads on larger NoCs (0 = no limit) so tests and
	// quick runs can use a subset.
	MaxTiles int
	// Techs are the reporting profiles (default Tech035, Tech007).
	Techs []energy.Tech
	// Workers runs the (workload, seed) comparisons concurrently on a
	// bounded pool (0 or 1 = serial). Outcomes are merged in job order,
	// so the report is bit-identical for every Workers value. This is
	// batch-level parallelism on top of whatever Search.Workers gives
	// each comparison internally.
	Workers int
}

func (o *Table2Options) fill() {
	if o.Cfg == (noc.Config{}) {
		o.Cfg = noc.Default()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if len(o.Techs) == 0 {
		o.Techs = []energy.Tech{energy.Tech035, energy.Tech007}
	}
}

// WorkloadOutcome is one (workload, seed) comparison.
type WorkloadOutcome struct {
	Workload string
	NoCSize  string
	Seed     int64
	ETR      float64
	// ECS and StaticShare are keyed by tech name. StaticShare is the
	// leakage fraction of the CWM mapping's total energy — the lever that
	// converts time savings into energy savings.
	ECS         map[string]float64
	StaticShare map[string]float64
	// CWMExecCycles / CDCMExecCycles are the winners' execution times.
	CWMExecCycles, CDCMExecCycles int64
	// Contention of each winner, in cycles.
	CWMContention, CDCMContention int64
}

// Table2Row aggregates outcomes per NoC size (the paper's rows).
type Table2Row struct {
	NoCSize   string
	Workloads int
	Runs      int
	ETR       float64
	// ETRStd is the standard deviation of ETR across the row's runs
	// (workloads × seeds) — the paper reports bare averages; the spread
	// shows how much is workload mix vs annealing noise.
	ETRStd float64
	ECS    map[string]float64
}

// Table2Report is the regenerated table plus per-run detail.
type Table2Report struct {
	Rows     []Table2Row
	Average  Table2Row
	Outcomes []WorkloadOutcome
	Techs    []string
}

// RunTable2 executes the paper's Table-2 protocol over the given suite.
func RunTable2(suite []Workload, opts Table2Options) (*Table2Report, error) {
	opts.fill()
	var techNames []string
	for _, t := range opts.Techs {
		techNames = append(techNames, t.Name)
	}
	rep := &Table2Report{Techs: techNames}

	// Materialise the (workload, seed) job list up front so the batch
	// can run on a worker pool with outcomes stored by job index —
	// report order and content are then independent of scheduling.
	type job struct {
		w    Workload
		seed int64
	}
	var jobs []job
	for _, w := range suite {
		if opts.MaxTiles > 0 && w.MeshW*w.MeshH > opts.MaxTiles {
			continue
		}
		for _, seed := range opts.Seeds {
			jobs = append(jobs, job{w: w, seed: seed})
		}
	}
	outcomes := make([]WorkloadOutcome, len(jobs))
	// Search.Ctx (when set) cancels both the batch dispatch and, because
	// Search is the options every comparison runs under, the individual
	// explorations inside each job.
	err := par.ForEachCtx(opts.Search.Ctx, len(jobs), opts.Workers, func(i int) error {
		w, seed := jobs[i].w, jobs[i].seed
		mesh, err := w.Mesh()
		if err != nil {
			return err
		}
		so := opts.Search
		so.Seed = seed
		// Size-scaled annealing budget unless the caller fixed one:
		// large instances need a longer schedule, reheats escape the
		// rugged contention landscape of the CDCM objective.
		if so.TempSteps == 0 && so.MovesPerTemp == 0 {
			tiles := w.MeshW * w.MeshH
			if tiles > 25 {
				so.TempSteps = 180
				so.MovesPerTemp = 15 * tiles
				so.StallSteps = 30
				so.Reheats = 2
			} else {
				so.TempSteps = 140
				so.MovesPerTemp = 20 * tiles
				so.StallSteps = 25
				so.Reheats = 2
			}
		}
		cmp, err := core.CompareModels(mesh, opts.Cfg, w.G, core.CompareOptions{
			Options:     so,
			ReportTechs: opts.Techs,
		})
		if err != nil {
			return fmt.Errorf("exp: %s seed %d: %w", w.Name, seed, err)
		}
		out := WorkloadOutcome{
			Workload:    w.Name,
			NoCSize:     w.NoCSize(),
			Seed:        seed,
			ETR:         cmp.ETR,
			ECS:         cmp.ECS,
			StaticShare: make(map[string]float64, len(opts.Techs)),
		}
		// Execution-time detail comes from the optimisation tech (the
		// deep-submicron point, which also defines ETR).
		ref := opts.Techs[len(opts.Techs)-1].Name
		out.CWMExecCycles = cmp.CWMMetrics[ref].ExecCycles
		out.CDCMExecCycles = cmp.CDCMMetrics[ref].ExecCycles
		out.CWMContention = cmp.CWMMetrics[ref].ContentionCycles
		out.CDCMContention = cmp.CDCMMetrics[ref].ContentionCycles
		for _, tech := range opts.Techs {
			out.StaticShare[tech.Name] = cmp.CWMMetrics[tech.Name].Energy.StaticShare()
		}
		outcomes[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Outcomes = outcomes

	// Aggregate by NoC size in paper order.
	bySize := make(map[string][]WorkloadOutcome)
	for _, o := range rep.Outcomes {
		bySize[o.NoCSize] = append(bySize[o.NoCSize], o)
	}
	var allRows []WorkloadOutcome
	for _, size := range SizeOrder {
		outs := bySize[size]
		if len(outs) == 0 {
			continue
		}
		row := Table2Row{NoCSize: size, Runs: len(outs), ECS: map[string]float64{}}
		seen := map[string]bool{}
		for _, o := range outs {
			row.ETR += o.ETR
			for _, tn := range techNames {
				row.ECS[tn] += o.ECS[tn]
			}
			if !seen[o.Workload] {
				seen[o.Workload] = true
				row.Workloads++
			}
		}
		row.ETR /= float64(len(outs))
		for _, tn := range techNames {
			row.ECS[tn] /= float64(len(outs))
		}
		var varSum float64
		for _, o := range outs {
			d := o.ETR - row.ETR
			varSum += d * d
		}
		row.ETRStd = math.Sqrt(varSum / float64(len(outs)))
		rep.Rows = append(rep.Rows, row)
		allRows = append(allRows, outs...)
	}
	if len(allRows) > 0 {
		avg := Table2Row{NoCSize: "average", Runs: len(allRows), ECS: map[string]float64{}}
		for _, o := range allRows {
			avg.ETR += o.ETR
			for _, tn := range techNames {
				avg.ECS[tn] += o.ECS[tn]
			}
		}
		avg.ETR /= float64(len(allRows))
		for _, tn := range techNames {
			avg.ECS[tn] /= float64(len(allRows))
		}
		rep.Average = avg
	}
	return rep, nil
}

// Render formats the report in the paper's Table-2 layout plus the
// measured static-share diagnostics.
func (r *Table2Report) Render() string {
	headers := []string{"NoC size", "apps", "runs", "ETR"}
	for _, tn := range r.Techs {
		headers = append(headers, "ECS "+tn)
	}
	var rows [][]string
	addRow := func(row Table2Row) {
		etr := fmt.Sprintf("%.1f %%", row.ETR*100)
		if row.Runs > 1 && row.ETRStd > 0 {
			etr = fmt.Sprintf("%.1f ± %.1f %%", row.ETR*100, row.ETRStd*100)
		}
		cells := []string{row.NoCSize, fmt.Sprint(row.Workloads), fmt.Sprint(row.Runs), etr}
		for _, tn := range r.Techs {
			cells = append(cells, fmt.Sprintf("%.2f %%", row.ECS[tn]*100))
		}
		rows = append(rows, cells)
	}
	for _, row := range r.Rows {
		addRow(row)
	}
	if r.Average.Runs > 0 {
		avg := r.Average
		avg.Workloads = 0
		for _, row := range r.Rows {
			avg.Workloads += row.Workloads
		}
		addRow(avg)
	}
	var b strings.Builder
	b.WriteString("Table 2 — average energy and execution time reductions, CDCM vs CWM\n")
	b.WriteString(trace.Table(headers, rows))

	// Diagnostics: measured leakage shares per tech (suite average).
	share := map[string]float64{}
	if len(r.Outcomes) > 0 {
		for _, o := range r.Outcomes {
			for _, tn := range r.Techs {
				share[tn] += o.StaticShare[tn]
			}
		}
		b.WriteString("measured static (leakage) energy share of CWM mappings:")
		for _, tn := range r.Techs {
			fmt.Fprintf(&b, "  %s: %.1f %%", tn, share[tn]/float64(len(r.Outcomes))*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
