package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
)

func TestRunAblations(t *testing.T) {
	suite := smallSuite(t, 6)[:1]
	outs, err := RunAblations(suite, nil, core.Options{
		Method: core.MethodSA, Seed: 1, TempSteps: 8, MovesPerTemp: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(DefaultAblations()) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(DefaultAblations()))
	}
	for _, o := range outs {
		if o.ExecCycles <= 0 || o.TotalPJ <= 0 {
			t.Fatalf("empty metrics: %+v", o)
		}
	}
	out := RenderAblations(outs)
	for _, want := range []string{"mesh/XY (paper)", "torus/XY", "arbitrated-local"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblationsCustomVariant(t *testing.T) {
	suite := smallSuite(t, 6)[:1]
	outs, err := RunAblations(suite, []AblationVariant{{Name: "only-one"}},
		core.Options{Method: core.MethodSA, Seed: 1, TempSteps: 5, MovesPerTemp: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Variant != "only-one" {
		t.Fatalf("outs = %+v", outs)
	}
}

func TestRunBuffersSweep(t *testing.T) {
	suite := smallSuite(t, 6)[:1]
	outs, err := RunBuffers(suite, noc.Config{}, []int64{1, 8},
		core.Options{Method: core.MethodSA, Seed: 1, TempSteps: 8, MovesPerTemp: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	o := outs[0]
	// Two bounded depths plus the unbounded reference.
	if len(o.Depths) != 3 || o.Depths[2] != -1 {
		t.Fatalf("depths = %v", o.Depths)
	}
	for i := range o.Depths {
		if o.CWMExec[i] <= 0 || o.CDCMExec[i] <= 0 {
			t.Fatalf("missing exec values: %+v", o)
		}
	}
	out := RenderBuffers(outs)
	for _, want := range []string{"B=1", "B=8", "unbounded", "CWM", "CDCM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
