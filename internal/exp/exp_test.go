package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/noc"
)

// TestTable1SuiteMatchesPaper verifies every published (NoC size, cores,
// packets, bits) triple of Table 1 is regenerated exactly.
func TestTable1SuiteMatchesPaper(t *testing.T) {
	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 18 {
		t.Fatalf("suite has %d workloads, want 18", len(suite))
	}
	type row struct {
		size    string
		cores   int
		packets int
		bits    int64
	}
	want := []row{
		{"3x2", 5, 43, 78817}, {"3x2", 6, 17, 174}, {"3x2", 6, 43, 49003},
		{"2x4", 5, 16, 1600}, {"2x4", 7, 33, 23235}, {"2x4", 8, 18, 5930},
		{"3x3", 7, 16, 1600}, {"3x3", 9, 18, 1860}, {"3x3", 9, 32, 43120},
		{"2x5", 8, 24, 2215}, {"2x5", 9, 51, 23244}, {"2x5", 10, 22, 322221},
		{"3x4", 10, 15, 3100}, {"3x4", 12, 25, 2578920}, {"3x4", 12, 88, 115778}, // paper: 14 cores (erratum)
		{"8x8", 62, 344, 9799200},
		{"10x10", 93, 415, 562565990},
		{"12x10", 99, 446, 680006120},
	}
	have := map[row]int{}
	for _, w := range suite {
		if err := w.G.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
		have[row{w.NoCSize(), w.G.NumCores(), w.G.NumPackets(), w.G.TotalBits()}]++
		if w.G.NumCores() > w.MeshW*w.MeshH {
			t.Errorf("%s oversubscribes its %s mesh", w.Name, w.NoCSize())
		}
	}
	for _, r := range want {
		if have[r] == 0 {
			t.Errorf("missing workload %+v", r)
		}
		have[r]--
	}
}

func TestTable1SuiteEmbeddedCount(t *testing.T) {
	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	var embedded int
	for _, w := range suite {
		if w.Embedded {
			embedded++
		}
	}
	// The paper: "4 embedded applications ... with some variations, for a
	// total of 8 embedded applications".
	if embedded != 8 {
		t.Fatalf("embedded instances = %d, want 8", embedded)
	}
	// The erratum instance is recorded.
	var found bool
	for _, w := range suite {
		if w.PaperCores == 14 && w.G.NumCores() == 12 {
			found = true
		}
	}
	if !found {
		t.Fatal("the 14-core erratum instance is not recorded")
	}
}

func TestRenderTable1(t *testing.T) {
	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(suite)
	for _, want := range []string{"3 x 2", "12 x 10", "680006120", "12(paper:14)", "fft8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFigureExampleReproducesPaper(t *testing.T) {
	f, err := NewFigureExample()
	if err != nil {
		t.Fatal(err)
	}
	if f.MetricsA.ExecCycles != 100 || f.MetricsB.ExecCycles != 90 {
		t.Fatalf("texec = %d/%d, want 100/90", f.MetricsA.ExecCycles, f.MetricsB.ExecCycles)
	}
	fig1 := f.RenderFigure1()
	if !strings.Contains(fig1, "digraph cwg") || !strings.Contains(fig1, "[B][A]") {
		t.Fatalf("Figure 1 incomplete:\n%s", fig1)
	}
	fig2, err := f.RenderFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig2, "energy = 390 pJ") {
		t.Fatalf("Figure 2 missing 390 pJ:\n%s", fig2)
	}
	// Both mappings identical under CWM: 390 appears for (a) and (b).
	if strings.Count(fig2, "energy = 390 pJ") != 2 {
		t.Fatalf("Figure 2 should show 390 pJ twice:\n%s", fig2)
	}
	fig3 := f.RenderFigure3()
	for _, want := range []string{"energy = 400 pJ", "texec = 100 ns", "energy = 399 pJ", "texec = 90 ns", "*15(A>F):[46,69]"} {
		if !strings.Contains(fig3, want) {
			t.Fatalf("Figure 3 missing %q:\n%s", want, fig3)
		}
	}
	if !strings.Contains(f.RenderFigure4(), "texec = 100 cycles") {
		t.Fatal("Figure 4 missing texec")
	}
	if !strings.Contains(f.RenderFigure5(), "texec = 90 cycles") {
		t.Fatal("Figure 5 missing texec")
	}
}

// smallSuite trims the Table-1 suite for fast protocol tests.
func smallSuite(t *testing.T, maxTiles int) []Workload {
	t.Helper()
	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	var out []Workload
	for _, w := range suite {
		if w.MeshW*w.MeshH <= maxTiles {
			out = append(out, w)
		}
	}
	return out
}

func TestRunTable2SmallSizes(t *testing.T) {
	suite := smallSuite(t, 8)[:3] // 3x2 row + one 2x4
	rep, err := RunTable2(suite, Table2Options{
		Search: core.Options{Method: core.MethodSA, TempSteps: 12, MovesPerTemp: 30},
		Seeds:  []int64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != len(suite)*2 {
		t.Fatalf("outcomes = %d, want %d", len(rep.Outcomes), len(suite)*2)
	}
	if rep.Average.Runs != len(rep.Outcomes) {
		t.Fatalf("average over %d runs, want %d", rep.Average.Runs, len(rep.Outcomes))
	}
	for _, o := range rep.Outcomes {
		if o.CWMExecCycles <= 0 || o.CDCMExecCycles <= 0 {
			t.Fatalf("missing exec cycles: %+v", o)
		}
		// CDCM optimises ENoC at 0.07um; it can trade a little dynamic
		// energy for time, but must not be catastrophically worse.
		if o.ECS["0.07um"] < -0.5 {
			t.Fatalf("CDCM catastrophically worse: %+v", o)
		}
	}
	out := rep.Render()
	for _, want := range []string{"Table 2", "ETR", "ECS 0.07um", "average", "static"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2MaxTilesFilter(t *testing.T) {
	suite := smallSuite(t, 9)
	rep, err := RunTable2(suite, Table2Options{
		Search:   core.Options{Method: core.MethodSA, TempSteps: 6, MovesPerTemp: 10},
		MaxTiles: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.NoCSize != "3x2" {
			t.Fatalf("filter leaked %s", o.NoCSize)
		}
	}
}

func TestRunESvsSA(t *testing.T) {
	suite := smallSuite(t, 6) // 3x2 instances: spaces 720, 720, 720
	outs, err := RunESvsSA(suite, noc.Config{}, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(suite)*2 {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(suite)*2)
	}
	for _, o := range outs {
		if o.SACost < o.ESCost*(1-1e-9) {
			t.Fatalf("SA beat certified ES optimum: %+v", o)
		}
		if !o.SAMatches {
			t.Logf("note: SA missed the optimum on %s/%s (%.4g vs %.4g)",
				o.Workload, o.Strategy, o.SACost, o.ESCost)
		}
	}
	if !strings.Contains(RenderESvsSA(outs), "ES vs SA") {
		t.Fatal("render broken")
	}
}

func TestRunCPUTime(t *testing.T) {
	suite := smallSuite(t, 8)[:2]
	outs, err := RunCPUTime(suite, noc.Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.NCC <= 0 || o.NDP <= 0 || o.NDP < o.NCC {
			t.Fatalf("bad complexity counts: %+v", o)
		}
		if o.CDCMEvalNS <= 0 || o.CWMEvalNS <= 0 {
			t.Fatalf("bad timings: %+v", o)
		}
	}
	if !strings.Contains(RenderCPUTime(outs), "NDP/NCC") {
		t.Fatal("render broken")
	}
}

func TestRunVsRandom(t *testing.T) {
	suite := smallSuite(t, 6)[:1]
	outs, err := RunVsRandom(suite, noc.Config{}, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	o := outs[0]
	if o.GuidedCost > o.RandomCost {
		t.Fatalf("SA worse than the random-mapping mean: %+v", o)
	}
	if o.Saving <= 0 {
		t.Fatalf("no saving vs random: %+v", o)
	}
	if !strings.Contains(RenderVsRandom(outs), "average") {
		t.Fatal("render broken")
	}
}

func TestBySizeGrouping(t *testing.T) {
	suite, err := Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	groups := BySize(suite)
	if len(groups["3x2"]) != 3 || len(groups["8x8"]) != 1 {
		t.Fatalf("grouping wrong: %d, %d", len(groups["3x2"]), len(groups["8x8"]))
	}
	var total int
	for _, size := range SizeOrder {
		total += len(groups[size])
	}
	if total != 18 {
		t.Fatalf("size order covers %d workloads", total)
	}
}

func TestWorkloadAccessors(t *testing.T) {
	w := Workload{Name: "x", MeshW: 3, MeshH: 2, G: model.PaperExampleCDCG(), PaperCores: 4}
	if w.NoCSize() != "3x2" {
		t.Fatalf("NoCSize = %q", w.NoCSize())
	}
	mesh, err := w.Mesh()
	if err != nil || mesh.NumTiles() != 6 {
		t.Fatalf("Mesh: %v", err)
	}
}
