package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/search"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

// RenderTable1 regenerates Table 1: the aggregate characteristics of the
// workload suite, grouped by NoC size like the paper.
func RenderTable1(suite []Workload) string {
	bySize := BySize(suite)
	headers := []string{"NoC size", "Number of cores", "Number of packets", "Total volume of bits", "instances"}
	var rows [][]string
	for _, size := range SizeOrder {
		ws := bySize[size]
		if len(ws) == 0 {
			continue
		}
		var cores, packets, bits, names []string
		for _, w := range ws {
			c := fmt.Sprint(w.G.NumCores())
			if w.PaperCores != w.G.NumCores() {
				c = fmt.Sprintf("%d(paper:%d)", w.G.NumCores(), w.PaperCores)
			}
			cores = append(cores, c)
			packets = append(packets, fmt.Sprint(w.G.NumPackets()))
			bits = append(bits, fmt.Sprint(w.G.TotalBits()))
			tag := w.Name
			if !w.Embedded {
				tag += "*"
			}
			names = append(names, tag)
		}
		rows = append(rows, []string{
			strings.Replace(size, "x", " x ", 1),
			strings.Join(cores, "; "),
			strings.Join(packets, "; "),
			strings.Join(bits, "; "),
			strings.Join(names, "; "),
		})
	}
	return "Table 1 — summary of NoC/application features (* = TGFF-like random benchmark)\n" +
		trace.Table(headers, rows)
}

// FigureExample bundles the Figure 1-5 regeneration: the worked example's
// graphs, both mappings, CWM and CDCM annotations and timing diagrams.
type FigureExample struct {
	Mesh     *topology.Mesh
	Cfg      noc.Config
	Tech     energy.Tech
	G        *model.CDCG
	MapA     mapping.Mapping
	MapB     mapping.Mapping
	CWM      *core.CWM
	CDCM     *core.CDCM
	ResA     *wormhole.Result
	ResB     *wormhole.Result
	MetricsA core.Metrics
	MetricsB core.Metrics
}

// NewFigureExample sets up the paper's Section 4.1 example.
func NewFigureExample() (*FigureExample, error) {
	mesh, err := topology.NewMesh(2, 2)
	if err != nil {
		return nil, err
	}
	f := &FigureExample{
		Mesh: mesh,
		Cfg:  noc.PaperExample(),
		Tech: energy.PaperExample(),
		G:    model.PaperExampleCDCG(),
		MapA: mapping.Mapping{1, 0, 3, 2}, // Figure 1(c): B,A / F,E
		MapB: mapping.Mapping{3, 0, 1, 2}, // Figure 1(d): B,E / F,A
	}
	if f.CWM, err = core.NewCWM(mesh, f.Cfg, f.Tech, f.G.ToCWG()); err != nil {
		return nil, err
	}
	if f.CDCM, err = core.NewCDCM(mesh, f.Cfg, f.Tech, f.G); err != nil {
		return nil, err
	}
	f.CDCM.Simulator().RecordOccupancy = true
	if f.ResA, f.MetricsA, err = f.CDCM.Simulate(f.MapA); err != nil {
		return nil, err
	}
	if f.ResB, f.MetricsB, err = f.CDCM.Simulate(f.MapB); err != nil {
		return nil, err
	}
	return f, nil
}

// RenderFigure1 prints the example CWG and CDCG in DOT plus the two
// mappings.
func (f *FigureExample) RenderFigure1() string {
	var b strings.Builder
	b.WriteString("Figure 1(a) — CWG:\n")
	b.WriteString(f.G.ToCWG().DOT())
	b.WriteString("\nFigure 1(b) — CDCG:\n")
	b.WriteString(f.G.DOT())
	name := func(c model.CoreID) string { return f.G.CoreName(c) }
	b.WriteString("\nFigure 1(c) — mapping (a):\n")
	b.WriteString(trace.MappingGrid(f.Mesh, name, f.MapA))
	b.WriteString("\nFigure 1(d) — mapping (b):\n")
	b.WriteString(trace.MappingGrid(f.Mesh, name, f.MapB))
	return b.String()
}

// RenderFigure2 prints the CWM energy annotation of both mappings.
func (f *FigureExample) RenderFigure2() (string, error) {
	var b strings.Builder
	for _, m := range []struct {
		name string
		mp   mapping.Mapping
	}{{"(a)", f.MapA}, {"(b)", f.MapB}} {
		rb, lb, _, err := f.CWM.Traffic(m.mp)
		if err != nil {
			return "", err
		}
		cost, err := f.CWM.Cost(m.mp)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Figure 2%s — CWM estimation for mapping %s (energy = %.4g pJ):\n",
			m.name, m.name, cost*1e12)
		b.WriteString(trace.AnnotateCWM(f.Mesh, f.CWM.G, m.mp, rb, lb, f.Tech.ERbit, f.Tech.ELbit))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RenderFigure3 prints the CDCM occupancy annotation of both mappings.
func (f *FigureExample) RenderFigure3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(a) — CDCM, mapping (a): energy = %.4g pJ, texec = %.4g ns\n",
		f.MetricsA.Total()*1e12, f.MetricsA.ExecNS)
	b.WriteString(trace.AnnotateSchedule(f.Mesh, f.G, f.MapA, f.ResA))
	fmt.Fprintf(&b, "\nFigure 3(b) — CDCM, mapping (b): energy = %.4g pJ, texec = %.4g ns\n",
		f.MetricsB.Total()*1e12, f.MetricsB.ExecNS)
	b.WriteString(trace.AnnotateSchedule(f.Mesh, f.G, f.MapB, f.ResB))
	return b.String()
}

// RenderFigure4 prints the timing diagram of mapping (a).
func (f *FigureExample) RenderFigure4() string {
	return "Figure 4 — timing for the Figure 3(a) mapping:\n" +
		trace.Gantt(f.G, f.Cfg, f.ResA, 100)
}

// RenderFigure5 prints the timing diagram of mapping (b).
func (f *FigureExample) RenderFigure5() string {
	return "Figure 5 — timing for the Figure 3(b) mapping:\n" +
		trace.Gantt(f.G, f.Cfg, f.ResB, 100)
}

// ESvsSAOutcome is the optimality check on one workload.
type ESvsSAOutcome struct {
	Workload  string
	Strategy  core.Strategy
	Space     int64
	ESCost    float64
	SACost    float64
	SAMatches bool // SA found a cost within 0.1% of the certified optimum
}

// RunESvsSA reproduces the Section-5 claim that exhaustive search and
// simulated annealing reach the same results on small NoCs. Workloads
// whose placement space exceeds maxEvals are skipped (the paper itself
// notes ES becomes unfeasible beyond small sizes).
func RunESvsSA(suite []Workload, cfg noc.Config, maxEvals int64, seed int64) ([]ESvsSAOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	var outs []ESvsSAOutcome
	for _, w := range suite {
		space := mapping.Count(w.G.NumCores(), w.MeshW*w.MeshH)
		if space <= 0 || space > maxEvals {
			continue
		}
		mesh, err := w.Mesh()
		if err != nil {
			return nil, err
		}
		for _, strat := range []core.Strategy{core.StrategyCWM, core.StrategyCDCM} {
			es, err := core.Explore(strat, mesh, cfg, energy.Tech007, w.G,
				core.Options{Method: core.MethodES})
			if err != nil {
				return nil, fmt.Errorf("exp: ES %s on %s: %w", strat, w.Name, err)
			}
			sa, err := core.Explore(strat, mesh, cfg, energy.Tech007, w.G,
				core.Options{Method: core.MethodSA, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("exp: SA %s on %s: %w", strat, w.Name, err)
			}
			outs = append(outs, ESvsSAOutcome{
				Workload:  w.Name,
				Strategy:  strat,
				Space:     space,
				ESCost:    es.Search.BestCost,
				SACost:    sa.Search.BestCost,
				SAMatches: sa.Search.BestCost <= es.Search.BestCost*1.001,
			})
		}
	}
	return outs, nil
}

// RenderESvsSA formats the optimality check.
func RenderESvsSA(outs []ESvsSAOutcome) string {
	headers := []string{"workload", "model", "space", "ES cost (pJ)", "SA cost (pJ)", "SA optimal"}
	var rows [][]string
	for _, o := range outs {
		rows = append(rows, []string{
			o.Workload, o.Strategy.String(), fmt.Sprint(o.Space),
			fmt.Sprintf("%.4g", o.ESCost*1e12), fmt.Sprintf("%.4g", o.SACost*1e12),
			fmt.Sprint(o.SAMatches),
		})
	}
	return "ES vs SA — small-NoC optimality check (Section 5)\n" + trace.Table(headers, rows)
}

// CPUTimeOutcome measures evaluator cost on one workload.
type CPUTimeOutcome struct {
	Workload string
	// NCC is the number of core-to-core communications (CWG edges); NDP
	// the number of dependences+packets (CDCG size) — the complexity
	// drivers named in Section 5.
	NCC, NDP int
	// CWMEvalNS and CDCMEvalNS are mean per-evaluation wall times.
	CWMEvalNS, CDCMEvalNS float64
	// Ratio is CDCMEvalNS/CWMEvalNS.
	Ratio float64
}

// RunCPUTime measures the per-evaluation CPU cost of both models across
// the suite (the paper: "the worst case for CDCM took only 23% more CPU
// time than for CWM"). iters evaluations are timed per model per workload.
func RunCPUTime(suite []Workload, cfg noc.Config, iters int) ([]CPUTimeOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	if iters <= 0 {
		iters = 50
	}
	var outs []CPUTimeOutcome
	for _, w := range suite {
		mesh, err := w.Mesh()
		if err != nil {
			return nil, err
		}
		cwm, err := core.NewCWM(mesh, cfg, energy.Tech007, w.G.ToCWG())
		if err != nil {
			return nil, err
		}
		cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, w.G)
		if err != nil {
			return nil, err
		}
		mp := mapping.Identity(w.G.NumCores())
		// Warm route caches before timing.
		if _, err := cwm.Cost(mp); err != nil {
			return nil, err
		}
		if _, err := cdcm.Cost(mp); err != nil {
			return nil, err
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cwm.Cost(mp); err != nil {
				return nil, err
			}
		}
		cwmNS := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cdcm.Cost(mp); err != nil {
				return nil, err
			}
		}
		cdcmNS := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		ratio := 0.0
		if cwmNS > 0 {
			ratio = cdcmNS / cwmNS
		}
		outs = append(outs, CPUTimeOutcome{
			Workload:  w.Name,
			NCC:       len(w.G.ToCWG().Edges),
			NDP:       w.G.NumPackets() + len(w.G.Deps),
			CWMEvalNS: cwmNS, CDCMEvalNS: cdcmNS, Ratio: ratio,
		})
	}
	return outs, nil
}

// RenderCPUTime formats the evaluator cost comparison.
func RenderCPUTime(outs []CPUTimeOutcome) string {
	headers := []string{"workload", "NCC", "NDP", "NDP/NCC", "CWM eval", "CDCM eval", "CDCM/CWM"}
	var rows [][]string
	sorted := append([]CPUTimeOutcome(nil), outs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NDP < sorted[j].NDP })
	for _, o := range sorted {
		rows = append(rows, []string{
			o.Workload, fmt.Sprint(o.NCC), fmt.Sprint(o.NDP),
			fmt.Sprintf("%.1f", float64(o.NDP)/float64(o.NCC)),
			fmt.Sprintf("%.1fus", o.CWMEvalNS/1e3),
			fmt.Sprintf("%.1fus", o.CDCMEvalNS/1e3),
			fmt.Sprintf("%.1fx", o.Ratio),
		})
	}
	return "CPU time — CWM vs CDCM evaluation cost (Section 5)\n" + trace.Table(headers, rows)
}

// VsRandomOutcome compares guided search against random mapping.
type VsRandomOutcome struct {
	Workload string
	// RandomCost is the mean CWM energy over sampled random mappings;
	// GuidedCost the SA result — reference [4] reports >=60% savings.
	RandomCost, GuidedCost float64
	Saving                 float64
}

// RunVsRandom reproduces the related-work claim of Hu/Marculescu ([4]):
// energy-aware mapping search beats random mapping by a wide margin.
func RunVsRandom(suite []Workload, cfg noc.Config, samples int, seed int64) ([]VsRandomOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	if samples <= 0 {
		samples = 100
	}
	var outs []VsRandomOutcome
	for _, w := range suite {
		mesh, err := w.Mesh()
		if err != nil {
			return nil, err
		}
		cwm, err := core.NewCWM(mesh, cfg, energy.Tech007, w.G.ToCWG())
		if err != nil {
			return nil, err
		}
		// Mean (not best) random-mapping energy: the reference point of
		// [4] is "a random mapping", not the best of many.
		mean, err := meanRandomCost(mesh, cwm, w.G.NumCores(), samples, seed)
		if err != nil {
			return nil, err
		}
		sa := &search.Annealer{
			Problem: search.Problem{Mesh: mesh, NumCores: w.G.NumCores(), Obj: cwm},
			Seed:    seed,
		}
		saRes, err := sa.Run()
		if err != nil {
			return nil, err
		}
		saving := 0.0
		if mean > 0 {
			saving = (mean - saRes.BestCost) / mean
		}
		outs = append(outs, VsRandomOutcome{
			Workload: w.Name, RandomCost: mean, GuidedCost: saRes.BestCost, Saving: saving,
		})
	}
	return outs, nil
}

func meanRandomCost(mesh *topology.Mesh, obj search.Objective, cores, samples int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		mp, err := mapping.Random(rng, cores, mesh.NumTiles())
		if err != nil {
			return 0, err
		}
		c, err := obj.Cost(mp)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum / float64(samples), nil
}

// RenderVsRandom formats the guided-vs-random comparison.
func RenderVsRandom(outs []VsRandomOutcome) string {
	headers := []string{"workload", "random mean (pJ)", "SA best (pJ)", "saving"}
	var rows [][]string
	var avg float64
	for _, o := range outs {
		rows = append(rows, []string{
			o.Workload,
			fmt.Sprintf("%.4g", o.RandomCost*1e12),
			fmt.Sprintf("%.4g", o.GuidedCost*1e12),
			fmt.Sprintf("%.1f %%", o.Saving*100),
		})
		avg += o.Saving
	}
	if len(outs) > 0 {
		rows = append(rows, []string{"average", "", "", fmt.Sprintf("%.1f %%", avg/float64(len(outs))*100)})
	}
	return "Guided mapping vs random mapping (claim of ref. [4]: >60% savings)\n" +
		trace.Table(headers, rows)
}
