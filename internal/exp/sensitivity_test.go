package exp

import (
	"strings"
	"testing"

	"repro/internal/noc"
)

func TestRunSensitivity(t *testing.T) {
	suite := smallSuite(t, 6)[:2]
	outs, err := RunSensitivity(nil, suite, noc.Config{}, 30, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for _, o := range outs {
		if o.MinRandom <= 0 || o.MinRandom > o.MeanRandom || o.MeanRandom > o.MaxRandom {
			t.Fatalf("inconsistent spread: %+v", o)
		}
		// The time-only annealer must not be worse than the best random
		// sample by more than noise (it sees strictly more mappings than
		// a sampler of the same landscape, but different seeds can vary;
		// it must at least beat the random mean).
		if o.BestTime > o.MeanRandom {
			t.Fatalf("time-SA worse than random mean: %+v", o)
		}
		if o.Gap < -0.001 {
			t.Fatalf("negative gap: %+v", o)
		}
		if o.CWMTime < o.BestTime {
			// Possible in principle (CWM luck), but then Gap must be <= 0
			// and small; flag wild inconsistencies only.
			if float64(o.BestTime-o.CWMTime)/float64(o.BestTime) > 0.25 {
				t.Fatalf("CWM much faster than the time-only search: %+v", o)
			}
		}
	}
	out := RenderSensitivity(outs)
	if !strings.Contains(out, "ETR bound") || !strings.Contains(out, suite[0].Name) {
		t.Fatalf("render broken:\n%s", out)
	}
}
