// Package exp regenerates every table and figure of the paper's
// evaluation (Section 5) on the reproduced system: the 18-workload suite
// of Table 1, the CWM-vs-CDCM comparison of Table 2, the worked example of
// Figures 1-5, the ES-vs-SA optimality check, the CWM/CDCM CPU-time
// comparison, and the guided-vs-random baseline of reference [4].
package exp

import (
	"fmt"

	"repro/internal/appgen"
	"repro/internal/apps"
	"repro/internal/model"
	"repro/internal/topology"
)

// Workload is one Table-1 instance: an application CDCG bound to a NoC
// size.
type Workload struct {
	// Name identifies the instance.
	Name string
	// MeshW, MeshH are the NoC dimensions ("3 x 2" → 3 wide, 2 high).
	MeshW, MeshH int
	// G is the application.
	G *model.CDCG
	// Embedded marks the eight embedded-application instances; the rest
	// are TGFF-like random benchmarks.
	Embedded bool
	// PaperCores is the core count as published. It equals
	// G.NumCores() everywhere except the 3x4 instance published with 14
	// cores — more cores than tiles, impossible under the paper's own
	// one-core-per-tile formulation — which we clamp to 12 (see
	// DESIGN.md, "Erratum handled").
	PaperCores int
}

// NoCSize formats the mesh dimensions like the paper ("3x2").
func (w Workload) NoCSize() string { return fmt.Sprintf("%dx%d", w.MeshW, w.MeshH) }

// Mesh instantiates the workload's mesh.
func (w Workload) Mesh() (*topology.Mesh, error) { return topology.NewMesh(w.MeshW, w.MeshH) }

// Table1Suite regenerates the 18 workloads of Table 1 with the exact
// published aggregate characteristics (cores, packets, total bits). Eight
// instances are the embedded applications (Romberg ×2, FFT-8 ×2, object
// recognition ×2, image encoder ×2); the paper does not say which row is
// which, so the assignment below is ours (EXPERIMENTS.md documents it).
// The remaining ten come from the TGFF-like generator under fixed seeds.
func Table1Suite() ([]Workload, error) {
	var suite []Workload
	add := func(w Workload, err error) error {
		if err != nil {
			return err
		}
		suite = append(suite, w)
		return nil
	}
	embedded := func(name string, mw, mh int, g *model.CDCG, err error) error {
		if err != nil {
			return fmt.Errorf("exp: building %s: %w", name, err)
		}
		return add(Workload{Name: name, MeshW: mw, MeshH: mh, G: g,
			Embedded: true, PaperCores: g.NumCores()}, nil)
	}
	random := func(name string, mw, mh, cores, packets int, bits int64, seed int64, hotspot float64) error {
		// Phase-synchronised exchanges with equal transfer classes: the
		// symmetric, simultaneous traffic of BSP-style parallel kernels
		// creates large plateaus of dynamic-energy-equal mappings whose
		// timing differs widely — the regime the paper's generator
		// evidently targeted (its reported ETR holds across all sizes).
		// Computation scales with the per-packet payload (a fixed
		// communication-to-computation ratio, as in TGFF's period/size
		// attributes): transmission and computation stay in the same
		// order of magnitude at every workload scale, like the paper's
		// worked example (computes 6-20 cycles vs packets 15-40 flits).
		perPacket := bits / int64(packets)
		cmin := perPacket / 4
		if cmin < 1 {
			cmin = 1
		}
		cmax := perPacket
		if cmax <= cmin {
			cmax = cmin + 1
		}
		g, err := appgen.Generate(appgen.Params{
			Name: name, Cores: cores, Packets: packets, TotalBits: bits,
			Seed: seed, HotspotBias: hotspot,
			Mode:       appgen.ModePhases,
			ComputeMin: cmin, ComputeMax: cmax,
		})
		if err != nil {
			return fmt.Errorf("exp: generating %s: %w", name, err)
		}
		return add(Workload{Name: name, MeshW: mw, MeshH: mh, G: g, PaperCores: cores}, nil)
	}

	// 3x2: (5,43,78817) (6,17,174) (6,43,49003)
	{
		g, err := apps.Romberg(4, 43, 78817)
		if err := embedded("romberg-4w", 3, 2, g, err); err != nil {
			return nil, err
		}
	}
	if err := random("tgff-3x2-a", 3, 2, 6, 17, 174, 101, 0); err != nil {
		return nil, err
	}
	{
		g, err := apps.ObjRecognition(6, 43, 49003)
		if err := embedded("objrec-stream", 3, 2, g, err); err != nil {
			return nil, err
		}
	}

	// 2x4: (5,16,1600) (7,33,23235) (8,18,5930)
	if err := random("tgff-2x4-a", 2, 4, 5, 16, 1600, 102, 0); err != nil {
		return nil, err
	}
	if err := random("tgff-2x4-b", 2, 4, 7, 33, 23235, 103, 0.25); err != nil {
		return nil, err
	}
	if err := random("tgff-2x4-c", 2, 4, 8, 18, 5930, 104, 0); err != nil {
		return nil, err
	}

	// 3x3: (7,16,1600) (9,18,1860) (9,32,43120)
	if err := random("tgff-3x3-a", 3, 3, 7, 16, 1600, 105, 0); err != nil {
		return nil, err
	}
	if err := random("tgff-3x3-b", 3, 3, 9, 18, 1860, 106, 0.2); err != nil {
		return nil, err
	}
	{
		g, err := apps.FFT8(true, 32, 43120)
		if err := embedded("fft8-gather", 3, 3, g, err); err != nil {
			return nil, err
		}
	}

	// 2x5: (8,24,2215) (9,51,23244) (10,22,322221)
	{
		g, err := apps.FFT8(false, 24, 2215)
		if err := embedded("fft8", 2, 5, g, err); err != nil {
			return nil, err
		}
	}
	{
		g, err := apps.Romberg(8, 51, 23244)
		if err := embedded("romberg-8w", 2, 5, g, err); err != nil {
			return nil, err
		}
	}
	{
		g, err := apps.ObjRecognition(10, 22, 322221)
		if err := embedded("objrec-wide", 2, 5, g, err); err != nil {
			return nil, err
		}
	}

	// 3x4: (10,15,3100) (12,25,2578920) (14→12,88,115778)
	if err := random("tgff-3x4-a", 3, 4, 10, 15, 3100, 107, 0); err != nil {
		return nil, err
	}
	{
		g, err := apps.ImageEncoder(12, 25, 2578920)
		if err := embedded("imgenc-hd", 3, 4, g, err); err != nil {
			return nil, err
		}
	}
	{
		// Published as 14 cores on 12 tiles; clamped to 12 (erratum).
		g, err := apps.ImageEncoder(12, 88, 115778)
		if err != nil {
			return nil, fmt.Errorf("exp: building imgenc-parallel: %w", err)
		}
		if err := add(Workload{Name: "imgenc-parallel", MeshW: 3, MeshH: 4, G: g,
			Embedded: true, PaperCores: 14}, nil); err != nil {
			return nil, err
		}
	}

	// Large random benchmarks: 8x8 (62,344,9799200), 10x10
	// (93,415,562565990), 12x10 (99,446,680006120).
	if err := random("tgff-8x8", 8, 8, 62, 344, 9799200, 108, 0.1); err != nil {
		return nil, err
	}
	if err := random("tgff-10x10", 10, 10, 93, 415, 562565990, 109, 0.1); err != nil {
		return nil, err
	}
	if err := random("tgff-12x10", 12, 10, 99, 446, 680006120, 110, 0.1); err != nil {
		return nil, err
	}

	return suite, nil
}

// SizeOrder lists the NoC sizes in the paper's Table-2 row order.
var SizeOrder = []string{"3x2", "2x4", "3x3", "2x5", "3x4", "8x8", "10x10", "12x10"}

// BySize groups a suite by NoC size, preserving SizeOrder.
func BySize(suite []Workload) map[string][]Workload {
	m := make(map[string][]Workload)
	for _, w := range suite {
		m[w.NoCSize()] = append(m[w.NoCSize()], w)
	}
	return m
}
