package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file is the resilience experiment: inject a deterministic fault
// set into the NoC and compare the energy-optimal mapping (the paper's
// CDCM objective, blind to faults) against a resilience-driven mapping
// (core.StrategyResilience, which prices intact energy plus the
// worst-case execution time over single-fault scenarios). The point the
// report makes mirrors the paper's own CWM-vs-CDCM argument one level
// up: an objective that cannot see a cost dimension (there: contention;
// here: degraded routing) systematically gives that dimension away.

// ResilienceLeg is one explored strategy priced under the fault set.
type ResilienceLeg struct {
	Strategy string
	Mapping  string
	// Intact pricing (Tech007).
	TotalPJ    float64
	ExecCycles int64
	// Degradation over the fault set.
	WorstExecCycles int64
	WorstElement    string
	MeanExecCycles  float64
	Unreachable     int
	Score           float64
	// Impacts is the per-fault breakdown (canonical element order).
	Impacts []core.FaultImpact
}

// ResilienceOutcome is the energy-optimal vs resilience-driven comparison
// on one faulted instance.
type ResilienceOutcome struct {
	App       string
	Grid      string
	FaultKey  string
	NumFaults int
	Energy    ResilienceLeg // CDCM winner, scored after the fact
	Resilient ResilienceLeg // StrategyResilience winner
}

// RunResilience injects GenerateFaults(rate, faultSeed) into a WxH mesh
// and explores the application twice under the same search budget: once
// with the fault-blind CDCM objective and once with the resilience
// objective. Both winners are scored over the same fault set. The run is
// deterministic for fixed (opts.Seed, rate, faultSeed) whatever
// opts.Workers is.
func RunResilience(g *model.CDCG, w, h int, cfg noc.Config, opts core.Options,
	rate float64, faultSeed int64) (*ResilienceOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		return nil, err
	}
	fs, err := topology.GenerateFaults(mesh, rate, faultSeed)
	if err != nil {
		return nil, err
	}
	if fs.Empty() {
		return nil, fmt.Errorf("exp: fault draw (rate %g, seed %d) is empty on %dx%d; raise the rate or change the seed",
			rate, faultSeed, w, h)
	}
	opts.Faults = fs

	leg := func(strategy core.Strategy) (ResilienceLeg, error) {
		res, err := core.Explore(strategy, mesh, cfg, energy.Tech007, g, opts)
		if err != nil {
			return ResilienceLeg{}, fmt.Errorf("exp: resilience %s leg: %w", strategy, err)
		}
		sc := res.Resilience
		return ResilienceLeg{
			Strategy:        strategy.String(),
			Mapping:         res.Best.String(),
			TotalPJ:         res.Metrics.Total() * 1e12,
			ExecCycles:      res.Metrics.ExecCycles,
			WorstExecCycles: sc.WorstExecCycles,
			WorstElement:    sc.WorstElement,
			MeanExecCycles:  sc.MeanExecCycles,
			Unreachable:     sc.Unreachable,
			Score:           sc.Score,
			Impacts:         sc.Impacts,
		}, nil
	}
	energyLeg, err := leg(core.StrategyCDCM)
	if err != nil {
		return nil, err
	}
	resilientLeg, err := leg(core.StrategyResilience)
	if err != nil {
		return nil, err
	}
	return &ResilienceOutcome{
		App:       g.Name,
		Grid:      fmt.Sprintf("%dx%d", w, h),
		FaultKey:  fs.Key(),
		NumFaults: fs.NumFailed(),
		Energy:    energyLeg,
		Resilient: resilientLeg,
	}, nil
}

// RenderResilience formats the comparison table, the resilient winner's
// per-fault breakdown and the headline trade-off.
func RenderResilience(o *ResilienceOutcome) string {
	s := fmt.Sprintf("Resilience — %s on %s under %d injected fault(s): %s (Tech 0.07um)\n",
		o.App, o.Grid, o.NumFaults, o.FaultKey)
	headers := []string{"objective", "ENoC (pJ)", "texec (cy)", "worst-fault (cy)", "worst element", "score", "mapping"}
	var rows [][]string
	for _, l := range []ResilienceLeg{o.Energy, o.Resilient} {
		rows = append(rows, []string{
			l.Strategy,
			fmt.Sprintf("%.5g", l.TotalPJ),
			fmt.Sprint(l.ExecCycles),
			fmt.Sprint(l.WorstExecCycles),
			l.WorstElement,
			fmt.Sprintf("%.1f", l.Score),
			l.Mapping,
		})
	}
	s += trace.Table(headers, rows)

	s += "per-fault degradation of the resilience-driven mapping:\n"
	headers = []string{"element", "texec (cy)", "dt (cy)", "dE (pJ)", "note"}
	rows = rows[:0]
	for _, imp := range o.Resilient.Impacts {
		note := ""
		if imp.Unreachable {
			note = "unreachable (penalised)"
		}
		rows = append(rows, []string{
			imp.Element,
			fmt.Sprint(imp.ExecCycles),
			fmt.Sprint(imp.DeltaCycles),
			fmt.Sprintf("%.5g", imp.DeltaJ*1e12),
			note,
		})
	}
	s += trace.Table(headers, rows)

	ew, rw := o.Energy.WorstExecCycles, o.Resilient.WorstExecCycles
	if rw < ew {
		dE := 100 * (o.Resilient.TotalPJ - o.Energy.TotalPJ) / o.Energy.TotalPJ
		price := fmt.Sprintf("for %.1f%% more intact energy", dE)
		if dE <= 0 {
			price = fmt.Sprintf("while saving %.1f%% intact energy", -dE)
		}
		s += fmt.Sprintf("resilience-aware mapping cuts the worst-case-fault texec by %.1f%% (%d -> %d cycles) %s\n",
			100*float64(ew-rw)/float64(ew), ew, rw, price)
	} else if rw == ew {
		s += "both objectives found mappings with the same worst-case-fault texec\n"
	} else {
		s += fmt.Sprintf("energy-optimal mapping already minimises the worst fault here (%d vs %d cycles)\n", ew, rw)
	}
	return s
}
