package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

// BufferOutcome reports execution time as a function of router
// input-buffer depth for one workload, under the CWM winner and the CDCM
// winner. The paper motivates CDCM partly through reference [7]
// ("reducing the required buffers in the communication network"): a
// timing-aware mapping keeps packets out of each other's way, so it
// degrades less when buffers shrink.
type BufferOutcome struct {
	Workload string
	Depths   []int64
	// CWMExec[i] / CDCMExec[i] are texec in cycles with input buffers of
	// Depths[i] flits; the last entry is the unbounded reference.
	CWMExec, CDCMExec []int64
}

// RunBuffers evaluates both strategy winners across buffer depths.
func RunBuffers(suite []Workload, cfg noc.Config, depths []int64, searchOpts core.Options) ([]BufferOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	if len(depths) == 0 {
		depths = []int64{1, 2, 4, 8, 16}
	}
	var outs []BufferOutcome
	for _, w := range suite {
		mesh, err := w.Mesh()
		if err != nil {
			return nil, err
		}
		cmp, err := core.CompareModels(mesh, cfg, w.G, core.CompareOptions{Options: searchOpts})
		if err != nil {
			return nil, err
		}
		o := BufferOutcome{Workload: w.Name}
		run := func(c noc.Config, mp mapping.Mapping) (int64, error) {
			sim, err := wormhole.NewSimulator(mesh, c, w.G)
			if err != nil {
				return 0, err
			}
			res, err := sim.Run(mp)
			if err != nil {
				return 0, err
			}
			return res.ExecCycles, nil
		}
		cdcmMap := cmp.CDCMMappings[energy.Tech007.Name]
		for _, d := range depths {
			c := cfg
			c.Buffers = noc.BuffersBounded
			c.BufferFlits = d
			tw, err := run(c, cmp.CWMMapping)
			if err != nil {
				return nil, err
			}
			td, err := run(c, cdcmMap)
			if err != nil {
				return nil, err
			}
			o.Depths = append(o.Depths, d)
			o.CWMExec = append(o.CWMExec, tw)
			o.CDCMExec = append(o.CDCMExec, td)
		}
		// Unbounded reference.
		tw, err := run(cfg, cmp.CWMMapping)
		if err != nil {
			return nil, err
		}
		td, err := run(cfg, cdcmMap)
		if err != nil {
			return nil, err
		}
		o.Depths = append(o.Depths, -1)
		o.CWMExec = append(o.CWMExec, tw)
		o.CDCMExec = append(o.CDCMExec, td)
		outs = append(outs, o)
	}
	return outs, nil
}

// RenderBuffers formats the buffer-depth sweep.
func RenderBuffers(outs []BufferOutcome) string {
	headers := []string{"workload", "mapping"}
	if len(outs) > 0 {
		for _, d := range outs[0].Depths {
			if d < 0 {
				headers = append(headers, "unbounded")
			} else {
				headers = append(headers, fmt.Sprintf("B=%d", d))
			}
		}
	}
	var rows [][]string
	for _, o := range outs {
		cw := []string{o.Workload, "CWM"}
		cd := []string{"", "CDCM"}
		for i := range o.Depths {
			cw = append(cw, fmt.Sprint(o.CWMExec[i]))
			cd = append(cd, fmt.Sprint(o.CDCMExec[i]))
		}
		rows = append(rows, cw, cd)
	}
	return "Buffer-depth sweep — texec (cycles) vs router input-buffer size (ref. [7] motivation)\n" +
		trace.Table(headers, rows)
}
