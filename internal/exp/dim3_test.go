package exp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
)

func TestDefaultDim3ShapesEqualTiles(t *testing.T) {
	for _, depth := range []int{0, 2, 4, 6} {
		for _, torus := range []bool{false, true} {
			shapes := DefaultDim3Shapes(depth, torus)
			if len(shapes) != 2 {
				t.Fatalf("depth %d: %d shapes", depth, len(shapes))
			}
			t0 := shapes[0].W * shapes[0].H * shapes[0].D
			t1 := shapes[1].W * shapes[1].H * shapes[1].D
			if t0 != t1 {
				t.Fatalf("depth %d: unequal tile counts %d vs %d", depth, t0, t1)
			}
			if shapes[0].D != 1 || shapes[1].D < 2 && depth != 1 {
				t.Fatalf("depth %d: shapes %v not a 2D-vs-3D pair", depth, shapes)
			}
			if shapes[0].Torus != torus || shapes[1].Torus != torus {
				t.Fatalf("torus flag not threaded through: %v", shapes)
			}
		}
	}
	if got := (Dim3Shape{W: 2, H: 2, D: 4, Torus: true}).Name(); got != "2x2x4-torus" {
		t.Fatalf("Name() = %q", got)
	}
}

// TestRunDim3 checks the comparison runs end to end, reports vertical
// (TSV) traffic only on the stacked shape, and is bit-identical for every
// worker count.
func TestRunDim3(t *testing.T) {
	g, err := Dim3Workload(16)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Method: core.MethodSA, Seed: 5, TempSteps: 8, MovesPerTemp: 12}
	ref, err := RunDim3(g, nil, noc.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 4 { // 2 shapes x {CWM, CDCM}
		t.Fatalf("%d outcomes, want 4", len(ref))
	}
	for _, o := range ref {
		planar := strings.HasSuffix(o.Shape, "x1")
		if planar && o.TSVBits != 0 {
			t.Fatalf("planar shape %s reports %d TSV bits", o.Shape, o.TSVBits)
		}
		if !planar && o.TSVBits == 0 {
			t.Fatalf("stacked shape %s reports no TSV traffic", o.Shape)
		}
		if o.ExecCycles <= 0 || o.TotalPJ <= 0 {
			t.Fatalf("degenerate outcome %+v", o)
		}
	}
	for _, workers := range []int{2, 4} {
		po := opts
		po.Workers = workers
		got, err := RunDim3(g, nil, noc.Config{}, po)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from serial run", workers)
		}
	}
	if s := RenderDim3(ref); !strings.Contains(s, "2x2x4") || !strings.Contains(s, "4x4x1") {
		t.Fatalf("render missing shapes:\n%s", s)
	}
}
