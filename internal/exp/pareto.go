package exp

import (
	"fmt"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file is the multi-objective experiment: instead of collapsing
// energy and timing into one scalar (the paper's eq. 10), the Pareto
// exploration (core.StrategyPareto) reports the whole trade-off curve —
// the framing of the related 3-D mapping work (Jha et al.) where energy
// and latency are competing objectives. On a contended instance the
// front's extremes quantify how much execution time the energy-minimal
// placement gives up, and vice versa — the scalar collapse picks exactly
// one point of that curve.

// ParetoWorkload builds the experiment's fixed-seed application: a
// phase-synchronised 4x4 workload with enough traffic that contention
// makes energy and execution time genuinely compete (0 cores defaults
// to 12).
func ParetoWorkload(cores int) (*model.CDCG, error) {
	if cores <= 0 {
		cores = 12
	}
	return appgen.Generate(appgen.Params{
		Name:  fmt.Sprintf("pareto-%dc", cores),
		Cores: cores, Packets: 5 * cores, TotalBits: int64(750 * cores),
		Seed: 42, Mode: appgen.ModePhases, ComputeMin: 2, ComputeMax: 12,
	})
}

// ParetoOutcome is one Pareto exploration, priced under Tech007.
type ParetoOutcome struct {
	App  string
	Grid string
	// Axes names the front's component axes.
	Axes []string
	// Points is the front in the engine's deterministic order; components
	// are converted to the table's units (pJ, cycles).
	Points []ParetoPoint
	// Evaluations counts component evaluations across all walks.
	Evaluations int64
}

// ParetoPoint is one front point in report units.
type ParetoPoint struct {
	DynamicPJ  float64
	StaticPJ   float64
	ExecCycles int64
	TotalPJ    float64
	Mapping    string
}

// RunPareto explores the application's energy×latency front on a WxH
// mesh. The exploration is deterministic for a fixed opts.Seed whatever
// opts.Workers is.
func RunPareto(g *model.CDCG, w, h int, cfg noc.Config, opts core.Options) (*ParetoOutcome, error) {
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		return nil, err
	}
	res, err := core.Explore(core.StrategyPareto, mesh, cfg, energy.Tech007, g, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: pareto %dx%d: %w", w, h, err)
	}
	out := &ParetoOutcome{
		App:         g.Name,
		Grid:        fmt.Sprintf("%dx%d", w, h),
		Axes:        res.Front.Axes,
		Evaluations: res.Front.Evaluations,
	}
	for _, p := range res.Front.Points {
		out.Points = append(out.Points, ParetoPoint{
			DynamicPJ:  p.Components[0] * 1e12,
			StaticPJ:   p.Components[1] * 1e12,
			ExecCycles: int64(p.Components[2]),
			TotalPJ:    p.Cost * 1e12,
			Mapping:    p.Mapping.String(),
		})
	}
	return out, nil
}

// RenderPareto formats the front table plus the extreme-point trade-off
// summary.
func RenderPareto(o *ParetoOutcome) string {
	headers := []string{"#", "Edyn (pJ)", "Estat (pJ)", "texec (cy)", "ENoC (pJ)", "mapping"}
	var rows [][]string
	for i, p := range o.Points {
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprintf("%.5g", p.DynamicPJ),
			fmt.Sprintf("%.5g", p.StaticPJ),
			fmt.Sprint(p.ExecCycles),
			fmt.Sprintf("%.5g", p.TotalPJ),
			p.Mapping,
		})
	}
	s := fmt.Sprintf("Pareto front — %s on %s, %d component evaluations (Tech 0.07um)\n",
		o.App, o.Grid, o.Evaluations) + trace.Table(headers, rows)
	if len(o.Points) > 1 {
		// The front is sorted lexicographically by components, so the first
		// point minimises dynamic energy and (on an energy×time front) the
		// last minimises execution time.
		eMin, tMin := o.Points[0], o.Points[len(o.Points)-1]
		s += fmt.Sprintf("energy-min: %.5g pJ dynamic at %d cycles; latency-min: %d cycles at %.5g pJ dynamic\n",
			eMin.DynamicPJ, eMin.ExecCycles, tMin.ExecCycles, tMin.DynamicPJ)
		s += fmt.Sprintf("trade-off: %.1f%% texec reduction costs %.1f%% more dynamic energy\n",
			100*float64(eMin.ExecCycles-tMin.ExecCycles)/float64(eMin.ExecCycles),
			100*(tMin.DynamicPJ-eMin.DynamicPJ)/eMin.DynamicPJ)
	} else {
		s += "front collapsed to a single point: one mapping minimises every axis\n"
	}
	return s
}
