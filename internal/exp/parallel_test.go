package exp

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
)

// The batch runners must produce bit-identical reports for every worker
// count — batch parallelism is a wall-clock lever, never a semantic one.

func TestRunTable2DeterministicAcrossWorkers(t *testing.T) {
	suite := smallSuite(t, 6)
	var ref *Table2Report
	for _, workers := range []int{1, 2, 4} {
		rep, err := RunTable2(suite, Table2Options{
			Search:  core.Options{Method: core.MethodSA, TempSteps: 6, MovesPerTemp: 10, Workers: workers},
			Seeds:   []int64{1, 2},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep.Outcomes, ref.Outcomes) {
			t.Fatalf("workers=%d: outcomes diverged", workers)
		}
		if !reflect.DeepEqual(rep.Rows, ref.Rows) || !reflect.DeepEqual(rep.Average, ref.Average) {
			t.Fatalf("workers=%d: aggregates diverged", workers)
		}
	}
}

func TestRunAblationsDeterministicAcrossWorkers(t *testing.T) {
	suite := smallSuite(t, 6)[:1]
	var ref []AblationOutcome
	for _, workers := range []int{1, 3, 8} {
		outs, err := RunAblations(suite, nil, core.Options{
			Method: core.MethodSA, Seed: 1, TempSteps: 6, MovesPerTemp: 10, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = outs
			continue
		}
		if !reflect.DeepEqual(outs, ref) {
			t.Fatalf("workers=%d: outcomes diverged", workers)
		}
	}
}

func TestRunSensitivityDeterministicAcrossWorkers(t *testing.T) {
	suite := smallSuite(t, 6)[:2]
	var ref []SensitivityOutcome
	for _, workers := range []int{1, 2, 5} {
		outs, err := RunSensitivity(nil, suite, noc.Config{}, 15, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = outs
			continue
		}
		if !reflect.DeepEqual(outs, ref) {
			t.Fatalf("workers=%d: outcomes diverged", workers)
		}
	}
}
