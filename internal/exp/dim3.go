package exp

import (
	"fmt"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file is the 2-D-vs-3-D comparison experiment: the same application
// explored on a planar W×H×1 grid and on a stacked grid with the same
// tile count (the canonical 4x4x1 vs 2x2x4 pairing of the 3-D NoC
// mapping literature, e.g. Jha et al., arXiv:1404.2512). Folding a mesh
// into layers shortens average Manhattan distance — 2x2x4's diameter is 5
// vs 4x4x1's 6, and most tile pairs get closer — which cuts both router
// traversals (energy) and uncontended hop counts (latency); the TSV
// energy/latency profile (energy.Tech.ETSVbit, noc.Config.TSVLinkCycles)
// prices the vertical links the fold introduces.

// Dim3Shape is one topology variant of the comparison.
type Dim3Shape struct {
	// W, H, D are the grid dimensions.
	W, H, D int
	// Torus adds wrap-around links in every dimension.
	Torus bool
}

// Name formats the shape like "4x4x1" (with a "-torus" suffix when
// wrapped).
func (s Dim3Shape) Name() string {
	n := fmt.Sprintf("%dx%dx%d", s.W, s.H, s.D)
	if s.Torus {
		n += "-torus"
	}
	return n
}

// Mesh instantiates the shape.
func (s Dim3Shape) Mesh() (*topology.Mesh, error) {
	if s.Torus {
		return topology.NewTorus3D(s.W, s.H, s.D)
	}
	return topology.NewMesh3D(s.W, s.H, s.D)
}

// DefaultDim3Shapes returns the canonical equal-tile-count pairing: a
// planar 4×depth grid against a 2×2×depth stack — both hold 4·depth
// tiles, so depth 4 gives the 4x4x1-vs-2x2x4 comparison of the issue.
// torus selects wrap-around variants for both shapes.
func DefaultDim3Shapes(depth int, torus bool) []Dim3Shape {
	if depth <= 0 {
		depth = 4
	}
	return []Dim3Shape{
		{W: 4, H: depth, D: 1, Torus: torus},
		{W: 2, H: 2, D: depth, Torus: torus},
	}
}

// Dim3Workload builds the experiment's fixed-seed application: a
// phase-synchronised benchmark with exactly `cores` cores (0 defaults to
// 16, filling both default depth-4 shapes). Traffic and computation scale
// with the core count so every depth compares the same per-core load.
func Dim3Workload(cores int) (*model.CDCG, error) {
	if cores <= 0 {
		cores = 16
	}
	return appgen.Generate(appgen.Params{
		Name:  fmt.Sprintf("dim3-%dc", cores),
		Cores: cores, Packets: 4 * cores, TotalBits: int64(1500 * cores),
		Seed: 31, Mode: appgen.ModePhases, ComputeMin: 10, ComputeMax: 60,
	})
}

// Dim3Outcome is one (application, shape, strategy) exploration, priced
// with the CDCM simulator under Tech007.
type Dim3Outcome struct {
	App      string
	Shape    string
	Strategy core.Strategy
	// Evaluations counts objective calls of the exploration.
	Evaluations int64
	// ExecCycles/ContentionCycles are the winner's timing.
	ExecCycles, ContentionCycles int64
	// DynamicPJ/StaticPJ/TotalPJ break down the winner's energy.
	DynamicPJ, StaticPJ, TotalPJ float64
	// TSVBits is the winner's vertical-link traffic (0 on planar shapes).
	TSVBits int64
}

// RunDim3 explores the application on every shape under both strategies.
// The (shape, strategy) grid runs on a worker pool sized by opts.Workers;
// outcomes are stored by grid index, so results are bit-identical for
// every worker count.
func RunDim3(g *model.CDCG, shapes []Dim3Shape, cfg noc.Config, opts core.Options) ([]Dim3Outcome, error) {
	if len(shapes) == 0 {
		shapes = DefaultDim3Shapes(0, false)
	}
	if cfg == (noc.Config{}) {
		cfg = noc.Default()
	}
	strategies := []core.Strategy{core.StrategyCWM, core.StrategyCDCM}
	outs := make([]Dim3Outcome, len(shapes)*len(strategies))
	// opts.Ctx (when set) cancels the batch and the explorations within.
	err := par.ForEachCtx(opts.Ctx, len(outs), opts.Workers, func(i int) error {
		shape := shapes[i/len(strategies)]
		strat := strategies[i%len(strategies)]
		mesh, err := shape.Mesh()
		if err != nil {
			return err
		}
		res, err := core.Explore(strat, mesh, cfg, energy.Tech007, g, opts)
		if err != nil {
			return fmt.Errorf("exp: dim3 %s/%s: %w", shape.Name(), strat, err)
		}
		outs[i] = Dim3Outcome{
			App:              g.Name,
			Shape:            shape.Name(),
			Strategy:         strat,
			Evaluations:      res.Search.Evaluations,
			ExecCycles:       res.Metrics.ExecCycles,
			ContentionCycles: res.Metrics.ContentionCycles,
			DynamicPJ:        res.Metrics.Energy.Dynamic * 1e12,
			StaticPJ:         res.Metrics.Energy.Static * 1e12,
			TotalPJ:          res.Metrics.Total() * 1e12,
			TSVBits:          res.Metrics.TSVBits,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// RenderDim3 formats the energy/latency comparison table.
func RenderDim3(outs []Dim3Outcome) string {
	headers := []string{"app", "topology", "model", "evals", "texec (cy)", "contention (cy)",
		"Edyn (pJ)", "Estat (pJ)", "ENoC (pJ)", "TSV bits"}
	var rows [][]string
	last := ""
	for _, o := range outs {
		name := o.App
		if name == last {
			name = ""
		} else {
			last = o.App
		}
		rows = append(rows, []string{
			name, o.Shape, o.Strategy.String(),
			fmt.Sprint(o.Evaluations),
			fmt.Sprint(o.ExecCycles),
			fmt.Sprint(o.ContentionCycles),
			fmt.Sprintf("%.5g", o.DynamicPJ),
			fmt.Sprintf("%.5g", o.StaticPJ),
			fmt.Sprintf("%.5g", o.TotalPJ),
			fmt.Sprint(o.TSVBits),
		})
	}
	return "2D vs 3D — same application, equal tile count, TSV-priced vertical links (Tech 0.07um)\n" +
		trace.Table(headers, rows)
}
