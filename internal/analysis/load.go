package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked analysis unit.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker complaints; analyzers still run
	// on partially-checked packages, but the driver surfaces these.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns (from dir, typically
// the module root) with `go list -export`, then parses and type-checks
// each matched package from source, resolving imports against the
// compiler's export data. This is a stdlib-only, offline substitute for
// golang.org/x/tools/go/packages: the toolchain compiles dependencies
// into the build cache and hands us their export files, so no network
// and no external module are ever needed.
//
// With includeTests, in-package _test.go files are type-checked
// together with the package (mirroring the compiler's test build) and
// external _test packages load as separate units.
func Load(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Dir,Export,Name,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,ForTest,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)   // import path -> export data file
	fallback := make(map[string]string)  // test-variant exports, used if no plain one
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil && !p.Standard && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		path := p.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 { // "p [q.test]" variant
			if p.Export != "" {
				fallback[path[:i]] = p.Export
			}
			continue
		}
		if p.Export != "" {
			exports[path] = p.Export
		}
		if p.Standard || p.DepOnly || p.Name == "" || strings.HasSuffix(path, ".test") {
			continue
		}
		roots = append(roots, p)
	}
	for path, exp := range fallback {
		if _, ok := exports[path]; !ok {
			exports[path] = exp
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range roots {
		files := append([]string(nil), p.GoFiles...)
		if includeTests {
			files = append(files, p.TestGoFiles...)
		}
		pkg, err := checkFiles(fset, imp, p.Dir, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		if includeTests && len(p.XTestGoFiles) > 0 {
			xpkg, err := checkFiles(fset, imp, p.Dir, p.ImportPath+"_test", p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package — the
// fixture path used by the analysistest harness and nocvet's -dir mode.
// The files may import standard-library and module packages; asPath
// becomes the unit's package path, letting fixtures impersonate an
// enforced package (e.g. "repro/internal/search/fixture") so
// path-scoped analyzers fire on them.
func LoadDir(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	if asPath == "" {
		asPath = filepath.Base(dir)
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	imports := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}
		for p := range imports {
			args = append(args, p)
		}
		sort.Strings(args[5:])
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (fixture imports): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return typeCheck(fset, imp, asPath, syntax)
}

func checkFiles(fset *token.FileSet, imp types.Importer, dir, pkgPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	pkg, err := typeCheck(fset, imp, pkgPath, syntax)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, syntax []*ast.File) (*Package, error) {
	pkg := &Package{PkgPath: pkgPath, Fset: fset, Syntax: syntax}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Check never returns a hard error here: complaints are collected
	// through conf.Error so analyzers can still run on what checked.
	pkg.Types, _ = conf.Check(pkgPath, fset, syntax, pkg.Info)
	return pkg, nil
}
