package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// enginePackages are the determinism-critical packages: everything that
// computes a result a golden, hash or pin depends on. The service and
// exp layers legitimately read wall clocks (timestamps live in response
// envelopes, never in results), so they are not listed.
var enginePackages = []string{
	"repro/internal/search",
	"repro/internal/core",
	"repro/internal/wormhole",
	"repro/internal/energy",
	"repro/internal/mapping",
}

// inEnginePackage matches the enforced set, plus fixture packages that
// impersonate one (analysistest loads them under an enforced path).
func inEnginePackage(pkgPath string) bool {
	for _, p := range enginePackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Detsource forbids nondeterministic inputs inside the engine packages:
// wall-clock reads (time.Now/Since/Until), environment lookups
// (os.Getenv/LookupEnv/Environ) and the globally-seeded top-level
// functions of math/rand (and all of math/rand/v2's global functions).
// The sanctioned seam is an explicit seeded generator —
// rand.New(rand.NewSource(seed)) — which is why rand.New and
// rand.NewSource stay legal; every engine draws its entropy from a Seed
// option through exactly that construction.
var Detsource = &Analyzer{
	Name: "detsource",
	Doc:  "no wall clock, environment, or unseeded randomness inside engine packages",
	Run:  runDetsource,
}

// randConstructors are the explicitly-seeded entry points of math/rand
// that the policy sanctions.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 seeded sources
}

func runDetsource(pass *Pass) error {
	if !inEnginePackage(pass.Pkg.Path()) {
		return nil
	}
	//nocvet:ignore findings are position-sorted by the runner before printing, so Uses iteration order cannot leak into output
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || pass.InTestFile(id.Pos()) {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // methods on *rand.Rand / time.Time are fine
		}
		var why string
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				why = "reads the wall clock"
			}
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
				why = "reads the process environment"
			}
		case "math/rand", "math/rand/v2":
			if ast.IsExported(fn.Name()) && !randConstructors[fn.Name()] {
				why = "draws from the globally-seeded RNG"
			}
		}
		if why != "" {
			pass.Reportf(id.Pos(), "%s.%s %s; engines must be deterministic under a fixed seed — use the seeded-RNG or progress-callback seams", fn.Pkg().Path(), fn.Name(), why)
		}
	}
	return nil
}
