package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Finding is one reported, position-resolved violation that survived
// ignore filtering.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Message + " [" + f.Analyzer + "]"
}

// ignoreDirective is the prefix of the suppression comment; the rest of
// the comment is the mandatory reason.
const ignoreDirective = "//nocvet:ignore"

// noallocDirective marks a function as part of the allocation-free hot
// path enforced by the hotpath analyzer.
const noallocDirective = "//nocvet:noalloc"

// CollectNoalloc scans every package's syntax for //nocvet:noalloc
// annotations and returns the repo-wide set keyed by FuncKey. Purely
// syntactic, so it runs once before any analyzer and covers callees in
// other packages.
func CollectNoalloc(pkgs []*Package) map[string]bool {
	set := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && hasDirective(fd.Doc, noallocDirective) {
					set[syntacticFuncKey(pkg.PkgPath, fd)] = true
				}
			}
		}
	}
	return set
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, applies
// //nocvet:ignore filtering, and returns the surviving findings sorted
// by position. Ignore directives with an empty reason are themselves
// findings (analyzer "nocvet").
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	noalloc := CollectNoalloc(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Noalloc:  noalloc,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range pass.diags {
				diags = append(diags, Finding{Pos: pkg.Fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message})
			}
		}
		findings = append(findings, filterIgnored(pkg, diags)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// lineRange is the span of source lines one ignore directive covers.
type lineRange struct{ file string; from, to int }

// filterIgnored drops findings covered by a //nocvet:ignore directive
// and appends a finding for each directive missing its reason. A
// directive covers its own line plus, when a statement or declaration
// starts on that line (trailing comment) or on the next (standalone
// comment line), the full extent of that node — so one directive can
// sanction a whole if-block or multi-line call.
func filterIgnored(pkg *Package, diags []Finding) []Finding {
	var ranges []lineRange
	var out []Finding
	for _, f := range pkg.Syntax {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // some other nocvet: word
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if strings.TrimSpace(rest) == "" {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "nocvet",
						Message:  "//nocvet:ignore requires a reason",
					})
					continue
				}
				to := line
				if end, ok := nodeExtent(pkg.Fset, f, line); ok {
					to = end
				} else if end, ok := nodeExtent(pkg.Fset, f, line+1); ok {
					to = end // standalone comment line covering the next statement
				}
				ranges = append(ranges, lineRange{file: fileName, from: line, to: to})
			}
		}
	}
	for _, d := range diags {
		suppressed := false
		for _, r := range ranges {
			if d.Pos.Filename == r.file && d.Pos.Line >= r.from && d.Pos.Line <= r.to {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// nodeExtent returns the last line of the widest statement or
// declaration starting on the given line.
func nodeExtent(fset *token.FileSet, f *ast.File, line int) (int, bool) {
	best, found := 0, false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			if fset.Position(n.Pos()).Line == line {
				if end := fset.Position(n.End()).Line; !found || end > best {
					best, found = end, true
				}
			}
		}
		return true
	})
	return best, found
}
