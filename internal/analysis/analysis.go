package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named, self-contained check. The shape mirrors
// golang.org/x/tools/go/analysis so the checks read like standard vet
// passes, but the runner underneath is the stdlib-only loader in
// load.go.
type Analyzer struct {
	// Name identifies the analyzer in findings and -run filters.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a source position, before ignore
// filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, including in-package _test.go
	// files when the loader was asked for them.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Noalloc is the repo-wide set of functions annotated
	// //nocvet:noalloc, keyed by FuncKey. Populated by the runner from
	// every loaded package, so cross-package callees resolve.
	Noalloc map[string]bool

	diags []Diagnostic
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FuncKey names a function for the cross-package Noalloc set:
// "pkgpath.Name" for package-level functions, "pkgpath.Recv.Name" for
// methods (pointerness of the receiver is erased, so one annotation
// covers both method sets).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil { // error.Error and other universe methods
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// syntacticFuncKey is FuncKey computed from syntax alone, for
// collecting annotations before (or without) type information.
func syntacticFuncKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		for {
			switch x := t.(type) {
			case *ast.StarExpr:
				t = x.X
			case *ast.IndexExpr: // generic receiver
				t = x.X
			case *ast.ParenExpr:
				t = x.X
			default:
				if id, ok := t.(*ast.Ident); ok {
					return pkgPath + "." + id.Name + "." + fd.Name.Name
				}
				return pkgPath + "." + fd.Name.Name
			}
		}
	}
	return pkgPath + "." + fd.Name.Name
}

// Callee resolves a call expression to the *types.Func it statically
// invokes — a package-level function or a concrete/interface method.
// It returns nil for builtins, type conversions, and calls through
// plain function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// BuiltinName returns the name of the builtin a call invokes ("make",
// "append", ...) or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsConversion reports whether the call is a type conversion, and if
// so, to what type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// RootObj unwraps selector/index/slice/paren/star chains to the root
// identifier's object: for `sc.heap.a[:0]` it returns sc's object.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextField reports whether t (struct, or pointer to one, after
// unwrapping the named type) carries a context.Context field, directly
// or through a nested struct field — MultiAnnealer reaches its context
// as Base.Ctx, CompareOptions through an embedded Options, and both
// count as a seam.
func HasContextField(t types.Type) bool {
	return hasContextField(t, 3)
}

func hasContextField(t types.Type, depth int) bool {
	if depth == 0 {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if IsContext(ft) || hasContextField(ft, depth-1) {
			return true
		}
	}
	return false
}

// funcFrom resolves pkgpath.name call targets: it reports whether fn is
// the named package-level function.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// methodOn reports whether fn is a method named one of names on the
// named type pkgPath.typeName (pointerness erased).
func methodOn(fn *types.Func, pkgPath, typeName string, names ...string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath || obj.Name() != typeName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
