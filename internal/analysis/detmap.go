package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap flags `range` over a map whose body lets the iteration order
// escape: writes into slices that are not provably sorted afterwards,
// sends, calls with side effects, float accumulation — anything that
// could leak map order into a Result, hash input, serialized output or
// comparison. The sanctioned patterns are:
//
//   - sorted-key extraction: `for k := range m { keys = append(keys, k) }`
//     followed, later in the same function, by a sort of that slice;
//   - writes into another map and delete() calls (order-insensitive
//     targets);
//   - exact integer accumulation (`n++`, `sum += w`, `b |= x`):
//     commutative in integer arithmetic, so order-free. The same
//     accumulation over floats is flagged — float addition does not
//     commute bitwise, which is precisely how goldens drift.
//
// In _test.go files a single rule applies: a map range whose body
// spawns t.Run subtests is flagged, because it scrambles -v output and
// failure order between runs.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration order must not escape into results, hashes, output or subtest order",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) error {
	for _, f := range pass.Files {
		testFile := pass.InTestFile(f.Pos())
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !IsMap(pass.Info.TypeOf(rng.X)) {
				return true
			}
			if testFile {
				if call := findSubtestSpawn(pass.Info, rng.Body); call != nil {
					pass.Reportf(rng.For, "subtests spawned while ranging over a map run in nondeterministic order; iterate a sorted slice of cases instead")
				}
				return true
			}
			checkMapRangeBody(pass, rng, enclosingBlocks(stack))
			return true
		})
	}
	return nil
}

// findSubtestSpawn looks for a t.Run(...) call on a *testing.T (or
// (*testing.B).Run) inside the body.
func findSubtestSpawn(info *types.Info, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found != nil {
			return found == nil
		}
		fn := Callee(info, call)
		if methodOn(fn, "testing", "T", "Run") || methodOn(fn, "testing", "B", "Run") {
			found = call
		}
		return found == nil
	})
	return found
}

// enclosingBlocks returns the statement lists that lexically follow the
// range statement — where a sanctioning sort call may appear.
func enclosingBlocks(stack []ast.Node) []ast.Stmt {
	var after []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			after = append(after, blk.List...)
		}
	}
	return after
}

// checkMapRangeBody walks the loop body classifying every statement
// with a side effect, reporting the first order-leaking one.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, afterStmts []ast.Stmt) {
	info := pass.Info
	var report func(pos token.Pos, what string)
	reported := false
	report = func(pos token.Pos, what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(pos, "map iteration order escapes via %s; extract the keys into a slice, sort it, and iterate that (sorted-keys pattern)", what)
	}

	var checkStmt func(s ast.Stmt)
	checkExprOrderFree := func(e ast.Expr, pos token.Pos) {
		// Calls inside the body may observe iteration order through any
		// side effect; only a known-pure subset is allowed.
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch BuiltinName(info, call) {
			case "len", "cap", "min", "max", "delete", "append", "make", "new", "copy", "clear", "panic":
				return true
			}
			if _, isConv := IsConversion(info, call); isConv {
				return true
			}
			fn := Callee(info, call)
			if fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "math", "strconv", "errors", "fmt":
					// fmt.Errorf/Sprintf build values; leaking happens only
					// if the result escapes, which the assignment rules catch.
					return true
				}
			}
			report(call.Pos(), "a call with possible side effects")
			return false
		})
		_ = pos
	}

	checkAssign := func(as *ast.AssignStmt) {
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			// Writes into a map are order-insensitive.
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && IsMap(info.TypeOf(idx.X)) {
				continue
			}
			// x = append(x, ...) is sanctioned iff x is sorted after the loop.
			if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				if i < len(as.Rhs) {
					if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && BuiltinName(info, call) == "append" {
						if obj := RootObj(info, lhs); obj != nil && sortedAfter(info, afterStmts, rng, obj) {
							continue
						}
						report(as.Pos(), "append to a slice that is not sorted after the loop")
						return
					}
				}
			}
			// Integer accumulation commutes exactly.
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				if t, ok := info.TypeOf(lhs).Underlying().(*types.Basic); ok {
					if t.Info()&types.IsInteger != 0 && commutativeOp(as.Tok) {
						continue
					}
					if t.Info()&types.IsFloat != 0 {
						report(as.Pos(), "floating-point accumulation (float addition is not bitwise commutative)")
						return
					}
				}
			}
			// Everything else only stays order-free when the target is
			// local to the loop body (recomputed each iteration).
			if obj := RootObj(info, lhs); obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End() {
				continue
			}
			if as.Tok == token.DEFINE {
				continue // fresh variable per iteration
			}
			report(as.Pos(), "a write to state outside the loop")
			return
		}
		for _, rhs := range as.Rhs {
			checkExprOrderFree(rhs, as.Pos())
		}
	}

	checkStmt = func(s ast.Stmt) {
		if reported {
			return
		}
		switch st := s.(type) {
		case *ast.AssignStmt:
			checkAssign(st)
		case *ast.IncDecStmt:
			if t, ok := info.TypeOf(st.X).Underlying().(*types.Basic); ok && t.Info()&types.IsInteger != 0 {
				return
			}
			report(st.Pos(), "increment of non-integer state")
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && BuiltinName(info, call) == "delete" {
				return
			}
			checkExprOrderFree(st.X, st.Pos())
		case *ast.SendStmt:
			report(st.Pos(), "a channel send (receiver observes iteration order)")
		case *ast.ReturnStmt:
			// Early return selects a map-order-dependent element.
			for _, r := range st.Results {
				if id, ok := r.(*ast.Ident); ok && (id.Name == "nil" || id.Name == "true" || id.Name == "false") {
					continue
				}
				report(st.Pos(), "a return of an iteration-dependent value")
				return
			}
		case *ast.IfStmt:
			checkStmts(st.Body.List, checkStmt)
			if st.Else != nil {
				checkStmt(st.Else)
			}
		case *ast.BlockStmt:
			checkStmts(st.List, checkStmt)
		case *ast.ForStmt:
			checkStmts(st.Body.List, checkStmt)
		case *ast.RangeStmt:
			checkStmts(st.Body.List, checkStmt)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkStmts(cc.Body, checkStmt)
				}
			}
		case *ast.BranchStmt, *ast.DeclStmt, *ast.EmptyStmt, *ast.LabeledStmt:
			// order-free
		case *ast.GoStmt:
			report(st.Pos(), "a goroutine spawned per iteration (scheduling observes order)")
		case *ast.DeferStmt:
			report(st.Pos(), "a defer registered per iteration (runs in order-dependent LIFO)")
		default:
			report(s.Pos(), "a statement the analyzer cannot prove order-free")
		}
	}
	checkStmts(rng.Body.List, checkStmt)
}

func checkStmts(list []ast.Stmt, f func(ast.Stmt)) {
	for _, s := range list {
		f(s)
	}
}

// commutativeOp reports whether the op-assign token commutes exactly in
// integer arithmetic.
func commutativeOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true
	}
	return false
}

// sortedAfter reports whether a sort call over obj's slice appears in
// statements after the range loop: sort.Ints/Strings/Float64s/Slice/
// SliceStable/Sort or slices.Sort/SortFunc/SortStableFunc/Sorted.
func sortedAfter(info *types.Info, stmts []ast.Stmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	for _, s := range stmts {
		if s.Pos() <= rng.Pos() {
			continue
		}
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := Callee(info, call)
			isSort := isPkgFunc(fn, "sort", "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable") ||
				isPkgFunc(fn, "slices", "Sort", "SortFunc", "SortStableFunc")
			if !isSort || len(call.Args) == 0 {
				return true
			}
			if root := RootObj(info, call.Args[0]); root == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
