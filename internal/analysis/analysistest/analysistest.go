// Package analysistest runs an analyzer over a fixture directory and
// checks its findings against // want "regexp" annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the repo's
// stdlib-only loader.
//
// A fixture file marks each line expected to produce a finding with a
// trailing comment:
//
//	for k := range m { // want `map iteration order escapes`
//
// The regexp must match the finding's message. Every want must be
// matched by exactly one finding on its line and every finding must hit
// a want; leftovers in either direction fail the test. Fixtures load
// via LoadDir with an impersonated package path, so path-scoped
// analyzers (detsource, ctxflow) fire on testdata the same way they do
// on the enforced packages.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"[^\"]*\")")

// Run loads dir as a single package named asPath, runs the analyzer
// (with ignore filtering, so fixtures can exercise //nocvet:ignore),
// and diffs findings against want comments.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		// Fixtures must type-check: a silent type error makes analyzers
		// skip the very code the test believes it is exercising.
		t.Errorf("fixture type error: %v", terr)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := parseWants(t, pkg)
	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1][1 : len(m[1])-1] // strip quotes/backticks
				if strings.HasPrefix(m[1], `"`) {
					if unq, err := unquote(pat); err == nil {
						pat = unq
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// unquote handles the common escapes inside a double-quoted want
// pattern without requiring the full strconv machinery on fragments.
func unquote(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
