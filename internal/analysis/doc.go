// Package analysis is nocvet: a project-specific static-analysis suite
// that enforces, at compile time, the invariants every shipped result of
// this repository depends on. The Table-2 goldens, the canonical
// instance hash that keys the nocd cache, and the workers-1..N
// bit-identical pins all assume properties that a single stray statement
// can silently break — a map iteration leaking its order into a result,
// a wall-clock read inside an engine, an allocation on the scratch-lane
// hot path, a blocking send that ignores cancellation. Runtime tests
// catch such violations only when an execution happens to hit them;
// these analyzers reject them before the code runs at all.
//
// # The determinism contract
//
// nocvet enforces five named policies:
//
//   - detmap: iteration order of a Go map must never influence anything
//     that escapes the loop in an order-sensitive way — slices that are
//     later compared or emitted, serialized output, hash inputs, or
//     floating-point accumulation. The sanctioned fix is sorted-key
//     extraction: collect the keys into a slice, sort it, iterate the
//     slice. Writes into other maps, delete calls, and exact integer
//     accumulation (commutative, so order-free) are allowed. In test
//     files only one rule applies: a map range whose body spawns
//     t.Run subtests is flagged, because it scrambles -v output and
//     failure order between runs.
//
//   - detsource: the engine packages (internal/search, internal/core,
//     internal/wormhole, internal/energy, internal/mapping) must not
//     read nondeterministic sources: time.Now/Since/Until, os.Getenv
//     and friends, or the globally-seeded top-level functions of
//     math/rand. The sanctioned seams are explicit seeded RNGs
//     (rand.New(rand.NewSource(seed))) and the progress-callback
//     plumbing, which carry all the entropy an engine is allowed.
//
//   - hotpath: functions annotated //nocvet:noalloc (the CDCM scratch
//     path: Simulator.RunScratch, CWM.SwapDelta/Commit,
//     Mapping.ValidateInto, and their callees) must not allocate:
//     no make/new, no heap-escaping composite literals, no append to
//     slices that are not rooted in a parameter or receiver (scratch
//     backing), no closures, no fmt calls, no allocating string
//     operations, no boxing conversions to interfaces, no map stores
//     (an insert may grow the bucket array — hot-path telemetry belongs
//     in atomics, not maps) — and every callee must itself be annotated
//     //nocvet:noalloc, with the math and sync/atomic packages exempt
//     (pure arithmetic and single-word atomic operations, the
//     sanctioned hot-path instrumentation primitive). Branches that
//     terminate in an error return or panic are exempt: they end the
//     run, so a cold-path allocation there cannot perturb the steady
//     state the testing.AllocsPerRun pins measure.
//
//   - ctxflow: cancellation must thread through every engine entry
//     point. Exported Run/Explore/CompareModels in internal/search and
//     internal/core must accept a context.Context (directly, via an
//     options struct, or via a receiver field — the engines' Ctx-field
//     seam). Fan-outs must use par.ForEachCtx/ForEachWorkerCtx rather
//     than the ctx-less variants, and a function that has a context
//     must not perform a bare blocking channel send the context cannot
//     interrupt (sends inside a select with a default or alternative
//     arm, or on a code path where the context is known nil, are fine).
//
//   - mutexhold: no potentially-blocking operation while holding a
//     mutex — channel sends and receives outside a multi-arm select,
//     par.Pool.Close, par.ForEach fan-outs, sync.WaitGroup.Wait, and
//     HTTP response writes (including SSE flushes). The service
//     package's locks guard bookkeeping; anything that can park a
//     goroutine must run after Unlock. Pool.TrySubmit is exempt by
//     contract: it refuses instead of blocking.
//
// # Annotation grammar
//
// Two comment directives steer the suite:
//
//	//nocvet:noalloc
//
// placed in a function's doc comment opts that function into the
// hotpath policy. The analyzer also requires it on every function a
// noalloc function calls, which is how the property propagates down the
// call tree without whole-program analysis.
//
//	//nocvet:ignore <reason>
//
// suppresses all nocvet findings on its line — or, when the line opens
// a statement (an if, a loop, a call spanning lines), on that whole
// statement. The reason is mandatory; an ignore without one is itself a
// finding. Ignores are the escape hatch for code that is correct for
// reasons the analyzers cannot see (an order-insensitive fan-out over a
// subscriber set, an amortized cache-miss fallback); the reason string
// is the reviewer-facing justification.
//
// # Running
//
// The multichecker lives in cmd/nocvet:
//
//	go run ./cmd/nocvet ./...
//
// exits nonzero if any finding survives ignore filtering. CI runs it as
// a blocking gate (make lint). Each analyzer has table-driven fixtures
// under internal/analysis/testdata with caught-violation and
// sanctioned-pattern corpora, exercised by the analysistest harness.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library: packages are enumerated with `go list -export` and
// type-checked from source against compiler export data, so the suite
// needs no dependencies beyond the Go toolchain itself.
package analysis
