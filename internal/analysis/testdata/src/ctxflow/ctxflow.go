// Package ctxflow is loaded under the impersonated path
// repro/internal/search/fixture, so the entry-point and send rules
// apply as they do in the real engine packages.
package ctxflow

import (
	"context"

	"repro/internal/par"
)

// Engine carries no context: its Run is a violation.
type Engine struct {
	Steps int
}

// Run is an exported entry point with no way to reach a context.
func (e *Engine) Run() error { // want `entry point Run has no context seam`
	return nil
}

// CtxEngine threads its context through a struct field — the repo's
// Annealer idiom — which counts as a seam.
type CtxEngine struct {
	Ctx context.Context
}

// Run reaches the context through the receiver.
func (e *CtxEngine) Run() error {
	return nil
}

// Explore takes the context as a parameter: also a seam.
func Explore(ctx context.Context, steps int) error {
	return badFanout(steps)
}

// badFanout uses the uncancelable par.ForEach.
func badFanout(n int) error {
	return par.ForEach(n, 2, func(i int) error { return nil }) // want `par.ForEach cannot be canceled`
}

// goodFanout threads a context (nil reproduces ForEach exactly).
func goodFanout(ctx context.Context, n int) error {
	return par.ForEachCtx(ctx, n, 2, func(i int) error { return nil })
}

// badSend blocks on a send the context cannot interrupt.
func badSend(ctx context.Context, ch chan int, v int) {
	ch <- v // want `blocking send while a context.Context is in scope`
}

// goodSelectSend can always take the ctx.Done arm.
func goodSelectSend(ctx context.Context, ch chan int, v int) {
	select {
	case ch <- v:
	case <-ctx.Done():
	}
}

// goodNilCtxSend sends only on the documented uncancellable path.
func goodNilCtxSend(ctx context.Context, ch chan int, v int) {
	if ctx == nil {
		ch <- v
		return
	}
	select {
	case ch <- v:
	case <-ctx.Done():
	}
}
