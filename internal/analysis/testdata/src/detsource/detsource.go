// Package detsource is loaded by the tests under the impersonated path
// repro/internal/search/fixture, so the engine-package scope applies.
package detsource

import (
	"math/rand"
	"os"
	"time"
)

// badClock reads the wall clock inside an engine.
func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

// badElapsed measures wall time.
func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

// badGlobalRand draws from the globally-seeded generator.
func badGlobalRand() int {
	return rand.Intn(10) // want `draws from the globally-seeded RNG`
}

// badEnv lets the environment steer an engine.
func badEnv() string {
	return os.Getenv("NOC_SEED") // want `reads the process environment`
}

// goodSeededRand is the sanctioned seam: explicit seed, local generator.
func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// goodTimeArithmetic only manipulates values, never reads the clock.
func goodTimeArithmetic(d time.Duration) time.Duration {
	return d * 2
}
