// Package detsource is loaded by the tests under the impersonated path
// repro/internal/search/fixture, so the engine-package scope applies.
package detsource

import (
	"math/rand"
	"os"
	"time"
)

// badClock reads the wall clock inside an engine.
func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

// badElapsed measures wall time.
func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

// badGlobalRand draws from the globally-seeded generator.
func badGlobalRand() int {
	return rand.Intn(10) // want `draws from the globally-seeded RNG`
}

// badEnv lets the environment steer an engine.
func badEnv() string {
	return os.Getenv("NOC_SEED") // want `reads the process environment`
}

// goodSeededRand is the sanctioned seam: explicit seed, local generator.
func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// goodTimeArithmetic only manipulates values, never reads the clock.
func goodTimeArithmetic(d time.Duration) time.Duration {
	return d * 2
}

// goodSurrogateSampling is the tier-B calibration seam: the sample set
// the surrogate is fitted against is drawn from a generator keyed by
// the job seed, so every worker (and every replay) fits the same
// predictor.
func goodSurrogateSampling(seed int64, samples int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, samples)
	for i := range out {
		out[i] = rng.Intn(1 << 20)
	}
	return out
}

// badSurrogateSampling seeds the calibration draw from the clock: two
// workers would fit different predictors and the search would stop
// being replayable.
func badSurrogateSampling(samples int) []int {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now reads the wall clock`
	out := make([]int, samples)
	for i := range out {
		out[i] = rng.Intn(1 << 20)
	}
	return out
}

// badSurrogateBudget lets the environment pick the calibration budget.
func badSurrogateBudget() string {
	return os.Getenv("NOC_SURROGATE_SAMPLES") // want `reads the process environment`
}
