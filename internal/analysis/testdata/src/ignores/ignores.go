// Package ignores exercises the //nocvet:ignore escape hatch: a
// directive with a reason suppresses the finding its line produces, a
// directive without one is itself a finding and suppresses nothing.
// Checked by a direct unit test (run_test.go), not want comments — the
// reason grammar swallows any trailing text, so a want marker cannot
// share the directive's line.
package ignores

func withReason(m map[string]int, ch chan string) {
	for k := range m {
		//nocvet:ignore fixture: the receiver drains into a set, so order is unobservable
		ch <- k
	}
}

func withoutReason(m map[string]int, ch chan string) {
	for k := range m {
		//nocvet:ignore
		ch <- k
	}
}
