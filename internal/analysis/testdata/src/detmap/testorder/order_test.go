package testorder

import "testing"

// TestBadSubtests spawns subtests from a map range: -v output and
// failure order scramble between runs.
func TestBadSubtests(t *testing.T) {
	cases := map[string]int{"a": 1, "b": 2}
	for name, n := range cases { // want `subtests spawned while ranging over a map`
		t.Run(name, func(t *testing.T) {
			if n == 0 {
				t.Fatal("zero")
			}
		})
	}
}

// TestGoodSubtests iterates a slice: stable order.
func TestGoodSubtests(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{{"a", 1}, {"b", 2}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.n == 0 {
				t.Fatal("zero")
			}
		})
	}
}
