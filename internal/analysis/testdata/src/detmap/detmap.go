// Package detmap is the analyzer fixture: each // want line must fire,
// everything else must stay silent.
package detmap

import (
	"sort"
)

// badAppend leaks map order into a result slice.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to a slice that is not sorted after the loop`
	}
	return keys
}

// goodSortedKeys is the sanctioned extraction pattern.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodIntAccumulation commutes exactly.
func goodIntAccumulation(m map[string]int) (int, int) {
	var sum, n int
	for _, v := range m {
		sum += v
		n++
	}
	return sum, n
}

// badFloatAccumulation does not commute bitwise.
func badFloatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation`
	}
	return sum
}

// goodMapToMap writes into an order-insensitive target.
func goodMapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// goodDelete mutates the map itself.
func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// badSend lets a receiver observe iteration order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send`
	}
}

// badCall hands each element to a function with side effects.
func badCall(m map[string]int, f func(string)) {
	for k := range m {
		f(k) // want `call with possible side effects`
	}
}

// goodIgnored shows the escape hatch: justified suppression.
func goodIgnored(m map[string]int, f func(string)) {
	for k := range m {
		//nocvet:ignore f is a commutative accumulator in this fixture
		f(k)
	}
}
