// Package hotpath is the //nocvet:noalloc fixture.
package hotpath

import (
	"fmt"
	"sync/atomic"
)

type scratch struct {
	buf []int
}

// helper is annotated, so annotated callers may call it.
//
//nocvet:noalloc
func helper(x int) int { return x * 2 }

// plain is NOT annotated.
func plain(x int) int { return x }

// goodSteadyState reuses caller-owned memory and calls only annotated
// or math-pure code; its error path allocates but terminates.
//
//nocvet:noalloc
func goodSteadyState(sc *scratch, n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hotpath: negative n %d", n) // cold branch: terminates
	}
	sc.buf = sc.buf[:0]
	sum := 0
	for i := 0; i < n; i++ {
		sc.buf = append(sc.buf, helper(i))
		sum += sc.buf[i]
	}
	return sum, nil
}

// badMake allocates on the steady-state path.
//
//nocvet:noalloc
func badMake(n int) []int {
	out := make([]int, n) // want `make allocates`
	return out
}

// badLocalAppend grows a fresh backing array every call.
//
//nocvet:noalloc
func badLocalAppend(n int) int {
	var local []int
	for i := 0; i < n; i++ {
		local = append(local, i) // want `append to a slice not rooted in a parameter or receiver`
	}
	return len(local)
}

// badUnannotatedCallee calls into un-audited code.
//
//nocvet:noalloc
func badUnannotatedCallee(x int) int {
	return plain(x) // want `calls .*plain which is not marked`
}

// badClosure captures and allocates.
//
//nocvet:noalloc
func badClosure(x int) func() int {
	return func() int { return x } // want `closure literal allocates`
}

// badBoxing converts a concrete value to an interface.
//
//nocvet:noalloc
func badBoxing(x int) any {
	return any(x) // want `boxes its operand on the heap`
}

// badStringConcat builds a string on the steady path.
//
//nocvet:noalloc
func badStringConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// goodPanicBranch may allocate in a branch that panics.
//
//nocvet:noalloc
func goodPanicBranch(sc *scratch, i int) int {
	if i >= len(sc.buf) {
		panic("hotpath: index " + itoa(i) + " out of range")
	}
	return sc.buf[i]
}

//nocvet:noalloc
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	return "n"
}

// goodAtomicCounter instruments the hot loop with a lock-free atomic —
// the sanctioned telemetry primitive, exempt like the math package.
//
//nocvet:noalloc
func goodAtomicCounter(sc *scratch, evals *atomic.Int64) int {
	sum := 0
	for _, v := range sc.buf {
		evals.Add(1)
		sum += v
	}
	return sum
}

// badMapCounter tallies into a map on the steady path: each store may
// insert, and an insert may grow the bucket array.
//
//nocvet:noalloc
func badMapCounter(sc *scratch, byBucket map[string]int) int {
	sum := 0
	for _, v := range sc.buf {
		byBucket["evals"]++ // want `map store may grow the map's buckets on the heap`
		sum += v
	}
	byBucket["sum"] = sum // want `map store may grow the map's buckets on the heap`
	return sum
}
