// Package hotpath is the //nocvet:noalloc fixture.
package hotpath

import (
	"fmt"
	"sync/atomic"
)

type scratch struct {
	buf []int
}

// helper is annotated, so annotated callers may call it.
//
//nocvet:noalloc
func helper(x int) int { return x * 2 }

// plain is NOT annotated.
func plain(x int) int { return x }

// goodSteadyState reuses caller-owned memory and calls only annotated
// or math-pure code; its error path allocates but terminates.
//
//nocvet:noalloc
func goodSteadyState(sc *scratch, n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hotpath: negative n %d", n) // cold branch: terminates
	}
	sc.buf = sc.buf[:0]
	sum := 0
	for i := 0; i < n; i++ {
		sc.buf = append(sc.buf, helper(i))
		sum += sc.buf[i]
	}
	return sum, nil
}

// badMake allocates on the steady-state path.
//
//nocvet:noalloc
func badMake(n int) []int {
	out := make([]int, n) // want `make allocates`
	return out
}

// badLocalAppend grows a fresh backing array every call.
//
//nocvet:noalloc
func badLocalAppend(n int) int {
	var local []int
	for i := 0; i < n; i++ {
		local = append(local, i) // want `append to a slice not rooted in a parameter or receiver`
	}
	return len(local)
}

// badUnannotatedCallee calls into un-audited code.
//
//nocvet:noalloc
func badUnannotatedCallee(x int) int {
	return plain(x) // want `calls .*plain which is not marked`
}

// badClosure captures and allocates.
//
//nocvet:noalloc
func badClosure(x int) func() int {
	return func() int { return x } // want `closure literal allocates`
}

// badBoxing converts a concrete value to an interface.
//
//nocvet:noalloc
func badBoxing(x int) any {
	return any(x) // want `boxes its operand on the heap`
}

// badStringConcat builds a string on the steady path.
//
//nocvet:noalloc
func badStringConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// goodPanicBranch may allocate in a branch that panics.
//
//nocvet:noalloc
func goodPanicBranch(sc *scratch, i int) int {
	if i >= len(sc.buf) {
		panic("hotpath: index " + itoa(i) + " out of range")
	}
	return sc.buf[i]
}

//nocvet:noalloc
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	return "n"
}

// goodAtomicCounter instruments the hot loop with a lock-free atomic —
// the sanctioned telemetry primitive, exempt like the math package.
//
//nocvet:noalloc
func goodAtomicCounter(sc *scratch, evals *atomic.Int64) int {
	sum := 0
	for _, v := range sc.buf {
		evals.Add(1)
		sum += v
	}
	return sum
}

// swapAggKernel mirrors the tiered evaluator's shared aggregate kernel:
// annotated, so the bound-compare path may call it.
//
//nocvet:noalloc
func swapAggKernel(sc *scratch, ta, tb int) int {
	d := 0
	for _, v := range sc.buf {
		d += helper(v) - ta + tb
	}
	return d
}

// goodBoundCompare is the tier-A shape: recompute the swapped aggregate
// through the annotated kernel, derive an absolute lower bound in
// caller-owned scratch, and compare against the incumbent — no
// allocation anywhere on the skip/accept decision.
//
//nocvet:noalloc
func goodBoundCompare(sc *scratch, incumbent, bestD, ta, tb int) bool {
	lb := swapAggKernel(sc, ta, tb)
	return lb-incumbent >= bestD // bound certifies: skip without simulating
}

// badBoundCompare prices the bound through an un-audited LP helper —
// the regression the analyzer must keep out of the skip path.
//
//nocvet:noalloc
func badBoundCompare(sc *scratch, incumbent, ta, tb int) bool {
	return plainLP(sc, ta, tb) >= incumbent // want `calls .*plainLP which is not marked`
}

// plainLP is NOT annotated: a longest-path walk that has never been
// audited for steady-state allocation.
func plainLP(sc *scratch, ta, tb int) int {
	return len(sc.buf) + ta + tb
}

// badBoundScratch materialises the patched mapping instead of reusing
// the walk's scratch — a fresh backing array per candidate.
//
//nocvet:noalloc
func badBoundScratch(sc *scratch, ta, tb int) int {
	patched := make([]int, len(sc.buf)) // want `make allocates`
	copy(patched, sc.buf)
	patched[ta], patched[tb] = patched[tb], patched[ta]
	return swapAggKernel(sc, ta, tb)
}

// badMapCounter tallies into a map on the steady path: each store may
// insert, and an insert may grow the bucket array.
//
//nocvet:noalloc
func badMapCounter(sc *scratch, byBucket map[string]int) int {
	sum := 0
	for _, v := range sc.buf {
		byBucket["evals"]++ // want `map store may grow the map's buckets on the heap`
		sum += v
	}
	byBucket["sum"] = sum // want `map store may grow the map's buckets on the heap`
	return sum
}
