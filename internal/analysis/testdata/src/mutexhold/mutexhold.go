// Package mutexhold is the lock-discipline fixture.
package mutexhold

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/par"
)

type server struct {
	mu   sync.Mutex
	subs []chan int
	wg   sync.WaitGroup
	pool *par.Pool
}

// badSendUnderLock delivers while holding the mutex.
func (s *server) badSendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		ch <- v // want `channel send while holding s.mu`
	}
}

// goodSnapshotThenSend is the sanctioned shape: copy under the lock,
// deliver outside it.
func (s *server) goodSnapshotThenSend(v int) {
	s.mu.Lock()
	subs := make([]chan int, len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// goodNonBlockingSend may hold the lock: the default arm never blocks.
func (s *server) goodNonBlockingSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- v:
		default:
		}
	}
}

// badWaitUnderLock deadlocks when a waiter needs the lock.
func (s *server) badWaitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `WaitGroup.Wait while holding s.mu`
}

// badPoolCloseUnderLock blocks on workers that may want the lock.
func (s *server) badPoolCloseUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Close() // want `par.Pool.Close blocks on worker goroutines while holding s.mu`
}

// goodTrySubmitUnderLock uses the non-blocking seam.
func (s *server) goodTrySubmitUnderLock(task func()) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.TrySubmit(task)
}

// badHTTPWriteUnderLock lets a slow client pin the lock.
func (s *server) badHTTPWriteUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "subs=%d\n", len(s.subs)) // want `fmt.Fprintf to an http.ResponseWriter while holding s.mu`
}

// goodHTTPWriteAfterUnlock snapshots, releases, then writes.
func (s *server) goodHTTPWriteAfterUnlock(w http.ResponseWriter) {
	s.mu.Lock()
	n := len(s.subs)
	s.mu.Unlock()
	fmt.Fprintf(w, "subs=%d\n", n)
}
