package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(t *testing.T, elem ...string) string {
	t.Helper()
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

func TestDetmap(t *testing.T) {
	analysistest.Run(t, fixture(t, "detmap"), "repro/internal/fixture/detmap", analysis.Detmap)
}

func TestDetmapSubtestOrder(t *testing.T) {
	analysistest.Run(t, fixture(t, "detmap", "testorder"), "repro/internal/fixture/testorder", analysis.Detmap)
}

func TestDetsource(t *testing.T) {
	// The fixture impersonates an engine package so the path scope applies.
	analysistest.Run(t, fixture(t, "detsource"), "repro/internal/search/fixture", analysis.Detsource)
}

func TestDetsourceScopeExcludesServiceLayer(t *testing.T) {
	// The same source under a non-engine path must produce no findings:
	// the service layer legitimately reads clocks.
	pkg, err := analysis.LoadDir(fixture(t, "detsource"), "repro/internal/service/fixture")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Detsource})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("detsource fired outside the engine scope: %v", findings)
	}
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, fixture(t, "hotpath"), "repro/internal/fixture/hotpath", analysis.Hotpath)
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, fixture(t, "ctxflow"), "repro/internal/search/fixture", analysis.Ctxflow)
}

func TestMutexhold(t *testing.T) {
	analysistest.Run(t, fixture(t, "mutexhold"), "repro/internal/fixture/mutexhold", analysis.Mutexhold)
}

// TestIgnoreDirectives pins the escape-hatch contract: a reasoned
// directive suppresses its line's finding, a bare one suppresses
// nothing and is itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := analysis.LoadDir(fixture(t, "ignores"), "repro/internal/fixture/ignores")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Detmap})
	if err != nil {
		t.Fatal(err)
	}
	var missingReason, send int
	for _, f := range findings {
		switch {
		case f.Analyzer == "nocvet" && strings.Contains(f.Message, "requires a reason"):
			missingReason++
		case f.Analyzer == "detmap" && strings.Contains(f.Message, "channel send"):
			send++
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if missingReason != 1 {
		t.Errorf("reason-less directive findings = %d, want 1", missingReason)
	}
	if send != 1 {
		t.Errorf("unsuppressed send findings = %d, want 1 (only the one under the bare directive)", send)
	}
}

// TestSuiteCleanOnRepo is the self-gate: the shipped tree must pass its
// own analyzers. This duplicates the CI nocvet step so a violation
// fails `go test ./...` too, not just the lint job.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", false, "./...")
	if err != nil {
		t.Fatal(err)
	}
	suite := []*analysis.Analyzer{
		analysis.Detmap, analysis.Detsource, analysis.Hotpath,
		analysis.Ctxflow, analysis.Mutexhold,
	}
	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
