package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mutexhold enforces the unlock-before-send discipline the service
// layer is built on: while a sync.Mutex / sync.RWMutex is held, a
// function must not
//
//   - send on or receive from a channel outside a select with a
//     default arm (the receiver may never come; the lock is now wedged
//     and every other request piles up behind it);
//   - call par.Pool.Submit or Pool.Close, or fan out via par.ForEach*
//     (all of these block on worker goroutines that may themselves
//     want the lock — Pool.TrySubmit is the sanctioned non-blocking
//     seam and stays legal);
//   - wait on a sync.WaitGroup;
//   - write to an http.ResponseWriter or flush an http.Flusher
//     (including via fmt.Fprint* with the writer as destination): a
//     slow client would hold the server mutex for the duration of the
//     write.
//
// The tracking is a linear scan per function: Lock/RLock adds the
// receiver expression to the held set, Unlock/RUnlock removes it, and
// a deferred unlock keeps it held through the function body — which is
// exactly the point: with `defer mu.Unlock()` every statement below
// runs under the lock.
var Mutexhold = &Analyzer{
	Name: "mutexhold",
	Doc:  "no blocking channel, pool, waitgroup or HTTP operations while holding a mutex",
	Run:  runMutexhold,
}

func runMutexhold(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				h := &holdScan{pass: pass, held: map[string]token.Pos{}}
				h.stmts(fd.Body.List)
			}
		}
	}
	return nil
}

type holdScan struct {
	pass *Pass
	// held maps a mutex expression key ("s.mu") to the Lock position.
	held map[string]token.Pos
}

// anyHeld returns the lexically smallest held mutex key, so messages
// are deterministic even when several locks are held at once.
func (h *holdScan) anyHeld() (string, bool) {
	best := ""
	for k := range h.held {
		if best == "" || k < best {
			//nocvet:ignore min-selection commutes: the result is the same for every iteration order
			best = k
		}
	}
	return best, best != ""
}

func (h *holdScan) stmts(list []ast.Stmt) {
	for _, s := range list {
		h.stmt(s)
	}
}

func (h *holdScan) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		h.expr(st.X)
	case *ast.DeferStmt:
		// A deferred unlock means the lock is held for the rest of the
		// body — so do NOT release. Any other deferred call is opaque.
		if kind, _ := h.mutexOp(st.Call); kind == opLock {
			h.lockFrom(st.Call)
		}
	case *ast.GoStmt:
		// The spawned goroutine runs on its own stack; its sends do not
		// happen under our lock. Ignore the body.
	case *ast.SendStmt:
		if key, held := h.anyHeld(); held {
			h.pass.Reportf(st.Pos(), "channel send while holding %s; unlock first, send after (snapshot under the lock, deliver outside it)", key)
		}
		h.exprCalls(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			h.expr(e)
		}
		for _, e := range st.Lhs {
			h.exprCalls(e)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			h.stmt(st.Init)
		}
		h.expr(st.Cond)
		h.branch(st.Body.List)
		if st.Else != nil {
			h.branch([]ast.Stmt{st.Else})
		}
	case *ast.ForStmt:
		if st.Init != nil {
			h.stmt(st.Init)
		}
		if st.Cond != nil {
			h.expr(st.Cond)
		}
		h.branch(st.Body.List)
	case *ast.RangeStmt:
		h.exprCalls(st.X)
		h.branch(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			h.stmt(st.Init)
		}
		if st.Tag != nil {
			h.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if key, held := h.anyHeld(); held && !hasDefault {
			h.pass.Reportf(st.Pos(), "blocking select while holding %s; add a default arm or unlock first", key)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h.branch(cc.Body)
			}
		}
	case *ast.BlockStmt:
		h.stmts(st.List)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			h.expr(e)
		}
	case *ast.LabeledStmt:
		h.stmt(st.Stmt)
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt:
		// no lock effects, no blocking
	}
}

// branch scans a conditional path with a copy of the held set, so an
// unlock inside one branch does not leak a release into the code after
// the conditional.
func (h *holdScan) branch(list []ast.Stmt) {
	saved := h.held
	h.held = make(map[string]token.Pos, len(saved))
	for k, v := range saved {
		h.held[k] = v
	}
	h.stmts(list)
	h.held = saved
}

type mutexOp int

const (
	opNone mutexOp = iota
	opLock
	opUnlock
)

// mutexOp classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the receiver key.
func (h *holdScan) mutexOp(call *ast.CallExpr) (mutexOp, string) {
	fn := Callee(h.pass.Info, call)
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	isLock := methodOn(fn, "sync", "Mutex", "Lock") || methodOn(fn, "sync", "RWMutex", "Lock", "RLock")
	isUnlock := methodOn(fn, "sync", "Mutex", "Unlock") || methodOn(fn, "sync", "RWMutex", "Unlock", "RUnlock")
	if !isLock && !isUnlock {
		return opNone, ""
	}
	key := exprKey(ast.Unparen(sel.X))
	if isLock {
		return opLock, key
	}
	return opUnlock, key
}

func (h *holdScan) lockFrom(call *ast.CallExpr) {
	if kind, key := h.mutexOp(call); kind == opLock && key != "" {
		h.held[key] = call.Pos()
	}
}

// expr processes an expression for lock transitions and, if a mutex is
// held, for blocking calls.
func (h *holdScan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		switch kind, key := h.mutexOp(call); kind {
		case opLock:
			h.held[key] = call.Pos()
			return
		case opUnlock:
			delete(h.held, key)
			return
		}
	}
	h.exprCalls(e)
}

// exprCalls walks an expression reporting blocking operations reached
// while a mutex is held. Function literals are skipped: their bodies
// run later, on a stack that does not hold our lock.
func (h *holdScan) exprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	key, held := h.anyHeld()
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.ARROW && held {
			h.pass.Reportf(ue.Pos(), "channel receive while holding %s; the sender may need the lock to make progress", key)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !held {
			return true
		}
		fn := Callee(h.pass.Info, call)
		switch {
		case methodOn(fn, "repro/internal/par", "Pool", "Submit", "Close"):
			h.pass.Reportf(call.Pos(), "par.Pool.%s blocks on worker goroutines while holding %s; use TrySubmit or unlock first", fn.Name(), key)
		case isPkgFunc(fn, "repro/internal/par", "ForEach", "ForEachCtx", "ForEachWorker", "ForEachWorkerCtx"):
			h.pass.Reportf(call.Pos(), "par.%s fans out while holding %s; workers contending for the lock deadlock the fan-out", fn.Name(), key)
		case methodOn(fn, "sync", "WaitGroup", "Wait"):
			h.pass.Reportf(call.Pos(), "WaitGroup.Wait while holding %s; waiters that need the lock never finish", key)
		case methodOn(fn, "net/http", "ResponseWriter", "Write", "WriteHeader") || methodOn(fn, "net/http", "Flusher", "Flush"):
			h.pass.Reportf(call.Pos(), "HTTP response %s while holding %s; a slow client pins the lock", fn.Name(), key)
		case isPkgFunc(fn, "fmt", "Fprintf", "Fprint", "Fprintln") && len(call.Args) > 0 && isResponseWriter(h.pass.Info.TypeOf(call.Args[0])):
			h.pass.Reportf(call.Pos(), "fmt.%s to an http.ResponseWriter while holding %s; a slow client pins the lock", fn.Name(), key)
		}
		return true
	})
}

// isResponseWriter reports whether t is the net/http.ResponseWriter
// interface type.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// exprKey renders a selector chain ("s.mu", "j.state.mu") for held-set
// identity and messages. Unrenderable expressions collapse to "mutex".
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	}
	return "mutex"
}
