package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces the cancellation contract:
//
//  1. Exported engine entry points — Run, Explore and CompareModels in
//     internal/search and internal/core — must have a context seam: a
//     context.Context parameter, an options-struct parameter carrying a
//     context.Context field, or a receiver struct with one (the
//     engines' Ctx-field idiom, whose nil value pins the historical
//     bit-identical path).
//  2. Fan-outs outside package par must use the Ctx variants
//     (par.ForEachCtx / par.ForEachWorkerCtx); a nil context reproduces
//     the ctx-less behavior exactly, so there is never a reason to call
//     the bare ones from engine code.
//  3. A function that takes a context must not perform a bare blocking
//     channel send the context cannot interrupt. Sends are fine inside
//     a select with an alternative arm or default, and on code paths
//     where the context is known nil (`if ctx == nil { ... }` — the
//     documented uncancellable legacy path).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "engine entry points and fan-outs must accept and honor context cancellation",
	Run:  runCtxflow,
}

// entryPointNames are the exported engine entry points rule 1 covers.
var entryPointNames = map[string]bool{"Run": true, "Explore": true, "CompareModels": true}

// entryPointPackages scope rule 1.
var entryPointPackages = []string{"repro/internal/search", "repro/internal/core"}

// sendCheckPackages scope rule 3 to the concurrency-bearing layers.
var sendCheckPackages = []string{
	"repro/internal/search", "repro/internal/core", "repro/internal/par",
	"repro/internal/service", "repro/internal/wormhole",
}

func pathIn(pkgPath string, set []string) bool {
	for _, p := range set {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func runCtxflow(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	checkEntry := pathIn(pkgPath, entryPointPackages)
	checkSends := pathIn(pkgPath, sendCheckPackages)

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if checkEntry && fd.Name.IsExported() && entryPointNames[fd.Name.Name] && !hasContextSeam(pass, fd) {
				pass.Reportf(fd.Name.Pos(), "exported engine entry point %s has no context seam: accept a context.Context parameter, an options struct with a Ctx field, or add one to the receiver", fd.Name.Name)
			}
			if fd.Body == nil {
				continue
			}
			// Rule 2: ctx-less fan-outs.
			if pkgPath != "repro/internal/par" {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := Callee(pass.Info, call)
					if isPkgFunc(fn, "repro/internal/par", "ForEach", "ForEachWorker") {
						pass.Reportf(call.Pos(), "par.%s cannot be canceled; use par.%sCtx (a nil context reproduces the exact same behavior)", fn.Name(), fn.Name())
					}
					return true
				})
			}
			if checkSends {
				checkBlockingSends(pass, fd)
			}
		}
	}
	return nil
}

// hasContextSeam reports whether the function can reach a context: a
// context.Context parameter, a (pointer-to-)struct parameter or
// receiver with a context.Context field.
func hasContextSeam(pass *Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if IsContext(t) || HasContextField(t) {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok && HasContextField(ptr.Elem()) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// checkBlockingSends flags bare sends in functions that hold a context.
func checkBlockingSends(pass *Pass, fd *ast.FuncDecl) {
	// Find the context parameter, if any.
	var ctxObj types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && IsContext(obj.Type()) {
					ctxObj = obj
				}
			}
		}
	}
	if ctxObj == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if sendIsGuarded(pass, stack, ctxObj) {
			return true
		}
		pass.Reportf(send.Pos(), "blocking send while a context.Context is in scope; select on ctx.Done() (or move the send to the documented nil-context path)")
		return true
	})
}

// sendIsGuarded reports whether the innermost enclosing constructs make
// the send cancellation-aware: a select with more than one way out, or
// an if-branch taken only when the context is nil.
func sendIsGuarded(pass *Pass, stack []ast.Node, ctxObj types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.SelectStmt:
			arms := len(x.Body.List)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // default arm: non-blocking
				}
			}
			if arms > 1 {
				return true // an alternative arm (ctx.Done/done channel) can fire
			}
		case *ast.IfStmt:
			if be, ok := ast.Unparen(x.Cond).(*ast.BinaryExpr); ok && be.Op.String() == "==" {
				if isNilCheckOf(pass, be, ctxObj) && within(stack[i+1:], x.Body) {
					return true
				}
			}
		case *ast.FuncLit:
			return true // closure: the send belongs to another goroutine's flow
		}
	}
	return false
}

// isNilCheckOf reports whether the comparison is `ctx == nil` (either
// operand order) against the given context object.
func isNilCheckOf(pass *Pass, be *ast.BinaryExpr, ctxObj types.Object) bool {
	isCtx := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == ctxObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isCtx(be.X) && isNil(be.Y)) || (isCtx(be.Y) && isNil(be.X))
}

// within reports whether the next node on the stack path is the given
// block (i.e. the send is inside the if's then-branch, not its else).
func within(rest []ast.Node, blk *ast.BlockStmt) bool {
	return len(rest) > 0 && rest[0] == blk
}
