package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath is the annotation-driven allocation checker: a function whose
// doc comment carries //nocvet:noalloc must stay heap-silent in steady
// state. Inside such a function the analyzer rejects
//
//   - make/new calls and map or slice composite literals;
//   - composite literals whose address is taken (&T{...} escapes);
//   - append whose destination is not rooted in a parameter or
//     receiver (scratch-backed slices reach the function from outside;
//     appending to a fresh local means a fresh backing array);
//   - closures, go statements and defers;
//   - fmt calls and allocating string operations (concatenation,
//     string<->[]byte/[]rune conversions);
//   - conversions of concrete values to interface types (boxing);
//   - stores into maps (m[k] = v, m[k]++): inserting may grow the
//     bucket array, so hot-path counters belong in atomics or
//     pre-sized slices, not maps;
//   - calls to functions not themselves marked //nocvet:noalloc —
//     the property propagates down the call tree by annotation, not
//     whole-program analysis. Pure math builtins, the math package
//     and sync/atomic (single-word operations, the idiomatic hot-path
//     instrumentation primitive) are exempt.
//
// Branches that terminate in an error return or a panic are cold: they
// end the run, so allocations there cannot perturb the steady state the
// testing.AllocsPerRun pins measure. This is the same contract guarded
// at runtime by the alloc-pin tests; hotpath guards it from the source
// side so a violation is caught before any benchmark runs.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //nocvet:noalloc must not allocate outside cold error/panic branches",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, noallocDirective) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Parameter and receiver objects: the roots scratch-backed slices
	// hang off.
	paramObjs := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramObjs[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)

	var walk func(n ast.Node) bool
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "//nocvet:noalloc function %s: "+format, append([]any{fd.Name.Name}, args...)...)
	}

	checkCall := func(call *ast.CallExpr) {
		switch BuiltinName(info, call) {
		case "make", "new":
			report(call.Pos(), "%s allocates", BuiltinName(info, call))
			return
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if obj := RootObj(info, call.Args[0]); obj != nil && paramObjs[obj] {
				return // scratch-backed: growth amortizes to zero in steady state
			}
			report(call.Pos(), "append to a slice not rooted in a parameter or receiver allocates a fresh backing array")
			return
		case "":
			// not a builtin; fall through
		default:
			return // len/cap/copy/clear/delete/min/max/panic/print...
		}
		if to, isConv := IsConversion(info, call); isConv {
			if types.IsInterface(to) && len(call.Args) == 1 && !types.IsInterface(info.TypeOf(call.Args[0])) {
				report(call.Pos(), "conversion to %s boxes its operand on the heap", to.String())
			}
			if isAllocatingConversion(to, info.TypeOf(call.Args[0])) {
				report(call.Pos(), "string conversion allocates")
			}
			return
		}
		fn := Callee(info, call)
		if fn == nil {
			report(call.Pos(), "dynamic call through a function value cannot be proven allocation-free")
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s allocates (formatting boxes and buffers)", fn.Name())
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
			return // pure arithmetic
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			return // single-word atomic ops: lock-free, allocation-free
		}
		if !pass.Noalloc[FuncKey(fn)] {
			report(call.Pos(), "calls %s which is not marked //nocvet:noalloc", FuncKey(fn))
		}
	}

	// mapStore reports an assignment target that is a map index: the
	// store may insert, and an insert may grow the bucket array.
	mapStore := func(lhs ast.Expr) {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return
		}
		if t := info.TypeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				report(lhs.Pos(), "map store may grow the map's buckets on the heap")
			}
		}
	}

	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mapStore(lhs)
			}
		case *ast.IncDecStmt:
			mapStore(x.X)
		case *ast.IfStmt:
			// Cold-branch exemption: a branch ending the run (error
			// return / panic) may allocate. Walk Init/Cond, then skip
			// any terminating block.
			if x.Init != nil {
				ast.Inspect(x.Init, walk)
			}
			ast.Inspect(x.Cond, walk)
			if !terminates(x.Body) {
				ast.Inspect(x.Body, walk)
			}
			if x.Else != nil {
				if blk, ok := x.Else.(*ast.BlockStmt); ok && terminates(blk) {
					return false
				}
				ast.Inspect(x.Else, walk)
			}
			return false
		case *ast.FuncLit:
			report(x.Pos(), "closure literal allocates (and may capture by reference)")
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.DeferStmt:
			report(x.Pos(), "defer allocates a frame record")
			return false
		case *ast.CallExpr:
			checkCall(x)
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					report(x.Pos(), "%s literal allocates", t.String())
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					report(x.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t, ok := info.TypeOf(x).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					report(x.Pos(), "string concatenation allocates")
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// terminates reports whether the block's last statement ends the
// function (return) or the goroutine (panic) — the cold-branch test.
func terminates(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isAllocatingConversion reports string<->[]byte/[]rune conversions.
func isAllocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toStr := isString(to)
	fromStr := isString(from)
	toSlice := isByteOrRuneSlice(to)
	fromSlice := isByteOrRuneSlice(from)
	return (toStr && fromSlice) || (toSlice && fromStr)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
