package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/service"
)

func TestParseMeshExplicit(t *testing.T) {
	m, err := parseMesh("3x2", "mesh", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 || m.H() != 2 {
		t.Fatalf("mesh = %dx%d", m.W(), m.H())
	}
}

func TestParseMeshAuto(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{4, 2, 2},
		{5, 3, 2},
		{9, 3, 3},
		{10, 4, 3},
		{1, 1, 1},
	}
	for _, tc := range cases {
		m, err := parseMesh("", "mesh", 0, tc.cores)
		if err != nil {
			t.Fatalf("cores %d: %v", tc.cores, err)
		}
		if m.W() != tc.w || m.H() != tc.h {
			t.Errorf("cores %d: mesh %dx%d, want %dx%d", tc.cores, m.W(), m.H(), tc.w, tc.h)
		}
		if m.NumTiles() < tc.cores {
			t.Errorf("cores %d: mesh too small", tc.cores)
		}
	}
}

func TestParseMesh3D(t *testing.T) {
	m, err := parseMesh("2x3x4", "mesh", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 2 || m.H() != 3 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d", m.W(), m.H(), m.D())
	}
	// -depth stacks a planar spec...
	m, err = parseMesh("2x2", "torus", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.D() != 4 || m.Kind().String() != "torus" {
		t.Fatalf("mesh = %dx%dx%d %s", m.W(), m.H(), m.D(), m.Kind())
	}
	// ...and must agree with an explicit WxHxD spec.
	if _, err := parseMesh("2x2x2", "mesh", 4, 5); err == nil {
		t.Fatal("conflicting -depth accepted")
	}
	if _, err := parseMesh("2x2", "klein-bottle", 0, 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestParseMeshAutoWithDepth(t *testing.T) {
	// Auto-sizing spreads the cores over the requested layers instead of
	// replicating a full planar grid per layer: 16 cores at depth 4 fit a
	// 2x2x4 (16 tiles), not a 4x4x4.
	m, err := parseMesh("", "mesh", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 2 || m.H() != 2 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d, want 2x2x4", m.W(), m.H(), m.D())
	}
	// Non-dividing core counts still fit: 10 cores over 4 layers needs
	// 3 per layer -> 2x2 layers, 16 tiles.
	m, err = parseMesh("", "mesh", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTiles() < 10 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d does not fit 10 cores over 4 layers", m.W(), m.H(), m.D())
	}
}

func TestParseMeshErrors(t *testing.T) {
	for _, spec := range []string{"3", "ax2", "3xb", "0x4", "4x4junk", "2x2x4.5", " 2x2", "2x2x2x2"} {
		if _, err := parseMesh(spec, "mesh", 0, 2); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := parseMesh("2x2", "mesh", 0, 5); err == nil {
		t.Error("oversubscribed mesh accepted")
	}
}

func TestRunDemo3DEndToEnd(t *testing.T) {
	// The paper demo on a 2x1x2 stacked mesh with XYZ routing, plus
	// diagrams, exercises the TSV path through the whole CLI.
	if err := run(options{demo: true, mesh: "2x1x2", topo: "mesh", model: "cdcm", method: "es",
		tech: "0.07um", routing: "xyz", seed: 1, gantt: true, annotate: true,
		flits: 1, restarts: 2, workers: 2, stdout: io.Discard}); err != nil {
		t.Fatal(err)
	}
	if err := run(options{demo: true, mesh: "2x2", topo: "torus", depth: 2, model: "cwm", method: "sa",
		tech: "0.07um", routing: "zyx", seed: 1, flits: 1, restarts: 2, workers: 2,
		stdout: io.Discard}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoEndToEnd(t *testing.T) {
	// Full CLI path: demo app, ES search, paper tech, with diagrams.
	if err := run(options{demo: true, mesh: "2x2", topo: "mesh", model: "cdcm", method: "es",
		tech: "paper", routing: "xy", seed: 1, gantt: true, annotate: true,
		flits: 1, restarts: 2, workers: 2, stdout: io.Discard}); err != nil {
		t.Fatal(err)
	}
	// CWM path too.
	if err := run(options{demo: true, mesh: "2x2", topo: "mesh", model: "cwm", method: "sa",
		tech: "0.07um", routing: "yx", seed: 1, flits: 16, restarts: 2, workers: 2,
		stdout: io.Discard}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTextAndJSONFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "app.cdcg")
	if err := os.WriteFile(text, []byte(
		"name t\ncores a b\npacket p1 a b compute=2 bits=9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := options{mesh: "2x1", topo: "mesh", model: "cdcm", method: "es", tech: "paper",
		routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 2, stdout: io.Discard}
	o := base
	o.appPath = text
	if err := run(o); err != nil {
		t.Fatalf("text app: %v", err)
	}
	jsonPath := filepath.Join(dir, "app.json")
	var buf bytes.Buffer
	if err := model.PaperExampleCDCG().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	o = base
	o.appPath = jsonPath
	o.mesh = "2x2"
	o.model = "cwm"
	o.method = "sa"
	o.tech = "0.35um"
	if err := run(o); err != nil {
		t.Fatalf("json app: %v", err)
	}
	// A JSON payload under a text extension is fine under -format auto
	// (content sniffing)...
	badPath := filepath.Join(dir, "bad.cdcg")
	if err := os.WriteFile(badPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	o = base
	o.appPath = badPath
	o.mesh = "2x2"
	if err := run(o); err != nil {
		t.Fatalf("JSON under text extension not sniffed: %v", err)
	}
	// ...but an explicit -format text must reject it.
	o.format = "text"
	if err := run(o); err == nil {
		t.Fatal("-format text accepted JSON input")
	}
	// And an explicit -format json must reject the text grammar.
	o = base
	o.appPath = text
	o.format = "json"
	if err := run(o); err == nil {
		t.Fatal("-format json accepted text input")
	}
}

func TestRunFromStdin(t *testing.T) {
	var buf bytes.Buffer
	if err := model.PaperExampleCDCG().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// JSON on stdin, sniffed.
	if err := run(options{appPath: "-", stdin: bytes.NewReader(buf.Bytes()), mesh: "2x2",
		model: "cwm", method: "sa", tech: "paper", routing: "xy", seed: 1,
		flits: 1, restarts: 1, workers: 1, stdout: io.Discard}); err != nil {
		t.Fatalf("stdin json: %v", err)
	}
	// Text on stdin, sniffed — through more leading whitespace than a
	// bufio.Reader buffers, which the sniffer must consume, not Peek.
	text := strings.Repeat(" \n", 3000) + "name t\ncores a b\npacket p1 a b compute=2 bits=9\n"
	if err := run(options{appPath: "-", stdin: strings.NewReader(text), mesh: "2x1",
		model: "cdcm", method: "es", tech: "paper", routing: "xy", seed: 1,
		flits: 1, restarts: 1, workers: 1, stdout: io.Discard}); err != nil {
		t.Fatalf("stdin text: %v", err)
	}
}

func TestRunJSONOutputSharedSchemaAndDeterminism(t *testing.T) {
	runOnce := func() service.CLIResult {
		t.Helper()
		var out bytes.Buffer
		if err := run(options{demo: true, mesh: "2x2", model: "cwm", method: "sa",
			tech: "0.07um", routing: "xy", seed: 7, flits: 1, restarts: 2, workers: 2,
			jsonOut: true, stdout: &out}); err != nil {
			t.Fatal(err)
		}
		var env service.CLIResult
		if err := json.Unmarshal(out.Bytes(), &env); err != nil {
			t.Fatalf("-json emitted invalid JSON: %v\n%s", err, out.String())
		}
		return env
	}
	a, b := runOnce(), runOnce()
	if a.Result == nil || a.Result.Mapping == nil {
		t.Fatalf("missing result payload: %+v", a)
	}
	if a.Result.Model != "CWM" || a.Result.Method != "SA" || a.Result.Seed != 7 ||
		a.Result.Grid != "2x2x1" || a.Result.Cores != 4 {
		t.Errorf("result metadata wrong: %+v", a.Result)
	}
	if a.Result.TotalJ <= 0 || a.Result.ExecCycles <= 0 || a.Result.Evaluations <= 0 {
		t.Errorf("result numbers implausible: %+v", a.Result)
	}
	// The deterministic contract: the result objects (not the envelopes,
	// which carry wall-clock) are byte-identical across runs.
	ja, _ := json.Marshal(a.Result)
	jb, _ := json.Marshal(b.Result)
	if !bytes.Equal(ja, jb) {
		t.Errorf("repeated -json runs differ:\n%s\n%s", ja, jb)
	}
}

// The -surrogate flag reaches the engine: a tier-B CDCM run reports
// surrogate evaluations alongside exact repricings, keeps the counter
// split summing to Evaluations, and stays byte-deterministic.
func TestRunSurrogateJSON(t *testing.T) {
	runOnce := func() service.CLIResult {
		t.Helper()
		var out bytes.Buffer
		if err := run(options{demo: true, mesh: "2x2", model: "cdcm", method: "sa",
			tech: "0.07um", routing: "xy", seed: 11, flits: 1, restarts: 1, workers: 2,
			surrogate: true, surrSamp: 8, jsonOut: true, stdout: &out}); err != nil {
			t.Fatal(err)
		}
		var env service.CLIResult
		if err := json.Unmarshal(out.Bytes(), &env); err != nil {
			t.Fatalf("-json emitted invalid JSON: %v\n%s", err, out.String())
		}
		return env
	}
	a, b := runOnce(), runOnce()
	r := a.Result
	if r == nil {
		t.Fatalf("missing result payload: %+v", a)
	}
	if r.SurrogateEvals == 0 || r.ExactEvals == 0 {
		t.Errorf("surrogate run did not split evaluations: %+v", r)
	}
	if r.ExactEvals+r.BoundSkips+r.SurrogateEvals != r.Evaluations {
		t.Errorf("tier counters do not sum to evaluations: %+v", r)
	}
	ja, _ := json.Marshal(a.Result)
	jb, _ := json.Marshal(b.Result)
	if !bytes.Equal(ja, jb) {
		t.Errorf("repeated -surrogate runs differ:\n%s\n%s", ja, jb)
	}
}

func TestRunResilienceEndToEnd(t *testing.T) {
	// Rate 0.3 / seed 6 deterministically fails link 2-3 of the 2x2 and
	// keeps the grid connected; the human report must carry the
	// degradation block.
	var out bytes.Buffer
	if err := run(options{demo: true, mesh: "2x2", model: "resilience", method: "es",
		tech: "0.07um", routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 2,
		faultRate: 0.3, faultSeed: 6, stdout: &out}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resilience over faults [link 2-3]", "score", "dt (cy)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("human report missing %q:\n%s", want, out.String())
		}
	}
	// Faults without a fault-capable objective request are still valid —
	// any model scores its winner over the injected set.
	out.Reset()
	if err := run(options{demo: true, mesh: "2x2", model: "cwm", method: "sa",
		tech: "0.07um", routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 1,
		faultRate: 0.3, faultSeed: 6, stdout: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resilience over faults") {
		t.Errorf("cwm run with -faultrate missing resilience block:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := options{demo: true, flits: 1, restarts: 1, workers: 1, stdout: io.Discard}
	cases := []struct {
		name string
		mut  func(o options) options
	}{
		{"no app", func(o options) options { o.demo = false; return o }},
		{"bad model", func(o options) options { o.model = "xxx"; return o }},
		{"bad method", func(o options) options { o.method = "xxx"; return o }},
		{"bad tech", func(o options) options { o.tech = "90nm"; return o }},
		{"bad routing", func(o options) options { o.routing = "zz"; return o }},
		{"resilience without faults", func(o options) options { o.model = "resilience"; return o }},
		{"bad fault rate", func(o options) options { o.faultRate = 1.5; return o }},
		{"bad format", func(o options) options {
			o.demo = false
			o.appPath = "-"
			o.stdin = strings.NewReader("{}")
			o.format = "yaml"
			return o
		}},
		{"missing file", func(o options) options { o.demo = false; o.appPath = "/nonexistent.json"; return o }},
		{"json+gantt", func(o options) options { o.jsonOut = true; o.gantt = true; return o }},
		{"json+annotate", func(o options) options { o.jsonOut = true; o.annotate = true; return o }},
		{"bad format with demo", func(o options) options { o.format = "yaml"; return o }},
	}
	for _, tc := range cases {
		if err := run(tc.mut(base)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestRunWritesProfiles drives the -cpuprofile/-memprofile flags end to
// end and checks both profile files exist and are non-empty.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run(options{demo: true, mesh: "2x2", topo: "mesh", model: "cdcm", method: "sa",
		tech: "0.07um", routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 1,
		cpuProfile: cpu, memProfile: mem, stdout: io.Discard}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	if err := run(options{demo: true, mesh: "2x2", topo: "mesh", model: "cwm", method: "sa",
		tech: "0.07um", routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 1,
		cpuProfile: filepath.Join(dir, "missing", "cpu.out"), stdout: io.Discard}); err == nil {
		t.Fatal("uncreatable -cpuprofile path accepted")
	}
	if err := run(options{demo: true, mesh: "2x2", topo: "mesh", model: "cwm", method: "sa",
		tech: "0.07um", routing: "xy", seed: 1, flits: 1, restarts: 1, workers: 1,
		memProfile: filepath.Join(dir, "missing", "mem.out"), stdout: io.Discard}); err == nil {
		t.Fatal("uncreatable -memprofile path accepted")
	}
}
