package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestParseMeshExplicit(t *testing.T) {
	m, err := parseMesh("3x2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 || m.H() != 2 {
		t.Fatalf("mesh = %dx%d", m.W(), m.H())
	}
}

func TestParseMeshAuto(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{4, 2, 2},
		{5, 3, 2},
		{9, 3, 3},
		{10, 4, 3},
		{1, 1, 1},
	}
	for _, tc := range cases {
		m, err := parseMesh("", tc.cores)
		if err != nil {
			t.Fatalf("cores %d: %v", tc.cores, err)
		}
		if m.W() != tc.w || m.H() != tc.h {
			t.Errorf("cores %d: mesh %dx%d, want %dx%d", tc.cores, m.W(), m.H(), tc.w, tc.h)
		}
		if m.NumTiles() < tc.cores {
			t.Errorf("cores %d: mesh too small", tc.cores)
		}
	}
}

func TestParseMeshErrors(t *testing.T) {
	for _, spec := range []string{"3", "ax2", "3xb", "0x4"} {
		if _, err := parseMesh(spec, 2); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := parseMesh("2x2", 5); err == nil {
		t.Error("oversubscribed mesh accepted")
	}
}

func TestRunDemoEndToEnd(t *testing.T) {
	// Full CLI path: demo app, ES search, paper tech, with diagrams.
	if err := run("", true, "2x2", "cdcm", "es", "paper", "xy", 1, true, true, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	// CWM path too.
	if err := run("", true, "2x2", "cwm", "sa", "0.07um", "yx", 1, false, false, 16, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTextAndJSONFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "app.cdcg")
	if err := os.WriteFile(text, []byte(
		"name t\ncores a b\npacket p1 a b compute=2 bits=9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(text, false, "2x1", "cdcm", "es", "paper", "xy", 1, false, false, 1, 2, 2); err != nil {
		t.Fatalf("text app: %v", err)
	}
	jsonPath := filepath.Join(dir, "app.json")
	var buf bytes.Buffer
	if err := model.PaperExampleCDCG().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(jsonPath, false, "2x2", "cwm", "sa", "0.35um", "xy", 1, false, false, 1, 2, 2); err != nil {
		t.Fatalf("json app: %v", err)
	}
	// A JSON payload under a text extension must be rejected cleanly.
	badPath := filepath.Join(dir, "bad.cdcg")
	if err := os.WriteFile(badPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(badPath, false, "2x2", "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2); err == nil {
		t.Fatal("JSON-in-text accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"no app", func() error { return run("", false, "", "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad model", func() error { return run("", true, "", "xxx", "sa", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad method", func() error { return run("", true, "", "cdcm", "xxx", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad tech", func() error { return run("", true, "", "cdcm", "sa", "90nm", "xy", 1, false, false, 1, 2, 2) }},
		{"bad routing", func() error { return run("", true, "", "cdcm", "sa", "paper", "zz", 1, false, false, 1, 2, 2) }},
		{"missing file", func() error {
			return run("/nonexistent.json", false, "", "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2)
		}},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
